// Collaborative merge: reproduces the paper's Fig. 3/4 walkthrough in full.
// Frank develops on a dev branch (including a schema-breaking feature
// extraction update), Jane updates master concurrently, and the metric-
// driven merge reconciles both lines — pruning incompatible combinations and
// reusing every checkpoint so only the orange nodes of Fig. 4 execute.
//
// Run: ./build/examples/collaborative_merge

#include <cstdio>

#include "merge/compat_lut.h"
#include "merge/merge_op.h"
#include "merge/search_tree.h"
#include "sim/scenario.h"

using namespace mlcask;

namespace {

void Check(const Status& s, const char* what) {
  if (!s.ok()) {
    std::fprintf(stderr, "%s failed: %s\n", what, s.ToString().c_str());
    std::exit(1);
  }
}

void PrintHistory(const sim::Deployment& d, const std::string& branch) {
  auto head = d.repo->Head(branch);
  Check(head.status(), "head");
  std::printf("branch '%s':\n", branch.c_str());
  for (const version::Commit* c : d.repo->graph().Log((*head)->id)) {
    std::printf("  %-14s by %-6s score=%.3f  {", c->Label().c_str(),
                c->author.c_str(), c->snapshot.score);
    bool first = true;
    for (const auto& rec : c->snapshot.components) {
      if (rec.name == "dataset") continue;
      std::printf("%s%s %s", first ? "" : ", ", rec.name.c_str(),
                  rec.version.ToString().c_str());
      first = false;
    }
    std::printf("}\n");
  }
}

}  // namespace

int main() {
  std::printf("Collaborative pipeline development and merge (paper Fig. 3)\n");
  std::printf("===========================================================\n\n");

  auto deployment = sim::MakeDeployment("readmission", /*scale=*/0.15);
  Check(deployment.status(), "MakeDeployment");
  sim::Deployment& d = **deployment;

  // Build the two-branch history: Frank's dev branch bumps the model three
  // times and breaks the feature-extraction schema; Jane updates cleansing
  // and ships model 0.4 on master.
  auto info = sim::BuildTwoBranchScenario(&d);
  Check(info.status(), "BuildTwoBranchScenario");

  PrintHistory(d, "master");
  std::printf("\n");
  PrintHistory(d, "dev");

  // Show the search space the merge will face.
  auto space = merge::BuildSearchSpace(*d.repo, *d.libraries, "master", "dev");
  Check(space.status(), "BuildSearchSpace");
  std::printf("\ncomponent search space (since common ancestor %s):\n",
              space->common_ancestor.ShortHex().c_str());
  for (const auto& comp : space->components) {
    std::printf("  S(%s) = {", comp.component.c_str());
    for (size_t i = 0; i < comp.versions.size(); ++i) {
      std::printf("%s%s", i > 0 ? ", " : "",
                  comp.versions[i].version.ToString().c_str());
    }
    std::printf("}\n");
  }
  std::printf("  => %zu possible pipelines before pruning\n",
              space->NumCandidates());

  merge::PipelineSearchTree tree = merge::PipelineSearchTree::Build(*space);
  merge::CompatLut lut = merge::CompatLut::Build(*space);
  size_t pruned = tree.PruneIncompatible(lut);
  std::printf("  => PC pruning removes %zu nodes, %zu candidates remain\n",
              pruned, tree.Candidates().size());

  // The merge itself.
  merge::MergeOperation op(d.repo.get(), d.libraries.get(), d.registry.get(),
                           d.engine.get(), d.clock.get());
  auto report = op.Merge("master", "dev", {});
  Check(report.status(), "merge");

  std::printf("\nmerge executed %llu components across %zu candidate runs "
              "(%zu tree nodes were checkpointed)\n",
              static_cast<unsigned long long>(report->component_executions),
              report->candidates_considered, report->checkpoints_marked);
  std::printf("candidate scores:\n");
  for (size_t i = 0; i < report->outcomes.size(); ++i) {
    const auto& o = report->outcomes[i];
    std::printf("  #%zu %s", i, o.incompatible ? "incompatible" : "");
    if (!o.incompatible) std::printf("score=%.3f", o.score);
    std::printf("  {");
    bool first = true;
    for (const auto* spec : o.chain) {
      if (spec->name == "dataset") continue;
      std::printf("%s%s", first ? "" : ", ",
                  spec->version.ToString().c_str());
      first = false;
    }
    std::printf("}%s\n",
                static_cast<int>(i) == report->best_index ? "   <== winner"
                                                          : "");
  }

  auto merged = d.repo->Head("master");
  Check(merged.status(), "merged head");
  std::printf("\nmerge result committed as %s (parents: %s, %s)\n",
              (*merged)->Label().c_str(),
              (*merged)->parents[0].ShortHex(8).c_str(),
              (*merged)->parents[1].ShortHex(8).c_str());
  std::printf("note: the naive 'take latest versions' merge would pick an "
              "incompatible pipeline\n(feature_extract 1.0 with Jane's cnn "
              "0.4) — the metric-driven merge cannot.\n");
  return 0;
}
