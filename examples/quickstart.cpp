// Quickstart: the MLCask workflow end to end on the readmission pipeline —
// define a pipeline, run and commit it, branch for development, update a
// component, and merge the branch back with the metric-driven merge.
//
// Build & run:  cmake -B build -G Ninja && cmake --build build &&
//               ./build/examples/quickstart

#include <cstdio>

#include "merge/merge_op.h"
#include "sim/scenario.h"
#include "sim/workloads.h"

using namespace mlcask;

namespace {

void Check(const Status& s, const char* what) {
  if (!s.ok()) {
    std::fprintf(stderr, "%s failed: %s\n", what, s.ToString().c_str());
    std::exit(1);
  }
}

}  // namespace

int main() {
  std::printf("MLCask quickstart\n=================\n\n");

  // 1. Provision a deployment: ForkBase-style storage, library registry and
  //    repositories, pipeline repository, executor, simulated clock.
  auto deployment = sim::MakeDeployment("readmission", /*scale=*/0.15);
  Check(deployment.status(), "MakeDeployment");
  sim::Deployment& d = **deployment;

  // 2. The readmission pipeline: dataset -> data_cleansing ->
  //    feature_extract -> cnn (see Fig. 1/2 of the paper).
  std::printf("pipeline '%s' with %zu components:\n", d.workload.name.c_str(),
              d.workload.initial.size());
  for (const auto& c : d.workload.initial.components()) {
    std::printf("  <%s, %s>  impl=%s\n", c.name.c_str(),
                c.version.ToString().c_str(), c.impl.c_str());
  }

  // 3. Run it and commit master.0.0. Running executes every component (real
  //    data generation, cleaning, feature extraction, and model training)
  //    and materializes each output into the storage engine.
  auto root = d.RunAndCommit(d.workload.initial, "master", "alice",
                             "initial pipeline");
  Check(root.status(), "initial commit");
  auto head = d.repo->Head("master");
  Check(head.status(), "head");
  std::printf("\ncommitted %s (score %.3f %s), commit %s\n",
              (*head)->Label().c_str(), (*head)->snapshot.score,
              (*head)->snapshot.metric.c_str(),
              (*head)->id.ShortHex().c_str());

  // 4. Branch for development and try a better model (increment bump turns
  //    the 'variant' hyperparameter knob: more capacity, more epochs).
  auto model = *d.workload.initial.Find(d.workload.model);
  auto improved = sim::BumpIncrement(*model);
  auto dev_pipeline = sim::WithComponent(d.workload.initial, improved);
  Check(dev_pipeline.status(), "dev pipeline");
  Check(d.RunAndCommit(*dev_pipeline, "dev", "bob", "try cnn 0.1").status(),
        "dev commit");
  std::printf("dev branch: cnn upgraded to %s, committed %s\n",
              improved.version.ToString().c_str(),
              (*d.repo->Head("dev"))->Label().c_str());

  // 5. Meanwhile master also moved (another model variant) — so the merge
  //    cannot fast-forward and becomes metric-driven.
  auto master_variant = sim::BumpIncrement(improved);
  auto master_pipeline = sim::WithComponent(d.workload.initial, master_variant);
  Check(master_pipeline.status(), "master pipeline");
  Check(d.RunAndCommit(*master_pipeline, "master", "alice", "cnn 0.2")
            .status(),
        "master commit");

  // 6. Merge dev into master: MLCask enumerates the version combinations
  //    developed since the common ancestor, prunes incompatible ones,
  //    reuses checkpoints, and commits the argmax-score pipeline.
  merge::MergeOperation op(d.repo.get(), d.libraries.get(), d.registry.get(),
                           d.engine.get(), d.clock.get());
  auto report = op.Merge("master", "dev", {});
  Check(report.status(), "merge");
  std::printf("\nmetric-driven merge:\n");
  std::printf("  candidates: %zu (of %zu possible), pruned %zu nodes\n",
              report->candidates_considered, report->candidates_total,
              report->pruned_by_compatibility);
  std::printf("  component executions: %llu (checkpoints made %zu nodes free)\n",
              static_cast<unsigned long long>(report->component_executions),
              report->checkpoints_marked);
  std::printf("  best score: %.3f (%s)\n", report->best_score,
              report->metric.c_str());

  auto merged = d.repo->Head("master");
  Check(merged.status(), "merged head");
  std::printf("  merge commit %s = %s with %zu parents\n",
              (*merged)->Label().c_str(), (*merged)->id.ShortHex().c_str(),
              (*merged)->parents.size());
  std::printf("\nmerged pipeline:\n");
  for (const auto& rec : (*merged)->snapshot.components) {
    std::printf("  <%s, %s>\n", rec.name.c_str(),
                rec.version.ToString().c_str());
  }
  std::printf("\nsimulated elapsed time: %.1f s; storage used: %.2f MB "
              "(dedup ratio n/a for quickstart)\n",
              d.clock->Now(),
              static_cast<double>(d.engine->stats().physical_bytes) / 1e6);
  return 0;
}
