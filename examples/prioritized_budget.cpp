// Time-budgeted merging with prioritized pipeline search (paper Sec. VII-E):
// when the search space is too large to evaluate exhaustively, MLCask visits
// the most promising candidates first, so an interrupted search still
// returns a near-optimal pipeline.
//
// Run: ./build/examples/prioritized_budget

#include <cstdio>

#include "merge/prioritized.h"
#include "sim/scenario.h"

using namespace mlcask;

namespace {

void Check(const Status& s, const char* what) {
  if (!s.ok()) {
    std::fprintf(stderr, "%s failed: %s\n", what, s.ToString().c_str());
    std::exit(1);
  }
}

}  // namespace

int main() {
  std::printf("Prioritized pipeline search under a time budget\n");
  std::printf("===============================================\n\n");

  auto deployment = sim::MakeDeployment("dpm", /*scale=*/0.1);
  Check(deployment.status(), "MakeDeployment");
  sim::Deployment& d = **deployment;
  Check(sim::BuildTwoBranchScenario(&d).status(), "scenario");

  merge::PrioritizedSearch search(d.repo.get(), d.libraries.get(),
                                  d.registry.get(), d.engine.get());
  Check(search.Prepare("master", "dev"), "Prepare");
  std::printf("%zu candidates after compatibility pruning; %zu have scores "
              "from history\n\n",
              search.num_candidates(), search.initial_scores().size());

  const double kBudgetSeconds = 120.0;  // simulated
  for (merge::SearchMode mode :
       {merge::SearchMode::kPrioritized, merge::SearchMode::kRandom}) {
    const char* label =
        mode == merge::SearchMode::kPrioritized ? "prioritized" : "random";
    auto trial = search.RunTrial(mode, /*seed=*/7);
    Check(trial.status(), "RunTrial");

    double best_within_budget = 0;
    size_t runs_within_budget = 0;
    for (const auto& step : trial->steps) {
      if (step.end_time_s <= kBudgetSeconds) {
        ++runs_within_budget;
        if (step.score > best_within_budget) best_within_budget = step.score;
      }
    }
    std::printf("%-12s: %zu/%zu candidates inside %.0f simulated s, best "
                "score %.3f (full-search best %.3f)\n",
                label, runs_within_budget, trial->steps.size(),
                kBudgetSeconds, best_within_budget, trial->best_score);
    std::printf("              optimal found at step %zu of %zu\n",
                trial->steps_to_optimal, trial->steps.size());
  }

  std::printf("\nwith an unlimited budget both orders find the same optimum; "
              "under a tight budget\nthe prioritized order retains most of "
              "the achievable quality (paper Sec. VII-E).\n");
  return 0;
}
