// Dataset schema evolution: the paper's Sec. IV-B mechanism. A dataset
// provider publishes a new dataset version whose schema hash changes (two
// new lab columns); MLCask derives the schema id with the paper's
// canonicalize-sort-hash procedure, detects that the downstream feature
// extraction cannot consume the new schema, and refuses the doomed run
// until the downstream component is adapted.
//
// Run: ./build/examples/schema_evolution

#include <cstdio>

#include "data/generators.h"
#include "sim/scenario.h"
#include "sim/workloads.h"

using namespace mlcask;

namespace {

void Check(const Status& s, const char* what) {
  if (!s.ok()) {
    std::fprintf(stderr, "%s failed: %s\n", what, s.ToString().c_str());
    std::exit(1);
  }
}

}  // namespace

int main() {
  std::printf("Dataset schema evolution (paper Sec. IV-B)\n");
  std::printf("==========================================\n\n");

  // The provider's two dataset versions, and their schema hashes computed
  // with the paper's procedure: extract headers, standardize, sort,
  // concatenate, SHA-256.
  auto v0 = data::GenerateReadmissionData(200, 7, /*schema_version=*/0);
  auto v1 = data::GenerateReadmissionData(200, 7, /*schema_version=*/1);
  Check(v0.status(), "generate v0");
  Check(v1.status(), "generate v1");
  data::DataSchema s0 = v0->schema();
  data::DataSchema s1 = v1->schema();
  std::printf("dataset v0: %zu columns, schema hash %s (id %llu)\n",
              s0.num_fields(), s0.SchemaHash().ShortHex().c_str(),
              static_cast<unsigned long long>(s0.ShortId()));
  std::printf("dataset v1: %zu columns, schema hash %s (id %llu)\n",
              s1.num_fields(), s1.SchemaHash().ShortHex().c_str(),
              static_cast<unsigned long long>(s1.ShortId()));
  std::printf("(v1 added columns: lab_8, lab_9 -> different hash)\n\n");

  // Wire the ids into a pipeline: the dataset component's output schema is
  // the real hash-derived id, and the cleansing step declares what it can
  // consume.
  auto deployment = sim::MakeDeployment("readmission", 0.1);
  Check(deployment.status(), "MakeDeployment");
  sim::Deployment& d = **deployment;

  auto specs = d.workload.initial.components();
  specs[0].output_schema = s0.ShortId();
  specs[1].input_schema = s0.ShortId();
  auto pipeline = pipeline::Pipeline::Chain("readmission", specs);
  Check(pipeline.status(), "chain");
  Check(d.RunAndCommit(*pipeline, "master", "provider", "dataset v0").status(),
        "commit v0");
  std::printf("pipeline with dataset v0 runs fine (score %.3f)\n",
              (*d.repo->Head("master"))->snapshot.score);

  // The provider ships dataset v1: new schema id, schema digit bumps.
  auto new_dataset = specs[0];
  new_dataset.version = new_dataset.version.BumpSchema();
  new_dataset.output_schema = s1.ShortId();
  new_dataset.params.Set("schema_version", Json::Int(1));
  auto broken = sim::WithComponent(*pipeline, new_dataset);
  Check(broken.status(), "broken pipeline");

  Status compat = broken->CheckCompatibility();
  std::printf("\nafter dataset v1 (%s):\n  %s\n",
              new_dataset.version.ToString().c_str(),
              compat.ToString().c_str());
  auto refused = d.executor->Run(*broken, {});
  Check(refused.status(), "run");
  std::printf("  executor refused the run upfront: compatibility_failure=%s, "
              "0 components executed\n\n",
              refused->compatibility_failure ? "true" : "false");

  // Adapt the cleansing step to the new schema and re-run.
  auto adapted_cleanse = sim::AdaptInputSchema(specs[1], s1.ShortId());
  auto fixed = sim::WithComponent(*broken, adapted_cleanse);
  Check(fixed.status(), "fixed pipeline");
  Check(d.RunAndCommit(*fixed, "master", "provider", "dataset v1 + adapted")
            .status(),
        "commit v1");
  std::printf("after adapting data_cleansing to %s: score %.3f, committed %s\n",
              adapted_cleanse.version.ToString().c_str(),
              (*d.repo->Head("master"))->snapshot.score,
              (*d.repo->Head("master"))->Label().c_str());
  return 0;
}
