// Hospital retraining loop: the paper's (C1) challenge. A readmission
// pipeline is retrained across component updates; MLCask skips unchanged
// pre-processing steps via its version history while a ModelDB-style system
// reruns everything — and when an update breaks schema compatibility, MLCask
// refuses the run upfront instead of crashing mid-pipeline.
//
// Run: ./build/examples/readmission_retraining

#include <cstdio>

#include "baselines/system_under_test.h"
#include "sim/libraries.h"
#include "sim/linear_driver.h"
#include "sim/workloads.h"

using namespace mlcask;

namespace {

void Check(const Status& s, const char* what) {
  if (!s.ok()) {
    std::fprintf(stderr, "%s failed: %s\n", what, s.ToString().c_str());
    std::exit(1);
  }
}

}  // namespace

int main() {
  std::printf("Readmission pipeline retraining (challenge C1)\n");
  std::printf("==============================================\n\n");

  pipeline::LibraryRegistry registry;
  Check(sim::RegisterWorkloadLibraries(&registry), "register libraries");
  auto workload = sim::MakeWorkload("readmission", /*scale=*/0.2);
  Check(workload.status(), "MakeWorkload");

  sim::LinearProtocolOptions protocol;
  protocol.iterations = 8;
  auto schedule = sim::BuildLinearSchedule(*workload, protocol);
  Check(schedule.status(), "BuildLinearSchedule");

  std::printf("8 retraining iterations; each updates one component "
              "(preprocessor p=0.4 / model p=0.6);\nthe final update breaks "
              "the feature_extract -> cnn schema contract.\n\n");

  baselines::SystemUnderTest modeldb(baselines::ModelDbConfig(), &registry);
  baselines::SystemUnderTest mlcask(baselines::MlcaskConfig(), &registry);

  std::printf("%-5s %-28s %16s %16s\n", "iter", "update",
              "modeldb t(s)", "mlcask t(s)");
  for (size_t i = 0; i < schedule->size(); ++i) {
    const auto& step = (*schedule)[i];
    std::string update = "initial pipeline";
    if (i > 0) {
      const auto& spec = step.updated_components[0];
      update = spec.name + " -> " + spec.version.ToString();
    }
    auto md = modeldb.RunIteration(step.pipeline, step.updated_components);
    auto mc = mlcask.RunIteration(step.pipeline, step.updated_components);
    Check(md.status(), "modeldb iteration");
    Check(mc.status(), "mlcask iteration");
    std::printf("%-5zu %-28s %16.1f %16.1f", i + 1, update.c_str(),
                md->time.Total(), mc->time.Total());
    if (mc->skipped_incompatible) std::printf("   <- pre-check skipped run");
    if (md->failed_at_runtime) std::printf(" (modeldb failed mid-run)");
    std::printf("\n");
  }

  std::printf("\ncumulative: modeldb %.1f s / %.2f MB, mlcask %.1f s / %.2f MB\n",
              modeldb.clock().Now(),
              static_cast<double>(modeldb.engine().stats().physical_bytes) / 1e6,
              mlcask.clock().Now(),
              static_cast<double>(mlcask.engine().stats().physical_bytes) / 1e6);
  std::printf("(the mlcask engine de-duplicates library versions and reusable "
              "outputs at chunk level)\n");
  return 0;
}
