// Retrospective research over a pipeline's history (challenge C3): query the
// version DAG, check out and re-run a historical pipeline version, diff two
// versions, and reclaim storage from unreferenced artifacts — followed by a
// durable checkpoint of the whole storage engine to disk.
//
// Run: ./build/examples/retrospective_audit

#include <cstdio>
#include <filesystem>

#include "pipeline/checkout.h"
#include "sim/scenario.h"
#include "storage/persistence.h"
#include "version/gc.h"
#include "version/history_query.h"

using namespace mlcask;

namespace {

void Check(const Status& s, const char* what) {
  if (!s.ok()) {
    std::fprintf(stderr, "%s failed: %s\n", what, s.ToString().c_str());
    std::exit(1);
  }
}

}  // namespace

int main() {
  std::printf("Retrospective audit of a pipeline history\n");
  std::printf("=========================================\n\n");

  auto deployment = sim::MakeDeployment("readmission", /*scale=*/0.1);
  Check(deployment.status(), "MakeDeployment");
  sim::Deployment& d = **deployment;
  Check(sim::BuildTwoBranchScenario(&d).status(), "scenario");

  // 1. Query the history.
  version::HistoryQuery query(d.repo.get());
  std::printf("history has %zu commits across branches {",
              query.AllCommits().size());
  bool first = true;
  for (const std::string& b : d.repo->branches().List()) {
    std::printf("%s%s", first ? "" : ", ", b.c_str());
    first = false;
  }
  std::printf("}\n");

  const version::Commit* best = query.BestByScore();
  std::printf("best pipeline in history: %s (score %.3f by %s)\n",
              best->Label().c_str(), best->snapshot.score,
              best->author.c_str());

  std::printf("\nmodel version timeline:\n");
  for (const auto& [commit, ver] : query.ComponentTimeline("cnn")) {
    std::printf("  %-14s cnn %s\n", commit->Label().c_str(),
                ver.ToString().c_str());
  }

  // 2. Tag the best version as a release candidate.
  Check(d.repo->Tag("release-candidate", best->id), "tag");
  auto tagged = d.repo->GetTag("release-candidate");
  Check(tagged.status(), "get tag");
  std::printf("\ntagged %s as 'release-candidate'\n",
              (*tagged)->Label().c_str());

  // 3. Check out and re-run the historical version (free via checkpoints).
  auto historical =
      pipeline::MaterializePipeline(*best, *d.libraries, "readmission");
  Check(historical.status(), "materialize");
  pipeline::Executor auditor(d.registry.get(), d.engine.get(), nullptr);
  Check(pipeline::SeedExecutorFromCommit(*best, *d.libraries, d.engine.get(),
                                         &auditor),
        "seed");
  pipeline::ExecutorOptions opts;
  opts.store_outputs = false;
  auto rerun = auditor.Run(*historical, opts);
  Check(rerun.status(), "re-run");
  std::printf("re-ran %s from its checkpoints: score %.3f, %llu component "
              "executions needed\n",
              best->Label().c_str(), rerun->score,
              static_cast<unsigned long long>(auditor.executions()));

  // 4. Diff the common ancestor against the dev branch head (which carries
  //    a schema evolution and several model updates).
  auto commits = query.AllCommits();
  auto dev_head = d.repo->Head("dev");
  Check(dev_head.status(), "dev head");
  auto diff = query.Diff(commits.front()->id, (*dev_head)->id);
  Check(diff.status(), "diff");
  std::printf("\ndiff %s -> %s:\n", commits.front()->Label().c_str(),
              (*dev_head)->Label().c_str());
  for (const auto& change : *diff) {
    std::printf("  %-16s %-13s %s -> %s\n", change.name.c_str(),
                version::ComponentDiffKindName(change.kind),
                change.from.ToString().c_str(), change.to.ToString().c_str());
  }

  // 5. Garbage-collect unreferenced artifacts, then checkpoint to disk.
  auto gc = version::CollectArtifactGarbage(*d.repo, d.engine.get());
  Check(gc.status(), "gc");
  std::printf("\ngc: examined %llu artifacts, deleted %llu, freed %.2f MB\n",
              static_cast<unsigned long long>(gc->artifacts_examined),
              static_cast<unsigned long long>(gc->artifacts_deleted),
              static_cast<double>(gc->bytes_freed) / 1e6);

  auto* forkbase = dynamic_cast<storage::ForkBaseEngine*>(d.engine.get());
  if (forkbase != nullptr) {
    std::string dir =
        (std::filesystem::temp_directory_path() / "mlcask_audit_checkpoint")
            .string();
    std::filesystem::remove_all(dir);
    Check(storage::SaveEngine(*forkbase, dir), "checkpoint");
    auto reloaded = storage::LoadEngine(dir);
    Check(reloaded.status(), "reload");
    std::printf("checkpointed engine to %s and reloaded it: %llu object "
                "versions, %.2f MB physical\n",
                dir.c_str(),
                static_cast<unsigned long long>(
                    (*reloaded)->ListAllVersions().size()),
                static_cast<double>((*reloaded)->stats().physical_bytes) / 1e6);
    std::filesystem::remove_all(dir);
  }
  return 0;
}
