// DAG pipelines beyond chains (Definition 1): a diamond-shaped fusion
// pipeline where two feature branches process the same EHR data and a join
// node concatenates their features before the model. Demonstrates RunDag's
// subgraph-level reuse: updating one branch re-runs only that branch, the
// join, and the model.
//
// Run: ./build/examples/dag_fusion

#include <cstdio>

#include "pipeline/executor.h"
#include "sim/libraries.h"
#include "storage/forkbase_engine.h"

using namespace mlcask;

namespace {

void Check(const Status& s, const char* what) {
  if (!s.ok()) {
    std::fprintf(stderr, "%s failed: %s\n", what, s.ToString().c_str());
    std::exit(1);
  }
}

pipeline::ComponentVersionSpec Spec(const std::string& name,
                                    pipeline::ComponentKind kind,
                                    uint64_t in_schema, uint64_t out_schema,
                                    const std::string& impl, double cost) {
  pipeline::ComponentVersionSpec s;
  s.name = name;
  s.kind = kind;
  s.input_schema = in_schema;
  s.output_schema = out_schema;
  s.impl = impl;
  s.cost_per_krow_s = cost;
  return s;
}

pipeline::Pipeline MakeFusion(int stats_variant) {
  pipeline::Pipeline p("fusion");
  auto ds = Spec("ehr_data", pipeline::ComponentKind::kDataset, 0, 1,
                 "gen_readmission", 1.0);
  ds.params.Set("rows", Json::Int(1500));
  // Both branches read the raw dataset directly, so this example's dataset
  // ships without missing values (the chain workloads put cleansing first).
  ds.params.Set("missing_rate", Json::Number(0.0));
  Check(p.AddComponent(ds), "add dataset");
  auto stats = Spec("stats_features", pipeline::ComponentKind::kPreprocessor,
                    1, 2, "extract_ehr_features", 6.0);
  stats.params.Set("variant", Json::Int(stats_variant));
  Check(p.AddComponent(stats), "add stats");
  auto clean = Spec("clean_features", pipeline::ComponentKind::kPreprocessor,
                    1, 2, "cleanse_impute", 4.0);
  Check(p.AddComponent(clean), "add clean");
  Check(p.AddComponent(Spec("fusion_join", pipeline::ComponentKind::kPreprocessor,
                            2, 3, "concat_features", 0.5)),
        "add join");
  Check(p.AddComponent(Spec("fusion_norm", pipeline::ComponentKind::kPreprocessor,
                            3, 4, "pool_features", 1.0)),
        "add norm");
  auto model = Spec("risk_model", pipeline::ComponentKind::kModel, 4, 5,
                    "train_mlp", 30.0);
  model.params.Set("hidden", Json::Int(24));
  model.params.Set("epochs", Json::Int(30));
  model.params.Set("lr", Json::Number(0.1));
  Check(p.AddComponent(model), "add model");
  Check(p.Connect("ehr_data", "stats_features"), "edge");
  Check(p.Connect("ehr_data", "clean_features"), "edge");
  Check(p.Connect("stats_features", "fusion_join"), "edge");
  Check(p.Connect("clean_features", "fusion_join"), "edge");
  Check(p.Connect("fusion_join", "fusion_norm"), "edge");
  Check(p.Connect("fusion_norm", "risk_model"), "edge");
  return p;
}

void PrintRun(const pipeline::PipelineRunResult& r, const char* label) {
  std::printf("%s: score %.3f, %.1f simulated s\n", label, r.score,
              r.time.Total());
  for (const auto& c : r.components) {
    std::printf("  %-16s %-8s %s\n", c.name.c_str(),
                c.version.ToString().c_str(),
                c.reused ? "reused" : (c.executed ? "executed" : "skipped"));
  }
}

}  // namespace

int main() {
  std::printf("DAG fusion pipeline (diamond topology)\n");
  std::printf("======================================\n\n");

  storage::ForkBaseEngine engine;
  SimClock clock;
  pipeline::LibraryRegistry registry;
  Check(sim::RegisterWorkloadLibraries(&registry), "register libraries");
  pipeline::Executor executor(&registry, &engine, &clock);

  pipeline::Pipeline fusion = MakeFusion(0);
  std::printf("topology: ehr_data -> {stats_features, clean_features} -> "
              "fusion_join -> fusion_norm -> risk_model\n");
  std::printf("is_chain=%s, valid=%s\n\n", fusion.IsChain() ? "yes" : "no",
              fusion.Validate().ok() ? "yes" : "no");

  auto first = executor.RunDag(fusion, {});
  Check(first.status(), "first run");
  PrintRun(*first, "initial run");

  // Update only the stats branch: the clean branch and the dataset reuse
  // their cached outputs; join and model re-run (they depend on the change).
  auto second = executor.RunDag(MakeFusion(1), {});
  Check(second.status(), "second run");
  std::printf("\n");
  PrintRun(*second, "after updating stats_features only");

  std::printf("\ntotal component executions: %llu (10 = 6 initial + 4 "
              "affected by the update)\n",
              static_cast<unsigned long long>(executor.executions()));
  return 0;
}
