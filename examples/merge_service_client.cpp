// Merge as a service, end to end: start a MergeService + MergeFrontend on a
// real Unix-domain socket (the exact combined endpoint `mlcask_server
// --serve-merge` exposes), then walk the full session protocol as a client —
// submit Algorithm 2 to the SERVER, watch it through the queue, fetch the
// fingerprint-verified winner, and see tenant isolation and idempotent
// replay in action.
//
// Run: ./build/example_merge_service_client

#include <unistd.h>

#include <cstdio>
#include <string>

#include "service/merge_client.h"
#include "service/merge_frontend.h"
#include "service/merge_service.h"
#include "storage/socket_transport.h"

using namespace mlcask;

namespace {

void Check(const Status& s, const char* what) {
  if (!s.ok()) {
    std::fprintf(stderr, "%s failed: %s\n", what, s.ToString().c_str());
    std::exit(1);
  }
}

}  // namespace

int main() {
  std::printf("Merge as a service: server-side sessions over one socket\n");
  std::printf("========================================================\n\n");

  // --- server side: exactly what `mlcask_server --serve-merge` wires ------
  // A MergeService (worker pool + DRR scheduler + session table) behind a
  // stateless MergeFrontend, sharing one socket endpoint. Requests with
  // opcode >= 32 are merge-service RPCs; anything else would fall through
  // to the storage service on a combined endpoint.
  service::MergeServiceOptions options;
  options.worker_threads = 2;
  options.tenant_weights = {{"alice", 3}, {"bob", 1}};
  service::MergeService merge_service(options);
  Check(merge_service.Start(), "MergeService::Start");
  service::MergeFrontend frontend(&merge_service);

  const std::string path =
      "/tmp/mlcask-example-merge-" + std::to_string(::getpid()) + ".sock";
  auto server = storage::SocketTransportServer::Bind("unix:" + path);
  Check(server.status(), "Bind");
  Check((*server)->Serve([&frontend](std::string_view request) {
    return frontend.Handle(request);
  }),
        "Serve");
  std::printf("serving merge sessions on %s\n\n", (*server)->endpoint().c_str());

  // --- client side ---------------------------------------------------------
  auto transport = storage::SocketTransport::Connect((*server)->endpoint());
  Check(transport.status(), "Connect");
  service::MergeServiceClient alice(transport->get(), "alice");

  // Submit: the server builds the deployment, runs the metric-driven merge
  // (Algorithm 2), and parks the result in a session. The spec is small —
  // workload, scale, version fan-out, shard count — not the data itself.
  service::MergeJobSpec spec;
  spec.workload = "readmission";
  spec.scale = 0.06;
  spec.merge_shards = 1;
  auto submitted = alice.Submit(spec);
  Check(submitted.status(), "Submit");
  std::printf("alice submitted: session %s\n", submitted->session_id.c_str());

  // Poll: QUEUED -> RUNNING -> DONE, never a wedge — a session that missed
  // its deadline or was shed resolves with a typed error instead.
  auto poll = alice.Poll(submitted->session_id);
  Check(poll.status(), "Poll");
  std::printf("state now: %s (queued ahead: %llu)\n",
              service::SessionStateName(poll->state),
              static_cast<unsigned long long>(poll->queued_ahead));

  // AwaitWinner = poll until terminal + fetch. The winner crosses the wire
  // with a SHA-256 fingerprint over every field (chain, executions, commit,
  // artifact hashes); the client re-computes and verifies it on decode.
  auto winner = alice.AwaitWinner(submitted->session_id,
                                  /*poll_interval_ms=*/5,
                                  /*timeout_ms=*/120000);
  Check(winner.status(), "AwaitWinner");
  std::printf("\nwinner delivered and fingerprint-verified:\n");
  std::printf("  chain       :");
  for (const std::string& key : winner->winner_chain) {
    std::printf(" %s", key.c_str());
  }
  std::printf("\n  executions  : %llu (of %llu candidates)\n",
              static_cast<unsigned long long>(winner->component_executions),
              static_cast<unsigned long long>(winner->candidates_considered));
  std::printf("  best score  : %.4f\n", winner->best_score);
  std::printf("  artifacts   : %zu content hashes\n",
              winner->artifact_hashes.size());

  // Idempotent replay: resubmitting the same spec while its batch is gone
  // simply starts a new session, but a coalescible submit (same tenant,
  // same spec, batch still queued) or a transport-level redial replay joins
  // the EXISTING session instead of running the merge twice.
  auto again = alice.Submit(spec);
  Check(again.status(), "resubmit");
  std::printf("\nresubmitted: session %s (coalesced=%s)\n",
              again->session_id.c_str(), again->coalesced ? "yes" : "no");

  // Tenant isolation: bob holding alice's session id learns NOTHING — the
  // server answers NotFound exactly as if the session never existed.
  service::MergeServiceClient bob(transport->get(), "bob");
  auto stolen = bob.Poll(submitted->session_id);
  std::printf("bob polling alice's session: %s\n",
              stolen.status().ToString().c_str());

  // Shutdown drains: every accepted session reaches a terminal state
  // before Stop() returns; submits during the drain are rejected typed.
  (*server)->Shutdown();
  Check(merge_service.Stop(), "MergeService::Stop");
  ::unlink(path.c_str());
  std::printf("\nservice drained and stopped cleanly\n");
  return 0;
}
