#ifndef MLCASK_DATA_SCHEMA_H_
#define MLCASK_DATA_SCHEMA_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/sha256.h"
#include "common/status.h"

namespace mlcask::data {

/// Column value types supported by Table.
enum class ColumnType : uint8_t {
  kDouble = 0,
  kInt = 1,
  kString = 2,
};

const char* ColumnTypeName(ColumnType t);

/// One column's name and type.
struct FieldSpec {
  std::string name;
  ColumnType type = ColumnType::kDouble;

  bool operator==(const FieldSpec& other) const {
    return name == other.name && type == other.type;
  }
};

/// The schema of a dataset or component output. Implements the paper's
/// schema-hash proposal (Sec. IV-B): "all the column headers are extracted,
/// standardized, sorted, and then concatenated into a single flat vector",
/// then hashed with SHA-256. Non-relational data carries its determining
/// meta information (e.g. image shape, vocabulary size) in `meta`, which is
/// folded into the hash the same way.
class DataSchema {
 public:
  DataSchema() = default;
  explicit DataSchema(std::vector<FieldSpec> fields,
                      std::map<std::string, std::string> meta = {})
      : fields_(std::move(fields)), meta_(std::move(meta)) {}

  const std::vector<FieldSpec>& fields() const { return fields_; }
  const std::map<std::string, std::string>& meta() const { return meta_; }

  void AddField(std::string name, ColumnType type) {
    fields_.push_back({std::move(name), type});
  }
  void SetMeta(std::string key, std::string value) {
    meta_[std::move(key)] = std::move(value);
  }

  size_t num_fields() const { return fields_.size(); }

  /// Index of the field with `name`, or -1.
  int FieldIndex(const std::string& name) const;

  /// The canonical flat vector the paper describes: headers lower-cased,
  /// trimmed, tagged with their type, sorted, and joined. Meta entries are
  /// appended as "key=value" pairs (sorted by key).
  std::string Canonicalize() const;

  /// SHA-256 of Canonicalize().
  Hash256 SchemaHash() const;

  /// First 8 bytes of the schema hash as an integer — the compact schema id
  /// carried in component records and compatibility checks.
  uint64_t ShortId() const;

  bool operator==(const DataSchema& other) const {
    return fields_ == other.fields_ && meta_ == other.meta_;
  }

 private:
  std::vector<FieldSpec> fields_;
  std::map<std::string, std::string> meta_;
};

}  // namespace mlcask::data

#endif  // MLCASK_DATA_SCHEMA_H_
