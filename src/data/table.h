#ifndef MLCASK_DATA_TABLE_H_
#define MLCASK_DATA_TABLE_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "data/schema.h"

namespace mlcask::data {

/// A typed column: exactly one of the value vectors is populated, chosen by
/// `type`. Kept as a plain struct — Table enforces the invariants.
struct Column {
  std::string name;
  ColumnType type = ColumnType::kDouble;
  std::vector<double> doubles;
  std::vector<int64_t> ints;
  std::vector<std::string> strings;

  size_t size() const;
};

/// A small columnar table — the payload that flows between pipeline
/// components. Tabular EHR data, bag-of-words text, and flattened images all
/// travel as tables so the paper's relational schema-hash applies uniformly.
class Table {
 public:
  Table() = default;

  /// Appends a column; all columns must keep equal lengths (checked when
  /// rows exist).
  Status AddDoubleColumn(std::string name, std::vector<double> values);
  Status AddIntColumn(std::string name, std::vector<int64_t> values);
  Status AddStringColumn(std::string name, std::vector<std::string> values);

  size_t num_rows() const { return num_rows_; }
  size_t num_columns() const { return columns_.size(); }
  bool empty() const { return num_rows_ == 0; }

  const std::vector<Column>& columns() const { return columns_; }
  StatusOr<const Column*> GetColumn(const std::string& name) const;
  bool HasColumn(const std::string& name) const;

  /// Drops the named column; NotFound if absent.
  Status DropColumn(const std::string& name);

  /// The table's schema (column names/types plus any meta).
  DataSchema schema() const;

  /// Attaches non-relational meta (image shape, vocab size, ...) that
  /// participates in the schema hash.
  void SetMeta(std::string key, std::string value);
  const std::map<std::string, std::string>& meta() const { return meta_; }

  /// Extracts the named double columns as a row-major matrix buffer.
  StatusOr<std::vector<double>> ToRowMajor(
      const std::vector<std::string>& column_names) const;

  /// All double-typed columns, in declaration order.
  std::vector<std::string> DoubleColumnNames() const;

  /// Deterministic binary serialization (artifact materialization format).
  std::string Serialize() const;
  static StatusOr<Table> Deserialize(std::string_view bytes);

  /// Total payload bytes (used by the storage-time model before
  /// serialization is needed).
  uint64_t ByteSize() const;

  bool operator==(const Table& other) const;

 private:
  Status CheckLength(size_t len) const;

  std::vector<Column> columns_;
  std::map<std::string, std::string> meta_;
  size_t num_rows_ = 0;
};

}  // namespace mlcask::data

#endif  // MLCASK_DATA_TABLE_H_
