#ifndef MLCASK_DATA_GENERATORS_H_
#define MLCASK_DATA_GENERATORS_H_

#include <cstdint>
#include <string>

#include "common/status.h"
#include "data/table.h"

namespace mlcask::data {

/// Synthetic stand-ins for the paper's datasets (NUHS EHR extracts, movie
/// reviews, digit images). All generators are deterministic in `seed` and
/// expose the schema-evolution hooks the experiments need (extra columns in
/// later dataset versions).

/// EHR-style readmission table: demographics, lab values with missingness,
/// a string diagnosis code with some entries blank (the paper's "missing
/// diagnosis codes"), and a 0/1 readmission label driven by a logistic
/// ground truth.
///
/// `schema_version` 0 is the base schema; 1 adds two extra lab columns
/// (a dataset schema evolution event).
StatusOr<Table> GenerateReadmissionData(size_t rows, uint64_t seed,
                                        int schema_version = 0,
                                        double missing_rate = 0.08);

/// Longitudinal chronic-kidney-disease table for the DPM pipeline: patients
/// x visits, lab values following a latent AR(1) disease-stage process with
/// heavy observation noise, and a per-row label "progresses by next visit".
StatusOr<Table> GenerateDpmData(size_t patients, size_t visits_per_patient,
                                uint64_t seed);

/// Movie-review sentiment corpus: a "review" string column and a 0/1
/// sentiment label; token distributions differ by label through positive /
/// negative lexicons mixed with shared filler vocabulary.
StatusOr<Table> GenerateReviews(size_t rows, uint64_t seed,
                                size_t min_tokens = 20, size_t max_tokens = 60);

/// Seven-segment style digit raster images (side x side, pixel columns
/// "px0".."pxN"), digit label 0-9 and binary label "is_ge5". Digits are
/// jittered by translation and pixel noise.
StatusOr<Table> GenerateDigits(size_t rows, size_t side, uint64_t seed);

}  // namespace mlcask::data

#endif  // MLCASK_DATA_GENERATORS_H_
