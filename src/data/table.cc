#include "data/table.h"

#include <cstring>

namespace mlcask::data {

size_t Column::size() const {
  switch (type) {
    case ColumnType::kDouble:
      return doubles.size();
    case ColumnType::kInt:
      return ints.size();
    case ColumnType::kString:
      return strings.size();
  }
  return 0;
}

Status Table::CheckLength(size_t len) const {
  if (!columns_.empty() && len != num_rows_) {
    return Status::InvalidArgument(
        "column length " + std::to_string(len) + " does not match table rows " +
        std::to_string(num_rows_));
  }
  return Status::Ok();
}

Status Table::AddDoubleColumn(std::string name, std::vector<double> values) {
  MLCASK_RETURN_IF_ERROR(CheckLength(values.size()));
  if (HasColumn(name)) {
    return Status::AlreadyExists("column '" + name + "' already exists");
  }
  num_rows_ = values.size();
  Column c;
  c.name = std::move(name);
  c.type = ColumnType::kDouble;
  c.doubles = std::move(values);
  columns_.push_back(std::move(c));
  return Status::Ok();
}

Status Table::AddIntColumn(std::string name, std::vector<int64_t> values) {
  MLCASK_RETURN_IF_ERROR(CheckLength(values.size()));
  if (HasColumn(name)) {
    return Status::AlreadyExists("column '" + name + "' already exists");
  }
  num_rows_ = values.size();
  Column c;
  c.name = std::move(name);
  c.type = ColumnType::kInt;
  c.ints = std::move(values);
  columns_.push_back(std::move(c));
  return Status::Ok();
}

Status Table::AddStringColumn(std::string name,
                              std::vector<std::string> values) {
  MLCASK_RETURN_IF_ERROR(CheckLength(values.size()));
  if (HasColumn(name)) {
    return Status::AlreadyExists("column '" + name + "' already exists");
  }
  num_rows_ = values.size();
  Column c;
  c.name = std::move(name);
  c.type = ColumnType::kString;
  c.strings = std::move(values);
  columns_.push_back(std::move(c));
  return Status::Ok();
}

StatusOr<const Column*> Table::GetColumn(const std::string& name) const {
  for (const Column& c : columns_) {
    if (c.name == name) return &c;
  }
  return Status::NotFound("column '" + name + "' not in table");
}

bool Table::HasColumn(const std::string& name) const {
  for (const Column& c : columns_) {
    if (c.name == name) return true;
  }
  return false;
}

Status Table::DropColumn(const std::string& name) {
  for (auto it = columns_.begin(); it != columns_.end(); ++it) {
    if (it->name == name) {
      columns_.erase(it);
      if (columns_.empty()) num_rows_ = 0;
      return Status::Ok();
    }
  }
  return Status::NotFound("column '" + name + "' not in table");
}

DataSchema Table::schema() const {
  std::vector<FieldSpec> fields;
  fields.reserve(columns_.size());
  for (const Column& c : columns_) {
    fields.push_back({c.name, c.type});
  }
  return DataSchema(std::move(fields), meta_);
}

void Table::SetMeta(std::string key, std::string value) {
  meta_[std::move(key)] = std::move(value);
}

StatusOr<std::vector<double>> Table::ToRowMajor(
    const std::vector<std::string>& column_names) const {
  std::vector<const Column*> cols;
  cols.reserve(column_names.size());
  for (const std::string& name : column_names) {
    MLCASK_ASSIGN_OR_RETURN(const Column* c, GetColumn(name));
    if (c->type != ColumnType::kDouble) {
      return Status::InvalidArgument("column '" + name + "' is not double");
    }
    cols.push_back(c);
  }
  std::vector<double> out;
  out.reserve(num_rows_ * cols.size());
  for (size_t r = 0; r < num_rows_; ++r) {
    for (const Column* c : cols) {
      out.push_back(c->doubles[r]);
    }
  }
  return out;
}

std::vector<std::string> Table::DoubleColumnNames() const {
  std::vector<std::string> out;
  for (const Column& c : columns_) {
    if (c.type == ColumnType::kDouble) out.push_back(c.name);
  }
  return out;
}

namespace {

void PutU64(std::string* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) out->push_back(static_cast<char>(v >> (8 * i)));
}

void PutStr(std::string* out, const std::string& s) {
  PutU64(out, s.size());
  out->append(s);
}

class Reader {
 public:
  explicit Reader(std::string_view bytes) : bytes_(bytes) {}

  StatusOr<uint64_t> U64() {
    if (pos_ + 8 > bytes_.size()) return Truncated();
    uint64_t v = 0;
    for (int i = 7; i >= 0; --i) {
      v = (v << 8) | static_cast<uint8_t>(bytes_[pos_ + static_cast<size_t>(i)]);
    }
    pos_ += 8;
    return v;
  }

  StatusOr<std::string> Str() {
    MLCASK_ASSIGN_OR_RETURN(uint64_t len, U64());
    if (pos_ + len > bytes_.size()) return Truncated();
    std::string s(bytes_.substr(pos_, len));
    pos_ += len;
    return s;
  }

  StatusOr<double> F64() {
    MLCASK_ASSIGN_OR_RETURN(uint64_t bits, U64());
    double d;
    std::memcpy(&d, &bits, 8);
    return d;
  }

  StatusOr<uint8_t> Byte() {
    if (pos_ + 1 > bytes_.size()) return Truncated();
    return static_cast<uint8_t>(bytes_[pos_++]);
  }

  bool AtEnd() const { return pos_ == bytes_.size(); }

 private:
  Status Truncated() const {
    return Status::Corruption("truncated table at offset " +
                              std::to_string(pos_));
  }

  std::string_view bytes_;
  size_t pos_ = 0;
};

constexpr uint64_t kTableMagic = 0x4d4c544231ULL;  // "MLTB1"

}  // namespace

std::string Table::Serialize() const {
  std::string out;
  PutU64(&out, kTableMagic);
  PutU64(&out, num_rows_);
  PutU64(&out, columns_.size());
  PutU64(&out, meta_.size());
  for (const auto& [k, v] : meta_) {
    PutStr(&out, k);
    PutStr(&out, v);
  }
  for (const Column& c : columns_) {
    PutStr(&out, c.name);
    out.push_back(static_cast<char>(c.type));
    switch (c.type) {
      case ColumnType::kDouble:
        for (double d : c.doubles) {
          uint64_t bits;
          std::memcpy(&bits, &d, 8);
          PutU64(&out, bits);
        }
        break;
      case ColumnType::kInt:
        for (int64_t v : c.ints) PutU64(&out, static_cast<uint64_t>(v));
        break;
      case ColumnType::kString:
        for (const std::string& s : c.strings) PutStr(&out, s);
        break;
    }
  }
  return out;
}

StatusOr<Table> Table::Deserialize(std::string_view bytes) {
  Reader r(bytes);
  MLCASK_ASSIGN_OR_RETURN(uint64_t magic, r.U64());
  if (magic != kTableMagic) {
    return Status::Corruption("bad table magic");
  }
  MLCASK_ASSIGN_OR_RETURN(uint64_t num_rows, r.U64());
  MLCASK_ASSIGN_OR_RETURN(uint64_t num_cols, r.U64());
  MLCASK_ASSIGN_OR_RETURN(uint64_t num_meta, r.U64());
  Table t;
  for (uint64_t i = 0; i < num_meta; ++i) {
    MLCASK_ASSIGN_OR_RETURN(std::string k, r.Str());
    MLCASK_ASSIGN_OR_RETURN(std::string v, r.Str());
    t.SetMeta(std::move(k), std::move(v));
  }
  for (uint64_t ci = 0; ci < num_cols; ++ci) {
    MLCASK_ASSIGN_OR_RETURN(std::string name, r.Str());
    MLCASK_ASSIGN_OR_RETURN(uint8_t type_byte, r.Byte());
    if (type_byte > static_cast<uint8_t>(ColumnType::kString)) {
      return Status::Corruption("bad column type byte");
    }
    ColumnType type = static_cast<ColumnType>(type_byte);
    switch (type) {
      case ColumnType::kDouble: {
        std::vector<double> values;
        values.reserve(num_rows);
        for (uint64_t i = 0; i < num_rows; ++i) {
          MLCASK_ASSIGN_OR_RETURN(double d, r.F64());
          values.push_back(d);
        }
        MLCASK_RETURN_IF_ERROR(t.AddDoubleColumn(std::move(name), std::move(values)));
        break;
      }
      case ColumnType::kInt: {
        std::vector<int64_t> values;
        values.reserve(num_rows);
        for (uint64_t i = 0; i < num_rows; ++i) {
          MLCASK_ASSIGN_OR_RETURN(uint64_t v, r.U64());
          values.push_back(static_cast<int64_t>(v));
        }
        MLCASK_RETURN_IF_ERROR(t.AddIntColumn(std::move(name), std::move(values)));
        break;
      }
      case ColumnType::kString: {
        std::vector<std::string> values;
        values.reserve(num_rows);
        for (uint64_t i = 0; i < num_rows; ++i) {
          MLCASK_ASSIGN_OR_RETURN(std::string s, r.Str());
          values.push_back(std::move(s));
        }
        MLCASK_RETURN_IF_ERROR(t.AddStringColumn(std::move(name), std::move(values)));
        break;
      }
    }
  }
  if (!r.AtEnd()) {
    return Status::Corruption("trailing bytes after table payload");
  }
  return t;
}

uint64_t Table::ByteSize() const {
  uint64_t total = 0;
  for (const Column& c : columns_) {
    total += c.name.size() + 9;
    switch (c.type) {
      case ColumnType::kDouble:
        total += 8 * c.doubles.size();
        break;
      case ColumnType::kInt:
        total += 8 * c.ints.size();
        break;
      case ColumnType::kString:
        for (const std::string& s : c.strings) total += 8 + s.size();
        break;
    }
  }
  for (const auto& [k, v] : meta_) total += 16 + k.size() + v.size();
  return total;
}

bool Table::operator==(const Table& other) const {
  if (num_rows_ != other.num_rows_ || columns_.size() != other.columns_.size() ||
      meta_ != other.meta_) {
    return false;
  }
  for (size_t i = 0; i < columns_.size(); ++i) {
    const Column& a = columns_[i];
    const Column& b = other.columns_[i];
    if (a.name != b.name || a.type != b.type || a.doubles != b.doubles ||
        a.ints != b.ints || a.strings != b.strings) {
      return false;
    }
  }
  return true;
}

}  // namespace mlcask::data
