#include "data/generators.h"

#include <algorithm>
#include <cmath>

#include "common/rng.h"
#include "common/strings.h"

namespace mlcask::data {

StatusOr<Table> GenerateReadmissionData(size_t rows, uint64_t seed,
                                        int schema_version,
                                        double missing_rate) {
  if (rows == 0) return Status::InvalidArgument("rows must be positive");
  Pcg32 rng(seed);
  const size_t num_labs = schema_version >= 1 ? 10 : 8;

  std::vector<double> age(rows);
  std::vector<int64_t> num_diag(rows);
  std::vector<std::vector<double>> labs(num_labs, std::vector<double>(rows));
  std::vector<std::string> diag_code(rows);
  std::vector<int64_t> label(rows);

  // Ground-truth logistic weights over the latent (noise-free) lab values.
  std::vector<double> w(num_labs);
  Pcg32 wrng(seed ^ 0x9e3779b97f4a7c15ULL);
  for (double& wi : w) wi = wrng.NextGaussian() * 0.8;

  for (size_t i = 0; i < rows; ++i) {
    age[i] = std::clamp(55.0 + 18.0 * rng.NextGaussian(), 18.0, 100.0);
    num_diag[i] = static_cast<int64_t>(rng.Below(12)) + 1;
    double logit = 0.015 * (age[i] - 55.0) +
                   0.08 * (static_cast<double>(num_diag[i]) - 6.0) - 0.4;
    for (size_t j = 0; j < num_labs; ++j) {
      double latent = rng.NextGaussian();
      logit += w[j] * latent;
      double observed = latent + 0.35 * rng.NextGaussian();
      labs[j][i] = rng.Bernoulli(missing_rate)
                       ? std::nan("")  // missing lab measurement
                       : observed;
    }
    label[i] = rng.Bernoulli(1.0 / (1.0 + std::exp(-logit))) ? 1 : 0;
    diag_code[i] = rng.Bernoulli(missing_rate)
                       ? ""  // missing diagnosis code (cleansing fills these)
                       : StrFormat("D%03u", rng.Below(40));
  }

  Table t;
  MLCASK_RETURN_IF_ERROR(t.AddDoubleColumn("age", std::move(age)));
  MLCASK_RETURN_IF_ERROR(t.AddIntColumn("num_diagnoses", std::move(num_diag)));
  for (size_t j = 0; j < num_labs; ++j) {
    MLCASK_RETURN_IF_ERROR(
        t.AddDoubleColumn(StrFormat("lab_%zu", j), std::move(labs[j])));
  }
  MLCASK_RETURN_IF_ERROR(t.AddStringColumn("diag_code", std::move(diag_code)));
  MLCASK_RETURN_IF_ERROR(t.AddIntColumn("readmit_30d", std::move(label)));
  t.SetMeta("domain", "ehr");
  return t;
}

StatusOr<Table> GenerateDpmData(size_t patients, size_t visits_per_patient,
                                uint64_t seed) {
  if (patients == 0 || visits_per_patient < 2) {
    return Status::InvalidArgument(
        "need at least one patient and two visits per patient");
  }
  Pcg32 rng(seed);
  const size_t num_labs = 6;
  const size_t rows = patients * visits_per_patient;

  std::vector<int64_t> patient_id(rows), visit(rows), label(rows);
  std::vector<std::vector<double>> labs(num_labs, std::vector<double>(rows));

  for (size_t p = 0; p < patients; ++p) {
    // Latent disease stage performs a slow random walk over [0, 2]; labs are
    // noisy directional views of the stage and the progression label's
    // probability is a logistic function of the current stage (early-stage
    // patients progress, late-stage ones have plateaued).
    double stage = rng.Uniform(0.0, 2.0);
    std::vector<double> lab_offset(num_labs);
    for (double& o : lab_offset) o = rng.NextGaussian() * 0.25;
    for (size_t v = 0; v < visits_per_patient; ++v) {
      size_t i = p * visits_per_patient + v;
      patient_id[i] = static_cast<int64_t>(p);
      visit[i] = static_cast<int64_t>(v);
      for (size_t j = 0; j < num_labs; ++j) {
        double direction = (j % 2 == 0) ? 1.0 : -1.0;
        labs[j][i] = direction * stage + lab_offset[j] +
                     0.4 * rng.NextGaussian();
      }
      double p_progress = 1.0 / (1.0 + std::exp(-(2.0 - 3.0 * stage)));
      label[i] = rng.Bernoulli(p_progress) ? 1 : 0;
      stage = std::clamp(stage + 0.1 * rng.NextGaussian(), 0.0, 2.0);
    }
  }

  Table t;
  MLCASK_RETURN_IF_ERROR(t.AddIntColumn("patient_id", std::move(patient_id)));
  MLCASK_RETURN_IF_ERROR(t.AddIntColumn("visit", std::move(visit)));
  for (size_t j = 0; j < num_labs; ++j) {
    MLCASK_RETURN_IF_ERROR(
        t.AddDoubleColumn(StrFormat("lab_%zu", j), std::move(labs[j])));
  }
  MLCASK_RETURN_IF_ERROR(t.AddIntColumn("progression", std::move(label)));
  t.SetMeta("domain", "ehr-longitudinal");
  return t;
}

namespace {

const char* kPositiveWords[] = {
    "wonderful", "superb",  "moving",   "brilliant", "delightful",
    "masterful", "gripping", "charming", "excellent", "stunning",
    "joyful",    "powerful", "elegant",  "refreshing", "uplifting"};
const char* kNegativeWords[] = {
    "dreadful", "boring",  "clumsy",   "terrible", "bland",
    "tedious",  "awkward", "shallow",  "painful",  "forgettable",
    "dull",     "messy",   "lifeless", "grating",  "disappointing"};
const char* kFillerWords[] = {
    "the",    "movie",  "film",    "plot",   "actor", "scene",  "story",
    "camera", "score",  "pacing",  "script", "cast",  "studio", "sequel",
    "drama",  "comedy", "moment",  "ending", "opening", "character",
    "director", "visuals", "dialogue", "performance", "soundtrack"};

}  // namespace

StatusOr<Table> GenerateReviews(size_t rows, uint64_t seed, size_t min_tokens,
                                size_t max_tokens) {
  if (rows == 0) return Status::InvalidArgument("rows must be positive");
  if (min_tokens == 0 || max_tokens < min_tokens) {
    return Status::InvalidArgument("bad token length range");
  }
  Pcg32 rng(seed);
  std::vector<std::string> reviews(rows);
  std::vector<int64_t> label(rows);

  const size_t n_pos = std::size(kPositiveWords);
  const size_t n_neg = std::size(kNegativeWords);
  const size_t n_fill = std::size(kFillerWords);

  for (size_t i = 0; i < rows; ++i) {
    bool positive = rng.Bernoulli(0.5);
    label[i] = positive ? 1 : 0;
    size_t len = min_tokens + rng.Below(static_cast<uint32_t>(
                                   max_tokens - min_tokens + 1));
    std::vector<std::string> tokens;
    tokens.reserve(len);
    for (size_t k = 0; k < len; ++k) {
      double r = rng.NextDouble();
      if (r < 0.22) {
        // Sentiment-bearing token; 15% chance of the opposite lexicon (noise).
        bool use_pos = rng.Bernoulli(positive ? 0.85 : 0.15);
        tokens.push_back(use_pos ? kPositiveWords[rng.Below(n_pos)]
                                 : kNegativeWords[rng.Below(n_neg)]);
      } else {
        tokens.push_back(kFillerWords[rng.Below(n_fill)]);
      }
    }
    reviews[i] = StrJoin(tokens, " ");
  }

  Table t;
  MLCASK_RETURN_IF_ERROR(t.AddStringColumn("review", std::move(reviews)));
  MLCASK_RETURN_IF_ERROR(t.AddIntColumn("sentiment", std::move(label)));
  t.SetMeta("domain", "text");
  return t;
}

namespace {

/// Seven-segment encodings: segments are (a, b, c, d, e, f, g):
///    aaa
///   f   b
///    ggg
///   e   c
///    ddd
constexpr uint8_t kSegments[10] = {
    0b1111110,  // 0: abcdef
    0b0110000,  // 1: bc
    0b1101101,  // 2: abdeg
    0b1111001,  // 3: abcdg
    0b0110011,  // 4: bcfg
    0b1011011,  // 5: acdfg
    0b1011111,  // 6: acdefg
    0b1110000,  // 7: abc
    0b1111111,  // 8: all
    0b1111011,  // 9: abcdfg
};

void DrawLine(std::vector<double>* img, size_t side, int x0, int y0, int x1,
              int y1) {
  // Thick Bresenham-ish rasterization (2px brush).
  int dx = std::abs(x1 - x0), dy = std::abs(y1 - y0);
  int sx = x0 < x1 ? 1 : -1, sy = y0 < y1 ? 1 : -1;
  int err = dx - dy;
  int x = x0, y = y0;
  while (true) {
    for (int oy = 0; oy <= 1; ++oy) {
      for (int ox = 0; ox <= 1; ++ox) {
        int px = x + ox, py = y + oy;
        if (px >= 0 && py >= 0 && px < static_cast<int>(side) &&
            py < static_cast<int>(side)) {
          (*img)[static_cast<size_t>(py) * side + static_cast<size_t>(px)] = 1.0;
        }
      }
    }
    if (x == x1 && y == y1) break;
    int e2 = 2 * err;
    if (e2 > -dy) {
      err -= dy;
      x += sx;
    }
    if (e2 < dx) {
      err += dx;
      y += sy;
    }
  }
}

void DrawDigit(std::vector<double>* img, size_t side, int digit, int jx,
               int jy) {
  // Digit occupies roughly a (w x h) box with jitter offset (jx, jy).
  int w = static_cast<int>(side) / 2;
  int h = static_cast<int>(side) - 4;
  int x0 = static_cast<int>(side) / 4 + jx;
  int y0 = 2 + jy;
  int xm = x0 + w;
  int ym0 = y0, ym1 = y0 + h / 2, ym2 = y0 + h;
  uint8_t seg = kSegments[digit];
  if (seg & 0b1000000) DrawLine(img, side, x0, ym0, xm, ym0);  // a
  if (seg & 0b0100000) DrawLine(img, side, xm, ym0, xm, ym1);  // b
  if (seg & 0b0010000) DrawLine(img, side, xm, ym1, xm, ym2);  // c
  if (seg & 0b0001000) DrawLine(img, side, x0, ym2, xm, ym2);  // d
  if (seg & 0b0000100) DrawLine(img, side, x0, ym1, x0, ym2);  // e
  if (seg & 0b0000010) DrawLine(img, side, x0, ym0, x0, ym1);  // f
  if (seg & 0b0000001) DrawLine(img, side, x0, ym1, xm, ym1);  // g
}

}  // namespace

StatusOr<Table> GenerateDigits(size_t rows, size_t side, uint64_t seed) {
  if (rows == 0) return Status::InvalidArgument("rows must be positive");
  if (side < 8) return Status::InvalidArgument("side must be >= 8");
  Pcg32 rng(seed);

  std::vector<std::vector<double>> pixels(side * side,
                                          std::vector<double>(rows));
  std::vector<int64_t> digit_col(rows), binary_col(rows);
  std::vector<double> img(side * side);

  for (size_t i = 0; i < rows; ++i) {
    int digit = static_cast<int>(rng.Below(10));
    digit_col[i] = digit;
    binary_col[i] = digit >= 5 ? 1 : 0;
    std::fill(img.begin(), img.end(), 0.0);
    int jx = static_cast<int>(rng.Below(3)) - 1;
    int jy = static_cast<int>(rng.Below(3)) - 1;
    DrawDigit(&img, side, digit, jx, jy);
    for (double& p : img) {
      p = std::clamp(p + 0.08 * rng.NextGaussian(), 0.0, 1.0);
    }
    for (size_t k = 0; k < side * side; ++k) pixels[k][i] = img[k];
  }

  Table t;
  for (size_t k = 0; k < side * side; ++k) {
    MLCASK_RETURN_IF_ERROR(
        t.AddDoubleColumn(StrFormat("px%zu", k), std::move(pixels[k])));
  }
  MLCASK_RETURN_IF_ERROR(t.AddIntColumn("digit", std::move(digit_col)));
  MLCASK_RETURN_IF_ERROR(t.AddIntColumn("is_ge5", std::move(binary_col)));
  t.SetMeta("domain", "image");
  t.SetMeta("shape", StrFormat("%zux%zu", side, side));
  return t;
}

}  // namespace mlcask::data
