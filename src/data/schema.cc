#include "data/schema.h"

#include <algorithm>

#include "common/strings.h"

namespace mlcask::data {

const char* ColumnTypeName(ColumnType t) {
  switch (t) {
    case ColumnType::kDouble:
      return "double";
    case ColumnType::kInt:
      return "int";
    case ColumnType::kString:
      return "string";
  }
  return "unknown";
}

int DataSchema::FieldIndex(const std::string& name) const {
  for (size_t i = 0; i < fields_.size(); ++i) {
    if (fields_[i].name == name) return static_cast<int>(i);
  }
  return -1;
}

std::string DataSchema::Canonicalize() const {
  std::vector<std::string> headers;
  headers.reserve(fields_.size() + meta_.size());
  for (const FieldSpec& f : fields_) {
    headers.push_back(ToLower(std::string(StrTrim(f.name))) + ":" +
                      ColumnTypeName(f.type));
  }
  std::sort(headers.begin(), headers.end());
  // Meta entries are already key-sorted (std::map) and kept after columns so
  // relational and non-relational determinants never collide.
  for (const auto& [k, v] : meta_) {
    headers.push_back("#" + ToLower(std::string(StrTrim(k))) + "=" + v);
  }
  return StrJoin(headers, "|");
}

Hash256 DataSchema::SchemaHash() const {
  return Sha256::Digest(Canonicalize());
}

uint64_t DataSchema::ShortId() const {
  Hash256 h = SchemaHash();
  uint64_t id = 0;
  for (int i = 0; i < 8; ++i) {
    id = (id << 8) | h.bytes[static_cast<size_t>(i)];
  }
  // Reserve 0 as "no schema / source component".
  return id == 0 ? 1 : id;
}

}  // namespace mlcask::data
