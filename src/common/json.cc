#include "common/json.h"

#include <cmath>
#include <cstdio>
#include <cstring>

#include "common/logging.h"

namespace mlcask {

Json Json::Bool(bool b) {
  Json j;
  j.type_ = Type::kBool;
  j.bool_ = b;
  return j;
}

Json Json::Number(double d) {
  Json j;
  j.type_ = Type::kNumber;
  j.num_ = d;
  return j;
}

Json Json::Str(std::string s) {
  Json j;
  j.type_ = Type::kString;
  j.str_ = std::move(s);
  return j;
}

Json Json::Array() {
  Json j;
  j.type_ = Type::kArray;
  return j;
}

Json Json::Object() {
  Json j;
  j.type_ = Type::kObject;
  return j;
}

bool Json::AsBool() const {
  MLCASK_CHECK(type_ == Type::kBool);
  return bool_;
}

double Json::AsDouble() const {
  MLCASK_CHECK(type_ == Type::kNumber);
  return num_;
}

int64_t Json::AsInt() const {
  MLCASK_CHECK(type_ == Type::kNumber);
  return static_cast<int64_t>(std::llround(num_));
}

const std::string& Json::AsString() const {
  MLCASK_CHECK(type_ == Type::kString);
  return str_;
}

size_t Json::size() const {
  if (type_ == Type::kArray) return arr_.size();
  if (type_ == Type::kObject) return obj_.size();
  return 0;
}

const Json& Json::at(size_t i) const {
  MLCASK_CHECK(type_ == Type::kArray && i < arr_.size());
  return arr_[i];
}

void Json::Append(Json v) {
  MLCASK_CHECK(type_ == Type::kArray);
  arr_.push_back(std::move(v));
}

const Json* Json::Get(std::string_view key) const {
  if (type_ != Type::kObject) return nullptr;
  auto it = obj_.find(std::string(key));
  return it == obj_.end() ? nullptr : &it->second;
}

Json& Json::Set(std::string key, Json v) {
  MLCASK_CHECK(type_ == Type::kObject);
  obj_[std::move(key)] = std::move(v);
  return *this;
}

const std::map<std::string, Json>& Json::items() const {
  MLCASK_CHECK(type_ == Type::kObject);
  return obj_;
}

std::string Json::GetString(std::string_view key, std::string def) const {
  const Json* v = Get(key);
  return (v != nullptr && v->is_string()) ? v->str_ : def;
}

double Json::GetDouble(std::string_view key, double def) const {
  const Json* v = Get(key);
  return (v != nullptr && v->is_number()) ? v->num_ : def;
}

int64_t Json::GetInt(std::string_view key, int64_t def) const {
  const Json* v = Get(key);
  return (v != nullptr && v->is_number()) ? v->AsInt() : def;
}

bool Json::GetBool(std::string_view key, bool def) const {
  const Json* v = Get(key);
  return (v != nullptr && v->is_bool()) ? v->bool_ : def;
}

namespace {

void EscapeInto(const std::string& s, std::string* out) {
  out->push_back('"');
  for (char c : s) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\n':
        *out += "\\n";
        break;
      case '\r':
        *out += "\\r";
        break;
      case '\t':
        *out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

void NumberInto(double d, std::string* out) {
  // Integers (the common case in metafiles) print without a decimal point.
  if (std::isfinite(d) && d == std::floor(d) && std::fabs(d) < 1e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(d));
    *out += buf;
  } else {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.17g", d);
    *out += buf;
  }
}

}  // namespace

void Json::DumpTo(std::string* out, int indent, int depth) const {
  const bool pretty = indent > 0;
  std::string pad(pretty ? static_cast<size_t>(indent * (depth + 1)) : 0, ' ');
  std::string pad_close(pretty ? static_cast<size_t>(indent * depth) : 0, ' ');
  switch (type_) {
    case Type::kNull:
      *out += "null";
      break;
    case Type::kBool:
      *out += bool_ ? "true" : "false";
      break;
    case Type::kNumber:
      NumberInto(num_, out);
      break;
    case Type::kString:
      EscapeInto(str_, out);
      break;
    case Type::kArray: {
      if (arr_.empty()) {
        *out += "[]";
        break;
      }
      out->push_back('[');
      bool first = true;
      for (const Json& v : arr_) {
        if (!first) out->push_back(',');
        first = false;
        if (pretty) {
          out->push_back('\n');
          *out += pad;
        }
        v.DumpTo(out, indent, depth + 1);
      }
      if (pretty) {
        out->push_back('\n');
        *out += pad_close;
      }
      out->push_back(']');
      break;
    }
    case Type::kObject: {
      if (obj_.empty()) {
        *out += "{}";
        break;
      }
      out->push_back('{');
      bool first = true;
      for (const auto& [k, v] : obj_) {
        if (!first) out->push_back(',');
        first = false;
        if (pretty) {
          out->push_back('\n');
          *out += pad;
        }
        EscapeInto(k, out);
        out->push_back(':');
        if (pretty) out->push_back(' ');
        v.DumpTo(out, indent, depth + 1);
      }
      if (pretty) {
        out->push_back('\n');
        *out += pad_close;
      }
      out->push_back('}');
      break;
    }
  }
}

std::string Json::Dump() const {
  std::string out;
  DumpTo(&out, /*indent=*/0, /*depth=*/0);
  return out;
}

std::string Json::Pretty() const {
  std::string out;
  DumpTo(&out, /*indent=*/2, /*depth=*/0);
  return out;
}

bool Json::operator==(const Json& other) const {
  if (type_ != other.type_) return false;
  switch (type_) {
    case Type::kNull:
      return true;
    case Type::kBool:
      return bool_ == other.bool_;
    case Type::kNumber:
      return num_ == other.num_;
    case Type::kString:
      return str_ == other.str_;
    case Type::kArray:
      return arr_ == other.arr_;
    case Type::kObject:
      return obj_ == other.obj_;
  }
  return false;
}

namespace {

/// Recursive-descent JSON parser over a string_view.
class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  StatusOr<Json> ParseDocument() {
    SkipWs();
    MLCASK_ASSIGN_OR_RETURN(Json v, ParseValue());
    SkipWs();
    if (pos_ != text_.size()) {
      return Error("trailing characters after JSON value");
    }
    return v;
  }

 private:
  Status Error(const std::string& msg) const {
    return Status::InvalidArgument("json parse error at offset " +
                                   std::to_string(pos_) + ": " + msg);
  }

  void SkipWs() {
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (c == ' ' || c == '\t' || c == '\n' || c == '\r') {
        ++pos_;
      } else {
        break;
      }
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool ConsumeLiteral(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) == lit) {
      pos_ += lit.size();
      return true;
    }
    return false;
  }

  StatusOr<Json> ParseValue() {
    if (depth_ > kMaxDepth) return Error("nesting too deep");
    SkipWs();
    if (pos_ >= text_.size()) return Error("unexpected end of input");
    char c = text_[pos_];
    switch (c) {
      case '{':
        return ParseObject();
      case '[':
        return ParseArray();
      case '"': {
        MLCASK_ASSIGN_OR_RETURN(std::string s, ParseString());
        return Json::Str(std::move(s));
      }
      case 't':
        if (ConsumeLiteral("true")) return Json::Bool(true);
        return Error("invalid literal");
      case 'f':
        if (ConsumeLiteral("false")) return Json::Bool(false);
        return Error("invalid literal");
      case 'n':
        if (ConsumeLiteral("null")) return Json::Null();
        return Error("invalid literal");
      default:
        return ParseNumber();
    }
  }

  StatusOr<Json> ParseObject() {
    ++depth_;
    Consume('{');
    Json obj = Json::Object();
    SkipWs();
    if (Consume('}')) {
      --depth_;
      return obj;
    }
    while (true) {
      SkipWs();
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        return Error("expected object key string");
      }
      MLCASK_ASSIGN_OR_RETURN(std::string key, ParseString());
      SkipWs();
      if (!Consume(':')) return Error("expected ':' after key");
      MLCASK_ASSIGN_OR_RETURN(Json v, ParseValue());
      obj.Set(std::move(key), std::move(v));
      SkipWs();
      if (Consume(',')) continue;
      if (Consume('}')) break;
      return Error("expected ',' or '}' in object");
    }
    --depth_;
    return obj;
  }

  StatusOr<Json> ParseArray() {
    ++depth_;
    Consume('[');
    Json arr = Json::Array();
    SkipWs();
    if (Consume(']')) {
      --depth_;
      return arr;
    }
    while (true) {
      MLCASK_ASSIGN_OR_RETURN(Json v, ParseValue());
      arr.Append(std::move(v));
      SkipWs();
      if (Consume(',')) continue;
      if (Consume(']')) break;
      return Error("expected ',' or ']' in array");
    }
    --depth_;
    return arr;
  }

  StatusOr<std::string> ParseString() {
    Consume('"');
    std::string out;
    while (pos_ < text_.size()) {
      char c = text_[pos_++];
      if (c == '"') return out;
      if (c == '\\') {
        if (pos_ >= text_.size()) return Error("unterminated escape");
        char e = text_[pos_++];
        switch (e) {
          case '"':
            out.push_back('"');
            break;
          case '\\':
            out.push_back('\\');
            break;
          case '/':
            out.push_back('/');
            break;
          case 'n':
            out.push_back('\n');
            break;
          case 'r':
            out.push_back('\r');
            break;
          case 't':
            out.push_back('\t');
            break;
          case 'b':
            out.push_back('\b');
            break;
          case 'f':
            out.push_back('\f');
            break;
          case 'u': {
            if (pos_ + 4 > text_.size()) return Error("bad \\u escape");
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              char h = text_[pos_++];
              code <<= 4;
              if (h >= '0' && h <= '9') {
                code |= static_cast<unsigned>(h - '0');
              } else if (h >= 'a' && h <= 'f') {
                code |= static_cast<unsigned>(h - 'a' + 10);
              } else if (h >= 'A' && h <= 'F') {
                code |= static_cast<unsigned>(h - 'A' + 10);
              } else {
                return Error("bad hex digit in \\u escape");
              }
            }
            // UTF-8 encode (BMP only; surrogate pairs are not needed for
            // metafiles but are passed through as replacement bytes).
            if (code < 0x80) {
              out.push_back(static_cast<char>(code));
            } else if (code < 0x800) {
              out.push_back(static_cast<char>(0xc0 | (code >> 6)));
              out.push_back(static_cast<char>(0x80 | (code & 0x3f)));
            } else {
              out.push_back(static_cast<char>(0xe0 | (code >> 12)));
              out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3f)));
              out.push_back(static_cast<char>(0x80 | (code & 0x3f)));
            }
            break;
          }
          default:
            return Error("unknown escape");
        }
      } else {
        out.push_back(c);
      }
    }
    return Error("unterminated string");
  }

  StatusOr<Json> ParseNumber() {
    size_t start = pos_;
    if (Consume('-')) {
    }
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) return Error("invalid number");
    std::string num(text_.substr(start, pos_ - start));
    char* end = nullptr;
    double d = std::strtod(num.c_str(), &end);
    if (end != num.c_str() + num.size()) return Error("invalid number");
    return Json::Number(d);
  }

  static constexpr int kMaxDepth = 200;

  std::string_view text_;
  size_t pos_ = 0;
  int depth_ = 0;
};

}  // namespace

StatusOr<Json> Json::Parse(std::string_view text) {
  return Parser(text).ParseDocument();
}

}  // namespace mlcask
