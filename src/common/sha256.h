#ifndef MLCASK_COMMON_SHA256_H_
#define MLCASK_COMMON_SHA256_H_

#include <array>
#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

namespace mlcask {

/// A 256-bit content hash. Value type: comparable, hashable, hex-printable.
/// Used for chunk addressing in the storage engine, schema hashing (Sec. IV-B
/// of the paper), and commit ids.
struct Hash256 {
  std::array<uint8_t, 32> bytes{};

  /// Lower-case hex, 64 characters.
  std::string ToHex() const;
  /// Short prefix (first `n` hex chars) for human-readable display.
  std::string ShortHex(size_t n = 12) const;

  /// Parses 64 hex characters; returns false on malformed input.
  static bool FromHex(std::string_view hex, Hash256* out);

  bool operator==(const Hash256& other) const { return bytes == other.bytes; }
  bool operator!=(const Hash256& other) const { return bytes != other.bytes; }
  bool operator<(const Hash256& other) const { return bytes < other.bytes; }

  bool IsZero() const;
};

/// Incremental SHA-256 (FIPS 180-4). Self-contained so the library has no
/// external crypto dependency.
class Sha256 {
 public:
  Sha256() { Reset(); }

  void Reset();
  void Update(const void* data, size_t len);
  void Update(std::string_view s) { Update(s.data(), s.size()); }

  /// Finalizes and returns the digest. The object must be Reset() before
  /// further use.
  Hash256 Finish();

  /// One-shot convenience.
  static Hash256 Digest(std::string_view data);
  static Hash256 Digest(const void* data, size_t len);

 private:
  void ProcessBlock(const uint8_t* block);

  uint32_t state_[8];
  uint64_t bit_count_;
  uint8_t buffer_[64];
  size_t buffer_len_;
};

/// std::hash support so Hash256 can key unordered containers.
struct Hash256Hasher {
  size_t operator()(const Hash256& h) const {
    size_t v;
    static_assert(sizeof(v) <= sizeof(h.bytes));
    __builtin_memcpy(&v, h.bytes.data(), sizeof(v));
    return v;
  }
};

}  // namespace mlcask

#endif  // MLCASK_COMMON_SHA256_H_
