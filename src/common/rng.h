#ifndef MLCASK_COMMON_RNG_H_
#define MLCASK_COMMON_RNG_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace mlcask {

/// Deterministic PCG32 random number generator (O'Neill 2014, pcg32 variant
/// XSH-RR 64/32). All randomness in the library — synthetic data, workload
/// update scripts, random search order — flows through seeded instances so
/// every test and bench is exactly reproducible.
class Pcg32 {
 public:
  explicit Pcg32(uint64_t seed = 0x853c49e6748fea9bULL,
                 uint64_t stream = 0xda3e39cb94b95bdbULL) {
    state_ = 0;
    inc_ = (stream << 1) | 1u;
    NextU32();
    state_ += seed;
    NextU32();
  }

  /// Uniform 32-bit value.
  uint32_t NextU32() {
    uint64_t old = state_;
    state_ = old * 6364136223846793005ULL + inc_;
    uint32_t xorshifted = static_cast<uint32_t>(((old >> 18) ^ old) >> 27);
    uint32_t rot = static_cast<uint32_t>(old >> 59);
    return (xorshifted >> rot) | (xorshifted << ((32 - rot) & 31));
  }

  uint64_t NextU64() {
    return (static_cast<uint64_t>(NextU32()) << 32) | NextU32();
  }

  /// Uniform in [0, bound) without modulo bias.
  uint32_t Below(uint32_t bound) {
    if (bound <= 1) return 0;
    uint32_t threshold = (0u - bound) % bound;
    while (true) {
      uint32_t r = NextU32();
      if (r >= threshold) return r % bound;
    }
  }

  /// Uniform double in [0, 1).
  double NextDouble() { return NextU32() * (1.0 / 4294967296.0); }

  /// Uniform double in [lo, hi).
  double Uniform(double lo, double hi) {
    return lo + (hi - lo) * NextDouble();
  }

  /// Standard normal via Box-Muller (no cached spare; simple and stateless).
  double NextGaussian();

  /// Bernoulli draw with success probability p.
  bool Bernoulli(double p) { return NextDouble() < p; }

  /// In-place Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    for (std::size_t i = v->size(); i > 1; --i) {
      std::size_t j = Below(static_cast<uint32_t>(i));
      std::swap((*v)[i - 1], (*v)[j]);
    }
  }

 private:
  uint64_t state_;
  uint64_t inc_;
};

}  // namespace mlcask

#endif  // MLCASK_COMMON_RNG_H_
