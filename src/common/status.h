#ifndef MLCASK_COMMON_STATUS_H_
#define MLCASK_COMMON_STATUS_H_

#include <cstdint>
#include <optional>
#include <ostream>
#include <string>
#include <utility>

namespace mlcask {

/// Error categories used across the library. Mirrors the RocksDB/Arrow
/// convention of a small closed set of codes plus a human-readable message.
enum class StatusCode : uint8_t {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kFailedPrecondition,
  kOutOfRange,
  kCorruption,
  kIncompatible,  ///< Pipeline component compatibility violation (Def. 4).
  kUnimplemented,
  kInternal,
  kUnavailable,       ///< Transport-level failure: peer gone, connect refused.
  kDeadlineExceeded,  ///< A round trip outlived its deadline.
  kResourceExhausted,  ///< Load shed: admission queue full, retry budget spent.
};

/// Returns the canonical lower-case name of a status code ("ok", "not_found"...).
const char* StatusCodeName(StatusCode code);

/// A cheap value type carrying success or an error (code + message).
///
/// The library never throws on hot paths; fallible functions return `Status`
/// or `StatusOr<T>`. Statuses are cheap to copy (small string optimization
/// covers almost all messages).
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status Incompatible(std::string msg) {
    return Status(StatusCode::kIncompatible, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  bool IsNotFound() const { return code_ == StatusCode::kNotFound; }
  bool IsIncompatible() const { return code_ == StatusCode::kIncompatible; }
  bool IsInvalidArgument() const {
    return code_ == StatusCode::kInvalidArgument;
  }
  bool IsUnavailable() const { return code_ == StatusCode::kUnavailable; }
  bool IsDeadlineExceeded() const {
    return code_ == StatusCode::kDeadlineExceeded;
  }
  bool IsResourceExhausted() const {
    return code_ == StatusCode::kResourceExhausted;
  }

  /// "ok" or "<code>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

inline std::ostream& operator<<(std::ostream& os, const Status& s) {
  return os << s.ToString();
}

/// Result type: either a value of T or an error Status. Modeled after
/// absl::StatusOr / arrow::Result.
template <typename T>
class StatusOr {
 public:
  /// Implicit from value and from error status, so call sites read naturally:
  ///   return value;            // success
  ///   return Status::NotFound("...");  // failure
  StatusOr(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)
  StatusOr(Status status) : status_(std::move(status)) {  // NOLINT
    if (status_.ok()) {
      status_ = Status::Internal("StatusOr constructed from OK status");
    }
  }

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  /// Precondition: ok(). Checked in debug builds by the standard library.
  const T& value() const& { return *value_; }
  T& value() & { return *value_; }
  T&& value() && { return *std::move(value_); }

  const T& operator*() const& { return *value_; }
  T& operator*() & { return *value_; }
  T&& operator*() && { return *std::move(value_); }
  const T* operator->() const { return &*value_; }
  T* operator->() { return &*value_; }

  /// Returns the value or `fallback` if this holds an error.
  T value_or(T fallback) const {
    return value_.has_value() ? *value_ : std::move(fallback);
  }

 private:
  Status status_;  // OK iff value_ has a value.
  std::optional<T> value_;
};

/// Propagates errors to the caller: `MLCASK_RETURN_IF_ERROR(DoThing());`
#define MLCASK_RETURN_IF_ERROR(expr)                 \
  do {                                               \
    ::mlcask::Status _st = (expr);                   \
    if (!_st.ok()) return _st;                       \
  } while (0)

/// Unwraps a StatusOr into `lhs`, propagating errors:
/// `MLCASK_ASSIGN_OR_RETURN(auto x, ComputeX());`
#define MLCASK_ASSIGN_OR_RETURN(lhs, expr)           \
  MLCASK_ASSIGN_OR_RETURN_IMPL(                      \
      MLCASK_STATUS_CONCAT(_status_or, __LINE__), lhs, expr)

#define MLCASK_ASSIGN_OR_RETURN_IMPL(tmp, lhs, expr) \
  auto tmp = (expr);                                 \
  if (!tmp.ok()) return tmp.status();                \
  lhs = std::move(tmp).value();

#define MLCASK_STATUS_CONCAT(a, b) MLCASK_STATUS_CONCAT_IMPL(a, b)
#define MLCASK_STATUS_CONCAT_IMPL(a, b) a##b

}  // namespace mlcask

#endif  // MLCASK_COMMON_STATUS_H_
