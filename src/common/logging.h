#ifndef MLCASK_COMMON_LOGGING_H_
#define MLCASK_COMMON_LOGGING_H_

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>

namespace mlcask {
namespace internal_logging {

/// Aborts the process after printing `msg`. Used by the CHECK macros for
/// invariant violations that indicate programmer error (never data error —
/// those go through Status).
[[noreturn]] inline void FatalError(const char* file, int line,
                                    const std::string& msg) {
  std::fprintf(stderr, "[mlcask fatal] %s:%d: %s\n", file, line, msg.c_str());
  std::abort();
}

}  // namespace internal_logging
}  // namespace mlcask

/// Aborts with a message if `cond` is false. For invariants, not user errors.
#define MLCASK_CHECK(cond)                                              \
  do {                                                                  \
    if (!(cond)) {                                                      \
      ::mlcask::internal_logging::FatalError(__FILE__, __LINE__,        \
                                             "check failed: " #cond);   \
    }                                                                   \
  } while (0)

#define MLCASK_CHECK_MSG(cond, msg)                                     \
  do {                                                                  \
    if (!(cond)) {                                                      \
      std::ostringstream _oss;                                          \
      _oss << "check failed: " #cond << " — " << msg;                   \
      ::mlcask::internal_logging::FatalError(__FILE__, __LINE__,        \
                                             _oss.str());               \
    }                                                                   \
  } while (0)

/// Checks that a Status-returning expression is OK; aborts otherwise.
#define MLCASK_CHECK_OK(expr)                                           \
  do {                                                                  \
    ::mlcask::Status _st = (expr);                                      \
    if (!_st.ok()) {                                                    \
      ::mlcask::internal_logging::FatalError(                           \
          __FILE__, __LINE__, "status not ok: " + _st.ToString());      \
    }                                                                   \
  } while (0)

#endif  // MLCASK_COMMON_LOGGING_H_
