#include "common/rng.h"

#include <cmath>

namespace mlcask {

double Pcg32::NextGaussian() {
  // Box-Muller; rejects u1 == 0 to keep log() finite.
  double u1 = NextDouble();
  while (u1 <= 1e-12) u1 = NextDouble();
  double u2 = NextDouble();
  return std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * M_PI * u2);
}

}  // namespace mlcask
