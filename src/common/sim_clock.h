#ifndef MLCASK_COMMON_SIM_CLOCK_H_
#define MLCASK_COMMON_SIM_CLOCK_H_

#include <cstdint>

namespace mlcask {

/// A simulated clock measured in seconds.
///
/// The paper's evaluation reports wall-clock time on a specific GPU server.
/// This reproduction replaces wall time with a deterministic simulated clock:
/// every component charges its modeled execution cost and every storage
/// engine charges its modeled transfer cost against a SimClock. Benches then
/// report simulated seconds, which preserves the *shape* of the paper's
/// results (orderings, ratios, crossovers) while staying deterministic and
/// fast.
class SimClock {
 public:
  SimClock() = default;

  /// Current simulated time in seconds since the clock's epoch.
  double Now() const { return now_s_; }

  /// Advances the clock by `seconds` (>= 0).
  void Advance(double seconds) {
    if (seconds > 0) now_s_ += seconds;
  }

  /// Advances the clock to `seconds` if that is in the future; never moves
  /// backwards. Parallel runs use this to model one worker waiting for an
  /// artifact another worker finishes at a later virtual time.
  void AdvanceTo(double seconds) {
    if (seconds > now_s_) now_s_ = seconds;
  }

  /// Resets to t=0.
  void Reset() { now_s_ = 0; }

 private:
  double now_s_ = 0;
};

/// Accumulates the time-composition buckets the paper reports in Figs. 6/9:
/// pre-processing time, model-training time, and storage time.
struct TimeBreakdown {
  double preprocess_s = 0;
  double train_s = 0;
  double storage_s = 0;

  double Total() const { return preprocess_s + train_s + storage_s; }

  TimeBreakdown& operator+=(const TimeBreakdown& other) {
    preprocess_s += other.preprocess_s;
    train_s += other.train_s;
    storage_s += other.storage_s;
    return *this;
  }
};

}  // namespace mlcask

#endif  // MLCASK_COMMON_SIM_CLOCK_H_
