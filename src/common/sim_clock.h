#ifndef MLCASK_COMMON_SIM_CLOCK_H_
#define MLCASK_COMMON_SIM_CLOCK_H_

#include <cstdint>

namespace mlcask {

/// A simulated clock measured in seconds.
///
/// The paper's evaluation reports wall-clock time on a specific GPU server.
/// This reproduction replaces wall time with a deterministic simulated clock:
/// every component charges its modeled execution cost and every storage
/// engine charges its modeled transfer cost against a SimClock. Benches then
/// report simulated seconds, which preserves the *shape* of the paper's
/// results (orderings, ratios, crossovers) while staying deterministic and
/// fast.
class SimClock {
 public:
  SimClock() = default;

  /// Current simulated time in seconds since the clock's epoch.
  double Now() const { return now_s_; }

  /// Advances the clock by `seconds` (>= 0).
  void Advance(double seconds) {
    if (seconds > 0) now_s_ += seconds;
  }

  /// Advances the clock to `seconds` if that is in the future; never moves
  /// backwards. Parallel runs use this to model one worker waiting for an
  /// artifact another worker finishes at a later virtual time.
  void AdvanceTo(double seconds) {
    if (seconds > now_s_) now_s_ = seconds;
  }

  /// Resets to t=0.
  void Reset() { now_s_ = 0; }

 private:
  double now_s_ = 0;
};

/// The virtual-time model of pipelined chunk streaming (streamed prefix
/// handoff). A producer materializes an artifact across `chunks` uniform
/// chunk boundaries between `started_at_s` and `ready_at_s`; a consumer that
/// reuses the artifact need not wait for the FULL payload — it may begin
/// processing once the first chunk crosses the handoff boundary, overlapping
/// its own compute with the producer's tail. The legacy (non-streamed)
/// charging makes the consumer pay the producer's entire finish time
/// (SimClock::AdvanceTo(ready_at_s)) before starting; this span encodes the
/// overlap-adjusted alternative.
///
/// With producer per-chunk time p = (ready-started)/chunks and consumer
/// per-chunk time c = exec/chunks, the classic uniform two-stage pipeline
/// finishes at started + p + (chunks-1)*max(p, c) + c, which equals
/// max(first_chunk + exec, ready + exec/chunks). That is never later than
/// the legacy ready + exec (strictly earlier whenever chunks > 1 and both
/// stages cost time), so streamed charging tightens makespans and never
/// inflates them.
struct StreamSpan {
  double started_at_s = 0;  ///< Producer's virtual start.
  double ready_at_s = 0;    ///< Producer's virtual finish (last chunk).
  uint32_t chunks = 1;      ///< Uniform chunk boundaries streamed.

  /// Whether the span carries any overlap to exploit.
  bool streamable() const {
    return chunks > 1 && ready_at_s > started_at_s;
  }

  /// Virtual time the first chunk becomes consumable.
  double FirstChunkReadyS() const {
    return started_at_s +
           (ready_at_s - started_at_s) / static_cast<double>(chunks);
  }

  /// Earliest virtual finish of a consumer spending `consumer_exec_s` total
  /// compute on the stream: it still has to process the LAST chunk after the
  /// producer publishes it, so the finish is floored at
  /// ready + consumer_exec/chunks even when the consumer is fast.
  double ConsumerTailFloorS(double consumer_exec_s) const {
    return ready_at_s + consumer_exec_s / static_cast<double>(chunks);
  }
};

/// Accumulates the time-composition buckets the paper reports in Figs. 6/9:
/// pre-processing time, model-training time, and storage time.
struct TimeBreakdown {
  double preprocess_s = 0;
  double train_s = 0;
  double storage_s = 0;

  double Total() const { return preprocess_s + train_s + storage_s; }

  TimeBreakdown& operator+=(const TimeBreakdown& other) {
    preprocess_s += other.preprocess_s;
    train_s += other.train_s;
    storage_s += other.storage_s;
    return *this;
  }
};

}  // namespace mlcask

#endif  // MLCASK_COMMON_SIM_CLOCK_H_
