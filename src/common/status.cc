#include "common/status.h"

namespace mlcask {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "ok";
    case StatusCode::kInvalidArgument:
      return "invalid_argument";
    case StatusCode::kNotFound:
      return "not_found";
    case StatusCode::kAlreadyExists:
      return "already_exists";
    case StatusCode::kFailedPrecondition:
      return "failed_precondition";
    case StatusCode::kOutOfRange:
      return "out_of_range";
    case StatusCode::kCorruption:
      return "corruption";
    case StatusCode::kIncompatible:
      return "incompatible";
    case StatusCode::kUnimplemented:
      return "unimplemented";
    case StatusCode::kInternal:
      return "internal";
    case StatusCode::kUnavailable:
      return "unavailable";
    case StatusCode::kDeadlineExceeded:
      return "deadline_exceeded";
    case StatusCode::kResourceExhausted:
      return "resource_exhausted";
  }
  return "unknown";
}

std::string Status::ToString() const {
  if (ok()) return "ok";
  std::string out = StatusCodeName(code_);
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

}  // namespace mlcask
