#include "common/strings.h"

#include <cstdarg>
#include <cstdio>
#include <cctype>

namespace mlcask {

std::vector<std::string> StrSplit(std::string_view s, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  while (true) {
    size_t pos = s.find(sep, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(s.substr(start));
      break;
    }
    out.emplace_back(s.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

std::string StrJoin(const std::vector<std::string>& parts,
                    std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::string_view StrTrim(std::string_view s) {
  size_t b = 0;
  size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

std::string ToLower(std::string_view s) {
  std::string out(s);
  for (char& c : out) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return out;
}

std::string StrFormat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<size_t>(needed));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  }
  va_end(args_copy);
  return out;
}

bool ParseUint(std::string_view s, uint64_t* out) {
  if (s.empty() || out == nullptr) return false;
  uint64_t v = 0;
  for (char c : s) {
    if (c < '0' || c > '9') return false;
    uint64_t next = v * 10 + static_cast<uint64_t>(c - '0');
    if (next < v) return false;  // overflow
    v = next;
  }
  *out = v;
  return true;
}

}  // namespace mlcask
