#ifndef MLCASK_COMMON_STRINGS_H_
#define MLCASK_COMMON_STRINGS_H_

#include <string>
#include <string_view>
#include <vector>

namespace mlcask {

/// Splits `s` on `sep`, keeping empty fields ("a,,b" -> {"a","","b"}).
std::vector<std::string> StrSplit(std::string_view s, char sep);

/// Joins `parts` with `sep`.
std::string StrJoin(const std::vector<std::string>& parts,
                    std::string_view sep);

/// Strips ASCII whitespace from both ends.
std::string_view StrTrim(std::string_view s);

/// True if `s` starts with / ends with the given prefix/suffix.
bool StartsWith(std::string_view s, std::string_view prefix);
bool EndsWith(std::string_view s, std::string_view suffix);

/// Lower-cases ASCII.
std::string ToLower(std::string_view s);

/// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

/// Parses a non-negative integer; returns false on malformed input.
bool ParseUint(std::string_view s, uint64_t* out);

}  // namespace mlcask

#endif  // MLCASK_COMMON_STRINGS_H_
