#ifndef MLCASK_COMMON_JSON_H_
#define MLCASK_COMMON_JSON_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace mlcask {

/// A small self-contained JSON document model, parser, and writer.
///
/// Metafiles in MLCask (library metafiles, dataset metafiles, pipeline
/// metafiles — Sec. III of the paper) are stored as JSON blobs in the storage
/// engine, so the library needs round-trippable JSON without an external
/// dependency. Object keys keep deterministic (sorted) order so serialized
/// metafiles are byte-stable and hash-stable.
class Json {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  Json() : type_(Type::kNull) {}

  static Json Null() { return Json(); }
  static Json Bool(bool b);
  static Json Number(double d);
  static Json Int(int64_t i) { return Number(static_cast<double>(i)); }
  static Json Str(std::string s);
  static Json Array();
  static Json Object();

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_bool() const { return type_ == Type::kBool; }
  bool is_number() const { return type_ == Type::kNumber; }
  bool is_string() const { return type_ == Type::kString; }
  bool is_array() const { return type_ == Type::kArray; }
  bool is_object() const { return type_ == Type::kObject; }

  /// Accessors; preconditions checked with MLCASK_CHECK in the .cc file.
  bool AsBool() const;
  double AsDouble() const;
  int64_t AsInt() const;
  const std::string& AsString() const;

  /// Array access.
  size_t size() const;
  const Json& at(size_t i) const;
  void Append(Json v);

  /// Object access. `Get` returns nullptr when the key is absent.
  const Json* Get(std::string_view key) const;
  Json& Set(std::string key, Json v);
  bool Has(std::string_view key) const { return Get(key) != nullptr; }
  const std::map<std::string, Json>& items() const;

  /// Typed object getters with defaults, for concise metafile reading.
  std::string GetString(std::string_view key, std::string def = "") const;
  double GetDouble(std::string_view key, double def = 0) const;
  int64_t GetInt(std::string_view key, int64_t def = 0) const;
  bool GetBool(std::string_view key, bool def = false) const;

  /// Compact serialization (no whitespace). Deterministic: object keys are
  /// emitted in sorted order.
  std::string Dump() const;
  /// Pretty serialization with 2-space indent.
  std::string Pretty() const;

  /// Parses a JSON document. Numbers are stored as double (adequate for
  /// metafiles, which carry small integers and hyperparameters).
  static StatusOr<Json> Parse(std::string_view text);

  bool operator==(const Json& other) const;

 private:
  void DumpTo(std::string* out, int indent, int depth) const;

  Type type_;
  bool bool_ = false;
  double num_ = 0;
  std::string str_;
  std::vector<Json> arr_;
  std::map<std::string, Json> obj_;
};

}  // namespace mlcask

#endif  // MLCASK_COMMON_JSON_H_
