#ifndef MLCASK_MERGE_SEARCH_TREE_H_
#define MLCASK_MERGE_SEARCH_TREE_H_

#include <cmath>
#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "merge/compat_lut.h"
#include "merge/search_space.h"
#include "pipeline/component.h"

namespace mlcask::merge {

/// A node of the pipeline search tree (paper Fig. 4). Mirrors the paper's
/// TreeNode: children, the node's component version, an execution-status
/// flag, and (for prioritized search) a score.
struct TreeNode {
  /// Component version at this node; nullptr for the virtual root.
  const pipeline::ComponentVersionSpec* spec = nullptr;
  int level = -1;  ///< Depth: -1 for root, 0 for f_0, etc.
  std::vector<std::unique_ptr<TreeNode>> children;
  bool executed = false;      ///< Checkpoint exists (green node).
  double score = std::nan(""); ///< Prioritized-search node score.

  bool has_score() const { return !std::isnan(score); }
  bool is_leaf() const { return children.empty(); }
};

/// A root-to-leaf path — one pre-merge pipeline candidate.
using CandidateChain = std::vector<const pipeline::ComponentVersionSpec*>;

/// The pipeline search tree built over a merge search space (Algorithm 1),
/// plus the pruning and traversal operations of Sec. VI.
class PipelineSearchTree {
 public:
  /// Algorithm 1: level i holds every version in S(f_i) under every node of
  /// level i-1.
  static PipelineSearchTree Build(const SearchSpace& space);

  TreeNode* root() { return root_.get(); }
  const TreeNode* root() const { return root_.get(); }

  size_t NumNodes() const;   ///< Excluding the virtual root.
  size_t NumLeaves() const;

  /// PC pruning (Sec. VI-A): removes children whose (parent, child) pair is
  /// absent from the LUT, then removes subtrees that can no longer reach the
  /// final level (their candidates would be truncated pipelines). Returns
  /// the number of nodes removed.
  size_t PruneIncompatible(const CompatLut& lut);

  /// PR step 1 (Sec. VI-B): marks nodes whose chain prefix has a checkpoint
  /// in history. `has_checkpoint(chain)` is queried for every node's
  /// root-to-node chain. Returns the number of nodes marked.
  size_t MarkCheckpoints(
      const std::function<bool(const CandidateChain&)>& has_checkpoint);

  /// All pre-merge pipeline candidates in depth-first order — the order
  /// Algorithm 2 executes them in.
  std::vector<CandidateChain> Candidates() const;

  /// The leaves in the same depth-first order Candidates() uses, so
  /// Leaves()[i] is the node whose root-to-leaf path is Candidates()[i].
  std::vector<const TreeNode*> Leaves() const;

  /// Child -> parent pointers for every node (the root maps to nullptr) —
  /// what score propagation walks upward during prioritized search.
  std::unordered_map<const TreeNode*, const TreeNode*> ParentIndex() const;

  /// Depth (number of component levels).
  size_t NumLevels() const { return num_levels_; }

 private:
  std::unique_ptr<TreeNode> root_;
  size_t num_levels_ = 0;
};

}  // namespace mlcask::merge

#endif  // MLCASK_MERGE_SEARCH_TREE_H_
