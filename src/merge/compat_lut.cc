#include "merge/compat_lut.h"

namespace mlcask::merge {

CompatLut CompatLut::Build(const SearchSpace& space) {
  CompatLut lut;
  for (size_t level = 0; level + 1 < space.components.size(); ++level) {
    const ComponentSearchSpace& parents = space.components[level];
    const ComponentSearchSpace& children = space.components[level + 1];
    for (const pipeline::ComponentVersionSpec& p : parents.versions) {
      for (const pipeline::ComponentVersionSpec& c : children.versions) {
        if (p.CompatibleWith(c)) {
          lut.pairs_.emplace(p.Key(), c.Key());
        }
      }
    }
  }
  return lut;
}

bool CompatLut::Compatible(const pipeline::ComponentVersionSpec& parent,
                           const pipeline::ComponentVersionSpec& child) const {
  return pairs_.count({parent.Key(), child.Key()}) != 0;
}

}  // namespace mlcask::merge
