#ifndef MLCASK_MERGE_PRIORITIZED_H_
#define MLCASK_MERGE_PRIORITIZED_H_

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "merge/merge_op.h"
#include "merge/search_tree.h"

namespace mlcask::merge {

/// Order in which the pre-merge candidates are visited.
enum class SearchMode {
  kPrioritized,  ///< Greedy descent by propagated node scores (Sec. VII-E).
  kRandom,       ///< Uniformly random order (the paper's comparison arm).
};

/// One candidate visit within a trial.
struct SearchStep {
  size_t candidate_index = 0;  ///< Index into candidates().
  double end_time_s = 0;       ///< Sim-clock offset when the run finished.
  double score = 0;
};

/// One full pass over all N candidates.
struct TrialResult {
  std::vector<SearchStep> steps;
  double best_score = 0;
  /// 1-based step at which the trial's best score was first reached.
  size_t steps_to_optimal = 0;
  /// Virtual makespan of the trial: with one worker the serial sim time,
  /// with N workers the longest worker timeline.
  double wall_clock_s = 0;
  /// Component executions the trial performed (cache hits excluded) — the
  /// paper's pruned-candidate metric. Identical between serial and parallel
  /// runs: the cache's in-flight guards dedup shared prefixes across
  /// workers.
  uint64_t executions = 0;
};

/// Knobs for one trial.
struct TrialOptions {
  SearchMode mode = SearchMode::kPrioritized;
  uint64_t seed = 1;
  /// Workers draining the candidate frontier concurrently. 1 reproduces the
  /// serial search exactly; N > 1 preserves the prioritized semantics —
  /// every claim takes the best-scoring unclaimed leaf under the scores
  /// known at claim time, and a worker's completed score steers candidates
  /// not yet dequeued.
  size_t num_workers = 1;
  /// Shared long-lived ExecutionCore (non-owning; must outlive the trial).
  /// When null the search lazily builds one fallback pool and reuses it
  /// across its trials (sized by the first trial's worker count; virtual
  /// widths per trial are unaffected). Pass the deployment pool to share
  /// real threads with the rest of the system.
  pipeline::ExecutionCore* core = nullptr;
};

/// The prioritized pipeline search: visits all candidates of the (PC-pruned,
/// PR-seeded) search tree, preferring subtrees with high propagated scores.
/// Node scores start from the trained pipelines on HEAD and MERGE_HEAD and
/// each parent's score is the mean of its scored children; after every run
/// the new leaf score is propagated back up.
class PrioritizedSearch {
 public:
  PrioritizedSearch(version::PipelineRepo* repo,
                    pipeline::LibraryRepo* libraries,
                    const pipeline::LibraryRegistry* registry,
                    storage::StorageEngine* engine)
      : repo_(repo),
        libraries_(libraries),
        registry_(registry),
        engine_(engine) {}

  /// Builds the search context for merging `merge_branch` into
  /// `head_branch`: search space, PC-pruned tree, and initial scores.
  Status Prepare(const std::string& head_branch,
                 const std::string& merge_branch);

  size_t num_candidates() const { return candidates_.size(); }
  const std::vector<CandidateChain>& candidates() const { return candidates_; }

  /// Scores seeded from history (candidate index -> committed score) — the
  /// "initial scores ... assigned using scores of the trained pipelines on
  /// MERGE_HEAD and HEAD".
  const std::unordered_map<size_t, double>& initial_scores() const {
    return initial_scores_;
  }

  /// Runs one trial: visits all candidates in the mode's order, measuring
  /// simulated end time and score per step. Each trial uses a fresh executor
  /// (seeded with history checkpoints) and `seed` for model training, so
  /// repeated trials vary realistically. With options.num_workers > 1 the
  /// frontier is drained concurrently on the ExecutionCore; steps are
  /// reported in virtual end-time order.
  StatusOr<TrialResult> RunTrial(const TrialOptions& options);

  /// Serial convenience overload (the pre-parallel API).
  StatusOr<TrialResult> RunTrial(SearchMode mode, uint64_t seed) {
    TrialOptions options;
    options.mode = mode;
    options.seed = seed;
    return RunTrial(options);
  }

 private:
  StatusOr<SearchStep> RunCandidate(pipeline::Executor* executor,
                                    SimClock* clock, size_t index,
                                    uint64_t seed);

  version::PipelineRepo* repo_;
  pipeline::LibraryRepo* libraries_;
  const pipeline::LibraryRegistry* registry_;
  storage::StorageEngine* engine_;

  std::unique_ptr<SearchSpace> space_;
  std::unique_ptr<PipelineSearchTree> tree_;
  std::vector<CandidateChain> candidates_;
  /// Leaves in candidate order: leaves_[i] ends Candidates()[i].
  std::vector<const TreeNode*> leaves_;
  std::unordered_map<const TreeNode*, size_t> leaf_index_;
  /// Initial scores for leaves that correspond to pipelines trained in
  /// history (keyed by candidate index).
  std::unordered_map<size_t, double> initial_scores_;
  std::string head_branch_;
  std::string merge_branch_;
  /// Fallback pool for trials that inject no TrialOptions::core; built at
  /// most once per search, not per trial.
  pipeline::LazyExecutionCore fallback_core_;
};

}  // namespace mlcask::merge

#endif  // MLCASK_MERGE_PRIORITIZED_H_
