#include "merge/search_tree.h"

namespace mlcask::merge {

namespace {

void CountNodes(const TreeNode& node, size_t* nodes, size_t* leaves) {
  for (const auto& child : node.children) {
    *nodes += 1;
    if (child->is_leaf()) *leaves += 1;
    CountNodes(*child, nodes, leaves);
  }
}

size_t PruneNode(TreeNode* node, const CompatLut& lut, size_t final_level) {
  size_t removed = 0;
  auto& children = node->children;
  for (auto it = children.begin(); it != children.end();) {
    TreeNode* child = it->get();
    bool incompatible =
        node->spec != nullptr && !lut.Compatible(*node->spec, *child->spec);
    if (incompatible) {
      // Count the whole subtree we are dropping.
      size_t sub_nodes = 1, sub_leaves = 0;
      CountNodes(*child, &sub_nodes, &sub_leaves);
      removed += sub_nodes;
      it = children.erase(it);
      continue;
    }
    removed += PruneNode(child, lut, final_level);
    // A non-final node whose children were all pruned cannot complete a
    // pipeline; drop it too.
    if (child->children.empty() &&
        static_cast<size_t>(child->level) + 1 != final_level) {
      removed += 1;
      it = children.erase(it);
      continue;
    }
    ++it;
  }
  return removed;
}

size_t MarkNode(TreeNode* node, CandidateChain* chain,
                const std::function<bool(const CandidateChain&)>& has_checkpoint) {
  size_t marked = 0;
  for (auto& child : node->children) {
    chain->push_back(child->spec);
    if (!child->executed && has_checkpoint(*chain)) {
      child->executed = true;
      ++marked;
    }
    marked += MarkNode(child.get(), chain, has_checkpoint);
    chain->pop_back();
  }
  return marked;
}

void Enumerate(const TreeNode& node, CandidateChain* chain,
               std::vector<CandidateChain>* out) {
  if (node.is_leaf() && node.spec != nullptr) {
    out->push_back(*chain);
    return;
  }
  for (const auto& child : node.children) {
    chain->push_back(child->spec);
    Enumerate(*child, chain, out);
    chain->pop_back();
  }
}

}  // namespace

PipelineSearchTree PipelineSearchTree::Build(const SearchSpace& space) {
  PipelineSearchTree tree;
  tree.root_ = std::make_unique<TreeNode>();
  tree.root_->executed = true;  // virtual root, per Algorithm 1
  tree.num_levels_ = space.components.size();

  // Level-order expansion: every node at level i-1 gets a child per version
  // in S(f_i).
  std::vector<TreeNode*> frontier{tree.root_.get()};
  for (size_t level = 0; level < space.components.size(); ++level) {
    std::vector<TreeNode*> next;
    for (TreeNode* parent : frontier) {
      for (const pipeline::ComponentVersionSpec& spec :
           space.components[level].versions) {
        auto child = std::make_unique<TreeNode>();
        child->spec = &spec;
        child->level = static_cast<int>(level);
        next.push_back(child.get());
        parent->children.push_back(std::move(child));
      }
    }
    frontier = std::move(next);
  }
  return tree;
}

size_t PipelineSearchTree::NumNodes() const {
  size_t nodes = 0, leaves = 0;
  CountNodes(*root_, &nodes, &leaves);
  return nodes;
}

size_t PipelineSearchTree::NumLeaves() const {
  size_t nodes = 0, leaves = 0;
  CountNodes(*root_, &nodes, &leaves);
  return leaves;
}

size_t PipelineSearchTree::PruneIncompatible(const CompatLut& lut) {
  return PruneNode(root_.get(), lut, num_levels_);
}

size_t PipelineSearchTree::MarkCheckpoints(
    const std::function<bool(const CandidateChain&)>& has_checkpoint) {
  CandidateChain chain;
  return MarkNode(root_.get(), &chain, has_checkpoint);
}

std::vector<CandidateChain> PipelineSearchTree::Candidates() const {
  std::vector<CandidateChain> out;
  CandidateChain chain;
  Enumerate(*root_, &chain, &out);
  return out;
}

std::vector<const TreeNode*> PipelineSearchTree::Leaves() const {
  std::vector<const TreeNode*> out;
  std::function<void(const TreeNode&)> walk = [&](const TreeNode& node) {
    if (node.is_leaf() && node.spec != nullptr) {
      out.push_back(&node);
      return;
    }
    for (const auto& child : node.children) walk(*child);
  };
  walk(*root_);
  return out;
}

std::unordered_map<const TreeNode*, const TreeNode*>
PipelineSearchTree::ParentIndex() const {
  std::unordered_map<const TreeNode*, const TreeNode*> parent;
  parent[root_.get()] = nullptr;
  std::function<void(const TreeNode&)> walk = [&](const TreeNode& node) {
    for (const auto& child : node.children) {
      parent[child.get()] = &node;
      walk(*child);
    }
  };
  walk(*root_);
  return parent;
}

}  // namespace mlcask::merge
