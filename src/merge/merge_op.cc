#include "merge/merge_op.h"

#include <algorithm>
#include <chrono>
#include <numeric>
#include <set>
#include <unordered_map>

#include "merge/compat_lut.h"
#include "pipeline/checkout.h"

namespace mlcask::merge {

namespace {

/// Groups candidate indices by their subtree — the leaves under one deepest
/// shared prefix (the chain minus its final component) — and balances the
/// groups across `num_shards` shards, longest-processing-time first. A
/// subtree never splits: its candidates share cached prefixes, and keeping
/// them on one shard (one trial executor) is what keeps the summed
/// execution count identical to the single-node drain. Returns per-shard
/// candidate-index lists in DFS order and fills `shard_of` per candidate.
std::vector<std::vector<size_t>> PartitionSubtrees(
    const std::vector<CandidateChain>& candidates, size_t num_shards,
    std::vector<size_t>* shard_of) {
  std::unordered_map<Hash256, size_t, Hash256Hasher> group_of;
  std::vector<std::vector<size_t>> groups;  // first-appearance (DFS) order
  for (size_t i = 0; i < candidates.size(); ++i) {
    CandidateChain prefix = candidates[i];
    if (!prefix.empty()) prefix.pop_back();
    auto [it, inserted] =
        group_of.emplace(pipeline::Executor::ChainKey(prefix), groups.size());
    if (inserted) groups.emplace_back();
    groups[it->second].push_back(i);
  }
  // LPT: biggest group onto the least-loaded shard; stable sort and
  // lowest-index tie-breaks keep the assignment deterministic.
  std::vector<size_t> order(groups.size());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return groups[a].size() > groups[b].size();
  });
  std::vector<std::vector<size_t>> shards(num_shards);
  std::vector<size_t> load(num_shards, 0);
  for (size_t g : order) {
    const size_t target = static_cast<size_t>(
        std::min_element(load.begin(), load.end()) - load.begin());
    load[target] += groups[g].size();
    for (size_t i : groups[g]) shards[target].push_back(i);
  }
  for (std::vector<size_t>& list : shards) {
    std::sort(list.begin(), list.end());  // DFS order within the shard
  }
  shard_of->assign(candidates.size(), 0);
  for (size_t s = 0; s < num_shards; ++s) {
    for (size_t i : shards[s]) (*shard_of)[i] = s;
  }
  return shards;
}

}  // namespace

Status MergeOperation::SeedCheckpoints(pipeline::Executor* executor,
                                       const SearchSpace& space,
                                       const std::string& head_branch,
                                       const std::string& merge_branch,
                                       std::set<Hash256>* checkpoint_keys) {
  // Checkpoints come from every pipeline trained in the history relevant to
  // the merge: the common ancestor plus the commits on both branches.
  std::vector<const version::Commit*> commits;
  MLCASK_ASSIGN_OR_RETURN(const version::Commit* ancestor,
                          repo_->Get(space.common_ancestor));
  commits.push_back(ancestor);
  for (const std::string& branch : {head_branch, merge_branch}) {
    MLCASK_ASSIGN_OR_RETURN(const version::Commit* head, repo_->Head(branch));
    for (const version::Commit* c :
         repo_->graph().CommitsSince(head->id, space.common_ancestor)) {
      commits.push_back(c);
    }
  }
  for (const version::Commit* commit : commits) {
    MLCASK_RETURN_IF_ERROR(pipeline::SeedExecutorFromCommit(
        *commit, *libraries_, engine_, executor, checkpoint_keys));
  }
  return Status::Ok();
}

pipeline::ExecutionCore* MergeOperation::ShardCore(size_t shard,
                                                   size_t real_threads) {
  std::lock_guard<std::mutex> lock(shard_core_mu_);
  while (shard_cores_.size() <= shard) {
    // With num_workers == 1 a shard core is inline (no OS threads): under
    // the concurrent dispatch its whole drain runs on the dispatch pool's
    // thread for that shard, so real parallelism is one core per shard.
    // With num_workers > 1 the shard core carries that many real threads
    // and the shard's candidates genuinely race each other too. Real
    // thread counts only shape wall-clock; virtual results are identical
    // either way.
    shard_cores_.push_back(std::make_unique<pipeline::ExecutionCore>(
        std::max<size_t>(1, real_threads)));
  }
  return shard_cores_[shard].get();
}

StatusOr<MergeReport> MergeOperation::Merge(const std::string& head_branch,
                                            const std::string& merge_branch,
                                            const MergeOptions& options) {
  MergeReport report;

  MLCASK_ASSIGN_OR_RETURN(bool ff,
                          repo_->CanFastForward(head_branch, merge_branch));
  MLCASK_ASSIGN_OR_RETURN(const version::Commit* merge_head,
                          repo_->Head(merge_branch));
  if (ff) {
    // Fast-forward (Fig. 2): duplicate MERGE_HEAD's latest version onto the
    // base branch with both parents; no search needed.
    report.fast_forward = true;
    report.best_score = merge_head->snapshot.score;
    report.metric = merge_head->snapshot.metric;
    MLCASK_ASSIGN_OR_RETURN(
        report.merge_commit,
        repo_->CommitMerge(head_branch, merge_head->id, merge_head->snapshot,
                           options.author,
                           "fast-forward merge of " + merge_branch));
    return report;
  }

  MLCASK_ASSIGN_OR_RETURN(
      SearchSpace space,
      BuildSearchSpace(*repo_, *libraries_, head_branch, merge_branch));
  report.common_ancestor = space.common_ancestor;
  report.candidates_total = space.NumCandidates();

  PipelineSearchTree tree = PipelineSearchTree::Build(space);
  report.tree_nodes_before_pruning = tree.NumNodes();

  if (options.prune_compatibility) {
    CompatLut lut = CompatLut::Build(space);
    report.pruned_by_compatibility = tree.PruneIncompatible(lut);
  }

  // One trial executor per shard (single-node = exactly one): each shard's
  // artifact cache is private — the real deployment this models keeps trial
  // outputs on the worker that computed them — so every shard seeds its own
  // checkpoints from the shared storage engine.
  const size_t num_shards = std::max<size_t>(1, options.shards);
  pipeline::ArtifactCache::Options cache_options;
  cache_options.max_bytes = options.cache_max_bytes;
  std::vector<std::unique_ptr<pipeline::Executor>> executors;
  executors.reserve(num_shards);
  for (size_t s = 0; s < num_shards; ++s) {
    executors.push_back(std::make_unique<pipeline::Executor>(
        registry_, engine_, /*clock=*/nullptr, cache_options));
  }
  std::set<Hash256> checkpoint_keys;
  if (options.reuse_outputs) {
    for (std::unique_ptr<pipeline::Executor>& executor : executors) {
      MLCASK_RETURN_IF_ERROR(SeedCheckpoints(executor.get(), space,
                                             head_branch, merge_branch,
                                             &checkpoint_keys));
    }
    report.checkpoints_marked =
        tree.MarkCheckpoints([&](const CandidateChain& chain) {
          return checkpoint_keys.count(pipeline::Executor::ChainKey(chain)) !=
                 0;
        });
  }

  MLCASK_ASSIGN_OR_RETURN(const version::Commit* head_commit,
                          repo_->Head(head_branch));
  const std::string pipeline_name = repo_->name();
  (void)head_commit;

  std::vector<CandidateChain> candidates = tree.Candidates();
  report.candidates_considered = candidates.size();

  const uint64_t bytes_before = engine_->stats().physical_bytes;
  const double clock_start = clock_ != nullptr ? clock_->Now() : 0;

  pipeline::ExecutorOptions eo;
  eo.reuse_cached_outputs = options.reuse_outputs;
  // Runtime discovery of incompatibility: when PC pruning is on the
  // remaining candidates are all compatible anyway; when it is off the
  // incompatible ones must burn upstream compute before failing, exactly as
  // "MLCask w/o PCPR" does in Sec. VII-D.
  eo.precheck_compatibility = false;
  eo.store_outputs = options.store_trial_outputs;
  eo.seed = options.seed;
  eo.streamed_handoff = options.streamed_handoff;

  // Assign candidate subtrees to shards. Single-node keeps the whole DFS
  // list on shard 0 — the partitioner degenerates to one group list there,
  // so both modes share one drain implementation.
  std::vector<size_t> shard_of(candidates.size(), 0);
  std::vector<std::vector<size_t>> shard_lists;
  if (num_shards > 1) {
    shard_lists = PartitionSubtrees(candidates, num_shards, &shard_of);
  } else {
    shard_lists.emplace_back(candidates.size());
    std::iota(shard_lists[0].begin(), shard_lists[0].end(), 0);
  }
  report.shards_used = num_shards;
  for (const std::vector<size_t>& list : shard_lists) {
    report.shard_candidates.push_back(list.size());
  }

  const size_t num_workers = std::max<size_t>(1, options.num_workers);
  std::vector<pipeline::PipelineRunResult> runs(candidates.size());
  std::vector<double> end_times(candidates.size(), 0);
  std::vector<double> shard_makespans(num_shards, clock_start);

  // Drain one shard's candidate list through its executor on its core:
  // Algorithm 2's claims stay FIFO in candidate (DFS) order, so the prefix
  // locality the search tree was built for survives both parallelism and
  // sharding; each claimed candidate starts on the earliest free VIRTUAL
  // worker slot (list scheduling, the repo-wide virtual-time convention).
  // A checkpoint one worker publishes propagates to every later claim
  // through the shard's shared artifact cache, and two workers racing the
  // same prefix dedup through its in-flight lease — which is why
  // component_executions and the selected winner are provably identical to
  // the serial walk. With one worker the drain reproduces the serial loop
  // exactly (same claims, same single timeline). Every shard starts at
  // clock_start on its own virtual timeline: shards model machines running
  // in parallel, so the merge's makespan is the slowest shard's drain.
  // Drain state is per-shard (executor, cache, candidate indices, makespan
  // slot; `runs`/`end_times` writes are disjoint by index), so drains may
  // run sequentially OR concurrently in real time with identical results.
  auto drain_shard = [&](size_t shard_index) -> Status {
    pipeline::Executor& executor = *executors[shard_index];
    const std::vector<size_t>& indices = shard_lists[shard_index];
    std::mutex mu;
    size_t cursor = 0;
    bool aborted = false;
    double shard_makespan = clock_start;
    pipeline::VirtualWorkerPool worker_slots(num_workers, clock_start);

    auto worker_body =
        [&](pipeline::ExecutionCore::WorkerContext&) -> Status {
      for (;;) {
        size_t index = 0;
        SimClock clock;
        {
          std::lock_guard<std::mutex> lock(mu);
          if (aborted || cursor >= indices.size()) return Status::Ok();
          index = indices[cursor++];
          clock.AdvanceTo(worker_slots.ClaimEarliest());
        }
        const CandidateChain& chain = candidates[index];
        std::vector<pipeline::ComponentVersionSpec> specs;
        specs.reserve(chain.size());
        for (const pipeline::ComponentVersionSpec* s : chain) {
          specs.push_back(*s);
        }
        StatusOr<pipeline::Pipeline> p =
            pipeline::Pipeline::Chain(pipeline_name, specs);
        StatusOr<pipeline::PipelineRunResult> run = p.status();
        if (p.ok()) {
          pipeline::ExecutorOptions candidate_eo = eo;
          candidate_eo.clock = &clock;  // this worker's virtual timeline
          run = executor.Run(*p, candidate_eo);
        }
        {
          std::lock_guard<std::mutex> lock(mu);
          worker_slots.Release(clock.Now());
          if (!run.ok()) {
            aborted = true;
            return run.status();
          }
          shard_makespan = std::max(shard_makespan, clock.Now());
          end_times[index] = clock.Now() - clock_start;
          runs[index] = *std::move(run);
        }
      }
    };
    pipeline::ExecutionCore* core =
        num_shards == 1 ? fallback_core_.Get(options.core, num_workers)
                        : ShardCore(shard_index, num_workers);
    Status status =
        core->RunWorkers(worker_body, clock_start, num_workers).status();
    // RunWorkers joined every body; the local makespan is stable now.
    shard_makespans[shard_index] = shard_makespan;
    return status;
  };

  const auto drain_wall_start = std::chrono::steady_clock::now();
  if (num_shards == 1) {
    MLCASK_RETURN_IF_ERROR(drain_shard(0));
  } else if (!options.concurrent_shard_drains) {
    // Sequential real-time dispatch (the A/B baseline): shards still
    // overlap in VIRTUAL time — each starts at clock_start — but their
    // real wall-clock adds up.
    for (size_t s = 0; s < num_shards; ++s) {
      MLCASK_RETURN_IF_ERROR(drain_shard(s));
    }
  } else {
    // Concurrent real-time dispatch: one dispatch-pool thread per shard
    // runs that shard's whole drain, so merge wall-clock scales with real
    // cores. Shard cores are built up front (outside the racing bodies);
    // statuses are collected and reduced in shard order so the reported
    // failure is deterministic.
    for (size_t s = 0; s < num_shards; ++s) ShardCore(s, num_workers);
    pipeline::ExecutionCore* dispatch =
        shard_dispatch_core_.Get(nullptr, num_shards);
    std::vector<Status> shard_status(num_shards, Status::Ok());
    auto dispatch_body =
        [&](pipeline::ExecutionCore::WorkerContext& ctx) -> Status {
      if (ctx.worker_index < num_shards) {
        shard_status[ctx.worker_index] = drain_shard(ctx.worker_index);
      }
      return Status::Ok();
    };
    MLCASK_RETURN_IF_ERROR(
        dispatch->RunWorkers(dispatch_body, clock_start, num_shards)
            .status());
    for (size_t s = 0; s < num_shards; ++s) {
      MLCASK_RETURN_IF_ERROR(shard_status[s]);
    }
  }
  report.drain_wall_ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - drain_wall_start)
          .count();
  double makespan = clock_start;
  for (double m : shard_makespans) makespan = std::max(makespan, m);
  report.makespan_s = makespan - clock_start;
  if (clock_ != nullptr) clock_->AdvanceTo(makespan);

  // Reduce in candidate order — stable across worker AND shard counts, so
  // the argmax (first maximum in DFS order) matches the serial walk exactly.
  version::PipelineSnapshot best_snapshot;
  for (size_t index = 0; index < candidates.size(); ++index) {
    const pipeline::PipelineRunResult& run = runs[index];
    CandidateOutcome outcome;
    outcome.chain = candidates[index];
    outcome.incompatible = run.compatibility_failure;
    outcome.metrics = run.metrics;
    outcome.time = run.time;
    outcome.end_time_s = end_times[index];
    report.total_time += run.time;

    // The objective: the primary score, or the named metric when the user
    // asked to optimize a specific one.
    double objective = run.score;
    std::string objective_name = run.metric;
    if (!options.optimize_metric.empty()) {
      auto it = run.metrics.find(options.optimize_metric);
      if (it == run.metrics.end() && !run.compatibility_failure) {
        return Status::InvalidArgument(
            "candidate does not report metric '" + options.optimize_metric +
            "'");
      }
      objective = it != run.metrics.end() ? it->second : std::nan("");
      objective_name = options.optimize_metric;
    }
    outcome.score = objective;

    if (!run.compatibility_failure && !std::isnan(objective) &&
        (std::isnan(report.best_score) || objective > report.best_score)) {
      report.best_score = objective;
      report.metric = objective_name;
      report.best_index = static_cast<int>(report.outcomes.size());
      best_snapshot = run.snapshot;
    }
    report.outcomes.push_back(std::move(outcome));
  }
  if (report.best_index < 0) {
    return Status::FailedPrecondition(
        "merge found no feasible pipeline candidate");
  }

  // MLCask keeps trial outputs local; only the merge result is persisted
  // ("saves the final optimal pipeline only once", Sec. VII-D). The winner's
  // artifacts are assembled from the cache of the shard that ran it, then
  // committed through ONE PutMany batch — on a ShardedStorageEngine that is
  // a two-phase commit across the shards the artifact keys route to, so a
  // merge result spanning shards persists all-or-nothing.
  if (!options.store_trial_outputs) {
    const size_t winner_index = static_cast<size_t>(report.best_index);
    const CandidateChain& winner = report.outcomes[winner_index].chain;
    pipeline::Executor& winner_executor = *executors[shard_of[winner_index]];
    CandidateChain prefix;
    std::vector<storage::PutRequest> batch;
    std::vector<size_t> batch_component;  ///< Winner position per request.
    // Rolling pin: holding prefix i's EntryPtr keeps it resident (eviction
    // skips pinned entries) while prefix i+1 is fetched or recomputed, so
    // the pinned working set stays the same couple of entries as during
    // the drain; each serialized payload is copied into the batch, so the
    // entry itself need not stay pinned until the commit.
    pipeline::ArtifactCache::EntryPtr prev_pin;
    for (size_t i = 0; i < winner.size(); ++i) {
      prefix.push_back(winner[i]);
      pipeline::ArtifactCache::EntryPtr entry =
          winner_executor.FindCachedEntry(prefix);
      if (entry == nullptr) {
        // The byte cap evicted this prefix during the drain. The merge
        // result must still persist complete: recompute it (the previous
        // prefix is pinned, so the re-run resumes there and recomputes
        // exactly one component) and charge the time like any other
        // cap-induced recomputation.
        std::vector<pipeline::ComponentVersionSpec> specs;
        specs.reserve(prefix.size());
        for (const pipeline::ComponentVersionSpec* s : prefix) {
          specs.push_back(*s);
        }
        MLCASK_ASSIGN_OR_RETURN(
            pipeline::Pipeline p,
            pipeline::Pipeline::Chain(pipeline_name, specs));
        pipeline::ExecutorOptions rerun_eo = eo;
        rerun_eo.reuse_cached_outputs = true;
        SimClock rerun_clock;
        rerun_clock.AdvanceTo(clock_ != nullptr ? clock_->Now() : 0);
        rerun_eo.clock = &rerun_clock;
        MLCASK_ASSIGN_OR_RETURN(pipeline::PipelineRunResult rerun,
                                winner_executor.Run(p, rerun_eo));
        report.total_time += rerun.time;
        if (clock_ != nullptr) clock_->AdvanceTo(rerun_clock.Now());
        entry = winner_executor.FindCachedEntry(prefix);
        if (entry == nullptr) continue;  // defensive; publish just happened
      }
      batch.push_back({"artifact/" + pipeline_name + "/" + winner[i]->Key(),
                       entry->table.Serialize()});
      batch_component.push_back(i);
      prev_pin = std::move(entry);
    }
    MLCASK_ASSIGN_OR_RETURN(std::vector<storage::PutResult> puts,
                            engine_->PutMany(batch));
    for (size_t j = 0; j < puts.size(); ++j) {
      report.total_time.storage_s += puts[j].storage_time_s;
      if (clock_ != nullptr) clock_->Advance(puts[j].storage_time_s);
      const size_t i = batch_component[j];
      if (i < best_snapshot.components.size()) {
        best_snapshot.components[i].output_id = puts[j].id;
      }
    }
  }
  // Snapshotted AFTER winner materialization so cap-induced rerun activity
  // (executions, evictions, peak bytes) is visible in the report, matching
  // the time already charged to total_time. Uncapped merges never rerun,
  // so the executions-identical-across-workers invariant is unaffected.
  // Sharded merges sum across the per-shard executors and caches.
  report.component_executions = 0;
  report.cache_stats = pipeline::ArtifactCache::Stats();
  for (const std::unique_ptr<pipeline::Executor>& executor : executors) {
    report.component_executions += executor->executions();
    pipeline::ArtifactCache::Stats s = executor->cache_stats();
    report.cache_stats.bytes += s.bytes;
    report.cache_stats.peak_bytes += s.peak_bytes;
    report.cache_stats.evictions += s.evictions;
    report.cache_stats.insertions += s.insertions;
    report.cache_stats.largest_entry_bytes =
        std::max(report.cache_stats.largest_entry_bytes,
                 s.largest_entry_bytes);
  }
  report.storage_bytes = engine_->stats().physical_bytes - bytes_before;

  MLCASK_ASSIGN_OR_RETURN(
      report.merge_commit,
      repo_->CommitMerge(head_branch, merge_head->id, best_snapshot,
                         options.author,
                         "metric-driven merge of " + merge_branch));
  // Transfer ownership of the specs the candidate chains point into; moving
  // the vectors preserves their heap buffers, so the pointers stay valid.
  report.search_space = std::move(space);
  return report;
}

}  // namespace mlcask::merge
