#include "merge/merge_op.h"

#include <algorithm>
#include <set>

#include "merge/compat_lut.h"
#include "pipeline/checkout.h"

namespace mlcask::merge {

Status MergeOperation::SeedCheckpoints(pipeline::Executor* executor,
                                       const SearchSpace& space,
                                       const std::string& head_branch,
                                       const std::string& merge_branch,
                                       std::set<Hash256>* checkpoint_keys) {
  // Checkpoints come from every pipeline trained in the history relevant to
  // the merge: the common ancestor plus the commits on both branches.
  std::vector<const version::Commit*> commits;
  MLCASK_ASSIGN_OR_RETURN(const version::Commit* ancestor,
                          repo_->Get(space.common_ancestor));
  commits.push_back(ancestor);
  for (const std::string& branch : {head_branch, merge_branch}) {
    MLCASK_ASSIGN_OR_RETURN(const version::Commit* head, repo_->Head(branch));
    for (const version::Commit* c :
         repo_->graph().CommitsSince(head->id, space.common_ancestor)) {
      commits.push_back(c);
    }
  }
  for (const version::Commit* commit : commits) {
    MLCASK_RETURN_IF_ERROR(pipeline::SeedExecutorFromCommit(
        *commit, *libraries_, engine_, executor, checkpoint_keys));
  }
  return Status::Ok();
}

StatusOr<MergeReport> MergeOperation::Merge(const std::string& head_branch,
                                            const std::string& merge_branch,
                                            const MergeOptions& options) {
  MergeReport report;

  MLCASK_ASSIGN_OR_RETURN(bool ff,
                          repo_->CanFastForward(head_branch, merge_branch));
  MLCASK_ASSIGN_OR_RETURN(const version::Commit* merge_head,
                          repo_->Head(merge_branch));
  if (ff) {
    // Fast-forward (Fig. 2): duplicate MERGE_HEAD's latest version onto the
    // base branch with both parents; no search needed.
    report.fast_forward = true;
    report.best_score = merge_head->snapshot.score;
    report.metric = merge_head->snapshot.metric;
    MLCASK_ASSIGN_OR_RETURN(
        report.merge_commit,
        repo_->CommitMerge(head_branch, merge_head->id, merge_head->snapshot,
                           options.author,
                           "fast-forward merge of " + merge_branch));
    return report;
  }

  MLCASK_ASSIGN_OR_RETURN(
      SearchSpace space,
      BuildSearchSpace(*repo_, *libraries_, head_branch, merge_branch));
  report.common_ancestor = space.common_ancestor;
  report.candidates_total = space.NumCandidates();

  PipelineSearchTree tree = PipelineSearchTree::Build(space);
  report.tree_nodes_before_pruning = tree.NumNodes();

  if (options.prune_compatibility) {
    CompatLut lut = CompatLut::Build(space);
    report.pruned_by_compatibility = tree.PruneIncompatible(lut);
  }

  pipeline::ArtifactCache::Options cache_options;
  cache_options.max_bytes = options.cache_max_bytes;
  pipeline::Executor executor(registry_, engine_, /*clock=*/nullptr,
                              cache_options);
  std::set<Hash256> checkpoint_keys;
  if (options.reuse_outputs) {
    MLCASK_RETURN_IF_ERROR(SeedCheckpoints(&executor, space, head_branch,
                                           merge_branch, &checkpoint_keys));
    report.checkpoints_marked =
        tree.MarkCheckpoints([&](const CandidateChain& chain) {
          return checkpoint_keys.count(pipeline::Executor::ChainKey(chain)) !=
                 0;
        });
  }

  MLCASK_ASSIGN_OR_RETURN(const version::Commit* head_commit,
                          repo_->Head(head_branch));
  const std::string pipeline_name = repo_->name();
  (void)head_commit;

  std::vector<CandidateChain> candidates = tree.Candidates();
  report.candidates_considered = candidates.size();

  const uint64_t bytes_before = engine_->stats().physical_bytes;
  const double clock_start = clock_ != nullptr ? clock_->Now() : 0;

  pipeline::ExecutorOptions eo;
  eo.reuse_cached_outputs = options.reuse_outputs;
  // Runtime discovery of incompatibility: when PC pruning is on the
  // remaining candidates are all compatible anyway; when it is off the
  // incompatible ones must burn upstream compute before failing, exactly as
  // "MLCask w/o PCPR" does in Sec. VII-D.
  eo.precheck_compatibility = false;
  eo.store_outputs = options.store_trial_outputs;
  eo.seed = options.seed;

  // Drain Algorithm 2's candidate list through the shared execution pool.
  // Claims are FIFO in candidate (DFS) order, so the prefix locality the
  // search tree was built for survives parallelism; each claimed candidate
  // starts on the earliest free VIRTUAL worker slot (list scheduling, the
  // repo-wide virtual-time convention). A checkpoint one worker publishes
  // propagates to every later claim through the shared artifact cache, and
  // two workers racing the same prefix dedup through its in-flight lease —
  // which is why component_executions and the selected winner are provably
  // identical to the serial walk. With one worker the drain reproduces the
  // serial loop exactly (same claims, same single timeline).
  const size_t num_workers = std::max<size_t>(1, options.num_workers);
  std::mutex mu;
  size_t cursor = 0;
  bool aborted = false;
  pipeline::VirtualWorkerPool worker_slots(num_workers, clock_start);
  double makespan = clock_start;
  std::vector<pipeline::PipelineRunResult> runs(candidates.size());
  std::vector<double> end_times(candidates.size(), 0);

  auto worker_body =
      [&](pipeline::ExecutionCore::WorkerContext&) -> Status {
    for (;;) {
      size_t index = 0;
      SimClock clock;
      {
        std::lock_guard<std::mutex> lock(mu);
        if (aborted || cursor >= candidates.size()) return Status::Ok();
        index = cursor++;
        clock.AdvanceTo(worker_slots.ClaimEarliest());
      }
      const CandidateChain& chain = candidates[index];
      std::vector<pipeline::ComponentVersionSpec> specs;
      specs.reserve(chain.size());
      for (const pipeline::ComponentVersionSpec* s : chain) {
        specs.push_back(*s);
      }
      StatusOr<pipeline::Pipeline> p =
          pipeline::Pipeline::Chain(pipeline_name, specs);
      StatusOr<pipeline::PipelineRunResult> run = p.status();
      if (p.ok()) {
        pipeline::ExecutorOptions candidate_eo = eo;
        candidate_eo.clock = &clock;  // this worker's virtual timeline
        run = executor.Run(*p, candidate_eo);
      }
      {
        std::lock_guard<std::mutex> lock(mu);
        worker_slots.Release(clock.Now());
        if (!run.ok()) {
          aborted = true;
          return run.status();
        }
        makespan = std::max(makespan, clock.Now());
        end_times[index] = clock.Now() - clock_start;
        runs[index] = *std::move(run);
      }
    }
  };

  pipeline::ExecutionCore* core =
      fallback_core_.Get(options.core, num_workers);
  MLCASK_RETURN_IF_ERROR(
      core->RunWorkers(worker_body, clock_start, num_workers).status());
  report.makespan_s = makespan - clock_start;
  if (clock_ != nullptr) clock_->AdvanceTo(makespan);

  // Aggregate in candidate order — stable across worker counts, so the
  // argmax (first maximum in DFS order) matches the serial walk exactly.
  version::PipelineSnapshot best_snapshot;
  for (size_t index = 0; index < candidates.size(); ++index) {
    const pipeline::PipelineRunResult& run = runs[index];
    CandidateOutcome outcome;
    outcome.chain = candidates[index];
    outcome.incompatible = run.compatibility_failure;
    outcome.metrics = run.metrics;
    outcome.time = run.time;
    outcome.end_time_s = end_times[index];
    report.total_time += run.time;

    // The objective: the primary score, or the named metric when the user
    // asked to optimize a specific one.
    double objective = run.score;
    std::string objective_name = run.metric;
    if (!options.optimize_metric.empty()) {
      auto it = run.metrics.find(options.optimize_metric);
      if (it == run.metrics.end() && !run.compatibility_failure) {
        return Status::InvalidArgument(
            "candidate does not report metric '" + options.optimize_metric +
            "'");
      }
      objective = it != run.metrics.end() ? it->second : std::nan("");
      objective_name = options.optimize_metric;
    }
    outcome.score = objective;

    if (!run.compatibility_failure && !std::isnan(objective) &&
        (std::isnan(report.best_score) || objective > report.best_score)) {
      report.best_score = objective;
      report.metric = objective_name;
      report.best_index = static_cast<int>(report.outcomes.size());
      best_snapshot = run.snapshot;
    }
    report.outcomes.push_back(std::move(outcome));
  }
  if (report.best_index < 0) {
    return Status::FailedPrecondition(
        "merge found no feasible pipeline candidate");
  }

  // MLCask keeps trial outputs local; only the merge result is persisted
  // ("saves the final optimal pipeline only once", Sec. VII-D).
  if (!options.store_trial_outputs) {
    const CandidateChain& winner = report.outcomes[static_cast<size_t>(
                                                       report.best_index)]
                                       .chain;
    CandidateChain prefix;
    // Rolling pin: holding prefix i's EntryPtr keeps it resident (eviction
    // skips pinned entries) while prefix i+1 is fetched or recomputed, so
    // the pinned working set stays the same couple of entries as during
    // the drain.
    pipeline::ArtifactCache::EntryPtr prev_pin;
    for (size_t i = 0; i < winner.size(); ++i) {
      prefix.push_back(winner[i]);
      pipeline::ArtifactCache::EntryPtr entry =
          executor.FindCachedEntry(prefix);
      if (entry == nullptr) {
        // The byte cap evicted this prefix during the drain. The merge
        // result must still persist complete: recompute it (the previous
        // prefix is pinned, so the re-run resumes there and recomputes
        // exactly one component) and charge the time like any other
        // cap-induced recomputation.
        std::vector<pipeline::ComponentVersionSpec> specs;
        specs.reserve(prefix.size());
        for (const pipeline::ComponentVersionSpec* s : prefix) {
          specs.push_back(*s);
        }
        MLCASK_ASSIGN_OR_RETURN(
            pipeline::Pipeline p,
            pipeline::Pipeline::Chain(pipeline_name, specs));
        pipeline::ExecutorOptions rerun_eo = eo;
        rerun_eo.reuse_cached_outputs = true;
        SimClock rerun_clock;
        rerun_clock.AdvanceTo(clock_ != nullptr ? clock_->Now() : 0);
        rerun_eo.clock = &rerun_clock;
        MLCASK_ASSIGN_OR_RETURN(pipeline::PipelineRunResult rerun,
                                executor.Run(p, rerun_eo));
        report.total_time += rerun.time;
        if (clock_ != nullptr) clock_->AdvanceTo(rerun_clock.Now());
        entry = executor.FindCachedEntry(prefix);
        if (entry == nullptr) continue;  // defensive; publish just happened
      }
      MLCASK_ASSIGN_OR_RETURN(
          storage::PutResult put,
          engine_->Put("artifact/" + pipeline_name + "/" + winner[i]->Key(),
                       entry->table.Serialize()));
      report.total_time.storage_s += put.storage_time_s;
      if (clock_ != nullptr) clock_->Advance(put.storage_time_s);
      if (i < best_snapshot.components.size()) {
        best_snapshot.components[i].output_id = put.id;
      }
      prev_pin = std::move(entry);
    }
  }
  // Snapshotted AFTER winner materialization so cap-induced rerun activity
  // (executions, evictions, peak bytes) is visible in the report, matching
  // the time already charged to total_time. Uncapped merges never rerun,
  // so the executions-identical-across-workers invariant is unaffected.
  report.component_executions = executor.executions();
  report.cache_stats = executor.cache_stats();
  report.storage_bytes = engine_->stats().physical_bytes - bytes_before;

  MLCASK_ASSIGN_OR_RETURN(
      report.merge_commit,
      repo_->CommitMerge(head_branch, merge_head->id, best_snapshot,
                         options.author,
                         "metric-driven merge of " + merge_branch));
  // Transfer ownership of the specs the candidate chains point into; moving
  // the vectors preserves their heap buffers, so the pointers stay valid.
  report.search_space = std::move(space);
  return report;
}

}  // namespace mlcask::merge
