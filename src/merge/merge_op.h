#ifndef MLCASK_MERGE_MERGE_OP_H_
#define MLCASK_MERGE_MERGE_OP_H_

#include <cmath>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/sim_clock.h"
#include "common/status.h"
#include "merge/search_space.h"
#include "merge/search_tree.h"
#include "pipeline/execution_core.h"
#include "pipeline/executor.h"
#include "pipeline/library_repo.h"
#include "storage/storage_engine.h"
#include "version/pipeline_repo.h"

namespace mlcask::merge {

/// Ablation knobs matching the paper's evaluation arms (Sec. VII-B):
///  - MLCask:            prune_compatibility=true,  reuse_outputs=true
///  - MLCask w/o PR:     prune_compatibility=true,  reuse_outputs=false
///  - MLCask w/o PCPR:   prune_compatibility=false, reuse_outputs=false
struct MergeOptions {
  bool prune_compatibility = true;  ///< PC: prune via the compatibility LUT.
  bool reuse_outputs = true;        ///< PR: reuse checkpoints + tree outputs.
  /// Whether trial runs archive every component output to storage. MLCask
  /// keeps trial outputs local and materializes only the winner; the
  /// ablation arms archive like the folder-based baselines do.
  bool store_trial_outputs = false;
  /// Which metric to maximize. Empty selects each pipeline's primary score;
  /// otherwise the named entry of the model's metric set is used (Sec. V:
  /// different metrics can yield different optimal merge results).
  std::string optimize_metric;
  uint64_t seed = 1;
  std::string author = "mlcask";
  /// Workers draining the candidate list concurrently; 1 reproduces
  /// Algorithm 2's serial depth-first walk exactly. `component_executions`
  /// and the selected winner are identical across worker counts — racing
  /// shared prefixes dedup through the artifact cache's in-flight leases.
  size_t num_workers = 1;
  /// Shared long-lived ExecutionCore (non-owning; must outlive the call).
  /// When null, the MergeOperation lazily builds one pool and reuses it
  /// across its Merge calls — never one per call (see the pool-ownership
  /// rules in execution_core.h). Single-node drains only: with shards >= 2
  /// each shard drains through its own lazily-built core (sized
  /// `num_workers` real threads, inline when 1) and this pool is not
  /// consulted.
  pipeline::ExecutionCore* core = nullptr;
  /// Distributed-merge partitioning (paper Sec. VII-F made real): with
  /// shards >= 2, Algorithm 2's candidate subtrees — leaves grouped under
  /// their deepest shared prefix — are assigned to shards by longest-
  /// processing-time-first balancing, and each shard drains its groups
  /// through its own trial executor and ExecutionCore on an independent
  /// virtual timeline (num_workers applies per shard). Winners reduce in
  /// global DFS order, so the selected winner and the summed
  /// component_executions are identical to the single-node path whenever
  /// cross-group shared prefixes are checkpointed (always true for
  /// two-branch scenario merges: interior levels come from committed
  /// pipelines); makespan_s becomes the slowest shard's drain. 0/1 =
  /// single-node (the historical path, bit-for-bit).
  size_t shards = 1;
  /// Byte cap for the trial executor's artifact cache (0 = unbounded): long
  /// merge searches trade recomputation for bounded memory. Leased slots
  /// and entries held by running candidates are never evicted.
  uint64_t cache_max_bytes = 0;
  /// REAL-time parallelism for sharded drains. With shards >= 2 and this
  /// set (the default), the per-shard candidate drains are dispatched onto
  /// concurrently running per-shard ExecutionCores — real OS threads, so
  /// merge wall-clock scales with cores — while every shard keeps its
  /// independent VIRTUAL timeline starting at the merge's clock origin.
  /// Shard state is disjoint (each shard owns its executor, cache, and
  /// candidate indices), so the winner, component_executions, makespan_s,
  /// and persisted artifact hashes are bit-identical to the sequential
  /// real-time dispatch (tests/test_sharded_engine.cc asserts this at
  /// 1/2/4/8 shards); `MergeReport::drain_wall_ms` shows the real-time
  /// difference. False preserves the historical sequential dispatch (A/B
  /// baseline — the real-time bench measures both). On an error, the
  /// concurrent dispatch still drains every shard and reports the failure
  /// of the lowest-numbered failing shard, where the sequential dispatch
  /// stops at the first failing shard.
  bool concurrent_shard_drains = true;
  /// Streamed prefix handoff in the virtual-time model (see
  /// ExecutorOptions::streamed_handoff): candidates that reuse an artifact
  /// still being produced on another worker's timeline charge
  /// overlap-adjusted wait (start at the first chunk boundary) instead of
  /// the producer's full finish time. Tightens makespan_s, never inflates
  /// it; executions and the winner are charging-invariant. False restores
  /// the legacy full-wait charging for A/B comparison.
  bool streamed_handoff = true;
};

/// One executed (or skipped) pre-merge pipeline candidate.
struct CandidateOutcome {
  CandidateChain chain;
  double score = std::nan("");
  std::map<std::string, double> metrics;  ///< Full metric set, if evaluated.
  TimeBreakdown time;
  bool incompatible = false;  ///< Failed (or would fail) at runtime.
  double end_time_s = 0;      ///< Sim-clock offset when this candidate finished.
};

/// Full accounting of a metric-driven merge.
struct MergeReport {
  bool fast_forward = false;
  Hash256 common_ancestor;
  size_t tree_nodes_before_pruning = 0;
  size_t pruned_by_compatibility = 0;
  size_t checkpoints_marked = 0;
  size_t candidates_total = 0;      ///< Upper bound before PC pruning.
  size_t candidates_considered = 0; ///< Actually walked by Algorithm 2.
  uint64_t component_executions = 0;
  std::vector<CandidateOutcome> outcomes;
  int best_index = -1;
  double best_score = std::nan("");
  std::string metric;
  TimeBreakdown total_time;  ///< CET/CST components; CPT = Total().
  /// Virtual makespan of the candidate drain: the wall-clock of the search
  /// on a num_workers-wide machine (list-scheduled over virtual worker
  /// slots). With one worker this equals the serial candidate time; CPT
  /// (total_time) is worker-count-invariant while makespan_s shrinks.
  double makespan_s = 0;
  /// Artifact-cache telemetry of the trial executor: peak resident bytes
  /// vs. the configured cap, and how many entries the LRU policy dropped.
  /// Sharded merges aggregate across the per-shard caches (byte fields sum,
  /// so peak_bytes upper-bounds the true concurrent peak).
  pipeline::ArtifactCache::Stats cache_stats;
  /// Sharded-drain accounting: how many shards drained candidates and how
  /// many candidates each was assigned (single-node reports one entry
  /// holding the full candidate count).
  size_t shards_used = 1;
  std::vector<size_t> shard_candidates;
  /// REAL (steady-clock) wall time of the candidate-drain phase, in
  /// milliseconds — the one deliberately non-virtual number in the report,
  /// measuring how well concurrent shard drains use the host's cores
  /// (bench_micro_merge_realtime gates on the sequential/concurrent ratio).
  /// Virtual metrics (makespan_s, total_time) are unaffected by it.
  double drain_wall_ms = 0;
  uint64_t storage_bytes = 0;  ///< Bytes written during merge (CSS delta).
  Hash256 merge_commit;
  /// Owns the component specs that every CandidateChain in `outcomes` points
  /// into — keeps those pointers valid for the lifetime of the report.
  SearchSpace search_space;
};

/// The metric-driven merge operation (Sec. V-VI): builds the component
/// search space from both branches' history since the common ancestor,
/// constructs the pipeline search tree (Algorithm 1), prunes it (PC),
/// seeds checkpoints (PR), executes the candidates depth-first
/// (Algorithm 2), and commits the argmax-score pipeline as a two-parent
/// merge commit.
class MergeOperation {
 public:
  MergeOperation(version::PipelineRepo* repo, pipeline::LibraryRepo* libraries,
                 const pipeline::LibraryRegistry* registry,
                 storage::StorageEngine* engine, SimClock* clock)
      : repo_(repo),
        libraries_(libraries),
        registry_(registry),
        engine_(engine),
        clock_(clock) {}

  /// Merges `merge_branch` into `head_branch`. Handles fast-forward when
  /// possible; otherwise performs the metric-driven search.
  StatusOr<MergeReport> Merge(const std::string& head_branch,
                              const std::string& merge_branch,
                              const MergeOptions& options);

 private:
  /// Seeds the executor cache with checkpoints recorded in the history of
  /// both branches (the green nodes of Fig. 4).
  Status SeedCheckpoints(pipeline::Executor* executor,
                         const SearchSpace& space,
                         const std::string& head_branch,
                         const std::string& merge_branch,
                         std::set<Hash256>* checkpoint_keys);

  /// Per-shard ExecutionCore for sharded drains: built lazily ONCE per
  /// MergeOperation and reused by every later call, per the pool-ownership
  /// rules in execution_core.h. `real_threads` sizes a core the first time
  /// its shard is seen (later calls reuse whatever was built — real thread
  /// count never affects virtual results, only wall-clock).
  pipeline::ExecutionCore* ShardCore(size_t shard, size_t real_threads);

  version::PipelineRepo* repo_;
  pipeline::LibraryRepo* libraries_;
  const pipeline::LibraryRegistry* registry_;
  storage::StorageEngine* engine_;
  SimClock* clock_;
  /// Fallback pool for Merge calls that inject no shared core; built at
  /// most once per MergeOperation and reused.
  pipeline::LazyExecutionCore fallback_core_;
  std::mutex shard_core_mu_;
  std::vector<std::unique_ptr<pipeline::ExecutionCore>> shard_cores_;
  /// Dispatch pool for CONCURRENT shard drains: one real thread per shard
  /// (sized by the first sharded call), each running one shard's whole
  /// drain body. Built lazily once per MergeOperation and reused — never
  /// per call.
  pipeline::LazyExecutionCore shard_dispatch_core_;
};

}  // namespace mlcask::merge

#endif  // MLCASK_MERGE_MERGE_OP_H_
