#include "merge/prioritized.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/rng.h"
#include "merge/compat_lut.h"
#include "pipeline/checkout.h"

namespace mlcask::merge {

Status PrioritizedSearch::Prepare(const std::string& head_branch,
                                  const std::string& merge_branch) {
  head_branch_ = head_branch;
  merge_branch_ = merge_branch;

  MLCASK_ASSIGN_OR_RETURN(
      SearchSpace space,
      BuildSearchSpace(*repo_, *libraries_, head_branch, merge_branch));
  space_ = std::make_unique<SearchSpace>(std::move(space));

  tree_ = std::make_unique<PipelineSearchTree>(
      PipelineSearchTree::Build(*space_));
  CompatLut lut = CompatLut::Build(*space_);
  tree_->PruneIncompatible(lut);

  // Index leaves by candidate order (the DFS enumeration order).
  candidates_ = tree_->Candidates();
  leaf_index_.clear();
  {
    size_t next = 0;
    // Walk the tree in the same DFS order Candidates() uses.
    std::function<void(const TreeNode*)> walk = [&](const TreeNode* node) {
      if (node->is_leaf() && node->spec != nullptr) {
        leaf_index_[node] = next++;
        return;
      }
      for (const auto& child : node->children) walk(child.get());
    };
    walk(tree_->root());
  }

  // Initial scores from pipelines trained in history on either branch.
  initial_scores_.clear();
  auto chain_key = [](const CandidateChain& chain) {
    return pipeline::Executor::ChainKey(chain);
  };
  std::unordered_map<Hash256, size_t, Hash256Hasher> key_to_index;
  for (size_t i = 0; i < candidates_.size(); ++i) {
    key_to_index[chain_key(candidates_[i])] = i;
  }
  MLCASK_ASSIGN_OR_RETURN(const version::Commit* ancestor,
                          repo_->Get(space_->common_ancestor));
  std::vector<const version::Commit*> commits{ancestor};
  for (const std::string& branch : {head_branch, merge_branch}) {
    MLCASK_ASSIGN_OR_RETURN(const version::Commit* head, repo_->Head(branch));
    for (const version::Commit* c :
         repo_->graph().CommitsSince(head->id, space_->common_ancestor)) {
      commits.push_back(c);
    }
  }
  for (const version::Commit* commit : commits) {
    if (!commit->snapshot.has_score()) continue;
    std::vector<const pipeline::ComponentVersionSpec*> chain;
    bool resolved = true;
    std::vector<const pipeline::ComponentVersionSpec*> ptrs;
    for (const version::ComponentRecord& rec : commit->snapshot.components) {
      auto spec = libraries_->Get(rec.name, rec.version);
      if (!spec.ok()) {
        resolved = false;
        break;
      }
      ptrs.push_back(*spec);
    }
    (void)chain;
    if (!resolved) continue;
    auto it = key_to_index.find(pipeline::Executor::ChainKey(ptrs));
    if (it != key_to_index.end()) {
      initial_scores_[it->second] = commit->snapshot.score;
    }
  }
  return Status::Ok();
}

StatusOr<SearchStep> PrioritizedSearch::RunCandidate(
    pipeline::Executor* executor, SimClock* clock, size_t index,
    uint64_t seed) {
  const CandidateChain& chain = candidates_[index];
  std::vector<pipeline::ComponentVersionSpec> specs;
  specs.reserve(chain.size());
  for (const pipeline::ComponentVersionSpec* s : chain) specs.push_back(*s);
  MLCASK_ASSIGN_OR_RETURN(pipeline::Pipeline p,
                          pipeline::Pipeline::Chain(repo_->name(), specs));
  pipeline::ExecutorOptions eo;
  eo.reuse_cached_outputs = true;
  eo.precheck_compatibility = false;  // tree is already PC-pruned
  eo.store_outputs = false;           // trials stay local
  eo.seed = seed;
  MLCASK_ASSIGN_OR_RETURN(pipeline::PipelineRunResult run,
                          executor->Run(p, eo));
  SearchStep step;
  step.candidate_index = index;
  step.end_time_s = clock->Now();
  step.score = run.has_score() ? run.score : 0.0;
  return step;
}

StatusOr<TrialResult> PrioritizedSearch::RunTrial(SearchMode mode,
                                                  uint64_t seed) {
  if (tree_ == nullptr) {
    return Status::FailedPrecondition("Prepare() must be called first");
  }
  SimClock clock;
  pipeline::Executor executor(registry_, engine_, &clock);

  // PR: seed the executor with checkpoints from history so shared prefixes
  // are free, exactly as the real merge does.
  {
    MLCASK_ASSIGN_OR_RETURN(const version::Commit* ancestor,
                            repo_->Get(space_->common_ancestor));
    std::vector<const version::Commit*> commits{ancestor};
    for (const std::string& branch : {head_branch_, merge_branch_}) {
      MLCASK_ASSIGN_OR_RETURN(const version::Commit* head,
                              repo_->Head(branch));
      for (const version::Commit* c :
           repo_->graph().CommitsSince(head->id, space_->common_ancestor)) {
        commits.push_back(c);
      }
    }
    for (const version::Commit* commit : commits) {
      MLCASK_RETURN_IF_ERROR(pipeline::SeedExecutorFromCommit(
          *commit, *libraries_, engine_, &executor));
    }
  }

  TrialResult trial;
  Pcg32 rng(seed);

  if (mode == SearchMode::kRandom) {
    std::vector<size_t> order(candidates_.size());
    std::iota(order.begin(), order.end(), 0);
    rng.Shuffle(&order);
    for (size_t index : order) {
      MLCASK_ASSIGN_OR_RETURN(SearchStep step,
                              RunCandidate(&executor, &clock, index, seed));
      trial.steps.push_back(step);
    }
  } else {
    // Per-trial mutable node state.
    std::unordered_map<const TreeNode*, double> score;
    std::unordered_map<const TreeNode*, size_t> unrun;
    std::unordered_map<const TreeNode*, const TreeNode*> parent;

    std::function<size_t(const TreeNode*)> init = [&](const TreeNode* node) {
      if (node->is_leaf() && node->spec != nullptr) {
        unrun[node] = 1;
        auto it = leaf_index_.find(node);
        if (it != leaf_index_.end()) {
          auto is = initial_scores_.find(it->second);
          if (is != initial_scores_.end()) score[node] = is->second;
        }
        return size_t{1};
      }
      size_t total = 0;
      for (const auto& child : node->children) {
        parent[child.get()] = node;
        total += init(child.get());
      }
      unrun[node] = total;
      return total;
    };
    init(tree_->root());

    // Propagate initial scores: parent = mean of scored children.
    std::function<void(const TreeNode*)> propagate = [&](const TreeNode* node) {
      if (node->is_leaf()) return;
      double sum = 0;
      size_t n = 0;
      for (const auto& child : node->children) {
        propagate(child.get());
        auto it = score.find(child.get());
        if (it != score.end()) {
          sum += it->second;
          ++n;
        }
      }
      if (n > 0) score[node] = sum / static_cast<double>(n);
    };
    propagate(tree_->root());

    while (unrun[tree_->root()] > 0) {
      // Greedy descent to the best-scoring unrun leaf.
      const TreeNode* node = tree_->root();
      while (!node->is_leaf()) {
        const TreeNode* best = nullptr;
        double best_score = -1;
        size_t ties = 0;
        double inherit = 0.5;
        auto self = score.find(node);
        if (self != score.end()) inherit = self->second;
        for (const auto& child : node->children) {
          if (unrun[child.get()] == 0) continue;
          auto it = score.find(child.get());
          double s = it != score.end() ? it->second : inherit;
          if (best == nullptr || s > best_score) {
            best = child.get();
            best_score = s;
            ties = 1;
          } else if (s == best_score) {
            // Reservoir-style random tie-break keeps trials diverse.
            ++ties;
            if (rng.Below(static_cast<uint32_t>(ties)) == 0) {
              best = child.get();
            }
          }
        }
        node = best;
      }

      size_t index = leaf_index_.at(node);
      MLCASK_ASSIGN_OR_RETURN(SearchStep step,
                              RunCandidate(&executor, &clock, index, seed));
      trial.steps.push_back(step);
      score[node] = step.score;

      // Decrement unrun along the path and refresh ancestor scores.
      const TreeNode* cur = node;
      while (cur != nullptr) {
        unrun[cur] -= 1;
        auto pit = parent.find(cur);
        cur = pit == parent.end() ? nullptr : pit->second;
        if (cur != nullptr) {
          double sum = 0;
          size_t n = 0;
          for (const auto& child : cur->children) {
            auto it = score.find(child.get());
            if (it != score.end()) {
              sum += it->second;
              ++n;
            }
          }
          if (n > 0) score[cur] = sum / static_cast<double>(n);
        }
      }
    }
  }

  trial.best_score = 0;
  for (const SearchStep& s : trial.steps) {
    trial.best_score = std::max(trial.best_score, s.score);
  }
  for (size_t i = 0; i < trial.steps.size(); ++i) {
    if (trial.steps[i].score == trial.best_score) {
      trial.steps_to_optimal = i + 1;
      break;
    }
  }
  return trial;
}

}  // namespace mlcask::merge
