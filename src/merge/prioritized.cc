#include "merge/prioritized.h"

#include <algorithm>
#include <cmath>
#include <functional>
#include <mutex>
#include <numeric>

#include "common/rng.h"
#include "merge/compat_lut.h"
#include "pipeline/checkout.h"
#include "pipeline/execution_core.h"

namespace mlcask::merge {

Status PrioritizedSearch::Prepare(const std::string& head_branch,
                                  const std::string& merge_branch) {
  head_branch_ = head_branch;
  merge_branch_ = merge_branch;

  MLCASK_ASSIGN_OR_RETURN(
      SearchSpace space,
      BuildSearchSpace(*repo_, *libraries_, head_branch, merge_branch));
  space_ = std::make_unique<SearchSpace>(std::move(space));

  tree_ = std::make_unique<PipelineSearchTree>(
      PipelineSearchTree::Build(*space_));
  CompatLut lut = CompatLut::Build(*space_);
  tree_->PruneIncompatible(lut);

  // Index leaves by candidate order (the DFS enumeration order).
  candidates_ = tree_->Candidates();
  leaves_ = tree_->Leaves();
  leaf_index_.clear();
  for (size_t i = 0; i < leaves_.size(); ++i) leaf_index_[leaves_[i]] = i;

  // Initial scores from pipelines trained in history on either branch.
  initial_scores_.clear();
  std::unordered_map<Hash256, size_t, Hash256Hasher> key_to_index;
  for (size_t i = 0; i < candidates_.size(); ++i) {
    key_to_index[pipeline::Executor::ChainKey(candidates_[i])] = i;
  }
  MLCASK_ASSIGN_OR_RETURN(const version::Commit* ancestor,
                          repo_->Get(space_->common_ancestor));
  std::vector<const version::Commit*> commits{ancestor};
  for (const std::string& branch : {head_branch, merge_branch}) {
    MLCASK_ASSIGN_OR_RETURN(const version::Commit* head, repo_->Head(branch));
    for (const version::Commit* c :
         repo_->graph().CommitsSince(head->id, space_->common_ancestor)) {
      commits.push_back(c);
    }
  }
  for (const version::Commit* commit : commits) {
    if (!commit->snapshot.has_score()) continue;
    bool resolved = true;
    std::vector<const pipeline::ComponentVersionSpec*> ptrs;
    for (const version::ComponentRecord& rec : commit->snapshot.components) {
      auto spec = libraries_->Get(rec.name, rec.version);
      if (!spec.ok()) {
        resolved = false;
        break;
      }
      ptrs.push_back(*spec);
    }
    if (!resolved) continue;
    auto it = key_to_index.find(pipeline::Executor::ChainKey(ptrs));
    if (it != key_to_index.end()) {
      initial_scores_[it->second] = commit->snapshot.score;
    }
  }
  return Status::Ok();
}

StatusOr<SearchStep> PrioritizedSearch::RunCandidate(
    pipeline::Executor* executor, SimClock* clock, size_t index,
    uint64_t seed) {
  const CandidateChain& chain = candidates_[index];
  std::vector<pipeline::ComponentVersionSpec> specs;
  specs.reserve(chain.size());
  for (const pipeline::ComponentVersionSpec* s : chain) specs.push_back(*s);
  MLCASK_ASSIGN_OR_RETURN(pipeline::Pipeline p,
                          pipeline::Pipeline::Chain(repo_->name(), specs));
  pipeline::ExecutorOptions eo;
  eo.reuse_cached_outputs = true;
  eo.precheck_compatibility = false;  // tree is already PC-pruned
  eo.store_outputs = false;           // trials stay local
  eo.seed = seed;
  eo.clock = clock;  // this worker's virtual timeline
  MLCASK_ASSIGN_OR_RETURN(pipeline::PipelineRunResult run,
                          executor->Run(p, eo));
  SearchStep step;
  step.candidate_index = index;
  step.end_time_s = clock->Now();
  step.score = run.has_score() ? run.score : 0.0;
  return step;
}

StatusOr<TrialResult> PrioritizedSearch::RunTrial(const TrialOptions& options) {
  if (tree_ == nullptr) {
    return Status::FailedPrecondition("Prepare() must be called first");
  }
  // The executor is shared by all workers: one artifact cache, so sibling
  // candidates share prefixes across workers, and the in-flight guards keep
  // the execution count equal to the serial search's. Each worker charges
  // time to its own clock (passed per-run through ExecutorOptions::clock).
  pipeline::Executor executor(registry_, engine_, nullptr);

  // PR: seed the executor with checkpoints from history so shared prefixes
  // are free, exactly as the real merge does.
  {
    MLCASK_ASSIGN_OR_RETURN(const version::Commit* ancestor,
                            repo_->Get(space_->common_ancestor));
    std::vector<const version::Commit*> commits{ancestor};
    for (const std::string& branch : {head_branch_, merge_branch_}) {
      MLCASK_ASSIGN_OR_RETURN(const version::Commit* head,
                              repo_->Head(branch));
      for (const version::Commit* c :
           repo_->graph().CommitsSince(head->id, space_->common_ancestor)) {
        commits.push_back(c);
      }
    }
    for (const version::Commit* commit : commits) {
      MLCASK_RETURN_IF_ERROR(pipeline::SeedExecutorFromCommit(
          *commit, *libraries_, engine_, &executor));
    }
  }

  const size_t num_workers = std::max<size_t>(1, options.num_workers);
  TrialResult trial;

  // Frontier state, shared by the workers and guarded by `mu`:
  //  - unclaimed: leaves below a node not yet dequeued — what the greedy
  //    descent walks, so two workers never claim the same candidate;
  //  - unrun: leaves below a node not yet completed;
  //  - score: latest propagated node scores. A completed run updates them
  //    before any later claim, so one worker's result steers candidates the
  //    other workers have not dequeued yet (the paper's pruning semantics).
  // With one worker claim and completion alternate, unclaimed == unrun at
  // every decision point, and the trial reproduces the serial search
  // exactly (same RNG consumption, same visit order, same timings).
  std::mutex mu;
  Pcg32 rng(options.seed);
  std::unordered_map<const TreeNode*, double> score;
  std::unordered_map<const TreeNode*, size_t> unrun;
  std::unordered_map<const TreeNode*, size_t> unclaimed;
  std::unordered_map<const TreeNode*, const TreeNode*> parent;
  std::vector<size_t> random_order;
  size_t random_cursor = 0;
  bool aborted = false;
  // Virtual worker-availability slots (list scheduling), decoupled from the
  // real threads: each claimed candidate starts on the earliest free
  // virtual worker (same model as ExecutionCore::RunGraph).
  pipeline::VirtualWorkerPool worker_slots(num_workers, 0.0);
  double makespan = 0;

  if (options.mode == SearchMode::kRandom) {
    random_order.resize(candidates_.size());
    std::iota(random_order.begin(), random_order.end(), 0);
    rng.Shuffle(&random_order);
  } else {
    parent = tree_->ParentIndex();
    std::function<size_t(const TreeNode*)> init = [&](const TreeNode* node) {
      if (node->is_leaf() && node->spec != nullptr) {
        unrun[node] = 1;
        auto it = leaf_index_.find(node);
        if (it != leaf_index_.end()) {
          auto is = initial_scores_.find(it->second);
          if (is != initial_scores_.end()) score[node] = is->second;
        }
        return size_t{1};
      }
      size_t total = 0;
      for (const auto& child : node->children) total += init(child.get());
      unrun[node] = total;
      return total;
    };
    init(tree_->root());
    unclaimed = unrun;

    // Propagate initial scores: parent = mean of scored children.
    std::function<void(const TreeNode*)> propagate = [&](const TreeNode* node) {
      if (node->is_leaf()) return;
      double sum = 0;
      size_t n = 0;
      for (const auto& child : node->children) {
        propagate(child.get());
        auto it = score.find(child.get());
        if (it != score.end()) {
          sum += it->second;
          ++n;
        }
      }
      if (n > 0) score[node] = sum / static_cast<double>(n);
    };
    propagate(tree_->root());
  }

  auto worker_body =
      [&](pipeline::ExecutionCore::WorkerContext&) -> Status {
    for (;;) {
      size_t index = 0;
      const TreeNode* leaf = nullptr;
      SimClock clock;
      {
        std::lock_guard<std::mutex> lock(mu);
        if (aborted) return Status::Ok();
        if (options.mode == SearchMode::kRandom) {
          if (random_cursor >= random_order.size()) return Status::Ok();
          index = random_order[random_cursor++];
        } else {
          if (unclaimed[tree_->root()] == 0) return Status::Ok();
          // Greedy descent to the best-scoring unclaimed leaf under the
          // scores known right now.
          const TreeNode* node = tree_->root();
          while (!node->is_leaf()) {
            const TreeNode* best = nullptr;
            double best_score = -1;
            size_t ties = 0;
            double inherit = 0.5;
            auto self = score.find(node);
            if (self != score.end()) inherit = self->second;
            for (const auto& child : node->children) {
              if (unclaimed[child.get()] == 0) continue;
              auto it = score.find(child.get());
              double s = it != score.end() ? it->second : inherit;
              if (best == nullptr || s > best_score) {
                best = child.get();
                best_score = s;
                ties = 1;
              } else if (s == best_score) {
                // Reservoir-style random tie-break keeps trials diverse.
                ++ties;
                if (rng.Below(static_cast<uint32_t>(ties)) == 0) {
                  best = child.get();
                }
              }
            }
            node = best;
          }
          leaf = node;
          index = leaf_index_.at(leaf);
          // Claim the path so no other worker dequeues this candidate.
          for (const TreeNode* cur = leaf; cur != nullptr;
               cur = parent.at(cur)) {
            unclaimed[cur] -= 1;
          }
        }
        // Start on the earliest free virtual worker.
        clock.AdvanceTo(worker_slots.ClaimEarliest());
      }

      StatusOr<SearchStep> step =
          RunCandidate(&executor, &clock, index, options.seed);

      {
        std::lock_guard<std::mutex> lock(mu);
        worker_slots.Release(clock.Now());
        if (!step.ok()) {
          aborted = true;
          return step.status();
        }
        makespan = std::max(makespan, step->end_time_s);
        trial.steps.push_back(*step);
        if (options.mode == SearchMode::kPrioritized) {
          score[leaf] = step->score;
          // Decrement unrun along the path and refresh ancestor scores, so
          // the next claim anywhere in the tree sees this result.
          const TreeNode* cur = leaf;
          while (cur != nullptr) {
            unrun[cur] -= 1;
            cur = parent.at(cur);
            if (cur != nullptr) {
              double sum = 0;
              size_t n = 0;
              for (const auto& child : cur->children) {
                auto it = score.find(child.get());
                if (it != score.end()) {
                  sum += it->second;
                  ++n;
                }
              }
              if (n > 0) score[cur] = sum / static_cast<double>(n);
            }
          }
        }
      }
    }
  };

  pipeline::ExecutionCore* core = fallback_core_.Get(options.core, num_workers);
  MLCASK_RETURN_IF_ERROR(
      core->RunWorkers(worker_body, 0, num_workers).status());
  trial.wall_clock_s = makespan;
  trial.executions = executor.executions();

  // Parallel completion order interleaves worker timelines; report steps on
  // the virtual timeline so positions mean "finished k-th".
  if (num_workers > 1) {
    std::stable_sort(trial.steps.begin(), trial.steps.end(),
                     [](const SearchStep& a, const SearchStep& b) {
                       return a.end_time_s < b.end_time_s;
                     });
  }

  trial.best_score = 0;
  for (const SearchStep& s : trial.steps) {
    trial.best_score = std::max(trial.best_score, s.score);
  }
  for (size_t i = 0; i < trial.steps.size(); ++i) {
    if (trial.steps[i].score == trial.best_score) {
      trial.steps_to_optimal = i + 1;
      break;
    }
  }
  return trial;
}

}  // namespace mlcask::merge
