#include "merge/search_space.h"

#include <algorithm>

namespace mlcask::merge {

size_t SearchSpace::NumCandidates() const {
  size_t n = 1;
  for (const ComponentSearchSpace& c : components) {
    n *= c.versions.size();
  }
  return n;
}

StatusOr<SearchSpace> BuildSearchSpace(const version::PipelineRepo& repo,
                                       const pipeline::LibraryRepo& libraries,
                                       const std::string& head_branch,
                                       const std::string& merge_branch) {
  MLCASK_ASSIGN_OR_RETURN(Hash256 ancestor,
                          repo.CommonAncestor(head_branch, merge_branch));
  MLCASK_ASSIGN_OR_RETURN(const version::Commit* ancestor_commit,
                          repo.Get(ancestor));

  SearchSpace space;
  space.common_ancestor = ancestor;

  // Component order comes from the ancestor's snapshot (the pipeline shape
  // is stable across the merge; only component versions vary).
  for (const version::ComponentRecord& rec :
       ancestor_commit->snapshot.components) {
    ComponentSearchSpace c;
    c.component = rec.name;
    space.components.push_back(std::move(c));
  }

  // Gather commits: the ancestor itself plus everything developed on both
  // branches since (S = S_HEAD ∪ S_MERGE_HEAD).
  std::vector<const version::Commit*> commits{ancestor_commit};
  for (const std::string& branch : {head_branch, merge_branch}) {
    MLCASK_ASSIGN_OR_RETURN(const version::Commit* head, repo.Head(branch));
    for (const version::Commit* c : repo.graph().CommitsSince(head->id, ancestor)) {
      commits.push_back(c);
    }
  }

  for (const version::Commit* commit : commits) {
    for (const version::ComponentRecord& rec : commit->snapshot.components) {
      auto it = std::find_if(space.components.begin(), space.components.end(),
                             [&](const ComponentSearchSpace& c) {
                               return c.component == rec.name;
                             });
      if (it == space.components.end()) {
        return Status::FailedPrecondition(
            "component '" + rec.name + "' appears in commit " +
            commit->Label() + " but not in the common ancestor pipeline");
      }
      bool seen = std::any_of(it->versions.begin(), it->versions.end(),
                              [&](const pipeline::ComponentVersionSpec& v) {
                                return v.version == rec.version;
                              });
      if (seen) continue;
      MLCASK_ASSIGN_OR_RETURN(const pipeline::ComponentVersionSpec* spec,
                              libraries.Get(rec.name, rec.version));
      it->versions.push_back(*spec);
    }
  }

  for (const ComponentSearchSpace& c : space.components) {
    if (c.versions.empty()) {
      return Status::Internal("component '" + c.component +
                              "' has empty search space");
    }
  }
  return space;
}

}  // namespace mlcask::merge
