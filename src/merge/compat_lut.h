#ifndef MLCASK_MERGE_COMPAT_LUT_H_
#define MLCASK_MERGE_COMPAT_LUT_H_

#include <set>
#include <string>
#include <utility>

#include "merge/search_space.h"
#include "pipeline/component.h"

namespace mlcask::merge {

/// The compatibility look-up table of Sec. VI-A: 2-tuples of (component
/// version, compatible succeeding component version), evaluated from the
/// version history. Pruning the search tree against this table removes every
/// pipeline that is "destined to fail in execution".
class CompatLut {
 public:
  /// Builds the LUT from a search space: for every consecutive component
  /// pair (f_i, f_{i+1}) and every version pair, record the pair iff the
  /// semantic-version rule holds (the successor consumes exactly the schema
  /// the predecessor produces).
  static CompatLut Build(const SearchSpace& space);

  /// True iff (parent, child) is a recorded compatible pair.
  bool Compatible(const pipeline::ComponentVersionSpec& parent,
                  const pipeline::ComponentVersionSpec& child) const;

  /// Number of compatible pairs recorded.
  size_t size() const { return pairs_.size(); }

 private:
  std::set<std::pair<std::string, std::string>> pairs_;  // (parent, child) keys
};

}  // namespace mlcask::merge

#endif  // MLCASK_MERGE_COMPAT_LUT_H_
