#ifndef MLCASK_MERGE_SEARCH_SPACE_H_
#define MLCASK_MERGE_SEARCH_SPACE_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "pipeline/component.h"
#include "pipeline/library_repo.h"
#include "version/pipeline_repo.h"

namespace mlcask::merge {

/// S(f_i): every version of component f_i developed since the common
/// ancestor on either branch, plus the ancestor's own version (paper Sec. V:
/// "the search space involves all the available component versions developed
/// starting from the common ancestors towards the HEAD and MERGE_HEAD";
/// versions *before* the ancestor are excluded).
struct ComponentSearchSpace {
  std::string component;
  std::vector<pipeline::ComponentVersionSpec> versions;
};

/// The full search space for merging `merge_branch` into `head_branch`:
/// one entry per pipeline component, in chain order. Component order is
/// taken from the common ancestor's snapshot. Specs are resolved through the
/// library repository.
struct SearchSpace {
  Hash256 common_ancestor;
  std::vector<ComponentSearchSpace> components;

  /// Upper bound on pre-merge pipeline candidates: prod |S(f_i)|.
  size_t NumCandidates() const;
};

StatusOr<SearchSpace> BuildSearchSpace(const version::PipelineRepo& repo,
                                       const pipeline::LibraryRepo& libraries,
                                       const std::string& head_branch,
                                       const std::string& merge_branch);

}  // namespace mlcask::merge

#endif  // MLCASK_MERGE_SEARCH_SPACE_H_
