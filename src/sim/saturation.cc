#include "sim/saturation.h"

#include <algorithm>
#include <cmath>
#include <random>

namespace mlcask::sim {

namespace {

constexpr double kPi = 3.14159265358979323846;

/// Normalized cumulative arrival mass of the diurnal rate profile on
/// [0, duration]: integral of (1 + a sin(2 pi t / D)) dt, scaled so
/// Cdf(D) == 1. Strictly increasing for a < 1.
double DiurnalCdf(double t, double duration, double amplitude) {
  const double omega = 2 * kPi / duration;
  const double mass = t + amplitude / omega * (1 - std::cos(omega * t));
  return mass / duration;
}

/// Inverts the diurnal CDF by bisection (monotone, so 40 halvings pin the
/// release time far below a microsecond).
double DiurnalTime(double u, double duration, double amplitude) {
  double lo = 0;
  double hi = duration;
  for (int i = 0; i < 40; ++i) {
    const double mid = (lo + hi) / 2;
    if (DiurnalCdf(mid, duration, amplitude) < u) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return (lo + hi) / 2;
}

}  // namespace

std::vector<SaturationEvent> BuildSaturationSchedule(
    const SaturationConfig& config) {
  std::vector<SaturationEvent> events;
  if (config.tenants.empty() || config.duration_s <= 0 ||
      config.base_rps <= 0) {
    return events;
  }
  const double amplitude =
      std::clamp(config.diurnal_amplitude, 0.0, 0.95);
  const double storm_fraction = std::clamp(config.storm_fraction, 0.0, 0.9);
  size_t total_users = 0;
  for (const SaturationTenant& tenant : config.tenants) {
    total_users += std::max<size_t>(1, tenant.users);
  }
  const double total_events = config.base_rps * config.duration_s;
  events.reserve(static_cast<size_t>(total_events) + config.tenants.size());

  std::mt19937_64 rng(config.seed);
  std::uniform_real_distribution<double> unit(0.0, 1.0);

  for (const SaturationTenant& tenant : config.tenants) {
    const size_t users = std::max<size_t>(1, tenant.users);
    // Offered load splits by population: big tenants submit more, exactly
    // the shape that makes weighted fairness worth measuring.
    const size_t tenant_events = std::max<size_t>(
        1, static_cast<size_t>(total_events * users / total_users));
    const size_t storm_events = static_cast<size_t>(
        static_cast<double>(tenant_events) * storm_fraction);
    const size_t smooth_events = tenant_events - storm_events;
    const double hot_fraction = std::clamp(tenant.hot_fraction, 0.0, 1.0);
    const size_t distinct = std::max<size_t>(1, tenant.distinct_specs);

    auto emit = [&](double at_s) {
      SaturationEvent event;
      event.at_s = std::clamp(at_s, 0.0, config.duration_s);
      event.tenant = tenant.name;
      event.user = static_cast<size_t>(rng() % users);
      event.hot = unit(rng) < hot_fraction;
      // Hot events all share seed 1 (the tenant's hot spec — coalescible);
      // cold events spread across the distinct variants from seed 2 up.
      event.spec_seed = event.hot ? 1 : 2 + rng() % distinct;
      events.push_back(std::move(event));
    };

    // Smooth diurnal arrivals: stratified inverse-CDF sampling keeps the
    // realized rate tracking the profile even for small event counts.
    for (size_t i = 0; i < smooth_events; ++i) {
      const double u =
          (static_cast<double>(i) + unit(rng)) / smooth_events;
      emit(DiurnalTime(u, config.duration_s, amplitude));
    }
    // Storms: bursts at random offsets, each packing its share into a
    // storm_width_s window (the post-release-cut merge stampede).
    if (storm_events > 0 && config.storm_count > 0) {
      const size_t per_storm =
          std::max<size_t>(1, storm_events / config.storm_count);
      size_t emitted = 0;
      for (size_t storm = 0;
           storm < config.storm_count && emitted < storm_events; ++storm) {
        const double start = unit(rng) * config.duration_s;
        const size_t count =
            std::min(per_storm, storm_events - emitted);
        for (size_t i = 0; i < count; ++i) {
          emit(start + unit(rng) * config.storm_width_s);
        }
        emitted += count;
      }
    }
  }

  std::sort(events.begin(), events.end(),
            [](const SaturationEvent& a, const SaturationEvent& b) {
              return a.at_s < b.at_s;
            });
  return events;
}

}  // namespace mlcask::sim
