#ifndef MLCASK_SIM_ADVERSARIAL_H_
#define MLCASK_SIM_ADVERSARIAL_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/status.h"
#include "storage/storage_engine.h"

namespace mlcask::sim {

/// The adversarial scenario suite: deterministic workload shapes chosen to
/// hurt — each one concentrates load on a resource the happy-path benches
/// spread out. They are the generators behind the overload saturation bench
/// (bench/overload_suite.cc) and are deliberately engine-level: the same
/// streams drive a local engine, a loopback cluster, or a real socket
/// deployment under fault injection.
///
/// Three shapes (paper-adjacent, ROADMAP "adversarial scenario suite"):
///   deep   — one key with ~1000 versions: every Versions() scan walks the
///            whole chain, and the chain lives on ONE shard, so routing
///            cannot dilute it.
///   wide   — many tenants × many artifacts: a wide multi-tenant keyspace
///            whose reads all contend for the same server-side cache.
///   racing — replicated `pipeline/` metadata commits racing a concurrent
///            merge's own two-phase commits (see RunRacingCommits).
struct AdversarialOptions {
  size_t deep_chain_versions = 1000;  ///< Versions piled onto the deep key.
  size_t tenants = 8;                 ///< Multi-tenant width.
  size_t keys_per_tenant = 16;        ///< Artifacts per tenant.
  size_t payload_bytes = 1024;        ///< Artifact payload size.
  uint64_t seed = 1;                  ///< Stream determinism.
};

/// One pre-generated storage request for the open-loop driver. The stream
/// is generated up front so the OFFERED load is a property of the plan, not
/// of how fast the cluster answers — the definition of open loop.
struct AdversarialRequest {
  enum class Kind {
    kPut,       ///< New version of an existing key (payload attached).
    kGet,       ///< Latest-version read (cache contention).
    kVersions,  ///< Full version-chain scan (deep-graph pressure).
  };
  Kind kind = Kind::kGet;
  std::string key;
  std::string payload;  ///< kPut only.
};

/// What seeding actually achieved. Seeding runs against possibly-faulty
/// clusters, so typed failures are tolerated and counted instead of
/// aborting — the suite's contract is about typed outcomes, not fault-free
/// setup.
struct AdversarialSeedReport {
  uint64_t acked_writes = 0;
  uint64_t typed_failures = 0;
};

/// Builds the deep chain and the wide tenant keyspace on `engine`.
/// Deterministic for a given options struct.
AdversarialSeedReport SeedAdversarialState(storage::StorageEngine* engine,
                                           const AdversarialOptions& options);

/// A deterministic mixed request stream of `length` requests over the
/// seeded keyspace: mostly cache-contending tenant reads, a steady trickle
/// of deep-chain scans and version-appending writes, plus occasional
/// replicated `pipeline/` metadata commits that ride the 2PC path.
std::vector<AdversarialRequest> MakeAdversarialStream(
    const AdversarialOptions& options, size_t length);

/// Executes one request against `engine`, returning its typed outcome.
Status ApplyAdversarialRequest(storage::StorageEngine* engine,
                               const AdversarialRequest& request);

/// Outcome of RunRacingCommits: the contended operation's verdict plus the
/// racers' ledger. `racer_lost` is the invariant that must stay zero — an
/// acknowledged racing commit that cannot be read back afterwards.
struct RaceReport {
  bool contended_ok = false;
  std::string contended_status;  ///< ToString() of the contended op.
  uint64_t racer_acked = 0;
  uint64_t racer_typed_failures = 0;
  uint64_t racer_lost = 0;
};

/// The merges-racing-concurrent-commits scenario: runs `contended` (a merge,
/// a migration — any long multi-shard operation) on the calling thread while
/// `racers` background threads each land `commits_per_racer` replicated
/// `pipeline/` metadata writes through the SAME engine, so every racer
/// commit is a 2PC transaction racing the contended operation's own
/// transactions. After both sides finish, every acknowledged racer write is
/// read back; misses are counted in `racer_lost`.
RaceReport RunRacingCommits(storage::StorageEngine* engine, size_t racers,
                            size_t commits_per_racer,
                            const std::function<Status()>& contended);

}  // namespace mlcask::sim

#endif  // MLCASK_SIM_ADVERSARIAL_H_
