#ifndef MLCASK_SIM_DISTRIBUTED_H_
#define MLCASK_SIM_DISTRIBUTED_H_

#include <cstddef>
#include <vector>

#include "common/status.h"
#include "ml/matrix.h"
#include "ml/mlp.h"

namespace mlcask::sim {

/// Configuration of the synchronous data-parallel training simulation
/// (paper Sec. VII-F, Fig. 11a: ResNet18 on up to 8 GPUs in one node).
struct DistributedConfig {
  size_t gpus = 1;
  /// Simulated single-GPU epoch time in seconds.
  double base_epoch_seconds = 30.0;
  /// Per-extra-GPU synchronization overhead fraction: throughput scales as
  /// k / (1 + comm_overhead * (k - 1)), the classic all-reduce model.
  double comm_overhead = 0.06;
};

/// One point of a loss-vs-wall-clock curve.
struct LossCurvePoint {
  double time_s = 0;
  double loss = 0;
};

/// Effective throughput speedup of k-GPU synchronous training relative to
/// one GPU (k=1 -> 1.0).
double DistributedSpeedup(size_t gpus, double comm_overhead);

/// The paper's pipeline-time speedup law (Sec. VII-F):
///   Speedup = 1 / ((1 - p) + p / k)
/// where `train_fraction` p is the share of pipeline time spent in model
/// training and `train_speedup` k the speedup of training itself.
double PipelineTimeSpeedup(double train_fraction, double train_speedup);

/// Trains a real MLP on (x, y) and maps its per-epoch training-loss history
/// onto simulated wall-clock time for the given GPU count: more GPUs raise
/// sample throughput, so the same loss level is reached earlier.
StatusOr<std::vector<LossCurvePoint>> SimulateDistributedTraining(
    const ml::Matrix& x, const std::vector<double>& y,
    const ml::MlpConfig& model_config, const DistributedConfig& dist_config);

}  // namespace mlcask::sim

#endif  // MLCASK_SIM_DISTRIBUTED_H_
