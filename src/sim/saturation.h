#ifndef MLCASK_SIM_SATURATION_H_
#define MLCASK_SIM_SATURATION_H_

#include <cstdint>
#include <string>
#include <vector>

namespace mlcask::sim {

// ---------------------------------------------------------------------------
// Saturation workload generator: a deterministic open-loop submit schedule
// for the merge service, shaped like real multi-tenant traffic —
//
//   * thousands of simulated users spread across tenants of different
//     weights and sizes;
//   * hot-key skew: most of a tenant's submissions land on one hot merge
//     spec (coalescible into shared batches), a tail on distinct specs;
//   * diurnal bursts: the offered rate swings sinusoidally over the run;
//   * merge storms: a fraction of the traffic clusters into short bursts
//     (everyone merging at once after a release cut).
//
// The schedule is OPEN-LOOP: release times are fixed up front and never
// adjust to service latency, so an overloaded server faces ever-deeper
// backlog exactly like production ingress — the coordinated-omission-free
// way to measure saturation. Same config + seed = byte-identical schedule.
// ---------------------------------------------------------------------------

struct SaturationTenant {
  std::string name;
  uint64_t weight = 1;     ///< Fairness weight (mirrors the service config).
  size_t users = 100;      ///< Simulated user population.
  /// Fraction of this tenant's submissions on its single hot spec — those
  /// coalesce into shared batches under a merge storm.
  double hot_fraction = 0.8;
  /// Distinct cold spec variants (seed-varied) for the non-hot tail.
  size_t distinct_specs = 4;
};

struct SaturationConfig {
  std::vector<SaturationTenant> tenants;
  double duration_s = 10;   ///< Schedule length.
  double base_rps = 50;     ///< Aggregate offered submit rate (all tenants).
  /// Sinusoidal rate modulation: instantaneous rate swings between
  /// (1 - amplitude) and (1 + amplitude) times the base over one period =
  /// the whole duration (a day compressed into the run).
  double diurnal_amplitude = 0.4;
  /// Fraction of each tenant's events pulled out of the smooth schedule and
  /// packed into storms.
  double storm_fraction = 0.15;
  size_t storm_count = 3;   ///< Storms per tenant across the run.
  double storm_width_s = 0.2;  ///< How tight each storm packs.
  uint64_t seed = 1;
};

/// One scheduled submission.
struct SaturationEvent {
  double at_s = 0;       ///< Release offset from schedule start.
  std::string tenant;
  size_t user = 0;       ///< Submitting simulated user (tenant-relative).
  /// MergeJobSpec::seed for this submission: hot events share their
  /// tenant's hot seed, cold events spread over distinct_specs variants.
  uint64_t spec_seed = 1;
  bool hot = false;
};

/// Builds the full schedule, sorted by release time. Offered load scales
/// linearly with `config.base_rps`, so a capacity-multiple run is the same
/// schedule with a scaled rate.
std::vector<SaturationEvent> BuildSaturationSchedule(
    const SaturationConfig& config);

}  // namespace mlcask::sim

#endif  // MLCASK_SIM_SATURATION_H_
