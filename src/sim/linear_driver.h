#ifndef MLCASK_SIM_LINEAR_DRIVER_H_
#define MLCASK_SIM_LINEAR_DRIVER_H_

#include <vector>

#include "baselines/system_under_test.h"
#include "common/status.h"
#include "sim/workloads.h"

namespace mlcask::sim {

/// The linear-versioning protocol of Sec. VII-B: a fixed number of
/// iterations, each updating the pre-processing component with probability
/// 0.4 and the model component with probability 0.6; the last iteration is
/// "designed to have an incompatibility problem between the last two
/// components".
struct LinearProtocolOptions {
  int iterations = 10;
  double p_update_preprocessor = 0.4;
  uint64_t seed = 42;
  bool final_incompatibility = true;
};

/// One iteration of the schedule: the pipeline to run plus which components
/// changed relative to the previous iteration.
struct ScheduledIteration {
  pipeline::Pipeline pipeline;
  std::vector<pipeline::ComponentVersionSpec> updated_components;
};

/// Builds the deterministic update schedule for a workload. The SAME
/// schedule is replayed against every system under test so the comparison
/// isolates the systems' reuse/storage behaviour.
StatusOr<std::vector<ScheduledIteration>> BuildLinearSchedule(
    const Workload& workload, const LinearProtocolOptions& options);

/// Replays a schedule on one system, returning per-iteration statistics
/// (total time for Fig. 5, time composition for Fig. 6, CSS for Fig. 7).
StatusOr<std::vector<baselines::IterationStats>> ReplaySchedule(
    const std::vector<ScheduledIteration>& schedule,
    baselines::SystemUnderTest* system);

}  // namespace mlcask::sim

#endif  // MLCASK_SIM_LINEAR_DRIVER_H_
