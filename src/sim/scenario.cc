#include "sim/scenario.h"

#include "pipeline/checkout.h"
#include "sim/libraries.h"
#include "storage/fault_injector.h"
#include "storage/forkbase_engine.h"
#include "storage/local_dir_engine.h"
#include "storage/server_cluster.h"
#include "storage/sharded_engine.h"

namespace mlcask::sim {

storage::ShardedStorageEngine* Deployment::sharded_engine() const {
  return dynamic_cast<storage::ShardedStorageEngine*>(engine.get());
}

StatusOr<Hash256> Deployment::RunAndCommit(
    const pipeline::Pipeline& p, const std::string& branch,
    const std::string& author, const std::string& message,
    const pipeline::ExecutorOptions& opts) {
  for (const pipeline::ComponentVersionSpec& spec : p.components()) {
    MLCASK_RETURN_IF_ERROR(libraries->Put(spec));
  }
  pipeline::ExecutorOptions eo = opts;
  if (eo.num_workers == 0) eo.num_workers = num_workers;  // 0 = unset
  if (eo.core == nullptr) eo.core = core.get();  // share the deployment pool
  MLCASK_ASSIGN_OR_RETURN(
      pipeline::PipelineRunResult run,
      p.IsChain() ? executor->Run(p, eo) : executor->RunDag(p, eo));
  if (run.compatibility_failure) {
    return Status::Incompatible("pipeline failed compatibility at " +
                                run.failed_component);
  }
  if (!repo->branches().Exists("master")) {
    return repo->Init(run.snapshot, author, message);
  }
  if (!repo->branches().Exists(branch)) {
    MLCASK_RETURN_IF_ERROR(repo->Branch(branch, "master"));
  }
  return repo->CommitOn(branch, run.snapshot, author, message);
}

StatusOr<std::unique_ptr<Deployment>> MakeDeployment(
    const std::string& workload_name, double scale, bool folder_storage,
    size_t num_workers) {
  DeploymentConfig config;
  config.folder_storage = folder_storage;
  config.num_workers = num_workers;
  return MakeDeployment(workload_name, scale, config);
}

StatusOr<std::unique_ptr<Deployment>> MakeDeployment(
    const std::string& workload_name, double scale,
    const DeploymentConfig& config) {
  auto d = std::make_unique<Deployment>();
  d->num_workers = config.num_workers == 0 ? 1 : config.num_workers;
  auto backend_factory = [&]() -> std::unique_ptr<storage::StorageEngine> {
    if (config.folder_storage) {
      return std::make_unique<storage::LocalDirEngine>();
    }
    return std::make_unique<storage::ForkBaseEngine>();
  };
  if (!config.storage_endpoints.empty()) {
    // Out-of-process shards: dial the running mlcask_server processes,
    // optionally through a client-side fault injector (chaos harness).
    storage::SocketTransport::Options transport_options;
    if (!config.client_fault_spec.empty()) {
      MLCASK_ASSIGN_OR_RETURN(
          storage::FaultSpec spec,
          storage::FaultSpec::Parse(config.client_fault_spec));
      transport_options.injector =
          std::make_shared<storage::FaultInjector>(spec);
    }
    MLCASK_ASSIGN_OR_RETURN(
        d->engine,
        storage::ConnectCluster(config.storage_endpoints,
                                storage::ShardedStorageEngine::Options(),
                                transport_options));
  } else if (config.storage_shards >= 2) {
    d->engine = storage::MakeLoopbackCluster(config.storage_shards,
                                             backend_factory);
  } else {
    d->engine = backend_factory();
  }
  d->clock = std::make_unique<SimClock>();
  d->registry = std::make_unique<pipeline::LibraryRegistry>();
  MLCASK_RETURN_IF_ERROR(RegisterWorkloadLibraries(d->registry.get()));
  d->libraries = std::make_unique<pipeline::LibraryRepo>(d->engine.get(),
                                                         d->clock.get());
  MLCASK_ASSIGN_OR_RETURN(d->workload, MakeWorkload(workload_name, scale));
  d->repo = std::make_unique<version::PipelineRepo>(
      workload_name, d->engine.get(), d->clock.get());
  d->executor = std::make_unique<pipeline::Executor>(
      d->registry.get(), d->engine.get(), d->clock.get());
  d->core = std::make_unique<pipeline::ExecutionCore>(d->num_workers);
  return d;
}

StatusOr<ScenarioInfo> BuildTwoBranchScenario(Deployment* d,
                                              int extra_model_versions) {
  const Workload& w = d->workload;
  ScenarioInfo info;
  if (w.preprocessors.empty()) {
    return Status::FailedPrecondition("workload has no preprocessors");
  }
  const std::string first_pre = w.preprocessors.front();
  const std::string last_pre = w.preprocessors.back();
  info.schema_bumped_component = last_pre;

  // Common ancestor: master.0.0, everything at 0.0, fully materialized.
  MLCASK_RETURN_IF_ERROR(
      d->RunAndCommit(w.initial, "master", "alice", "initial pipeline")
          .status());

  // --- MERGE_HEAD side (dev, "Frank") ----------------------------------
  // dev.0.0: model 0.1.
  MLCASK_ASSIGN_OR_RETURN(const pipeline::ComponentVersionSpec* model0,
                          w.initial.Find(w.model));
  pipeline::ComponentVersionSpec model_0_1 = BumpIncrement(*model0);
  MLCASK_ASSIGN_OR_RETURN(pipeline::Pipeline dev0,
                          WithComponent(w.initial, model_0_1));
  MLCASK_RETURN_IF_ERROR(
      d->RunAndCommit(dev0, "dev", "frank", "model 0.1").status());

  // dev.0.1: last preprocessor 1.0 (schema bump) + model 0.2 adapted.
  MLCASK_ASSIGN_OR_RETURN(const pipeline::ComponentVersionSpec* pre0,
                          w.initial.Find(last_pre));
  pipeline::ComponentVersionSpec pre_1_0 = BumpSchema(*pre0);
  pipeline::ComponentVersionSpec model_0_2 =
      AdaptInputSchema(model_0_1, pre_1_0.output_schema);
  MLCASK_ASSIGN_OR_RETURN(pipeline::Pipeline dev1,
                          WithComponent(dev0, pre_1_0));
  MLCASK_ASSIGN_OR_RETURN(dev1, WithComponent(dev1, model_0_2));
  MLCASK_RETURN_IF_ERROR(
      d->RunAndCommit(dev1, "dev", "frank",
                      last_pre + " 1.0 + adapted model 0.2")
          .status());

  // dev.0.2: model 0.3.
  pipeline::ComponentVersionSpec model_0_3 = BumpIncrement(model_0_2);
  MLCASK_ASSIGN_OR_RETURN(pipeline::Pipeline dev2,
                          WithComponent(dev1, model_0_3));
  MLCASK_RETURN_IF_ERROR(
      d->RunAndCommit(dev2, "dev", "frank", "model 0.3").status());

  // Optional widening: further model increments on dev beyond Fig. 3.
  // Skip one increment so the dev series (0.5, 0.6, ...) never collides
  // with master's independently-authored model 0.4 below.
  pipeline::Pipeline dev_head = dev2;
  pipeline::ComponentVersionSpec dev_model = model_0_3;
  if (extra_model_versions > 0) dev_model = BumpIncrement(dev_model);
  for (int i = 0; i < extra_model_versions; ++i) {
    dev_model = BumpIncrement(dev_model);
    MLCASK_ASSIGN_OR_RETURN(dev_head, WithComponent(dev_head, dev_model));
    MLCASK_RETURN_IF_ERROR(
        d->RunAndCommit(dev_head, "dev", "frank",
                        "model " + dev_model.version.ToString(false))
            .status());
  }

  // --- HEAD side (master, "Jane") ---------------------------------------
  // master.0.1: first preprocessor 0.1 and model 0.4 (compatible with the
  // OLD schema of the last preprocessor — Jane never saw Frank's bump).
  MLCASK_ASSIGN_OR_RETURN(const pipeline::ComponentVersionSpec* first0,
                          w.initial.Find(first_pre));
  pipeline::ComponentVersionSpec first_0_1 = BumpIncrement(*first0);
  pipeline::ComponentVersionSpec model_0_4 = *model0;
  for (int i = 0; i < 4; ++i) model_0_4 = BumpIncrement(model_0_4);
  MLCASK_ASSIGN_OR_RETURN(pipeline::Pipeline master1,
                          WithComponent(w.initial, first_0_1));
  MLCASK_ASSIGN_OR_RETURN(master1, WithComponent(master1, model_0_4));
  MLCASK_RETURN_IF_ERROR(
      d->RunAndCommit(master1, "master", "jane",
                      first_pre + " 0.1 + model 0.4")
          .status());

  return info;
}

StatusOr<ScenarioInfo> BuildDistributedMergeScenario(
    Deployment* d, int extra_extractor_versions, int extra_model_versions) {
  MLCASK_ASSIGN_OR_RETURN(ScenarioInfo info,
                          BuildTwoBranchScenario(d, extra_model_versions));
  if (extra_extractor_versions <= 0) return info;
  // Further increment updates of the schema-bumped extractor (1.1, 1.2, ...)
  // committed on dev with dev's current model: same schema as 1.0, so every
  // new-schema model version follows each of them — one extra subtree per
  // version at the extraction level of the search tree.
  MLCASK_ASSIGN_OR_RETURN(const version::Commit* dev_head,
                          d->repo->Head("dev"));
  MLCASK_ASSIGN_OR_RETURN(
      pipeline::Pipeline current,
      pipeline::MaterializePipeline(*dev_head, *d->libraries,
                                    d->repo->name()));
  MLCASK_ASSIGN_OR_RETURN(const pipeline::ComponentVersionSpec* extractor,
                          current.Find(info.schema_bumped_component));
  pipeline::ComponentVersionSpec next = *extractor;
  for (int i = 0; i < extra_extractor_versions; ++i) {
    next = BumpIncrement(next);
    MLCASK_ASSIGN_OR_RETURN(current, WithComponent(current, next));
    MLCASK_RETURN_IF_ERROR(
        d->RunAndCommit(current, "dev", "frank",
                        info.schema_bumped_component + " " +
                            next.version.ToString(false))
            .status());
  }
  return info;
}

}  // namespace mlcask::sim
