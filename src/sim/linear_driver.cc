#include "sim/linear_driver.h"

#include "common/rng.h"

namespace mlcask::sim {

StatusOr<std::vector<ScheduledIteration>> BuildLinearSchedule(
    const Workload& workload, const LinearProtocolOptions& options) {
  if (options.iterations < 2) {
    return Status::InvalidArgument("need at least two iterations");
  }
  Pcg32 rng(options.seed);
  std::vector<ScheduledIteration> schedule;
  schedule.reserve(static_cast<size_t>(options.iterations));

  // Iteration 0: the initial pipeline; every component is "updated" (first
  // archive of all libraries).
  ScheduledIteration first;
  first.pipeline = workload.initial;
  for (const auto& spec : workload.initial.components()) {
    first.updated_components.push_back(spec);
  }
  schedule.push_back(std::move(first));

  pipeline::Pipeline current = workload.initial;
  for (int iter = 1; iter < options.iterations; ++iter) {
    bool is_last = iter == options.iterations - 1;
    ScheduledIteration step;
    if (is_last && options.final_incompatibility) {
      // Schema-bump the second-to-last component (the last pre-processor)
      // without adapting the model: the classic asynchronous-update break.
      MLCASK_ASSIGN_OR_RETURN(const pipeline::ComponentVersionSpec* pre,
                              current.Find(workload.preprocessors.back()));
      pipeline::ComponentVersionSpec bumped = BumpSchema(*pre);
      MLCASK_ASSIGN_OR_RETURN(current, WithComponent(current, bumped));
      step.updated_components.push_back(bumped);
    } else if (rng.NextDouble() < options.p_update_preprocessor) {
      // Update one pre-processing component (uniformly chosen).
      const std::string& name = workload.preprocessors[rng.Below(
          static_cast<uint32_t>(workload.preprocessors.size()))];
      MLCASK_ASSIGN_OR_RETURN(const pipeline::ComponentVersionSpec* pre,
                              current.Find(name));
      pipeline::ComponentVersionSpec bumped = BumpIncrement(*pre);
      MLCASK_ASSIGN_OR_RETURN(current, WithComponent(current, bumped));
      step.updated_components.push_back(bumped);
    } else {
      // Update the model component.
      MLCASK_ASSIGN_OR_RETURN(const pipeline::ComponentVersionSpec* model,
                              current.Find(workload.model));
      pipeline::ComponentVersionSpec bumped = BumpIncrement(*model);
      MLCASK_ASSIGN_OR_RETURN(current, WithComponent(current, bumped));
      step.updated_components.push_back(bumped);
    }
    step.pipeline = current;
    schedule.push_back(std::move(step));
  }
  return schedule;
}

StatusOr<std::vector<baselines::IterationStats>> ReplaySchedule(
    const std::vector<ScheduledIteration>& schedule,
    baselines::SystemUnderTest* system) {
  std::vector<baselines::IterationStats> out;
  out.reserve(schedule.size());
  for (const ScheduledIteration& step : schedule) {
    MLCASK_ASSIGN_OR_RETURN(
        baselines::IterationStats stats,
        system->RunIteration(step.pipeline, step.updated_components));
    out.push_back(stats);
  }
  return out;
}

}  // namespace mlcask::sim
