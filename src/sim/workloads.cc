#include "sim/workloads.h"

#include <algorithm>

#include "common/logging.h"

namespace mlcask::sim {

namespace {

using pipeline::ComponentKind;
using pipeline::ComponentVersionSpec;
using pipeline::Pipeline;

/// Logical schema ids per workload stage. Ids only need to be distinct and
/// stable; datasets derive theirs from real schema hashes in examples, while
/// the workload scripts use these compact ids for readability.
constexpr uint64_t kSchemaBase = 100;

ComponentVersionSpec MakeSpec(const std::string& name, ComponentKind kind,
                              uint64_t input_schema, uint64_t output_schema,
                              const std::string& impl, Json params,
                              double cost_per_krow_s) {
  ComponentVersionSpec s;
  s.name = name;
  s.version = version::SemanticVersion::Initial();
  s.kind = kind;
  s.input_schema = input_schema;
  s.output_schema = output_schema;
  s.impl = impl;
  s.params = std::move(params);
  s.cost_per_krow_s = cost_per_krow_s;
  return s;
}

Json P() { return Json::Object(); }

StatusOr<Workload> MakeReadmission(double scale) {
  // Model-training-heavy profile (Fig. 6a): ~130 simulated seconds per full
  // run at scale 1 with ~2000 rows, over half of it in the DL model.
  int64_t rows = std::max<int64_t>(60, static_cast<int64_t>(2000 * scale));
  Workload w;
  w.name = "readmission";
  std::vector<ComponentVersionSpec> chain;
  Json ds = P();
  ds.Set("rows", Json::Int(rows));
  ds.Set("seed", Json::Int(7));
  chain.push_back(MakeSpec("dataset", ComponentKind::kDataset, 0,
                           kSchemaBase + 1, "gen_readmission", std::move(ds),
                           1.0));
  chain.push_back(MakeSpec("data_cleansing", ComponentKind::kPreprocessor,
                           kSchemaBase + 1, kSchemaBase + 2, "cleanse_impute",
                           P(), 4.0));
  chain.push_back(MakeSpec("feature_extract", ComponentKind::kPreprocessor,
                           kSchemaBase + 2, kSchemaBase + 3,
                           "extract_ehr_features", P(), 7.5));
  Json mp = P();
  mp.Set("hidden", Json::Int(16));
  mp.Set("epochs", Json::Int(12));
  chain.push_back(MakeSpec("cnn", ComponentKind::kModel, kSchemaBase + 3,
                           kSchemaBase + 4, "train_mlp", std::move(mp), 52.0));
  MLCASK_ASSIGN_OR_RETURN(w.initial, Pipeline::Chain(w.name, std::move(chain)));
  w.preprocessors = {"data_cleansing", "feature_extract"};
  w.model = "cnn";
  return w;
}

StatusOr<Workload> MakeDpm(double scale) {
  // Pre-processing-heavy profile (Fig. 6b): HMM smoothing dominates; ~650
  // simulated seconds per full run at scale 1 with 250 x 12 rows.
  int64_t patients = std::max<int64_t>(10, static_cast<int64_t>(250 * scale));
  Workload w;
  w.name = "dpm";
  std::vector<ComponentVersionSpec> chain;
  Json ds = P();
  ds.Set("patients", Json::Int(patients));
  ds.Set("visits", Json::Int(12));
  ds.Set("seed", Json::Int(11));
  chain.push_back(MakeSpec("dataset", ComponentKind::kDataset, 0,
                           kSchemaBase + 11, "gen_dpm", std::move(ds), 1.0));
  chain.push_back(MakeSpec("data_cleansing", ComponentKind::kPreprocessor,
                           kSchemaBase + 11, kSchemaBase + 12, "cleanse_impute",
                           P(), 3.0));
  chain.push_back(MakeSpec("feature_extract", ComponentKind::kPreprocessor,
                           kSchemaBase + 12, kSchemaBase + 13,
                           "extract_ehr_features", P(), 8.0));
  Json hp = P();
  hp.Set("num_states", Json::Int(3));
  hp.Set("em_iterations", Json::Int(8));
  chain.push_back(MakeSpec("hmm_processing", ComponentKind::kPreprocessor,
                           kSchemaBase + 13, kSchemaBase + 14, "hmm_smooth",
                           std::move(hp), 150.0));
  Json mp = P();
  mp.Set("hidden", Json::Int(12));
  mp.Set("epochs", Json::Int(10));
  chain.push_back(MakeSpec("dl_model", ComponentKind::kModel, kSchemaBase + 14,
                           kSchemaBase + 15, "train_mlp", std::move(mp), 55.0));
  MLCASK_ASSIGN_OR_RETURN(w.initial, Pipeline::Chain(w.name, std::move(chain)));
  w.preprocessors = {"data_cleansing", "feature_extract", "hmm_processing"};
  w.model = "dl_model";
  return w;
}

StatusOr<Workload> MakeSa(double scale) {
  // Pre-processing-heavy profile (Fig. 6c): embedding training dominates;
  // ~500 simulated seconds per full run at scale 1 with 1500 reviews.
  int64_t rows = std::max<int64_t>(80, static_cast<int64_t>(1500 * scale));
  Workload w;
  w.name = "sa";
  std::vector<ComponentVersionSpec> chain;
  Json ds = P();
  ds.Set("rows", Json::Int(rows));
  ds.Set("seed", Json::Int(13));
  chain.push_back(MakeSpec("dataset", ComponentKind::kDataset, 0,
                           kSchemaBase + 21, "gen_reviews", std::move(ds),
                           1.3));
  chain.push_back(MakeSpec("corpus_process", ComponentKind::kPreprocessor,
                           kSchemaBase + 21, kSchemaBase + 22, "corpus_process",
                           P(), 20.0));
  Json ep = P();
  ep.Set("dims", Json::Int(12));
  ep.Set("window", Json::Int(2));
  chain.push_back(MakeSpec("word_embedding", ComponentKind::kPreprocessor,
                           kSchemaBase + 22, kSchemaBase + 23,
                           "train_embedding", std::move(ep), 240.0));
  chain.push_back(MakeSpec("feature_pooling", ComponentKind::kPreprocessor,
                           kSchemaBase + 23, kSchemaBase + 24, "pool_features",
                           P(), 6.0));
  Json mp = P();
  mp.Set("hidden", Json::Int(12));
  mp.Set("epochs", Json::Int(12));
  chain.push_back(MakeSpec("dl_model", ComponentKind::kModel, kSchemaBase + 24,
                           kSchemaBase + 25, "train_mlp", std::move(mp), 66.0));
  MLCASK_ASSIGN_OR_RETURN(w.initial, Pipeline::Chain(w.name, std::move(chain)));
  w.preprocessors = {"corpus_process", "word_embedding", "feature_pooling"};
  w.model = "dl_model";
  return w;
}

StatusOr<Workload> MakeAutolearn(double scale) {
  // The costliest pipeline (Fig. 5d): feature generation + selection
  // dominate; ~1300 simulated seconds per full run at scale 1, 1200 images.
  int64_t rows = std::max<int64_t>(60, static_cast<int64_t>(1200 * scale));
  Workload w;
  w.name = "autolearn";
  std::vector<ComponentVersionSpec> chain;
  Json ds = P();
  ds.Set("rows", Json::Int(rows));
  ds.Set("side", Json::Int(16));
  ds.Set("seed", Json::Int(17));
  chain.push_back(MakeSpec("dataset", ComponentKind::kDataset, 0,
                           kSchemaBase + 31, "gen_digits", std::move(ds), 2.0));
  Json zp = P();
  zp.Set("max_order", Json::Int(6));
  chain.push_back(MakeSpec("zernike_moments", ComponentKind::kPreprocessor,
                           kSchemaBase + 31, kSchemaBase + 32,
                           "zernike_features", std::move(zp), 380.0));
  Json gp = P();
  gp.Set("keep_top_k", Json::Int(60));
  gp.Set("base_pool", Json::Int(12));
  chain.push_back(MakeSpec("feature_generation", ComponentKind::kPreprocessor,
                           kSchemaBase + 32, kSchemaBase + 33,
                           "autolearn_features", std::move(gp), 420.0));
  Json sp = P();
  sp.Set("keep_top_k", Json::Int(24));
  chain.push_back(MakeSpec("feature_selection", ComponentKind::kPreprocessor,
                           kSchemaBase + 33, kSchemaBase + 34,
                           "autolearn_select", std::move(sp), 90.0));
  Json mp = P();
  mp.Set("rounds", Json::Int(30));
  chain.push_back(MakeSpec("adaboost", ComponentKind::kModel, kSchemaBase + 34,
                           kSchemaBase + 35, "train_adaboost", std::move(mp),
                           200.0));
  MLCASK_ASSIGN_OR_RETURN(w.initial, Pipeline::Chain(w.name, std::move(chain)));
  w.preprocessors = {"zernike_moments", "feature_generation",
                     "feature_selection"};
  w.model = "adaboost";
  return w;
}

}  // namespace

std::vector<std::string> WorkloadNames() {
  return {"readmission", "dpm", "sa", "autolearn"};
}

StatusOr<Workload> MakeWorkload(const std::string& name, double scale) {
  if (scale <= 0) {
    return Status::InvalidArgument("scale must be positive");
  }
  if (name == "readmission") return MakeReadmission(scale);
  if (name == "dpm") return MakeDpm(scale);
  if (name == "sa") return MakeSa(scale);
  if (name == "autolearn") return MakeAutolearn(scale);
  return Status::NotFound("unknown workload '" + name + "'");
}

pipeline::ComponentVersionSpec BumpIncrement(
    const pipeline::ComponentVersionSpec& spec) {
  pipeline::ComponentVersionSpec next = spec;
  next.version = spec.version.BumpIncrement();
  next.params.Set("variant",
                  Json::Int(spec.params.GetInt("variant", 0) + 1));
  return next;
}

pipeline::ComponentVersionSpec BumpSchema(
    const pipeline::ComponentVersionSpec& spec) {
  pipeline::ComponentVersionSpec next = spec;
  next.version = spec.version.BumpSchema();
  next.params.Set("variant",
                  Json::Int(spec.params.GetInt("variant", 0) + 1));
  // Fresh output schema id: offset by the schema digit so each major line
  // has a stable, distinct id.
  next.output_schema = spec.output_schema + 1000 * next.version.schema;
  return next;
}

pipeline::ComponentVersionSpec AdaptInputSchema(
    const pipeline::ComponentVersionSpec& spec, uint64_t new_input_schema) {
  pipeline::ComponentVersionSpec next = BumpIncrement(spec);
  next.input_schema = new_input_schema;
  return next;
}

StatusOr<pipeline::Pipeline> WithComponent(
    const pipeline::Pipeline& chain,
    const pipeline::ComponentVersionSpec& spec) {
  MLCASK_ASSIGN_OR_RETURN(auto order, chain.TopologicalOrder());
  std::vector<pipeline::ComponentVersionSpec> specs;
  bool replaced = false;
  for (const pipeline::ComponentVersionSpec* c : order) {
    if (c->name == spec.name) {
      specs.push_back(spec);
      replaced = true;
    } else {
      specs.push_back(*c);
    }
  }
  if (!replaced) {
    return Status::NotFound("component '" + spec.name + "' not in pipeline");
  }
  return pipeline::Pipeline::Chain(chain.name(), std::move(specs));
}

}  // namespace mlcask::sim
