#ifndef MLCASK_SIM_WORKLOADS_H_
#define MLCASK_SIM_WORKLOADS_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "pipeline/pipeline.h"

namespace mlcask::sim {

/// One of the paper's four evaluated pipelines, ready to run and evolve.
struct Workload {
  std::string name;            ///< "readmission", "dpm", "sa", "autolearn"
  pipeline::Pipeline initial;  ///< Chain with all components at version 0.0.
  /// Names of the updatable pre-processing components (dataset excluded),
  /// in chain order.
  std::vector<std::string> preprocessors;
  /// Name of the model component (chain sink).
  std::string model;
};

/// The four workload names in the paper's order.
std::vector<std::string> WorkloadNames();

/// Builds a workload. `scale` multiplies dataset sizes (1 = the calibrated
/// default whose simulated per-iteration times match the magnitudes of the
/// paper's Fig. 5; smaller fractions keep unit tests fast — real compute
/// shrinks while simulated seconds per row stay calibrated).
StatusOr<Workload> MakeWorkload(const std::string& name, double scale = 1.0);

/// A compatible component update (paper Sec. IV-B): bumps the increment and
/// turns the `variant` hyperparameter knob so the new version genuinely
/// behaves differently.
pipeline::ComponentVersionSpec BumpIncrement(
    const pipeline::ComponentVersionSpec& spec);

/// An output-schema update: bumps the schema digit and assigns a fresh
/// output schema id. Downstream components are now incompatible until they
/// are updated via `AdaptInputSchema`.
pipeline::ComponentVersionSpec BumpSchema(
    const pipeline::ComponentVersionSpec& spec);

/// Updates a downstream component to consume a new upstream schema ("if the
/// output data schema of pre(fi) changes, fi should perform at least one
/// increment update to ensure its compatibility").
pipeline::ComponentVersionSpec AdaptInputSchema(
    const pipeline::ComponentVersionSpec& spec, uint64_t new_input_schema);

/// Replaces the named component in a chain pipeline, returning the new chain.
StatusOr<pipeline::Pipeline> WithComponent(
    const pipeline::Pipeline& chain, const pipeline::ComponentVersionSpec& spec);

}  // namespace mlcask::sim

#endif  // MLCASK_SIM_WORKLOADS_H_
