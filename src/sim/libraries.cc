#include "sim/libraries.h"

#include <algorithm>
#include <cmath>
#include <map>

#include "common/strings.h"
#include "data/generators.h"
#include "ml/adaboost.h"
#include "ml/autolearn.h"
#include "ml/embedding.h"
#include "ml/hmm.h"
#include "ml/logreg.h"
#include "ml/matrix.h"
#include "ml/metrics.h"
#include "ml/mlp.h"
#include "ml/train_eval.h"
#include "ml/zernike.h"

namespace mlcask::sim {

namespace {

using data::Column;
using data::ColumnType;
using data::Table;
using pipeline::ExecInput;
using pipeline::ExecOutput;

int64_t Variant(const ExecInput& in) { return in.params->GetInt("variant", 0); }

Status RequireInput(const ExecInput& in, const char* impl) {
  if (in.input == nullptr) {
    return Status::InvalidArgument(std::string(impl) +
                                   " requires an upstream input table");
  }
  return Status::Ok();
}

/// Collects the feature matrix (all double columns except `label`) plus the
/// label column (double or int named "label").
StatusOr<std::pair<ml::Matrix, std::vector<double>>> FeaturesAndLabel(
    const Table& t) {
  std::vector<std::string> feature_cols;
  for (const Column& c : t.columns()) {
    if (c.type == ColumnType::kDouble && c.name != "label") {
      feature_cols.push_back(c.name);
    }
  }
  if (feature_cols.empty()) {
    return Status::InvalidArgument("no double feature columns in table");
  }
  std::vector<double> label;
  if (t.HasColumn("label")) {
    const Column* lc = *t.GetColumn("label");
    if (lc->type == ColumnType::kDouble) {
      label = lc->doubles;
    } else if (lc->type == ColumnType::kInt) {
      label.reserve(lc->ints.size());
      for (int64_t v : lc->ints) label.push_back(static_cast<double>(v));
    }
  }
  if (label.empty()) {
    return Status::InvalidArgument("table has no usable 'label' column");
  }
  MLCASK_ASSIGN_OR_RETURN(std::vector<double> rm, t.ToRowMajor(feature_cols));
  return std::make_pair(
      ml::Matrix::FromRowMajor(t.num_rows(), feature_cols.size(), std::move(rm)),
      std::move(label));
}

/// Renames the workload-specific outcome column to the canonical "label".
Status CanonicalizeLabel(Table* t, const std::string& from) {
  MLCASK_ASSIGN_OR_RETURN(const Column* src, t->GetColumn(from));
  std::vector<int64_t> vals = src->ints;
  MLCASK_RETURN_IF_ERROR(t->DropColumn(from));
  return t->AddIntColumn("label", std::move(vals));
}

// ---------------------------------------------------------------------------
// Dataset sources
// ---------------------------------------------------------------------------

StatusOr<ExecOutput> GenReadmission(const ExecInput& in) {
  size_t rows = static_cast<size_t>(in.params->GetInt("rows", 1000));
  uint64_t seed = static_cast<uint64_t>(in.params->GetInt("seed", 1));
  int schema_version = static_cast<int>(in.params->GetInt("schema_version", 0));
  double missing = in.params->GetDouble("missing_rate", 0.08);
  MLCASK_ASSIGN_OR_RETURN(
      Table t, data::GenerateReadmissionData(rows, seed, schema_version, missing));
  MLCASK_RETURN_IF_ERROR(CanonicalizeLabel(&t, "readmit_30d"));
  ExecOutput out;
  out.table = std::move(t);
  return out;
}

StatusOr<ExecOutput> GenDpm(const ExecInput& in) {
  size_t patients = static_cast<size_t>(in.params->GetInt("patients", 80));
  size_t visits = static_cast<size_t>(in.params->GetInt("visits", 12));
  uint64_t seed = static_cast<uint64_t>(in.params->GetInt("seed", 1));
  MLCASK_ASSIGN_OR_RETURN(Table t, data::GenerateDpmData(patients, visits, seed));
  MLCASK_RETURN_IF_ERROR(CanonicalizeLabel(&t, "progression"));
  ExecOutput out;
  out.table = std::move(t);
  return out;
}

StatusOr<ExecOutput> GenReviews(const ExecInput& in) {
  size_t rows = static_cast<size_t>(in.params->GetInt("rows", 600));
  uint64_t seed = static_cast<uint64_t>(in.params->GetInt("seed", 1));
  MLCASK_ASSIGN_OR_RETURN(Table t, data::GenerateReviews(rows, seed));
  MLCASK_RETURN_IF_ERROR(CanonicalizeLabel(&t, "sentiment"));
  ExecOutput out;
  out.table = std::move(t);
  return out;
}

StatusOr<ExecOutput> GenDigits(const ExecInput& in) {
  size_t rows = static_cast<size_t>(in.params->GetInt("rows", 400));
  size_t side = static_cast<size_t>(in.params->GetInt("side", 16));
  uint64_t seed = static_cast<uint64_t>(in.params->GetInt("seed", 1));
  MLCASK_ASSIGN_OR_RETURN(Table t, data::GenerateDigits(rows, side, seed));
  MLCASK_RETURN_IF_ERROR(t.DropColumn("digit"));
  MLCASK_RETURN_IF_ERROR(CanonicalizeLabel(&t, "is_ge5"));
  ExecOutput out;
  out.table = std::move(t);
  return out;
}

// ---------------------------------------------------------------------------
// Pre-processing libraries
// ---------------------------------------------------------------------------

StatusOr<ExecOutput> CleanseImpute(const ExecInput& in) {
  MLCASK_RETURN_IF_ERROR(RequireInput(in, "cleanse_impute"));
  std::string strategy = in.params->GetString("strategy", "mean");
  if (strategy != "mean" && strategy != "zero") {
    return Status::InvalidArgument("cleanse_impute: unknown strategy '" +
                                   strategy + "'");
  }
  Table t;
  for (const Column& c : in.input->columns()) {
    switch (c.type) {
      case ColumnType::kDouble: {
        std::vector<double> vals = c.doubles;
        double fill = 0.0;
        if (strategy == "mean") {
          double sum = 0;
          size_t n = 0;
          for (double v : vals) {
            if (!std::isnan(v)) {
              sum += v;
              ++n;
            }
          }
          fill = n > 0 ? sum / static_cast<double>(n) : 0.0;
        }
        for (double& v : vals) {
          if (std::isnan(v)) v = fill;
        }
        MLCASK_RETURN_IF_ERROR(t.AddDoubleColumn(c.name, std::move(vals)));
        break;
      }
      case ColumnType::kString: {
        std::vector<std::string> vals = c.strings;
        // Fill blank diagnosis codes with the modal code.
        std::map<std::string, size_t> freq;
        for (const std::string& s : vals) {
          if (!s.empty()) freq[s] += 1;
        }
        std::string modal = "D000";
        size_t best = 0;
        for (const auto& [code, count] : freq) {
          if (count > best) {
            best = count;
            modal = code;
          }
        }
        for (std::string& s : vals) {
          if (s.empty()) s = modal;
        }
        MLCASK_RETURN_IF_ERROR(t.AddStringColumn(c.name, std::move(vals)));
        break;
      }
      case ColumnType::kInt: {
        MLCASK_RETURN_IF_ERROR(t.AddIntColumn(c.name, c.ints));
        break;
      }
    }
  }
  for (const auto& [k, v] : in.input->meta()) t.SetMeta(k, v);
  ExecOutput out;
  out.table = std::move(t);
  return out;
}

StatusOr<ExecOutput> ExtractEhrFeatures(const ExecInput& in) {
  MLCASK_RETURN_IF_ERROR(RequireInput(in, "extract_ehr_features"));
  bool use_code_freq = in.params->GetBool("use_code_freq", true);
  int64_t variant = Variant(in);

  Table t;
  size_t fi = 0;
  // Standardize numeric columns into features f0..fk.
  for (const Column& c : in.input->columns()) {
    if (c.name == "label") continue;
    if (c.type == ColumnType::kDouble) {
      // Standardize over the non-missing values; missing entries map to 0
      // (the column mean) so an un-cleansed input degrades gracefully
      // instead of poisoning every feature with NaN.
      std::vector<double> vals = c.doubles;
      double mean = 0;
      size_t present = 0;
      for (double v : vals) {
        if (!std::isnan(v)) {
          mean += v;
          ++present;
        }
      }
      mean /= present > 0 ? static_cast<double>(present) : 1.0;
      double sd = 0;
      for (double v : vals) {
        if (!std::isnan(v)) sd += (v - mean) * (v - mean);
      }
      sd = std::sqrt(sd / (present > 0 ? static_cast<double>(present) : 1.0));
      if (sd < 1e-12) sd = 1.0;
      for (double& v : vals) v = std::isnan(v) ? 0.0 : (v - mean) / sd;
      MLCASK_RETURN_IF_ERROR(
          t.AddDoubleColumn(StrFormat("f%zu", fi++), std::move(vals)));
    } else if (c.type == ColumnType::kInt && c.name != "patient_id") {
      std::vector<double> vals;
      vals.reserve(c.ints.size());
      for (int64_t v : c.ints) vals.push_back(static_cast<double>(v));
      MLCASK_RETURN_IF_ERROR(
          t.AddDoubleColumn(StrFormat("f%zu", fi++), std::move(vals)));
    }
  }
  // Frequency-encode the diagnosis code (variant > 0 adds a squared term,
  // the kind of small feature-engineering change an increment ships).
  if (use_code_freq && in.input->HasColumn("diag_code")) {
    const Column* dc = *in.input->GetColumn("diag_code");
    std::map<std::string, double> freq;
    for (const std::string& s : dc->strings) freq[s] += 1.0;
    for (auto& [code, count] : freq) {
      count /= static_cast<double>(dc->strings.size());
    }
    std::vector<double> enc;
    enc.reserve(dc->strings.size());
    for (const std::string& s : dc->strings) enc.push_back(freq[s]);
    if (variant > 0) {
      std::vector<double> sq = enc;
      for (double& v : sq) v = v * v * static_cast<double>(variant);
      MLCASK_RETURN_IF_ERROR(
          t.AddDoubleColumn(StrFormat("f%zu", fi++), std::move(sq)));
    }
    MLCASK_RETURN_IF_ERROR(
        t.AddDoubleColumn(StrFormat("f%zu", fi++), std::move(enc)));
  }
  // Pass through the grouping key so downstream HMM smoothing can segment
  // per-patient sequences (it is an int column, so models ignore it).
  if (in.input->HasColumn("patient_id")) {
    MLCASK_ASSIGN_OR_RETURN(const Column* pid, in.input->GetColumn("patient_id"));
    MLCASK_RETURN_IF_ERROR(t.AddIntColumn("patient_id", pid->ints));
  }
  // Carry the label through.
  MLCASK_ASSIGN_OR_RETURN(const Column* label, in.input->GetColumn("label"));
  MLCASK_RETURN_IF_ERROR(t.AddIntColumn("label", label->ints));
  ExecOutput out;
  out.table = std::move(t);
  return out;
}

StatusOr<ExecOutput> HmmSmooth(const ExecInput& in) {
  MLCASK_RETURN_IF_ERROR(RequireInput(in, "hmm_smooth"));
  size_t num_states =
      static_cast<size_t>(in.params->GetInt("num_states", 3));
  int em_iterations = static_cast<int>(in.params->GetInt("em_iterations", 8));
  int64_t variant = Variant(in);
  // Later variants run one extra EM iteration per variant step.
  em_iterations += static_cast<int>(variant);

  // Group rows into per-patient sequences when the id column exists;
  // otherwise treat the whole column as one sequence.
  std::vector<std::pair<size_t, size_t>> groups;
  if (in.input->HasColumn("patient_id")) {
    const Column* pid = *in.input->GetColumn("patient_id");
    size_t start = 0;
    for (size_t i = 1; i <= pid->ints.size(); ++i) {
      if (i == pid->ints.size() || pid->ints[i] != pid->ints[start]) {
        groups.emplace_back(start, i);
        start = i;
      }
    }
  } else {
    groups.emplace_back(0, in.input->num_rows());
  }

  Table t;
  for (const Column& c : in.input->columns()) {
    if (c.type == ColumnType::kDouble && c.name != "label") {
      std::vector<double> smoothed = c.doubles;
      for (const auto& [start, end] : groups) {
        std::vector<double> seq(c.doubles.begin() + static_cast<long>(start),
                                c.doubles.begin() + static_cast<long>(end));
        ml::GaussianHmm hmm;
        ml::HmmConfig cfg;
        cfg.num_states = num_states;
        cfg.em_iterations = em_iterations;
        cfg.seed = in.seed;
        if (seq.size() >= num_states * 2 && hmm.Fit(seq, cfg).ok()) {
          auto sm = hmm.Smooth(seq);
          if (sm.ok()) {
            std::copy(sm->begin(), sm->end(),
                      smoothed.begin() + static_cast<long>(start));
          }
        }
      }
      MLCASK_RETURN_IF_ERROR(t.AddDoubleColumn(c.name, std::move(smoothed)));
    } else if (c.type == ColumnType::kDouble) {
      MLCASK_RETURN_IF_ERROR(t.AddDoubleColumn(c.name, c.doubles));
    } else if (c.type == ColumnType::kInt) {
      MLCASK_RETURN_IF_ERROR(t.AddIntColumn(c.name, c.ints));
    } else {
      MLCASK_RETURN_IF_ERROR(t.AddStringColumn(c.name, c.strings));
    }
  }
  ExecOutput out;
  out.table = std::move(t);
  return out;
}

StatusOr<ExecOutput> CorpusProcess(const ExecInput& in) {
  MLCASK_RETURN_IF_ERROR(RequireInput(in, "corpus_process"));
  MLCASK_ASSIGN_OR_RETURN(const Column* reviews, in.input->GetColumn("review"));
  int64_t variant = Variant(in);

  std::vector<std::string> normalized;
  std::vector<double> token_count;
  normalized.reserve(reviews->strings.size());
  token_count.reserve(reviews->strings.size());
  for (const std::string& r : reviews->strings) {
    std::vector<std::string> tokens = ml::Tokenize(r);
    // Variant 1+ drops single-character tokens (a plausible cleanup change).
    if (variant > 0) {
      tokens.erase(std::remove_if(tokens.begin(), tokens.end(),
                                  [](const std::string& t) {
                                    return t.size() <= 1;
                                  }),
                   tokens.end());
    }
    token_count.push_back(static_cast<double>(tokens.size()));
    normalized.push_back(StrJoin(tokens, " "));
  }
  Table t;
  MLCASK_RETURN_IF_ERROR(t.AddStringColumn("review", std::move(normalized)));
  MLCASK_RETURN_IF_ERROR(t.AddDoubleColumn("token_count", std::move(token_count)));
  MLCASK_ASSIGN_OR_RETURN(const Column* label, in.input->GetColumn("label"));
  MLCASK_RETURN_IF_ERROR(t.AddIntColumn("label", label->ints));
  ExecOutput out;
  out.table = std::move(t);
  return out;
}

StatusOr<ExecOutput> TrainEmbedding(const ExecInput& in) {
  MLCASK_RETURN_IF_ERROR(RequireInput(in, "train_embedding"));
  MLCASK_ASSIGN_OR_RETURN(const Column* reviews, in.input->GetColumn("review"));
  ml::EmbeddingConfig cfg;
  cfg.dims = static_cast<size_t>(in.params->GetInt("dims", 12));
  cfg.window = static_cast<size_t>(in.params->GetInt("window", 2));
  cfg.seed = in.seed;
  cfg.power_iterations =
      static_cast<int>(in.params->GetInt("power_iterations", 10));
  int64_t variant = Variant(in);
  cfg.dims += static_cast<size_t>(std::max<int64_t>(0, variant));

  ml::WordEmbedding emb;
  MLCASK_RETURN_IF_ERROR(emb.Fit(reviews->strings, cfg));

  Table t;
  std::vector<std::vector<double>> features(emb.dims());
  for (auto& f : features) f.reserve(reviews->strings.size());
  for (const std::string& r : reviews->strings) {
    std::vector<double> vec = emb.Embed(r);
    for (size_t k = 0; k < emb.dims(); ++k) features[k].push_back(vec[k]);
  }
  for (size_t k = 0; k < features.size(); ++k) {
    MLCASK_RETURN_IF_ERROR(
        t.AddDoubleColumn(StrFormat("emb%zu", k), std::move(features[k])));
  }
  if (in.input->HasColumn("token_count")) {
    MLCASK_ASSIGN_OR_RETURN(const Column* tc, in.input->GetColumn("token_count"));
    MLCASK_RETURN_IF_ERROR(t.AddDoubleColumn("token_count", tc->doubles));
  }
  MLCASK_ASSIGN_OR_RETURN(const Column* label, in.input->GetColumn("label"));
  MLCASK_RETURN_IF_ERROR(t.AddIntColumn("label", label->ints));
  t.SetMeta("vocab_size", std::to_string(emb.vocab_size()));
  ExecOutput out;
  out.table = std::move(t);
  return out;
}

StatusOr<ExecOutput> PoolFeatures(const ExecInput& in) {
  MLCASK_RETURN_IF_ERROR(RequireInput(in, "pool_features"));
  bool use_token_count = in.params->GetBool("use_token_count", true);
  int64_t variant = Variant(in);
  Table t;
  for (const Column& c : in.input->columns()) {
    if (c.type == ColumnType::kDouble && c.name != "label") {
      if (c.name == "token_count" && !use_token_count) continue;
      std::vector<double> vals = c.doubles;
      double mean = 0;
      for (double v : vals) mean += v;
      mean /= static_cast<double>(vals.size());
      double sd = 0;
      for (double v : vals) sd += (v - mean) * (v - mean);
      sd = std::sqrt(sd / static_cast<double>(vals.size()));
      if (sd < 1e-12) sd = 1.0;
      for (double& v : vals) v = (v - mean) / sd;
      // Variant 1+ additionally clips outliers at ±3σ.
      if (variant > 0) {
        for (double& v : vals) v = std::clamp(v, -3.0, 3.0);
      }
      MLCASK_RETURN_IF_ERROR(t.AddDoubleColumn(c.name, std::move(vals)));
    }
  }
  MLCASK_ASSIGN_OR_RETURN(const Column* label, in.input->GetColumn("label"));
  MLCASK_RETURN_IF_ERROR(t.AddIntColumn("label", label->ints));
  ExecOutput out;
  out.table = std::move(t);
  return out;
}

StatusOr<ExecOutput> AutolearnSelect(const ExecInput& in) {
  MLCASK_RETURN_IF_ERROR(RequireInput(in, "autolearn_select"));
  size_t keep = static_cast<size_t>(in.params->GetInt("keep_top_k", 24));
  keep += static_cast<size_t>(std::max<int64_t>(0, Variant(in)) * 2);

  MLCASK_ASSIGN_OR_RETURN(const Column* label_col, in.input->GetColumn("label"));
  std::vector<double> y;
  y.reserve(label_col->ints.size());
  for (int64_t v : label_col->ints) y.push_back(static_cast<double>(v));

  // Rank existing double columns by |corr with label| and keep the best.
  std::vector<std::pair<double, const Column*>> ranked;
  for (const Column& c : in.input->columns()) {
    if (c.type == ColumnType::kDouble && c.name != "label") {
      ranked.emplace_back(std::fabs(ml::PearsonCorrelation(c.doubles, y)), &c);
    }
  }
  if (ranked.empty()) {
    return Status::InvalidArgument("autolearn_select: no feature columns");
  }
  std::sort(ranked.begin(), ranked.end(), [](const auto& a, const auto& b) {
    if (a.first != b.first) return a.first > b.first;
    return a.second->name < b.second->name;
  });
  if (ranked.size() > keep) ranked.resize(keep);

  Table t;
  for (const auto& [score, col] : ranked) {
    (void)score;
    MLCASK_RETURN_IF_ERROR(t.AddDoubleColumn(col->name, col->doubles));
  }
  MLCASK_RETURN_IF_ERROR(t.AddIntColumn("label", label_col->ints));
  ExecOutput out;
  out.table = std::move(t);
  return out;
}

StatusOr<ExecOutput> ZernikeFeatures(const ExecInput& in) {
  MLCASK_RETURN_IF_ERROR(RequireInput(in, "zernike_features"));
  int max_order = static_cast<int>(in.params->GetInt("max_order", 6));
  int64_t variant = Variant(in);
  max_order += static_cast<int>(std::min<int64_t>(variant, 4));

  // Infer side from the shape meta ("16x16").
  auto it = in.input->meta().find("shape");
  if (it == in.input->meta().end()) {
    return Status::InvalidArgument("zernike_features: input lacks shape meta");
  }
  size_t side = 0;
  {
    std::vector<std::string> parts = StrSplit(it->second, 'x');
    uint64_t s = 0;
    if (parts.size() != 2 || !ParseUint(parts[0], &s)) {
      return Status::InvalidArgument("zernike_features: bad shape meta");
    }
    side = static_cast<size_t>(s);
  }

  ml::ZernikeExtractor extractor(max_order);
  const size_t rows = in.input->num_rows();
  std::vector<std::vector<double>> features(extractor.NumFeatures(),
                                            std::vector<double>(rows));
  std::vector<double> pixels(side * side);
  // Pre-resolve pixel columns to avoid per-row lookups.
  std::vector<const Column*> px_cols(side * side);
  for (size_t k = 0; k < side * side; ++k) {
    MLCASK_ASSIGN_OR_RETURN(px_cols[k],
                            in.input->GetColumn(StrFormat("px%zu", k)));
  }
  for (size_t i = 0; i < rows; ++i) {
    for (size_t k = 0; k < side * side; ++k) pixels[k] = px_cols[k]->doubles[i];
    MLCASK_ASSIGN_OR_RETURN(std::vector<double> f, extractor.Extract(pixels, side));
    for (size_t k = 0; k < f.size(); ++k) features[k][i] = f[k];
  }

  Table t;
  for (size_t k = 0; k < features.size(); ++k) {
    MLCASK_RETURN_IF_ERROR(
        t.AddDoubleColumn(StrFormat("z%zu", k), std::move(features[k])));
  }
  MLCASK_ASSIGN_OR_RETURN(const Column* label, in.input->GetColumn("label"));
  MLCASK_RETURN_IF_ERROR(t.AddIntColumn("label", label->ints));
  ExecOutput out;
  out.table = std::move(t);
  return out;
}

StatusOr<ExecOutput> AutolearnFeatures(const ExecInput& in) {
  MLCASK_RETURN_IF_ERROR(RequireInput(in, "autolearn_features"));
  MLCASK_ASSIGN_OR_RETURN(auto xy, FeaturesAndLabel(*in.input));
  ml::AutolearnConfig cfg;
  cfg.keep_top_k = static_cast<size_t>(in.params->GetInt("keep_top_k", 24));
  cfg.base_pool = static_cast<size_t>(in.params->GetInt("base_pool", 10));
  int64_t variant = Variant(in);
  cfg.keep_top_k += static_cast<size_t>(std::max<int64_t>(0, variant) * 2);
  MLCASK_ASSIGN_OR_RETURN(ml::AutolearnResult result,
                          GenerateAndSelectFeatures(xy.first, xy.second, cfg));

  Table t;
  for (size_t k = 0; k < result.features.cols(); ++k) {
    std::vector<double> col(result.features.rows());
    for (size_t i = 0; i < result.features.rows(); ++i) {
      col[i] = result.features.At(i, k);
    }
    MLCASK_RETURN_IF_ERROR(
        t.AddDoubleColumn(StrFormat("g%zu", k), std::move(col)));
  }
  std::vector<int64_t> label(xy.second.size());
  for (size_t i = 0; i < xy.second.size(); ++i) {
    label[i] = xy.second[i] > 0.5 ? 1 : 0;
  }
  MLCASK_RETURN_IF_ERROR(t.AddIntColumn("label", std::move(label)));
  ExecOutput out;
  out.table = std::move(t);
  return out;
}

/// Joins several predecessor outputs for DAG pipelines: feature (double)
/// columns from every input are concatenated (renamed on collision), and a
/// single "label" column is taken from the first input that has one.
StatusOr<ExecOutput> ConcatFeatures(const ExecInput& in) {
  if (in.inputs.empty()) {
    return Status::InvalidArgument("concat_features requires >= 1 input");
  }
  Table t;
  size_t branch = 0;
  for (const Table* input : in.inputs) {
    for (const Column& c : input->columns()) {
      if (c.type != ColumnType::kDouble || c.name == "label") continue;
      std::string name = c.name;
      if (t.HasColumn(name)) {
        name = "b" + std::to_string(branch) + "_" + name;
      }
      MLCASK_RETURN_IF_ERROR(t.AddDoubleColumn(name, c.doubles));
    }
    ++branch;
  }
  for (const Table* input : in.inputs) {
    if (input->HasColumn("label")) {
      MLCASK_ASSIGN_OR_RETURN(const Column* label, input->GetColumn("label"));
      MLCASK_RETURN_IF_ERROR(t.AddIntColumn("label", label->ints));
      break;
    }
  }
  if (!t.HasColumn("label")) {
    return Status::InvalidArgument("concat_features: no input carries a label");
  }
  ExecOutput out;
  out.table = std::move(t);
  return out;
}

// ---------------------------------------------------------------------------
// Model libraries
// ---------------------------------------------------------------------------

/// Shared train/eval scaffold: split, fit, score on the held-out set, and
/// emit a small predictions table. Reports the full metric set (all
/// score-oriented, higher better) so the merge can optimize any of them.
template <typename FitPredict>
StatusOr<ExecOutput> TrainAndScore(const ExecInput& in, FitPredict fit_predict) {
  MLCASK_ASSIGN_OR_RETURN(auto xy, FeaturesAndLabel(*in.input));
  MLCASK_ASSIGN_OR_RETURN(ml::TrainTestSplit split,
                          ml::SplitData(xy.first, xy.second, 0.3, in.seed));
  MLCASK_ASSIGN_OR_RETURN(std::vector<double> proba, fit_predict(split));
  MLCASK_ASSIGN_OR_RETURN(double acc, ml::Accuracy(proba, split.y_test));
  MLCASK_ASSIGN_OR_RETURN(double auc, ml::AreaUnderRoc(proba, split.y_test));
  MLCASK_ASSIGN_OR_RETURN(double logloss, ml::LogLoss(proba, split.y_test));

  Table t;
  MLCASK_RETURN_IF_ERROR(t.AddDoubleColumn("prediction", std::move(proba)));
  MLCASK_RETURN_IF_ERROR(t.AddDoubleColumn("label", std::move(split.y_test)));
  ExecOutput out;
  out.table = std::move(t);
  out.score = acc;
  out.metric = "accuracy";
  out.metrics["accuracy"] = acc;
  out.metrics["auc"] = auc;
  // Score-oriented transform of an error metric, as in the paper's
  // score = 1/MSE example.
  out.metrics["inv_logloss"] = 1.0 / (logloss + 1e-12);
  return out;
}

StatusOr<ExecOutput> TrainMlp(const ExecInput& in) {
  MLCASK_RETURN_IF_ERROR(RequireInput(in, "train_mlp"));
  ml::MlpConfig cfg;
  cfg.hidden_units = static_cast<size_t>(in.params->GetInt("hidden", 16));
  cfg.sgd.epochs = static_cast<int>(in.params->GetInt("epochs", 15));
  cfg.sgd.learning_rate = in.params->GetDouble("lr", 0.2);
  cfg.sgd.seed = in.seed;
  int64_t variant = Variant(in);
  // Successive model increments grow capacity and training budget a little.
  cfg.hidden_units += static_cast<size_t>(std::max<int64_t>(0, variant) * 2);
  cfg.sgd.epochs += static_cast<int>(variant);

  return TrainAndScore(in, [&](ml::TrainTestSplit& split)
                               -> StatusOr<std::vector<double>> {
    ml::Mlp model;
    MLCASK_RETURN_IF_ERROR(model.Fit(split.x_train, split.y_train, cfg));
    return model.PredictProba(split.x_test);
  });
}

StatusOr<ExecOutput> TrainLogReg(const ExecInput& in) {
  MLCASK_RETURN_IF_ERROR(RequireInput(in, "train_logreg"));
  ml::SgdConfig cfg;
  cfg.epochs = static_cast<int>(in.params->GetInt("epochs", 25));
  cfg.learning_rate = in.params->GetDouble("lr", 0.15);
  cfg.seed = in.seed;
  cfg.epochs += static_cast<int>(Variant(in));

  return TrainAndScore(in, [&](ml::TrainTestSplit& split)
                               -> StatusOr<std::vector<double>> {
    ml::LogisticRegression model;
    MLCASK_RETURN_IF_ERROR(model.Fit(split.x_train, split.y_train, cfg));
    return model.PredictProba(split.x_test);
  });
}

StatusOr<ExecOutput> TrainAdaBoost(const ExecInput& in) {
  MLCASK_RETURN_IF_ERROR(RequireInput(in, "train_adaboost"));
  ml::AdaBoostConfig cfg;
  cfg.rounds = static_cast<int>(in.params->GetInt("rounds", 30));
  cfg.rounds += static_cast<int>(Variant(in) * 5);

  return TrainAndScore(in, [&](ml::TrainTestSplit& split)
                               -> StatusOr<std::vector<double>> {
    ml::AdaBoost model;
    MLCASK_RETURN_IF_ERROR(model.Fit(split.x_train, split.y_train, cfg));
    return model.PredictProba(split.x_test);
  });
}

}  // namespace

Status RegisterWorkloadLibraries(pipeline::LibraryRegistry* registry) {
  MLCASK_RETURN_IF_ERROR(registry->Register("gen_readmission", GenReadmission));
  MLCASK_RETURN_IF_ERROR(registry->Register("gen_dpm", GenDpm));
  MLCASK_RETURN_IF_ERROR(registry->Register("gen_reviews", GenReviews));
  MLCASK_RETURN_IF_ERROR(registry->Register("gen_digits", GenDigits));
  MLCASK_RETURN_IF_ERROR(registry->Register("cleanse_impute", CleanseImpute));
  MLCASK_RETURN_IF_ERROR(
      registry->Register("extract_ehr_features", ExtractEhrFeatures));
  MLCASK_RETURN_IF_ERROR(registry->Register("hmm_smooth", HmmSmooth));
  MLCASK_RETURN_IF_ERROR(registry->Register("corpus_process", CorpusProcess));
  MLCASK_RETURN_IF_ERROR(registry->Register("train_embedding", TrainEmbedding));
  MLCASK_RETURN_IF_ERROR(registry->Register("pool_features", PoolFeatures));
  MLCASK_RETURN_IF_ERROR(
      registry->Register("zernike_features", ZernikeFeatures));
  MLCASK_RETURN_IF_ERROR(
      registry->Register("autolearn_features", AutolearnFeatures));
  MLCASK_RETURN_IF_ERROR(
      registry->Register("autolearn_select", AutolearnSelect));
  MLCASK_RETURN_IF_ERROR(registry->Register("concat_features", ConcatFeatures));
  MLCASK_RETURN_IF_ERROR(registry->Register("train_mlp", TrainMlp));
  MLCASK_RETURN_IF_ERROR(registry->Register("train_logreg", TrainLogReg));
  MLCASK_RETURN_IF_ERROR(registry->Register("train_adaboost", TrainAdaBoost));
  return Status::Ok();
}

}  // namespace mlcask::sim
