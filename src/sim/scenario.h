#ifndef MLCASK_SIM_SCENARIO_H_
#define MLCASK_SIM_SCENARIO_H_

#include <memory>
#include <string>
#include <vector>

#include "common/sim_clock.h"
#include "common/status.h"
#include "pipeline/execution_core.h"
#include "pipeline/executor.h"
#include "pipeline/library_registry.h"
#include "pipeline/library_repo.h"
#include "sim/workloads.h"
#include "storage/storage_engine.h"
#include "version/pipeline_repo.h"

namespace mlcask::storage {
class ShardedStorageEngine;
}  // namespace mlcask::storage

namespace mlcask::sim {

/// A fully provisioned MLCask deployment around one workload: storage
/// engine, library registry/repository, pipeline repository, executor, and
/// simulated clock. Everything the drivers, benches, and examples need.
struct Deployment {
  std::unique_ptr<storage::StorageEngine> engine;
  std::unique_ptr<SimClock> clock;
  std::unique_ptr<pipeline::LibraryRegistry> registry;
  std::unique_ptr<pipeline::LibraryRepo> libraries;
  std::unique_ptr<version::PipelineRepo> repo;
  std::unique_ptr<pipeline::Executor> executor;
  /// The deployment-wide shared ExecutionCore: one long-lived pool reused
  /// by every RunDag call and merge drain (threaded through
  /// ExecutorOptions::core / MergeOptions::core). Sized by `num_workers`
  /// real threads at deployment creation.
  std::unique_ptr<pipeline::ExecutionCore> core;
  Workload workload;
  /// Default worker count applied to runs whose options leave num_workers
  /// unset (0) — the deployment-wide parallelism knob the drivers and
  /// benches thread through to the ExecutionCore. An explicit
  /// ExecutorOptions::num_workers (including 1 = serial) always wins.
  size_t num_workers = 1;

  /// The storage engine as the sharded router, or nullptr when the
  /// deployment runs a single local engine (storage_shards <= 1 and no
  /// endpoints). This is the handle for elastic-topology drills: the
  /// rebalance tests and bench call AddShard / RemoveShard on it while a
  /// merge is draining on the same deployment.
  storage::ShardedStorageEngine* sharded_engine() const;

  /// Runs `p` (chains through Run, general DAGs through RunDag), commits
  /// the result snapshot on `branch`, and registers every component version
  /// in the library repository. Returns the commit id.
  StatusOr<Hash256> RunAndCommit(const pipeline::Pipeline& p,
                                 const std::string& branch,
                                 const std::string& author,
                                 const std::string& message,
                                 const pipeline::ExecutorOptions& opts = {});
};

/// Deployment provisioning knobs (the growing axes get a struct; the old
/// positional overload below stays for existing call sites).
struct DeploymentConfig {
  bool folder_storage = false;  ///< LocalDir archival instead of ForkBase.
  size_t num_workers = 1;       ///< Deployment-wide parallelism default.
  /// >= 2 provisions a DISTRIBUTED storage deployment: that many backend
  /// engines, each behind a StorageEngineService + LoopbackTransport +
  /// RemoteStorageEngine proxy, routed by one ShardedStorageEngine (keys
  /// consistent-hashed, `pipeline/` + `library/` metadata replicated via
  /// two-phase commit — see storage/sharded_engine.h). Every storage call
  /// then crosses a real serialization boundary. 0/1 = one local engine.
  size_t storage_shards = 1;
  /// Non-empty provisions the storage tier OUT OF PROCESS: one socket
  /// connection per endpoint spec (`unix:/path`, `tcp:host:port` — each a
  /// running `mlcask_server`), routed by the same ShardedStorageEngine as
  /// the loopback cluster (see storage::ConnectCluster). Overrides
  /// storage_shards and folder_storage: the shard count is the endpoint
  /// count and each server chose its own backend at launch.
  std::vector<std::string> storage_endpoints;
  /// Chaos harness: a storage::FaultSpec string applied to the CLIENT side
  /// of every storage connection (frame drops, drop-after-send, garbling,
  /// delays — see FaultSpec::Parse). Only meaningful with
  /// storage_endpoints; the transports redial and replay through the
  /// faults, so a deployment under injection must still produce
  /// bit-identical results. Empty = no injection.
  std::string client_fault_spec;
};

/// Creates a deployment with a ForkBase engine (pass `folder_storage` for
/// the baselines' local-dir archival engine instead). `num_workers` is the
/// deployment-wide parallelism default.
StatusOr<std::unique_ptr<Deployment>> MakeDeployment(
    const std::string& workload_name, double scale,
    bool folder_storage = false, size_t num_workers = 1);

/// Struct-config overload; supports distributed storage deployments.
StatusOr<std::unique_ptr<Deployment>> MakeDeployment(
    const std::string& workload_name, double scale,
    const DeploymentConfig& config);

/// Reproduces the paper's Fig. 3 two-branch history on a deployment:
///
///   master.0.0 (common ancestor, all components 0.0)
///   ├─ master.0.1      : first preprocessor 0.1, model 0.4   (HEAD side)
///   └─ dev.0.0..dev.0.2: model 0.1; last preprocessor 1.0 (schema bump) +
///                        model 0.2 (adapted); model 0.3     (MERGE_HEAD)
///
/// This yields the paper's search space: 5 model versions, 2 versions of the
/// schema-bumped preprocessor (0.0/1.0), 2 of the first preprocessor, and a
/// compatibility split exactly like Fig. 4's (3 models follow the old
/// schema, 2 the new).
struct ScenarioInfo {
  std::string head_branch = "master";
  std::string merge_branch = "dev";
  /// Name of the preprocessor whose schema was bumped on the dev branch.
  std::string schema_bumped_component;
};

/// `extra_model_versions` appends that many further increment updates of the
/// model on the dev branch after the Fig. 3 history — numbered 0.5, 0.6, ...
/// (0.4 is skipped: master's independently-authored model already owns it) —
/// widening the merge frontier, which is what the parallel-search scaling
/// bench exercises. 0 reproduces the paper's scenario exactly.
StatusOr<ScenarioInfo> BuildTwoBranchScenario(Deployment* deployment,
                                              int extra_model_versions = 0);

/// The distributed-merge (Fig. 11) scenario: the Fig. 3 history, optionally
/// widened with extra model versions, plus `extra_extractor_versions`
/// further increment updates of the schema-bumped preprocessor committed on
/// dev (1.1, 1.2, ...). Each new extractor version multiplies the search
/// tree's subtree count — extraction-level nodes are the deepest shared
/// prefixes — which is what gives a sharded merge drain
/// (MergeOptions::shards) balanced work to distribute. 0 extra extractors
/// reduces to BuildTwoBranchScenario.
StatusOr<ScenarioInfo> BuildDistributedMergeScenario(
    Deployment* deployment, int extra_extractor_versions,
    int extra_model_versions = 0);

}  // namespace mlcask::sim

#endif  // MLCASK_SIM_SCENARIO_H_
