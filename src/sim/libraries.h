#ifndef MLCASK_SIM_LIBRARIES_H_
#define MLCASK_SIM_LIBRARIES_H_

#include "common/status.h"
#include "pipeline/library_registry.h"

namespace mlcask::sim {

/// Registers the library executables used by the four evaluated pipelines
/// (paper Sec. VII-A):
///
/// Datasets (sources):
///   gen_readmission  — EHR readmission table (params: rows, seed,
///                      schema_version, missing_rate)
///   gen_dpm          — longitudinal CKD table (params: patients, visits)
///   gen_reviews      — sentiment corpus (params: rows)
///   gen_digits       — digit images (params: rows, side)
///
/// Pre-processing:
///   cleanse_impute        — fills missing labs (mean/zero) and blank
///                           diagnosis codes (params: strategy, variant)
///   extract_ehr_features  — standardized numeric features + diag-code
///                           frequency encoding (params: use_code_freq)
///   hmm_smooth            — per-patient HMM smoothing of lab columns
///                           (params: num_states, em_iterations)
///   corpus_process        — text normalization / token count features
///   train_embedding       — co-occurrence embedding, embeds each review
///                           (params: dims, window)
///   zernike_features      — Zernike moments of each image (params: max_order)
///   autolearn_features    — ratio/product generation + selection
///                           (params: keep_top_k, base_pool)
///
/// Models (sinks; emit the pipeline score):
///   train_mlp      — MLP on double features vs "label" (params: hidden,
///                    epochs, lr; metric: accuracy)
///   train_logreg   — logistic regression  (metric: accuracy)
///   train_adaboost — AdaBoost stumps      (params: rounds; metric: accuracy)
///
/// All impls read an integer `variant` param (default 0): the knob the
/// version-evolution scripts turn so that successive increments genuinely
/// change behaviour and scores.
Status RegisterWorkloadLibraries(pipeline::LibraryRegistry* registry);

}  // namespace mlcask::sim

#endif  // MLCASK_SIM_LIBRARIES_H_
