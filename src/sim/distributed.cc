#include "sim/distributed.h"

namespace mlcask::sim {

double DistributedSpeedup(size_t gpus, double comm_overhead) {
  if (gpus <= 1) return 1.0;
  double k = static_cast<double>(gpus);
  return k / (1.0 + comm_overhead * (k - 1.0));
}

double PipelineTimeSpeedup(double train_fraction, double train_speedup) {
  if (train_speedup <= 0) return 0;
  return 1.0 / ((1.0 - train_fraction) + train_fraction / train_speedup);
}

StatusOr<std::vector<LossCurvePoint>> SimulateDistributedTraining(
    const ml::Matrix& x, const std::vector<double>& y,
    const ml::MlpConfig& model_config, const DistributedConfig& dist_config) {
  if (dist_config.gpus == 0) {
    return Status::InvalidArgument("need at least one GPU");
  }
  if (dist_config.base_epoch_seconds <= 0) {
    return Status::InvalidArgument("base_epoch_seconds must be positive");
  }
  ml::Mlp model;
  MLCASK_RETURN_IF_ERROR(model.Fit(x, y, model_config));

  double speedup =
      DistributedSpeedup(dist_config.gpus, dist_config.comm_overhead);
  double epoch_seconds = dist_config.base_epoch_seconds / speedup;

  std::vector<LossCurvePoint> curve;
  curve.reserve(model.loss_history().size());
  for (size_t epoch = 0; epoch < model.loss_history().size(); ++epoch) {
    LossCurvePoint p;
    p.time_s = epoch_seconds * static_cast<double>(epoch + 1);
    p.loss = model.loss_history()[epoch];
    curve.push_back(p);
  }
  return curve;
}

}  // namespace mlcask::sim
