#include "sim/adversarial.h"

#include <atomic>
#include <thread>

#include "common/rng.h"

namespace mlcask::sim {

namespace {

constexpr char kDeepKey[] = "adv/deep/chain";

std::string TenantKey(size_t tenant, size_t object) {
  return "adv/tenant" + std::to_string(tenant) + "/artifact/obj" +
         std::to_string(object);
}

/// Deterministic payload: compressible enough to be cheap to generate,
/// unique per (key, version) so a replayed or cross-wired response would be
/// caught by content, not just by status.
std::string MakePayload(const std::string& key, size_t version, size_t bytes) {
  std::string payload = key + "#v" + std::to_string(version) + "|";
  payload.reserve(bytes);
  size_t fill = 0;
  while (payload.size() < bytes) {
    payload += static_cast<char>('a' + (fill++ % 26));
  }
  payload.resize(bytes);
  return payload;
}

}  // namespace

AdversarialSeedReport SeedAdversarialState(storage::StorageEngine* engine,
                                           const AdversarialOptions& options) {
  AdversarialSeedReport report;
  auto put = [&](const std::string& key, const std::string& payload) {
    if (engine->Put(key, payload).ok()) {
      ++report.acked_writes;
    } else {
      ++report.typed_failures;
    }
  };
  // Deep: one key, ~1000 versions. Consistent hashing pins the whole chain
  // to one shard, so every scan of it lands on the same victim.
  for (size_t v = 0; v < options.deep_chain_versions; ++v) {
    put(kDeepKey, MakePayload(kDeepKey, v, 64));
  }
  // Wide: tenants × artifacts, all sized to matter to the shared cache.
  for (size_t t = 0; t < options.tenants; ++t) {
    for (size_t k = 0; k < options.keys_per_tenant; ++k) {
      const std::string key = TenantKey(t, k);
      put(key, MakePayload(key, 0, options.payload_bytes));
    }
  }
  return report;
}

std::vector<AdversarialRequest> MakeAdversarialStream(
    const AdversarialOptions& options, size_t length) {
  std::vector<AdversarialRequest> stream;
  stream.reserve(length);
  Pcg32 rng(options.seed);
  size_t next_version = options.deep_chain_versions;
  for (size_t i = 0; i < length; ++i) {
    AdversarialRequest request;
    const uint32_t draw = rng.Below(100);
    const size_t tenant = rng.Below(static_cast<uint32_t>(
        options.tenants > 0 ? options.tenants : 1));
    const size_t object = rng.Below(static_cast<uint32_t>(
        options.keys_per_tenant > 0 ? options.keys_per_tenant : 1));
    if (draw < 60) {
      // Cache contention: every tenant rereads the shared artifact pool.
      request.kind = AdversarialRequest::Kind::kGet;
      request.key = TenantKey(tenant, object);
    } else if (draw < 75) {
      // Deep-graph pressure: full chain scan of the ~1000-version key.
      request.kind = AdversarialRequest::Kind::kVersions;
      request.key = kDeepKey;
    } else if (draw < 95) {
      // Version churn on the wide keyspace (and the occasional extra link
      // on the deep chain, keeping it growing under load).
      request.kind = AdversarialRequest::Kind::kPut;
      request.key = rng.Below(8) == 0 ? kDeepKey : TenantKey(tenant, object);
      request.payload =
          MakePayload(request.key, next_version++, options.payload_bytes);
    } else {
      // Replicated metadata commit: rides the 2PC broadcast path, so the
      // stream keeps multi-shard transactions in flight alongside the
      // single-shard traffic.
      request.kind = AdversarialRequest::Kind::kPut;
      request.key = "pipeline/adv/commits/c" + std::to_string(i);
      request.payload = MakePayload(request.key, 0, 128);
    }
    stream.push_back(std::move(request));
  }
  return stream;
}

Status ApplyAdversarialRequest(storage::StorageEngine* engine,
                               const AdversarialRequest& request) {
  switch (request.kind) {
    case AdversarialRequest::Kind::kPut:
      return engine->Put(request.key, request.payload).status();
    case AdversarialRequest::Kind::kGet:
      return engine->Get(request.key).status();
    case AdversarialRequest::Kind::kVersions:
      // Versions() has no error channel; an empty answer for the deep key
      // is a shard that could not serve, which the caller scores through
      // the surrounding typed requests.
      engine->Versions(request.key);
      return Status::Ok();
  }
  return Status::InvalidArgument("unknown adversarial request kind");
}

RaceReport RunRacingCommits(storage::StorageEngine* engine, size_t racers,
                            size_t commits_per_racer,
                            const std::function<Status()>& contended) {
  RaceReport report;
  std::atomic<uint64_t> acked{0};
  std::atomic<uint64_t> typed{0};
  std::vector<std::vector<std::string>> acked_keys(racers);
  std::vector<std::thread> threads;
  threads.reserve(racers);
  for (size_t r = 0; r < racers; ++r) {
    threads.emplace_back([&, r] {
      for (size_t c = 0; c < commits_per_racer; ++c) {
        // `pipeline/` prefix → replicated metadata → every commit is a
        // full two-phase transaction racing the contended operation.
        const std::string key = "pipeline/adv/race/r" + std::to_string(r) +
                                "/c" + std::to_string(c);
        if (engine->Put(key, "race " + key).ok()) {
          acked.fetch_add(1);
          acked_keys[r].push_back(key);
        } else {
          typed.fetch_add(1);
        }
      }
    });
  }
  Status verdict = contended();
  for (std::thread& t : threads) t.join();
  report.contended_ok = verdict.ok();
  report.contended_status = verdict.ToString();
  report.racer_acked = acked.load();
  report.racer_typed_failures = typed.load();
  // The invariant: acknowledged means durable, merge or no merge. Retry a
  // few times — under live fault injection a read can be dropped on the
  // wire; a key NO retry can see is loss.
  for (const std::vector<std::string>& keys : acked_keys) {
    for (const std::string& key : keys) {
      bool seen = false;
      for (int attempt = 0; attempt < 5 && !seen; ++attempt) {
        auto got = engine->Get(key);
        seen = got.ok() && *got == "race " + key;
      }
      if (!seen) ++report.racer_lost;
    }
  }
  return report;
}

}  // namespace mlcask::sim
