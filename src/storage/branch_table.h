#ifndef MLCASK_STORAGE_BRANCH_TABLE_H_
#define MLCASK_STORAGE_BRANCH_TABLE_H_

#include <map>
#include <string>
#include <vector>

#include "common/sha256.h"
#include "common/status.h"

namespace mlcask::storage {

/// Maps branch names to head commit ids (the Git refs equivalent; ForkBase
/// exposes the same named-branch abstraction). Kept ordered so listings are
/// deterministic.
class BranchTable {
 public:
  /// Creates a branch pointing at `head`. Fails if the name exists.
  Status Create(const std::string& name, const Hash256& head);

  /// Moves an existing branch to a new head.
  Status Move(const std::string& name, const Hash256& head);

  /// Creates the branch if needed, otherwise moves it.
  void Upsert(const std::string& name, const Hash256& head);

  StatusOr<Hash256> Head(const std::string& name) const;
  bool Exists(const std::string& name) const;

  Status Delete(const std::string& name);

  /// Branch names in lexicographic order.
  std::vector<std::string> List() const;

  size_t size() const { return heads_.size(); }

 private:
  std::map<std::string, Hash256> heads_;
};

}  // namespace mlcask::storage

#endif  // MLCASK_STORAGE_BRANCH_TABLE_H_
