#include "storage/frame.h"

#include <cstring>

namespace mlcask::storage {

namespace {

constexpr size_t kHeaderSize = 14;

void PutU64(std::string* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) out->push_back(static_cast<char>(v >> (8 * i)));
}

void PutU32(std::string* out, uint32_t v) {
  for (int i = 0; i < 4; ++i) out->push_back(static_cast<char>(v >> (8 * i)));
}

uint64_t GetU64(const char* p) {
  uint64_t v = 0;
  for (int i = 7; i >= 0; --i) {
    v = (v << 8) | static_cast<unsigned char>(p[i]);
  }
  return v;
}

uint32_t GetU32(const char* p) {
  uint32_t v = 0;
  for (int i = 3; i >= 0; --i) {
    v = (v << 8) | static_cast<unsigned char>(p[i]);
  }
  return v;
}

/// Which frame types exist at a given wire version. Chunk frames are only
/// sent on version >= 2 sessions, so on a v1 stream they are corruption, not
/// a message.
bool ValidType(uint8_t type, uint8_t version) {
  if (type == static_cast<uint8_t>(FrameType::kData) ||
      type == static_cast<uint8_t>(FrameType::kError)) {
    return true;
  }
  if (version >= kWireVersionBinary &&
      (type == static_cast<uint8_t>(FrameType::kChunk) ||
       type == static_cast<uint8_t>(FrameType::kChunkEnd))) {
    return true;
  }
  return false;
}

}  // namespace

void AppendFrameHeader(std::string* out, FrameType type, uint64_t id,
                       uint32_t payload_size, uint8_t version) {
  out->reserve(out->size() + kHeaderSize);
  out->push_back(static_cast<char>(version));
  out->push_back(static_cast<char>(type));
  PutU64(out, id);
  PutU32(out, payload_size);
}

void AppendFrame(std::string* out, FrameType type, uint64_t id,
                 std::string_view payload, uint8_t version) {
  out->reserve(out->size() + kHeaderSize + payload.size());
  AppendFrameHeader(out, type, id, static_cast<uint32_t>(payload.size()),
                    version);
  out->append(payload);
}

std::string EncodeErrorPayload(const Status& status) {
  return std::to_string(static_cast<int>(status.code())) + ":" +
         status.message();
}

Status DecodeErrorPayload(std::string_view payload) {
  size_t colon = payload.find(':');
  if (colon == std::string_view::npos) {
    return Status::Corruption("malformed transport error frame");
  }
  int code = 0;
  for (char c : payload.substr(0, colon)) {
    if (c < '0' || c > '9') {
      return Status::Corruption("malformed transport error frame code");
    }
    code = code * 10 + (c - '0');
    if (code > 255) {
      return Status::Corruption("transport error frame code out of range");
    }
  }
  if (code == 0) {
    // An error frame must carry an error; a peer claiming "ok" is confused.
    return Status::Corruption("transport error frame with ok code");
  }
  return Status(static_cast<StatusCode>(code),
                std::string(payload.substr(colon + 1)));
}

void FrameDecoder::Compact() {
  if (pos_ == 0) return;
  if (pos_ >= buffer_.size()) {
    buffer_.clear();
    pos_ = 0;
    return;
  }
  // Amortized O(1): only move the remainder once the dead prefix outweighs
  // it, so N small frames cost one move, not N.
  if (pos_ >= buffer_.size() - pos_) {
    buffer_.erase(0, pos_);
    pos_ = 0;
  }
}

StatusOr<bool> FrameDecoder::Next(Frame* out) {
  if (!fatal_.ok()) return fatal_;
  if (buffer_.size() - pos_ < kHeaderSize) return false;
  const char* h = buffer_.data() + pos_;
  const uint8_t version = static_cast<uint8_t>(h[0]);
  const uint8_t type = static_cast<uint8_t>(h[1]);
  const uint64_t id = GetU64(h + 2);
  const uint32_t length = GetU32(h + 10);
  if (length > max_payload_) {
    fatal_ = Status::Corruption(
        "oversized frame: " + std::to_string(length) + " bytes (max " +
        std::to_string(max_payload_) + ")");
    return fatal_;
  }
  if (version < kWireVersionJson || version > max_version_) {
    // Header layout is frozen, so the id is trustworthy even across
    // versions — the caller can answer the right request. Consume the frame
    // so one mismatched message doesn't wedge the whole stream, then report.
    if (buffer_.size() - pos_ < kHeaderSize + length) return false;
    out->type = FrameType::kError;
    out->id = id;
    out->version = version;
    out->payload.clear();
    pos_ += kHeaderSize + length;
    Compact();
    return Status::Unimplemented(
        "peer speaks wire-format version " + std::to_string(version) +
        ", this build speaks " + std::to_string(max_version_));
  }
  if (!ValidType(type, version)) {
    fatal_ = Status::Corruption("unknown frame type " + std::to_string(type) +
                                " at wire version " + std::to_string(version));
    return fatal_;
  }
  if (buffer_.size() - pos_ < kHeaderSize + length) return false;
  out->type = static_cast<FrameType>(type);
  out->id = id;
  out->version = version;
  out->payload.assign(buffer_, pos_ + kHeaderSize, length);
  pos_ += kHeaderSize + length;
  Compact();
  return true;
}

Status FrameDecoder::Finish() const {
  if (!fatal_.ok()) return fatal_;
  if (buffer_.size() > pos_) {
    return Status::Corruption("stream ended inside a frame (" +
                              std::to_string(buffer_.size() - pos_) +
                              " trailing bytes)");
  }
  return Status::Ok();
}

}  // namespace mlcask::storage
