#include "storage/remote_engine.h"

#include <random>
#include <utility>

#include <optional>

#include "common/json.h"
#include "common/strings.h"
#include "storage/deadline.h"
#include "storage/frame.h"
#include "storage/wire_codec.h"

namespace mlcask::storage {

namespace wire {

namespace {
constexpr char kHexDigits[] = "0123456789abcdef";

int HexNibble(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}
}  // namespace

std::string HexEncode(std::string_view bytes) {
  std::string out;
  out.reserve(bytes.size() * 2);
  for (unsigned char c : bytes) {
    out.push_back(kHexDigits[c >> 4]);
    out.push_back(kHexDigits[c & 0xf]);
  }
  return out;
}

StatusOr<std::string> HexDecode(std::string_view hex) {
  if (hex.size() % 2 != 0) {
    return Status::InvalidArgument("hex payload has odd length");
  }
  std::string out;
  out.reserve(hex.size() / 2);
  for (size_t i = 0; i < hex.size(); i += 2) {
    int hi = HexNibble(hex[i]);
    int lo = HexNibble(hex[i + 1]);
    if (hi < 0 || lo < 0) {
      return Status::InvalidArgument("malformed hex payload");
    }
    out.push_back(static_cast<char>((hi << 4) | lo));
  }
  return out;
}

}  // namespace wire

namespace {

using wire::HexDecode;
using wire::HexEncode;

Json ErrorResponse(const Status& status) {
  Json response = Json::Object();
  response.Set("ok", Json::Bool(false));
  response.Set("code", Json::Int(static_cast<int64_t>(status.code())));
  response.Set("message", Json::Str(status.message()));
  return response;
}

Json OkResponse() {
  Json response = Json::Object();
  response.Set("ok", Json::Bool(true));
  return response;
}

/// Reconstructs the Status a response encodes ({"ok":false,...} documents).
Status DecodeError(const Json& response) {
  auto code = static_cast<StatusCode>(response.GetInt("code"));
  return Status(code, response.GetString("message"));
}

Json EncodePutResult(const PutResult& result) {
  Json out = Json::Object();
  out.Set("id", Json::Str(result.id.ToHex()));
  out.Set("logical_bytes", Json::Int(static_cast<int64_t>(
                               result.logical_bytes)));
  out.Set("new_physical_bytes",
          Json::Int(static_cast<int64_t>(result.new_physical_bytes)));
  out.Set("storage_time_s", Json::Number(result.storage_time_s));
  out.Set("deduplicated", Json::Bool(result.deduplicated));
  return out;
}

StatusOr<PutResult> DecodePutResult(const Json& doc) {
  PutResult result;
  if (!Hash256::FromHex(doc.GetString("id"), &result.id)) {
    return Status::Corruption("put response carries a malformed id");
  }
  result.logical_bytes = static_cast<uint64_t>(doc.GetInt("logical_bytes"));
  result.new_physical_bytes =
      static_cast<uint64_t>(doc.GetInt("new_physical_bytes"));
  result.storage_time_s = doc.GetDouble("storage_time_s");
  result.deduplicated = doc.GetBool("deduplicated");
  return result;
}

StatusOr<Hash256> DecodeId(const Json& request) {
  Hash256 id;
  if (!Hash256::FromHex(request.GetString("id"), &id)) {
    return Status::InvalidArgument("request carries a malformed content id");
  }
  return id;
}

/// The server-side dispatch. Every arm mirrors one StorageEngine method.
Json Dispatch(StorageEngine* engine, const Json& request) {
  const std::string method = request.GetString("method");

  if (method == "put") {
    auto data = HexDecode(request.GetString("data"));
    if (!data.ok()) return ErrorResponse(data.status());
    auto result = engine->Put(request.GetString("key"), *data);
    if (!result.ok()) return ErrorResponse(result.status());
    Json response = OkResponse();
    response.Set("result", EncodePutResult(*result));
    return response;
  }

  if (method == "put_many") {
    const Json* batch_json = request.Get("batch");
    if (batch_json == nullptr || !batch_json->is_array()) {
      return ErrorResponse(
          Status::InvalidArgument("put_many request lacks a batch array"));
    }
    std::vector<PutRequest> batch;
    batch.reserve(batch_json->size());
    for (size_t i = 0; i < batch_json->size(); ++i) {
      auto data = HexDecode(batch_json->at(i).GetString("data"));
      if (!data.ok()) return ErrorResponse(data.status());
      batch.push_back({batch_json->at(i).GetString("key"), *std::move(data)});
    }
    auto results = engine->PutMany(batch);
    if (!results.ok()) return ErrorResponse(results.status());
    Json encoded = Json::Array();
    for (const PutResult& result : *results) {
      encoded.Append(EncodePutResult(result));
    }
    Json response = OkResponse();
    response.Set("results", std::move(encoded));
    return response;
  }

  if (method == "get") {
    auto data = engine->Get(request.GetString("key"));
    if (!data.ok()) return ErrorResponse(data.status());
    Json response = OkResponse();
    response.Set("data", Json::Str(HexEncode(*data)));
    return response;
  }

  if (method == "get_version") {
    auto id = DecodeId(request);
    if (!id.ok()) return ErrorResponse(id.status());
    auto data = engine->GetVersion(*id);
    if (!data.ok()) return ErrorResponse(data.status());
    Json response = OkResponse();
    response.Set("data", Json::Str(HexEncode(*data)));
    return response;
  }

  if (method == "has_version") {
    auto id = DecodeId(request);
    if (!id.ok()) return ErrorResponse(id.status());
    Json response = OkResponse();
    response.Set("has", Json::Bool(engine->HasVersion(*id)));
    return response;
  }

  if (method == "versions") {
    Json ids = Json::Array();
    for (const Hash256& id : engine->Versions(request.GetString("key"))) {
      ids.Append(Json::Str(id.ToHex()));
    }
    Json response = OkResponse();
    response.Set("ids", std::move(ids));
    return response;
  }

  if (method == "list_all_versions") {
    Json entries = Json::Array();
    for (const auto& [key, id] : engine->ListAllVersions()) {
      Json entry = Json::Object();
      entry.Set("key", Json::Str(key));
      entry.Set("id", Json::Str(id.ToHex()));
      entries.Append(std::move(entry));
    }
    Json response = OkResponse();
    response.Set("entries", std::move(entries));
    return response;
  }

  if (method == "delete_version") {
    auto id = DecodeId(request);
    if (!id.ok()) return ErrorResponse(id.status());
    auto freed = engine->DeleteVersion(*id);
    if (!freed.ok()) return ErrorResponse(freed.status());
    Json response = OkResponse();
    response.Set("freed_bytes", Json::Int(static_cast<int64_t>(*freed)));
    return response;
  }

  if (method == "stats") {
    EngineStats stats = engine->stats();
    Json response = OkResponse();
    response.Set("logical_bytes",
                 Json::Int(static_cast<int64_t>(stats.logical_bytes)));
    response.Set("physical_bytes",
                 Json::Int(static_cast<int64_t>(stats.physical_bytes)));
    response.Set("storage_time_s", Json::Number(stats.storage_time_s));
    response.Set("puts", Json::Int(static_cast<int64_t>(stats.puts)));
    response.Set("gets", Json::Int(static_cast<int64_t>(stats.gets)));
    return response;
  }

  if (method == "name") {
    Json response = OkResponse();
    response.Set("name", Json::Str(engine->Name()));
    return response;
  }

  if (method == "read_cost") {
    Json response = OkResponse();
    response.Set("cost_s", Json::Number(engine->ReadCost(static_cast<uint64_t>(
                               request.GetInt("bytes")))));
    return response;
  }

  return ErrorResponse(
      Status::Unimplemented("unknown storage method '" + method + "'"));
}

}  // namespace

bool StorageEngineService::LookupReplayOrClaim(const std::string& token,
                                               std::string* response) {
  std::unique_lock<std::mutex> lock(ledger_mu_);
  for (;;) {
    auto it = ledger_.find(token);
    if (it == ledger_.end()) {
      ledger_.emplace(token, LedgerEntry{});  // claimed: we execute it
      return false;
    }
    if (it->second.ready) {
      *response = it->second.response;
      replay_hits_ += 1;
      return true;
    }
    // The original execution is still in flight on another worker (the
    // client redialed fast enough to race its own request). Wait for the
    // recorded response instead of racing a second execution into the
    // engine. Handle() always resolves every claim after dispatch — by
    // recording the response, or by RELEASING the claim when the request
    // was load-shed (ResourceExhausted) — so this wait always wakes; after
    // a release the find() misses and this caller re-claims.
    ledger_cv_.wait(lock);
  }
}

void StorageEngineService::RecordReplay(const std::string& token,
                                        const std::string& response) {
  {
    std::lock_guard<std::mutex> lock(ledger_mu_);
    LedgerEntry& entry = ledger_[token];
    if (!entry.ready) {
      entry.ready = true;
      entry.response = response;
      // Only RECORDED entries enter the eviction queue, so an in-flight
      // claim can never be evicted out from under its waiters.
      ledger_order_.push_back(token);
      while (ledger_order_.size() > kLedgerCap) {
        ledger_.erase(ledger_order_.front());
        ledger_order_.pop_front();
      }
    }
  }
  ledger_cv_.notify_all();
}

void StorageEngineService::ReleaseClaim(const std::string& token) {
  {
    std::lock_guard<std::mutex> lock(ledger_mu_);
    auto it = ledger_.find(token);
    // Only an UNRESOLVED claim is released; a recorded entry stays — it is
    // a real answer replays may legitimately need.
    if (it != ledger_.end() && !it->second.ready) ledger_.erase(it);
  }
  ledger_cv_.notify_all();
}

std::string StorageEngineService::Handle(std::string_view request) {
  // One-byte codec sniff: the binary magic is never '{', so a service can
  // serve new-codec and JSON-era callers on the same endpoint — no frames
  // needed for loopback deployments to get the fast path.
  if (wire::IsBinaryMessage(request)) {
    const std::string token(wire::ExtractReplayToken(request));
    std::string replayed;
    if (!token.empty() && LookupReplayOrClaim(token, &replayed)) {
      return replayed;
    }
    std::string response;
    {
      // Re-anchor the caller's stamped remaining budget as this side's
      // ambient deadline: any fan-out the engine performs while serving
      // this request (a sharded router behind the service) stamps ITS
      // downstream calls from what is left — end-to-end propagation.
      const uint64_t deadline_ms = wire::ExtractDeadline(request);
      std::optional<DeadlineBudget> budget;
      std::optional<DeadlineScope> scope;
      if (deadline_ms > 0) {
        budget.emplace(deadline_ms);
        scope.emplace(&*budget);
      }
      response = wire::DispatchBinary(engine_, request);
    }
    if (!token.empty()) {
      // A load-shed answer must not occupy the token's slot: release the
      // claim so the client's retry re-executes (and any duplicate blocked
      // on the claim re-claims) instead of replaying "overloaded" forever.
      const bool shed =
          response.size() >= 2 &&
          static_cast<uint8_t>(response[1]) ==
              static_cast<uint8_t>(StatusCode::kResourceExhausted);
      if (shed) {
        ReleaseClaim(token);
      } else {
        RecordReplay(token, response);
      }
    }
    return response;
  }
  auto parsed = Json::Parse(request);
  if (!parsed.ok()) {
    return ErrorResponse(
               Status::InvalidArgument("unparseable storage request: " +
                                       parsed.status().message()))
        .Dump();
  }
  const std::string token = parsed->GetString("replay_token");
  std::string replayed;
  if (!token.empty() && LookupReplayOrClaim(token, &replayed)) return replayed;
  Json response_json = Json::Object();
  {
    const int64_t stamped = parsed->GetInt("deadline_ms");
    const uint64_t deadline_ms =
        stamped > 0 ? static_cast<uint64_t>(stamped) : 0;
    std::optional<DeadlineBudget> budget;
    std::optional<DeadlineScope> scope;
    if (deadline_ms > 0) {
      budget.emplace(deadline_ms);
      scope.emplace(&*budget);
    }
    response_json = Dispatch(engine_, *parsed);
  }
  std::string response = response_json.Dump();
  if (!token.empty()) {
    const bool shed =
        !response_json.GetBool("ok") &&
        static_cast<StatusCode>(response_json.GetInt("code")) ==
            StatusCode::kResourceExhausted;
    if (shed) {
      ReleaseClaim(token);
    } else {
      RecordReplay(token, response);
    }
  }
  return response;
}

// --------------------------------------------------------------- client ---

RemoteStorageEngine::RemoteStorageEngine(std::unique_ptr<Transport> transport,
                                         WireCodec codec)
    : transport_(std::move(transport)), binary_(codec != WireCodec::kJson) {
  name_ = "remote";
  // Random per-proxy session id: replay tokens from two proxies (e.g. a
  // restarted router) can never collide in a server's dedup ledger.
  std::random_device rd;
  replay_session_ = StrFormat("%08x%08x", rd(), rd());
  if (binary_) {
    // The name hello doubles as the codec probe: a binary-era peer answers
    // it, a JSON-era one rejects the unknown wire version / magic with
    // Unimplemented. kAuto treats that one status as "old peer" and drops
    // the SESSION to JSON — including the transport's frame version, so
    // framing and codec downgrade together. Any other failure (peer down,
    // timeout) is not evidence about the codec: stay binary.
    auto response =
        RoundTrip(wire::EncodePlainRequest(wire::Method::kName));
    if (response.ok()) {
      auto peer = wire::DecodeDataResponse(*response);
      if (peer.ok()) {
        name_ = "remote(" + std::string(*peer) + ")";
        return;
      }
      // A JSON document in reply to a binary hello is an old service
      // reached over a frameless transport (loopback): same skew, answered
      // at the codec layer instead of the frame layer.
      const bool old_peer =
          peer.status().code() == StatusCode::kUnimplemented ||
          (!response->empty() && (*response)[0] == '{');
      if (codec != WireCodec::kAuto || !old_peer) return;
    } else if (codec != WireCodec::kAuto ||
               response.status().code() != StatusCode::kUnimplemented) {
      return;
    }
    binary_ = false;
    transport_->set_wire_version(kWireVersionJson);
  }
  Json request = Json::Object();
  request.Set("method", Json::Str("name"));
  auto response = RoundTrip(request.Dump());
  if (response.ok()) {
    auto doc = Json::Parse(*response);
    if (doc.ok() && doc->GetBool("ok")) {
      name_ = "remote(" + doc->GetString("name") + ")";
    }
  }
}

StatusOr<std::string> RemoteStorageEngine::RoundTrip(
    std::string_view request) const {
  return transport_->Call(request);
}

std::string RemoteStorageEngine::NextReplayToken() {
  return replay_session_ + "." +
         std::to_string(replay_seq_.fetch_add(1, std::memory_order_relaxed));
}

namespace {

/// Raw serialized response -> parsed JSON document (or the remote Status).
/// Shared by the blocking call path and every Deferred decoder.
StatusOr<Json> DecodeResponse(StatusOr<std::string> response) {
  if (!response.ok()) return response.status();
  auto doc = Json::Parse(*response);
  if (!doc.ok()) {
    return Status::Corruption("unparseable storage response: " +
                              doc.status().message());
  }
  if (!doc->GetBool("ok")) return DecodeError(*doc);
  return *std::move(doc);
}

/// One blocking call: serialize, send, parse, surface the remote Status.
StatusOr<Json> CallMethod(const Transport* transport, Json request) {
  // Transports are shared mutable endpoints; Call is non-const by design
  // (it counts traffic), while the engine methods using it may be const.
  return DecodeResponse(
      const_cast<Transport*>(transport)->Call(request.Dump()));
}

StatusOr<PutResult> DecodePutResponse(StatusOr<std::string> raw) {
  MLCASK_ASSIGN_OR_RETURN(Json response, DecodeResponse(std::move(raw)));
  const Json* result = response.Get("result");
  if (result == nullptr) {
    return Status::Corruption("put response lacks a result");
  }
  return DecodePutResult(*result);
}

StatusOr<std::vector<PutResult>> DecodePutManyResponse(
    StatusOr<std::string> raw, size_t expected) {
  MLCASK_ASSIGN_OR_RETURN(Json response, DecodeResponse(std::move(raw)));
  const Json* results = response.Get("results");
  if (results == nullptr || !results->is_array() ||
      results->size() != expected) {
    return Status::Corruption("put_many response result count mismatch");
  }
  std::vector<PutResult> decoded;
  decoded.reserve(results->size());
  for (size_t i = 0; i < results->size(); ++i) {
    MLCASK_ASSIGN_OR_RETURN(PutResult result, DecodePutResult(results->at(i)));
    decoded.push_back(result);
  }
  return decoded;
}

StatusOr<std::string> DecodeDataResponse(StatusOr<std::string> raw) {
  MLCASK_ASSIGN_OR_RETURN(Json response, DecodeResponse(std::move(raw)));
  return HexDecode(response.GetString("data"));
}

StatusOr<bool> DecodeHasResponse(StatusOr<std::string> raw) {
  MLCASK_ASSIGN_OR_RETURN(Json response, DecodeResponse(std::move(raw)));
  return response.GetBool("has");
}

StatusOr<uint64_t> DecodeFreedResponse(StatusOr<std::string> raw) {
  MLCASK_ASSIGN_OR_RETURN(Json response, DecodeResponse(std::move(raw)));
  return static_cast<uint64_t>(response.GetInt("freed_bytes"));
}

/// JSON-codec twin of the binary encoders' ambient stamp: the caller's
/// remaining budget rides as "deadline_ms". Old servers ignore the unknown
/// member, same compatibility story as the skipped binary tag.
void StampJsonDeadline(Json* request) {
  const uint64_t remaining = DeadlineScope::CurrentRemainingMs();
  if (remaining > 0) {
    request->Set("deadline_ms", Json::Int(static_cast<int64_t>(remaining)));
  }
}

Json PutRequestJson(const std::string& key, std::string_view data,
                    const std::string& replay_token = std::string()) {
  Json request = Json::Object();
  request.Set("method", Json::Str("put"));
  request.Set("key", Json::Str(key));
  request.Set("data", Json::Str(HexEncode(data)));
  if (!replay_token.empty()) {
    request.Set("replay_token", Json::Str(replay_token));
  }
  StampJsonDeadline(&request);
  return request;
}

Json PutManyRequestJson(const std::vector<PutRequest>& batch,
                        const std::string& replay_token = std::string()) {
  Json encoded = Json::Array();
  for (const PutRequest& put : batch) {
    Json entry = Json::Object();
    entry.Set("key", Json::Str(put.key));
    entry.Set("data", Json::Str(HexEncode(put.data)));
    encoded.Append(std::move(entry));
  }
  Json request = Json::Object();
  request.Set("method", Json::Str("put_many"));
  request.Set("batch", std::move(encoded));
  if (!replay_token.empty()) {
    request.Set("replay_token", Json::Str(replay_token));
  }
  StampJsonDeadline(&request);
  return request;
}

Json IdRequestJson(const char* method, const Hash256& id,
                   const std::string& replay_token = std::string()) {
  Json request = Json::Object();
  request.Set("method", Json::Str(method));
  request.Set("id", Json::Str(id.ToHex()));
  if (!replay_token.empty()) {
    request.Set("replay_token", Json::Str(replay_token));
  }
  StampJsonDeadline(&request);
  return request;
}

// Binary-codec adapters: raw transport result -> typed value. Same shapes
// as the JSON decoders above so the blocking methods and Deferred wrappers
// stay symmetrical across codecs.

StatusOr<PutResult> DecodeBinaryPut(StatusOr<std::string> raw) {
  if (!raw.ok()) return raw.status();
  return wire::DecodePutResponse(*raw);
}

StatusOr<std::string> DecodeBinaryData(StatusOr<std::string> raw) {
  if (!raw.ok()) return raw.status();
  MLCASK_ASSIGN_OR_RETURN(std::string_view data,
                          wire::DecodeDataResponse(*raw));
  return std::string(data);
}

StatusOr<bool> DecodeBinaryHas(StatusOr<std::string> raw) {
  if (!raw.ok()) return raw.status();
  return wire::DecodeHasResponse(*raw);
}

StatusOr<uint64_t> DecodeBinaryFreed(StatusOr<std::string> raw) {
  if (!raw.ok()) return raw.status();
  return wire::DecodeFreedResponse(*raw);
}

StatusOr<MigrateBatchResult> DecodeBinaryMigrate(StatusOr<std::string> raw) {
  if (!raw.ok()) return raw.status();
  return wire::DecodeMigrateResponse(*raw);
}

}  // namespace

StatusOr<PutResult> RemoteStorageEngine::Put(const std::string& key,
                                             std::string_view data) {
  const std::string token = NextReplayToken();
  if (binary_) {
    return DecodeBinaryPut(
        transport_->Call(wire::EncodePutRequest(key, data, token)));
  }
  return DecodePutResponse(
      transport_->Call(PutRequestJson(key, data, token).Dump()));
}

Deferred<PutResult> RemoteStorageEngine::AsyncPut(const std::string& key,
                                                  std::string_view data) {
  const std::string token = NextReplayToken();
  if (binary_) {
    return Deferred<PutResult>(
        transport_->AsyncCall(wire::EncodePutRequest(key, data, token)),
        DecodeBinaryPut, transport_->call_timeout_ms());
  }
  return Deferred<PutResult>(
      transport_->AsyncCall(PutRequestJson(key, data, token).Dump()),
      DecodePutResponse, transport_->call_timeout_ms());
}

StatusOr<std::vector<PutResult>> RemoteStorageEngine::PutMany(
    const std::vector<PutRequest>& batch) {
  const std::string token = NextReplayToken();
  if (binary_) {
    auto raw = transport_->Call(wire::EncodePutManyRequest(batch, token));
    if (!raw.ok()) return raw.status();
    return wire::DecodePutManyResponse(*raw, batch.size());
  }
  return DecodePutManyResponse(
      transport_->Call(PutManyRequestJson(batch, token).Dump()), batch.size());
}

Deferred<std::vector<PutResult>> RemoteStorageEngine::AsyncPutMany(
    const std::vector<PutRequest>& batch) {
  const size_t expected = batch.size();
  const std::string token = NextReplayToken();
  if (binary_) {
    return Deferred<std::vector<PutResult>>(
        transport_->AsyncCall(wire::EncodePutManyRequest(batch, token)),
        [expected](StatusOr<std::string> raw)
            -> StatusOr<std::vector<PutResult>> {
          if (!raw.ok()) return raw.status();
          return wire::DecodePutManyResponse(*raw, expected);
        },
        transport_->call_timeout_ms());
  }
  return Deferred<std::vector<PutResult>>(
      transport_->AsyncCall(PutManyRequestJson(batch, token).Dump()),
      [expected](StatusOr<std::string> raw) {
        return DecodePutManyResponse(std::move(raw), expected);
      },
      transport_->call_timeout_ms());
}

StatusOr<std::string> RemoteStorageEngine::Get(const std::string& key) {
  if (binary_) {
    return DecodeBinaryData(
        transport_->Call(wire::EncodeKeyRequest(wire::Method::kGet, key)));
  }
  Json request = Json::Object();
  request.Set("method", Json::Str("get"));
  request.Set("key", Json::Str(key));
  StampJsonDeadline(&request);
  return DecodeDataResponse(transport_->Call(request.Dump()));
}

StatusOr<std::string> RemoteStorageEngine::GetVersion(const Hash256& id) {
  if (binary_) {
    return DecodeBinaryData(transport_->Call(
        wire::EncodeIdRequest(wire::Method::kGetVersion, id)));
  }
  return DecodeDataResponse(
      transport_->Call(IdRequestJson("get_version", id).Dump()));
}

Deferred<std::string> RemoteStorageEngine::AsyncGetVersion(const Hash256& id) {
  if (binary_) {
    return Deferred<std::string>(
        transport_->AsyncCall(
            wire::EncodeIdRequest(wire::Method::kGetVersion, id)),
        DecodeBinaryData, transport_->call_timeout_ms());
  }
  return Deferred<std::string>(
      transport_->AsyncCall(IdRequestJson("get_version", id).Dump()),
      DecodeDataResponse, transport_->call_timeout_ms());
}

bool RemoteStorageEngine::HasVersion(const Hash256& id) const {
  auto* transport = const_cast<Transport*>(transport_.get());
  auto response =
      binary_
          ? DecodeBinaryHas(transport->Call(
                wire::EncodeIdRequest(wire::Method::kHasVersion, id)))
          : DecodeHasResponse(
                transport->Call(IdRequestJson("has_version", id).Dump()));
  return response.ok() && *response;
}

Deferred<bool> RemoteStorageEngine::AsyncHasVersion(const Hash256& id) const {
  auto* transport = const_cast<Transport*>(transport_.get());
  if (binary_) {
    return Deferred<bool>(
        transport->AsyncCall(
            wire::EncodeIdRequest(wire::Method::kHasVersion, id)),
        DecodeBinaryHas, transport_->call_timeout_ms());
  }
  return Deferred<bool>(
      transport->AsyncCall(IdRequestJson("has_version", id).Dump()),
      DecodeHasResponse, transport_->call_timeout_ms());
}

std::vector<Hash256> RemoteStorageEngine::Versions(
    const std::string& key) const {
  std::vector<Hash256> ids;
  if (binary_) {
    auto raw = const_cast<Transport*>(transport_.get())
                   ->Call(wire::EncodeKeyRequest(wire::Method::kVersions, key));
    if (!raw.ok()) return ids;
    auto decoded = wire::DecodeVersionsResponse(*raw);
    return decoded.ok() ? *std::move(decoded) : ids;
  }
  Json request = Json::Object();
  request.Set("method", Json::Str("versions"));
  request.Set("key", Json::Str(key));
  StampJsonDeadline(&request);
  auto response = CallMethod(transport_.get(), std::move(request));
  if (!response.ok()) return ids;
  const Json* encoded = response->Get("ids");
  if (encoded == nullptr || !encoded->is_array()) return ids;
  ids.reserve(encoded->size());
  for (size_t i = 0; i < encoded->size(); ++i) {
    Hash256 id;
    if (Hash256::FromHex(encoded->at(i).AsString(), &id)) ids.push_back(id);
  }
  return ids;
}

std::vector<std::pair<std::string, Hash256>>
RemoteStorageEngine::ListAllVersions() const {
  std::vector<std::pair<std::string, Hash256>> entries;
  if (binary_) {
    auto raw =
        const_cast<Transport*>(transport_.get())
            ->Call(wire::EncodePlainRequest(wire::Method::kListAllVersions));
    if (!raw.ok()) return entries;
    auto decoded = wire::DecodeEntriesResponse(*raw);
    return decoded.ok() ? *std::move(decoded) : entries;
  }
  Json request = Json::Object();
  request.Set("method", Json::Str("list_all_versions"));
  auto response = CallMethod(transport_.get(), std::move(request));
  if (!response.ok()) return entries;
  const Json* encoded = response->Get("entries");
  if (encoded == nullptr || !encoded->is_array()) return entries;
  entries.reserve(encoded->size());
  for (size_t i = 0; i < encoded->size(); ++i) {
    Hash256 id;
    if (Hash256::FromHex(encoded->at(i).GetString("id"), &id)) {
      entries.emplace_back(encoded->at(i).GetString("key"), id);
    }
  }
  return entries;
}

StatusOr<uint64_t> RemoteStorageEngine::DeleteVersion(const Hash256& id) {
  const std::string token = NextReplayToken();
  if (binary_) {
    return DecodeBinaryFreed(transport_->Call(
        wire::EncodeIdRequest(wire::Method::kDeleteVersion, id, token)));
  }
  return DecodeFreedResponse(
      transport_->Call(IdRequestJson("delete_version", id, token).Dump()));
}

Deferred<uint64_t> RemoteStorageEngine::AsyncDeleteVersion(const Hash256& id) {
  const std::string token = NextReplayToken();
  if (binary_) {
    return Deferred<uint64_t>(
        transport_->AsyncCall(
            wire::EncodeIdRequest(wire::Method::kDeleteVersion, id, token)),
        DecodeBinaryFreed, transport_->call_timeout_ms());
  }
  return Deferred<uint64_t>(
      transport_->AsyncCall(IdRequestJson("delete_version", id, token).Dump()),
      DecodeFreedResponse, transport_->call_timeout_ms());
}

StatusOr<MigrateBatchResult> RemoteStorageEngine::MigrateBatch(
    const std::vector<MigrateKeyVersions>& batch) {
  if (binary_) {
    return DecodeBinaryMigrate(transport_->Call(
        wire::EncodeMigrateBatchRequest(batch, NextReplayToken())));
  }
  // JSON-era peer: no migrate_batch method on the wire. The base default
  // reaches the same end state through this proxy's per-call surface
  // (Versions / Put round trips), so old servers can still be rebalanced.
  return StorageEngine::MigrateBatch(batch);
}

Deferred<MigrateBatchResult> RemoteStorageEngine::AsyncMigrateBatch(
    const std::vector<MigrateKeyVersions>& batch) {
  if (binary_) {
    return Deferred<MigrateBatchResult>(
        transport_->AsyncCall(
            wire::EncodeMigrateBatchRequest(batch, NextReplayToken())),
        DecodeBinaryMigrate, transport_->call_timeout_ms());
  }
  return Deferred<MigrateBatchResult>(StorageEngine::MigrateBatch(batch));
}

EngineStats RemoteStorageEngine::stats() const {
  EngineStats stats;
  if (binary_) {
    auto raw = const_cast<Transport*>(transport_.get())
                   ->Call(wire::EncodePlainRequest(wire::Method::kStats));
    if (!raw.ok()) return stats;
    auto decoded = wire::DecodeStatsResponse(*raw);
    return decoded.ok() ? *decoded : stats;
  }
  Json request = Json::Object();
  request.Set("method", Json::Str("stats"));
  auto response = CallMethod(transport_.get(), std::move(request));
  if (!response.ok()) return stats;
  stats.logical_bytes =
      static_cast<uint64_t>(response->GetInt("logical_bytes"));
  stats.physical_bytes =
      static_cast<uint64_t>(response->GetInt("physical_bytes"));
  stats.storage_time_s = response->GetDouble("storage_time_s");
  stats.puts = static_cast<uint64_t>(response->GetInt("puts"));
  stats.gets = static_cast<uint64_t>(response->GetInt("gets"));
  return stats;
}

double RemoteStorageEngine::ReadCost(uint64_t bytes) const {
  if (binary_) {
    auto raw = const_cast<Transport*>(transport_.get())
                   ->Call(wire::EncodeReadCostRequest(bytes));
    if (!raw.ok()) return 0.0;
    auto decoded = wire::DecodeCostResponse(*raw);
    return decoded.ok() ? *decoded : 0.0;
  }
  Json request = Json::Object();
  request.Set("method", Json::Str("read_cost"));
  request.Set("bytes", Json::Int(static_cast<int64_t>(bytes)));
  auto response = CallMethod(transport_.get(), std::move(request));
  return response.ok() ? response->GetDouble("cost_s") : 0.0;
}

}  // namespace mlcask::storage
