#ifndef MLCASK_STORAGE_PERSISTENCE_H_
#define MLCASK_STORAGE_PERSISTENCE_H_

#include <memory>
#include <string>

#include "common/status.h"
#include "storage/forkbase_engine.h"

namespace mlcask::storage {

/// Durable checkpoint/restore for the ForkBase engine.
///
/// On-disk layout under `dir`:
///   manifest.json               — version index (key -> version ids), blob
///                                 handles, per-chunk refcounts, engine stats
///   chunks/<hh>/<hash>.chunk    — one file per distinct chunk; the payload
///                                 is the raw chunk bytes prefixed with a
///                                 one-byte type tag, fanned out by the
///                                 first hex byte of the address
///
/// The manifest is written to a temporary file and atomically renamed, so a
/// crash mid-save leaves the previous checkpoint intact. Chunk files are
/// content-addressed and immutable, so re-saving an engine only writes
/// chunks that are new since the last checkpoint (incremental backups for
/// free — the same de-duplication argument as the in-memory store).
Status SaveEngine(const ForkBaseEngine& engine, const std::string& dir);

/// Loads a checkpoint into a fresh engine (with the given time model).
/// Verifies every chunk against its content address and fails with
/// Corruption on any mismatch or missing file.
StatusOr<std::unique_ptr<ForkBaseEngine>> LoadEngine(
    const std::string& dir,
    StorageTimeModel time_model = {.per_put_latency_s = 0.1,
                                   .write_mb_per_s = 150.0,
                                   .read_mb_per_s = 300.0,
                                   .chunking_s_per_mb = 0.002});

}  // namespace mlcask::storage

#endif  // MLCASK_STORAGE_PERSISTENCE_H_
