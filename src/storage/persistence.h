#ifndef MLCASK_STORAGE_PERSISTENCE_H_
#define MLCASK_STORAGE_PERSISTENCE_H_

#include <memory>
#include <string>

#include "common/status.h"
#include "storage/forkbase_engine.h"

namespace mlcask::storage {

/// Durable checkpoint/restore for the ForkBase engine.
///
/// On-disk layout under `dir`:
///   manifest.json               — version index (key -> version ids), blob
///                                 handles, per-chunk refcounts, engine stats
///   chunks/<hh>/<hash>.chunk    — one file per distinct chunk; the payload
///                                 is the raw chunk bytes prefixed with a
///                                 one-byte type tag, fanned out by the
///                                 first hex byte of the address
///
/// The manifest is written to a temporary file and atomically renamed, so a
/// crash mid-save leaves the previous checkpoint intact. Chunk files are
/// content-addressed and immutable, so re-saving an engine only writes
/// chunks that are new since the last checkpoint (incremental backups for
/// free — the same de-duplication argument as the in-memory store).
Status SaveEngine(const ForkBaseEngine& engine, const std::string& dir);

/// Loads a checkpoint into a fresh engine (with the given time model).
/// Verifies every chunk against its content address and fails with
/// Corruption on any mismatch or missing file.
StatusOr<std::unique_ptr<ForkBaseEngine>> LoadEngine(
    const std::string& dir,
    StorageTimeModel time_model = {.per_put_latency_s = 0.1,
                                   .write_mb_per_s = 150.0,
                                   .read_mb_per_s = 300.0,
                                   .chunking_s_per_mb = 0.002});

/// A ForkBaseEngine that survives its process: every mutation is followed
/// by a checkpoint of the whole engine into `dir` before the call returns,
/// and Open() restores the latest checkpoint when one exists. Checkpoints
/// are atomic (manifest written via rename, see SaveEngine) and
/// incremental (content-addressed chunk files are immutable), so the
/// per-mutation cost is one manifest rewrite plus only the bytes the
/// mutation actually added.
///
/// This is the durability backing the chaos drills: a SIGKILLed shard
/// restarted on the same dir comes back with every ACKNOWLEDGED write —
/// including staged `__2pc__/` intents and the coordinator's commit
/// decision, which is exactly what router-level recovery
/// (ShardedStorageEngine::RecoverTwoPhase) replays or fences. A mutation
/// whose checkpoint fails returns the checkpoint error: an un-persisted
/// write is never acknowledged.
class DurableForkBaseEngine : public StorageEngine {
 public:
  /// Creates `dir` if needed; loads the checkpoint inside it if present,
  /// otherwise starts empty.
  static StatusOr<std::unique_ptr<DurableForkBaseEngine>> Open(
      const std::string& dir);

  StatusOr<PutResult> Put(const std::string& key,
                          std::string_view data) override;
  StatusOr<std::vector<PutResult>> PutMany(
      const std::vector<PutRequest>& batch) override;
  StatusOr<std::string> Get(const std::string& key) override;
  StatusOr<std::string> GetVersion(const Hash256& id) override;
  bool HasVersion(const Hash256& id) const override;
  std::vector<Hash256> Versions(const std::string& key) const override;
  std::vector<std::pair<std::string, Hash256>> ListAllVersions()
      const override;
  StatusOr<uint64_t> DeleteVersion(const Hash256& id) override;
  /// One checkpoint per BATCH, not per version: a rebalance replaying
  /// thousands of versions would otherwise rewrite the manifest for each.
  /// A crash mid-batch loses only unacknowledged applies, which the
  /// migration driver replays idempotently from its durable cursor.
  StatusOr<MigrateBatchResult> MigrateBatch(
      const std::vector<MigrateKeyVersions>& batch) override;
  EngineStats stats() const override;
  std::string Name() const override;
  double ReadCost(uint64_t bytes) const override;
  // The Async* defaults (inline execution) inherit the inner engine's
  // semantics exactly: ForkBase has no wire to overlap.

  const std::string& dir() const { return dir_; }

 private:
  DurableForkBaseEngine(std::unique_ptr<ForkBaseEngine> inner,
                        std::string dir)
      : inner_(std::move(inner)), dir_(std::move(dir)) {}

  std::unique_ptr<ForkBaseEngine> inner_;
  std::string dir_;
};

}  // namespace mlcask::storage

#endif  // MLCASK_STORAGE_PERSISTENCE_H_
