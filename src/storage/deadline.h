#ifndef MLCASK_STORAGE_DEADLINE_H_
#define MLCASK_STORAGE_DEADLINE_H_

#include <chrono>
#include <cstdint>
#include <mutex>
#include <string_view>

#include "common/status.h"

namespace mlcask::storage {

/// The remaining time budget of one in-flight request, shared by every hop
/// the request fans out into. A budget shrinks two ways:
///
///   * real elapsed time since construction (wall-clock truth), and
///   * explicit accounting charges (Charge), one per completed round-trip
///     phase of a fan-out.
///
/// remaining_ms() is total − max(elapsed, accounted), so the budget a hop
/// stamps on its downstream calls STRICTLY decreases across phases even in
/// a test that completes faster than the clock ticks — the deadline-shrink
/// invariant is proven by accounting, not timing, exactly like the
/// fan-out-overlap proof in TwoPhaseStats::max_inflight_round_trips.
class DeadlineBudget {
 public:
  explicit DeadlineBudget(uint64_t total_ms)
      : total_ms_(total_ms),
        start_(std::chrono::steady_clock::now()) {}

  uint64_t total_ms() const { return total_ms_; }

  /// Milliseconds left: total − max(real elapsed, accounted); 0 = expired.
  uint64_t remaining_ms() const;
  bool expired() const { return remaining_ms() == 0; }

  /// Folds the real elapsed time observed so far into the accounted total,
  /// then adds `ms` on top. After a Charge, remaining_ms() is strictly
  /// below every value it returned before the Charge (until exhaustion).
  void Charge(uint64_t ms);

 private:
  uint64_t elapsed_ms() const;

  const uint64_t total_ms_;
  const std::chrono::steady_clock::time_point start_;
  mutable std::mutex mu_;
  uint64_t accounted_ms_ = 0;
};

/// RAII ambient budget: installs `budget` as the calling thread's current
/// deadline for the scope's lifetime (nesting restores the previous one).
/// The request encoders read the ambient budget to stamp outgoing calls,
/// and the sharded router charges it between fan-out phases — so deadline
/// propagation needs no signature changes anywhere in between.
class DeadlineScope {
 public:
  explicit DeadlineScope(DeadlineBudget* budget);
  ~DeadlineScope();
  DeadlineScope(const DeadlineScope&) = delete;
  DeadlineScope& operator=(const DeadlineScope&) = delete;

  /// The innermost budget installed on this thread; nullptr when none.
  static DeadlineBudget* Current();
  /// Remaining ms of the ambient budget; 0 when none installed (or spent).
  static uint64_t CurrentRemainingMs();
  /// Charges the ambient budget, if one is installed.
  static void ChargeCurrent(uint64_t ms);
  /// Ok, or a typed DeadlineExceeded naming `what` when the ambient budget
  /// is installed and spent. Fan-outs call this before issuing a phase so
  /// an already-dead request never burns more round trips.
  static Status CheckCurrent(const char* what);

 private:
  DeadlineBudget* prev_;
};

/// Cheap deadline peek at a serialized storage request: the binary codec's
/// deadline meta tag, or the JSON fallback's "deadline_ms" field. Returns 0
/// when absent (no deadline). Transports record this stamp into their stats
/// (TransportStats::hop_budgets_ms) — the observable ledger the
/// deadline-shrink tests assert on — and servers use it to drop
/// queue-expired jobs before they execute.
uint64_t PeekRequestDeadlineMs(std::string_view request);

}  // namespace mlcask::storage

#endif  // MLCASK_STORAGE_DEADLINE_H_
