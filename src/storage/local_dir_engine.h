#ifndef MLCASK_STORAGE_LOCAL_DIR_ENGINE_H_
#define MLCASK_STORAGE_LOCAL_DIR_ENGINE_H_

#include <mutex>
#include <shared_mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "storage/storage_engine.h"

namespace mlcask::storage {

/// Folder-archival storage as used by the baselines (ModelDB/MLflow in the
/// paper "archive different versions of libraries and intermediate results
/// into separate folders"): every version of every object is retained as a
/// full copy, so physical bytes always equal logical bytes. Writes are
/// near-instant (local directory), which matches Fig. 6's storage-time
/// observation.
class LocalDirEngine : public StorageEngine {
 public:
  explicit LocalDirEngine(
      StorageTimeModel time_model = {.per_put_latency_s = 0.01,
                                     .write_mb_per_s = 1000.0,
                                     .read_mb_per_s = 2000.0,
                                     .chunking_s_per_mb = 0.0});

  StatusOr<PutResult> Put(const std::string& key,
                          std::string_view data) override;
  StatusOr<std::string> Get(const std::string& key) override;
  StatusOr<std::string> GetVersion(const Hash256& id) override;
  bool HasVersion(const Hash256& id) const override;
  std::vector<Hash256> Versions(const std::string& key) const override;
  std::vector<std::pair<std::string, Hash256>> ListAllVersions() const override;
  StatusOr<uint64_t> DeleteVersion(const Hash256& id) override;

  EngineStats stats() const override {
    std::lock_guard<std::mutex> lock(stats_mu_);
    return stats_;
  }
  std::string Name() const override { return "local-dir"; }
  double ReadCost(uint64_t bytes) const override {
    return time_model_.ReadSeconds(bytes);
  }

 private:
  StorageTimeModel time_model_;
  // `mu_` guards the object/version maps; `stats_mu_` guards the counters
  // (see StorageEngine's thread-safety contract).
  mutable std::shared_mutex mu_;
  mutable std::mutex stats_mu_;
  std::unordered_map<Hash256, std::string, Hash256Hasher> objects_;
  std::unordered_map<std::string, std::vector<Hash256>> keys_;
  EngineStats stats_;
};

}  // namespace mlcask::storage

#endif  // MLCASK_STORAGE_LOCAL_DIR_ENGINE_H_
