#include "storage/persistence.h"

#include <filesystem>
#include <fstream>
#include <sstream>

#include "common/json.h"

namespace mlcask::storage {

namespace fs = std::filesystem;

namespace {

std::string ChunkPath(const std::string& dir, const Hash256& hash) {
  std::string hex = hash.ToHex();
  return dir + "/chunks/" + hex.substr(0, 2) + "/" + hex + ".chunk";
}

Status WriteFileAtomic(const std::string& path, const std::string& contents) {
  std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) {
      return Status::Internal("cannot open '" + tmp + "' for writing");
    }
    out.write(contents.data(),
              static_cast<std::streamsize>(contents.size()));
    if (!out) {
      return Status::Internal("short write to '" + tmp + "'");
    }
  }
  std::error_code ec;
  fs::rename(tmp, path, ec);
  if (ec) {
    return Status::Internal("rename '" + tmp + "' failed: " + ec.message());
  }
  return Status::Ok();
}

StatusOr<std::string> ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Status::NotFound("cannot open '" + path + "'");
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

Json StatsToJson(const EngineStats& s) {
  Json j = Json::Object();
  j.Set("logical_bytes", Json::Int(static_cast<int64_t>(s.logical_bytes)));
  j.Set("physical_bytes", Json::Int(static_cast<int64_t>(s.physical_bytes)));
  j.Set("storage_time_s", Json::Number(s.storage_time_s));
  j.Set("puts", Json::Int(static_cast<int64_t>(s.puts)));
  j.Set("gets", Json::Int(static_cast<int64_t>(s.gets)));
  return j;
}

EngineStats StatsFromJson(const Json& j) {
  EngineStats s;
  s.logical_bytes = static_cast<uint64_t>(j.GetInt("logical_bytes"));
  s.physical_bytes = static_cast<uint64_t>(j.GetInt("physical_bytes"));
  s.storage_time_s = j.GetDouble("storage_time_s");
  s.puts = static_cast<uint64_t>(j.GetInt("puts"));
  s.gets = static_cast<uint64_t>(j.GetInt("gets"));
  return s;
}

}  // namespace

Status SaveEngine(const ForkBaseEngine& engine, const std::string& dir) {
  std::error_code ec;
  fs::create_directories(dir + "/chunks", ec);
  if (ec) {
    return Status::Internal("cannot create '" + dir + "': " + ec.message());
  }

  // Chunk files first (content-addressed; skip any already on disk).
  Status chunk_status = Status::Ok();
  engine.chunk_store().ForEachChunk([&](const Chunk& chunk, uint64_t refs) {
    (void)refs;
    if (!chunk_status.ok()) return;
    std::string path = ChunkPath(dir, chunk.hash());
    if (fs::exists(path)) return;  // immutable: content already saved
    fs::create_directories(fs::path(path).parent_path(), ec);
    if (ec) {
      chunk_status = Status::Internal("mkdir failed: " + ec.message());
      return;
    }
    std::string payload;
    payload.push_back(static_cast<char>(chunk.type()));
    payload.append(chunk.data());
    chunk_status = WriteFileAtomic(path, payload);
  });
  MLCASK_RETURN_IF_ERROR(chunk_status);

  // Manifest: refcounts, blob handles, key index, stats.
  Json manifest = Json::Object();
  manifest.Set("format", Json::Int(1));

  Json chunks = Json::Object();
  engine.chunk_store().ForEachChunk([&](const Chunk& chunk, uint64_t refs) {
    chunks.Set(chunk.hash().ToHex(), Json::Int(static_cast<int64_t>(refs)));
  });
  manifest.Set("chunk_refs", std::move(chunks));

  Json blobs = Json::Object();
  for (const auto& [id, ref] : engine.blobs()) {
    Json b = Json::Object();
    b.Set("root", Json::Str(ref.root.ToHex()));
    b.Set("size", Json::Int(static_cast<int64_t>(ref.size)));
    b.Set("num_chunks", Json::Int(ref.num_chunks));
    blobs.Set(id.ToHex(), std::move(b));
  }
  manifest.Set("blobs", std::move(blobs));

  Json keys = Json::Object();
  for (const auto& [key, versions] : engine.keys()) {
    Json arr = Json::Array();
    for (const Hash256& id : versions) arr.Append(Json::Str(id.ToHex()));
    keys.Set(key, std::move(arr));
  }
  manifest.Set("keys", std::move(keys));
  manifest.Set("stats", StatsToJson(engine.stats()));

  return WriteFileAtomic(dir + "/manifest.json", manifest.Dump());
}

StatusOr<std::unique_ptr<ForkBaseEngine>> LoadEngine(
    const std::string& dir, StorageTimeModel time_model) {
  MLCASK_ASSIGN_OR_RETURN(std::string manifest_bytes,
                          ReadFile(dir + "/manifest.json"));
  MLCASK_ASSIGN_OR_RETURN(Json manifest, Json::Parse(manifest_bytes));
  if (manifest.GetInt("format") != 1) {
    return Status::Corruption("unknown checkpoint format");
  }

  auto engine = std::make_unique<ForkBaseEngine>(time_model);

  const Json* chunk_refs = manifest.Get("chunk_refs");
  if (chunk_refs == nullptr || !chunk_refs->is_object()) {
    return Status::Corruption("manifest missing chunk_refs");
  }
  for (const auto& [hex, refs] : chunk_refs->items()) {
    Hash256 hash;
    if (!Hash256::FromHex(hex, &hash)) {
      return Status::Corruption("bad chunk hash in manifest: " + hex);
    }
    MLCASK_ASSIGN_OR_RETURN(std::string payload,
                            ReadFile(ChunkPath(dir, hash)));
    if (payload.empty()) {
      return Status::Corruption("empty chunk file for " + hex);
    }
    ChunkType type = static_cast<ChunkType>(payload[0]);
    std::string_view data(payload.data() + 1, payload.size() - 1);
    if (Chunk::ComputeHash(type, data) != hash) {
      return Status::Corruption("chunk content does not match address " + hex);
    }
    MLCASK_RETURN_IF_ERROR(engine->mutable_chunk_store()->RestoreChunk(
        type, data, static_cast<uint64_t>(refs.AsInt())));
  }

  const Json* blobs = manifest.Get("blobs");
  const Json* keys = manifest.Get("keys");
  if (blobs == nullptr || keys == nullptr) {
    return Status::Corruption("manifest missing blobs/keys");
  }
  // Build id -> BlobRef, then re-home under keys preserving version order.
  std::unordered_map<std::string, BlobRef> refs_by_hex;
  for (const auto& [hex, b] : blobs->items()) {
    BlobRef ref;
    if (!Hash256::FromHex(b.GetString("root"), &ref.root)) {
      return Status::Corruption("bad blob root for " + hex);
    }
    ref.size = static_cast<uint64_t>(b.GetInt("size"));
    ref.num_chunks = static_cast<uint32_t>(b.GetInt("num_chunks"));
    refs_by_hex[hex] = ref;
  }
  for (const auto& [key, versions] : keys->items()) {
    if (!versions.is_array()) {
      return Status::Corruption("bad version list for key " + key);
    }
    for (size_t i = 0; i < versions.size(); ++i) {
      const std::string& hex = versions.at(i).AsString();
      auto it = refs_by_hex.find(hex);
      if (it == refs_by_hex.end()) {
        return Status::Corruption("key '" + key +
                                  "' references unknown version " + hex);
      }
      Hash256 id;
      if (!Hash256::FromHex(hex, &id)) {
        return Status::Corruption("bad version id " + hex);
      }
      MLCASK_RETURN_IF_ERROR(engine->RestoreVersion(key, id, it->second));
    }
  }

  const Json* stats = manifest.Get("stats");
  if (stats != nullptr) {
    engine->RestoreStats(StatsFromJson(*stats));
  }
  return engine;
}


// ------------------------------------------------------ durable decorator ---

StatusOr<std::unique_ptr<DurableForkBaseEngine>> DurableForkBaseEngine::Open(
    const std::string& dir) {
  std::error_code ec;
  fs::create_directories(dir, ec);
  if (ec) {
    return Status::Internal("cannot create data dir '" + dir +
                            "': " + ec.message());
  }
  std::unique_ptr<ForkBaseEngine> inner;
  if (fs::exists(dir + "/manifest.json")) {
    MLCASK_ASSIGN_OR_RETURN(inner, LoadEngine(dir));
  } else {
    inner = std::make_unique<ForkBaseEngine>();
  }
  return std::unique_ptr<DurableForkBaseEngine>(
      new DurableForkBaseEngine(std::move(inner), dir));
}

StatusOr<PutResult> DurableForkBaseEngine::Put(const std::string& key,
                                               std::string_view data) {
  MLCASK_ASSIGN_OR_RETURN(PutResult result, inner_->Put(key, data));
  MLCASK_RETURN_IF_ERROR(SaveEngine(*inner_, dir_));
  return result;
}

StatusOr<std::vector<PutResult>> DurableForkBaseEngine::PutMany(
    const std::vector<PutRequest>& batch) {
  MLCASK_ASSIGN_OR_RETURN(std::vector<PutResult> results,
                          inner_->PutMany(batch));
  MLCASK_RETURN_IF_ERROR(SaveEngine(*inner_, dir_));
  return results;
}

StatusOr<std::string> DurableForkBaseEngine::Get(const std::string& key) {
  return inner_->Get(key);
}

StatusOr<std::string> DurableForkBaseEngine::GetVersion(const Hash256& id) {
  return inner_->GetVersion(id);
}

bool DurableForkBaseEngine::HasVersion(const Hash256& id) const {
  return inner_->HasVersion(id);
}

std::vector<Hash256> DurableForkBaseEngine::Versions(
    const std::string& key) const {
  return inner_->Versions(key);
}

std::vector<std::pair<std::string, Hash256>>
DurableForkBaseEngine::ListAllVersions() const {
  return inner_->ListAllVersions();
}

StatusOr<uint64_t> DurableForkBaseEngine::DeleteVersion(const Hash256& id) {
  MLCASK_ASSIGN_OR_RETURN(uint64_t freed, inner_->DeleteVersion(id));
  MLCASK_RETURN_IF_ERROR(SaveEngine(*inner_, dir_));
  return freed;
}

StatusOr<MigrateBatchResult> DurableForkBaseEngine::MigrateBatch(
    const std::vector<MigrateKeyVersions>& batch) {
  MLCASK_ASSIGN_OR_RETURN(MigrateBatchResult result,
                          inner_->MigrateBatch(batch));
  if (result.applied_versions > 0) {
    MLCASK_RETURN_IF_ERROR(SaveEngine(*inner_, dir_));
  }
  return result;
}

EngineStats DurableForkBaseEngine::stats() const { return inner_->stats(); }

std::string DurableForkBaseEngine::Name() const {
  return "durable(" + inner_->Name() + ")";
}

double DurableForkBaseEngine::ReadCost(uint64_t bytes) const {
  return inner_->ReadCost(bytes);
}

}  // namespace mlcask::storage
