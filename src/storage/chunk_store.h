#ifndef MLCASK_STORAGE_CHUNK_STORE_H_
#define MLCASK_STORAGE_CHUNK_STORE_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>

#include "common/sha256.h"
#include "common/status.h"
#include "storage/chunk.h"

namespace mlcask::storage {

/// De-duplication accounting. `logical` counts bytes as written by clients;
/// `physical` counts bytes actually retained (each distinct chunk once).
struct ChunkStoreStats {
  uint64_t logical_bytes = 0;
  uint64_t physical_bytes = 0;
  uint64_t puts = 0;
  uint64_t dedup_hits = 0;
  uint64_t distinct_chunks = 0;
  uint64_t gets = 0;

  /// logical/physical; 1.0 when nothing de-duplicated.
  double DedupRatio() const {
    return physical_bytes == 0
               ? 1.0
               : static_cast<double>(logical_bytes) /
                     static_cast<double>(physical_bytes);
  }
};

/// An in-memory content-addressable store with reference counts. This is the
/// bottom layer of the ForkBase-style engine: identical chunks are stored
/// once regardless of which object, version, or branch wrote them.
///
/// Thread safety: the chunk map itself is NOT internally synchronized — the
/// owning engine serializes mutations (Put/Release/Restore) behind its
/// writer lock and allows concurrent readers (Get/Contains) behind its
/// reader lock. The stats counters ARE internally synchronized, because the
/// read path bumps `gets` even when the caller only holds a reader lock.
class ChunkStore {
 public:
  ChunkStore() = default;

  ChunkStore(const ChunkStore&) = delete;
  ChunkStore& operator=(const ChunkStore&) = delete;

  /// Stores a chunk (no-op apart from refcount/stats if already present) and
  /// returns its address.
  Hash256 Put(ChunkType type, std::string_view data);

  /// Same, but with the address precomputed by the caller (via
  /// Chunk::ComputeHash(type, data)) — lets engines hash outside their
  /// write lock. `hash` MUST match the data.
  Hash256 PutPrehashed(const Hash256& hash, ChunkType type,
                       std::string_view data);

  /// Looks up a chunk by address.
  StatusOr<const Chunk*> Get(const Hash256& hash) const;

  bool Contains(const Hash256& hash) const;

  /// Drops one reference; the chunk is erased when its count reaches zero.
  /// Returns NotFound if the address is unknown.
  Status Release(const Hash256& hash);

  uint64_t RefCount(const Hash256& hash) const;

  /// Visits every stored chunk with its reference count (iteration order is
  /// unspecified). Used by persistence to snapshot the store.
  void ForEachChunk(
      const std::function<void(const Chunk&, uint64_t refs)>& fn) const;

  /// Restores a chunk with an explicit reference count; used when loading a
  /// persisted store. Fails if the chunk already exists.
  Status RestoreChunk(ChunkType type, std::string_view data, uint64_t refs);

  ChunkStoreStats stats() const {
    std::lock_guard<std::mutex> lock(stats_mu_);
    return stats_;
  }
  size_t size() const { return chunks_.size(); }

 private:
  struct Entry {
    std::unique_ptr<Chunk> chunk;
    uint64_t refs = 0;
  };

  std::unordered_map<Hash256, Entry, Hash256Hasher> chunks_;
  mutable std::mutex stats_mu_;
  mutable ChunkStoreStats stats_;
};

}  // namespace mlcask::storage

#endif  // MLCASK_STORAGE_CHUNK_STORE_H_
