#ifndef MLCASK_STORAGE_FAULT_INJECTOR_H_
#define MLCASK_STORAGE_FAULT_INJECTOR_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "storage/storage_engine.h"

namespace mlcask::storage {

/// A parsed fault schedule. Every probability is per-event and every draw
/// flows through one seeded Pcg32, so a spec string fully determines the
/// fault sequence — chaos runs are replayable from the spec alone.
///
/// Spec grammar (comma-separated `key=value` pairs, all optional):
///
///   seed=S              RNG seed (default 1)
///   drop=P              client: kill the connection BEFORE sending a frame
///   dropafter=P         client: send the frame, then kill the connection
///                       (the request reaches the server; the response is
///                       lost — exercises the idempotent-replay ledger)
///   garble=P            client: corrupt the frame header length field so the
///                       peer sees Corruption and closes the connection
///   delay_ms=M:P        delay a send/job by M milliseconds with prob. P
///   drip_ms_per_kib=D   server: slow-drip — stall each job D ms per KiB of
///                       request payload (simulates a saturated reader)
///   diskfull=P          engine wrapper: mutations fail Unavailable("disk full")
///   kill_after=N        server: SIGKILL the process on the Nth DATA job
///                       (0 = never) — a deterministic kill -9 mid-2PC
struct FaultSpec {
  uint64_t seed = 1;
  double drop = 0;
  double drop_after = 0;
  double garble = 0;
  uint64_t delay_ms = 0;
  double delay_prob = 0;
  uint64_t drip_ms_per_kib = 0;
  double disk_full = 0;
  uint64_t kill_after = 0;

  static StatusOr<FaultSpec> Parse(std::string_view spec);
  std::string ToString() const;
  bool any() const {
    return drop > 0 || drop_after > 0 || garble > 0 || delay_prob > 0 ||
           drip_ms_per_kib > 0 || disk_full > 0 || kill_after > 0;
  }
};

/// What to do with one client-side send. At most one connection-killing
/// action fires per frame; delay composes with any of them.
struct SendFault {
  bool drop_before = false;  ///< Kill the connection, never send.
  bool drop_after = false;   ///< Send, then kill the connection.
  bool garble = false;       ///< Corrupt the frame header, then send.
  uint64_t delay_ms = 0;
};

/// What to do with one server-side job before running the handler.
struct JobFault {
  bool kill = false;  ///< SIGKILL this process: a crash mid-request.
  uint64_t delay_ms = 0;
};

/// Deterministic fault policy shared by every hook point of one process
/// (client sends, server jobs, engine mutations). Thread safe: one mutex
/// guards the RNG so concurrent hooks serialize draws — the draw ORDER under
/// concurrency is scheduling-dependent, but each individual decision is an
/// independent Bernoulli so aggregate behaviour tracks the spec regardless.
class FaultInjector {
 public:
  explicit FaultInjector(const FaultSpec& spec)
      : spec_(spec), rng_(spec.seed) {}

  const FaultSpec& spec() const { return spec_; }

  /// Client transport: decide the fate of one outgoing request frame.
  SendFault OnClientSend();

  /// Server: decide the fate of one inbound DATA job of `payload_bytes`.
  /// Counts jobs across all connections for kill_after.
  JobFault OnServerJob(size_t payload_bytes);

  /// Engine wrapper: true when this mutation should fail disk-full.
  bool OnEngineWrite();

  uint64_t jobs_seen() const { return jobs_seen_.load(); }

 private:
  const FaultSpec spec_;
  std::mutex mu_;
  Pcg32 rng_;
  std::atomic<uint64_t> jobs_seen_{0};
};

/// StorageEngine decorator that injects disk-full failures on mutations
/// (per the injector's diskfull probability) and, independently, can be
/// switched to fail EVERY call Unavailable — the knob health-view tests use
/// to simulate a dead shard behind a live transport. Reads pass through.
/// Forwards the Async* surface so fan-out overlap is preserved.
class FaultyEngine : public StorageEngine {
 public:
  FaultyEngine(std::unique_ptr<StorageEngine> inner,
               std::shared_ptr<FaultInjector> injector)
      : inner_(std::move(inner)), injector_(std::move(injector)) {}

  /// When set, every call (reads included) fails Unavailable("shard down").
  void set_unavailable(bool down) { unavailable_.store(down); }

  /// When set, every call fails with a typed ResourceExhausted ("shard
  /// shedding") — the overload twin of set_unavailable. Distinct on
  /// purpose: shedding must NOT trip the router's health tracker (the
  /// shard is alive, just saturated) and must RELEASE any replay-ledger
  /// claim instead of recording the shed answer.
  void set_shed(bool shedding) { shed_.store(shedding); }

  StatusOr<PutResult> Put(const std::string& key,
                          std::string_view data) override;
  StatusOr<std::vector<PutResult>> PutMany(
      const std::vector<PutRequest>& batch) override;
  StatusOr<std::string> Get(const std::string& key) override;
  StatusOr<std::string> GetVersion(const Hash256& id) override;
  bool HasVersion(const Hash256& id) const override;
  std::vector<Hash256> Versions(const std::string& key) const override;
  std::vector<std::pair<std::string, Hash256>> ListAllVersions()
      const override;
  StatusOr<uint64_t> DeleteVersion(const Hash256& id) override;
  EngineStats stats() const override;
  std::string Name() const override;
  double ReadCost(uint64_t bytes) const override;

  Deferred<PutResult> AsyncPut(const std::string& key,
                               std::string_view data) override;
  Deferred<std::vector<PutResult>> AsyncPutMany(
      const std::vector<PutRequest>& batch) override;
  Deferred<std::string> AsyncGetVersion(const Hash256& id) override;
  Deferred<bool> AsyncHasVersion(const Hash256& id) const override;
  Deferred<uint64_t> AsyncDeleteVersion(const Hash256& id) override;

  StorageEngine* inner() { return inner_.get(); }

 private:
  Status Gate(bool mutation);

  std::unique_ptr<StorageEngine> inner_;
  std::shared_ptr<FaultInjector> injector_;
  std::atomic<bool> unavailable_{false};
  std::atomic<bool> shed_{false};
};

}  // namespace mlcask::storage

#endif  // MLCASK_STORAGE_FAULT_INJECTOR_H_
