#include "storage/wire_codec.h"

#include <algorithm>
#include <cstring>

#include "storage/chunk.h"
#include "storage/deadline.h"

namespace mlcask::storage::wire {

void PutVarint(std::string* out, uint64_t v) {
  while (v >= 0x80) {
    out->push_back(static_cast<char>((v & 0x7f) | 0x80));
    v >>= 7;
  }
  out->push_back(static_cast<char>(v));
}

bool GetVarint(std::string_view* in, uint64_t* v) {
  uint64_t result = 0;
  for (int shift = 0; shift < 64; shift += 7) {
    if (in->empty()) return false;
    const uint8_t byte = static_cast<uint8_t>(in->front());
    in->remove_prefix(1);
    result |= static_cast<uint64_t>(byte & 0x7f) << shift;
    if ((byte & 0x80) == 0) {
      *v = result;
      return true;
    }
  }
  return false;  // more than 10 continuation bytes: malformed
}

void PutMetaVarint(std::string* meta, uint32_t tag, uint64_t v) {
  PutVarint(meta, (static_cast<uint64_t>(tag) << 2) |
                      static_cast<uint64_t>(MetaKind::kVarint));
  PutVarint(meta, v);
}

void PutMetaBytes(std::string* meta, uint32_t tag, std::string_view bytes) {
  PutVarint(meta, (static_cast<uint64_t>(tag) << 2) |
                      static_cast<uint64_t>(MetaKind::kBytes));
  PutVarint(meta, bytes.size());
  meta->append(bytes);
}

void PutMetaHash(std::string* meta, uint32_t tag, const Hash256& hash) {
  PutVarint(meta, (static_cast<uint64_t>(tag) << 2) |
                      static_cast<uint64_t>(MetaKind::kHash));
  meta->append(reinterpret_cast<const char*>(hash.bytes.data()),
               hash.bytes.size());
}

void PutMetaF64(std::string* meta, uint32_t tag, double v) {
  PutVarint(meta, (static_cast<uint64_t>(tag) << 2) |
                      static_cast<uint64_t>(MetaKind::kF64));
  uint64_t bits = 0;
  std::memcpy(&bits, &v, sizeof(bits));
  for (int i = 0; i < 8; ++i) {
    meta->push_back(static_cast<char>(bits >> (8 * i)));
  }
}

bool MetaReader::Next() {
  if (rest_.empty() || malformed_) return false;
  uint64_t key = 0;
  if (!GetVarint(&rest_, &key)) return Malformed();
  tag_ = static_cast<uint32_t>(key >> 2);
  kind_ = static_cast<MetaKind>(key & 0x3);
  switch (kind_) {
    case MetaKind::kVarint:
      return GetVarint(&rest_, &varint_) || Malformed();
    case MetaKind::kBytes: {
      uint64_t len = 0;
      if (!GetVarint(&rest_, &len) || rest_.size() < len) {
        return Malformed();
      }
      bytes_ = rest_.substr(0, len);
      rest_.remove_prefix(len);
      return true;
    }
    case MetaKind::kHash:
      if (rest_.size() < hash_.bytes.size()) return Malformed();
      std::memcpy(hash_.bytes.data(), rest_.data(), hash_.bytes.size());
      rest_.remove_prefix(hash_.bytes.size());
      return true;
    case MetaKind::kF64: {
      if (rest_.size() < 8) return Malformed();
      uint64_t bits = 0;
      for (int i = 7; i >= 0; --i) {
        bits = (bits << 8) | static_cast<uint8_t>(rest_[i]);
      }
      std::memcpy(&f64_, &bits, sizeof(f64_));
      rest_.remove_prefix(8);
      return true;
    }
  }
  return Malformed();
}

std::string AssembleMessage(uint8_t second, std::string_view meta,
                            std::string_view body) {
  std::string out;
  out.reserve(2 + 10 + meta.size() + body.size());
  out.push_back(static_cast<char>(kBinaryMagic));
  out.push_back(static_cast<char>(second));
  PutVarint(&out, meta.size());
  out.append(meta);
  out.append(body);  // the single memcpy that moves artifact bytes
  return out;
}

Status DisassembleMessage(std::string_view message, uint8_t* second,
                          std::string_view* meta, std::string_view* body) {
  if (message.size() < 2 ||
      static_cast<uint8_t>(message[0]) != kBinaryMagic) {
    return Status::Corruption("not a binary wire message");
  }
  *second = static_cast<uint8_t>(message[1]);
  std::string_view rest = message.substr(2);
  uint64_t meta_len = 0;
  if (!GetVarint(&rest, &meta_len) || rest.size() < meta_len) {
    return Status::Corruption("binary message meta section truncated");
  }
  *meta = rest.substr(0, meta_len);
  *body = rest.substr(meta_len);
  return Status::Ok();
}

namespace {

// The storage codec's historical names for the shared primitives above.
using FieldReader = MetaReader;

inline void PutFieldVarint(std::string* meta, uint32_t tag, uint64_t v) {
  PutMetaVarint(meta, tag, v);
}
inline void PutFieldBytes(std::string* meta, uint32_t tag,
                          std::string_view bytes) {
  PutMetaBytes(meta, tag, bytes);
}
inline void PutFieldHash(std::string* meta, uint32_t tag,
                         const Hash256& hash) {
  PutMetaHash(meta, tag, hash);
}
inline void PutFieldF64(std::string* meta, uint32_t tag, double v) {
  PutMetaF64(meta, tag, v);
}

// Frozen field tags. Requests and responses use disjoint-purpose tag spaces
// per message type, so tags only need to be stable within one message kind.
constexpr uint32_t kTagKey = 1;        // request: key (bytes)
constexpr uint32_t kTagId = 2;         // request: content id (hash)
constexpr uint32_t kTagBytesArg = 3;   // request: read_cost operand (varint)
constexpr uint32_t kTagCount = 4;      // put_many batch size (varint)
constexpr uint32_t kTagReplayToken = 5;  // request: idempotency token (bytes)
constexpr uint32_t kTagDeadline = 6;     // request: remaining budget ms (varint)

constexpr uint32_t kTagErrMessage = 1;   // error response message (bytes)
constexpr uint32_t kTagResultId = 1;     // PutResult.id (hash)
constexpr uint32_t kTagLogical = 2;      // PutResult/stats logical (varint)
constexpr uint32_t kTagPhysical = 3;     // PutResult/stats physical (varint)
constexpr uint32_t kTagStorageTime = 4;  // storage_time_s (f64)
constexpr uint32_t kTagDedup = 5;        // PutResult.deduplicated (varint)
constexpr uint32_t kTagHas = 1;          // has_version answer (varint)
constexpr uint32_t kTagFreed = 1;        // delete_version freed (varint)
constexpr uint32_t kTagCost = 1;         // read_cost answer (f64)
constexpr uint32_t kTagPuts = 5;         // stats.puts (varint)
constexpr uint32_t kTagGets = 6;         // stats.gets (varint)
constexpr uint32_t kTagApplied = 1;      // migrate applied_versions (varint)
constexpr uint32_t kTagSkipped = 2;      // migrate skipped_versions (varint)

/// The storage codec's historical names for the exported assembly helpers.
inline std::string Assemble(uint8_t second, std::string_view meta,
                            std::string_view body) {
  return AssembleMessage(second, meta, body);
}

inline Status Disassemble(std::string_view message, uint8_t* second,
                          std::string_view* meta, std::string_view* body) {
  return DisassembleMessage(message, second, meta, body);
}

std::string EncodeRequestMessage(Method method, std::string_view meta,
                                 std::string_view body) {
  return Assemble(static_cast<uint8_t>(method), meta, body);
}

StatusOr<PutResult> DecodePutResultMeta(std::string_view meta) {
  PutResult result;
  bool saw_id = false;
  FieldReader reader(meta);
  while (reader.Next()) {
    switch (reader.tag()) {
      case kTagResultId:
        result.id = reader.hash();
        saw_id = true;
        break;
      case kTagLogical:
        result.logical_bytes = reader.varint();
        break;
      case kTagPhysical:
        result.new_physical_bytes = reader.varint();
        break;
      case kTagStorageTime:
        result.storage_time_s = reader.f64();
        break;
      case kTagDedup:
        result.deduplicated = reader.varint() != 0;
        break;
      default:
        break;
    }
  }
  if (reader.malformed() || !saw_id) {
    return Status::Corruption("put response carries a malformed result");
  }
  return result;
}

/// Stamps the caller's remaining deadline budget (ambient DeadlineScope) into
/// a request meta section. No ambient budget (or a spent one) writes nothing,
/// so such requests stay bit-identical to the pre-deadline wire revision and
/// old peers skip the tag when it is present.
void StampAmbientDeadline(std::string* meta) {
  const uint64_t remaining = DeadlineScope::CurrentRemainingMs();
  if (remaining > 0) PutFieldVarint(meta, kTagDeadline, remaining);
}

void AppendPutResultMeta(std::string* meta, const PutResult& result) {
  PutFieldHash(meta, kTagResultId, result.id);
  PutFieldVarint(meta, kTagLogical, result.logical_bytes);
  PutFieldVarint(meta, kTagPhysical, result.new_physical_bytes);
  PutFieldF64(meta, kTagStorageTime, result.storage_time_s);
  PutFieldVarint(meta, kTagDedup, result.deduplicated ? 1 : 0);
}

}  // namespace

// --- requests ---------------------------------------------------------------

std::string EncodePutRequest(std::string_view key, std::string_view data,
                             std::string_view replay_token) {
  std::string meta;
  PutFieldBytes(&meta, kTagKey, key);
  if (!replay_token.empty()) {
    PutFieldBytes(&meta, kTagReplayToken, replay_token);
  }
  StampAmbientDeadline(&meta);
  return EncodeRequestMessage(Method::kPut, meta, data);
}

std::string EncodePutManyRequest(const std::vector<PutRequest>& batch,
                                 std::string_view replay_token) {
  std::string meta;
  PutFieldVarint(&meta, kTagCount, batch.size());
  if (!replay_token.empty()) {
    PutFieldBytes(&meta, kTagReplayToken, replay_token);
  }
  StampAmbientDeadline(&meta);
  std::string body;
  size_t total = 0;
  for (const PutRequest& put : batch) {
    total += put.key.size() + put.data.size() + 20;
  }
  body.reserve(total);
  for (const PutRequest& put : batch) {
    PutVarint(&body, put.key.size());
    body.append(put.key);
    PutVarint(&body, put.data.size());
    body.append(put.data);
  }
  return EncodeRequestMessage(Method::kPutMany, meta, body);
}

std::string EncodeKeyRequest(Method method, std::string_view key) {
  std::string meta;
  PutFieldBytes(&meta, kTagKey, key);
  StampAmbientDeadline(&meta);
  return EncodeRequestMessage(method, meta, {});
}

std::string EncodeIdRequest(Method method, const Hash256& id,
                            std::string_view replay_token) {
  std::string meta;
  PutFieldHash(&meta, kTagId, id);
  if (!replay_token.empty()) {
    PutFieldBytes(&meta, kTagReplayToken, replay_token);
  }
  StampAmbientDeadline(&meta);
  return EncodeRequestMessage(method, meta, {});
}

std::string EncodePlainRequest(Method method) {
  return EncodeRequestMessage(method, {}, {});
}

std::string EncodeReadCostRequest(uint64_t bytes) {
  std::string meta;
  PutFieldVarint(&meta, kTagBytesArg, bytes);
  StampAmbientDeadline(&meta);
  return EncodeRequestMessage(Method::kReadCost, meta, {});
}

std::string EncodeMigrateBatchRequest(
    const std::vector<MigrateKeyVersions>& batch,
    std::string_view replay_token) {
  std::string meta;
  PutFieldVarint(&meta, kTagCount, batch.size());
  if (!replay_token.empty()) {
    PutFieldBytes(&meta, kTagReplayToken, replay_token);
  }
  StampAmbientDeadline(&meta);
  std::string body;
  size_t total = 0;
  for (const MigrateKeyVersions& entry : batch) {
    total += entry.key.size() + 20;
    for (const auto& [id, data] : entry.versions) {
      total += id.bytes.size() + data.size() + 10;
    }
  }
  body.reserve(total);
  for (const MigrateKeyVersions& entry : batch) {
    PutVarint(&body, entry.key.size());
    body.append(entry.key);
    PutVarint(&body, entry.versions.size());
    for (const auto& [id, data] : entry.versions) {
      body.append(reinterpret_cast<const char*>(id.bytes.data()),
                  id.bytes.size());
      PutVarint(&body, data.size());
      body.append(data);
    }
  }
  return EncodeRequestMessage(Method::kMigrateBatch, meta, body);
}

StatusOr<Request> DecodeRequest(std::string_view message) {
  uint8_t opcode = 0;
  std::string_view meta;
  std::string_view body;
  MLCASK_RETURN_IF_ERROR(Disassemble(message, &opcode, &meta, &body));
  if (opcode < static_cast<uint8_t>(Method::kPut) ||
      opcode > static_cast<uint8_t>(Method::kMigrateBatch)) {
    return Status::Unimplemented("unknown binary storage opcode " +
                                 std::to_string(opcode));
  }
  Request request;
  request.method = static_cast<Method>(opcode);
  uint64_t batch_count = 0;
  FieldReader reader(meta);
  while (reader.Next()) {
    switch (reader.tag()) {
      case kTagKey:
        request.key = reader.bytes();
        break;
      case kTagId:
        request.id = reader.hash();
        break;
      case kTagBytesArg:
        request.bytes = reader.varint();
        break;
      case kTagCount:
        batch_count = reader.varint();
        break;
      case kTagReplayToken:
        request.replay_token = reader.bytes();
        break;
      case kTagDeadline:
        request.deadline_ms = reader.varint();
        break;
      default:
        break;
    }
  }
  if (reader.malformed()) {
    return Status::InvalidArgument("malformed binary request meta");
  }
  request.body = body;
  if (request.method == Method::kPutMany) {
    // The count varint is peer-controlled; each entry costs at least two
    // length bytes, so anything beyond body.size()/2 cannot parse. Reject it
    // here rather than handing a 2^60 count to reserve(), which would throw
    // past the handler instead of producing an error response.
    if (batch_count > body.size() / 2) {
      return Status::InvalidArgument("put_many count exceeds batch body");
    }
    request.batch.reserve(batch_count);
    std::string_view rest = body;
    for (uint64_t i = 0; i < batch_count; ++i) {
      uint64_t key_len = 0;
      if (!GetVarint(&rest, &key_len) || rest.size() < key_len) {
        return Status::InvalidArgument("malformed put_many batch entry");
      }
      std::string_view key = rest.substr(0, key_len);
      rest.remove_prefix(key_len);
      uint64_t data_len = 0;
      if (!GetVarint(&rest, &data_len) || rest.size() < data_len) {
        return Status::InvalidArgument("malformed put_many batch entry");
      }
      request.batch.emplace_back(key, rest.substr(0, data_len));
      rest.remove_prefix(data_len);
    }
    if (!rest.empty()) {
      return Status::InvalidArgument("put_many batch has trailing bytes");
    }
  }
  if (request.method == Method::kMigrateBatch) {
    // Same hostile-varint posture as put_many: every count is peer
    // controlled, so each is bounded by what the remaining bytes could
    // possibly parse into before any reserve().
    if (batch_count > body.size() / 2) {
      return Status::InvalidArgument("migrate_batch count exceeds body");
    }
    request.migrate.reserve(batch_count);
    std::string_view rest = body;
    for (uint64_t i = 0; i < batch_count; ++i) {
      uint64_t key_len = 0;
      if (!GetVarint(&rest, &key_len) || rest.size() < key_len) {
        return Status::InvalidArgument("malformed migrate_batch key");
      }
      Request::MigrateEntry entry;
      entry.key = rest.substr(0, key_len);
      rest.remove_prefix(key_len);
      uint64_t version_count = 0;
      // Each version costs at least 32 id bytes + 1 length byte.
      if (!GetVarint(&rest, &version_count) ||
          version_count > rest.size() / 33) {
        return Status::InvalidArgument("malformed migrate_batch entry");
      }
      entry.versions.reserve(version_count);
      for (uint64_t v = 0; v < version_count; ++v) {
        Hash256 id;
        if (rest.size() < id.bytes.size()) {
          return Status::InvalidArgument("malformed migrate_batch version");
        }
        std::memcpy(id.bytes.data(), rest.data(), id.bytes.size());
        rest.remove_prefix(id.bytes.size());
        uint64_t data_len = 0;
        if (!GetVarint(&rest, &data_len) || rest.size() < data_len) {
          return Status::InvalidArgument("malformed migrate_batch version");
        }
        entry.versions.emplace_back(id, rest.substr(0, data_len));
        rest.remove_prefix(data_len);
      }
      request.migrate.push_back(std::move(entry));
    }
    if (!rest.empty()) {
      return Status::InvalidArgument("migrate_batch has trailing bytes");
    }
  }
  return request;
}

std::string_view ExtractReplayToken(std::string_view message) {
  uint8_t opcode = 0;
  std::string_view meta;
  std::string_view body;
  if (!Disassemble(message, &opcode, &meta, &body).ok()) return {};
  FieldReader reader(meta);
  while (reader.Next()) {
    if (reader.tag() == kTagReplayToken) return reader.bytes();
  }
  return {};
}

uint64_t ExtractDeadline(std::string_view message) {
  uint8_t opcode = 0;
  std::string_view meta;
  std::string_view body;
  if (!Disassemble(message, &opcode, &meta, &body).ok()) return 0;
  FieldReader reader(meta);
  while (reader.Next()) {
    if (reader.tag() == kTagDeadline) return reader.varint();
  }
  return 0;
}

// --- responses --------------------------------------------------------------

std::string EncodeErrorResponse(const Status& status) {
  std::string meta;
  PutFieldBytes(&meta, kTagErrMessage, status.message());
  return Assemble(static_cast<uint8_t>(status.code()), meta, {});
}

std::string EncodeDataResponse(std::string_view data) {
  return Assemble(0, {}, data);
}

std::string EncodePutResponse(const PutResult& result) {
  std::string meta;
  AppendPutResultMeta(&meta, result);
  return Assemble(0, meta, {});
}

std::string EncodePutManyResponse(const std::vector<PutResult>& results) {
  std::string body;
  for (const PutResult& result : results) {
    std::string meta;
    AppendPutResultMeta(&meta, result);
    PutVarint(&body, meta.size());
    body.append(meta);
  }
  return Assemble(0, {}, body);
}

std::string EncodeHasResponse(bool has) {
  std::string meta;
  PutFieldVarint(&meta, kTagHas, has ? 1 : 0);
  return Assemble(0, meta, {});
}

std::string EncodeFreedResponse(uint64_t freed_bytes) {
  std::string meta;
  PutFieldVarint(&meta, kTagFreed, freed_bytes);
  return Assemble(0, meta, {});
}

std::string EncodeVersionsResponse(const std::vector<Hash256>& ids) {
  std::string body;
  body.reserve(ids.size() * 32);
  for (const Hash256& id : ids) {
    body.append(reinterpret_cast<const char*>(id.bytes.data()),
                id.bytes.size());
  }
  return Assemble(0, {}, body);
}

std::string EncodeEntriesResponse(
    const std::vector<std::pair<std::string, Hash256>>& entries) {
  std::string body;
  for (const auto& [key, id] : entries) {
    PutVarint(&body, key.size());
    body.append(key);
    body.append(reinterpret_cast<const char*>(id.bytes.data()),
                id.bytes.size());
  }
  return Assemble(0, {}, body);
}

std::string EncodeStatsResponse(const EngineStats& stats) {
  std::string meta;
  PutFieldVarint(&meta, kTagLogical, stats.logical_bytes);
  PutFieldVarint(&meta, kTagPhysical, stats.physical_bytes);
  PutFieldF64(&meta, kTagStorageTime, stats.storage_time_s);
  PutFieldVarint(&meta, kTagPuts, stats.puts);
  PutFieldVarint(&meta, kTagGets, stats.gets);
  return Assemble(0, meta, {});
}

std::string EncodeCostResponse(double cost_s) {
  std::string meta;
  PutFieldF64(&meta, kTagCost, cost_s);
  return Assemble(0, meta, {});
}

std::string EncodeMigrateResponse(const MigrateBatchResult& result) {
  std::string meta;
  PutFieldVarint(&meta, kTagApplied, result.applied_versions);
  PutFieldVarint(&meta, kTagSkipped, result.skipped_versions);
  return Assemble(0, meta, {});
}

Status DecodeResponseStatus(std::string_view message, std::string_view* rest) {
  uint8_t code = 0;
  std::string_view meta;
  std::string_view body;
  MLCASK_RETURN_IF_ERROR(Disassemble(message, &code, &meta, &body));
  if (code == 0) {
    // meta and body are contiguous views into `message`.
    *rest = std::string_view(meta.data(), meta.size() + body.size());
    return Status::Ok();
  }
  std::string error_message = "remote error";
  FieldReader reader(meta);
  while (reader.Next()) {
    if (reader.tag() == kTagErrMessage) {
      error_message.assign(reader.bytes());
    }
  }
  return Status(static_cast<StatusCode>(code), std::move(error_message));
}

namespace {

/// Shared ok-path split: status check, then meta/body views.
Status SplitOkResponse(std::string_view message, std::string_view* meta,
                       std::string_view* body) {
  uint8_t code = 0;
  MLCASK_RETURN_IF_ERROR(Disassemble(message, &code, meta, body));
  if (code != 0) {
    std::string_view unused;
    return DecodeResponseStatus(message, &unused);
  }
  return Status::Ok();
}

}  // namespace

StatusOr<std::string_view> DecodeDataResponse(std::string_view message) {
  std::string_view meta;
  std::string_view body;
  MLCASK_RETURN_IF_ERROR(SplitOkResponse(message, &meta, &body));
  return body;  // zero copy: a view into the receive buffer
}

StatusOr<PutResult> DecodePutResponse(std::string_view message) {
  std::string_view meta;
  std::string_view body;
  MLCASK_RETURN_IF_ERROR(SplitOkResponse(message, &meta, &body));
  return DecodePutResultMeta(meta);
}

StatusOr<std::vector<PutResult>> DecodePutManyResponse(
    std::string_view message, size_t expected) {
  std::string_view meta;
  std::string_view body;
  MLCASK_RETURN_IF_ERROR(SplitOkResponse(message, &meta, &body));
  std::vector<PutResult> results;
  results.reserve(expected);
  while (!body.empty()) {
    uint64_t len = 0;
    if (!GetVarint(&body, &len) || body.size() < len) {
      return Status::Corruption("put_many response result truncated");
    }
    MLCASK_ASSIGN_OR_RETURN(PutResult result,
                            DecodePutResultMeta(body.substr(0, len)));
    results.push_back(result);
    body.remove_prefix(len);
  }
  if (results.size() != expected) {
    return Status::Corruption("put_many response result count mismatch");
  }
  return results;
}

StatusOr<bool> DecodeHasResponse(std::string_view message) {
  std::string_view meta;
  std::string_view body;
  MLCASK_RETURN_IF_ERROR(SplitOkResponse(message, &meta, &body));
  FieldReader reader(meta);
  while (reader.Next()) {
    if (reader.tag() == kTagHas) return reader.varint() != 0;
  }
  return Status::Corruption("has_version response lacks an answer");
}

StatusOr<uint64_t> DecodeFreedResponse(std::string_view message) {
  std::string_view meta;
  std::string_view body;
  MLCASK_RETURN_IF_ERROR(SplitOkResponse(message, &meta, &body));
  FieldReader reader(meta);
  while (reader.Next()) {
    if (reader.tag() == kTagFreed) return reader.varint();
  }
  return Status::Corruption("delete_version response lacks freed bytes");
}

StatusOr<std::vector<Hash256>> DecodeVersionsResponse(
    std::string_view message) {
  std::string_view meta;
  std::string_view body;
  MLCASK_RETURN_IF_ERROR(SplitOkResponse(message, &meta, &body));
  if (body.size() % 32 != 0) {
    return Status::Corruption("versions response is not a multiple of 32");
  }
  std::vector<Hash256> ids(body.size() / 32);
  for (size_t i = 0; i < ids.size(); ++i) {
    std::memcpy(ids[i].bytes.data(), body.data() + i * 32, 32);
  }
  return ids;
}

StatusOr<std::vector<std::pair<std::string, Hash256>>> DecodeEntriesResponse(
    std::string_view message) {
  std::string_view meta;
  std::string_view body;
  MLCASK_RETURN_IF_ERROR(SplitOkResponse(message, &meta, &body));
  std::vector<std::pair<std::string, Hash256>> entries;
  while (!body.empty()) {
    uint64_t key_len = 0;
    // Checked without addition: key_len + 32 could wrap for a hostile varint.
    if (!GetVarint(&body, &key_len) || body.size() < 32 ||
        body.size() - 32 < key_len) {
      return Status::Corruption("list_all_versions entry truncated");
    }
    Hash256 id;
    std::memcpy(id.bytes.data(), body.data() + key_len, 32);
    entries.emplace_back(std::string(body.substr(0, key_len)), id);
    body.remove_prefix(key_len + 32);
  }
  return entries;
}

StatusOr<EngineStats> DecodeStatsResponse(std::string_view message) {
  std::string_view meta;
  std::string_view body;
  MLCASK_RETURN_IF_ERROR(SplitOkResponse(message, &meta, &body));
  EngineStats stats;
  FieldReader reader(meta);
  while (reader.Next()) {
    switch (reader.tag()) {
      case kTagLogical:
        stats.logical_bytes = reader.varint();
        break;
      case kTagPhysical:
        stats.physical_bytes = reader.varint();
        break;
      case kTagStorageTime:
        stats.storage_time_s = reader.f64();
        break;
      case kTagPuts:
        stats.puts = reader.varint();
        break;
      case kTagGets:
        stats.gets = reader.varint();
        break;
      default:
        break;
    }
  }
  if (reader.malformed()) {
    return Status::Corruption("stats response meta malformed");
  }
  return stats;
}

StatusOr<double> DecodeCostResponse(std::string_view message) {
  std::string_view meta;
  std::string_view body;
  MLCASK_RETURN_IF_ERROR(SplitOkResponse(message, &meta, &body));
  FieldReader reader(meta);
  while (reader.Next()) {
    if (reader.tag() == kTagCost) return reader.f64();
  }
  return Status::Corruption("read_cost response lacks a cost");
}

StatusOr<MigrateBatchResult> DecodeMigrateResponse(std::string_view message) {
  std::string_view meta;
  std::string_view body;
  MLCASK_RETURN_IF_ERROR(SplitOkResponse(message, &meta, &body));
  MigrateBatchResult result;
  bool saw_applied = false;
  FieldReader reader(meta);
  while (reader.Next()) {
    switch (reader.tag()) {
      case kTagApplied:
        result.applied_versions = reader.varint();
        saw_applied = true;
        break;
      case kTagSkipped:
        result.skipped_versions = reader.varint();
        break;
      default:
        break;
    }
  }
  if (reader.malformed() || !saw_applied) {
    return Status::Corruption("migrate_batch response lacks counters");
  }
  return result;
}

// --- server dispatch --------------------------------------------------------

std::string DispatchBinary(StorageEngine* engine, std::string_view message) {
  auto request = DecodeRequest(message);
  if (!request.ok()) return EncodeErrorResponse(request.status());

  switch (request->method) {
    case Method::kPut: {
      // request->body is a view into the receive buffer: the artifact bytes
      // reach the engine without ever being copied or re-encoded.
      auto result = engine->Put(std::string(request->key), request->body);
      if (!result.ok()) return EncodeErrorResponse(result.status());
      return EncodePutResponse(*result);
    }
    case Method::kPutMany: {
      std::vector<PutRequest> batch;
      batch.reserve(request->batch.size());
      for (const auto& [key, data] : request->batch) {
        batch.push_back({std::string(key), std::string(data)});
      }
      auto results = engine->PutMany(batch);
      if (!results.ok()) return EncodeErrorResponse(results.status());
      return EncodePutManyResponse(*results);
    }
    case Method::kGet: {
      auto data = engine->Get(std::string(request->key));
      if (!data.ok()) return EncodeErrorResponse(data.status());
      return EncodeDataResponse(*data);
    }
    case Method::kGetVersion: {
      auto data = engine->GetVersion(request->id);
      if (!data.ok()) return EncodeErrorResponse(data.status());
      return EncodeDataResponse(*data);
    }
    case Method::kHasVersion:
      return EncodeHasResponse(engine->HasVersion(request->id));
    case Method::kVersions:
      return EncodeVersionsResponse(
          engine->Versions(std::string(request->key)));
    case Method::kListAllVersions:
      return EncodeEntriesResponse(engine->ListAllVersions());
    case Method::kDeleteVersion: {
      auto freed = engine->DeleteVersion(request->id);
      if (!freed.ok()) return EncodeErrorResponse(freed.status());
      return EncodeFreedResponse(*freed);
    }
    case Method::kStats:
      return EncodeStatsResponse(engine->stats());
    case Method::kName:
      return EncodeDataResponse(engine->Name());
    case Method::kReadCost:
      return EncodeCostResponse(engine->ReadCost(request->bytes));
    case Method::kMigrateBatch: {
      std::vector<MigrateKeyVersions> batch;
      batch.reserve(request->migrate.size());
      for (const Request::MigrateEntry& entry : request->migrate) {
        MigrateKeyVersions kv;
        kv.key.assign(entry.key);
        kv.versions.reserve(entry.versions.size());
        for (const auto& [id, data] : entry.versions) {
          kv.versions.emplace_back(id, std::string(data));
        }
        batch.push_back(std::move(kv));
      }
      auto result = engine->MigrateBatch(batch);
      if (!result.ok()) return EncodeErrorResponse(result.status());
      return EncodeMigrateResponse(*result);
    }
  }
  return EncodeErrorResponse(
      Status::Unimplemented("unknown binary storage opcode"));
}

// --- chunk streaming --------------------------------------------------------

const Chunker& WireChunker() {
  // Larger than the storage engine's chunking: the wire moves whole
  // artifacts, so the sweet spot trades per-frame overhead against dedup
  // granularity at transfer sizes (64 KiB average).
  static const GearChunker chunker(16u << 10, 64u << 10, 256u << 10);
  return chunker;
}

std::string EncodeChunkEnd(uint64_t total_bytes, uint64_t chunk_count,
                           const Hash256& manifest) {
  std::string out;
  PutVarint(&out, total_bytes);
  PutVarint(&out, chunk_count);
  out.append(reinterpret_cast<const char*>(manifest.bytes.data()),
             manifest.bytes.size());
  return out;
}

Status DecodeChunkEnd(std::string_view payload, uint64_t* total_bytes,
                      uint64_t* chunk_count, Hash256* manifest) {
  if (!GetVarint(&payload, total_bytes) ||
      !GetVarint(&payload, chunk_count) ||
      payload.size() != manifest->bytes.size()) {
    return Status::Corruption("malformed chunk-end frame");
  }
  std::memcpy(manifest->bytes.data(), payload.data(),
              manifest->bytes.size());
  return Status::Ok();
}

Hash256 WireChunkAddress(std::string_view chunk) {
  return Chunk::ComputeHash(ChunkType::kData, chunk);
}

Hash256 WireChunkCache::Add(std::string_view chunk) {
  std::lock_guard<std::mutex> lock(mu_);
  Hash256 address = store_.Put(ChunkType::kData, chunk);
  retained_.push_back(address);
  // Evict oldest references once over capacity — by physical bytes, and also
  // by reference count: under heavy dedup every Add is a refcount bump with
  // no physical growth, so a bytes-only cap would let retained_ grow without
  // bound. Deduped entries hold extra refs on the same chunk, so physical
  // bytes only drop when the last retained reference goes.
  const size_t max_entries =
      std::max<size_t>(1, max_bytes_ / kMinRetainedChunkBytes);
  while ((store_.stats().physical_bytes > max_bytes_ ||
          retained_.size() - evict_at_ > max_entries) &&
         evict_at_ < retained_.size()) {
    (void)store_.Release(retained_[evict_at_++]);
  }
  if (evict_at_ > 0 &&
      (evict_at_ == retained_.size() || evict_at_ >= max_entries)) {
    retained_.erase(retained_.begin(),
                    retained_.begin() + static_cast<ptrdiff_t>(evict_at_));
    evict_at_ = 0;
  }
  return address;
}

ChunkStoreStats WireChunkCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return store_.stats();
}

Status StreamAssembler::OnChunk(uint64_t id, std::string_view chunk) {
  Stream& stream = streams_[id];
  if (stream.data.size() + chunk.size() > max_total_) {
    streams_.erase(id);
    return Status::Corruption("chunk stream exceeds the frame payload limit");
  }
  const Hash256 address =
      cache_ != nullptr ? cache_->Add(chunk) : WireChunkAddress(chunk);
  stream.manifest.Update(address.bytes.data(), address.bytes.size());
  stream.data.append(chunk);
  stream.chunks += 1;
  return Status::Ok();
}

StatusOr<std::string> StreamAssembler::OnEnd(uint64_t id,
                                             std::string_view end_payload) {
  uint64_t total_bytes = 0;
  uint64_t chunk_count = 0;
  Hash256 manifest;
  MLCASK_RETURN_IF_ERROR(
      DecodeChunkEnd(end_payload, &total_bytes, &chunk_count, &manifest));
  auto it = streams_.find(id);
  if (it == streams_.end()) {
    return Status::Corruption("chunk-end frame without a chunk stream");
  }
  Stream stream = std::move(it->second);
  streams_.erase(it);
  if (stream.chunks != chunk_count ||
      stream.data.size() != total_bytes ||
      stream.manifest.Finish() != manifest) {
    return Status::Corruption(
        "chunk stream failed integrity check (manifest mismatch)");
  }
  return std::move(stream.data);
}

}  // namespace mlcask::storage::wire
