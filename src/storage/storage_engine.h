#ifndef MLCASK_STORAGE_STORAGE_ENGINE_H_
#define MLCASK_STORAGE_STORAGE_ENGINE_H_

#include <algorithm>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/sha256.h"
#include "common/status.h"
#include "storage/deferred.h"

namespace mlcask::storage {

/// Cost model for data preparation and transfer. The paper's "storage time"
/// (Sec. VII-B) is exactly this: time to materialize outputs into the backing
/// store. ForkBase pays chunking + immutable-commit overhead but only
/// transfers bytes that are new; folder archival transfers everything but has
/// negligible per-op cost.
struct StorageTimeModel {
  double per_put_latency_s = 0.0;
  double write_mb_per_s = 200.0;
  double read_mb_per_s = 400.0;
  /// Cost per *logical* MB of hashing/chunking work (ForkBase only).
  double chunking_s_per_mb = 0.0;

  double WriteSeconds(uint64_t transferred_bytes,
                      uint64_t logical_bytes) const {
    return per_put_latency_s +
           static_cast<double>(transferred_bytes) / (write_mb_per_s * 1e6) +
           chunking_s_per_mb * static_cast<double>(logical_bytes) / 1e6;
  }
  double ReadSeconds(uint64_t bytes) const {
    return static_cast<double>(bytes) / (read_mb_per_s * 1e6);
  }
};

/// One write of a multi-key batch (StorageEngine::PutMany).
struct PutRequest {
  std::string key;
  std::string data;
};

/// Result of storing one object version.
struct PutResult {
  Hash256 id;                      ///< Content id of this object version.
  uint64_t logical_bytes = 0;      ///< Bytes the client wrote.
  uint64_t new_physical_bytes = 0; ///< Bytes the store actually added.
  double storage_time_s = 0;       ///< Modeled data-prep/transfer time.
  bool deduplicated = false;       ///< True if fully dedup'd (no new bytes).
};

/// One key's full version history inside a shard-rebalance batch, oldest
/// first. `versions` carries (expected content id, payload): replaying the
/// payloads in order onto an engine holding no prior versions of `key`
/// reproduces the ids bit-for-bit, because ids derive from the key, the
/// content, and the version ordinal — the invariant live migration rides on.
struct MigrateKeyVersions {
  std::string key;
  std::vector<std::pair<Hash256, std::string>> versions;
};

/// Outcome of one MigrateBatch call. `skipped_versions` counts versions the
/// destination already held — the visible signature of a migration that
/// RESUMED past its durable cursor instead of restarting from scratch.
struct MigrateBatchResult {
  uint64_t applied_versions = 0;
  uint64_t skipped_versions = 0;
};

/// Cumulative accounting across an engine's lifetime. `physical_bytes` is the
/// paper's cumulative storage size (CSS); `storage_time_s` accumulates into
/// cumulative storage time (CST).
struct EngineStats {
  uint64_t logical_bytes = 0;
  uint64_t physical_bytes = 0;
  double storage_time_s = 0;
  uint64_t puts = 0;
  uint64_t gets = 0;
};

/// A versioned named-object store. Each Put on a key appends a new immutable
/// version; versions are addressable by content id. This is the interface the
/// dataset/library/pipeline repositories ride on, and the axis along which
/// MLCask (ForkBase engine) differs from ModelDB/MLflow (folder archival).
///
/// Thread safety: implementations must tolerate concurrent calls from many
/// worker threads (the parallel ExecutionCore issues Put/Get from its pool).
/// `stats()` returns a consistent snapshot; totals observed after all
/// writers have joined equal the serial sums exactly.
class StorageEngine {
 public:
  virtual ~StorageEngine() = default;

  /// Stores a new version of `key`.
  virtual StatusOr<PutResult> Put(const std::string& key,
                                  std::string_view data) = 0;

  /// Stores a batch of writes, one new version per request, returning one
  /// PutResult per request in order. The default implementation applies the
  /// puts serially with no atomicity guarantee (a mid-batch failure leaves
  /// earlier writes in place). Distributed engines override this with an
  /// all-or-nothing protocol: ShardedStorageEngine runs a two-phase commit
  /// across the participating shards, which is how merge winners are
  /// persisted atomically (see sharded_engine.h).
  virtual StatusOr<std::vector<PutResult>> PutMany(
      const std::vector<PutRequest>& batch) {
    std::vector<PutResult> results;
    results.reserve(batch.size());
    for (const PutRequest& request : batch) {
      MLCASK_ASSIGN_OR_RETURN(PutResult result, Put(request.key, request.data));
      results.push_back(result);
    }
    return results;
  }

  /// Reads the latest version of `key`.
  virtual StatusOr<std::string> Get(const std::string& key) = 0;

  /// Reads a specific version by content id.
  virtual StatusOr<std::string> GetVersion(const Hash256& id) = 0;

  /// True if a version with this content id exists.
  virtual bool HasVersion(const Hash256& id) const = 0;

  /// All version ids of `key`, oldest first.
  virtual std::vector<Hash256> Versions(const std::string& key) const = 0;

  /// Every stored (key, version id) pair, in unspecified order. Used by
  /// retention/garbage collection to find unreferenced artifacts.
  virtual std::vector<std::pair<std::string, Hash256>> ListAllVersions()
      const = 0;

  /// Deletes one object version, returning the physical bytes actually
  /// freed (on a de-duplicating engine, bytes still referenced by other
  /// versions are not freed). NotFound if the id is unknown.
  virtual StatusOr<uint64_t> DeleteVersion(const Hash256& id) = 0;

  /// Applies a shard-rebalance batch: for each entry, appends the versions
  /// this engine does not already hold, in order, verifying every resulting
  /// id against the source's. Idempotent by construction — an entry whose
  /// prefix already landed (a crash between the copy and the cursor write)
  /// is skipped, never duplicated — so migration drivers may replay batches
  /// freely after a failure. The destination may even hold MORE versions
  /// than the batch carries: a crash after the cursor write routes new
  /// writes of the key to this engine before the replayed batch arrives,
  /// so the batch is then a strict prefix of local history and is skipped
  /// whole. Internal error only when the overlapping prefix CONFLICTS (an
  /// id mismatch means the key was written outside the migration protocol
  /// and the copy must not proceed).
  virtual StatusOr<MigrateBatchResult> MigrateBatch(
      const std::vector<MigrateKeyVersions>& batch) {
    MigrateBatchResult result;
    for (const MigrateKeyVersions& entry : batch) {
      const std::vector<Hash256> existing = Versions(entry.key);
      const size_t overlap = std::min(existing.size(), entry.versions.size());
      for (size_t i = 0; i < overlap; ++i) {
        if (existing[i] != entry.versions[i].first) {
          return Status::Internal("migration id mismatch on existing '" +
                                  entry.key + "' version " +
                                  std::to_string(i) + ": have " +
                                  existing[i].ShortHex() + ", batch says " +
                                  entry.versions[i].first.ShortHex());
        }
      }
      if (existing.size() >= entry.versions.size()) {
        result.skipped_versions += entry.versions.size();
        continue;
      }
      result.skipped_versions += existing.size();
      for (size_t i = existing.size(); i < entry.versions.size(); ++i) {
        MLCASK_ASSIGN_OR_RETURN(PutResult put,
                                Put(entry.key, entry.versions[i].second));
        if (put.id != entry.versions[i].first) {
          return Status::Internal(
              "migrated version of '" + entry.key + "' landed as " +
              put.id.ShortHex() + " but the source recorded " +
              entry.versions[i].first.ShortHex() +
              " (version-ordinal divergence)");
        }
        ++result.applied_versions;
      }
    }
    return result;
  }

  virtual EngineStats stats() const = 0;
  virtual std::string Name() const = 0;

  /// Modeled seconds spent reading `bytes` back (charged by callers that
  /// account read traffic; Get itself also accumulates it into stats()).
  virtual double ReadCost(uint64_t bytes) const = 0;

  /// ## Async surface (fan-out callers)
  ///
  /// Issue-now-wait-later variants of the calls the sharded router fans out
  /// across shards (2PC prepare/apply, replicated puts, broadcast version
  /// probes): issuing one per shard before Get()ing any overlaps the round
  /// trips. The defaults below execute the blocking call INLINE at issue
  /// time and hand back a ready Deferred — correct (and deterministic) for
  /// local engines, zero burden on implementors. RemoteStorageEngine
  /// overrides them on Transport::AsyncCall so the request is on the wire
  /// when the Deferred exists; a decorator wrapping another engine should
  /// forward these along with the blocking calls, or its children fall back
  /// to serial issue.
  virtual Deferred<PutResult> AsyncPut(const std::string& key,
                                       std::string_view data) {
    return Deferred<PutResult>(Put(key, data));
  }
  virtual Deferred<std::vector<PutResult>> AsyncPutMany(
      const std::vector<PutRequest>& batch) {
    return Deferred<std::vector<PutResult>>(PutMany(batch));
  }
  virtual Deferred<std::string> AsyncGetVersion(const Hash256& id) {
    return Deferred<std::string>(GetVersion(id));
  }
  virtual Deferred<bool> AsyncHasVersion(const Hash256& id) const {
    return Deferred<bool>(StatusOr<bool>(HasVersion(id)));
  }
  virtual Deferred<uint64_t> AsyncDeleteVersion(const Hash256& id) {
    return Deferred<uint64_t>(DeleteVersion(id));
  }
  virtual Deferred<MigrateBatchResult> AsyncMigrateBatch(
      const std::vector<MigrateKeyVersions>& batch) {
    return Deferred<MigrateBatchResult>(MigrateBatch(batch));
  }
};

}  // namespace mlcask::storage

#endif  // MLCASK_STORAGE_STORAGE_ENGINE_H_
