#ifndef MLCASK_STORAGE_TRANSPORT_H_
#define MLCASK_STORAGE_TRANSPORT_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <string_view>

#include "common/status.h"

namespace mlcask::storage {

/// Cumulative message accounting of one transport endpoint.
struct TransportStats {
  uint64_t calls = 0;           ///< Round trips completed.
  uint64_t request_bytes = 0;   ///< Serialized request payload, total.
  uint64_t response_bytes = 0;  ///< Serialized response payload, total.
};

/// A synchronous request/response message channel. The distributed storage
/// stack (RemoteStorageEngine <-> StorageEngineService) moves ONLY
/// serialized byte strings through this interface, so swapping the loopback
/// implementation for a socket one changes no storage code: the wire format
/// is already exercised on every call.
///
/// Thread safety: Call() may be invoked concurrently from many workers
/// (storage engines are themselves concurrent); implementations must
/// tolerate that.
class Transport {
 public:
  virtual ~Transport() = default;

  /// Sends one serialized request and blocks for the serialized response.
  /// Transport-level failures (peer gone, channel closed) surface as error
  /// statuses; application-level errors travel INSIDE the response payload.
  virtual StatusOr<std::string> Call(std::string_view request) = 0;

  virtual TransportStats stats() const = 0;
  virtual std::string Name() const = 0;
};

/// In-process transport: delivers each request to a handler function and
/// returns its response, counting both directions' bytes. The handler side
/// still sees nothing but the serialized request — the loopback is a real
/// serialization boundary, just with a zero-latency wire.
class LoopbackTransport : public Transport {
 public:
  using Handler = std::function<std::string(std::string_view)>;

  explicit LoopbackTransport(Handler handler) : handler_(std::move(handler)) {}

  StatusOr<std::string> Call(std::string_view request) override {
    if (handler_ == nullptr) {
      return Status::FailedPrecondition("loopback transport has no handler");
    }
    std::string response = handler_(request);
    calls_.fetch_add(1, std::memory_order_relaxed);
    request_bytes_.fetch_add(request.size(), std::memory_order_relaxed);
    response_bytes_.fetch_add(response.size(), std::memory_order_relaxed);
    return response;
  }

  TransportStats stats() const override {
    TransportStats s;
    s.calls = calls_.load(std::memory_order_relaxed);
    s.request_bytes = request_bytes_.load(std::memory_order_relaxed);
    s.response_bytes = response_bytes_.load(std::memory_order_relaxed);
    return s;
  }

  std::string Name() const override { return "loopback"; }

 private:
  Handler handler_;
  std::atomic<uint64_t> calls_{0};
  std::atomic<uint64_t> request_bytes_{0};
  std::atomic<uint64_t> response_bytes_{0};
};

}  // namespace mlcask::storage

#endif  // MLCASK_STORAGE_TRANSPORT_H_
