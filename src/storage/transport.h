#ifndef MLCASK_STORAGE_TRANSPORT_H_
#define MLCASK_STORAGE_TRANSPORT_H_

#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <string_view>

#include "common/status.h"

namespace mlcask::storage {

/// Cumulative message accounting of one transport endpoint.
struct TransportStats {
  uint64_t calls = 0;           ///< Round trips completed.
  uint64_t request_bytes = 0;   ///< Serialized request payload, total.
  uint64_t response_bytes = 0;  ///< Serialized response payload, total.
};

/// A synchronous request/response message channel. The distributed storage
/// stack (RemoteStorageEngine <-> StorageEngineService) moves ONLY
/// serialized byte strings through this interface, so swapping the loopback
/// implementation for a socket one changes no storage code: the wire format
/// is already exercised on every call.
///
/// Thread safety: Call() may be invoked concurrently from many workers
/// (storage engines are themselves concurrent); implementations must
/// tolerate that.
class Transport {
 public:
  virtual ~Transport() = default;

  /// Sends one serialized request and blocks for the serialized response.
  /// Transport-level failures (peer gone, channel closed) surface as error
  /// statuses; application-level errors travel INSIDE the response payload.
  virtual StatusOr<std::string> Call(std::string_view request) = 0;

  virtual TransportStats stats() const = 0;
  virtual std::string Name() const = 0;
};

/// In-process transport: delivers each request to a handler function and
/// returns its response, counting both directions' bytes. The handler side
/// still sees nothing but the serialized request — the loopback is a real
/// serialization boundary, just with a zero-latency wire.
///
/// stats() returns a CONSISTENT snapshot: all three counters are updated
/// together under one mutex after each round trip, so a reader racing
/// in-flight calls (e.g. polling telemetry while shard services apply a
/// batched PutMany) never observes a call counted without its bytes, or
/// request bytes from a newer call than the response bytes
/// (tests/test_transport.cc hammers this invariant). Independent atomics
/// would tear: each counter individually consistent, the triple not.
class LoopbackTransport : public Transport {
 public:
  using Handler = std::function<std::string(std::string_view)>;

  explicit LoopbackTransport(Handler handler) : handler_(std::move(handler)) {}

  StatusOr<std::string> Call(std::string_view request) override {
    if (handler_ == nullptr) {
      return Status::FailedPrecondition("loopback transport has no handler");
    }
    // The handler runs outside the stats lock: counting must not serialize
    // the engine work behind concurrent calls.
    std::string response = handler_(request);
    {
      std::lock_guard<std::mutex> lock(stats_mu_);
      stats_.calls += 1;
      stats_.request_bytes += request.size();
      stats_.response_bytes += response.size();
    }
    return response;
  }

  TransportStats stats() const override {
    std::lock_guard<std::mutex> lock(stats_mu_);
    return stats_;
  }

  std::string Name() const override { return "loopback"; }

 private:
  Handler handler_;
  mutable std::mutex stats_mu_;
  TransportStats stats_;
};

}  // namespace mlcask::storage

#endif  // MLCASK_STORAGE_TRANSPORT_H_
