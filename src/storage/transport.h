#ifndef MLCASK_STORAGE_TRANSPORT_H_
#define MLCASK_STORAGE_TRANSPORT_H_

#include <cstdint>
#include <functional>
#include <future>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "storage/deadline.h"
#include "storage/deferred.h"

namespace mlcask::storage {

/// Cumulative message accounting of one transport endpoint.
struct TransportStats {
  uint64_t calls = 0;           ///< Round trips completed successfully.
  uint64_t request_bytes = 0;   ///< Serialized request payload, total.
  uint64_t response_bytes = 0;  ///< Serialized response payload, total.
  uint64_t transport_errors = 0;  ///< Round trips failed below the app layer.
  uint64_t chunk_frames_sent = 0;      ///< Streamed-transfer frames out.
  uint64_t chunk_frames_received = 0;  ///< Streamed-transfer frames in.
  /// High-water mark of the frame receive buffer. With chunk streaming this
  /// stays O(chunk size) even for multi-MiB values — the acceptance bound
  /// the transport tests assert. 0 for transports without a wire.
  uint64_t peak_decoder_buffer_bytes = 0;
  /// Requests that carried a deadline stamp (remaining-budget ms).
  uint64_t deadline_stamped_calls = 0;
  /// The stamps themselves, in issue order (bounded log — first
  /// kMaxHopBudgetSamples calls). This is the accounting ledger the
  /// deadline-shrink tests read: a coordinator fanning three sequential 2PC
  /// phases through one transport must leave a strictly decreasing sequence
  /// here regardless of how fast the wall clock ran.
  std::vector<uint64_t> hop_budgets_ms;

  static constexpr size_t kMaxHopBudgetSamples = 256;
};

// TransportFuture (the completion handle AsyncCall returns) lives in
// storage/deferred.h together with the typed Deferred<T> wrapper.

/// Serialized-request handler: the server side of the RPC surface. Sees
/// nothing but bytes; returns the serialized response.
using TransportHandler = std::function<std::string(std::string_view)>;

/// A multiplexed request/response message channel — the CLIENT session half
/// of the transport API. The distributed storage stack
/// (RemoteStorageEngine <-> StorageEngineService) moves ONLY serialized byte
/// strings through this interface, so swapping the loopback implementation
/// for a socket one changes no storage code: the wire format is already
/// exercised on every call.
///
/// The surface is deliberately small:
///   Call       blocking round trip (the PR-3 compatibility surface)
///   AsyncCall  fire the request now, wait later — N AsyncCalls issued
///              before the first wait overlap their wire latency, which is
///              what the sharded engine's fan-outs (2PC phases, broadcast
///              probes, replicated puts) are built on
///   CallMany   batch convenience over AsyncCall: issue all, collect all
///
/// Thread safety: all methods may be invoked concurrently from many workers
/// (storage engines are themselves concurrent); implementations must
/// tolerate that.
class Transport {
 public:
  virtual ~Transport() = default;

  /// Sends one serialized request and blocks for the serialized response.
  /// Transport-level failures (peer gone, channel closed, deadline) surface
  /// as error statuses; application-level errors travel INSIDE the response
  /// payload.
  virtual StatusOr<std::string> Call(std::string_view request) = 0;

  /// Sends one serialized request WITHOUT waiting. The returned future
  /// resolves when the matching response arrives (correlation is the
  /// transport's job — socket framing carries per-request ids). The default
  /// implementation degrades to a synchronous Call resolved inline, which
  /// is exactly right for zero-latency in-process transports and keeps
  /// their execution deterministic.
  virtual TransportFuture AsyncCall(std::string_view request) {
    std::promise<StatusOr<std::string>> promise;
    promise.set_value(Call(request));
    return promise.get_future();
  }

  /// Issues every request before collecting any response, so the batch's
  /// round trips overlap on a real wire. Results come back in request order.
  virtual std::vector<StatusOr<std::string>> CallMany(
      const std::vector<std::string>& requests) {
    std::vector<TransportFuture> futures;
    futures.reserve(requests.size());
    for (const std::string& request : requests) {
      futures.push_back(AsyncCall(request));
    }
    std::vector<StatusOr<std::string>> responses;
    responses.reserve(requests.size());
    for (TransportFuture& future : futures) {
      responses.push_back(future.get());
    }
    return responses;
  }

  virtual TransportStats stats() const = 0;
  virtual std::string Name() const = 0;

  /// The deadline this transport suggests for waiting on one AsyncCall
  /// future (milliseconds; 0 = none). Typed waiters (Deferred) bound their
  /// Get() with it so a connected-but-wedged peer cannot hang a fan-out.
  /// Zero-latency in-process transports have nothing to bound.
  virtual uint64_t call_timeout_ms() const { return 0; }

  /// Wire-format version stamped on outgoing frames, for transports with a
  /// framed wire (0 = not frame-based, e.g. loopback). Codec negotiation
  /// calls set_wire_version to drop a session to the JSON-era version when
  /// the peer answers binary requests with Unimplemented; the defaults make
  /// both no-ops for wireless transports.
  virtual uint8_t wire_version() const { return 0; }
  virtual void set_wire_version(uint8_t /*version*/) {}
};

/// The SERVER half of the transport API: binds an endpoint, pumps incoming
/// requests through a TransportHandler, ships the responses back. Hosts that
/// outlive a single call (the mlcask_server binary, in-test socket servers)
/// program against this instead of transport-specific types.
class TransportServer {
 public:
  virtual ~TransportServer() = default;

  /// Starts serving `handler` in the background and returns immediately.
  /// The handler may be invoked concurrently (one caller per connection).
  virtual Status Serve(TransportHandler handler) = 0;

  /// Stops accepting, drains connections, joins worker threads. Idempotent;
  /// also invoked by the destructor.
  virtual void Shutdown() = 0;

  /// The bound endpoint spec ("unix:/tmp/s.sock", "tcp:127.0.0.1:43117" —
  /// with the real port when an ephemeral one was requested).
  virtual std::string endpoint() const = 0;
};

/// In-process transport: delivers each request to a handler function and
/// returns its response, counting both directions' bytes. The handler side
/// still sees nothing but the serialized request — the loopback is a real
/// serialization boundary, just with a zero-latency wire. AsyncCall resolves
/// inline (base default): loopback deployments stay bit-deterministic, which
/// the sharded equivalence tests rely on.
///
/// stats() returns a CONSISTENT snapshot: all counters are updated together
/// under one mutex after each round trip, so a reader racing in-flight calls
/// (e.g. polling telemetry while shard services apply a batched PutMany)
/// never observes a call counted without its bytes, or request bytes from a
/// newer call than the response bytes (tests/test_transport.cc hammers this
/// invariant). Independent atomics would tear: each counter individually
/// consistent, the triple not.
class LoopbackTransport : public Transport {
 public:
  using Handler = TransportHandler;

  explicit LoopbackTransport(Handler handler) : handler_(std::move(handler)) {}

  StatusOr<std::string> Call(std::string_view request) override {
    if (handler_ == nullptr) {
      return Status::FailedPrecondition("loopback transport has no handler");
    }
    // The handler runs outside the stats lock: counting must not serialize
    // the engine work behind concurrent calls.
    const uint64_t deadline_ms = PeekRequestDeadlineMs(request);
    std::string response = handler_(request);
    {
      std::lock_guard<std::mutex> lock(stats_mu_);
      stats_.calls += 1;
      stats_.request_bytes += request.size();
      stats_.response_bytes += response.size();
      if (deadline_ms > 0) {
        stats_.deadline_stamped_calls += 1;
        if (stats_.hop_budgets_ms.size() <
            TransportStats::kMaxHopBudgetSamples) {
          stats_.hop_budgets_ms.push_back(deadline_ms);
        }
      }
    }
    return response;
  }

  TransportStats stats() const override {
    std::lock_guard<std::mutex> lock(stats_mu_);
    return stats_;
  }

  std::string Name() const override { return "loopback"; }

 private:
  Handler handler_;
  mutable std::mutex stats_mu_;
  TransportStats stats_;
};

}  // namespace mlcask::storage

#endif  // MLCASK_STORAGE_TRANSPORT_H_
