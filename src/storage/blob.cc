#include "storage/blob.h"

#include <cstring>

namespace mlcask::storage {

namespace {

constexpr size_t kIndexEntrySize = 32 + 8;  // child hash + payload length

void AppendU64(std::string* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<char>(v >> (8 * i)));
  }
}

uint64_t ReadU64(const char* p) {
  uint64_t v = 0;
  for (int i = 7; i >= 0; --i) {
    v = (v << 8) | static_cast<uint8_t>(p[i]);
  }
  return v;
}

}  // namespace

BlobPlan PlanBlob(const Chunker& chunker, std::string_view data) {
  BlobPlan plan;
  plan.pieces = chunker.Split(data);
  plan.piece_hashes.reserve(plan.pieces.size());
  plan.index.reserve(plan.pieces.size() * kIndexEntrySize);
  for (const auto& [off, len] : plan.pieces) {
    Hash256 h = Chunk::ComputeHash(ChunkType::kData, data.substr(off, len));
    plan.index.append(reinterpret_cast<const char*>(h.bytes.data()), 32);
    AppendU64(&plan.index, len);
    plan.piece_hashes.push_back(h);
  }
  plan.index_hash = Chunk::ComputeHash(ChunkType::kIndex, plan.index);
  return plan;
}

BlobWriteInfo CommitBlob(ChunkStore* store, const BlobPlan& plan,
                         std::string_view data) {
  BlobWriteInfo info;
  for (size_t i = 0; i < plan.pieces.size(); ++i) {
    const auto& [off, len] = plan.pieces[i];
    bool existed = store->Contains(plan.piece_hashes[i]);
    store->PutPrehashed(plan.piece_hashes[i], ChunkType::kData,
                        data.substr(off, len));
    if (existed) {
      info.dedup_bytes += len;
    } else {
      info.new_physical_bytes += len;
    }
  }
  bool index_existed = store->Contains(plan.index_hash);
  info.ref.root =
      store->PutPrehashed(plan.index_hash, ChunkType::kIndex, plan.index);
  if (index_existed) {
    info.dedup_bytes += plan.index.size();
  } else {
    info.new_physical_bytes += plan.index.size();
  }
  info.ref.size = data.size();
  info.ref.num_chunks = static_cast<uint32_t>(plan.pieces.size());
  return info;
}

BlobWriteInfo WriteBlob(ChunkStore* store, const Chunker& chunker,
                        std::string_view data) {
  return CommitBlob(store, PlanBlob(chunker, data), data);
}

namespace {

Status ParseIndex(const Chunk& index_chunk,
                  std::vector<std::pair<Hash256, uint64_t>>* entries) {
  const std::string& index = index_chunk.data();
  if (index_chunk.type() != ChunkType::kIndex) {
    return Status::Corruption("blob root is not an index chunk");
  }
  if (index.size() % kIndexEntrySize != 0) {
    return Status::Corruption("blob index has truncated entry");
  }
  size_t n = index.size() / kIndexEntrySize;
  entries->reserve(n);
  for (size_t i = 0; i < n; ++i) {
    const char* p = index.data() + i * kIndexEntrySize;
    Hash256 h;
    std::memcpy(h.bytes.data(), p, 32);
    uint64_t len = ReadU64(p + 32);
    entries->emplace_back(h, len);
  }
  return Status::Ok();
}

}  // namespace

StatusOr<std::string> ReadBlob(const ChunkStore& store, const BlobRef& ref) {
  MLCASK_ASSIGN_OR_RETURN(const Chunk* index_chunk, store.Get(ref.root));
  std::vector<std::pair<Hash256, uint64_t>> entries;
  MLCASK_RETURN_IF_ERROR(ParseIndex(*index_chunk, &entries));
  std::string out;
  out.reserve(ref.size);
  for (const auto& [hash, len] : entries) {
    MLCASK_ASSIGN_OR_RETURN(const Chunk* c, store.Get(hash));
    if (c->size() != len) {
      return Status::Corruption("blob chunk length mismatch for " +
                                hash.ShortHex());
    }
    out += c->data();
  }
  if (out.size() != ref.size) {
    return Status::Corruption("blob size mismatch: expected " +
                              std::to_string(ref.size) + " got " +
                              std::to_string(out.size()));
  }
  return out;
}

StatusOr<std::vector<Hash256>> ListBlobChunks(const ChunkStore& store,
                                              const BlobRef& ref) {
  MLCASK_ASSIGN_OR_RETURN(const Chunk* index_chunk, store.Get(ref.root));
  std::vector<std::pair<Hash256, uint64_t>> entries;
  MLCASK_RETURN_IF_ERROR(ParseIndex(*index_chunk, &entries));
  std::vector<Hash256> out;
  out.reserve(entries.size());
  for (const auto& [hash, len] : entries) {
    (void)len;
    out.push_back(hash);
  }
  return out;
}

Status ReleaseBlob(ChunkStore* store, const BlobRef& ref) {
  MLCASK_ASSIGN_OR_RETURN(std::vector<Hash256> chunks,
                          ListBlobChunks(*store, ref));
  for (const Hash256& h : chunks) {
    MLCASK_RETURN_IF_ERROR(store->Release(h));
  }
  return store->Release(ref.root);
}

}  // namespace mlcask::storage
