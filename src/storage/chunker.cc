#include "storage/chunker.h"

#include "common/logging.h"
#include "common/rng.h"

namespace mlcask::storage {

FixedChunker::FixedChunker(size_t chunk_size) : chunk_size_(chunk_size) {
  MLCASK_CHECK_MSG(chunk_size_ > 0, "chunk size must be positive");
}

std::vector<std::pair<size_t, size_t>> FixedChunker::Split(
    std::string_view data) const {
  std::vector<std::pair<size_t, size_t>> out;
  for (size_t off = 0; off < data.size(); off += chunk_size_) {
    out.emplace_back(off, std::min(chunk_size_, data.size() - off));
  }
  return out;
}

namespace {

bool IsPowerOfTwo(size_t v) { return v != 0 && (v & (v - 1)) == 0; }

std::vector<uint64_t> MakeGearTable() {
  // Deterministic gear table so chunk boundaries (and therefore every content
  // address in the system) are stable across runs and platforms.
  std::vector<uint64_t> table(256);
  Pcg32 rng(/*seed=*/0x6765617274616231ULL);  // "geartab1"
  for (auto& v : table) v = rng.NextU64();
  return table;
}

}  // namespace

GearChunker::GearChunker(size_t min_size, size_t avg_size, size_t max_size)
    : min_size_(min_size),
      avg_size_(avg_size),
      max_size_(max_size),
      gear_table_(MakeGearTable()) {
  MLCASK_CHECK_MSG(IsPowerOfTwo(avg_size_), "avg_size must be a power of two");
  MLCASK_CHECK_MSG(min_size_ >= 1 && min_size_ <= avg_size_,
                   "need 1 <= min_size <= avg_size");
  MLCASK_CHECK_MSG(max_size_ >= avg_size_, "need max_size >= avg_size");
  // A boundary fires when the top log2(avg_size) bits of the rolling hash are
  // zero, giving an expected chunk length of avg_size.
  uint64_t bits = 0;
  for (size_t v = avg_size_; v > 1; v >>= 1) ++bits;
  mask_ = ~((~uint64_t{0}) >> bits);
}

std::vector<std::pair<size_t, size_t>> GearChunker::Split(
    std::string_view data) const {
  std::vector<std::pair<size_t, size_t>> out;
  size_t start = 0;
  uint64_t hash = 0;
  size_t i = 0;
  while (i < data.size()) {
    hash = (hash << 1) + gear_table_[static_cast<uint8_t>(data[i])];
    ++i;
    size_t len = i - start;
    bool boundary = false;
    if (len >= max_size_) {
      boundary = true;
    } else if (len >= min_size_ && (hash & mask_) == 0) {
      boundary = true;
    }
    if (boundary) {
      out.emplace_back(start, len);
      start = i;
      hash = 0;
    }
  }
  if (start < data.size()) {
    out.emplace_back(start, data.size() - start);
  }
  return out;
}

}  // namespace mlcask::storage
