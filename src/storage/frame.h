#ifndef MLCASK_STORAGE_FRAME_H_
#define MLCASK_STORAGE_FRAME_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "common/status.h"

namespace mlcask::storage {

/// Wire frame carrying one multiplexed RPC message. Layout (little-endian),
/// 14 header bytes followed by the payload:
///
///   byte  0      wire-format version (kWireVersion)
///   byte  1      frame type: 0 = data, 1 = transport error
///   bytes 2..9   correlation id (uint64) — pairs a response to its request
///   bytes 10..13 payload length (uint32)
///
/// The HEADER layout is frozen forever; the version byte governs only the
/// payload semantics. That way a peer speaking a future version still parses
/// our headers, and we can answer its (to us unreadable) requests with a
/// correctly-correlated Unimplemented error frame instead of mis-parsing the
/// stream — the failure is a clear status, never silent corruption.
inline constexpr uint8_t kWireVersion = 1;

/// Frames above this payload size are rejected as corrupt before any
/// allocation: a garbled length field must not make the reader try to buffer
/// gigabytes. Generous for real traffic (merge winners are a few MiB hex).
inline constexpr uint32_t kMaxFramePayload = 256u << 20;  // 256 MiB

enum class FrameType : uint8_t {
  kData = 0,
  /// Payload is "<code>:<message>" describing a transport-level Status the
  /// peer could not express as an application response (e.g. version skew).
  kError = 1,
};

struct Frame {
  FrameType type = FrameType::kData;
  uint64_t id = 0;
  std::string payload;
};

/// Appends one encoded frame to `out`. `version` is overridable so tests can
/// forge mismatched peers; production callers never pass it.
void AppendFrame(std::string* out, FrameType type, uint64_t id,
                 std::string_view payload, uint8_t version = kWireVersion);

/// Encodes a transport-level error as an error frame payload / decodes it
/// back. A payload that does not parse decodes as Corruption.
std::string EncodeErrorPayload(const Status& status);
Status DecodeErrorPayload(std::string_view payload);

/// Incremental frame parser for one byte stream. Feed() appends raw bytes;
/// Next() extracts complete frames. All failure modes surface as statuses —
/// the decoder never throws, never over-reads, and never buffers an
/// oversized frame:
///
///   truncated   Next() returns false (need more bytes); Finish() at stream
///               end reports Corruption if a partial frame is buffered
///   oversized   length field beyond max_payload -> Corruption
///   bad type    unknown frame type -> Corruption
///   version     mismatched version byte -> Unimplemented, with out->id
///               still filled from the (frozen-layout) header so a server
///               can answer the right request with an error frame
///
/// Corruption errors are STICKY — the stream is unrecoverable and further
/// Next() calls return the same error. The version-mismatch Unimplemented
/// is NOT: the offending frame is consumed whole (its length field is
/// trustworthy, the header layout being frozen) and the stream stays
/// decodable, so one future-version message never takes down a session.
class FrameDecoder {
 public:
  explicit FrameDecoder(uint32_t max_payload = kMaxFramePayload)
      : max_payload_(max_payload) {}

  void Feed(std::string_view bytes) { buffer_.append(bytes); }

  /// True: one frame extracted into *out. False: need more bytes.
  /// Error: stream corrupt/unsupported (see above).
  StatusOr<bool> Next(Frame* out);

  /// Call at orderly stream end: Ok if no partial frame was buffered.
  Status Finish() const;

 private:
  uint32_t max_payload_;
  std::string buffer_;
  Status fatal_;  ///< Sticky decode failure.
};

}  // namespace mlcask::storage

#endif  // MLCASK_STORAGE_FRAME_H_
