#ifndef MLCASK_STORAGE_FRAME_H_
#define MLCASK_STORAGE_FRAME_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "common/status.h"

namespace mlcask::storage {

/// Wire frame carrying one multiplexed RPC message. Layout (little-endian),
/// 14 header bytes followed by the payload:
///
///   byte  0      wire-format version
///   byte  1      frame type: 0 = data, 1 = transport error, 2 = chunk,
///                3 = chunk end (2/3 exist only from version 2 on)
///   bytes 2..9   correlation id (uint64) — pairs a response to its request
///   bytes 10..13 payload length (uint32)
///
/// The HEADER layout is frozen forever; the version byte governs only the
/// payload semantics. That way a peer speaking a future version still parses
/// our headers, and we can answer its (to us unreadable) requests with a
/// correctly-correlated Unimplemented error frame instead of mis-parsing the
/// stream — the failure is a clear status, never silent corruption.
///
/// Version history:
///   1  JSON payloads with hex-encoded binary (the PR-5 codec). Data and
///      error frames only.
///   2  Binary zero-copy codec (storage/wire_codec.h) plus CHUNK/CHUNK_END
///      streaming frames for large values. Kept wire-compatible one version
///      back: a v2 peer accepts v1 frames, and answers v1 requests with v1
///      responses, so mixed-version deployments negotiate down instead of
///      breaking.
inline constexpr uint8_t kWireVersionJson = 1;
inline constexpr uint8_t kWireVersionBinary = 2;
/// The newest version this build speaks (and the default stamped on frames).
inline constexpr uint8_t kWireVersion = kWireVersionBinary;

/// Frames above this payload size are rejected as corrupt before any
/// allocation: a garbled length field must not make the reader try to buffer
/// gigabytes. Generous for real traffic (merge winners are a few MiB).
inline constexpr uint32_t kMaxFramePayload = 256u << 20;  // 256 MiB

enum class FrameType : uint8_t {
  kData = 0,
  /// Payload is "<code>:<message>" describing a transport-level Status the
  /// peer could not express as an application response (e.g. version skew).
  kError = 1,
  /// One content-defined slice of a large message, sharing the correlation
  /// id with its siblings. Version >= 2 only.
  kChunk = 2,
  /// Terminates a chunk stream: payload is EncodeChunkEnd() — total size,
  /// chunk count, and the manifest hash over the chunk addresses, so a
  /// reassembled value is integrity-checked end to end. Version >= 2 only.
  kChunkEnd = 3,
};

struct Frame {
  FrameType type = FrameType::kData;
  uint64_t id = 0;
  uint8_t version = kWireVersion;  ///< As decoded from the header.
  std::string payload;
};

/// Appends one 14-byte frame header (no payload) to `out` — the scatter-
/// gather send paths pair it with the payload in an iovec instead of
/// coalescing them into one buffer.
void AppendFrameHeader(std::string* out, FrameType type, uint64_t id,
                       uint32_t payload_size, uint8_t version = kWireVersion);

/// Appends one fully encoded frame to `out`. `version` is overridable so
/// tests can forge mismatched peers; production callers never pass it.
void AppendFrame(std::string* out, FrameType type, uint64_t id,
                 std::string_view payload, uint8_t version = kWireVersion);

/// Encodes a transport-level error as an error frame payload / decodes it
/// back. A payload that does not parse decodes as Corruption.
std::string EncodeErrorPayload(const Status& status);
Status DecodeErrorPayload(std::string_view payload);

/// Incremental frame parser for one byte stream. Feed() appends raw bytes;
/// Next() extracts complete frames. All failure modes surface as statuses —
/// the decoder never throws, never over-reads, and never buffers an
/// oversized frame:
///
///   truncated   Next() returns false (need more bytes); Finish() at stream
///               end reports Corruption if a partial frame is buffered
///   oversized   length field beyond max_payload -> Corruption
///   bad type    unknown frame type for the frame's version -> Corruption
///               (chunk frames on a version-1 stream are "bad type": a v1
///               peer never sees them, so one appearing means corruption)
///   version     version outside [kWireVersionJson, max_version] ->
///               Unimplemented, with out->id still filled from the
///               (frozen-layout) header so a server can answer the right
///               request with an error frame
///
/// Corruption errors are STICKY — the stream is unrecoverable and further
/// Next() calls return the same error. The version-mismatch Unimplemented
/// is NOT: the offending frame is consumed whole (its length field is
/// trustworthy, the header layout being frozen) and the stream stays
/// decodable, so one future-version message never takes down a session.
///
/// Buffering is offset-based: consumed frames advance a read cursor and the
/// prefix is compacted lazily, so a burst of small chunk frames costs one
/// amortized move instead of one erase() per frame. peak_buffer_bytes()
/// reports the high-water mark of live buffered bytes — the number the
/// chunk-streaming acceptance bound (receive buffer is O(chunk), not
/// O(value)) is asserted against.
class FrameDecoder {
 public:
  explicit FrameDecoder(uint32_t max_payload = kMaxFramePayload,
                        uint8_t max_version = kWireVersion)
      : max_payload_(max_payload), max_version_(max_version) {}

  void Feed(std::string_view bytes) {
    buffer_.append(bytes);
    const uint64_t live = buffer_.size() - pos_;
    if (live > peak_buffer_bytes_) peak_buffer_bytes_ = live;
  }

  /// True: one frame extracted into *out. False: need more bytes.
  /// Error: stream corrupt/unsupported (see above).
  StatusOr<bool> Next(Frame* out);

  /// Call at orderly stream end: Ok if no partial frame was buffered.
  Status Finish() const;

  /// High-water mark of live (unconsumed) buffered bytes.
  uint64_t peak_buffer_bytes() const { return peak_buffer_bytes_; }

 private:
  /// Drops the consumed prefix once it outweighs the live remainder, so the
  /// buffer never holds more than ~2x the live bytes.
  void Compact();

  uint32_t max_payload_;
  uint8_t max_version_;
  std::string buffer_;
  size_t pos_ = 0;  ///< Read cursor: bytes before it are consumed.
  uint64_t peak_buffer_bytes_ = 0;
  Status fatal_;  ///< Sticky decode failure.
};

}  // namespace mlcask::storage

#endif  // MLCASK_STORAGE_FRAME_H_
