#include "storage/fault_injector.h"

#include <cstdlib>
#include <utility>

#include "common/strings.h"

namespace mlcask::storage {

namespace {

// Splits "key=value" around the first '='; returns false when absent.
bool SplitKv(std::string_view pair, std::string_view* key,
             std::string_view* value) {
  size_t eq = pair.find('=');
  if (eq == std::string_view::npos) return false;
  *key = pair.substr(0, eq);
  *value = pair.substr(eq + 1);
  return true;
}

StatusOr<double> ParseProb(std::string_view key, std::string_view value) {
  char* end = nullptr;
  std::string copy(value);
  double p = std::strtod(copy.c_str(), &end);
  if (end == copy.c_str() || *end != '\0' || p < 0 || p > 1) {
    return Status::InvalidArgument(
        StrFormat("fault spec: %.*s wants a probability in [0,1], got '%.*s'",
                  static_cast<int>(key.size()), key.data(),
                  static_cast<int>(value.size()), value.data()));
  }
  return p;
}

StatusOr<uint64_t> ParseU64(std::string_view key, std::string_view value) {
  char* end = nullptr;
  std::string copy(value);
  unsigned long long v = std::strtoull(copy.c_str(), &end, 10);
  if (end == copy.c_str() || *end != '\0') {
    return Status::InvalidArgument(
        StrFormat("fault spec: %.*s wants an integer, got '%.*s'",
                  static_cast<int>(key.size()), key.data(),
                  static_cast<int>(value.size()), value.data()));
  }
  return static_cast<uint64_t>(v);
}

}  // namespace

StatusOr<FaultSpec> FaultSpec::Parse(std::string_view spec) {
  FaultSpec out;
  std::string_view rest = spec;
  while (!rest.empty()) {
    size_t comma = rest.find(',');
    std::string_view pair = rest.substr(0, comma);
    rest = comma == std::string_view::npos ? std::string_view()
                                           : rest.substr(comma + 1);
    if (pair.empty()) continue;
    std::string_view key, value;
    if (!SplitKv(pair, &key, &value)) {
      return Status::InvalidArgument(
          StrFormat("fault spec: '%.*s' is not key=value",
                    static_cast<int>(pair.size()), pair.data()));
    }
    if (key == "seed") {
      MLCASK_ASSIGN_OR_RETURN(out.seed, ParseU64(key, value));
    } else if (key == "drop") {
      MLCASK_ASSIGN_OR_RETURN(out.drop, ParseProb(key, value));
    } else if (key == "dropafter") {
      MLCASK_ASSIGN_OR_RETURN(out.drop_after, ParseProb(key, value));
    } else if (key == "garble") {
      MLCASK_ASSIGN_OR_RETURN(out.garble, ParseProb(key, value));
    } else if (key == "delay_ms") {
      // M:P — milliseconds and the probability of applying them.
      size_t colon = value.find(':');
      if (colon == std::string_view::npos) {
        return Status::InvalidArgument(
            "fault spec: delay_ms wants M:P (millis and probability)");
      }
      MLCASK_ASSIGN_OR_RETURN(out.delay_ms,
                              ParseU64(key, value.substr(0, colon)));
      MLCASK_ASSIGN_OR_RETURN(out.delay_prob,
                              ParseProb(key, value.substr(colon + 1)));
    } else if (key == "drip_ms_per_kib") {
      MLCASK_ASSIGN_OR_RETURN(out.drip_ms_per_kib, ParseU64(key, value));
    } else if (key == "diskfull") {
      MLCASK_ASSIGN_OR_RETURN(out.disk_full, ParseProb(key, value));
    } else if (key == "kill_after") {
      MLCASK_ASSIGN_OR_RETURN(out.kill_after, ParseU64(key, value));
    } else {
      return Status::InvalidArgument(
          StrFormat("fault spec: unknown key '%.*s'",
                    static_cast<int>(key.size()), key.data()));
    }
  }
  return out;
}

std::string FaultSpec::ToString() const {
  std::string out = StrFormat("seed=%llu", (unsigned long long)seed);
  if (drop > 0) out += StrFormat(",drop=%g", drop);
  if (drop_after > 0) out += StrFormat(",dropafter=%g", drop_after);
  if (garble > 0) out += StrFormat(",garble=%g", garble);
  if (delay_prob > 0) {
    out += StrFormat(",delay_ms=%llu:%g", (unsigned long long)delay_ms,
                     delay_prob);
  }
  if (drip_ms_per_kib > 0) {
    out += StrFormat(",drip_ms_per_kib=%llu",
                     (unsigned long long)drip_ms_per_kib);
  }
  if (disk_full > 0) out += StrFormat(",diskfull=%g", disk_full);
  if (kill_after > 0) {
    out += StrFormat(",kill_after=%llu", (unsigned long long)kill_after);
  }
  return out;
}

SendFault FaultInjector::OnClientSend() {
  SendFault fault;
  std::lock_guard<std::mutex> lock(mu_);
  // One connection-killing action at most; drawn in fixed order so a spec
  // with several probabilities still yields one deterministic sequence.
  if (spec_.drop > 0 && rng_.Bernoulli(spec_.drop)) {
    fault.drop_before = true;
  } else if (spec_.drop_after > 0 && rng_.Bernoulli(spec_.drop_after)) {
    fault.drop_after = true;
  } else if (spec_.garble > 0 && rng_.Bernoulli(spec_.garble)) {
    fault.garble = true;
  }
  if (spec_.delay_prob > 0 && rng_.Bernoulli(spec_.delay_prob)) {
    fault.delay_ms = spec_.delay_ms;
  }
  return fault;
}

JobFault FaultInjector::OnServerJob(size_t payload_bytes) {
  JobFault fault;
  uint64_t seen = jobs_seen_.fetch_add(1) + 1;
  if (spec_.kill_after > 0 && seen == spec_.kill_after) {
    fault.kill = true;
    return fault;
  }
  if (spec_.drip_ms_per_kib > 0) {
    fault.delay_ms += spec_.drip_ms_per_kib * (payload_bytes >> 10);
  }
  std::lock_guard<std::mutex> lock(mu_);
  if (spec_.delay_prob > 0 && rng_.Bernoulli(spec_.delay_prob)) {
    fault.delay_ms += spec_.delay_ms;
  }
  return fault;
}

bool FaultInjector::OnEngineWrite() {
  if (spec_.disk_full <= 0) return false;
  std::lock_guard<std::mutex> lock(mu_);
  return rng_.Bernoulli(spec_.disk_full);
}

Status FaultyEngine::Gate(bool mutation) {
  if (unavailable_.load()) return Status::Unavailable("shard down");
  if (shed_.load()) return Status::ResourceExhausted("shard shedding");
  if (mutation && injector_ && injector_->OnEngineWrite()) {
    return Status::Unavailable("disk full (injected)");
  }
  return Status::Ok();
}

StatusOr<PutResult> FaultyEngine::Put(const std::string& key,
                                      std::string_view data) {
  MLCASK_RETURN_IF_ERROR(Gate(/*mutation=*/true));
  return inner_->Put(key, data);
}

StatusOr<std::vector<PutResult>> FaultyEngine::PutMany(
    const std::vector<PutRequest>& batch) {
  MLCASK_RETURN_IF_ERROR(Gate(/*mutation=*/true));
  return inner_->PutMany(batch);
}

StatusOr<std::string> FaultyEngine::Get(const std::string& key) {
  MLCASK_RETURN_IF_ERROR(Gate(/*mutation=*/false));
  return inner_->Get(key);
}

StatusOr<std::string> FaultyEngine::GetVersion(const Hash256& id) {
  MLCASK_RETURN_IF_ERROR(Gate(/*mutation=*/false));
  return inner_->GetVersion(id);
}

// HasVersion/Versions/ListAllVersions have no error channel; a down shard
// simply reports nothing, which is exactly what a dead peer looks like.
bool FaultyEngine::HasVersion(const Hash256& id) const {
  if (unavailable_.load()) return false;
  return inner_->HasVersion(id);
}

std::vector<Hash256> FaultyEngine::Versions(const std::string& key) const {
  if (unavailable_.load()) return {};
  return inner_->Versions(key);
}

std::vector<std::pair<std::string, Hash256>> FaultyEngine::ListAllVersions()
    const {
  if (unavailable_.load()) return {};
  return inner_->ListAllVersions();
}

StatusOr<uint64_t> FaultyEngine::DeleteVersion(const Hash256& id) {
  MLCASK_RETURN_IF_ERROR(Gate(/*mutation=*/true));
  return inner_->DeleteVersion(id);
}

EngineStats FaultyEngine::stats() const { return inner_->stats(); }

std::string FaultyEngine::Name() const { return inner_->Name(); }

double FaultyEngine::ReadCost(uint64_t bytes) const {
  return inner_->ReadCost(bytes);
}

Deferred<PutResult> FaultyEngine::AsyncPut(const std::string& key,
                                           std::string_view data) {
  Status gate = Gate(/*mutation=*/true);
  if (!gate.ok()) return Deferred<PutResult>(StatusOr<PutResult>(gate));
  return inner_->AsyncPut(key, data);
}

Deferred<std::vector<PutResult>> FaultyEngine::AsyncPutMany(
    const std::vector<PutRequest>& batch) {
  Status gate = Gate(/*mutation=*/true);
  if (!gate.ok()) {
    return Deferred<std::vector<PutResult>>(
        StatusOr<std::vector<PutResult>>(gate));
  }
  return inner_->AsyncPutMany(batch);
}

Deferred<std::string> FaultyEngine::AsyncGetVersion(const Hash256& id) {
  Status gate = Gate(/*mutation=*/false);
  if (!gate.ok()) return Deferred<std::string>(StatusOr<std::string>(gate));
  return inner_->AsyncGetVersion(id);
}

Deferred<bool> FaultyEngine::AsyncHasVersion(const Hash256& id) const {
  return Deferred<bool>(StatusOr<bool>(HasVersion(id)));
}

Deferred<uint64_t> FaultyEngine::AsyncDeleteVersion(const Hash256& id) {
  Status gate = Gate(/*mutation=*/true);
  if (!gate.ok()) return Deferred<uint64_t>(StatusOr<uint64_t>(gate));
  return inner_->AsyncDeleteVersion(id);
}

}  // namespace mlcask::storage
