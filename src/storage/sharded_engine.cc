#include "storage/sharded_engine.h"

#include <algorithm>
#include <mutex>
#include <numeric>
#include <set>
#include <utility>

#include "common/logging.h"
#include "common/sha256.h"
#include "common/strings.h"
#include "storage/deadline.h"
#include "storage/remote_engine.h"
#include "storage/transport.h"

namespace mlcask::storage {

namespace {

constexpr std::string_view kStagingPrefix = "__2pc__/";
/// Header prepended to staged intent payloads so their content ids live in
/// a private namespace: cleanup deletes by content id, and without the
/// header a user object whose bytes happened to equal "key\x1f data" would
/// alias the staged blob and be deleted with it. (A user payload starting
/// with this exact header can still alias — the StorageEngine interface
/// has no delete-one-key's-version primitive — but only deliberately.)
constexpr std::string_view kIntentHeader = "__2pc-intent__\x1f";

/// Rebalance bookkeeping keys, written directly to the plan shard (never
/// routed) and filtered from every listing like the 2PC staging records.
constexpr std::string_view kMigrationPrefix = "__migration__/";
constexpr std::string_view kPlanKey = "__migration__/plan";
constexpr std::string_view kCursorKey = "__migration__/cursor";
constexpr std::string_view kTopologyKey = "__migration__/topology";

uint64_t RingPoint(std::string_view label) {
  Hash256 h = Sha256::Digest(label.data(), label.size());
  uint64_t point = 0;
  for (size_t i = 0; i < 8; ++i) point = (point << 8) | h.bytes[i];
  return point;
}

bool IsStagingKey(std::string_view key) {
  return StartsWith(key, kStagingPrefix);
}

bool IsMigrationKey(std::string_view key) {
  return StartsWith(key, kMigrationPrefix);
}

/// Parses a staging key's transaction id and flags the per-transaction
/// commit-decision record (`__2pc__/txn<N>/decision`). Returns false for
/// keys that merely share the prefix without following the layout — those
/// are not ours to resolve.
bool ParseStagingKey(std::string_view key, uint64_t* txn, bool* is_decision) {
  if (!StartsWith(key, kStagingPrefix)) return false;
  std::string_view rest = key.substr(kStagingPrefix.size());
  if (!StartsWith(rest, "txn")) return false;
  rest.remove_prefix(3);
  size_t i = 0;
  uint64_t value = 0;
  while (i < rest.size() && rest[i] >= '0' && rest[i] <= '9') {
    value = value * 10 + static_cast<uint64_t>(rest[i] - '0');
    ++i;
  }
  if (i == 0 || i >= rest.size() || rest[i] != '/') return false;
  *txn = value;
  *is_decision = rest.substr(i + 1) == "decision";
  return true;
}

/// Splits a staged intent payload back into (target key, data). Mirrors the
/// encoding in the transaction's phase 1.
bool ParseIntentPayload(std::string_view payload, std::string_view* key,
                        std::string_view* data) {
  if (!StartsWith(payload, kIntentHeader)) return false;
  payload.remove_prefix(kIntentHeader.size());
  const size_t sep = payload.find('\x1f');
  if (sep == std::string_view::npos) return false;
  *key = payload.substr(0, sep);
  *data = payload.substr(sep + 1);
  return true;
}

/// Measures one fan-out's overlap: issued round trips raise `inflight`,
/// collected ones lower it, `peak` keeps the high-water mark. An
/// issue-all-then-collect fan-out peaks at N; a serial issue-wait loop
/// never leaves 1 — which is exactly what the round-trip ledgers record.
struct InflightMeter {
  uint64_t inflight = 0;
  uint64_t peak = 0;
  void Issue() { peak = std::max(peak, ++inflight); }
  void Collect() { --inflight; }
};

std::string SerializeSlots(const std::vector<size_t>& slots) {
  std::string out;
  for (size_t s : slots) {
    if (!out.empty()) out += ",";
    out += std::to_string(s);
  }
  return out;
}

bool ParseSlots(std::string_view text, std::vector<size_t>* slots) {
  slots->clear();
  size_t value = 0;
  bool in_number = false;
  for (char c : text) {
    if (c >= '0' && c <= '9') {
      value = value * 10 + static_cast<size_t>(c - '0');
      in_number = true;
    } else if (c == ',') {
      if (!in_number) return false;
      slots->push_back(value);
      value = 0;
      in_number = false;
    } else {
      return false;
    }
  }
  if (!in_number) return false;
  slots->push_back(value);
  return true;
}

/// Durable rebalance plan: everything a fresh router needs to re-install
/// the dual-epoch window a killed one left mid-flight.
std::string SerializePlan(const ShardRing& from, const ShardRing& to,
                          size_t vnodes) {
  std::string out = "mlcask-migration-plan v1\n";
  out += "epoch=" + std::to_string(to.epoch) + "\n";
  out += "from=" + SerializeSlots(from.members) + "\n";
  out += "to=" + SerializeSlots(to.members) + "\n";
  out += "vnodes=" + std::to_string(vnodes) + "\n";
  return out;
}

bool ParsePlan(std::string_view text, uint64_t* epoch,
               std::vector<size_t>* from, std::vector<size_t>* to,
               size_t* vnodes) {
  bool have_epoch = false, have_from = false, have_to = false,
       have_vnodes = false;
  bool first = true;
  while (!text.empty()) {
    const size_t nl = text.find('\n');
    std::string_view line =
        nl == std::string_view::npos ? text : text.substr(0, nl);
    text.remove_prefix(nl == std::string_view::npos ? text.size() : nl + 1);
    if (first) {
      if (line != "mlcask-migration-plan v1") return false;
      first = false;
      continue;
    }
    if (line.empty()) continue;
    const size_t eq = line.find('=');
    if (eq == std::string_view::npos) return false;
    std::string_view name = line.substr(0, eq);
    std::string_view value = line.substr(eq + 1);
    if (name == "epoch") {
      std::vector<size_t> one;
      if (!ParseSlots(value, &one) || one.size() != 1) return false;
      *epoch = one[0];
      have_epoch = true;
    } else if (name == "from") {
      if (!ParseSlots(value, from)) return false;
      have_from = true;
    } else if (name == "to") {
      if (!ParseSlots(value, to)) return false;
      have_to = true;
    } else if (name == "vnodes") {
      std::vector<size_t> one;
      if (!ParseSlots(value, &one) || one.size() != 1) return false;
      *vnodes = one[0];
      have_vnodes = true;
    }  // Unknown fields are skipped: older routers tolerate newer plans.
  }
  return have_epoch && have_from && have_to && have_vnodes &&
         !from->empty() && !to->empty();
}

/// Durable record of the last FINALIZED membership, written to every
/// surviving member when a rebalance completes. A router rebuilt from a
/// stale endpoint list (one that still dials a drained slot) reads it back
/// in ResumeMigration to restore the real ring.
std::string SerializeTopology(const ShardRing& ring, size_t vnodes) {
  std::string out = "mlcask-topology v1\n";
  out += "epoch=" + std::to_string(ring.epoch) + "\n";
  out += "members=" + SerializeSlots(ring.members) + "\n";
  out += "vnodes=" + std::to_string(vnodes) + "\n";
  return out;
}

bool ParseTopology(std::string_view text, uint64_t* epoch,
                   std::vector<size_t>* members, size_t* vnodes) {
  bool have_epoch = false, have_members = false, have_vnodes = false;
  bool first = true;
  while (!text.empty()) {
    const size_t nl = text.find('\n');
    std::string_view line =
        nl == std::string_view::npos ? text : text.substr(0, nl);
    text.remove_prefix(nl == std::string_view::npos ? text.size() : nl + 1);
    if (first) {
      if (line != "mlcask-topology v1") return false;
      first = false;
      continue;
    }
    if (line.empty()) continue;
    const size_t eq = line.find('=');
    if (eq == std::string_view::npos) return false;
    std::string_view name = line.substr(0, eq);
    std::string_view value = line.substr(eq + 1);
    if (name == "epoch") {
      std::vector<size_t> one;
      if (!ParseSlots(value, &one) || one.size() != 1) return false;
      *epoch = one[0];
      have_epoch = true;
    } else if (name == "members") {
      if (!ParseSlots(value, members)) return false;
      have_members = true;
    } else if (name == "vnodes") {
      std::vector<size_t> one;
      if (!ParseSlots(value, &one) || one.size() != 1) return false;
      *vnodes = one[0];
      have_vnodes = true;
    }  // Unknown fields are skipped: older routers tolerate newer records.
  }
  return have_epoch && have_members && have_vnodes && !members->empty();
}

}  // namespace

// ----------------------------------------------------------- ring policy ---

bool ShardRing::Contains(size_t slot) const {
  return std::find(members.begin(), members.end(), slot) != members.end();
}

ShardRing BuildShardRing(uint64_t epoch, std::vector<size_t> members,
                         size_t vnodes) {
  ShardRing ring;
  ring.epoch = epoch;
  std::sort(members.begin(), members.end());
  members.erase(std::unique(members.begin(), members.end()), members.end());
  ring.members = std::move(members);
  const size_t points = std::max<size_t>(1, vnodes);
  for (size_t s : ring.members) {
    for (size_t v = 0; v < points; ++v) {
      // First-writer-wins on the (astronomically unlikely) point collision;
      // the ring stays deterministic either way. Labels depend on the SLOT
      // only, so a slot's points are identical in every epoch.
      ring.points.emplace(
          RingPoint("ring/" + std::to_string(s) + "#" + std::to_string(v)), s);
    }
  }
  return ring;
}

size_t RingOwner(const ShardRing& ring, std::string_view key) {
  MLCASK_CHECK_MSG(!ring.points.empty(), "ring has no points");
  auto it = ring.points.lower_bound(RingPoint(key));
  if (it == ring.points.end()) it = ring.points.begin();  // wrap around
  return it->second;
}

std::vector<KeyMove> PlanMigration(const ShardRing& from, const ShardRing& to,
                                   std::vector<std::string> keys) {
  std::sort(keys.begin(), keys.end());
  keys.erase(std::unique(keys.begin(), keys.end()), keys.end());
  std::vector<KeyMove> moves;
  for (std::string& key : keys) {
    const size_t old_owner = RingOwner(from, key);
    const size_t new_owner = RingOwner(to, key);
    if (old_owner == new_owner) continue;
    moves.push_back({std::move(key), old_owner, new_owner});
  }
  return moves;  // sorted by key: the order the cursor advances in
}

// ----------------------------------------------------------- construction ---

ShardedStorageEngine::ShardedStorageEngine(
    std::vector<std::unique_ptr<StorageEngine>> shards)
    : ShardedStorageEngine(std::move(shards), Options()) {}

ShardedStorageEngine::ShardedStorageEngine(
    std::vector<std::unique_ptr<StorageEngine>> shards, Options options)
    : shards_(std::move(shards)), options_(std::move(options)) {
  MLCASK_CHECK_MSG(!shards_.empty(),
                   "sharded engine needs at least one shard");
  MLCASK_CHECK_MSG(shards_.size() <= kSlotCapacity,
                   "sharded engine slot capacity exceeded");
  // Reserve the full slot capacity once: AddShard's push_back must never
  // reallocate under concurrent readers of existing slots.
  shards_.reserve(kSlotCapacity);
  std::vector<size_t> members(shards_.size());
  std::iota(members.begin(), members.end(), size_t{0});
  current_ring_ = BuildShardRing(/*epoch=*/0, std::move(members),
                                 options_.virtual_nodes_per_shard);
  tp_stats_.per_shard_round_trips.assign(shards_.size(), 0);
  bc_stats_.per_shard_probes.assign(shards_.size(), 0);
  consecutive_failures_.assign(shards_.size(), 0);
  half_open_skips_.assign(shards_.size(), 0);
}

// ---------------------------------------------------------------- health ---

void ShardedStorageEngine::NoteShardResult(size_t shard,
                                           const Status& status) const {
  std::lock_guard<std::mutex> lock(health_mu_);
  if (status.ok()) {
    consecutive_failures_[shard] = 0;
    half_open_skips_[shard] = 0;
    return;
  }
  // Only unreachability counts against health: a shard that ANSWERS with
  // NotFound / InvalidArgument / etc. is alive and routing to it is fine.
  if (status.code() == StatusCode::kUnavailable ||
      status.code() == StatusCode::kDeadlineExceeded) {
    consecutive_failures_[shard] += 1;
  }
}

bool ShardedStorageEngine::SkipDownShard(size_t shard) const {
  std::lock_guard<std::mutex> lock(health_mu_);
  if (consecutive_failures_[shard] < kDownFailures) return false;
  half_open_skips_[shard] += 1;
  // A freshly-down shard gets ONE immediate probe — the first fan-out
  // after the down transition — so an outage shorter than the fan-out
  // cadence heals in one request instead of waiting out kHalfOpenEvery
  // skips first.
  if (half_open_skips_[shard] == 1) return false;
  // Half-open: let every kHalfOpenEvery-th fan-out through so a recovered
  // shard's first success resets the streak without operator action.
  return half_open_skips_[shard] % kHalfOpenEvery != 0;
}

bool ShardedStorageEngine::ShardDown(size_t shard) const {
  std::lock_guard<std::mutex> lock(health_mu_);
  return consecutive_failures_[shard] >= kDownFailures;
}

ShardedStorageEngine::ShardHealthView ShardedStorageEngine::shard_health()
    const {
  std::lock_guard<std::mutex> lock(health_mu_);
  ShardHealthView view;
  view.state.reserve(consecutive_failures_.size());
  for (uint64_t failures : consecutive_failures_) {
    view.state.push_back(failures == 0 ? ShardHealth::kUp
                         : failures < kDownFailures ? ShardHealth::kDegraded
                                                    : ShardHealth::kDown);
  }
  view.consecutive_failures = consecutive_failures_;
  return view;
}

void ShardedStorageEngine::MarkShardRecovered(size_t shard) {
  std::lock_guard<std::mutex> lock(health_mu_);
  consecutive_failures_[shard] = 0;
  half_open_skips_[shard] = 0;
}

// --------------------------------------------------------------- routing ---

size_t ShardedStorageEngine::num_shards() const { return SlotCount(); }

size_t ShardedStorageEngine::SlotCount() const {
  std::shared_lock<std::shared_mutex> lock(topo_mu_);
  return shards_.size();
}

std::vector<size_t> ShardedStorageEngine::live_members() const {
  std::shared_lock<std::shared_mutex> lock(topo_mu_);
  if (!migrating_.load(std::memory_order_acquire)) {
    return current_ring_.members;
  }
  std::vector<size_t> live = current_ring_.members;
  for (size_t s : prev_ring_.members) {
    if (std::find(live.begin(), live.end(), s) == live.end()) {
      live.push_back(s);
    }
  }
  std::sort(live.begin(), live.end());
  return live;
}

size_t ShardedStorageEngine::coordinator_shard() const {
  std::shared_lock<std::shared_mutex> lock(topo_mu_);
  return current_ring_.members.front();
}

size_t ShardedStorageEngine::plan_shard() const { return coordinator_shard(); }

uint64_t ShardedStorageEngine::ring_epoch() const {
  std::shared_lock<std::shared_mutex> lock(topo_mu_);
  return current_ring_.epoch;
}

ShardedStorageEngine::Route ShardedStorageEngine::TryRouteKey(
    std::string_view key, bool for_write) const {
  std::shared_lock<std::shared_mutex> topo(topo_mu_);
  if (!migrating_.load(std::memory_order_acquire)) {
    return {RingOwner(current_ring_, key), false};
  }
  // Dual-epoch window: a key both rings agree on routes normally; a
  // reassigned key is at its NEW owner once the cursor passed it, at its
  // OLD owner before, and mid-copy (in the in-flight batch) the caller
  // must wait for the batch to land.
  const size_t new_owner = RingOwner(current_ring_, key);
  const size_t old_owner = RingOwner(prev_ring_, key);
  if (new_owner == old_owner) return {new_owner, false};
  std::lock_guard<std::mutex> mig(mig_mu_);
  if (inflight_keys_.find(key) != inflight_keys_.end()) return {0, true};
  if (key <= std::string_view(mig_cursor_)) return {new_owner, false};
  // Past the cursor: the key (if it exists) still lives at its old owner.
  if (for_write) {
    // A batch is mid-copy: its cursor advance is about to route every key
    // at or below its last key to the new owner, so a write landing on the
    // old owner NOW could be stranded there. Writes wait the batch out;
    // reads stay safe on the old owner.
    if (mig_batch_active_) return {0, true};
    // No batch in flight: the write lands on the old owner. Remember it —
    // this key postdates the pass enumeration, so the next batch must fold
    // it in before the cursor may pass it.
    mig_dirty_.insert(std::string(key));
  }
  return {old_owner, false};
}

void ShardedStorageEngine::WaitRouteUnblocked(std::string_view key,
                                              bool for_write) const {
  std::unique_lock<std::mutex> lock(mig_mu_);
  mig_cv_.wait(lock, [&] {
    if (inflight_keys_.find(key) != inflight_keys_.end()) return false;
    // Mirror of TryRouteKey's write gate: a write past the cursor waits
    // out an active batch (the cursor advance would strand it otherwise).
    if (for_write && mig_batch_active_ &&
        key > std::string_view(mig_cursor_)) {
      return false;
    }
    return true;
  });
}

size_t ShardedStorageEngine::RouteKeyBlocking(std::string_view key,
                                              bool for_write) const {
  while (true) {
    Route r = TryRouteKey(key, for_write);
    if (!r.in_flight) return r.shard;
    WaitRouteUnblocked(key, for_write);
  }
}

size_t ShardedStorageEngine::ShardForKey(std::string_view key) const {
  return RouteKeyBlocking(key, /*for_write=*/false);
}

bool ShardedStorageEngine::IsReplicated(std::string_view key) const {
  for (const std::string& prefix : options_.replicated_prefixes) {
    if (StartsWith(key, prefix)) return true;
  }
  return false;
}

bool ShardedStorageEngine::IsInternalKey(std::string_view key) const {
  return IsStagingKey(key) || IsMigrationKey(key);
}

void ShardedStorageEngine::RecordVersion(const Hash256& id, size_t shard) {
  std::unique_lock<std::shared_mutex> lock(index_mu_);
  version_shard_[id] = shard;
}

StatusOr<PutResult> ShardedStorageEngine::DirectPut(const std::string& key,
                                                    std::string_view data) {
  return WithStableRoute(key, /*for_write=*/true,
                         [&](size_t shard) -> StatusOr<PutResult> {
    auto result = shards_[shard]->Put(key, data);
    NoteShardResult(shard, result.ok() ? Status::Ok() : result.status());
    if (!result.ok()) return result.status();
    RecordVersion(result->id, shard);
    return *result;
  });
}

// ------------------------------------------------------- two-phase commit ---

Status ShardedStorageEngine::RunTransactionLocked(
    const std::vector<ShardWrite>& writes, std::vector<PutResult>* results) {
  // The caller holds txn_mu_: one coordinated transaction at a time.
  // Without this, two concurrent transactions touching a replicated key
  // could interleave their apply loops in opposite orders on different
  // shards, leaving the replicas' latest-version views permanently
  // divergent. Migration batches and topology changes take the same lock,
  // so the routing the caller decided stays valid for the transaction's
  // whole lifetime. Transactions are control-plane writes (commit logs,
  // merge winners), so serializing them costs nothing on the hot path;
  // uncoordinated DirectPuts never take it.
  const uint64_t txn = txn_counter_.fetch_add(1, std::memory_order_relaxed);
  // The shard holding the durable commit decision (and only it — one
  // authority, no split brain). Stable here: topology changes serialize on
  // txn_mu_ too.
  const size_t coord = coordinator_shard();
  // Round-trip ledger of THIS transaction, accumulated locally while the
  // phases run. The InflightMeter records whatever overlap the code
  // structure actually achieved — the overlapped fan-out reaches the
  // participant count, a serial issue-wait loop never leaves 1.
  struct {
    uint64_t prepare_round_trips = 0;
    uint64_t apply_round_trips = 0;
    uint64_t decision_round_trips = 0;
    InflightMeter meter;
    std::vector<uint64_t> per_shard;
    void Issue(size_t shard) {
      meter.Issue();
      per_shard[shard] += 1;
    }
    void Collect() { meter.Collect(); }
  } ledger;
  ledger.per_shard.assign(SlotCount(), 0);
  // Telemetry lands in tp_stats_ as ONE unit when the transaction resolves
  // (commit or abort), never piecemeal: a concurrent stats reader must see
  // transactions == commits + aborts in every snapshot.
  auto resolve = [&](bool committed) {
    std::lock_guard<std::mutex> stats_lock(tp_stats_mu_);
    tp_stats_.transactions += 1;
    tp_stats_.prepared_writes += writes.size();
    if (committed) {
      tp_stats_.commits += 1;
    } else {
      tp_stats_.aborts += 1;
    }
    tp_stats_.prepare_round_trips += ledger.prepare_round_trips;
    tp_stats_.apply_round_trips += ledger.apply_round_trips;
    tp_stats_.decision_round_trips += ledger.decision_round_trips;
    tp_stats_.max_inflight_round_trips =
        std::max(tp_stats_.max_inflight_round_trips, ledger.meter.peak);
    for (size_t s = 0; s < ledger.per_shard.size(); ++s) {
      tp_stats_.per_shard_round_trips[s] += ledger.per_shard[s];
    }
  };

  auto staging_key_for = [&](size_t write_index) {
    return StrFormat("%stxn%llu/s%zu/w%zu",
                     std::string(kStagingPrefix).c_str(),
                     static_cast<unsigned long long>(txn),
                     writes[write_index].shard, write_index);
  };

  /// The durable commit decision for THIS transaction, written to the
  /// coordinator shard after a unanimous prepare. Recovery rolls a
  /// transaction forward iff this record exists.
  const std::string decision_key =
      StrFormat("%stxn%llu/decision", std::string(kStagingPrefix).c_str(),
                static_cast<unsigned long long>(txn));

  // Participant shards and their writes, in original write order.
  std::map<size_t, std::vector<size_t>> by_shard;
  for (size_t i = 0; i < writes.size(); ++i) {
    by_shard[writes[i].shard].push_back(i);
  }

  // Deadline fail-fast: a transaction whose caller budget is already spent
  // aborts before staging a single byte — under overload, dead requests
  // must shed work, not generate three more fan-out phases of it.
  if (Status budget = DeadlineScope::CheckCurrent("2pc transaction");
      !budget.ok()) {
    resolve(/*committed=*/false);
    return budget;
  }

  // Health pre-check: a participant the router already knows is down makes
  // the outcome a foregone conclusion — abort with a typed status BEFORE
  // staging anything, instead of burning a per-shard timeout to rediscover
  // it. SkipDownShard's half-open pass-through still lets every
  // kHalfOpenEvery-th transaction probe the shard, so recovery needs no
  // operator action.
  for (const auto& [shard, indices] : by_shard) {
    if (SkipDownShard(shard)) {
      resolve(/*committed=*/false);
      return Status::Unavailable(
          "2pc aborted before staging: shard " + std::to_string(shard) +
          " is down (" +
          std::to_string(shard_health().consecutive_failures[shard]) +
          " consecutive failures)");
    }
  }

  // Staging keys are deterministic, so cleanup resolves what actually
  // landed by LOOKUP rather than by remembered ids — it stays correct even
  // when a prepare batch failed halfway and returned no results. Leftover
  // staging records would be invisible anyway (filtered from
  // ListAllVersions); best effort is fine.
  auto cleanup_staged = [&]() {
    for (const auto& [shard, indices] : by_shard) {
      for (size_t i : indices) {
        for (const Hash256& id : shards_[shard]->Versions(staging_key_for(i))) {
          (void)shards_[shard]->DeleteVersion(id);
        }
      }
    }
    // The decision record is part of the transaction's staging footprint:
    // commit and abort alike must leave zero __2pc__/ keys behind.
    for (const Hash256& id : shards_[coord]->Versions(decision_key)) {
      (void)shards_[coord]->DeleteVersion(id);
    }
  };

  // Phase 1: stage every payload on its participant shard — ONE PutMany
  // batch per shard (a single message on a remote proxy), every
  // participant's batch ISSUED before any response is collected, so the
  // prepare round trips overlap instead of serializing over the wire. The
  // staged blob binds the target key to the data, so a recovering shard
  // could replay the intent; on a deduplicating engine the staged chunks
  // also make the phase-2 write transfer almost nothing new.
  std::vector<std::pair<size_t, Deferred<std::vector<PutResult>>>> prepares;
  prepares.reserve(by_shard.size());
  for (const auto& [shard, indices] : by_shard) {
    std::vector<PutRequest> staging;
    staging.reserve(indices.size());
    for (size_t i : indices) {
      std::string intent(kIntentHeader);
      intent.append(writes[i].request->key);
      intent.push_back('\x1f');
      intent.append(writes[i].request->data);
      staging.push_back({staging_key_for(i), std::move(intent)});
    }
    prepares.emplace_back(shard, shards_[shard]->AsyncPutMany(staging));
    ledger.Issue(shard);
    ledger.prepare_round_trips += 1;
  }
  Status prepare_failure;
  size_t prepare_failed_shard = 0;
  for (auto& [shard, deferred] : prepares) {
    auto prepared = deferred.Get();
    ledger.Collect();
    NoteShardResult(shard,
                    prepared.ok() ? Status::Ok() : prepared.status());
    if (!prepared.ok() && prepare_failure.ok()) {
      prepare_failure = prepared.status();
      prepare_failed_shard = shard;
    }
  }
  // One completed fan-out round consumed at least one accounting unit of
  // the caller's budget: the decision-phase stamps must be STRICTLY below
  // the prepare-phase stamps (the deadline-shrink proof-by-accounting),
  // even when the whole phase ran faster than the wall clock ticks.
  DeadlineScope::ChargeCurrent(1);
  if (!prepare_failure.ok()) {
    cleanup_staged();
    resolve(/*committed=*/false);
    return Status(prepare_failure.code(),
                  "2pc prepare failed on shard " +
                      std::to_string(prepare_failed_shard) + ": " +
                      prepare_failure.message());
  }
  // Last safe bail-out: past the decision write the transaction MUST roll
  // forward (the durable decision makes recovery re-apply it), so a spent
  // budget aborts here — staged intents cleaned, nothing real applied.
  if (Status budget = DeadlineScope::CheckCurrent("2pc decision phase");
      !budget.ok()) {
    cleanup_staged();
    resolve(/*committed=*/false);
    return budget;
  }

  // Decision point: persist the commit decision durably on the coordinator
  // BEFORE any real write lands. From here on a crashed coordinator's
  // transaction is recoverable — RecoverTwoPhase finds the decision and
  // rolls the staged intents forward; without it the intents are fenced. A
  // failed decision write is therefore a clean abort: nothing real has
  // applied.
  {
    std::string decision(kIntentHeader);
    decision.append("commit");
    ledger.Issue(coord);
    ledger.decision_round_trips += 1;
    auto decided = shards_[coord]->Put(decision_key, decision);
    ledger.Collect();
    DeadlineScope::ChargeCurrent(1);  // decision round collected
    NoteShardResult(coord, decided.ok() ? Status::Ok() : decided.status());
    if (!decided.ok()) {
      cleanup_staged();
      resolve(/*committed=*/false);
      return Status(decided.status().code(),
                    "2pc decision write failed on shard " +
                        std::to_string(coord) + ": " +
                        decided.status().message() +
                        " (transaction aborted, nothing applied)");
    }
  }

  // Phase 2: unanimous prepare — apply the real writes. Applies stay
  // per-write (a failure must know exactly which version ids to roll back),
  // but ALL of them are issued before any is collected: same-shard writes
  // pipeline in order on one session (preserving each engine's
  // key+ordinal version-id sequence), different shards' applies overlap.
  std::vector<Deferred<PutResult>> applies;
  applies.reserve(writes.size());
  for (const ShardWrite& w : writes) {
    applies.push_back(
        shards_[w.shard]->AsyncPut(w.request->key, w.request->data));
    ledger.Issue(w.shard);
    ledger.apply_round_trips += 1;
  }
  std::vector<StatusOr<PutResult>> applied_results;
  applied_results.reserve(writes.size());
  for (size_t i = 0; i < applies.size(); ++i) {
    applied_results.push_back(applies[i].Get());
    ledger.Collect();
    NoteShardResult(writes[i].shard, applied_results.back().ok()
                                         ? Status::Ok()
                                         : applied_results.back().status());
  }
  DeadlineScope::ChargeCurrent(1);  // apply round collected
  for (size_t i = 0; i < writes.size(); ++i) {
    if (applied_results[i].ok()) continue;
    // Prepare voted yes everywhere, so an apply failure is a broken
    // participant, not a routine abort — but partial state must not
    // surface. REVOKE the commit decision first: once it is gone a
    // concurrent or later recovery fences this transaction instead of
    // rolling it forward, so the rollback below cannot race a re-apply.
    // (If the coordinator dies between this delete and the rollback, the
    // already-applied writes survive as real versions — a known limitation;
    // the recovery scan at least can no longer resurrect the rest.)
    for (const Hash256& did : shards_[coord]->Versions(decision_key)) {
      (void)shards_[coord]->DeleteVersion(did);
    }
    // Roll back every write that DID apply (safe even for
    // deduplicated applies: both engines derive version ids from
    // key + ordinal, so a fresh Put always creates a fresh id and the
    // delete can never take an older object with it) and account the
    // transaction as aborted.
    for (size_t j = 0; j < writes.size(); ++j) {
      if (applied_results[j].ok()) {
        (void)shards_[writes[j].shard]->DeleteVersion(applied_results[j]->id);
      }
    }
    cleanup_staged();
    resolve(/*committed=*/false);
    // A timed-out apply is INDETERMINATE, not definitely-failed: the write
    // was on the wire, and a wedged-but-alive shard may still apply it
    // after we gave up (loopback had no timeouts; sockets do). Report that
    // honestly instead of claiming a clean rollback — the operator must
    // recheck that shard when it recovers, or replicas can diverge.
    bool indeterminate = false;
    for (const auto& result : applied_results) {
      if (!result.ok() && result.status().IsDeadlineExceeded()) {
        indeterminate = true;
        break;
      }
    }
    if (indeterminate) {
      return Status::Internal(
          "2pc apply timed out on shard " + std::to_string(writes[i].shard) +
          ": " + applied_results[i].status().message() +
          " (known applies rolled back, but the timed-out write's outcome "
          "is INDETERMINATE — verify that shard before trusting replicas)");
    }
    return Status::Internal(
        "2pc apply failed on shard " + std::to_string(writes[i].shard) +
        ": " + applied_results[i].status().message() +
        " (transaction rolled back)");
  }
  struct Slot {
    bool filled = false;
    PutResult result;      ///< Coordinator replica when replicated.
    double max_time_s = 0;
    size_t replicas = 0;
    size_t last_shard = 0;
  };
  std::map<size_t, Slot> slots;  // batch index -> merged result
  for (size_t i = 0; i < writes.size(); ++i) {
    const ShardWrite& w = writes[i];
    const PutResult& applied = *applied_results[i];
    Slot& slot = slots[w.batch_index];
    slot.replicas += 1;
    slot.last_shard = w.shard;
    slot.max_time_s = std::max(slot.max_time_s, applied.storage_time_s);
    if (!slot.filled || w.shard == coord) {
      slot.filled = true;
      slot.result = applied;
    }
  }
  cleanup_staged();
  resolve(/*committed=*/true);

  for (auto& [batch_index, slot] : slots) {
    // Replicas write in parallel in a real deployment: charge the slowest.
    slot.result.storage_time_s = slot.max_time_s;
    RecordVersion(slot.result.id,
                  slot.replicas > 1 ? kReplicated : slot.last_shard);
    (*results)[batch_index] = slot.result;
  }
  return Status::Ok();
}

// ------------------------------------------------------------ public API ---

StatusOr<PutResult> ShardedStorageEngine::Put(const std::string& key,
                                              std::string_view data) {
  if (!IsReplicated(key)) {
    return DirectPut(key, data);
  }
  // Replicated namespace: coordinate all live shards even for one key —
  // this is the branch-table/commit-log write path, and every shard must
  // agree. During a rebalance "all live" is the UNION of both epochs'
  // members: the leaving shard still serves replicated reads until it
  // drains, the joining one was pre-seeded by AddShard.
  std::lock_guard<std::mutex> txn_lock(txn_mu_);
  PutRequest request{key, std::string(data)};
  std::vector<ShardWrite> writes;
  const std::vector<size_t> replicas = live_members();
  writes.reserve(replicas.size());
  for (size_t s : replicas) {
    writes.push_back({s, 0, &request});
  }
  std::vector<PutResult> results(1);
  MLCASK_RETURN_IF_ERROR(RunTransactionLocked(writes, &results));
  return results[0];
}

StatusOr<std::vector<PutResult>> ShardedStorageEngine::PutMany(
    const std::vector<PutRequest>& batch) {
  if (batch.empty()) return std::vector<PutResult>();
  if (batch.size() == 1 && !IsReplicated(batch[0].key)) {
    // One write on one shard: no coordination needed.
    std::vector<PutResult> results(1);
    MLCASK_ASSIGN_OR_RETURN(results[0],
                            DirectPut(batch[0].key, batch[0].data));
    return results;
  }
  // Route under the transaction lock: migration batches serialize on it,
  // so a shard decided here cannot lose the key before the apply lands.
  std::lock_guard<std::mutex> txn_lock(txn_mu_);
  std::vector<ShardWrite> writes;
  const std::vector<size_t> replicas = live_members();
  for (size_t i = 0; i < batch.size(); ++i) {
    if (IsReplicated(batch[i].key)) {
      for (size_t s : replicas) {
        writes.push_back({s, i, &batch[i]});
      }
    } else {
      writes.push_back(
          {RouteKeyBlocking(batch[i].key, /*for_write=*/true), i, &batch[i]});
    }
  }
  std::vector<PutResult> results(batch.size());
  if (writes.empty()) return results;
  MLCASK_RETURN_IF_ERROR(RunTransactionLocked(writes, &results));
  return results;
}

StatusOr<std::string> ShardedStorageEngine::Get(const std::string& key) {
  if (IsReplicated(key)) {
    return shards_[coordinator_shard()]->Get(key);
  }
  return WithStableRoute(key, /*for_write=*/false,
                         [&](size_t shard) { return shards_[shard]->Get(key); });
}

StatusOr<std::string> ShardedStorageEngine::GetVersion(const Hash256& id) {
  {
    std::shared_lock<std::shared_mutex> lock(index_mu_);
    auto it = version_shard_.find(id);
    if (it != version_shard_.end()) {
      const size_t shard =
          it->second == kReplicated ? coordinator_shard() : it->second;
      lock.unlock();
      return shards_[shard]->GetVersion(id);
    }
  }
  // Not in the router index (e.g. a restored shard): broadcast probe, every
  // shard's round trip issued before the first response is inspected.
  // Responses are still judged in shard order, so the answer (first holder
  // wins, first non-NotFound error surfaces) is identical to the old
  // serial loop — only the wire latency stops multiplying by shard count.
  // Shards the health tracker knows are down are skipped (no timeout
  // burned); if the id is then found nowhere, the honest answer is a typed
  // Unavailable naming them, NOT NotFound — the version may well live on a
  // shard we could not ask.
  std::vector<std::pair<size_t, Deferred<std::string>>> probes;
  std::vector<size_t> probed;
  std::vector<size_t> skipped;
  const std::vector<size_t> live = live_members();
  probes.reserve(live.size());
  InflightMeter meter;
  for (size_t s : live) {
    if (SkipDownShard(s)) {
      skipped.push_back(s);
      continue;
    }
    probes.emplace_back(s, shards_[s]->AsyncGetVersion(id));
    probed.push_back(s);
    meter.Issue();
  }
  RecordBroadcast(meter.peak, probed);
  // One broadcast round = one accounting charge against the caller's
  // deadline budget, win or lose (early returns included): downstream
  // stamps after this probe must be strictly smaller.
  DeadlineScope::ChargeCurrent(1);
  for (auto& [s, probe] : probes) {
    auto data = probe.Get();
    meter.Collect();
    NoteShardResult(s, data.ok() || data.status().IsNotFound()
                           ? Status::Ok()
                           : data.status());
    if (data.ok()) return data;
    if (!data.status().IsNotFound()) return data.status();
  }
  if (!skipped.empty()) {
    std::string names;
    for (size_t s : skipped) {
      if (!names.empty()) names += ",";
      names += std::to_string(s);
    }
    return Status::Unavailable("version " + id.ShortHex() +
                               " not on any reachable shard (shard(s) " +
                               names + " down, not probed)");
  }
  return Status::NotFound("version " + id.ShortHex() + " not on any shard");
}

bool ShardedStorageEngine::HasVersion(const Hash256& id) const {
  {
    std::shared_lock<std::shared_mutex> lock(index_mu_);
    auto it = version_shard_.find(id);
    if (it != version_shard_.end()) {
      const size_t shard =
          it->second == kReplicated ? coordinator_shard() : it->second;
      lock.unlock();
      return shards_[shard]->HasVersion(id);
    }
  }
  // Down shards are skipped: HasVersion has no error channel, so the
  // degraded answer for an unreachable holder is false (the documented
  // fallback for transport failure anyway).
  std::vector<std::pair<size_t, Deferred<bool>>> probes;
  std::vector<size_t> probed;
  const std::vector<size_t> live = live_members();
  probes.reserve(live.size());
  InflightMeter meter;
  for (size_t s : live) {
    if (SkipDownShard(s)) continue;
    probes.emplace_back(s, shards_[s]->AsyncHasVersion(id));
    probed.push_back(s);
    meter.Issue();
  }
  RecordBroadcast(meter.peak, probed);
  DeadlineScope::ChargeCurrent(1);  // broadcast round issued+collected below
  bool found = false;
  for (auto& [s, probe] : probes) {
    auto has = probe.Get();
    meter.Collect();
    // Every probe is collected (each answer feeds the health tracker);
    // any holder makes the answer true.
    NoteShardResult(s, has.ok() ? Status::Ok() : has.status());
    if (has.ok() && *has) found = true;
  }
  return found;
}

std::vector<Hash256> ShardedStorageEngine::Versions(
    const std::string& key) const {
  if (IsReplicated(key)) {
    return shards_[coordinator_shard()]->Versions(key);
  }
  return WithStableRoute(
      key, /*for_write=*/false,
      [&](size_t shard) { return shards_[shard]->Versions(key); });
}

std::vector<std::pair<std::string, Hash256>>
ShardedStorageEngine::ListAllVersions() const {
  std::vector<std::pair<std::string, Hash256>> all;
  const std::vector<size_t> live = live_members();
  const size_t coord = coordinator_shard();
  const bool dedupe = migration_in_progress();
  // Mid-migration a key copied but not yet cleared exists on both its old
  // and new owner; surface one logical copy.
  std::set<std::pair<std::string, Hash256>> seen;
  for (size_t s : live) {
    for (auto& entry : shards_[s]->ListAllVersions()) {
      if (IsInternalKey(entry.first)) continue;  // 2pc/migration records
      // Replicated keys exist on every shard; surface one logical copy.
      if (s != coord && IsReplicated(entry.first)) continue;
      if (dedupe && !seen.insert(entry).second) continue;
      all.push_back(std::move(entry));
    }
  }
  return all;
}

StatusOr<uint64_t> ShardedStorageEngine::DeleteVersion(const Hash256& id) {
  size_t shard = kReplicated;
  bool indexed = false;
  {
    std::shared_lock<std::shared_mutex> lock(index_mu_);
    auto it = version_shard_.find(id);
    if (it != version_shard_.end()) {
      shard = it->second;
      indexed = true;
    }
  }
  const std::vector<size_t> live = live_members();
  // A delete must be able to reach EVERY potential holder: deciding with a
  // down shard in the cluster risks leaking its replica or leaving a
  // replicated version half-deleted (permanent divergence). Fail fast with
  // a typed status instead; the caller retries once the shard is back.
  for (size_t s : live) {
    if (ShardDown(s)) {
      return Status::Unavailable(
          "cannot delete version " + id.ShortHex() + ": shard " +
          std::to_string(s) + " is down and may hold a replica");
    }
  }
  if (!indexed) {
    // Not in the router index (a restored shard): probe everywhere
    // (overlapped broadcast). More than one holder means a replicated
    // version — fall through to the delete-every-replica branch, otherwise
    // replicas would leak.
    std::vector<std::pair<size_t, Deferred<bool>>> probes;
    std::vector<size_t> probed;
    probes.reserve(live.size());
    InflightMeter meter;
    for (size_t s : live) {
      probes.emplace_back(s, shards_[s]->AsyncHasVersion(id));
      probed.push_back(s);
      meter.Issue();
    }
    RecordBroadcast(meter.peak, probed);
    std::vector<size_t> holders;
    Status probe_failure;
    for (auto& [s, probe] : probes) {
      auto has = probe.Get();
      meter.Collect();
      NoteShardResult(s, has.ok() ? Status::Ok() : has.status());
      if (!has.ok() && probe_failure.ok()) probe_failure = has.status();
      if (has.ok() && *has) holders.push_back(s);
    }
    if (!probe_failure.ok()) {
      // A shard that cannot answer might be the holder: deciding NotFound
      // here would leak its replica (and deleting only the reachable
      // replicas of a replicated version would leave the cluster
      // permanently divergent). Surface the failure; the caller retries
      // when the shard is back.
      return probe_failure;
    }
    if (holders.empty()) {
      return Status::NotFound("version " + id.ShortHex() + " not on any shard");
    }
    shard = holders.size() == 1 ? holders[0] : kReplicated;
  }
  uint64_t freed = 0;
  if (shard == kReplicated) {
    // Drop every replica; report one replica's freed bytes (the logical
    // view counts one copy).
    bool counted = false;
    for (size_t s : live) {
      auto result = shards_[s]->DeleteVersion(id);
      if (!result.ok() && !result.status().IsNotFound()) {
        return result.status();
      }
      if (result.ok() && !counted) {
        freed = *result;
        counted = true;
      }
    }
  } else {
    MLCASK_ASSIGN_OR_RETURN(freed, shards_[shard]->DeleteVersion(id));
  }
  {
    std::unique_lock<std::shared_mutex> lock(index_mu_);
    version_shard_.erase(id);
  }
  return freed;
}

EngineStats ShardedStorageEngine::stats() const {
  EngineStats total;
  for (size_t s : live_members()) {
    EngineStats shard_stats = shards_[s]->stats();
    total.logical_bytes += shard_stats.logical_bytes;
    total.physical_bytes += shard_stats.physical_bytes;
    total.storage_time_s += shard_stats.storage_time_s;
    total.puts += shard_stats.puts;
    total.gets += shard_stats.gets;
  }
  return total;
}

std::string ShardedStorageEngine::Name() const {
  const std::vector<size_t> live = live_members();
  return "sharded-" + std::to_string(live.size()) + "x[" +
         shards_[live.front()]->Name() + "]";
}

double ShardedStorageEngine::ReadCost(uint64_t bytes) const {
  return shards_[coordinator_shard()]->ReadCost(bytes);
}

ShardedStorageEngine::TwoPhaseStats ShardedStorageEngine::two_phase_stats()
    const {
  std::lock_guard<std::mutex> lock(tp_stats_mu_);
  return tp_stats_;
}

Status ShardedStorageEngine::RecoverTwoPhase() {
  // Recovery is itself a coordinated mutation: hold the transaction lock so
  // no new transaction interleaves with the scan-and-resolve pass.
  std::lock_guard<std::mutex> txn_lock(txn_mu_);
  return RecoverTwoPhaseLocked();
}

Status ShardedStorageEngine::RecoverTwoPhaseLocked() {
  const size_t coord = coordinator_shard();

  struct StagedRecord {
    size_t shard = 0;
    std::string key;  ///< Full staging key (intent or decision).
    Hash256 id;
    bool is_decision = false;
  };
  std::map<uint64_t, std::vector<StagedRecord>> txns;
  std::map<uint64_t, bool> committed;  ///< Decision present on coordinator.
  uint64_t max_txn = 0;
  for (size_t s : live_members()) {
    for (const auto& [key, id] : shards_[s]->ListAllVersions()) {
      uint64_t txn = 0;
      bool is_decision = false;
      if (!ParseStagingKey(key, &txn, &is_decision)) continue;
      txns[txn].push_back({s, key, id, is_decision});
      // Only the coordinator's copy of the decision is authoritative: the
      // coordinator never writes it anywhere else, so a stray decision on
      // another shard is garbage and gets deleted with the rest.
      if (is_decision && s == coord) committed[txn] = true;
      max_txn = std::max(max_txn, txn);
    }
  }

  uint64_t recovered = 0;
  uint64_t fenced = 0;
  uint64_t replayed = 0;
  Status first_failure;

  for (auto& [txn, records] : txns) {
    bool roll_forward = committed.count(txn) > 0;
    if (roll_forward) {
      // Committed: the dead coordinator promised these writes. Re-apply
      // each staged intent — idempotently: a write the coordinator already
      // landed exists as a version of the target key with the intent's
      // exact bytes, and is recognized instead of applied again.
      // Replicated keys (the same target key staged on >1 shard) re-enter
      // the router index as replicated.
      std::map<std::string, size_t> key_shards;  // target key -> shard count
      struct Replay {
        size_t shard;
        std::string key;
        std::string data;
      };
      std::vector<Replay> replays;
      bool txn_ok = true;
      for (const StagedRecord& record : records) {
        if (record.is_decision) continue;
        auto payload = shards_[record.shard]->GetVersion(record.id);
        if (!payload.ok()) {
          if (first_failure.ok()) {
            first_failure = Status(
                payload.status().code(),
                "2pc recovery cannot read intent " + record.key +
                    " on shard " + std::to_string(record.shard) + ": " +
                    payload.status().message());
          }
          txn_ok = false;
          break;
        }
        std::string_view target_key;
        std::string_view data;
        if (!ParseIntentPayload(*payload, &target_key, &data)) {
          if (first_failure.ok()) {
            first_failure = Status::Corruption(
                "2pc recovery found a malformed intent payload under " +
                record.key);
          }
          txn_ok = false;
          break;
        }
        key_shards[std::string(target_key)] += 1;
        replays.push_back(
            {record.shard, std::string(target_key), std::string(data)});
      }
      if (!txn_ok) continue;  // Leave the records; a later pass retries.
      for (const Replay& replay : replays) {
        bool already_applied = false;
        for (const Hash256& vid :
             shards_[replay.shard]->Versions(replay.key)) {
          auto existing = shards_[replay.shard]->GetVersion(vid);
          if (existing.ok() && *existing == replay.data) {
            already_applied = true;
            RecordVersion(vid, key_shards[replay.key] > 1 ? kReplicated
                                                          : replay.shard);
            break;
          }
        }
        if (already_applied) continue;
        auto put = shards_[replay.shard]->Put(replay.key, replay.data);
        if (!put.ok()) {
          if (first_failure.ok()) {
            first_failure = Status(
                put.status().code(),
                "2pc recovery failed to replay " + replay.key +
                    " on shard " + std::to_string(replay.shard) + ": " +
                    put.status().message());
          }
          txn_ok = false;
          break;
        }
        RecordVersion(put->id,
                      key_shards[replay.key] > 1 ? kReplicated : replay.shard);
        replayed += 1;
      }
      if (!txn_ok) continue;
    }
    // Resolved (rolled forward or fenced): destroy every staging record so
    // the writes can never surface again and a rescan comes back clean.
    for (const StagedRecord& record : records) {
      (void)shards_[record.shard]->DeleteVersion(record.id);
    }
    if (roll_forward) {
      recovered += 1;
    } else {
      fenced += 1;
    }
  }

  // A rebuilt router restarts its transaction counter at 0; bump it past
  // every id seen on disk so new staging keys can never collide with
  // leftovers from a previous incarnation.
  if (!txns.empty()) {
    uint64_t expected = txn_counter_.load(std::memory_order_relaxed);
    while (expected <= max_txn &&
           !txn_counter_.compare_exchange_weak(expected, max_txn + 1,
                                               std::memory_order_relaxed)) {
    }
  }

  {
    std::lock_guard<std::mutex> stats_lock(tp_stats_mu_);
    tp_stats_.recovered_transactions += recovered;
    tp_stats_.fenced_transactions += fenced;
    tp_stats_.replayed_writes += replayed;
  }
  return first_failure;
}

void ShardedStorageEngine::RecordBroadcast(
    uint64_t measured_peak_inflight, const std::vector<size_t>& probed) const {
  std::lock_guard<std::mutex> lock(bc_stats_mu_);
  bc_stats_.broadcasts += 1;
  bc_stats_.probe_round_trips += probed.size();
  bc_stats_.max_inflight_probes =
      std::max(bc_stats_.max_inflight_probes, measured_peak_inflight);
  for (size_t s : probed) bc_stats_.per_shard_probes[s] += 1;
}

ShardedStorageEngine::BroadcastStats ShardedStorageEngine::broadcast_stats()
    const {
  std::lock_guard<std::mutex> lock(bc_stats_mu_);
  return bc_stats_;
}

// ------------------------------------------------------------- rebalance ---

ShardedStorageEngine::MigrationStats ShardedStorageEngine::migration_stats()
    const {
  std::lock_guard<std::mutex> lock(mig_stats_mu_);
  return mig_stats_;
}

Status ShardedStorageEngine::PersistPlan(const ShardRing& from,
                                         const ShardRing& to) {
  // The plan lives on the NEW ring's first member: a slot that survives
  // the change by construction (a leaving slot is never in `to`).
  const size_t home = to.members.front();
  auto put = shards_[home]->Put(std::string(kPlanKey),
                                SerializePlan(from, to,
                                              options_.virtual_nodes_per_shard));
  NoteShardResult(home, put.ok() ? Status::Ok() : put.status());
  if (!put.ok()) {
    return Status(put.status().code(),
                  "cannot persist migration plan on shard " +
                      std::to_string(home) + ": " + put.status().message());
  }
  return Status::Ok();
}

Status ShardedStorageEngine::AddShard(std::unique_ptr<StorageEngine> shard) {
  return AddShard(std::move(shard), MigrationOptions());
}

Status ShardedStorageEngine::RemoveShard(size_t slot) {
  return RemoveShard(slot, MigrationOptions());
}

Status ShardedStorageEngine::ResumeMigration() {
  return ResumeMigration(MigrationOptions());
}

Status ShardedStorageEngine::AddShard(std::unique_ptr<StorageEngine> shard,
                                      const MigrationOptions& opts) {
  if (shard == nullptr) {
    return Status::InvalidArgument("AddShard needs an engine");
  }
  std::unique_lock<std::mutex> txn_lock(txn_mu_);
  if (migration_in_progress()) {
    return Status::FailedPrecondition(
        "a rebalance is already in progress (epoch " +
        std::to_string(ring_epoch()) + ")");
  }
  ShardRing old_ring;
  size_t new_slot = 0;
  {
    std::shared_lock<std::shared_mutex> topo(topo_mu_);
    if (shards_.size() >= kSlotCapacity) {
      return Status::FailedPrecondition("slot capacity (" +
                                        std::to_string(kSlotCapacity) +
                                        ") exhausted");
    }
    old_ring = current_ring_;
    new_slot = shards_.size();
  }
  // Seed the replicated namespace onto the new shard while it is still
  // unroutable: every live shard must carry it before the first
  // replicated read or 2PC fan-out can land there. Holding txn_mu_ keeps
  // the namespace frozen for the copy.
  const size_t coord = old_ring.members.front();
  std::set<std::string> replicated_keys;
  for (const auto& [key, id] : shards_[coord]->ListAllVersions()) {
    if (IsInternalKey(key) || !IsReplicated(key)) continue;
    replicated_keys.insert(key);
  }
  std::vector<MigrateKeyVersions> seed;
  seed.reserve(replicated_keys.size());
  for (const std::string& key : replicated_keys) {
    MigrateKeyVersions entry;
    entry.key = key;
    for (const Hash256& id : shards_[coord]->Versions(key)) {
      auto data = shards_[coord]->GetVersion(id);
      if (!data.ok()) {
        return Status(data.status().code(),
                      "cannot read replicated key '" + key +
                          "' for the new shard: " + data.status().message());
      }
      entry.versions.emplace_back(id, std::move(*data));
    }
    seed.push_back(std::move(entry));
  }
  if (!seed.empty()) {
    auto copied = shard->MigrateBatch(seed);
    if (!copied.ok()) {
      return Status(copied.status().code(),
                    "cannot seed replicated namespace on the new shard: " +
                        copied.status().message());
    }
  }
  std::vector<size_t> members = old_ring.members;
  members.push_back(new_slot);
  ShardRing next = BuildShardRing(old_ring.epoch + 1, std::move(members),
                                  options_.virtual_nodes_per_shard);
  // Durable plan BEFORE the epoch flips: a router killed right after the
  // install still leaves a resumable record behind. A failed plan write
  // aborts cleanly — nothing changed yet.
  MLCASK_RETURN_IF_ERROR(PersistPlan(old_ring, next));
  {
    std::unique_lock<std::shared_mutex> topo(topo_mu_);
    shards_.push_back(std::move(shard));
    prev_ring_ = current_ring_;
    current_ring_ = std::move(next);
    migrating_.store(true, std::memory_order_release);
  }
  {
    std::lock_guard<std::mutex> mig(mig_mu_);
    mig_cursor_.clear();
    mig_dirty_.clear();
  }
  // Drain in-flight writes routed under the PRE-install single-epoch ring:
  // they carry no dirty mark (routing predates the dual-epoch window), so
  // they must have landed before the first enumeration pass or the cursor
  // could overtake them. Writes routed after the install are dirty-tracked.
  { std::unique_lock<std::shared_mutex> drain(mig_write_mu_); }
  // Grow the per-slot telemetry under each owner's lock.
  {
    std::lock_guard<std::mutex> lock(health_mu_);
    consecutive_failures_.push_back(0);
    half_open_skips_.push_back(0);
  }
  {
    std::lock_guard<std::mutex> lock(tp_stats_mu_);
    tp_stats_.per_shard_round_trips.push_back(0);
  }
  {
    std::lock_guard<std::mutex> lock(bc_stats_mu_);
    bc_stats_.per_shard_probes.push_back(0);
  }
  {
    std::lock_guard<std::mutex> lock(mig_stats_mu_);
    mig_stats_.epoch = ring_epoch();
  }
  txn_lock.unlock();
  return DriveMigration(opts);
}

Status ShardedStorageEngine::RemoveShard(size_t slot,
                                         const MigrationOptions& opts) {
  std::unique_lock<std::mutex> txn_lock(txn_mu_);
  if (migration_in_progress()) {
    return Status::FailedPrecondition(
        "a rebalance is already in progress (epoch " +
        std::to_string(ring_epoch()) + ")");
  }
  ShardRing old_ring;
  {
    std::shared_lock<std::shared_mutex> topo(topo_mu_);
    old_ring = current_ring_;
  }
  if (!old_ring.Contains(slot)) {
    return Status::InvalidArgument("shard " + std::to_string(slot) +
                                   " is not a live member");
  }
  if (old_ring.members.size() <= 1) {
    return Status::FailedPrecondition("cannot remove the last shard");
  }
  // Resolve every staged transaction under the OLD topology first: its
  // commit decisions live on the OLD coordinator, which may be exactly the
  // slot that is leaving.
  MLCASK_RETURN_IF_ERROR(RecoverTwoPhaseLocked());
  std::vector<size_t> members;
  members.reserve(old_ring.members.size() - 1);
  for (size_t s : old_ring.members) {
    if (s != slot) members.push_back(s);
  }
  ShardRing next = BuildShardRing(old_ring.epoch + 1, std::move(members),
                                  options_.virtual_nodes_per_shard);
  MLCASK_RETURN_IF_ERROR(PersistPlan(old_ring, next));
  {
    std::unique_lock<std::shared_mutex> topo(topo_mu_);
    prev_ring_ = current_ring_;
    current_ring_ = std::move(next);
    migrating_.store(true, std::memory_order_release);
  }
  {
    std::lock_guard<std::mutex> mig(mig_mu_);
    mig_cursor_.clear();
    mig_dirty_.clear();
  }
  // Same pre-install write drain as AddShard (see the comment there).
  { std::unique_lock<std::shared_mutex> drain(mig_write_mu_); }
  {
    std::lock_guard<std::mutex> lock(mig_stats_mu_);
    mig_stats_.epoch = ring_epoch();
  }
  txn_lock.unlock();
  return DriveMigration(opts);
}

Status ShardedStorageEngine::ResumeMigration(const MigrationOptions& opts) {
  if (migration_in_progress()) {
    // Paused in-memory (max_batches): the dual-epoch window is still
    // installed, just keep driving.
    return DriveMigration(opts);
  }
  // Scan for the durable plan a killed router left behind. A shard that
  // cannot ANSWER is an error, not "no plan": it may hold the plan of a
  // resumable migration, and silently serving single-epoch against a ring
  // that does not match the physical data layout would misroute every
  // reassigned key without surfacing anything.
  std::string plan_bytes;
  size_t plan_slot = 0;
  bool found = false;
  for (size_t s : live_members()) {
    auto plan = shards_[s]->Get(std::string(kPlanKey));
    NoteShardResult(s, plan.ok() || plan.status().IsNotFound()
                           ? Status::Ok()
                           : plan.status());
    if (plan.ok()) {
      plan_bytes = std::move(*plan);
      plan_slot = s;
      found = true;
      break;
    }
    if (!plan.status().IsNotFound()) {
      return Status(plan.status().code(),
                    "cannot scan shard " + std::to_string(s) +
                        " for a resumable migration plan: " +
                        plan.status().message());
    }
  }
  // No migration to resume: honor the durable record of the last
  // FINALIZED topology instead, if any (a rebuilt router dialing a stale
  // endpoint list needs it to stop routing keys to a drained slot).
  if (!found) return RestoreDurableTopology();
  uint64_t epoch = 0;
  std::vector<size_t> from;
  std::vector<size_t> to;
  size_t vnodes = 0;
  if (!ParsePlan(plan_bytes, &epoch, &from, &to, &vnodes)) {
    return Status::Corruption("unparseable migration plan on shard " +
                              std::to_string(plan_slot));
  }
  const size_t slots = SlotCount();
  for (size_t s : from) {
    if (s >= slots) {
      return Status::FailedPrecondition(
          "migration plan references slot " + std::to_string(s) +
          " but only " + std::to_string(slots) + " are connected");
    }
  }
  for (size_t s : to) {
    if (s >= slots) {
      return Status::FailedPrecondition(
          "migration plan references slot " + std::to_string(s) +
          " but only " + std::to_string(slots) + " are connected");
    }
  }
  std::string cursor;
  auto cur = shards_[plan_slot]->Get(std::string(kCursorKey));
  if (cur.ok()) {
    cursor = std::move(*cur);
  } else if (!cur.status().IsNotFound()) {
    return cur.status();
  }
  {
    std::unique_lock<std::mutex> txn_lock(txn_mu_);
    {
      std::unique_lock<std::shared_mutex> topo(topo_mu_);
      prev_ring_ = BuildShardRing(epoch > 0 ? epoch - 1 : 0, from, vnodes);
      current_ring_ = BuildShardRing(epoch, to, vnodes);
      migrating_.store(true, std::memory_order_release);
    }
    {
      std::lock_guard<std::mutex> mig(mig_mu_);
      mig_cursor_ = std::move(cursor);
      mig_dirty_.clear();
    }
    // Same pre-install write drain as AddShard (see the comment there).
    { std::unique_lock<std::shared_mutex> drain(mig_write_mu_); }
    {
      std::lock_guard<std::mutex> lock(mig_stats_mu_);
      mig_stats_.resumes += 1;
      mig_stats_.epoch = epoch;
    }
  }
  return DriveMigration(opts);
}

Status ShardedStorageEngine::RestoreDurableTopology() {
  // Take the record with the highest epoch: a surviving member always
  // carries the latest finalize's write as its newest version, but a slot
  // re-added after a drain may still hold an older record.
  uint64_t best_epoch = 0;
  std::vector<size_t> best_members;
  size_t best_vnodes = 0;
  bool have_topology = false;
  for (size_t s : live_members()) {
    auto record = shards_[s]->Get(std::string(kTopologyKey));
    NoteShardResult(s, record.ok() || record.status().IsNotFound()
                           ? Status::Ok()
                           : record.status());
    if (!record.ok()) {
      if (record.status().IsNotFound()) continue;
      // Same rationale as the plan scan: an unreachable shard may hold the
      // record that retires a drained slot from the ring.
      return Status(record.status().code(),
                    "cannot scan shard " + std::to_string(s) +
                        " for a durable topology record: " +
                        record.status().message());
    }
    uint64_t epoch = 0;
    std::vector<size_t> members;
    size_t vnodes = 0;
    if (!ParseTopology(*record, &epoch, &members, &vnodes)) {
      return Status::Corruption("unparseable topology record on shard " +
                                std::to_string(s));
    }
    if (!have_topology || epoch > best_epoch) {
      best_epoch = epoch;
      best_members = std::move(members);
      best_vnodes = vnodes;
      have_topology = true;
    }
  }
  if (!have_topology) return Status::Ok();
  const size_t slots = SlotCount();
  for (size_t s : best_members) {
    if (s >= slots) {
      return Status::FailedPrecondition(
          "topology record references slot " + std::to_string(s) +
          " but only " + std::to_string(slots) + " are connected (re-dial "
          "the full slot list, drained endpoints included)");
    }
  }
  std::lock_guard<std::mutex> txn_lock(txn_mu_);
  {
    std::unique_lock<std::shared_mutex> topo(topo_mu_);
    if (current_ring_.epoch >= best_epoch) return Status::Ok();
    current_ring_ = BuildShardRing(best_epoch, best_members, best_vnodes);
  }
  {
    std::lock_guard<std::mutex> lock(mig_stats_mu_);
    mig_stats_.epoch = best_epoch;
  }
  return Status::Ok();
}

std::vector<KeyMove> ShardedStorageEngine::EnumerateMoves() const {
  ShardRing current;
  std::vector<size_t> live;
  {
    std::shared_lock<std::shared_mutex> topo(topo_mu_);
    if (!migrating_.load(std::memory_order_acquire)) return {};
    current = current_ring_;
    live = current_ring_.members;
    for (size_t s : prev_ring_.members) {
      if (std::find(live.begin(), live.end(), s) == live.end()) {
        live.push_back(s);
      }
    }
  }
  std::sort(live.begin(), live.end());
  // Any object key sitting on a live slot the CURRENT ring does not route
  // it to must move there: the initial reassignment, keys written to old
  // owners mid-migration, and crash residue (copied but not yet cleared)
  // all reduce to the same rule.
  std::vector<KeyMove> moves;
  std::set<std::string> seen;
  for (size_t s : live) {
    for (const auto& [key, id] : shards_[s]->ListAllVersions()) {
      if (IsInternalKey(key) || IsReplicated(key)) continue;
      const size_t owner = RingOwner(current, key);
      if (owner == s) continue;
      if (!seen.insert(key).second) continue;
      moves.push_back({key, s, owner});
    }
  }
  std::sort(moves.begin(), moves.end(),
            [](const KeyMove& a, const KeyMove& b) { return a.key < b.key; });
  return moves;
}

StatusOr<size_t> ShardedStorageEngine::MigrateOneBatch(
    const std::vector<KeyMove>& moves, size_t byte_budget) {
  // One batch is one critical section against coordinated transactions:
  // merges route-and-apply under txn_mu_, so holding it here means no
  // transaction can have routed to a source shard this batch is about to
  // clear. The cost is that replicated writes and PutMany stall for the
  // batch's round trips — which is what `byte_budget` bounds: a batch of
  // large artifacts ships a truncated prefix instead of holding the lock
  // for an unbounded payload.
  std::lock_guard<std::mutex> txn_lock(txn_mu_);
  // Ring snapshot for the dirty-key fold below (lock order: topo before
  // mig, same as TryRouteKey).
  ShardRing cur_ring;
  ShardRing old_ring;
  {
    std::shared_lock<std::shared_mutex> topo(topo_mu_);
    cur_ring = current_ring_;
    old_ring = prev_ring_;
  }
  std::vector<KeyMove> batch = moves;
  {
    std::lock_guard<std::mutex> mig(mig_mu_);
    // From here until the batch lands, write routes past the cursor WAIT
    // (TryRouteKey): no key can become misplaced under the cursor advance.
    mig_batch_active_ = true;
    // Fold in every dirty key at or below this batch's last key: they were
    // written to their old owner AFTER the pass enumeration (so no batch
    // of this pass would otherwise carry them), and the cursor is about to
    // pass them — advancing without them is how a key's data gets
    // stranded at a shard the router no longer routes it to.
    std::set<std::string_view> in_batch;
    for (const KeyMove& mv : batch) in_batch.insert(mv.key);
    const std::string& batch_max = moves.back().key;
    // Collected separately: appending to `batch` mid-loop would reallocate
    // it and dangle the `in_batch` views into its keys.
    std::vector<KeyMove> folded;
    for (const std::string& dirty : mig_dirty_) {
      if (dirty > batch_max) break;  // set iterates sorted
      if (in_batch.count(dirty) != 0) continue;
      const size_t from = RingOwner(old_ring, dirty);
      const size_t to = RingOwner(cur_ring, dirty);
      if (from == to) continue;  // defensive: only reassigned keys get dirty
      folded.push_back({dirty, from, to});
    }
    batch.insert(batch.end(), std::make_move_iterator(folded.begin()),
                 std::make_move_iterator(folded.end()));
    std::sort(batch.begin(), batch.end(),
              [](const KeyMove& a, const KeyMove& b) { return a.key < b.key; });
    for (const KeyMove& mv : batch) inflight_keys_.insert(mv.key);
  }
  // Drain: once this unique lock has been held (however briefly), every
  // routed call that decided BEFORE the keys went in flight (and before
  // the write gate closed) has finished; later calls observe the in-flight
  // set / the gate and wait for the batch.
  { std::unique_lock<std::shared_mutex> drain(mig_write_mu_); }
  auto unblock = [this] {
    std::lock_guard<std::mutex> mig(mig_mu_);
    inflight_keys_.clear();
    mig_batch_active_ = false;
    mig_cv_.notify_all();
  };

  // Read every version of every moving key from its source shard, up to
  // the byte budget: a truncated batch ships its sorted PREFIX (the cursor
  // advance stays correct) and reports how much of `moves` it consumed.
  struct Moved {
    const KeyMove* mv = nullptr;
    std::vector<Hash256> ids;
  };
  std::map<size_t, std::vector<MigrateKeyVersions>> by_dest;
  std::vector<Moved> moved;
  uint64_t bytes = 0;
  size_t included = 0;  ///< Prefix of `batch` this round actually ships.
  for (const KeyMove& mv : batch) {
    if (byte_budget != 0 && included > 0 && bytes >= byte_budget) break;
    ++included;
    std::vector<Hash256> ids = shards_[mv.from]->Versions(mv.key);
    if (ids.empty()) continue;  // deleted concurrently; nothing to move
    MigrateKeyVersions entry;
    entry.key = mv.key;
    entry.versions.reserve(ids.size());
    for (const Hash256& id : ids) {
      auto data = shards_[mv.from]->GetVersion(id);
      if (!data.ok()) {
        unblock();
        return Status(data.status().code(),
                      "rebalance cannot read '" + mv.key + "' from shard " +
                          std::to_string(mv.from) + ": " +
                          data.status().message());
      }
      bytes += data->size();
      entry.versions.emplace_back(id, std::move(*data));
    }
    by_dest[mv.to].push_back(std::move(entry));
    moved.push_back({&mv, std::move(ids)});
  }

  // Ship one MigrateBatch per destination, all round trips overlapped.
  std::vector<std::pair<size_t, Deferred<MigrateBatchResult>>> ships;
  ships.reserve(by_dest.size());
  for (auto& [dest, batch] : by_dest) {
    ships.emplace_back(dest, shards_[dest]->AsyncMigrateBatch(batch));
  }
  uint64_t applied = 0;
  uint64_t skipped = 0;
  Status ship_failure;
  size_t failed_shard = 0;
  for (auto& [dest, deferred] : ships) {
    auto result = deferred.Get();
    NoteShardResult(dest, result.ok() ? Status::Ok() : result.status());
    if (!result.ok()) {
      if (ship_failure.ok()) {
        ship_failure = result.status();
        failed_shard = dest;
      }
      continue;
    }
    applied += result->applied_versions;
    skipped += result->skipped_versions;
  }
  // One shipped migration round consumed one accounting unit of any caller
  // deadline budget — later hops (cursor persist, next batch) stamp less.
  DeadlineScope::ChargeCurrent(1);
  if (!ship_failure.ok()) {
    unblock();
    return Status(ship_failure.code(),
                  "rebalance batch failed on shard " +
                      std::to_string(failed_shard) + ": " +
                      ship_failure.message() +
                      " (migration still installed; resume when the shard "
                      "is back)");
  }

  // Persist the cursor BEFORE clearing the sources: a crash after this
  // point replays the batch as skips plus residual deletes — never as
  // data loss. (Before this point the copies simply happen again.) The
  // cursor advances exactly to the last key this batch SHIPPED — never to
  // a key from the pass enumeration the byte budget truncated away, and
  // never past a dirty key the batch did not fold in.
  const std::string& last_key = batch[included - 1].key;
  std::string new_cursor;
  {
    std::lock_guard<std::mutex> mig(mig_mu_);
    new_cursor = std::max(mig_cursor_, last_key);
  }
  const size_t home = plan_shard();
  auto persisted = shards_[home]->Put(std::string(kCursorKey), new_cursor);
  NoteShardResult(home,
                  persisted.ok() ? Status::Ok() : persisted.status());
  if (!persisted.ok()) {
    unblock();
    return Status(persisted.status().code(),
                  "rebalance cannot persist cursor on shard " +
                      std::to_string(home) + ": " +
                      persisted.status().message());
  }
  size_t dirty_consumed = 0;
  {
    std::lock_guard<std::mutex> mig(mig_mu_);
    mig_cursor_ = new_cursor;
    // Every key at or below the cursor is at its new owner now; the dirty
    // entries this batch covered are resolved.
    const auto resolved_end = mig_dirty_.upper_bound(new_cursor);
    dirty_consumed = static_cast<size_t>(
        std::distance(mig_dirty_.begin(), resolved_end));
    mig_dirty_.erase(mig_dirty_.begin(), resolved_end);
  }

  // Re-home the version index, then clear the source copies.
  for (const Moved& m : moved) {
    for (const Hash256& id : m.ids) {
      RecordVersion(id, m.mv->to);
    }
    for (const Hash256& id : m.ids) {
      auto freed = shards_[m.mv->from]->DeleteVersion(id);
      if (!freed.ok() && !freed.status().IsNotFound()) {
        unblock();
        return Status(freed.status().code(),
                      "rebalance cannot clear source copy of '" + m.mv->key +
                          "' on shard " + std::to_string(m.mv->from) + ": " +
                          freed.status().message());
      }
    }
  }

  {
    std::lock_guard<std::mutex> lock(mig_stats_mu_);
    mig_stats_.keys_migrated += moved.size();
    mig_stats_.versions_migrated += applied;
    mig_stats_.skipped_versions += skipped;
    mig_stats_.bytes_migrated += bytes;
    mig_stats_.batches += 1;
    mig_stats_.cursor_writes += 1;
    mig_stats_.dirty_keys_migrated += dirty_consumed;
  }
  unblock();
  // How much of the caller's `moves` slice this batch covered (everything
  // at or below the shipped prefix's last key — the rest was truncated by
  // the byte budget and goes around again).
  size_t consumed = 0;
  while (consumed < moves.size() && moves[consumed].key <= last_key) {
    ++consumed;
  }
  return consumed;
}

Status ShardedStorageEngine::DriveMigration(const MigrationOptions& opts) {
  const size_t batch_keys = std::max<size_t>(1, opts.batch_keys);
  uint64_t batches_done = 0;
  while (true) {
    std::vector<KeyMove> moves = EnumerateMoves();
    if (moves.empty()) {
      // Quiesce writers, then confirm no straggler appeared between the
      // two enumerations — only then flip to single-epoch routing.
      std::lock_guard<std::mutex> txn_lock(txn_mu_);
      { std::unique_lock<std::shared_mutex> drain(mig_write_mu_); }
      moves = EnumerateMoves();
      if (moves.empty()) return FinalizeMigrationLocked();
    }
    for (size_t begin = 0; begin < moves.size();) {
      if (opts.max_batches != 0 && batches_done >= opts.max_batches) {
        // Paused: the dual-epoch window stays installed; ResumeMigration
        // picks up from the (durable) cursor.
        return Status::Ok();
      }
      const size_t end = std::min(moves.size(), begin + batch_keys);
      std::vector<KeyMove> batch(moves.begin() + begin, moves.begin() + end);
      auto consumed = MigrateOneBatch(batch, opts.batch_bytes);
      if (!consumed.ok()) return consumed.status();
      // A byte-truncated batch consumes only a prefix; the remainder goes
      // into the next round. (`consumed` can even be 0 when the whole
      // budget went to folded-in dirty keys below this slice — the cursor
      // still advanced, so the drive always makes progress.)
      begin += *consumed;
      ++batches_done;
    }
  }
}

Status ShardedStorageEngine::FinalizeMigrationLocked() {
  ShardRing current;
  ShardRing prev;
  {
    std::shared_lock<std::shared_mutex> topo(topo_mu_);
    if (!migrating_.load(std::memory_order_acquire)) return Status::Ok();
    current = current_ring_;
    prev = prev_ring_;
  }
  // Drain every leaving slot EMPTY: after key migration the only residue
  // is the replicated namespace (still correct on every surviving member)
  // plus any internal leftovers.
  for (size_t s : prev.members) {
    if (current.Contains(s)) continue;
    for (const auto& [key, id] : shards_[s]->ListAllVersions()) {
      auto freed = shards_[s]->DeleteVersion(id);
      if (!freed.ok() && !freed.status().IsNotFound()) {
        return Status(freed.status().code(),
                      "cannot drain leaving shard " + std::to_string(s) +
                          " (key '" + key + "'): " + freed.status().message());
      }
    }
  }
  // Persist the surviving membership on every remaining member BEFORE the
  // plan is retired: a router rebuilt from the original (pre-shrink) engine
  // list finds this record and restores the post-migration ring instead of
  // routing a slice of the keyspace to a drained slot. Every member carries
  // a copy so the record survives any single surviving shard being down.
  const std::string topology =
      SerializeTopology(current, options_.virtual_nodes_per_shard);
  for (size_t s : current.members) {
    auto put = shards_[s]->Put(std::string(kTopologyKey), topology);
    NoteShardResult(s, put.ok() ? Status::Ok() : put.status());
    if (!put.ok()) {
      return Status(put.status().code(),
                    "cannot persist final topology on shard " +
                        std::to_string(s) + ": " + put.status().message());
    }
  }
  // Retire the durable plan and cursor: the migration is over, a later
  // ResumeMigration must find nothing.
  const size_t home = current.members.front();
  for (std::string_view bookkeeping : {kPlanKey, kCursorKey}) {
    const std::string key(bookkeeping);
    for (const Hash256& id : shards_[home]->Versions(key)) {
      auto freed = shards_[home]->DeleteVersion(id);
      if (!freed.ok() && !freed.status().IsNotFound()) {
        return Status(freed.status().code(),
                      "cannot retire migration record '" + key +
                          "': " + freed.status().message());
      }
    }
  }
  {
    std::unique_lock<std::shared_mutex> topo(topo_mu_);
    prev_ring_ = ShardRing{};
    migrating_.store(false, std::memory_order_release);
  }
  {
    std::lock_guard<std::mutex> mig(mig_mu_);
    mig_cursor_.clear();
    mig_dirty_.clear();
  }
  return Status::Ok();
}

// ------------------------------------------------------------- factories ---

std::unique_ptr<StorageEngine> MakeLoopbackShard(
    std::unique_ptr<StorageEngine> backend) {
  // Ownership chain: proxy -> transport -> (shared) service -> backend.
  auto service = std::make_shared<StorageEngineService>(std::move(backend));
  auto transport = std::make_unique<LoopbackTransport>(
      [service](std::string_view request) {
        return service->Handle(request);
      });
  return std::make_unique<RemoteStorageEngine>(std::move(transport));
}

std::unique_ptr<ShardedStorageEngine> MakeLoopbackCluster(
    size_t shards,
    const std::function<std::unique_ptr<StorageEngine>()>& backend_factory,
    ShardedStorageEngine::Options options) {
  MLCASK_CHECK_MSG(shards > 0, "cluster needs at least one shard");
  std::vector<std::unique_ptr<StorageEngine>> proxies;
  proxies.reserve(shards);
  for (size_t s = 0; s < shards; ++s) {
    proxies.push_back(MakeLoopbackShard(backend_factory()));
  }
  return std::make_unique<ShardedStorageEngine>(std::move(proxies),
                                                std::move(options));
}

}  // namespace mlcask::storage
