#include "storage/sharded_engine.h"

#include <algorithm>
#include <mutex>
#include <set>
#include <utility>

#include "common/logging.h"
#include "common/sha256.h"
#include "common/strings.h"
#include "storage/remote_engine.h"
#include "storage/transport.h"

namespace mlcask::storage {

namespace {

constexpr std::string_view kStagingPrefix = "__2pc__/";
/// Header prepended to staged intent payloads so their content ids live in
/// a private namespace: cleanup deletes by content id, and without the
/// header a user object whose bytes happened to equal "key\x1f data" would
/// alias the staged blob and be deleted with it. (A user payload starting
/// with this exact header can still alias — the StorageEngine interface
/// has no delete-one-key's-version primitive — but only deliberately.)
constexpr std::string_view kIntentHeader = "__2pc-intent__\x1f";

uint64_t RingPoint(std::string_view label) {
  Hash256 h = Sha256::Digest(label.data(), label.size());
  uint64_t point = 0;
  for (size_t i = 0; i < 8; ++i) point = (point << 8) | h.bytes[i];
  return point;
}

bool IsStagingKey(std::string_view key) {
  return StartsWith(key, kStagingPrefix);
}

/// Parses a staging key's transaction id and flags the per-transaction
/// commit-decision record (`__2pc__/txn<N>/decision`). Returns false for
/// keys that merely share the prefix without following the layout — those
/// are not ours to resolve.
bool ParseStagingKey(std::string_view key, uint64_t* txn, bool* is_decision) {
  if (!StartsWith(key, kStagingPrefix)) return false;
  std::string_view rest = key.substr(kStagingPrefix.size());
  if (!StartsWith(rest, "txn")) return false;
  rest.remove_prefix(3);
  size_t i = 0;
  uint64_t value = 0;
  while (i < rest.size() && rest[i] >= '0' && rest[i] <= '9') {
    value = value * 10 + static_cast<uint64_t>(rest[i] - '0');
    ++i;
  }
  if (i == 0 || i >= rest.size() || rest[i] != '/') return false;
  *txn = value;
  *is_decision = rest.substr(i + 1) == "decision";
  return true;
}

/// Splits a staged intent payload back into (target key, data). Mirrors the
/// encoding in RunTransaction's phase 1.
bool ParseIntentPayload(std::string_view payload, std::string_view* key,
                        std::string_view* data) {
  if (!StartsWith(payload, kIntentHeader)) return false;
  payload.remove_prefix(kIntentHeader.size());
  const size_t sep = payload.find('\x1f');
  if (sep == std::string_view::npos) return false;
  *key = payload.substr(0, sep);
  *data = payload.substr(sep + 1);
  return true;
}

/// Measures one fan-out's overlap: issued round trips raise `inflight`,
/// collected ones lower it, `peak` keeps the high-water mark. An
/// issue-all-then-collect fan-out peaks at N; a serial issue-wait loop
/// never leaves 1 — which is exactly what the round-trip ledgers record.
struct InflightMeter {
  uint64_t inflight = 0;
  uint64_t peak = 0;
  void Issue() { peak = std::max(peak, ++inflight); }
  void Collect() { --inflight; }
};

}  // namespace

ShardedStorageEngine::ShardedStorageEngine(
    std::vector<std::unique_ptr<StorageEngine>> shards)
    : ShardedStorageEngine(std::move(shards), Options()) {}

ShardedStorageEngine::ShardedStorageEngine(
    std::vector<std::unique_ptr<StorageEngine>> shards, Options options)
    : shards_(std::move(shards)), options_(std::move(options)) {
  MLCASK_CHECK_MSG(!shards_.empty(),
                   "sharded engine needs at least one shard");
  const size_t vnodes = std::max<size_t>(1, options_.virtual_nodes_per_shard);
  for (size_t s = 0; s < shards_.size(); ++s) {
    for (size_t v = 0; v < vnodes; ++v) {
      // First-writer-wins on the (astronomically unlikely) point collision;
      // the ring stays deterministic either way.
      ring_.emplace(
          RingPoint("ring/" + std::to_string(s) + "#" + std::to_string(v)), s);
    }
  }
  tp_stats_.per_shard_round_trips.assign(shards_.size(), 0);
  bc_stats_.per_shard_probes.assign(shards_.size(), 0);
  consecutive_failures_.assign(shards_.size(), 0);
  half_open_skips_.assign(shards_.size(), 0);
}

void ShardedStorageEngine::NoteShardResult(size_t shard,
                                           const Status& status) const {
  std::lock_guard<std::mutex> lock(health_mu_);
  if (status.ok()) {
    consecutive_failures_[shard] = 0;
    half_open_skips_[shard] = 0;
    return;
  }
  // Only unreachability counts against health: a shard that ANSWERS with
  // NotFound / InvalidArgument / etc. is alive and routing to it is fine.
  if (status.code() == StatusCode::kUnavailable ||
      status.code() == StatusCode::kDeadlineExceeded) {
    consecutive_failures_[shard] += 1;
  }
}

bool ShardedStorageEngine::SkipDownShard(size_t shard) const {
  std::lock_guard<std::mutex> lock(health_mu_);
  if (consecutive_failures_[shard] < kDownFailures) return false;
  half_open_skips_[shard] += 1;
  // Half-open: let every kHalfOpenEvery-th fan-out through so a recovered
  // shard's first success resets the streak without operator action.
  return half_open_skips_[shard] % kHalfOpenEvery != 0;
}

bool ShardedStorageEngine::ShardDown(size_t shard) const {
  std::lock_guard<std::mutex> lock(health_mu_);
  return consecutive_failures_[shard] >= kDownFailures;
}

ShardedStorageEngine::ShardHealthView ShardedStorageEngine::shard_health()
    const {
  std::lock_guard<std::mutex> lock(health_mu_);
  ShardHealthView view;
  view.state.reserve(shards_.size());
  for (uint64_t failures : consecutive_failures_) {
    view.state.push_back(failures == 0 ? ShardHealth::kUp
                         : failures < kDownFailures ? ShardHealth::kDegraded
                                                    : ShardHealth::kDown);
  }
  view.consecutive_failures = consecutive_failures_;
  return view;
}

void ShardedStorageEngine::MarkShardRecovered(size_t shard) {
  std::lock_guard<std::mutex> lock(health_mu_);
  consecutive_failures_[shard] = 0;
  half_open_skips_[shard] = 0;
}

size_t ShardedStorageEngine::ShardForKey(std::string_view key) const {
  auto it = ring_.lower_bound(RingPoint(key));
  if (it == ring_.end()) it = ring_.begin();  // wrap around the ring
  return it->second;
}

bool ShardedStorageEngine::IsReplicated(std::string_view key) const {
  for (const std::string& prefix : options_.replicated_prefixes) {
    if (StartsWith(key, prefix)) return true;
  }
  return false;
}

void ShardedStorageEngine::RecordVersion(const Hash256& id, size_t shard) {
  std::unique_lock<std::shared_mutex> lock(index_mu_);
  version_shard_[id] = shard;
}

StatusOr<PutResult> ShardedStorageEngine::DirectPut(size_t shard,
                                                    const std::string& key,
                                                    std::string_view data) {
  auto result = shards_[shard]->Put(key, data);
  NoteShardResult(shard, result.ok() ? Status::Ok() : result.status());
  if (!result.ok()) return result.status();
  RecordVersion(result->id, shard);
  return *result;
}

Status ShardedStorageEngine::RunTransaction(
    const std::vector<ShardWrite>& writes, std::vector<PutResult>* results) {
  // One coordinated transaction at a time: without this, two concurrent
  // transactions touching a replicated key could interleave their apply
  // loops in opposite orders on different shards, leaving the replicas'
  // latest-version views permanently divergent. Transactions are
  // control-plane writes (commit logs, merge winners), so serializing them
  // costs nothing on the hot path; uncoordinated DirectPuts never take it.
  std::lock_guard<std::mutex> txn_lock(txn_mu_);
  const uint64_t txn = txn_counter_.fetch_add(1, std::memory_order_relaxed);
  // Round-trip ledger of THIS transaction, accumulated locally while the
  // phases run. The InflightMeter records whatever overlap the code
  // structure actually achieved — the overlapped fan-out reaches the
  // participant count, a serial issue-wait loop never leaves 1.
  struct {
    uint64_t prepare_round_trips = 0;
    uint64_t apply_round_trips = 0;
    uint64_t decision_round_trips = 0;
    InflightMeter meter;
    std::vector<uint64_t> per_shard;
    void Issue(size_t shard) {
      meter.Issue();
      per_shard[shard] += 1;
    }
    void Collect() { meter.Collect(); }
  } ledger;
  ledger.per_shard.assign(shards_.size(), 0);
  // Telemetry lands in tp_stats_ as ONE unit when the transaction resolves
  // (commit or abort), never piecemeal: a concurrent stats reader must see
  // transactions == commits + aborts in every snapshot.
  auto resolve = [&](bool committed) {
    std::lock_guard<std::mutex> stats_lock(tp_stats_mu_);
    tp_stats_.transactions += 1;
    tp_stats_.prepared_writes += writes.size();
    if (committed) {
      tp_stats_.commits += 1;
    } else {
      tp_stats_.aborts += 1;
    }
    tp_stats_.prepare_round_trips += ledger.prepare_round_trips;
    tp_stats_.apply_round_trips += ledger.apply_round_trips;
    tp_stats_.decision_round_trips += ledger.decision_round_trips;
    tp_stats_.max_inflight_round_trips =
        std::max(tp_stats_.max_inflight_round_trips, ledger.meter.peak);
    for (size_t s = 0; s < shards_.size(); ++s) {
      tp_stats_.per_shard_round_trips[s] += ledger.per_shard[s];
    }
  };

  auto staging_key_for = [&](size_t write_index) {
    return StrFormat("%stxn%llu/s%zu/w%zu",
                     std::string(kStagingPrefix).c_str(),
                     static_cast<unsigned long long>(txn),
                     writes[write_index].shard, write_index);
  };

  /// The durable commit decision for THIS transaction, written to shard 0
  /// (and only shard 0 — one authority, no split brain) after a unanimous
  /// prepare. Recovery rolls a transaction forward iff this record exists.
  const std::string decision_key =
      StrFormat("%stxn%llu/decision", std::string(kStagingPrefix).c_str(),
                static_cast<unsigned long long>(txn));

  // Participant shards and their writes, in original write order.
  std::map<size_t, std::vector<size_t>> by_shard;
  for (size_t i = 0; i < writes.size(); ++i) {
    by_shard[writes[i].shard].push_back(i);
  }

  // Health pre-check: a participant the router already knows is down makes
  // the outcome a foregone conclusion — abort with a typed status BEFORE
  // staging anything, instead of burning a per-shard timeout to rediscover
  // it. SkipDownShard's half-open pass-through still lets every
  // kHalfOpenEvery-th transaction probe the shard, so recovery needs no
  // operator action.
  for (const auto& [shard, indices] : by_shard) {
    if (SkipDownShard(shard)) {
      resolve(/*committed=*/false);
      return Status::Unavailable(
          "2pc aborted before staging: shard " + std::to_string(shard) +
          " is down (" +
          std::to_string(shard_health().consecutive_failures[shard]) +
          " consecutive failures)");
    }
  }

  // Staging keys are deterministic, so cleanup resolves what actually
  // landed by LOOKUP rather than by remembered ids — it stays correct even
  // when a prepare batch failed halfway and returned no results. Leftover
  // staging records would be invisible anyway (filtered from
  // ListAllVersions); best effort is fine.
  auto cleanup_staged = [&]() {
    for (const auto& [shard, indices] : by_shard) {
      for (size_t i : indices) {
        for (const Hash256& id : shards_[shard]->Versions(staging_key_for(i))) {
          (void)shards_[shard]->DeleteVersion(id);
        }
      }
    }
    // The decision record is part of the transaction's staging footprint:
    // commit and abort alike must leave zero __2pc__/ keys behind.
    for (const Hash256& id : shards_[0]->Versions(decision_key)) {
      (void)shards_[0]->DeleteVersion(id);
    }
  };

  // Phase 1: stage every payload on its participant shard — ONE PutMany
  // batch per shard (a single message on a remote proxy), every
  // participant's batch ISSUED before any response is collected, so the
  // prepare round trips overlap instead of serializing over the wire. The
  // staged blob binds the target key to the data, so a recovering shard
  // could replay the intent; on a deduplicating engine the staged chunks
  // also make the phase-2 write transfer almost nothing new.
  std::vector<std::pair<size_t, Deferred<std::vector<PutResult>>>> prepares;
  prepares.reserve(by_shard.size());
  for (const auto& [shard, indices] : by_shard) {
    std::vector<PutRequest> staging;
    staging.reserve(indices.size());
    for (size_t i : indices) {
      std::string intent(kIntentHeader);
      intent.append(writes[i].request->key);
      intent.push_back('\x1f');
      intent.append(writes[i].request->data);
      staging.push_back({staging_key_for(i), std::move(intent)});
    }
    prepares.emplace_back(shard, shards_[shard]->AsyncPutMany(staging));
    ledger.Issue(shard);
    ledger.prepare_round_trips += 1;
  }
  Status prepare_failure;
  size_t prepare_failed_shard = 0;
  for (auto& [shard, deferred] : prepares) {
    auto prepared = deferred.Get();
    ledger.Collect();
    NoteShardResult(shard,
                    prepared.ok() ? Status::Ok() : prepared.status());
    if (!prepared.ok() && prepare_failure.ok()) {
      prepare_failure = prepared.status();
      prepare_failed_shard = shard;
    }
  }
  if (!prepare_failure.ok()) {
    cleanup_staged();
    resolve(/*committed=*/false);
    return Status(prepare_failure.code(),
                  "2pc prepare failed on shard " +
                      std::to_string(prepare_failed_shard) + ": " +
                      prepare_failure.message());
  }

  // Decision point: persist the commit decision durably on shard 0 BEFORE
  // any real write lands. From here on a crashed coordinator's transaction
  // is recoverable — RecoverTwoPhase finds the decision and rolls the
  // staged intents forward; without it the intents are fenced. A failed
  // decision write is therefore a clean abort: nothing real has applied.
  {
    std::string decision(kIntentHeader);
    decision.append("commit");
    ledger.Issue(0);
    ledger.decision_round_trips += 1;
    auto decided = shards_[0]->Put(decision_key, decision);
    ledger.Collect();
    NoteShardResult(0, decided.ok() ? Status::Ok() : decided.status());
    if (!decided.ok()) {
      cleanup_staged();
      resolve(/*committed=*/false);
      return Status(decided.status().code(),
                    "2pc decision write failed on shard 0: " +
                        decided.status().message() +
                        " (transaction aborted, nothing applied)");
    }
  }

  // Phase 2: unanimous prepare — apply the real writes. Applies stay
  // per-write (a failure must know exactly which version ids to roll back),
  // but ALL of them are issued before any is collected: same-shard writes
  // pipeline in order on one session (preserving each engine's
  // key+ordinal version-id sequence), different shards' applies overlap.
  std::vector<Deferred<PutResult>> applies;
  applies.reserve(writes.size());
  for (const ShardWrite& w : writes) {
    applies.push_back(
        shards_[w.shard]->AsyncPut(w.request->key, w.request->data));
    ledger.Issue(w.shard);
    ledger.apply_round_trips += 1;
  }
  std::vector<StatusOr<PutResult>> applied_results;
  applied_results.reserve(writes.size());
  for (size_t i = 0; i < applies.size(); ++i) {
    applied_results.push_back(applies[i].Get());
    ledger.Collect();
    NoteShardResult(writes[i].shard, applied_results.back().ok()
                                         ? Status::Ok()
                                         : applied_results.back().status());
  }
  for (size_t i = 0; i < writes.size(); ++i) {
    if (applied_results[i].ok()) continue;
    // Prepare voted yes everywhere, so an apply failure is a broken
    // participant, not a routine abort — but partial state must not
    // surface. REVOKE the commit decision first: once it is gone a
    // concurrent or later recovery fences this transaction instead of
    // rolling it forward, so the rollback below cannot race a re-apply.
    // (If the coordinator dies between this delete and the rollback, the
    // already-applied writes survive as real versions — a known limitation;
    // the recovery scan at least can no longer resurrect the rest.)
    for (const Hash256& did : shards_[0]->Versions(decision_key)) {
      (void)shards_[0]->DeleteVersion(did);
    }
    // Roll back every write that DID apply (safe even for
    // deduplicated applies: both engines derive version ids from
    // key + ordinal, so a fresh Put always creates a fresh id and the
    // delete can never take an older object with it) and account the
    // transaction as aborted.
    for (size_t j = 0; j < writes.size(); ++j) {
      if (applied_results[j].ok()) {
        (void)shards_[writes[j].shard]->DeleteVersion(applied_results[j]->id);
      }
    }
    cleanup_staged();
    resolve(/*committed=*/false);
    // A timed-out apply is INDETERMINATE, not definitely-failed: the write
    // was on the wire, and a wedged-but-alive shard may still apply it
    // after we gave up (loopback had no timeouts; sockets do). Report that
    // honestly instead of claiming a clean rollback — the operator must
    // recheck that shard when it recovers, or replicas can diverge.
    bool indeterminate = false;
    for (const auto& result : applied_results) {
      if (!result.ok() && result.status().IsDeadlineExceeded()) {
        indeterminate = true;
        break;
      }
    }
    if (indeterminate) {
      return Status::Internal(
          "2pc apply timed out on shard " + std::to_string(writes[i].shard) +
          ": " + applied_results[i].status().message() +
          " (known applies rolled back, but the timed-out write's outcome "
          "is INDETERMINATE — verify that shard before trusting replicas)");
    }
    return Status::Internal(
        "2pc apply failed on shard " + std::to_string(writes[i].shard) +
        ": " + applied_results[i].status().message() +
        " (transaction rolled back)");
  }
  struct Slot {
    bool filled = false;
    PutResult result;      ///< Shard-0 replica when replicated.
    double max_time_s = 0;
    size_t replicas = 0;
    size_t last_shard = 0;
  };
  std::map<size_t, Slot> slots;  // batch index -> merged result
  for (size_t i = 0; i < writes.size(); ++i) {
    const ShardWrite& w = writes[i];
    const PutResult& applied = *applied_results[i];
    Slot& slot = slots[w.batch_index];
    slot.replicas += 1;
    slot.last_shard = w.shard;
    slot.max_time_s = std::max(slot.max_time_s, applied.storage_time_s);
    if (!slot.filled || w.shard == 0) {
      slot.filled = true;
      slot.result = applied;
    }
  }
  cleanup_staged();
  resolve(/*committed=*/true);

  for (auto& [batch_index, slot] : slots) {
    // Replicas write in parallel in a real deployment: charge the slowest.
    slot.result.storage_time_s = slot.max_time_s;
    RecordVersion(slot.result.id,
                  slot.replicas > 1 ? kReplicated : slot.last_shard);
    (*results)[batch_index] = slot.result;
  }
  return Status::Ok();
}

StatusOr<PutResult> ShardedStorageEngine::Put(const std::string& key,
                                              std::string_view data) {
  if (!IsReplicated(key)) {
    return DirectPut(ShardForKey(key), key, data);
  }
  // Replicated namespace: coordinate all shards even for one key — this is
  // the branch-table/commit-log write path, and every shard must agree.
  PutRequest request{key, std::string(data)};
  std::vector<ShardWrite> writes;
  writes.reserve(shards_.size());
  for (size_t s = 0; s < shards_.size(); ++s) {
    writes.push_back({s, 0, &request});
  }
  std::vector<PutResult> results(1);
  MLCASK_RETURN_IF_ERROR(RunTransaction(writes, &results));
  return results[0];
}

StatusOr<std::vector<PutResult>> ShardedStorageEngine::PutMany(
    const std::vector<PutRequest>& batch) {
  std::vector<ShardWrite> writes;
  std::set<size_t> participants;
  bool any_replicated = false;
  for (size_t i = 0; i < batch.size(); ++i) {
    if (IsReplicated(batch[i].key)) {
      any_replicated = true;
      for (size_t s = 0; s < shards_.size(); ++s) {
        writes.push_back({s, i, &batch[i]});
        participants.insert(s);
      }
    } else {
      size_t s = ShardForKey(batch[i].key);
      writes.push_back({s, i, &batch[i]});
      participants.insert(s);
    }
  }
  std::vector<PutResult> results(batch.size());
  if (writes.empty()) return results;
  if (participants.size() == 1 && !any_replicated && batch.size() == 1) {
    // One write on one shard: no coordination needed.
    MLCASK_ASSIGN_OR_RETURN(results[0],
                            DirectPut(writes[0].shard, batch[0].key,
                                      batch[0].data));
    return results;
  }
  MLCASK_RETURN_IF_ERROR(RunTransaction(writes, &results));
  return results;
}

StatusOr<std::string> ShardedStorageEngine::Get(const std::string& key) {
  const size_t shard = IsReplicated(key) ? 0 : ShardForKey(key);
  return shards_[shard]->Get(key);
}

StatusOr<std::string> ShardedStorageEngine::GetVersion(const Hash256& id) {
  {
    std::shared_lock<std::shared_mutex> lock(index_mu_);
    auto it = version_shard_.find(id);
    if (it != version_shard_.end()) {
      const size_t shard = it->second == kReplicated ? 0 : it->second;
      lock.unlock();
      return shards_[shard]->GetVersion(id);
    }
  }
  // Not in the router index (e.g. a restored shard): broadcast probe, every
  // shard's round trip issued before the first response is inspected.
  // Responses are still judged in shard order, so the answer (first holder
  // wins, first non-NotFound error surfaces) is identical to the old
  // serial loop — only the wire latency stops multiplying by shard count.
  // Shards the health tracker knows are down are skipped (no timeout
  // burned); if the id is then found nowhere, the honest answer is a typed
  // Unavailable naming them, NOT NotFound — the version may well live on a
  // shard we could not ask.
  std::vector<std::pair<size_t, Deferred<std::string>>> probes;
  std::vector<size_t> probed;
  std::vector<size_t> skipped;
  probes.reserve(shards_.size());
  InflightMeter meter;
  for (size_t s = 0; s < shards_.size(); ++s) {
    if (SkipDownShard(s)) {
      skipped.push_back(s);
      continue;
    }
    probes.emplace_back(s, shards_[s]->AsyncGetVersion(id));
    probed.push_back(s);
    meter.Issue();
  }
  RecordBroadcast(meter.peak, probed);
  for (auto& [s, probe] : probes) {
    auto data = probe.Get();
    meter.Collect();
    NoteShardResult(s, data.ok() || data.status().IsNotFound()
                           ? Status::Ok()
                           : data.status());
    if (data.ok()) return data;
    if (!data.status().IsNotFound()) return data.status();
  }
  if (!skipped.empty()) {
    std::string names;
    for (size_t s : skipped) {
      if (!names.empty()) names += ",";
      names += std::to_string(s);
    }
    return Status::Unavailable("version " + id.ShortHex() +
                               " not on any reachable shard (shard(s) " +
                               names + " down, not probed)");
  }
  return Status::NotFound("version " + id.ShortHex() + " not on any shard");
}

bool ShardedStorageEngine::HasVersion(const Hash256& id) const {
  {
    std::shared_lock<std::shared_mutex> lock(index_mu_);
    auto it = version_shard_.find(id);
    if (it != version_shard_.end()) {
      const size_t shard = it->second == kReplicated ? 0 : it->second;
      lock.unlock();
      return shards_[shard]->HasVersion(id);
    }
  }
  // Down shards are skipped: HasVersion has no error channel, so the
  // degraded answer for an unreachable holder is false (the documented
  // fallback for transport failure anyway).
  std::vector<std::pair<size_t, Deferred<bool>>> probes;
  std::vector<size_t> probed;
  probes.reserve(shards_.size());
  InflightMeter meter;
  for (size_t s = 0; s < shards_.size(); ++s) {
    if (SkipDownShard(s)) continue;
    probes.emplace_back(s, shards_[s]->AsyncHasVersion(id));
    probed.push_back(s);
    meter.Issue();
  }
  RecordBroadcast(meter.peak, probed);
  bool found = false;
  for (auto& [s, probe] : probes) {
    auto has = probe.Get();
    meter.Collect();
    // Every probe is collected (each answer feeds the health tracker);
    // any holder makes the answer true.
    NoteShardResult(s, has.ok() ? Status::Ok() : has.status());
    if (has.ok() && *has) found = true;
  }
  return found;
}

std::vector<Hash256> ShardedStorageEngine::Versions(
    const std::string& key) const {
  const size_t shard = IsReplicated(key) ? 0 : ShardForKey(key);
  return shards_[shard]->Versions(key);
}

std::vector<std::pair<std::string, Hash256>>
ShardedStorageEngine::ListAllVersions() const {
  std::vector<std::pair<std::string, Hash256>> all;
  for (size_t s = 0; s < shards_.size(); ++s) {
    for (auto& entry : shards_[s]->ListAllVersions()) {
      if (IsStagingKey(entry.first)) continue;  // internal 2pc records
      // Replicated keys exist on every shard; surface one logical copy.
      if (s != 0 && IsReplicated(entry.first)) continue;
      all.push_back(std::move(entry));
    }
  }
  return all;
}

StatusOr<uint64_t> ShardedStorageEngine::DeleteVersion(const Hash256& id) {
  size_t shard = kReplicated;
  bool indexed = false;
  {
    std::shared_lock<std::shared_mutex> lock(index_mu_);
    auto it = version_shard_.find(id);
    if (it != version_shard_.end()) {
      shard = it->second;
      indexed = true;
    }
  }
  // A delete must be able to reach EVERY potential holder: deciding with a
  // down shard in the cluster risks leaking its replica or leaving a
  // replicated version half-deleted (permanent divergence). Fail fast with
  // a typed status instead; the caller retries once the shard is back.
  for (size_t s = 0; s < shards_.size(); ++s) {
    if (ShardDown(s)) {
      return Status::Unavailable(
          "cannot delete version " + id.ShortHex() + ": shard " +
          std::to_string(s) + " is down and may hold a replica");
    }
  }
  if (!indexed) {
    // Not in the router index (a restored shard): probe everywhere
    // (overlapped broadcast). More than one holder means a replicated
    // version — fall through to the delete-every-replica branch, otherwise
    // replicas would leak.
    std::vector<Deferred<bool>> probes;
    std::vector<size_t> probed;
    probes.reserve(shards_.size());
    InflightMeter meter;
    for (size_t s = 0; s < shards_.size(); ++s) {
      probes.push_back(shards_[s]->AsyncHasVersion(id));
      probed.push_back(s);
      meter.Issue();
    }
    RecordBroadcast(meter.peak, probed);
    std::vector<size_t> holders;
    Status probe_failure;
    for (size_t s = 0; s < shards_.size(); ++s) {
      auto has = probes[s].Get();
      meter.Collect();
      NoteShardResult(s, has.ok() ? Status::Ok() : has.status());
      if (!has.ok() && probe_failure.ok()) probe_failure = has.status();
      if (has.ok() && *has) holders.push_back(s);
    }
    if (!probe_failure.ok()) {
      // A shard that cannot answer might be the holder: deciding NotFound
      // here would leak its replica (and deleting only the reachable
      // replicas of a replicated version would leave the cluster
      // permanently divergent). Surface the failure; the caller retries
      // when the shard is back.
      return probe_failure;
    }
    if (holders.empty()) {
      return Status::NotFound("version " + id.ShortHex() + " not on any shard");
    }
    shard = holders.size() == 1 ? holders[0] : kReplicated;
  }
  uint64_t freed = 0;
  if (shard == kReplicated) {
    // Drop every replica; report one replica's freed bytes (the logical
    // view counts one copy).
    bool counted = false;
    for (size_t s = 0; s < shards_.size(); ++s) {
      auto result = shards_[s]->DeleteVersion(id);
      if (!result.ok() && !result.status().IsNotFound()) {
        return result.status();
      }
      if (result.ok() && !counted) {
        freed = *result;
        counted = true;
      }
    }
  } else {
    MLCASK_ASSIGN_OR_RETURN(freed, shards_[shard]->DeleteVersion(id));
  }
  {
    std::unique_lock<std::shared_mutex> lock(index_mu_);
    version_shard_.erase(id);
  }
  return freed;
}

EngineStats ShardedStorageEngine::stats() const {
  EngineStats total;
  for (const auto& shard : shards_) {
    EngineStats s = shard->stats();
    total.logical_bytes += s.logical_bytes;
    total.physical_bytes += s.physical_bytes;
    total.storage_time_s += s.storage_time_s;
    total.puts += s.puts;
    total.gets += s.gets;
  }
  return total;
}

std::string ShardedStorageEngine::Name() const {
  return "sharded-" + std::to_string(shards_.size()) + "x[" +
         shards_[0]->Name() + "]";
}

double ShardedStorageEngine::ReadCost(uint64_t bytes) const {
  return shards_[0]->ReadCost(bytes);
}

ShardedStorageEngine::TwoPhaseStats ShardedStorageEngine::two_phase_stats()
    const {
  std::lock_guard<std::mutex> lock(tp_stats_mu_);
  return tp_stats_;
}

Status ShardedStorageEngine::RecoverTwoPhase() {
  // Recovery is itself a coordinated mutation: hold the transaction lock so
  // no new transaction interleaves with the scan-and-resolve pass.
  std::lock_guard<std::mutex> txn_lock(txn_mu_);

  struct StagedRecord {
    size_t shard = 0;
    std::string key;  ///< Full staging key (intent or decision).
    Hash256 id;
    bool is_decision = false;
  };
  std::map<uint64_t, std::vector<StagedRecord>> txns;
  std::map<uint64_t, bool> committed;  ///< Decision present on shard 0.
  uint64_t max_txn = 0;
  for (size_t s = 0; s < shards_.size(); ++s) {
    for (const auto& [key, id] : shards_[s]->ListAllVersions()) {
      uint64_t txn = 0;
      bool is_decision = false;
      if (!ParseStagingKey(key, &txn, &is_decision)) continue;
      txns[txn].push_back({s, key, id, is_decision});
      // Only shard 0's copy of the decision is authoritative: the
      // coordinator never writes it anywhere else, so a stray decision on
      // another shard is garbage and gets deleted with the rest.
      if (is_decision && s == 0) committed[txn] = true;
      max_txn = std::max(max_txn, txn);
    }
  }

  uint64_t recovered = 0;
  uint64_t fenced = 0;
  uint64_t replayed = 0;
  Status first_failure;

  for (auto& [txn, records] : txns) {
    bool roll_forward = committed.count(txn) > 0;
    if (roll_forward) {
      // Committed: the dead coordinator promised these writes. Re-apply
      // each staged intent — idempotently: a write the coordinator already
      // landed exists as a version of the target key with the intent's
      // exact bytes, and is recognized instead of applied again.
      // Replicated keys (the same target key staged on >1 shard) re-enter
      // the router index as replicated.
      std::map<std::string, size_t> key_shards;  // target key -> shard count
      struct Replay {
        size_t shard;
        std::string key;
        std::string data;
      };
      std::vector<Replay> replays;
      bool txn_ok = true;
      for (const StagedRecord& record : records) {
        if (record.is_decision) continue;
        auto payload = shards_[record.shard]->GetVersion(record.id);
        if (!payload.ok()) {
          if (first_failure.ok()) {
            first_failure = Status(
                payload.status().code(),
                "2pc recovery cannot read intent " + record.key +
                    " on shard " + std::to_string(record.shard) + ": " +
                    payload.status().message());
          }
          txn_ok = false;
          break;
        }
        std::string_view target_key;
        std::string_view data;
        if (!ParseIntentPayload(*payload, &target_key, &data)) {
          if (first_failure.ok()) {
            first_failure = Status::Corruption(
                "2pc recovery found a malformed intent payload under " +
                record.key);
          }
          txn_ok = false;
          break;
        }
        key_shards[std::string(target_key)] += 1;
        replays.push_back(
            {record.shard, std::string(target_key), std::string(data)});
      }
      if (!txn_ok) continue;  // Leave the records; a later pass retries.
      for (const Replay& replay : replays) {
        bool already_applied = false;
        for (const Hash256& vid :
             shards_[replay.shard]->Versions(replay.key)) {
          auto existing = shards_[replay.shard]->GetVersion(vid);
          if (existing.ok() && *existing == replay.data) {
            already_applied = true;
            RecordVersion(vid, key_shards[replay.key] > 1 ? kReplicated
                                                          : replay.shard);
            break;
          }
        }
        if (already_applied) continue;
        auto put = shards_[replay.shard]->Put(replay.key, replay.data);
        if (!put.ok()) {
          if (first_failure.ok()) {
            first_failure = Status(
                put.status().code(),
                "2pc recovery failed to replay " + replay.key +
                    " on shard " + std::to_string(replay.shard) + ": " +
                    put.status().message());
          }
          txn_ok = false;
          break;
        }
        RecordVersion(put->id,
                      key_shards[replay.key] > 1 ? kReplicated : replay.shard);
        replayed += 1;
      }
      if (!txn_ok) continue;
    }
    // Resolved (rolled forward or fenced): destroy every staging record so
    // the writes can never surface again and a rescan comes back clean.
    for (const StagedRecord& record : records) {
      (void)shards_[record.shard]->DeleteVersion(record.id);
    }
    if (roll_forward) {
      recovered += 1;
    } else {
      fenced += 1;
    }
  }

  // A rebuilt router restarts its transaction counter at 0; bump it past
  // every id seen on disk so new staging keys can never collide with
  // leftovers from a previous incarnation.
  if (!txns.empty()) {
    uint64_t expected = txn_counter_.load(std::memory_order_relaxed);
    while (expected <= max_txn &&
           !txn_counter_.compare_exchange_weak(expected, max_txn + 1,
                                               std::memory_order_relaxed)) {
    }
  }

  {
    std::lock_guard<std::mutex> stats_lock(tp_stats_mu_);
    tp_stats_.recovered_transactions += recovered;
    tp_stats_.fenced_transactions += fenced;
    tp_stats_.replayed_writes += replayed;
  }
  return first_failure;
}

void ShardedStorageEngine::RecordBroadcast(
    uint64_t measured_peak_inflight, const std::vector<size_t>& probed) const {
  std::lock_guard<std::mutex> lock(bc_stats_mu_);
  bc_stats_.broadcasts += 1;
  bc_stats_.probe_round_trips += probed.size();
  bc_stats_.max_inflight_probes =
      std::max(bc_stats_.max_inflight_probes, measured_peak_inflight);
  for (size_t s : probed) bc_stats_.per_shard_probes[s] += 1;
}

ShardedStorageEngine::BroadcastStats ShardedStorageEngine::broadcast_stats()
    const {
  std::lock_guard<std::mutex> lock(bc_stats_mu_);
  return bc_stats_;
}

std::unique_ptr<ShardedStorageEngine> MakeLoopbackCluster(
    size_t shards,
    const std::function<std::unique_ptr<StorageEngine>()>& backend_factory,
    ShardedStorageEngine::Options options) {
  MLCASK_CHECK_MSG(shards > 0, "cluster needs at least one shard");
  std::vector<std::unique_ptr<StorageEngine>> proxies;
  proxies.reserve(shards);
  for (size_t s = 0; s < shards; ++s) {
    // Ownership chain: proxy -> transport -> (shared) service -> backend.
    auto service =
        std::make_shared<StorageEngineService>(backend_factory());
    auto transport = std::make_unique<LoopbackTransport>(
        [service](std::string_view request) {
          return service->Handle(request);
        });
    proxies.push_back(
        std::make_unique<RemoteStorageEngine>(std::move(transport)));
  }
  return std::make_unique<ShardedStorageEngine>(std::move(proxies),
                                                std::move(options));
}

}  // namespace mlcask::storage
