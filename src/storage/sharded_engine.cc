#include "storage/sharded_engine.h"

#include <algorithm>
#include <mutex>
#include <set>
#include <utility>

#include "common/logging.h"
#include "common/sha256.h"
#include "common/strings.h"
#include "storage/remote_engine.h"
#include "storage/transport.h"

namespace mlcask::storage {

namespace {

constexpr std::string_view kStagingPrefix = "__2pc__/";
/// Header prepended to staged intent payloads so their content ids live in
/// a private namespace: cleanup deletes by content id, and without the
/// header a user object whose bytes happened to equal "key\x1f data" would
/// alias the staged blob and be deleted with it. (A user payload starting
/// with this exact header can still alias — the StorageEngine interface
/// has no delete-one-key's-version primitive — but only deliberately.)
constexpr std::string_view kIntentHeader = "__2pc-intent__\x1f";

uint64_t RingPoint(std::string_view label) {
  Hash256 h = Sha256::Digest(label.data(), label.size());
  uint64_t point = 0;
  for (size_t i = 0; i < 8; ++i) point = (point << 8) | h.bytes[i];
  return point;
}

bool IsStagingKey(std::string_view key) {
  return StartsWith(key, kStagingPrefix);
}

/// Measures one fan-out's overlap: issued round trips raise `inflight`,
/// collected ones lower it, `peak` keeps the high-water mark. An
/// issue-all-then-collect fan-out peaks at N; a serial issue-wait loop
/// never leaves 1 — which is exactly what the round-trip ledgers record.
struct InflightMeter {
  uint64_t inflight = 0;
  uint64_t peak = 0;
  void Issue() { peak = std::max(peak, ++inflight); }
  void Collect() { --inflight; }
};

}  // namespace

ShardedStorageEngine::ShardedStorageEngine(
    std::vector<std::unique_ptr<StorageEngine>> shards)
    : ShardedStorageEngine(std::move(shards), Options()) {}

ShardedStorageEngine::ShardedStorageEngine(
    std::vector<std::unique_ptr<StorageEngine>> shards, Options options)
    : shards_(std::move(shards)), options_(std::move(options)) {
  MLCASK_CHECK_MSG(!shards_.empty(),
                   "sharded engine needs at least one shard");
  const size_t vnodes = std::max<size_t>(1, options_.virtual_nodes_per_shard);
  for (size_t s = 0; s < shards_.size(); ++s) {
    for (size_t v = 0; v < vnodes; ++v) {
      // First-writer-wins on the (astronomically unlikely) point collision;
      // the ring stays deterministic either way.
      ring_.emplace(
          RingPoint("ring/" + std::to_string(s) + "#" + std::to_string(v)), s);
    }
  }
  tp_stats_.per_shard_round_trips.assign(shards_.size(), 0);
  bc_stats_.per_shard_probes.assign(shards_.size(), 0);
}

size_t ShardedStorageEngine::ShardForKey(std::string_view key) const {
  auto it = ring_.lower_bound(RingPoint(key));
  if (it == ring_.end()) it = ring_.begin();  // wrap around the ring
  return it->second;
}

bool ShardedStorageEngine::IsReplicated(std::string_view key) const {
  for (const std::string& prefix : options_.replicated_prefixes) {
    if (StartsWith(key, prefix)) return true;
  }
  return false;
}

void ShardedStorageEngine::RecordVersion(const Hash256& id, size_t shard) {
  std::unique_lock<std::shared_mutex> lock(index_mu_);
  version_shard_[id] = shard;
}

StatusOr<PutResult> ShardedStorageEngine::DirectPut(size_t shard,
                                                    const std::string& key,
                                                    std::string_view data) {
  MLCASK_ASSIGN_OR_RETURN(PutResult result, shards_[shard]->Put(key, data));
  RecordVersion(result.id, shard);
  return result;
}

Status ShardedStorageEngine::RunTransaction(
    const std::vector<ShardWrite>& writes, std::vector<PutResult>* results) {
  // One coordinated transaction at a time: without this, two concurrent
  // transactions touching a replicated key could interleave their apply
  // loops in opposite orders on different shards, leaving the replicas'
  // latest-version views permanently divergent. Transactions are
  // control-plane writes (commit logs, merge winners), so serializing them
  // costs nothing on the hot path; uncoordinated DirectPuts never take it.
  std::lock_guard<std::mutex> txn_lock(txn_mu_);
  const uint64_t txn = txn_counter_.fetch_add(1, std::memory_order_relaxed);
  // Round-trip ledger of THIS transaction, accumulated locally while the
  // phases run. The InflightMeter records whatever overlap the code
  // structure actually achieved — the overlapped fan-out reaches the
  // participant count, a serial issue-wait loop never leaves 1.
  struct {
    uint64_t prepare_round_trips = 0;
    uint64_t apply_round_trips = 0;
    InflightMeter meter;
    std::vector<uint64_t> per_shard;
    void Issue(size_t shard) {
      meter.Issue();
      per_shard[shard] += 1;
    }
    void Collect() { meter.Collect(); }
  } ledger;
  ledger.per_shard.assign(shards_.size(), 0);
  // Telemetry lands in tp_stats_ as ONE unit when the transaction resolves
  // (commit or abort), never piecemeal: a concurrent stats reader must see
  // transactions == commits + aborts in every snapshot.
  auto resolve = [&](bool committed) {
    std::lock_guard<std::mutex> stats_lock(tp_stats_mu_);
    tp_stats_.transactions += 1;
    tp_stats_.prepared_writes += writes.size();
    if (committed) {
      tp_stats_.commits += 1;
    } else {
      tp_stats_.aborts += 1;
    }
    tp_stats_.prepare_round_trips += ledger.prepare_round_trips;
    tp_stats_.apply_round_trips += ledger.apply_round_trips;
    tp_stats_.max_inflight_round_trips =
        std::max(tp_stats_.max_inflight_round_trips, ledger.meter.peak);
    for (size_t s = 0; s < shards_.size(); ++s) {
      tp_stats_.per_shard_round_trips[s] += ledger.per_shard[s];
    }
  };

  auto staging_key_for = [&](size_t write_index) {
    return StrFormat("%stxn%llu/s%zu/w%zu",
                     std::string(kStagingPrefix).c_str(),
                     static_cast<unsigned long long>(txn),
                     writes[write_index].shard, write_index);
  };

  // Participant shards and their writes, in original write order.
  std::map<size_t, std::vector<size_t>> by_shard;
  for (size_t i = 0; i < writes.size(); ++i) {
    by_shard[writes[i].shard].push_back(i);
  }

  // Staging keys are deterministic, so cleanup resolves what actually
  // landed by LOOKUP rather than by remembered ids — it stays correct even
  // when a prepare batch failed halfway and returned no results. Leftover
  // staging records would be invisible anyway (filtered from
  // ListAllVersions); best effort is fine.
  auto cleanup_staged = [&]() {
    for (const auto& [shard, indices] : by_shard) {
      for (size_t i : indices) {
        for (const Hash256& id : shards_[shard]->Versions(staging_key_for(i))) {
          (void)shards_[shard]->DeleteVersion(id);
        }
      }
    }
  };

  // Phase 1: stage every payload on its participant shard — ONE PutMany
  // batch per shard (a single message on a remote proxy), every
  // participant's batch ISSUED before any response is collected, so the
  // prepare round trips overlap instead of serializing over the wire. The
  // staged blob binds the target key to the data, so a recovering shard
  // could replay the intent; on a deduplicating engine the staged chunks
  // also make the phase-2 write transfer almost nothing new.
  std::vector<std::pair<size_t, Deferred<std::vector<PutResult>>>> prepares;
  prepares.reserve(by_shard.size());
  for (const auto& [shard, indices] : by_shard) {
    std::vector<PutRequest> staging;
    staging.reserve(indices.size());
    for (size_t i : indices) {
      std::string intent(kIntentHeader);
      intent.append(writes[i].request->key);
      intent.push_back('\x1f');
      intent.append(writes[i].request->data);
      staging.push_back({staging_key_for(i), std::move(intent)});
    }
    prepares.emplace_back(shard, shards_[shard]->AsyncPutMany(staging));
    ledger.Issue(shard);
    ledger.prepare_round_trips += 1;
  }
  Status prepare_failure;
  size_t prepare_failed_shard = 0;
  for (auto& [shard, deferred] : prepares) {
    auto prepared = deferred.Get();
    ledger.Collect();
    if (!prepared.ok() && prepare_failure.ok()) {
      prepare_failure = prepared.status();
      prepare_failed_shard = shard;
    }
  }
  if (!prepare_failure.ok()) {
    cleanup_staged();
    resolve(/*committed=*/false);
    return Status(prepare_failure.code(),
                  "2pc prepare failed on shard " +
                      std::to_string(prepare_failed_shard) + ": " +
                      prepare_failure.message());
  }

  // Phase 2: unanimous prepare — apply the real writes. Applies stay
  // per-write (a failure must know exactly which version ids to roll back),
  // but ALL of them are issued before any is collected: same-shard writes
  // pipeline in order on one session (preserving each engine's
  // key+ordinal version-id sequence), different shards' applies overlap.
  std::vector<Deferred<PutResult>> applies;
  applies.reserve(writes.size());
  for (const ShardWrite& w : writes) {
    applies.push_back(
        shards_[w.shard]->AsyncPut(w.request->key, w.request->data));
    ledger.Issue(w.shard);
    ledger.apply_round_trips += 1;
  }
  std::vector<StatusOr<PutResult>> applied_results;
  applied_results.reserve(writes.size());
  for (Deferred<PutResult>& deferred : applies) {
    applied_results.push_back(deferred.Get());
    ledger.Collect();
  }
  for (size_t i = 0; i < writes.size(); ++i) {
    if (applied_results[i].ok()) continue;
    // Prepare voted yes everywhere, so an apply failure is a broken
    // participant, not a routine abort — but partial state must not
    // surface. Roll back every write that DID apply (safe even for
    // deduplicated applies: both engines derive version ids from
    // key + ordinal, so a fresh Put always creates a fresh id and the
    // delete can never take an older object with it) and account the
    // transaction as aborted.
    for (size_t j = 0; j < writes.size(); ++j) {
      if (applied_results[j].ok()) {
        (void)shards_[writes[j].shard]->DeleteVersion(applied_results[j]->id);
      }
    }
    cleanup_staged();
    resolve(/*committed=*/false);
    // A timed-out apply is INDETERMINATE, not definitely-failed: the write
    // was on the wire, and a wedged-but-alive shard may still apply it
    // after we gave up (loopback had no timeouts; sockets do). Report that
    // honestly instead of claiming a clean rollback — the operator must
    // recheck that shard when it recovers, or replicas can diverge.
    bool indeterminate = false;
    for (const auto& result : applied_results) {
      if (!result.ok() && result.status().IsDeadlineExceeded()) {
        indeterminate = true;
        break;
      }
    }
    if (indeterminate) {
      return Status::Internal(
          "2pc apply timed out on shard " + std::to_string(writes[i].shard) +
          ": " + applied_results[i].status().message() +
          " (known applies rolled back, but the timed-out write's outcome "
          "is INDETERMINATE — verify that shard before trusting replicas)");
    }
    return Status::Internal(
        "2pc apply failed on shard " + std::to_string(writes[i].shard) +
        ": " + applied_results[i].status().message() +
        " (transaction rolled back)");
  }
  struct Slot {
    bool filled = false;
    PutResult result;      ///< Shard-0 replica when replicated.
    double max_time_s = 0;
    size_t replicas = 0;
    size_t last_shard = 0;
  };
  std::map<size_t, Slot> slots;  // batch index -> merged result
  for (size_t i = 0; i < writes.size(); ++i) {
    const ShardWrite& w = writes[i];
    const PutResult& applied = *applied_results[i];
    Slot& slot = slots[w.batch_index];
    slot.replicas += 1;
    slot.last_shard = w.shard;
    slot.max_time_s = std::max(slot.max_time_s, applied.storage_time_s);
    if (!slot.filled || w.shard == 0) {
      slot.filled = true;
      slot.result = applied;
    }
  }
  cleanup_staged();
  resolve(/*committed=*/true);

  for (auto& [batch_index, slot] : slots) {
    // Replicas write in parallel in a real deployment: charge the slowest.
    slot.result.storage_time_s = slot.max_time_s;
    RecordVersion(slot.result.id,
                  slot.replicas > 1 ? kReplicated : slot.last_shard);
    (*results)[batch_index] = slot.result;
  }
  return Status::Ok();
}

StatusOr<PutResult> ShardedStorageEngine::Put(const std::string& key,
                                              std::string_view data) {
  if (!IsReplicated(key)) {
    return DirectPut(ShardForKey(key), key, data);
  }
  // Replicated namespace: coordinate all shards even for one key — this is
  // the branch-table/commit-log write path, and every shard must agree.
  PutRequest request{key, std::string(data)};
  std::vector<ShardWrite> writes;
  writes.reserve(shards_.size());
  for (size_t s = 0; s < shards_.size(); ++s) {
    writes.push_back({s, 0, &request});
  }
  std::vector<PutResult> results(1);
  MLCASK_RETURN_IF_ERROR(RunTransaction(writes, &results));
  return results[0];
}

StatusOr<std::vector<PutResult>> ShardedStorageEngine::PutMany(
    const std::vector<PutRequest>& batch) {
  std::vector<ShardWrite> writes;
  std::set<size_t> participants;
  bool any_replicated = false;
  for (size_t i = 0; i < batch.size(); ++i) {
    if (IsReplicated(batch[i].key)) {
      any_replicated = true;
      for (size_t s = 0; s < shards_.size(); ++s) {
        writes.push_back({s, i, &batch[i]});
        participants.insert(s);
      }
    } else {
      size_t s = ShardForKey(batch[i].key);
      writes.push_back({s, i, &batch[i]});
      participants.insert(s);
    }
  }
  std::vector<PutResult> results(batch.size());
  if (writes.empty()) return results;
  if (participants.size() == 1 && !any_replicated && batch.size() == 1) {
    // One write on one shard: no coordination needed.
    MLCASK_ASSIGN_OR_RETURN(results[0],
                            DirectPut(writes[0].shard, batch[0].key,
                                      batch[0].data));
    return results;
  }
  MLCASK_RETURN_IF_ERROR(RunTransaction(writes, &results));
  return results;
}

StatusOr<std::string> ShardedStorageEngine::Get(const std::string& key) {
  const size_t shard = IsReplicated(key) ? 0 : ShardForKey(key);
  return shards_[shard]->Get(key);
}

StatusOr<std::string> ShardedStorageEngine::GetVersion(const Hash256& id) {
  {
    std::shared_lock<std::shared_mutex> lock(index_mu_);
    auto it = version_shard_.find(id);
    if (it != version_shard_.end()) {
      const size_t shard = it->second == kReplicated ? 0 : it->second;
      lock.unlock();
      return shards_[shard]->GetVersion(id);
    }
  }
  // Not in the router index (e.g. a restored shard): broadcast probe, every
  // shard's round trip issued before the first response is inspected.
  // Responses are still judged in shard order, so the answer (first holder
  // wins, first non-NotFound error surfaces) is identical to the old
  // serial loop — only the wire latency stops multiplying by shard count.
  std::vector<Deferred<std::string>> probes;
  probes.reserve(shards_.size());
  InflightMeter meter;
  for (const auto& shard : shards_) {
    probes.push_back(shard->AsyncGetVersion(id));
    meter.Issue();
  }
  RecordBroadcast(meter.peak);
  for (Deferred<std::string>& probe : probes) {
    auto data = probe.Get();
    meter.Collect();
    if (data.ok()) return data;
    if (!data.status().IsNotFound()) return data.status();
  }
  return Status::NotFound("version " + id.ShortHex() + " not on any shard");
}

bool ShardedStorageEngine::HasVersion(const Hash256& id) const {
  {
    std::shared_lock<std::shared_mutex> lock(index_mu_);
    auto it = version_shard_.find(id);
    if (it != version_shard_.end()) {
      const size_t shard = it->second == kReplicated ? 0 : it->second;
      lock.unlock();
      return shards_[shard]->HasVersion(id);
    }
  }
  std::vector<Deferred<bool>> probes;
  probes.reserve(shards_.size());
  InflightMeter meter;
  for (const auto& shard : shards_) {
    probes.push_back(shard->AsyncHasVersion(id));
    meter.Issue();
  }
  RecordBroadcast(meter.peak);
  for (Deferred<bool>& probe : probes) {
    auto has = probe.Get();
    meter.Collect();
    // First holder wins; the remaining Deferreds are abandoned safely (the
    // transport always fulfills the promise side), so one slow shard never
    // delays an answer another shard already gave.
    if (has.ok() && *has) return true;
  }
  return false;
}

std::vector<Hash256> ShardedStorageEngine::Versions(
    const std::string& key) const {
  const size_t shard = IsReplicated(key) ? 0 : ShardForKey(key);
  return shards_[shard]->Versions(key);
}

std::vector<std::pair<std::string, Hash256>>
ShardedStorageEngine::ListAllVersions() const {
  std::vector<std::pair<std::string, Hash256>> all;
  for (size_t s = 0; s < shards_.size(); ++s) {
    for (auto& entry : shards_[s]->ListAllVersions()) {
      if (IsStagingKey(entry.first)) continue;  // internal 2pc records
      // Replicated keys exist on every shard; surface one logical copy.
      if (s != 0 && IsReplicated(entry.first)) continue;
      all.push_back(std::move(entry));
    }
  }
  return all;
}

StatusOr<uint64_t> ShardedStorageEngine::DeleteVersion(const Hash256& id) {
  size_t shard = kReplicated;
  bool indexed = false;
  {
    std::shared_lock<std::shared_mutex> lock(index_mu_);
    auto it = version_shard_.find(id);
    if (it != version_shard_.end()) {
      shard = it->second;
      indexed = true;
    }
  }
  if (!indexed) {
    // Not in the router index (a restored shard): probe everywhere
    // (overlapped broadcast). More than one holder means a replicated
    // version — fall through to the delete-every-replica branch, otherwise
    // replicas would leak.
    std::vector<Deferred<bool>> probes;
    probes.reserve(shards_.size());
    InflightMeter meter;
    for (size_t s = 0; s < shards_.size(); ++s) {
      probes.push_back(shards_[s]->AsyncHasVersion(id));
      meter.Issue();
    }
    RecordBroadcast(meter.peak);
    std::vector<size_t> holders;
    Status probe_failure;
    for (size_t s = 0; s < shards_.size(); ++s) {
      auto has = probes[s].Get();
      meter.Collect();
      if (!has.ok() && probe_failure.ok()) probe_failure = has.status();
      if (has.ok() && *has) holders.push_back(s);
    }
    if (!probe_failure.ok()) {
      // A shard that cannot answer might be the holder: deciding NotFound
      // here would leak its replica (and deleting only the reachable
      // replicas of a replicated version would leave the cluster
      // permanently divergent). Surface the failure; the caller retries
      // when the shard is back.
      return probe_failure;
    }
    if (holders.empty()) {
      return Status::NotFound("version " + id.ShortHex() + " not on any shard");
    }
    shard = holders.size() == 1 ? holders[0] : kReplicated;
  }
  uint64_t freed = 0;
  if (shard == kReplicated) {
    // Drop every replica; report one replica's freed bytes (the logical
    // view counts one copy).
    bool counted = false;
    for (size_t s = 0; s < shards_.size(); ++s) {
      auto result = shards_[s]->DeleteVersion(id);
      if (!result.ok() && !result.status().IsNotFound()) {
        return result.status();
      }
      if (result.ok() && !counted) {
        freed = *result;
        counted = true;
      }
    }
  } else {
    MLCASK_ASSIGN_OR_RETURN(freed, shards_[shard]->DeleteVersion(id));
  }
  {
    std::unique_lock<std::shared_mutex> lock(index_mu_);
    version_shard_.erase(id);
  }
  return freed;
}

EngineStats ShardedStorageEngine::stats() const {
  EngineStats total;
  for (const auto& shard : shards_) {
    EngineStats s = shard->stats();
    total.logical_bytes += s.logical_bytes;
    total.physical_bytes += s.physical_bytes;
    total.storage_time_s += s.storage_time_s;
    total.puts += s.puts;
    total.gets += s.gets;
  }
  return total;
}

std::string ShardedStorageEngine::Name() const {
  return "sharded-" + std::to_string(shards_.size()) + "x[" +
         shards_[0]->Name() + "]";
}

double ShardedStorageEngine::ReadCost(uint64_t bytes) const {
  return shards_[0]->ReadCost(bytes);
}

ShardedStorageEngine::TwoPhaseStats ShardedStorageEngine::two_phase_stats()
    const {
  std::lock_guard<std::mutex> lock(tp_stats_mu_);
  return tp_stats_;
}

void ShardedStorageEngine::RecordBroadcast(
    uint64_t measured_peak_inflight) const {
  std::lock_guard<std::mutex> lock(bc_stats_mu_);
  bc_stats_.broadcasts += 1;
  bc_stats_.probe_round_trips += shards_.size();
  bc_stats_.max_inflight_probes =
      std::max(bc_stats_.max_inflight_probes, measured_peak_inflight);
  for (uint64_t& probes : bc_stats_.per_shard_probes) probes += 1;
}

ShardedStorageEngine::BroadcastStats ShardedStorageEngine::broadcast_stats()
    const {
  std::lock_guard<std::mutex> lock(bc_stats_mu_);
  return bc_stats_;
}

std::unique_ptr<ShardedStorageEngine> MakeLoopbackCluster(
    size_t shards,
    const std::function<std::unique_ptr<StorageEngine>()>& backend_factory,
    ShardedStorageEngine::Options options) {
  MLCASK_CHECK_MSG(shards > 0, "cluster needs at least one shard");
  std::vector<std::unique_ptr<StorageEngine>> proxies;
  proxies.reserve(shards);
  for (size_t s = 0; s < shards; ++s) {
    // Ownership chain: proxy -> transport -> (shared) service -> backend.
    auto service =
        std::make_shared<StorageEngineService>(backend_factory());
    auto transport = std::make_unique<LoopbackTransport>(
        [service](std::string_view request) {
          return service->Handle(request);
        });
    proxies.push_back(
        std::make_unique<RemoteStorageEngine>(std::move(transport)));
  }
  return std::make_unique<ShardedStorageEngine>(std::move(proxies),
                                                std::move(options));
}

}  // namespace mlcask::storage
