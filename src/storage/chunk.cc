#include "storage/chunk.h"

namespace mlcask::storage {

const char* ChunkTypeName(ChunkType t) {
  switch (t) {
    case ChunkType::kData:
      return "data";
    case ChunkType::kIndex:
      return "index";
    case ChunkType::kMeta:
      return "meta";
  }
  return "unknown";
}

Hash256 Chunk::ComputeHash(ChunkType type, std::string_view data) {
  Sha256 h;
  uint8_t tag = static_cast<uint8_t>(type);
  h.Update(&tag, 1);
  h.Update(data);
  return h.Finish();
}

}  // namespace mlcask::storage
