#ifndef MLCASK_STORAGE_REMOTE_ENGINE_H_
#define MLCASK_STORAGE_REMOTE_ENGINE_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "storage/storage_engine.h"
#include "storage/transport.h"

namespace mlcask::storage {

/// Server half of the remote storage protocol: owns (or borrows) a concrete
/// engine and answers serialized requests against it. Stateless beyond the
/// engine, so one service instance may serve many concurrent callers — the
/// engine's own thread safety contract carries over.
///
/// The wire format is JSON with hex-encoded binary payloads (blob data and
/// content ids), chosen for debuggability and zero dependencies; swapping in
/// a binary codec touches only this file. Every response carries
/// {"ok": bool}; failures add {"code", "message"} and round-trip the exact
/// Status the engine returned.
class StorageEngineService {
 public:
  /// Borrows `engine` (must outlive the service).
  explicit StorageEngineService(StorageEngine* engine) : engine_(engine) {}
  /// Owns `engine`.
  explicit StorageEngineService(std::unique_ptr<StorageEngine> engine)
      : owned_(std::move(engine)), engine_(owned_.get()) {}

  /// Parses one serialized request, dispatches it to the engine, and
  /// serializes the response. Malformed requests produce an error response,
  /// never a crash — a remote peer cannot take the server down.
  ///
  /// Requests carrying a replay token (mutations from a RemoteStorageEngine)
  /// are idempotent: the first execution records its response in a ledger,
  /// and a replay of the same token — a redialing client resending a call
  /// whose response was lost — returns the recorded response without
  /// touching the engine. The ledger is FIFO-capped; a token can only be
  /// replayed within the client's redial window, which is orders of
  /// magnitude shorter than the time kLedgerCap fresh mutations take.
  std::string Handle(std::string_view request);

  StorageEngine* engine() { return engine_; }

  /// Requests answered from the replay ledger instead of the engine.
  uint64_t replay_hits() const {
    std::lock_guard<std::mutex> lock(ledger_mu_);
    return replay_hits_;
  }

 private:
  static constexpr size_t kLedgerCap = 4096;

  /// One ledger slot: claimed (execution in flight) until `ready`, then a
  /// recorded response any replay can be answered from.
  struct LedgerEntry {
    bool ready = false;
    std::string response;
  };

  /// Returns true and fills `response` when `token` already executed.
  /// Otherwise CLAIMS the token for this caller, who must RecordReplay
  /// after dispatching. A duplicate arriving while the original execution
  /// is still in flight BLOCKS until the response is recorded — two
  /// concurrent executions of one token can never both reach the engine,
  /// which is what makes redial replay exactly-once rather than merely
  /// usually-once.
  bool LookupReplayOrClaim(const std::string& token, std::string* response);
  void RecordReplay(const std::string& token, const std::string& response);
  /// Releases an unresolved claim WITHOUT recording a response: the shed
  /// path. A load-shed answer (ResourceExhausted) must not occupy the
  /// token's ledger slot — the client's retry re-executes instead of being
  /// answered with "overloaded" forever, and any duplicate blocked on the
  /// claim wakes to re-claim rather than waiting on a condvar for a
  /// recording that will never happen.
  void ReleaseClaim(const std::string& token);

  std::unique_ptr<StorageEngine> owned_;
  StorageEngine* engine_;

  mutable std::mutex ledger_mu_;
  std::condition_variable ledger_cv_;
  std::unordered_map<std::string, LedgerEntry> ledger_;
  std::deque<std::string> ledger_order_;  ///< FIFO eviction order.
  uint64_t replay_hits_ = 0;
};

/// Which request codec a RemoteStorageEngine speaks.
enum class WireCodec : uint8_t {
  /// Binary (wire version 2), negotiating down to JSON when the peer
  /// answers the hello with Unimplemented (an older build). The default.
  kAuto = 0,
  kBinary = 1,  ///< Binary only; an old peer surfaces Unimplemented.
  kJson = 2,    ///< JSON + hex (wire version 1) only, for skew tests.
};

/// Client half: a StorageEngine proxy that serializes every call into a
/// request message, sends it through a Transport, and decodes the response.
/// With a LoopbackTransport this gives an in-process deployment the exact
/// call/serialization profile of a networked one (the "aha" the distributed
/// tests rely on); a SocketTransport makes the peer a real process.
///
/// Beyond the blocking StorageEngine surface, the proxy exposes Async*
/// variants of the write/lookup calls the sharded router fans out: each
/// returns a Deferred<T> whose request is already on the wire, so issuing
/// one per shard before collecting overlaps the round trips.
class RemoteStorageEngine : public StorageEngine {
 public:
  /// Owns the transport. The remote peer's engine name is fetched eagerly so
  /// Name() stays cheap and non-faulting; that same hello doubles as the
  /// codec negotiation probe (see WireCodec::kAuto). When negotiation drops
  /// to JSON the transport's wire version is dropped with it, so frames and
  /// codec stay in lockstep on the session.
  explicit RemoteStorageEngine(std::unique_ptr<Transport> transport,
                               WireCodec codec = WireCodec::kAuto);

  StatusOr<PutResult> Put(const std::string& key,
                          std::string_view data) override;
  /// Ships the whole batch in ONE round trip. Used directly by
  /// single-engine deployments, and by the sharded router's phase-1
  /// staging, which sends each shard its staged intents as one message
  /// (phase-2 applies stay per-write so a failure knows exactly which
  /// version ids to roll back).
  StatusOr<std::vector<PutResult>> PutMany(
      const std::vector<PutRequest>& batch) override;
  StatusOr<std::string> Get(const std::string& key) override;
  StatusOr<std::string> GetVersion(const Hash256& id) override;
  /// NOTE on the non-Status query surface (HasVersion/Versions/
  /// ListAllVersions/stats): the StorageEngine interface gives these no
  /// error channel, so a TRANSPORT failure degrades to the empty/false
  /// answer. Loopback never fails; a socket Transport should retry
  /// transient errors internally before surfacing them, precisely because
  /// callers (e.g. ShardedStorageEngine's broadcast probes) treat these
  /// answers as existence decisions.
  bool HasVersion(const Hash256& id) const override;
  std::vector<Hash256> Versions(const std::string& key) const override;
  std::vector<std::pair<std::string, Hash256>> ListAllVersions() const override;
  StatusOr<uint64_t> DeleteVersion(const Hash256& id) override;
  /// Ships a whole shard-rebalance batch in ONE round trip (opcode 12);
  /// oversized batches ride the transport's chunk streaming like any other
  /// large message. Against a JSON-era peer the base-class default applies
  /// the batch through the per-call surface instead — slower, same result —
  /// so rebalancing works mid-upgrade across a mixed-version cluster.
  StatusOr<MigrateBatchResult> MigrateBatch(
      const std::vector<MigrateKeyVersions>& batch) override;
  EngineStats stats() const override;
  std::string Name() const override { return name_; }
  double ReadCost(uint64_t bytes) const override;

  /// Async overrides: unlike the StorageEngine inline defaults, the
  /// request is ON THE WIRE before the method returns; Get() on the result
  /// waits for and decodes the response. Semantics and wire messages are
  /// identical to the blocking methods.
  Deferred<PutResult> AsyncPut(const std::string& key,
                               std::string_view data) override;
  Deferred<std::vector<PutResult>> AsyncPutMany(
      const std::vector<PutRequest>& batch) override;
  Deferred<std::string> AsyncGetVersion(const Hash256& id) override;
  Deferred<bool> AsyncHasVersion(const Hash256& id) const override;
  Deferred<uint64_t> AsyncDeleteVersion(const Hash256& id) override;
  Deferred<MigrateBatchResult> AsyncMigrateBatch(
      const std::vector<MigrateKeyVersions>& batch) override;

  const Transport* transport() const { return transport_.get(); }

  /// The codec this proxy actually ended up speaking (kAuto resolves to
  /// kBinary or kJson during construction).
  WireCodec codec() const {
    return binary_ ? WireCodec::kBinary : WireCodec::kJson;
  }

 private:
  StatusOr<std::string> RoundTrip(std::string_view request) const;
  /// Fresh idempotency token for one mutating call: a per-proxy random
  /// session id plus a sequence number. Unique across proxies (random
  /// session) and within one (sequence), so the server ledger never
  /// confuses two distinct mutations.
  std::string NextReplayToken();

  std::unique_ptr<Transport> transport_;
  bool binary_ = true;
  std::string name_;
  std::string replay_session_;
  std::atomic<uint64_t> replay_seq_{0};
};

namespace wire {
/// Lower-case hex codec for arbitrary byte strings (blob payloads on the
/// wire). Exposed for tests and future codecs.
std::string HexEncode(std::string_view bytes);
StatusOr<std::string> HexDecode(std::string_view hex);
}  // namespace wire

}  // namespace mlcask::storage

#endif  // MLCASK_STORAGE_REMOTE_ENGINE_H_
