#include "storage/endpoint.h"

#include "common/strings.h"

namespace mlcask::storage {

StatusOr<Endpoint> Endpoint::Parse(std::string_view spec) {
  Endpoint ep;
  if (spec == "loopback:" || spec == "loopback") {
    ep.kind = Kind::kLoopback;
    return ep;
  }
  if (StartsWith(spec, "unix:")) {
    ep.kind = Kind::kUnix;
    ep.path = std::string(spec.substr(5));
    if (ep.path.empty()) {
      return Status::InvalidArgument("unix endpoint needs a path: '" +
                                     std::string(spec) + "'");
    }
    // sockaddr_un.sun_path is 108 bytes including the terminator.
    if (ep.path.size() >= 108) {
      return Status::InvalidArgument("unix socket path too long (>=108): '" +
                                     std::string(spec) + "'");
    }
    return ep;
  }
  if (StartsWith(spec, "tcp:")) {
    ep.kind = Kind::kTcp;
    std::string_view rest = spec.substr(4);
    size_t colon = rest.rfind(':');
    if (colon == std::string_view::npos) {
      return Status::InvalidArgument("tcp endpoint needs host:port: '" +
                                     std::string(spec) + "'");
    }
    ep.host = std::string(rest.substr(0, colon));
    uint64_t port = 0;
    if (!ParseUint(rest.substr(colon + 1), &port) || port > 65535) {
      return Status::InvalidArgument("tcp endpoint has a malformed port: '" +
                                     std::string(spec) + "'");
    }
    ep.port = static_cast<uint16_t>(port);
    return ep;
  }
  return Status::InvalidArgument(
      "endpoint spec must start with loopback:, unix: or tcp:  — got '" +
      std::string(spec) + "'");
}

std::string Endpoint::ToString() const {
  switch (kind) {
    case Kind::kLoopback:
      return "loopback:";
    case Kind::kUnix:
      return "unix:" + path;
    case Kind::kTcp:
      return "tcp:" + host + ":" + std::to_string(port);
  }
  return "loopback:";
}

}  // namespace mlcask::storage
