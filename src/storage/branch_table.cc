#include "storage/branch_table.h"

namespace mlcask::storage {

Status BranchTable::Create(const std::string& name, const Hash256& head) {
  if (name.empty()) {
    return Status::InvalidArgument("branch name must be non-empty");
  }
  auto [it, inserted] = heads_.emplace(name, head);
  (void)it;
  if (!inserted) {
    return Status::AlreadyExists("branch '" + name + "' already exists");
  }
  return Status::Ok();
}

Status BranchTable::Move(const std::string& name, const Hash256& head) {
  auto it = heads_.find(name);
  if (it == heads_.end()) {
    return Status::NotFound("branch '" + name + "' does not exist");
  }
  it->second = head;
  return Status::Ok();
}

void BranchTable::Upsert(const std::string& name, const Hash256& head) {
  heads_[name] = head;
}

StatusOr<Hash256> BranchTable::Head(const std::string& name) const {
  auto it = heads_.find(name);
  if (it == heads_.end()) {
    return Status::NotFound("branch '" + name + "' does not exist");
  }
  return it->second;
}

bool BranchTable::Exists(const std::string& name) const {
  return heads_.find(name) != heads_.end();
}

Status BranchTable::Delete(const std::string& name) {
  if (heads_.erase(name) == 0) {
    return Status::NotFound("branch '" + name + "' does not exist");
  }
  return Status::Ok();
}

std::vector<std::string> BranchTable::List() const {
  std::vector<std::string> out;
  out.reserve(heads_.size());
  for (const auto& [name, head] : heads_) {
    (void)head;
    out.push_back(name);
  }
  return out;
}

}  // namespace mlcask::storage
