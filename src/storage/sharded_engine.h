#ifndef MLCASK_STORAGE_SHARDED_ENGINE_H_
#define MLCASK_STORAGE_SHARDED_ENGINE_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <shared_mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "storage/storage_engine.h"

namespace mlcask::storage {

/// One epoch of the consistent-hash ring: the live shard slots and their
/// points on the 64-bit ring. Ring points derive from the SLOT index only
/// ("ring/<slot>#<vnode>"), so a slot's points never move across epochs —
/// adding a shard reassigns exactly the ranges its new points capture and
/// nothing else (minimal key movement), and removing one hands its ranges
/// to the surviving successors.
struct ShardRing {
  uint64_t epoch = 0;
  std::vector<size_t> members;        ///< Live slot indices, sorted.
  std::map<uint64_t, size_t> points;  ///< Ring point -> slot index.

  bool Contains(size_t slot) const;
};

/// Builds the ring for `members` (sorted, deduplicated by the caller) with
/// `vnodes` points per slot.
ShardRing BuildShardRing(uint64_t epoch, std::vector<size_t> members,
                         size_t vnodes);

/// Ring lookup: the slot owning the first point at or after H(key),
/// wrapping around. The ring must be non-empty.
size_t RingOwner(const ShardRing& ring, std::string_view key);

/// One key that changes owner between two ring epochs.
struct KeyMove {
  std::string key;
  size_t from = 0;
  size_t to = 0;
};

/// Pure rebalance *policy*: which of `keys` must move between `from` and
/// `to`, and where. Deliberately split from the data-movement driver (the
/// Zoltan shape: partition computation is a function, migration is a
/// mechanism), so the policy is unit-testable without a cluster and
/// replaceable without touching the driver. Returns moves sorted by key —
/// the order the driver's cursor advances in.
std::vector<KeyMove> PlanMigration(const ShardRing& from, const ShardRing& to,
                                   std::vector<std::string> keys);

/// A distributed StorageEngine: N child engines (typically RemoteStorageEngine
/// proxies, so every call crosses a serialization boundary) behind one router.
///
/// ## Routing
///
/// Object keys route by consistent hashing: each shard owns
/// `virtual_nodes_per_shard` points on a 64-bit ring, a key goes to the shard
/// owning the first point at or after H(key). Version ids route through a
/// router-side index maintained on Put (with a broadcast probe as fallback),
/// since a content id alone does not reveal its key.
///
/// ## Replicated namespaces (cross-shard branch-table coordination)
///
/// Keys matching `replicated_prefixes` — by default the `pipeline/` commit
/// logs that persist the branch table and the `library/` metafiles — are
/// written to EVERY live shard through the two-phase protocol below and read
/// from the COORDINATOR shard (the first live member of the current ring;
/// slot 0 until a rebalance retires it). Version-control metadata must be
/// visible cluster-wide; bulky artifacts partition.
///
/// ## Two-phase commit (merge winners)
///
/// `PutMany` overrides the interface default with an all-or-nothing protocol:
///   phase 1  stage every write's payload on its participant shard under a
///            transactional `__2pc__/<txn>/...` key (durable intent; on a
///            deduplicating engine the staged chunks make the commit write
///            nearly free);
///   phase 2  on unanimous success, apply the real writes and drop the
///            staging records; any prepare failure aborts — staged records
///            are deleted and no real key ever surfaces.
/// The merge operation persists its winner through PutMany, so a merge
/// result spanning shards commits atomically. A single-write,
/// non-replicated batch skips coordination (a one-write transaction needs
/// no 2PC). Staging keys are internal: they never appear in
/// ListAllVersions.
///
/// ## Elastic topology (live rebalance)
///
/// AddShard/RemoveShard install a NEW epoch of the ring while the previous
/// epoch stays live, then stream every reassigned key old-owner -> new-owner
/// in sorted batches (MigrateBatch: id-preserving, idempotent). During the
/// window the router routes DUAL-EPOCH: a key at or before the migration
/// cursor is already at its new owner, a key past it still lives at its old
/// owner, and a key inside the in-flight batch briefly blocks until the
/// batch lands. Writes past the cursor are tracked as DIRTY (and wait out
/// an in-flight batch), so a key written to its old owner mid-migration is
/// folded into the next batch instead of being overtaken by the cursor —
/// the cursor never passes a key whose data is still at its old owner. The
/// cursor is persisted durably (`__migration__/cursor` on
/// the coordinator) after every batch, so a router killed mid-migration
/// resumes from where it stopped (ResumeMigration) instead of restarting —
/// already-copied versions are recognized and skipped, never re-applied.
/// When a rebalance FINALIZES, the surviving membership is persisted on
/// every member (`__migration__/topology`) so a rebuilt router that dials a
/// stale endpoint list can restore the real ring via ResumeMigration.
/// Merges keep running throughout and commit bit-identical winners: version
/// ids derive from key + payload + ordinal, which migration preserves.
///
/// Thread safety: same contract as every StorageEngine — concurrent calls
/// from many workers are safe (the router index has its own lock; child
/// engines carry their own guarantees). One rebalance may run at a time,
/// driven by a single thread.
class ShardedStorageEngine : public StorageEngine {
 public:
  struct Options {
    /// Key prefixes replicated to every shard (see above).
    std::vector<std::string> replicated_prefixes = {"pipeline/", "library/"};
    /// Ring points per shard; more points = smoother key balance. 384
    /// keeps the measured max/min ownership ratio under 1.3 at 2–8 shards
    /// (16 points skewed up to 2.4× at 8 shards); ring build is a one-off
    /// few-hundred SHA-256s per shard, lookups stay O(log points).
    size_t virtual_nodes_per_shard = 384;
  };

  /// Two-phase-commit telemetry. `two_phase_stats()` returns a CONSISTENT
  /// snapshot: all counters are bumped together, under one mutex, at
  /// the moment a transaction RESOLVES (commit or abort), so any reader —
  /// including one polling while concurrent merge drains archive trial
  /// outputs — always observes `transactions == commits + aborts` exactly,
  /// with in-flight transactions invisible until they resolve.
  ///
  /// The round-trip ledger makes the ASYNC fan-out observable without
  /// timing: `max_inflight_round_trips` is the peak number of shard round
  /// trips a single transaction phase had issued before collecting the
  /// first response. The overlapped fan-out pushes it to the participant
  /// count; a regression to the old issue-one-wait-one serial loop pins it
  /// at 1, which is exactly what the regression tests assert on.
  struct TwoPhaseStats {
    uint64_t transactions = 0;     ///< Resolved PutMany/replicated txns.
    uint64_t prepared_writes = 0;  ///< Staging records written (phase 1).
    uint64_t commits = 0;          ///< Transactions fully applied.
    uint64_t aborts = 0;           ///< Transactions rolled back in phase 1.
    uint64_t prepare_round_trips = 0;  ///< Phase-1 shard messages issued.
    uint64_t apply_round_trips = 0;    ///< Phase-2 shard messages issued.
    /// Peak round trips in flight inside one transaction phase (see above).
    uint64_t max_inflight_round_trips = 0;
    /// Prepare+apply messages per shard index — the per-shard view that
    /// shows whether coordination load is balanced or piling on one shard.
    std::vector<uint64_t> per_shard_round_trips;
    /// Commit-decision writes issued to the coordinator shard: exactly one
    /// per transaction that reached a unanimous prepare (aborts before the
    /// decision point issue none).
    uint64_t decision_round_trips = 0;
    /// RecoverTwoPhase outcomes: transactions rolled FORWARD (durable
    /// decision found), transactions FENCED (no decision — intents
    /// destroyed so a zombie coordinator can never land them), and the
    /// individual writes the roll-forwards actually re-applied (an
    /// already-applied write is recognized by payload identity and
    /// skipped, so replay is idempotent).
    uint64_t recovered_transactions = 0;
    uint64_t fenced_transactions = 0;
    uint64_t replayed_writes = 0;
  };

  /// Router broadcast telemetry (version-id lookups that missed the router
  /// index and probed every shard). Same consistency and same
  /// inflight-accounting contract as TwoPhaseStats: `max_inflight_probes`
  /// reaches the shard count when the fan-out overlaps, 1 when serial.
  struct BroadcastStats {
    uint64_t broadcasts = 0;          ///< Broadcast operations run.
    uint64_t probe_round_trips = 0;   ///< Per-shard probe messages issued.
    uint64_t max_inflight_probes = 0;
    std::vector<uint64_t> per_shard_probes;  ///< Probe messages per shard.
  };

  /// Knobs for one rebalance drive. Defaults run to completion.
  struct MigrationOptions {
    /// Keys per MigrateBatch round trip (and per durable cursor write).
    size_t batch_keys = 32;
    /// Payload budget per batch: once the versions read for a batch reach
    /// this many bytes, the batch ships what it has and leaves the rest to
    /// the next round (0 = unbounded). A batch holds the transaction lock
    /// across its round trips, so this bounds how long one batch of large
    /// artifacts can stall replicated writes and merges.
    size_t batch_bytes = 8u << 20;
    /// Stop after this many batches with the migration still installed
    /// (dual-epoch routing stays live); 0 = run to completion. Lets tests
    /// and drills hold the cluster mid-migration deterministically —
    /// ResumeMigration continues from the cursor.
    size_t max_batches = 0;
  };

  /// Telemetry for the rebalance subsystem, one consistent snapshot.
  struct MigrationStats {
    uint64_t epoch = 0;              ///< Current ring epoch.
    uint64_t keys_migrated = 0;      ///< Keys whose batch landed.
    uint64_t versions_migrated = 0;  ///< Versions applied at new owners.
    uint64_t bytes_migrated = 0;     ///< Payload bytes applied.
    uint64_t batches = 0;            ///< MigrateBatch rounds completed.
    uint64_t cursor_writes = 0;      ///< Durable cursor persists.
    uint64_t resumes = 0;            ///< ResumeMigration re-installs.
    /// Versions a MigrateBatch found already at the destination — the
    /// direct evidence that a resumed migration continued instead of
    /// re-copying (the kill -9 drill asserts this is nonzero).
    uint64_t skipped_versions = 0;
    /// Keys written to their OLD owner mid-migration (they routed past the
    /// cursor) that a batch folded in before advancing the cursor over
    /// them. Nonzero means live writes raced the driver and were kept.
    uint64_t dirty_keys_migrated = 0;
  };

  /// Takes ownership of the child engines. At least one shard is required.
  explicit ShardedStorageEngine(
      std::vector<std::unique_ptr<StorageEngine>> shards);
  ShardedStorageEngine(std::vector<std::unique_ptr<StorageEngine>> shards,
                       Options options);

  StatusOr<PutResult> Put(const std::string& key,
                          std::string_view data) override;
  StatusOr<std::vector<PutResult>> PutMany(
      const std::vector<PutRequest>& batch) override;
  StatusOr<std::string> Get(const std::string& key) override;
  StatusOr<std::string> GetVersion(const Hash256& id) override;
  bool HasVersion(const Hash256& id) const override;
  std::vector<Hash256> Versions(const std::string& key) const override;
  std::vector<std::pair<std::string, Hash256>> ListAllVersions() const override;
  StatusOr<uint64_t> DeleteVersion(const Hash256& id) override;
  EngineStats stats() const override;  ///< Sum over live shards.
  std::string Name() const override;
  double ReadCost(uint64_t bytes) const override;

  /// Slot count (monotonic: retired slots keep their index, so per-shard
  /// telemetry vectors and historical shard numbering stay stable).
  size_t num_shards() const;
  StorageEngine* shard(size_t i) { return shards_[i].get(); }
  const StorageEngine* shard(size_t i) const { return shards_[i].get(); }

  /// Ring lookup for `key` (replication not considered). During a
  /// rebalance this is the DUAL-EPOCH answer: new owner once the migration
  /// cursor has passed the key, old owner before, and it BLOCKS briefly
  /// for a key inside the in-flight batch.
  size_t ShardForKey(std::string_view key) const;
  bool IsReplicated(std::string_view key) const;

  /// Live slot indices of the current topology (union with the previous
  /// epoch's while a rebalance is in flight — those slots still serve).
  std::vector<size_t> live_members() const;
  /// First live member of the CURRENT ring: the authority for replicated
  /// reads, 2PC commit decisions, and recovery. Slot 0 until a rebalance
  /// retires it.
  size_t coordinator_shard() const;
  uint64_t ring_epoch() const;

  /// Grows the cluster: appends `shard` as a new slot, installs the next
  /// ring epoch, and streams every key the new slot now owns from its old
  /// owner (the replicated namespace is pre-copied before the slot becomes
  /// routable). Blocks until the migration completes — or pauses after
  /// `opts.max_batches` with dual-epoch routing still live. Reads, writes
  /// and merges proceed concurrently throughout.
  Status AddShard(std::unique_ptr<StorageEngine> shard);
  Status AddShard(std::unique_ptr<StorageEngine> shard,
                  const MigrationOptions& opts);

  /// Shrinks the cluster: resolves in-flight 2PC state, installs a ring
  /// epoch without `slot`, streams its keys to their new owners, and
  /// finally drains the slot EMPTY (replicated copies included). The slot
  /// index stays allocated but no longer routes. Same blocking/pause
  /// semantics as AddShard.
  Status RemoveShard(size_t slot);
  Status RemoveShard(size_t slot, const MigrationOptions& opts);

  /// Continues an interrupted rebalance: an in-memory one (paused via
  /// max_batches) directly, otherwise by scanning the shards for the
  /// durable `__migration__/plan` record a killed router left behind and
  /// re-installing it, cursor included. Already-migrated versions are
  /// recognized and skipped (MigrationStats::skipped_versions). A shard
  /// that cannot answer the scan is an ERROR, not "no plan": silently
  /// serving single-epoch against a mismatched data layout would misroute
  /// every reassigned key. With no plan to resume, the durable
  /// `__migration__/topology` record of the last FINALIZED rebalance is
  /// honored instead, so a router rebuilt from a stale endpoint list (one
  /// that still dials a drained slot) recovers the real membership.
  /// Returns Ok and does nothing when there is nothing to restore.
  Status ResumeMigration();
  Status ResumeMigration(const MigrationOptions& opts);

  /// True while dual-epoch routing is installed (migration running or
  /// paused).
  bool migration_in_progress() const {
    return migrating_.load(std::memory_order_acquire);
  }

  MigrationStats migration_stats() const;

  TwoPhaseStats two_phase_stats() const;
  BroadcastStats broadcast_stats() const;

  /// Availability of one shard as judged from this router's own traffic:
  /// kUnavailable / kDeadlineExceeded responses bump a consecutive-failure
  /// count (any other answer — including NotFound — resets it, because the
  /// shard responded). One failure degrades; kDownFailures consecutive
  /// failures mark the shard down, after which broadcasts and 2PC fan-outs
  /// skip it and fail fast with a typed Unavailable instead of burning a
  /// timeout per call. A freshly-down shard gets ONE immediate probe on
  /// the first fan-out after the transition (so a blip shorter than the
  /// fan-out cadence heals in one request), then every kHalfOpenEvery-th
  /// skip re-probes (half-open), so a recovered shard rejoins without
  /// manual help; MarkShardRecovered short-circuits that wait after a
  /// known restart.
  enum class ShardHealth : uint8_t { kUp = 0, kDegraded = 1, kDown = 2 };
  struct ShardHealthView {
    std::vector<ShardHealth> state;                ///< One entry per shard.
    std::vector<uint64_t> consecutive_failures;    ///< Current streaks.
  };
  ShardHealthView shard_health() const;
  /// Clears shard `shard`'s failure streak (e.g. after restarting its
  /// process), so the next fan-out talks to it immediately.
  void MarkShardRecovered(size_t shard);

  /// Scans every shard for leftover `__2pc__/` staging records from
  /// transactions that died mid-flight (coordinator crash, shard kill) and
  /// resolves each one: a transaction whose durable commit decision exists
  /// on the coordinator shard is rolled FORWARD (its intents are
  /// re-applied, idempotently — a write the dead coordinator already
  /// landed is recognized by payload identity and not applied twice), any
  /// other transaction is FENCED (its intents are deleted, so the writes
  /// can never surface). Either way the staging records are gone
  /// afterwards: a clean scan is the recovery invariant the chaos suite
  /// asserts. Call on a freshly (re)built router before accepting new
  /// transactions, and after rejoining a crashed shard. Outcomes are
  /// counted in two_phase_stats().
  Status RecoverTwoPhase();

 private:
  /// One write bound for a specific shard, remembering its slot in the
  /// caller's batch so results come back in order.
  struct ShardWrite {
    size_t shard = 0;
    size_t batch_index = 0;
    const PutRequest* request = nullptr;
  };

  /// A routing decision that may instead report "wait: the key's batch is
  /// in flight".
  struct Route {
    size_t shard = 0;
    bool in_flight = false;
  };

  /// Runs the two-phase protocol over `writes` (already routed). The
  /// caller holds txn_mu_ — routing decided under that lock cannot be
  /// invalidated by a migration batch, which also serializes on it. On
  /// success fills `results[batch_index]` for every write; replicated
  /// writes report the coordinator replica's result with the slowest
  /// replica's storage time.
  Status RunTransactionLocked(const std::vector<ShardWrite>& writes,
                              std::vector<PutResult>* results);

  /// Applies one uncoordinated write and records its version id. Routes
  /// internally under the migration write guard, so the destination cannot
  /// be invalidated by a concurrent rebalance batch.
  StatusOr<PutResult> DirectPut(const std::string& key,
                                std::string_view data);

  void RecordVersion(const Hash256& id, size_t shard);

  /// Non-blocking dual-epoch route (see ShardForKey). Write routes carry
  /// extra duties the read route must not: a write bound past the cursor
  /// for its OLD owner is recorded as dirty (the pass enumeration predates
  /// it, so the next batch must fold it in before the cursor can overtake
  /// it), and while a batch is mid-copy such writes wait the batch out —
  /// otherwise a write landing on the old owner during the copy would be
  /// stranded there the moment the batch's cursor advance routes the key
  /// to its new owner.
  Route TryRouteKey(std::string_view key, bool for_write) const;
  /// Blocks until TryRouteKey(key, for_write) can answer without waiting.
  void WaitRouteUnblocked(std::string_view key, bool for_write) const;
  /// Blocking dual-epoch route (loops TryRouteKey + WaitRouteUnblocked).
  size_t RouteKeyBlocking(std::string_view key, bool for_write) const;

  /// Runs `fn(shard)` with the route pinned: holds the migration write
  /// guard (shared) so a rebalance batch cannot invalidate the decision
  /// mid-call, retrying if the key's batch claims it first.
  template <typename Fn>
  auto WithStableRoute(std::string_view key, bool for_write, Fn&& fn) const {
    while (true) {
      std::shared_lock<std::shared_mutex> guard(mig_write_mu_);
      Route r = TryRouteKey(key, for_write);
      if (!r.in_flight) return fn(r.shard);
      guard.unlock();
      WaitRouteUnblocked(key, for_write);
    }
  }

  /// True for router-internal keys (2PC staging, migration plan/cursor)
  /// that must never surface in listings or migrate.
  bool IsInternalKey(std::string_view key) const;

  // --- rebalance internals (all driven by one thread per migration) ---
  Status DriveMigration(const MigrationOptions& opts);
  /// Migrates a sorted prefix of `moves` (folding in any dirty keys at or
  /// below its last key) and returns how many of `moves` it consumed —
  /// fewer than all of them when `byte_budget` truncates the batch.
  StatusOr<size_t> MigrateOneBatch(const std::vector<KeyMove>& moves,
                                   size_t byte_budget);
  /// Installs the durable `__migration__/topology` record's membership if
  /// one exists and is newer than the current ring (see ResumeMigration).
  Status RestoreDurableTopology();
  /// Keys currently sitting on a live slot the CURRENT ring does not route
  /// them to, sorted by key. Empty means the data plane matches the ring.
  std::vector<KeyMove> EnumerateMoves() const;
  Status FinalizeMigrationLocked();
  Status PersistPlan(const ShardRing& from, const ShardRing& to);
  /// First member of the current ring = where plan/cursor live (chosen so
  /// it survives the topology change: a leaving slot never hosts them).
  size_t plan_shard() const;
  Status RecoverTwoPhaseLocked();
  size_t SlotCount() const;

  /// Accounts one index-miss broadcast into bc_stats_ as a single unit.
  /// `measured_peak_inflight` comes from the call site's issue/collect
  /// meter — a real measurement, so a regression to a serial probe loop
  /// shows up as 1 in the stats (and fails the ledger tests) instead of
  /// being papered over. `probed` lists the shards actually messaged
  /// (down shards a fan-out skipped are not probes).
  void RecordBroadcast(uint64_t measured_peak_inflight,
                       const std::vector<size_t>& probed) const;

  /// Feeds one shard response into the health tracker (see shard_health()).
  /// Pass Ok for any answered call — NotFound is an answer.
  void NoteShardResult(size_t shard, const Status& status) const;
  /// True when `shard` is down and this fan-out should skip it. Mutates the
  /// half-open counter: the FIRST would-be skip after the down transition
  /// probes immediately, then every kHalfOpenEvery-th one does.
  bool SkipDownShard(size_t shard) const;
  /// Non-mutating down check (for callers that fail fast instead of
  /// skipping, e.g. DeleteVersion).
  bool ShardDown(size_t shard) const;

  static constexpr uint64_t kDownFailures = 3;
  static constexpr uint64_t kHalfOpenEvery = 8;

  /// Sentinel shard index meaning "present on every live shard, read from
  /// the coordinator".
  static constexpr size_t kReplicated = static_cast<size_t>(-1);

  /// Slot capacity reserved up front so AddShard's push_back never
  /// reallocates shards_ under concurrent readers (slot pointers stay
  /// valid without a lock on the hot path).
  static constexpr size_t kSlotCapacity = 64;

  std::vector<std::unique_ptr<StorageEngine>> shards_;
  Options options_;

  /// Topology: the current ring, plus the previous epoch's while a
  /// migration is in flight. Writers (install/finalize) take it unique;
  /// routing takes it shared.
  mutable std::shared_mutex topo_mu_;
  ShardRing current_ring_;
  ShardRing prev_ring_;  ///< Valid only while migrating_.
  std::atomic<bool> migrating_{false};

  /// Migration data plane: the in-flight batch's keys (routing blocks on
  /// them) and the cursor (last key whose batch landed durably).
  mutable std::mutex mig_mu_;
  mutable std::condition_variable mig_cv_;
  std::set<std::string, std::less<>> inflight_keys_;
  std::string mig_cursor_;
  /// Reassigned keys a write sent to their OLD owner mid-migration (they
  /// routed past the cursor, so the pass enumeration cannot know about
  /// them). Every batch folds in the dirty keys at or below its last key
  /// before advancing the cursor — the invariant that makes the cursor
  /// trustworthy: no key at or before it is ever left at its old owner.
  /// Mutable: recorded at route time, which serves const readers too.
  mutable std::set<std::string, std::less<>> mig_dirty_;
  /// True while a batch is between its route fence and its cursor
  /// advance; write routes past the cursor wait it out (see TryRouteKey).
  bool mig_batch_active_ = false;

  /// Write drain for uncoordinated puts: DirectPut (and routed reads) hold
  /// it shared for the duration of the shard call; a migration batch takes
  /// it unique once after marking its keys in flight, guaranteeing no
  /// routed call decided under the OLD route is still on the wire when the
  /// batch reads the source.
  mutable std::shared_mutex mig_write_mu_;

  mutable std::mutex mig_stats_mu_;
  MigrationStats mig_stats_;

  mutable std::shared_mutex index_mu_;
  std::unordered_map<Hash256, size_t, Hash256Hasher> version_shard_;

  /// Serializes coordinated transactions so concurrent replicated writes
  /// cannot apply in different orders on different shards (replica
  /// divergence). Migration batches and topology changes also take it, so
  /// a transaction's routing is stable for its whole lifetime. DirectPut
  /// never takes it.
  std::mutex txn_mu_;
  /// Staging-key id generator only; telemetry lives in tp_stats_.
  std::atomic<uint64_t> txn_counter_{0};
  /// 2PC telemetry, updated as one unit at transaction resolution so
  /// two_phase_stats() snapshots are consistent (see TwoPhaseStats).
  mutable std::mutex tp_stats_mu_;
  TwoPhaseStats tp_stats_;
  /// Broadcast-probe telemetry, one unit per broadcast (see BroadcastStats).
  mutable std::mutex bc_stats_mu_;
  mutable BroadcastStats bc_stats_;

  /// Health tracker state (see shard_health()); mutable because query-side
  /// const calls observe failures too.
  mutable std::mutex health_mu_;
  mutable std::vector<uint64_t> consecutive_failures_;
  mutable std::vector<uint64_t> half_open_skips_;
};

/// Builds the canonical loopback cluster: `shards` backends (from
/// `backend_factory`), each wrapped in a StorageEngineService behind a
/// LoopbackTransport and a RemoteStorageEngine proxy, all routed by one
/// ShardedStorageEngine. Every storage call crosses the wire format exactly
/// as a socket deployment would; swapping the transport is the only change a
/// real multi-process setup needs.
std::unique_ptr<ShardedStorageEngine> MakeLoopbackCluster(
    size_t shards,
    const std::function<std::unique_ptr<StorageEngine>()>& backend_factory,
    ShardedStorageEngine::Options options = ShardedStorageEngine::Options());

/// Builds one loopback shard proxy around `backend` — what AddShard wants
/// when growing a MakeLoopbackCluster-style deployment.
std::unique_ptr<StorageEngine> MakeLoopbackShard(
    std::unique_ptr<StorageEngine> backend);

// ConnectCluster — the multi-process sibling of MakeLoopbackCluster, which
// dials running mlcask_server processes over unix:/tcp: endpoints — lives
// in storage/server_cluster.h: it (and only it) needs the socket transport,
// and this header stays transport-agnostic for the loopback-only majority
// of consumers.

}  // namespace mlcask::storage

#endif  // MLCASK_STORAGE_SHARDED_ENGINE_H_
