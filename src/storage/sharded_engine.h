#ifndef MLCASK_STORAGE_SHARDED_ENGINE_H_
#define MLCASK_STORAGE_SHARDED_ENGINE_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "storage/storage_engine.h"

namespace mlcask::storage {

/// A distributed StorageEngine: N child engines (typically RemoteStorageEngine
/// proxies, so every call crosses a serialization boundary) behind one router.
///
/// ## Routing
///
/// Object keys route by consistent hashing: each shard owns
/// `virtual_nodes_per_shard` points on a 64-bit ring, a key goes to the shard
/// owning the first point at or after H(key). Version ids route through a
/// router-side index maintained on Put (with a broadcast probe as fallback),
/// since a content id alone does not reveal its key.
///
/// ## Replicated namespaces (cross-shard branch-table coordination)
///
/// Keys matching `replicated_prefixes` — by default the `pipeline/` commit
/// logs that persist the branch table and the `library/` metafiles — are
/// written to EVERY shard through the two-phase protocol below and read from
/// shard 0. Version-control metadata must be visible cluster-wide (any shard
/// can resolve branch heads and commit history); bulky artifacts partition.
///
/// ## Two-phase commit (merge winners)
///
/// `PutMany` overrides the interface default with an all-or-nothing protocol:
///   phase 1  stage every write's payload on its participant shard under a
///            transactional `__2pc__/<txn>/...` key (durable intent; on a
///            deduplicating engine the staged chunks make the commit write
///            nearly free);
///   phase 2  on unanimous success, apply the real writes and drop the
///            staging records; any prepare failure aborts — staged records
///            are deleted and no real key ever surfaces.
/// The merge operation persists its winner through PutMany, so a merge
/// result spanning shards commits atomically. A single-write,
/// non-replicated batch skips coordination (a one-write transaction needs
/// no 2PC). Staging keys are internal: they never appear in
/// ListAllVersions.
///
/// Thread safety: same contract as every StorageEngine — concurrent calls
/// from many workers are safe (the router index has its own lock; child
/// engines carry their own guarantees).
class ShardedStorageEngine : public StorageEngine {
 public:
  struct Options {
    /// Key prefixes replicated to every shard (see above).
    std::vector<std::string> replicated_prefixes = {"pipeline/", "library/"};
    /// Ring points per shard; more points = smoother key balance.
    size_t virtual_nodes_per_shard = 16;
  };

  /// Two-phase-commit telemetry. `two_phase_stats()` returns a CONSISTENT
  /// snapshot: all counters are bumped together, under one mutex, at
  /// the moment a transaction RESOLVES (commit or abort), so any reader —
  /// including one polling while concurrent merge drains archive trial
  /// outputs — always observes `transactions == commits + aborts` exactly,
  /// with in-flight transactions invisible until they resolve.
  ///
  /// The round-trip ledger makes the ASYNC fan-out observable without
  /// timing: `max_inflight_round_trips` is the peak number of shard round
  /// trips a single transaction phase had issued before collecting the
  /// first response. The overlapped fan-out pushes it to the participant
  /// count; a regression to the old issue-one-wait-one serial loop pins it
  /// at 1, which is exactly what the regression tests assert on.
  struct TwoPhaseStats {
    uint64_t transactions = 0;     ///< Resolved PutMany/replicated txns.
    uint64_t prepared_writes = 0;  ///< Staging records written (phase 1).
    uint64_t commits = 0;          ///< Transactions fully applied.
    uint64_t aborts = 0;           ///< Transactions rolled back in phase 1.
    uint64_t prepare_round_trips = 0;  ///< Phase-1 shard messages issued.
    uint64_t apply_round_trips = 0;    ///< Phase-2 shard messages issued.
    /// Peak round trips in flight inside one transaction phase (see above).
    uint64_t max_inflight_round_trips = 0;
    /// Prepare+apply messages per shard index — the per-shard view that
    /// shows whether coordination load is balanced or piling on one shard.
    std::vector<uint64_t> per_shard_round_trips;
    /// Commit-decision writes issued to shard 0: exactly one per
    /// transaction that reached a unanimous prepare (aborts before the
    /// decision point issue none).
    uint64_t decision_round_trips = 0;
    /// RecoverTwoPhase outcomes: transactions rolled FORWARD (durable
    /// decision found), transactions FENCED (no decision — intents
    /// destroyed so a zombie coordinator can never land them), and the
    /// individual writes the roll-forwards actually re-applied (an
    /// already-applied write is recognized by payload identity and
    /// skipped, so replay is idempotent).
    uint64_t recovered_transactions = 0;
    uint64_t fenced_transactions = 0;
    uint64_t replayed_writes = 0;
  };

  /// Router broadcast telemetry (version-id lookups that missed the router
  /// index and probed every shard). Same consistency and same
  /// inflight-accounting contract as TwoPhaseStats: `max_inflight_probes`
  /// reaches the shard count when the fan-out overlaps, 1 when serial.
  struct BroadcastStats {
    uint64_t broadcasts = 0;          ///< Broadcast operations run.
    uint64_t probe_round_trips = 0;   ///< Per-shard probe messages issued.
    uint64_t max_inflight_probes = 0;
    std::vector<uint64_t> per_shard_probes;  ///< Probe messages per shard.
  };

  /// Takes ownership of the child engines. At least one shard is required.
  explicit ShardedStorageEngine(
      std::vector<std::unique_ptr<StorageEngine>> shards);
  ShardedStorageEngine(std::vector<std::unique_ptr<StorageEngine>> shards,
                       Options options);

  StatusOr<PutResult> Put(const std::string& key,
                          std::string_view data) override;
  StatusOr<std::vector<PutResult>> PutMany(
      const std::vector<PutRequest>& batch) override;
  StatusOr<std::string> Get(const std::string& key) override;
  StatusOr<std::string> GetVersion(const Hash256& id) override;
  bool HasVersion(const Hash256& id) const override;
  std::vector<Hash256> Versions(const std::string& key) const override;
  std::vector<std::pair<std::string, Hash256>> ListAllVersions() const override;
  StatusOr<uint64_t> DeleteVersion(const Hash256& id) override;
  EngineStats stats() const override;  ///< Sum over child engines.
  std::string Name() const override;
  double ReadCost(uint64_t bytes) const override;

  size_t num_shards() const { return shards_.size(); }
  StorageEngine* shard(size_t i) { return shards_[i].get(); }
  const StorageEngine* shard(size_t i) const { return shards_[i].get(); }

  /// Ring lookup for `key` (replication not considered).
  size_t ShardForKey(std::string_view key) const;
  bool IsReplicated(std::string_view key) const;

  TwoPhaseStats two_phase_stats() const;
  BroadcastStats broadcast_stats() const;

  /// Availability of one shard as judged from this router's own traffic:
  /// kUnavailable / kDeadlineExceeded responses bump a consecutive-failure
  /// count (any other answer — including NotFound — resets it, because the
  /// shard responded). One failure degrades; kDownFailures consecutive
  /// failures mark the shard down, after which broadcasts and 2PC fan-outs
  /// skip it and fail fast with a typed Unavailable instead of burning a
  /// timeout per call. Down shards are re-probed every kHalfOpenEvery-th
  /// skip (half-open), so a recovered shard rejoins without manual help;
  /// MarkShardRecovered short-circuits that wait after a known restart.
  enum class ShardHealth : uint8_t { kUp = 0, kDegraded = 1, kDown = 2 };
  struct ShardHealthView {
    std::vector<ShardHealth> state;                ///< One entry per shard.
    std::vector<uint64_t> consecutive_failures;    ///< Current streaks.
  };
  ShardHealthView shard_health() const;
  /// Clears shard `shard`'s failure streak (e.g. after restarting its
  /// process), so the next fan-out talks to it immediately.
  void MarkShardRecovered(size_t shard);

  /// Scans every shard for leftover `__2pc__/` staging records from
  /// transactions that died mid-flight (coordinator crash, shard kill) and
  /// resolves each one: a transaction whose durable commit decision exists
  /// on shard 0 is rolled FORWARD (its intents are re-applied, idempotently
  /// — a write the dead coordinator already landed is recognized by payload
  /// identity and not applied twice), any other transaction is FENCED (its
  /// intents are deleted, so the writes can never surface). Either way the
  /// staging records are gone afterwards: a clean scan is the recovery
  /// invariant the chaos suite asserts. Call on a freshly (re)built router
  /// before accepting new transactions, and after rejoining a crashed
  /// shard. Outcomes are counted in two_phase_stats().
  Status RecoverTwoPhase();

 private:
  /// One write bound for a specific shard, remembering its slot in the
  /// caller's batch so results come back in order.
  struct ShardWrite {
    size_t shard = 0;
    size_t batch_index = 0;
    const PutRequest* request = nullptr;
  };

  /// Runs the two-phase protocol over `writes` (already routed). On success
  /// fills `results[batch_index]` for every write; replicated writes report
  /// their shard-0 result with the slowest replica's storage time.
  Status RunTransaction(const std::vector<ShardWrite>& writes,
                        std::vector<PutResult>* results);

  /// Applies one uncoordinated write and records its version id.
  StatusOr<PutResult> DirectPut(size_t shard, const std::string& key,
                                std::string_view data);

  void RecordVersion(const Hash256& id, size_t shard);

  /// Accounts one index-miss broadcast into bc_stats_ as a single unit.
  /// `measured_peak_inflight` comes from the call site's issue/collect
  /// meter — a real measurement, so a regression to a serial probe loop
  /// shows up as 1 in the stats (and fails the ledger tests) instead of
  /// being papered over. `probed` lists the shards actually messaged
  /// (down shards a fan-out skipped are not probes).
  void RecordBroadcast(uint64_t measured_peak_inflight,
                       const std::vector<size_t>& probed) const;

  /// Feeds one shard response into the health tracker (see shard_health()).
  /// Pass Ok for any answered call — NotFound is an answer.
  void NoteShardResult(size_t shard, const Status& status) const;
  /// True when `shard` is down and this fan-out should skip it. Mutates the
  /// half-open counter: every kHalfOpenEvery-th would-be skip returns false
  /// so the shard gets probed.
  bool SkipDownShard(size_t shard) const;
  /// Non-mutating down check (for callers that fail fast instead of
  /// skipping, e.g. DeleteVersion).
  bool ShardDown(size_t shard) const;

  static constexpr uint64_t kDownFailures = 3;
  static constexpr uint64_t kHalfOpenEvery = 8;

  /// Sentinel shard index meaning "present on every shard, read from 0".
  static constexpr size_t kReplicated = static_cast<size_t>(-1);

  std::vector<std::unique_ptr<StorageEngine>> shards_;
  Options options_;
  std::map<uint64_t, size_t> ring_;  ///< Ring point -> shard index.

  mutable std::shared_mutex index_mu_;
  std::unordered_map<Hash256, size_t, Hash256Hasher> version_shard_;

  /// Serializes coordinated transactions so concurrent replicated writes
  /// cannot apply in different orders on different shards (replica
  /// divergence). DirectPut never takes it.
  std::mutex txn_mu_;
  /// Staging-key id generator only; telemetry lives in tp_stats_.
  std::atomic<uint64_t> txn_counter_{0};
  /// 2PC telemetry, updated as one unit at transaction resolution so
  /// two_phase_stats() snapshots are consistent (see TwoPhaseStats).
  mutable std::mutex tp_stats_mu_;
  TwoPhaseStats tp_stats_;
  /// Broadcast-probe telemetry, one unit per broadcast (see BroadcastStats).
  mutable std::mutex bc_stats_mu_;
  mutable BroadcastStats bc_stats_;

  /// Health tracker state (see shard_health()); mutable because query-side
  /// const calls observe failures too.
  mutable std::mutex health_mu_;
  mutable std::vector<uint64_t> consecutive_failures_;
  mutable std::vector<uint64_t> half_open_skips_;
};

/// Builds the canonical loopback cluster: `shards` backends (from
/// `backend_factory`), each wrapped in a StorageEngineService behind a
/// LoopbackTransport and a RemoteStorageEngine proxy, all routed by one
/// ShardedStorageEngine. Every storage call crosses the wire format exactly
/// as a socket deployment would; swapping the transport is the only change a
/// real multi-process setup needs.
std::unique_ptr<ShardedStorageEngine> MakeLoopbackCluster(
    size_t shards,
    const std::function<std::unique_ptr<StorageEngine>()>& backend_factory,
    ShardedStorageEngine::Options options = ShardedStorageEngine::Options());

// ConnectCluster — the multi-process sibling of MakeLoopbackCluster, which
// dials running mlcask_server processes over unix:/tcp: endpoints — lives
// in storage/server_cluster.h: it (and only it) needs the socket transport,
// and this header stays transport-agnostic for the loopback-only majority
// of consumers.

}  // namespace mlcask::storage

#endif  // MLCASK_STORAGE_SHARDED_ENGINE_H_
