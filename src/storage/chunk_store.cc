#include "storage/chunk_store.h"

namespace mlcask::storage {

Hash256 ChunkStore::Put(ChunkType type, std::string_view data) {
  return PutPrehashed(Chunk::ComputeHash(type, data), type, data);
}

Hash256 ChunkStore::PutPrehashed(const Hash256& hash, ChunkType type,
                                 std::string_view data) {
  std::lock_guard<std::mutex> stats_lock(stats_mu_);
  stats_.puts += 1;
  stats_.logical_bytes += data.size();
  auto it = chunks_.find(hash);
  if (it != chunks_.end()) {
    it->second.refs += 1;
    stats_.dedup_hits += 1;
    return hash;
  }
  Entry entry;
  entry.chunk = std::make_unique<Chunk>(type, std::string(data));
  entry.refs = 1;
  stats_.physical_bytes += data.size();
  stats_.distinct_chunks += 1;
  chunks_.emplace(hash, std::move(entry));
  return hash;
}

StatusOr<const Chunk*> ChunkStore::Get(const Hash256& hash) const {
  {
    std::lock_guard<std::mutex> stats_lock(stats_mu_);
    stats_.gets += 1;
  }
  auto it = chunks_.find(hash);
  if (it == chunks_.end()) {
    return Status::NotFound("chunk " + hash.ShortHex() + " not in store");
  }
  return it->second.chunk.get();
}

bool ChunkStore::Contains(const Hash256& hash) const {
  return chunks_.find(hash) != chunks_.end();
}

Status ChunkStore::Release(const Hash256& hash) {
  auto it = chunks_.find(hash);
  if (it == chunks_.end()) {
    return Status::NotFound("chunk " + hash.ShortHex() + " not in store");
  }
  if (--it->second.refs == 0) {
    {
      std::lock_guard<std::mutex> stats_lock(stats_mu_);
      stats_.physical_bytes -= it->second.chunk->size();
      stats_.distinct_chunks -= 1;
    }
    chunks_.erase(it);
  }
  return Status::Ok();
}

uint64_t ChunkStore::RefCount(const Hash256& hash) const {
  auto it = chunks_.find(hash);
  return it == chunks_.end() ? 0 : it->second.refs;
}

void ChunkStore::ForEachChunk(
    const std::function<void(const Chunk&, uint64_t refs)>& fn) const {
  for (const auto& [hash, entry] : chunks_) {
    (void)hash;
    fn(*entry.chunk, entry.refs);
  }
}

Status ChunkStore::RestoreChunk(ChunkType type, std::string_view data,
                                uint64_t refs) {
  if (refs == 0) {
    return Status::InvalidArgument("restored chunk needs refs > 0");
  }
  Hash256 hash = Chunk::ComputeHash(type, data);
  if (chunks_.count(hash) != 0) {
    return Status::AlreadyExists("chunk " + hash.ShortHex() +
                                 " already present");
  }
  Entry entry;
  entry.chunk = std::make_unique<Chunk>(type, std::string(data));
  entry.refs = refs;
  {
    std::lock_guard<std::mutex> stats_lock(stats_mu_);
    stats_.physical_bytes += data.size();
    stats_.distinct_chunks += 1;
  }
  chunks_.emplace(hash, std::move(entry));
  return Status::Ok();
}

}  // namespace mlcask::storage
