#ifndef MLCASK_STORAGE_CHUNKER_H_
#define MLCASK_STORAGE_CHUNKER_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace mlcask::storage {

/// Splits a byte stream into chunks for content-addressable storage.
class Chunker {
 public:
  virtual ~Chunker() = default;

  /// Returns the boundaries of `data` as (offset, length) pairs covering the
  /// whole input in order. Empty input yields no chunks.
  virtual std::vector<std::pair<size_t, size_t>> Split(
      std::string_view data) const = 0;

  virtual std::string Name() const = 0;
};

/// Fixed-size chunking: simple, but an insertion near the front of a blob
/// shifts every later boundary, destroying de-duplication. Kept as the
/// ablation baseline for the chunking design choice (DESIGN.md §7.1).
class FixedChunker : public Chunker {
 public:
  explicit FixedChunker(size_t chunk_size = 4096);

  std::vector<std::pair<size_t, size_t>> Split(
      std::string_view data) const override;
  std::string Name() const override { return "fixed"; }

  size_t chunk_size() const { return chunk_size_; }

 private:
  size_t chunk_size_;
};

/// Content-defined chunking with a Gear rolling hash (the scheme used by
/// FastCDC-family systems and, in spirit, ForkBase's POS-tree boundary
/// detection). Boundaries depend only on local content, so an edit in one
/// region leaves boundaries elsewhere intact — this is what gives MLCask its
/// chunk-level de-duplication across library/output versions (Sec. VII-C).
class GearChunker : public Chunker {
 public:
  /// `avg_size` must be a power of two; boundaries are declared when the
  /// rolling hash has log2(avg_size) leading zero bits, subject to
  /// [min_size, max_size] clamping.
  GearChunker(size_t min_size = 1024, size_t avg_size = 4096,
              size_t max_size = 16384);

  std::vector<std::pair<size_t, size_t>> Split(
      std::string_view data) const override;
  std::string Name() const override { return "gear-cdc"; }

  size_t min_size() const { return min_size_; }
  size_t avg_size() const { return avg_size_; }
  size_t max_size() const { return max_size_; }

 private:
  size_t min_size_;
  size_t avg_size_;
  size_t max_size_;
  uint64_t mask_;
  std::vector<uint64_t> gear_table_;
};

}  // namespace mlcask::storage

#endif  // MLCASK_STORAGE_CHUNKER_H_
