#ifndef MLCASK_STORAGE_DEFERRED_H_
#define MLCASK_STORAGE_DEFERRED_H_

#include <chrono>
#include <functional>
#include <future>
#include <optional>
#include <string>
#include <utility>

#include "common/status.h"

namespace mlcask::storage {

/// Completion handle of one in-flight transport round trip. Resolves to the
/// serialized response payload, or to a transport-level error status (peer
/// gone, deadline, version skew). Transports guarantee the future is ALWAYS
/// eventually fulfilled — a lost connection fails every pending call rather
/// than leaving waiters hung.
using TransportFuture = std::future<StatusOr<std::string>>;

/// A typed in-flight RPC result: the raw transport future plus the decoder
/// that turns the serialized response into T. Get() waits and decodes —
/// one-shot, like the future underneath. The point of the type is WHEN work
/// happens: the request is already on the wire by the time a Deferred
/// exists, so issuing N Deferreds and then Get()ing them overlaps N round
/// trips (the sharded engine's fan-out pattern). The ready-value form wraps
/// an already-computed result, which is how plain local engines satisfy the
/// StorageEngine Async* surface behind the same collection loops.
template <typename T>
class Deferred {
 public:
  using Decoder = std::function<StatusOr<T>(StatusOr<std::string>)>;

  /// `timeout_ms` bounds Get(): 0 waits forever; otherwise a response that
  /// has not arrived within the window resolves as DeadlineExceeded, so a
  /// connected-but-wedged peer can stall one fan-out round, never hang it.
  /// (The transport keeps the call registered — a straggler response is
  /// absorbed there and, deliberately, still counted in TransportStats as
  /// a completed round trip: the deadline here is an ENGINE-level verdict
  /// the caller sees, not a transport failure, and deregistering would
  /// mean threading correlation ids through the public future API for a
  /// telemetry nicety.)
  Deferred(TransportFuture future, Decoder decoder, uint64_t timeout_ms = 0)
      : future_(std::move(future)),
        decoder_(std::move(decoder)),
        timeout_ms_(timeout_ms) {}
  /// Already-resolved value (inline/synchronous issue path).
  explicit Deferred(StatusOr<T> ready) : ready_(std::move(ready)) {}

  /// Waits for the response (no-op when ready) and decodes. Call once.
  StatusOr<T> Get() {
    if (ready_.has_value()) return *std::move(ready_);
    if (timeout_ms_ > 0 &&
        future_.wait_for(std::chrono::milliseconds(timeout_ms_)) !=
            std::future_status::ready) {
      return Status::DeadlineExceeded("async call exceeded " +
                                      std::to_string(timeout_ms_) + "ms");
    }
    return decoder_(future_.get());
  }

 private:
  std::optional<StatusOr<T>> ready_;
  TransportFuture future_;
  Decoder decoder_;
  uint64_t timeout_ms_ = 0;
};

}  // namespace mlcask::storage

#endif  // MLCASK_STORAGE_DEFERRED_H_
