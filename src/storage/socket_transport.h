#ifndef MLCASK_STORAGE_SOCKET_TRANSPORT_H_
#define MLCASK_STORAGE_SOCKET_TRANSPORT_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "storage/endpoint.h"
#include "storage/frame.h"
#include "storage/transport.h"

namespace mlcask::storage {

/// The first real Transport: length-prefixed frames (storage/frame.h) over a
/// Unix-domain or TCP stream socket, multiplexed by per-request correlation
/// id. One connection carries any number of in-flight calls: AsyncCall
/// registers the id, writes the frame, and returns; a dedicated reader
/// thread demultiplexes response frames back to their waiters. That is what
/// turns the sharded engine's N-shard fan-outs into N OVERLAPPED round
/// trips — the serial-loop latency multiplier the blocking API had is gone.
///
/// Failure surface (all as statuses, never hangs):
///   connect refused / no such socket      Unavailable (from Connect)
///   peer closes / resets mid-call         Unavailable, fails EVERY pending
///   call outliving options.call_timeout   DeadlineExceeded (Call/CallMany)
///   wire-format version skew              Unimplemented (from the peer's
///                                         error frame, or local decode)
///   garbled stream                        Corruption, connection abandoned
///
/// stats() is a consistent snapshot under one mutex, same contract as
/// LoopbackTransport; completed calls count {calls, request, response} as
/// one unit, transport failures count transport_errors.
class SocketTransport : public Transport {
 public:
  struct Options {
    /// Milliseconds a blocking Call/CallMany waits before giving up with
    /// DeadlineExceeded. 0 = wait forever. AsyncCall futures are not
    /// deadline-bound (the waiter chooses how long to wait) but always
    /// resolve on response or connection loss.
    uint64_t call_timeout_ms = 30000;
    /// Reject frames above this payload size as corrupt.
    uint32_t max_frame_payload = kMaxFramePayload;
  };

  /// Connects to `endpoint` (unix: or tcp:). Connection failures surface as
  /// Unavailable; a loopback endpoint is rejected as InvalidArgument (it
  /// has no wire — build a LoopbackTransport instead). The no-options
  /// overloads use the defaults above.
  static StatusOr<std::unique_ptr<SocketTransport>> Connect(
      const Endpoint& endpoint, Options options);
  static StatusOr<std::unique_ptr<SocketTransport>> Connect(
      const Endpoint& endpoint) {
    return Connect(endpoint, Options());
  }
  /// Spec-string convenience ("unix:/tmp/s.sock", "tcp:host:port").
  static StatusOr<std::unique_ptr<SocketTransport>> Connect(
      std::string_view spec, Options options);
  static StatusOr<std::unique_ptr<SocketTransport>> Connect(
      std::string_view spec) {
    return Connect(spec, Options());
  }

  ~SocketTransport() override;

  StatusOr<std::string> Call(std::string_view request) override;
  TransportFuture AsyncCall(std::string_view request) override;
  /// Overridden so the batch honors call_timeout_ms too: all requests are
  /// issued first, then collected against one shared deadline.
  std::vector<StatusOr<std::string>> CallMany(
      const std::vector<std::string>& requests) override;
  TransportStats stats() const override;
  std::string Name() const override;
  uint64_t call_timeout_ms() const override {
    return options_.call_timeout_ms;
  }

 private:
  SocketTransport(int fd, Endpoint endpoint, Options options);

  /// AsyncCall plus the assigned correlation id, so deadline-bound callers
  /// can deregister the pending entry on timeout.
  TransportFuture AsyncCallWithId(std::string_view request, uint64_t* id_out);
  /// Waits for `future` until `deadline` (forever when call_timeout_ms is
  /// 0). On timeout the pending entry for `id` is removed, so the one call
  /// is accounted exactly once: as a transport error, never ALSO as a
  /// completed round trip when its response straggles in later.
  StatusOr<std::string> CollectWithDeadline(
      TransportFuture* future, uint64_t id,
      std::chrono::steady_clock::time_point deadline);

  void ReaderLoop();
  /// Fails every pending call with `status` and marks the session broken.
  void FailAllPending(const Status& status);

  struct Pending {
    std::promise<StatusOr<std::string>> promise;
    size_t request_bytes = 0;
  };

  const Endpoint endpoint_;
  const Options options_;
  int fd_ = -1;

  std::mutex write_mu_;  ///< Serializes frame writes (frames stay whole).

  std::mutex pending_mu_;
  std::unordered_map<uint64_t, Pending> pending_;
  Status broken_;  ///< Non-ok once the session is unusable.
  std::atomic<uint64_t> next_id_{1};

  mutable std::mutex stats_mu_;
  TransportStats stats_;

  std::thread reader_;
};

/// Server half: binds a unix:/tcp: endpoint, accepts connections, and pumps
/// each connection's request frames through the TransportHandler, writing
/// response frames correlated by id. Requests on ONE connection are handled
/// in arrival order (the per-shard ordering the 2PC apply phase relies on);
/// separate connections are handled concurrently on their own threads.
///
/// Version skew and garbled streams are answered per the frame contract:
/// a well-framed request in an unknown wire version gets an Unimplemented
/// ERROR frame back (correlated via the frozen header layout); an
/// unparseable stream closes the connection, which fails the peer's pending
/// calls as Unavailable instead of hanging them.
class SocketTransportServer : public TransportServer {
 public:
  struct Options {
    uint32_t max_frame_payload = kMaxFramePayload;
  };

  /// Binds and listens. unix: paths are unlinked first (stale socket files
  /// from a crashed predecessor must not wedge restarts); tcp: port 0 binds
  /// an ephemeral port, visible via endpoint().
  static StatusOr<std::unique_ptr<SocketTransportServer>> Bind(
      const Endpoint& endpoint, Options options);
  static StatusOr<std::unique_ptr<SocketTransportServer>> Bind(
      const Endpoint& endpoint) {
    return Bind(endpoint, Options());
  }
  static StatusOr<std::unique_ptr<SocketTransportServer>> Bind(
      std::string_view spec, Options options);
  static StatusOr<std::unique_ptr<SocketTransportServer>> Bind(
      std::string_view spec) {
    return Bind(spec, Options());
  }

  ~SocketTransportServer() override;

  Status Serve(TransportHandler handler) override;
  void Shutdown() override;
  std::string endpoint() const override { return endpoint_.ToString(); }

  /// Connections accepted over the server's lifetime (telemetry/tests).
  uint64_t connections_accepted() const;

 private:
  /// One accepted connection: its socket, its pump thread, and a done flag
  /// the reaper polls. The fd is closed by whichever side retires it —
  /// ConnectionLoop on peer disconnect (fd set to -1 under mu_), Shutdown
  /// otherwise.
  struct Connection {
    int fd = -1;
    std::thread thread;
    std::atomic<bool> done{false};
  };

  SocketTransportServer(int listen_fd, Endpoint endpoint, Options options);

  void AcceptLoop();
  void ConnectionLoop(Connection* connection);
  /// Joins and erases finished connections (called from the accept loop so
  /// a long-lived server does not accumulate one dead thread + fd per
  /// client that ever disconnected). Caller holds mu_.
  void ReapFinishedLocked();

  Endpoint endpoint_;
  Options options_;
  int listen_fd_ = -1;
  TransportHandler handler_;

  mutable std::mutex mu_;
  std::vector<std::unique_ptr<Connection>> connections_;
  uint64_t connections_accepted_ = 0;
  bool shutting_down_ = false;
  bool serving_ = false;

  std::thread accept_thread_;
};

}  // namespace mlcask::storage

#endif  // MLCASK_STORAGE_SOCKET_TRANSPORT_H_
