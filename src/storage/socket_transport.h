#ifndef MLCASK_STORAGE_SOCKET_TRANSPORT_H_
#define MLCASK_STORAGE_SOCKET_TRANSPORT_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <random>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "storage/endpoint.h"
#include "storage/fault_injector.h"
#include "storage/frame.h"
#include "storage/transport.h"
#include "storage/wire_codec.h"

namespace mlcask::storage {

/// Client connection lifecycle under the self-healing transport. One-way
/// within a session; kRecovered and kConnected are equivalent for callers
/// (kRecovered just records that at least one redial happened).
///
///   kConnected --(read error / EOF / corruption)--> kDegraded
///   kDegraded  --(redial attempts, bounded exponential backoff)--> kRedialing
///   kRedialing --(connect ok: replay pending calls)--> kRecovered
///   kRedialing --(budget exhausted)--> kFailed (terminal; pending calls
///                                      fail Unavailable, session broken)
enum class ConnState : uint8_t {
  kConnected = 0,
  kDegraded = 1,
  kRedialing = 2,
  kRecovered = 3,
  kFailed = 4,
};

/// The first real Transport: length-prefixed frames (storage/frame.h) over a
/// Unix-domain or TCP stream socket, multiplexed by per-request correlation
/// id. One connection carries any number of in-flight calls: AsyncCall
/// registers the id, writes the frame, and returns; a dedicated reader
/// thread demultiplexes response frames back to their waiters. That is what
/// turns the sharded engine's N-shard fan-outs into N OVERLAPPED round
/// trips — the serial-loop latency multiplier the blocking API had is gone.
///
/// Wire-speed details (version 2 sessions):
///   * sends are scatter-gather — the 14-byte header and the payload go out
///     as one sendmsg iovec, never coalesced into a copy;
///   * payloads at or above options.chunk_threshold are streamed as
///     content-defined CHUNK frames (shared correlation id, manifest-hashed
///     CHUNK_END), so the peer's receive buffer stays O(chunk), not
///     O(value), and the receiving shard can dedupe identical chunks;
///   * incoming chunk streams are reassembled and integrity-checked before
///     the waiter sees the value.
/// set_wire_version(kWireVersionJson) drops the session to version-1 frames
/// (monolithic, JSON-era) — codec negotiation uses it when the peer is an
/// older build.
///
/// Failure surface (all as statuses, never hangs). A lost or garbled
/// connection first enters the redial state machine (ConnState above):
/// in-flight calls stay pending, a replacement connection is dialed with
/// bounded exponential backoff, and pending requests are replayed on it in
/// correlation-id order (the server's replay ledger deduplicates mutations
/// the first connection already applied). Only when the redial budget is
/// exhausted does the session fail:
///   connect refused / no such socket      Unavailable (from Connect)
///   peer gone + redial budget exhausted   Unavailable, fails EVERY pending
///   call outliving options.call_timeout   DeadlineExceeded (Call/CallMany)
///   wire-format version skew              Unimplemented (from the peer's
///                                         error frame, or local decode)
///   garbled stream / bad chunk manifest   redial; terminal only on budget
///                                         exhaustion (redial_budget_ms=0
///                                         restores fail-fast Corruption)
///
/// stats() is a consistent snapshot under one mutex, same contract as
/// LoopbackTransport; completed calls count {calls, request, response} as
/// one unit, transport failures count transport_errors.
class SocketTransport : public Transport {
 public:
  struct Options {
    /// Milliseconds a blocking Call/CallMany waits before giving up with
    /// DeadlineExceeded. 0 = wait forever. AsyncCall futures are not
    /// deadline-bound (the waiter chooses how long to wait) but always
    /// resolve on response or connection loss.
    uint64_t call_timeout_ms = 30000;
    /// Reject frames above this payload size as corrupt.
    uint32_t max_frame_payload = kMaxFramePayload;
    /// Payloads at or above this size are chunk-streamed on version-2
    /// sessions. 0 disables streaming.
    size_t chunk_threshold = wire::kDefaultChunkThreshold;
    /// Initial wire version stamped on outgoing frames. Tests forge old
    /// peers with kWireVersionJson; production uses the default.
    uint8_t wire_version = kWireVersionBinary;
    /// Total milliseconds the transport keeps redialing a lost connection
    /// before declaring the session broken. While redialing, in-flight
    /// calls stay pending and are REPLAYED on the fresh connection (the
    /// server's replay ledger makes replayed mutations apply once). 0
    /// restores the old fail-fast behavior: first connection loss fails
    /// every pending call.
    uint64_t redial_budget_ms = 2000;
    /// First redial backoff. The sleep before attempt N is drawn uniformly
    /// from [0, min(500ms, initial << N)] — FULL JITTER, so a fleet of
    /// clients orphaned by one server restart does not redial in lockstep
    /// and re-create the overload that killed the connection.
    uint64_t redial_initial_backoff_ms = 10;
    /// Seed for the jitter PRNG. 0 draws a random seed; tests pin it for
    /// reproducible backoff schedules.
    uint64_t redial_jitter_seed = 0;
    /// Per-call retry budget: how many times one pending call may be
    /// replayed across redials before it fails with a typed
    /// ResourceExhausted instead of riding yet another fresh connection.
    /// Bounds retry amplification under overload (a shedding server must
    /// not be hammered forever by the calls it shed). 0 = unbounded.
    uint32_t max_call_replays = 8;
    /// Optional deterministic fault policy applied to outgoing requests
    /// (drop / drop-after-send / garble / delay). Chaos harness only.
    std::shared_ptr<FaultInjector> injector;
  };

  /// Connects to `endpoint` (unix: or tcp:). Connection failures surface as
  /// Unavailable; a loopback endpoint is rejected as InvalidArgument (it
  /// has no wire — build a LoopbackTransport instead). The no-options
  /// overloads use the defaults above.
  static StatusOr<std::unique_ptr<SocketTransport>> Connect(
      const Endpoint& endpoint, Options options);
  static StatusOr<std::unique_ptr<SocketTransport>> Connect(
      const Endpoint& endpoint) {
    return Connect(endpoint, Options());
  }
  /// Spec-string convenience ("unix:/tmp/s.sock", "tcp:host:port").
  static StatusOr<std::unique_ptr<SocketTransport>> Connect(
      std::string_view spec, Options options);
  static StatusOr<std::unique_ptr<SocketTransport>> Connect(
      std::string_view spec) {
    return Connect(spec, Options());
  }

  ~SocketTransport() override;

  StatusOr<std::string> Call(std::string_view request) override;
  TransportFuture AsyncCall(std::string_view request) override;
  /// Overridden so the batch honors call_timeout_ms too: all requests are
  /// issued first, then collected against one shared deadline.
  std::vector<StatusOr<std::string>> CallMany(
      const std::vector<std::string>& requests) override;
  TransportStats stats() const override;
  std::string Name() const override;
  uint64_t call_timeout_ms() const override {
    return options_.call_timeout_ms;
  }
  uint8_t wire_version() const override {
    return wire_version_.load(std::memory_order_relaxed);
  }
  void set_wire_version(uint8_t version) override {
    wire_version_.store(version, std::memory_order_relaxed);
  }

  /// Connection state machine position (telemetry/tests).
  ConnState conn_state() const {
    return conn_state_.load(std::memory_order_relaxed);
  }
  /// Successful redials over the transport's lifetime.
  uint64_t redials() const { return redials_.load(std::memory_order_relaxed); }

 private:
  SocketTransport(int fd, Endpoint endpoint, Options options);

  /// AsyncCall plus the assigned correlation id, so deadline-bound callers
  /// can deregister the pending entry on timeout.
  TransportFuture AsyncCallWithId(std::string_view request, uint64_t* id_out);
  /// Waits for `future` until `deadline` (forever when `timeout_ms` is 0).
  /// On timeout the pending entry for `id` is removed, so the one call is
  /// accounted exactly once: as a transport error, never ALSO as a
  /// completed round trip when its response straggles in later.
  StatusOr<std::string> CollectWithDeadline(
      TransportFuture* future, uint64_t id,
      std::chrono::steady_clock::time_point deadline, uint64_t timeout_ms);

  /// Sends one already-registered request (monolithic or chunk-streamed),
  /// applying `fault` on the way out. A degraded connection silently skips
  /// the send — the redial replay delivers it. Send failures degrade the
  /// connection (redial enabled) or fail the session (budget 0).
  Status SendRequest(uint64_t id, std::string_view request,
                     const SendFault& fault);
  /// Streams one large payload as CHUNK frames + CHUNK_END, all from one
  /// scatter-gather iovec batch under the write lock.
  Status SendChunked(uint64_t id, uint8_t version, std::string_view payload,
                     const SendFault& fault);

  void ReaderLoop();
  /// Reads and demultiplexes one connection's worth of frames; returns the
  /// status that ended the session (EOF, read error, corruption). Sets
  /// `*delivered` when at least one frame resolved a pending call.
  Status PumpSession(bool* delivered);
  /// Dials a replacement connection (bounded exponential backoff within
  /// redial_budget_ms), installs it, and replays every pending request in
  /// correlation-id order.
  Status Redial();
  /// Fails every pending call with `status` and marks the session broken.
  void FailAllPending(const Status& status);

  struct Pending {
    std::promise<StatusOr<std::string>> promise;
    std::string request;  ///< Full request bytes, retained for replay.
    uint32_t replays = 0;  ///< Redial replays consumed (retry budget).
  };

  const Endpoint endpoint_;
  const Options options_;
  int fd_ = -1;          ///< Guarded by write_mu_ (the reader swaps it).
  bool connected_ = true;  ///< Guarded by write_mu_; false while degraded.
  std::atomic<uint8_t> wire_version_;
  std::atomic<ConnState> conn_state_{ConnState::kConnected};
  std::atomic<uint64_t> redials_{0};
  std::atomic<bool> stopping_{false};

  std::mutex write_mu_;  ///< Serializes frame writes (frames stay whole).

  std::mutex pending_mu_;
  std::unordered_map<uint64_t, Pending> pending_;
  Status broken_;  ///< Non-ok once the session is unusable.
  std::atomic<uint64_t> next_id_{1};

  mutable std::mutex stats_mu_;
  TransportStats stats_;

  std::mutex redial_mu_;
  std::condition_variable redial_cv_;  ///< Wakes backoff sleeps on destroy.
  std::mt19937_64 jitter_rng_;  ///< Reader thread only (Redial backoff).

  std::thread reader_;
};

/// Lifecycle of the event-loop server, in start order. Transitions are
/// one-way: kInitial -> kStarting -> kStarted -> kStopping -> kStopped
/// (Bind-then-destroy goes kInitial -> kStopped directly). Borrowed from
/// the explicit pipeline start/stop discipline so every thread knows which
/// resources exist at any point — no half-started servers.
enum class ServerState : uint8_t {
  kInitial = 0,   ///< Bound, not serving.
  kStarting = 1,  ///< Serve() is bringing up the loop + workers.
  kStarted = 2,   ///< Event loop running, accepting connections.
  kStopping = 3,  ///< Shutdown() in progress.
  kStopped = 4,   ///< Everything joined and closed. Terminal.
};

/// Server half: binds a unix:/tcp: endpoint and serves every connection
/// from ONE epoll event loop over nonblocking sockets — no thread per
/// connection, so thousands of idle clients cost one thread and their fds.
///
///   * The loop owns all sockets: it accepts, reads into each connection's
///     incremental FrameDecoder, and flushes responses with scatter-gather
///     sendmsg from a per-connection iovec queue (header + payload parts,
///     never coalesced; EPOLLOUT is armed only while a flush would block).
///   * Handlers run on a small worker pool so the loop never blocks on
///     application work. Requests on ONE connection are handled in arrival
///     order (a per-connection job strand — the per-shard ordering the 2PC
///     apply phase relies on); separate connections proceed concurrently.
///   * Incoming chunk streams are reassembled per connection and deduped
///     through a server-wide WireChunkCache: identical chunks across
///     values, versions, and clients hash/store once (wire_chunk_stats()).
///   * Responses at or above chunk_threshold stream back as CHUNK frames
///     on version-2 connections; responses are stamped with the REQUEST's
///     wire version, so a version-1 client of this server keeps working.
///
/// Version skew and garbled streams are answered per the frame contract:
/// a well-framed request in an unknown wire version gets an Unimplemented
/// ERROR frame back (correlated via the frozen header layout); an
/// unparseable stream closes the connection, which fails the peer's pending
/// calls as Unavailable instead of hanging them.
class SocketTransportServer : public TransportServer {
 public:
  struct Options {
    uint32_t max_frame_payload = kMaxFramePayload;
    /// Responses at or above this size stream as chunk frames (version-2
    /// connections only). 0 disables streaming.
    size_t chunk_threshold = wire::kDefaultChunkThreshold;
    /// Newest wire version accepted/stamped. Tests forge an old server
    /// with kWireVersionJson to exercise negotiation.
    uint8_t max_wire_version = kWireVersionBinary;
    /// Handler worker pool size.
    size_t worker_threads = 4;
    /// Receive-side chunk cache capacity (bytes of retained chunk data).
    size_t chunk_cache_bytes = 64u << 20;
    /// Optional deterministic fault policy applied to inbound jobs (delay,
    /// slow-drip, kill -9 on the Nth request). Chaos harness only.
    std::shared_ptr<FaultInjector> injector;

    /// Admission control: hard caps on the queued-but-unserved work the
    /// server will hold. A DATA frame arriving past any cap is SHED — it is
    /// answered immediately with a typed ResourceExhausted ERROR frame and
    /// never enters the worker queue, so queue depth and RSS stay bounded no
    /// matter how far offered load exceeds capacity. Chunk-stream frames are
    /// never shed mid-stream (dropping one would corrupt reassembly); their
    /// cost is bounded by max_frame_payload + chunk_cache_bytes. 0 = that
    /// cap unbounded.
    size_t max_queued_jobs = 4096;          ///< Server-wide job count cap.
    size_t max_queued_bytes = 256u << 20;   ///< Server-wide job bytes cap.
    size_t max_conn_queued_jobs = 1024;     ///< Per-connection job count cap.
    size_t max_conn_queued_bytes = 64u << 20;  ///< Per-connection bytes cap.
  };

  /// Binds and listens. unix: paths are unlinked first (stale socket files
  /// from a crashed predecessor must not wedge restarts); tcp: port 0 binds
  /// an ephemeral port, visible via endpoint().
  static StatusOr<std::unique_ptr<SocketTransportServer>> Bind(
      const Endpoint& endpoint, Options options);
  static StatusOr<std::unique_ptr<SocketTransportServer>> Bind(
      const Endpoint& endpoint) {
    return Bind(endpoint, Options());
  }
  static StatusOr<std::unique_ptr<SocketTransportServer>> Bind(
      std::string_view spec, Options options);
  static StatusOr<std::unique_ptr<SocketTransportServer>> Bind(
      std::string_view spec) {
    return Bind(spec, Options());
  }

  ~SocketTransportServer() override;

  Status Serve(TransportHandler handler) override;
  void Shutdown() override;
  std::string endpoint() const override { return endpoint_.ToString(); }

  ServerState state() const { return state_.load(std::memory_order_acquire); }

  /// Connections accepted over the server's lifetime (telemetry/tests).
  uint64_t connections_accepted() const {
    return connections_accepted_.load(std::memory_order_relaxed);
  }

  /// Receive-side chunk dedup accounting (telemetry/tests/bench).
  ChunkStoreStats wire_chunk_stats() const { return chunk_cache_.stats(); }

  /// Admission/overload accounting (telemetry/tests/bench).
  uint64_t shed_jobs() const {
    return shed_jobs_.load(std::memory_order_relaxed);
  }
  /// Jobs whose deadline was already spent when a worker dequeued them:
  /// dropped with a typed DeadlineExceeded, handler never invoked.
  uint64_t expired_jobs() const {
    return expired_jobs_.load(std::memory_order_relaxed);
  }
  uint64_t queued_jobs() const {
    return queued_jobs_.load(std::memory_order_relaxed);
  }
  uint64_t peak_queued_jobs() const {
    return peak_queued_jobs_.load(std::memory_order_relaxed);
  }
  uint64_t peak_queued_bytes() const {
    return peak_queued_bytes_.load(std::memory_order_relaxed);
  }

 private:
  /// One queued piece of outgoing data: a frame header plus an optional
  /// slice of a shared payload. The payload body is shared_ptr-owned so N
  /// chunk parts of one response reference one buffer — zero coalescing.
  struct OutPart {
    std::string header;
    size_t header_off = 0;
    std::shared_ptr<const std::string> body;
    size_t body_off = 0;
    size_t body_len = 0;
  };

  /// One decoded request awaiting a worker.
  struct Job {
    FrameType type = FrameType::kData;
    uint64_t id = 0;
    uint8_t version = kWireVersion;
    std::string payload;
    /// When the loop queued the job — workers check the request's deadline
    /// stamp against time-in-queue and drop expired jobs unexecuted.
    std::chrono::steady_clock::time_point enqueued;
  };

  /// Per-connection state. The event loop owns fd/decoder/outbox flushing;
  /// exactly one worker at a time drains `jobs` (the strand), preserving
  /// arrival order. `mu` guards the cross-thread fields.
  struct Connection {
    std::mutex mu;
    int fd = -1;
    bool closed = false;
    uint32_t epoll_events = 0;  ///< Currently armed event mask.
    FrameDecoder decoder;
    wire::StreamAssembler assembler;
    std::deque<Job> jobs;
    size_t queued_bytes = 0;  ///< Payload bytes across `jobs` (admission).
    bool job_active = false;  ///< A worker currently owns the strand.
    std::deque<OutPart> outbox;

    Connection(uint32_t max_payload, uint8_t max_version,
               wire::WireChunkCache* cache)
        : decoder(max_payload, max_version),
          assembler(max_payload, cache) {}
  };

  SocketTransportServer(int listen_fd, Endpoint endpoint, Options options);

  void LoopThread();
  void WorkerThread();

  void AcceptReady();
  void ReadReady(const std::shared_ptr<Connection>& connection);
  /// Flushes the outbox with scatter-gather sendmsg until empty or EAGAIN;
  /// arms/disarms EPOLLOUT accordingly. Event-loop thread only. Returns
  /// false when the peer is gone and the caller must CloseConnection.
  bool FlushConnection(const std::shared_ptr<Connection>& connection);
  /// Event-loop thread only: deregisters, closes, forgets.
  void CloseConnection(const std::shared_ptr<Connection>& connection);

  /// Worker side: runs the handler for one job and enqueues the response
  /// (monolithic or chunk-streamed), then pokes the loop to flush.
  void ProcessJob(const std::shared_ptr<Connection>& connection, Job job);
  void EnqueueResponse(const std::shared_ptr<Connection>& connection,
                       uint64_t id, uint8_t version, std::string response);
  /// Worker side: enqueues a correlated ERROR frame (typed status payload)
  /// and pokes the loop — the shed/expired answer path, handler never run.
  void EnqueueError(const std::shared_ptr<Connection>& connection, uint64_t id,
                    uint8_t version, const Status& status);
  /// Thread safe: queues `connection` for a loop-thread flush and wakes it.
  void NotifyWritable(std::shared_ptr<Connection> connection);
  /// Thread safe: half-closes the socket so the loop retires it (workers
  /// never close fds — the loop owns them).
  static void AbortConnection(const std::shared_ptr<Connection>& connection);

  Endpoint endpoint_;
  Options options_;
  int listen_fd_ = -1;
  int epoll_fd_ = -1;
  int wake_fd_ = -1;
  TransportHandler handler_;
  wire::WireChunkCache chunk_cache_;

  std::atomic<ServerState> state_{ServerState::kInitial};
  std::atomic<bool> stop_{false};
  std::atomic<uint64_t> connections_accepted_{0};

  // Admission accounting. queued_jobs_/queued_bytes_ track work accepted but
  // not yet handed to the handler; peaks are high-water marks over the
  // server's lifetime (the bounded-queue acceptance criterion reads them).
  std::atomic<uint64_t> queued_jobs_{0};
  std::atomic<uint64_t> queued_bytes_{0};
  std::atomic<uint64_t> shed_jobs_{0};
  std::atomic<uint64_t> expired_jobs_{0};
  std::atomic<uint64_t> peak_queued_jobs_{0};
  std::atomic<uint64_t> peak_queued_bytes_{0};

  /// Loop-thread-only registry keeping connections alive while registered.
  std::unordered_map<int, std::shared_ptr<Connection>> connections_;

  std::mutex notify_mu_;
  std::vector<std::shared_ptr<Connection>> notify_;  ///< Pending flushes.

  std::mutex work_mu_;
  std::condition_variable work_cv_;
  std::deque<std::shared_ptr<Connection>> work_queue_;
  bool workers_stop_ = false;

  std::thread loop_thread_;
  std::vector<std::thread> workers_;
};

}  // namespace mlcask::storage

#endif  // MLCASK_STORAGE_SOCKET_TRANSPORT_H_
