#include "storage/local_dir_engine.h"

#include <algorithm>
#include <mutex>
#include <shared_mutex>

#include "common/sha256.h"

namespace mlcask::storage {

LocalDirEngine::LocalDirEngine(StorageTimeModel time_model)
    : time_model_(time_model) {}

StatusOr<PutResult> LocalDirEngine::Put(const std::string& key,
                                        std::string_view data) {
  PutResult result;
  {
    std::unique_lock<std::shared_mutex> lock(mu_);
    // Folder semantics: a full copy per version. The "folder name" is a
    // version id derived from key + ordinal, mirroring run-1/, run-2/, ...
    // directories.
    Sha256 h;
    h.Update(key);
    uint64_t ordinal = keys_[key].size();
    h.Update(&ordinal, sizeof(ordinal));
    Hash256 version_id = h.Finish();

    objects_[version_id] = std::string(data);
    keys_[key].push_back(version_id);

    result.id = version_id;
  }
  result.logical_bytes = data.size();
  result.new_physical_bytes = data.size();  // no de-duplication, ever
  result.deduplicated = false;
  result.storage_time_s = time_model_.WriteSeconds(data.size(), data.size());

  std::lock_guard<std::mutex> stats_lock(stats_mu_);
  stats_.puts += 1;
  stats_.logical_bytes += data.size();
  stats_.physical_bytes += data.size();
  stats_.storage_time_s += result.storage_time_s;
  return result;
}

StatusOr<std::string> LocalDirEngine::Get(const std::string& key) {
  Hash256 latest;
  {
    std::shared_lock<std::shared_mutex> lock(mu_);
    auto it = keys_.find(key);
    if (it == keys_.end() || it->second.empty()) {
      return Status::NotFound("no object under key '" + key + "'");
    }
    latest = it->second.back();
  }
  return GetVersion(latest);
}

StatusOr<std::string> LocalDirEngine::GetVersion(const Hash256& id) {
  std::string data;
  {
    std::shared_lock<std::shared_mutex> lock(mu_);
    auto it = objects_.find(id);
    if (it == objects_.end()) {
      return Status::NotFound("no object version " + id.ShortHex());
    }
    data = it->second;
  }
  std::lock_guard<std::mutex> stats_lock(stats_mu_);
  stats_.gets += 1;
  stats_.storage_time_s += time_model_.ReadSeconds(data.size());
  return data;
}

bool LocalDirEngine::HasVersion(const Hash256& id) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return objects_.find(id) != objects_.end();
}

std::vector<Hash256> LocalDirEngine::Versions(const std::string& key) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  auto it = keys_.find(key);
  return it == keys_.end() ? std::vector<Hash256>{} : it->second;
}

std::vector<std::pair<std::string, Hash256>> LocalDirEngine::ListAllVersions()
    const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  std::vector<std::pair<std::string, Hash256>> out;
  for (const auto& [key, versions] : keys_) {
    for (const Hash256& id : versions) out.emplace_back(key, id);
  }
  return out;
}

StatusOr<uint64_t> LocalDirEngine::DeleteVersion(const Hash256& id) {
  uint64_t freed = 0;
  {
    std::unique_lock<std::shared_mutex> lock(mu_);
    auto it = objects_.find(id);
    if (it == objects_.end()) {
      return Status::NotFound("no object version " + id.ShortHex());
    }
    freed = it->second.size();
    objects_.erase(it);
    for (auto& [key, versions] : keys_) {
      (void)key;
      versions.erase(std::remove(versions.begin(), versions.end(), id),
                     versions.end());
    }
  }
  std::lock_guard<std::mutex> stats_lock(stats_mu_);
  stats_.physical_bytes -= freed;
  return freed;
}

}  // namespace mlcask::storage
