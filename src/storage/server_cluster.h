#ifndef MLCASK_STORAGE_SERVER_CLUSTER_H_
#define MLCASK_STORAGE_SERVER_CLUSTER_H_

#include <memory>
#include <string>
#include <sys/types.h>
#include <vector>

#include "common/status.h"
#include "storage/sharded_engine.h"
#include "storage/socket_transport.h"

namespace mlcask::storage {

/// The multi-process sibling of MakeLoopbackCluster: dials one socket
/// transport per endpoint spec (`unix:/path`, `tcp:host:port` — each
/// typically a running `mlcask_server` process), wraps each in a
/// RemoteStorageEngine proxy, and routes them all through one
/// ShardedStorageEngine. The returned cluster is call-for-call identical to
/// a loopback one — same wire format, same routing, same 2PC — except that
/// the round trips now cross real process/host boundaries and the async
/// fan-outs genuinely overlap their wire latency. Connection failures
/// surface as Unavailable naming the endpoint. `loopback:` specs are
/// rejected: they have no wire to dial (use MakeLoopbackCluster).
StatusOr<std::unique_ptr<ShardedStorageEngine>> ConnectCluster(
    const std::vector<std::string>& endpoints,
    ShardedStorageEngine::Options options = ShardedStorageEngine::Options(),
    const SocketTransport::Options& transport_options =
        SocketTransport::Options());

/// Spawns and owns N `mlcask_server` OS processes, one storage shard each,
/// listening on Unix-domain sockets under a fresh private temp directory.
/// This is the launcher behind the multi-process equivalence tests and the
/// fig11 bench's --socket mode: Start() returns once every server accepts
/// connections, endpoints() feeds straight into ConnectCluster, and the
/// destructor SIGTERMs + reaps every child (SIGKILL after a grace period),
/// so a failing test never leaks server processes.
class LocalServerCluster {
 public:
  struct Options {
    /// Path to the mlcask_server binary. Empty = $MLCASK_SERVER_BIN.
    std::string server_binary;
    std::string backend = "forkbase";  ///< forkbase | localdir
    /// Per-server wait for the socket to accept, in milliseconds.
    uint64_t startup_timeout_ms = 10000;
    /// Deterministic fault schedule passed to every server as --fault-spec
    /// (see FaultSpec::Parse for the grammar). Empty = no injection.
    std::string fault_spec;
    /// Give every shard a private --data-dir under the cluster temp dir, so
    /// acknowledged writes survive KillShard + RestartShard. Requires the
    /// forkbase backend. The chaos recovery drills run on this.
    bool durable = false;
    /// Admission-control caps forwarded to every server as
    /// --max-queued-jobs / --max-queued-bytes. 0 = keep the server's
    /// defaults. The overload saturation bench shrinks these so load
    /// shedding triggers at test-sized request volumes.
    size_t max_queued_jobs = 0;
    size_t max_queued_bytes = 0;
    /// Launch every server with --serve-merge: the process hosts the merge
    /// service front end (submit/poll/fetch/cancel sessions) alongside its
    /// storage shard, on the same endpoint. The saturation bench drives a
    /// cluster of these.
    bool serve_merge = false;
    /// With serve_merge: --merge-workers per server (0 = server default).
    size_t merge_workers = 0;
    /// With serve_merge: --tenant-weights spec, e.g. "gold=3,free=1"
    /// (empty = every tenant at the default weight).
    std::string tenant_weights;
    /// --stats-interval seconds for live STATS lines (0 = off).
    unsigned stats_interval_s = 0;
  };

  LocalServerCluster() = default;
  ~LocalServerCluster();
  LocalServerCluster(const LocalServerCluster&) = delete;
  LocalServerCluster& operator=(const LocalServerCluster&) = delete;

  /// Launches `shards` servers and waits until each endpoint accepts a
  /// connection. On failure every already-spawned child is torn down before
  /// the error returns. Call once per instance.
  Status Start(size_t shards, const Options& options);
  Status Start(size_t shards) { return Start(shards, Options()); }

  /// `unix:` endpoint specs, one per shard, in shard order.
  const std::vector<std::string>& endpoints() const { return endpoints_; }

  /// Spawns ONE more server process on the next shard index and waits until
  /// it accepts, returning its `unix:` endpoint spec (also appended to
  /// endpoints()). This is the process half of elastic scale-out: dial the
  /// returned endpoint and hand the proxy to
  /// ShardedStorageEngine::AddShard. On failure the cluster is unchanged.
  StatusOr<std::string> AddShard();

  /// Gracefully retires shard `i`: SIGTERM, reap (SIGKILL after the grace
  /// period), and unlink its socket so nothing can dial the slot again.
  /// The slot index stays allocated (shard numbering is stable) and its
  /// log survives until Stop(). Run the engine-level
  /// ShardedStorageEngine::RemoveShard FIRST — a drained shard takes any
  /// un-migrated keys with it. Reports a non-clean exit as Internal.
  Status DrainShard(size_t i);

  /// Hard-kills shard `i` (SIGKILL — no grace, no flush): the chaos drills'
  /// crash primitive. Recorded as deliberate, so Stop() does not report it
  /// as an anomaly. The endpoint and (durable) data dir stay in place for
  /// RestartShard.
  Status KillShard(size_t i);
  /// Respawns a dead shard on its original endpoint (and data dir when
  /// durable) and waits until it accepts again. The shard process is new;
  /// clients redial, the ENGINE state is whatever the data dir preserved.
  Status RestartShard(size_t i);

  /// SIGTERMs and reaps all children, removes the socket dir. Idempotent.
  /// The returned status is the post-mortem: Ok when every child exited
  /// cleanly (exit 0, our SIGTERM, or a deliberate KillShard); otherwise it
  /// names the first shard that CRASHED — non-zero exit code or an
  /// unexpected signal, decoded from the wait status — with its log tail
  /// inlined. The destructor calls this and discards the verdict.
  Status Stop();

 private:
  struct Shard {
    pid_t pid = -1;
    bool killed_deliberately = false;
  };

  std::string SocketPath(size_t s) const;
  std::string LogPath(size_t s) const;
  std::string DataDir(size_t s) const;
  /// Forks + execs one server process for shard `s` (fresh or restart).
  Status SpawnShard(size_t s);
  /// Polls shard `s`'s socket until it accepts, surfacing an early child
  /// death as its decoded exit instead of a timeout.
  Status WaitForAccept(size_t s);

  Options options_;
  std::string binary_;
  std::vector<Shard> shards_;
  std::vector<std::string> endpoints_;
  std::string dir_;
};

}  // namespace mlcask::storage

#endif  // MLCASK_STORAGE_SERVER_CLUSTER_H_
