#include "storage/deadline.h"

#include <algorithm>
#include <cctype>
#include <string>

#include "storage/wire_codec.h"

namespace mlcask::storage {

namespace {
thread_local DeadlineBudget* t_current_budget = nullptr;
}  // namespace

uint64_t DeadlineBudget::elapsed_ms() const {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::steady_clock::now() - start_)
          .count());
}

uint64_t DeadlineBudget::remaining_ms() const {
  uint64_t consumed = elapsed_ms();
  {
    std::lock_guard<std::mutex> lock(mu_);
    consumed = std::max(consumed, accounted_ms_);
  }
  return consumed >= total_ms_ ? 0 : total_ms_ - consumed;
}

void DeadlineBudget::Charge(uint64_t ms) {
  const uint64_t elapsed = elapsed_ms();
  std::lock_guard<std::mutex> lock(mu_);
  accounted_ms_ = std::max(accounted_ms_, elapsed) + ms;
}

DeadlineScope::DeadlineScope(DeadlineBudget* budget) : prev_(t_current_budget) {
  t_current_budget = budget;
}

DeadlineScope::~DeadlineScope() { t_current_budget = prev_; }

DeadlineBudget* DeadlineScope::Current() { return t_current_budget; }

uint64_t DeadlineScope::CurrentRemainingMs() {
  return t_current_budget == nullptr ? 0 : t_current_budget->remaining_ms();
}

void DeadlineScope::ChargeCurrent(uint64_t ms) {
  if (t_current_budget != nullptr) t_current_budget->Charge(ms);
}

Status DeadlineScope::CheckCurrent(const char* what) {
  if (t_current_budget != nullptr && t_current_budget->expired()) {
    return Status::DeadlineExceeded(std::string(what) +
                                    ": request deadline already spent");
  }
  return Status::Ok();
}

uint64_t PeekRequestDeadlineMs(std::string_view request) {
  if (wire::IsBinaryMessage(request)) {
    return wire::ExtractDeadline(request);
  }
  // JSON fallback: a flat scan for the "deadline_ms" member. The field is
  // emitted by our own encoders (never nested, never a string), so a
  // substring find plus a digit run is exact for well-formed requests and
  // harmlessly 0 for anything else.
  static constexpr std::string_view kField = "\"deadline_ms\":";
  const size_t at = request.find(kField);
  if (at == std::string_view::npos) return 0;
  size_t i = at + kField.size();
  while (i < request.size() &&
         std::isspace(static_cast<unsigned char>(request[i]))) {
    ++i;
  }
  uint64_t value = 0;
  bool any = false;
  while (i < request.size() && request[i] >= '0' && request[i] <= '9') {
    value = value * 10 + static_cast<uint64_t>(request[i] - '0');
    any = true;
    ++i;
  }
  return any ? value : 0;
}

}  // namespace mlcask::storage
