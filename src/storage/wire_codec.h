#ifndef MLCASK_STORAGE_WIRE_CODEC_H_
#define MLCASK_STORAGE_WIRE_CODEC_H_

#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/sha256.h"
#include "common/status.h"
#include "storage/chunk_store.h"
#include "storage/chunker.h"
#include "storage/storage_engine.h"

namespace mlcask::storage::wire {

// ---------------------------------------------------------------------------
// Binary wire codec (wire version 2).
//
// Every message is:
//
//   byte 0        magic 0xBC — never '{', so one byte distinguishes a binary
//                 message from a JSON one and a service can serve both
//   byte 1        request: opcode (Method); response: status code (0 = ok)
//   varint        meta section length
//   meta section  tagged fields, each: key varint ((tag << 2) | kind), then
//                   kind 0 varint   value varint
//                   kind 1 bytes    varint length + bytes
//                   kind 2 hash     32 raw bytes
//                   kind 3 f64      8 bytes little-endian IEEE double
//                 unknown tags are skipped (forward compatibility)
//   body          the REST of the message, verbatim — artifact bytes live
//                 here, so encoding a put is one memcpy and decoding returns
//                 a string_view into the receive buffer: no hex doubling, no
//                 re-parse, no copy on proxy hops
// ---------------------------------------------------------------------------

inline constexpr uint8_t kBinaryMagic = 0xBC;

/// True when `message` is a binary-codec message (vs JSON, which starts
/// with '{'). The empty string is neither and counts as JSON so the JSON
/// path produces its usual parse error.
inline bool IsBinaryMessage(std::string_view message) {
  return !message.empty() &&
         static_cast<uint8_t>(message[0]) == kBinaryMagic;
}

/// RPC opcodes, one per StorageEngine method. Values are frozen on the wire.
enum class Method : uint8_t {
  kPut = 1,
  kPutMany = 2,
  kGet = 3,
  kGetVersion = 4,
  kHasVersion = 5,
  kVersions = 6,
  kListAllVersions = 7,
  kDeleteVersion = 8,
  kStats = 9,
  kName = 10,
  kReadCost = 11,
  kMigrateBatch = 12,
};

// Varint / field primitives (exposed for tests and the chunk-end codec).
void PutVarint(std::string* out, uint64_t v);
bool GetVarint(std::string_view* in, uint64_t* v);

// --- meta-section primitives (shared with the service layer) ---------------
//
// Exported so higher-layer codecs (the merge service in src/service/) speak
// the exact same tagged-field format as the storage codec: same message
// shape, same field kinds, same skip-unknown-tags forward compatibility.

/// Field kinds inside a meta section; the low 2 bits of each field key.
enum class MetaKind : uint8_t {
  kVarint = 0,
  kBytes = 1,
  kHash = 2,
  kF64 = 3,
};

void PutMetaVarint(std::string* meta, uint32_t tag, uint64_t v);
void PutMetaBytes(std::string* meta, uint32_t tag, std::string_view bytes);
void PutMetaHash(std::string* meta, uint32_t tag, const Hash256& hash);
void PutMetaF64(std::string* meta, uint32_t tag, double v);

/// Assembles [magic, second byte, varint meta_len, meta, body]. The second
/// byte is the opcode on requests and the status code on responses.
std::string AssembleMessage(uint8_t second, std::string_view meta,
                            std::string_view body);

/// Splits a binary message after magic + second byte into meta and body
/// views. Views point INTO `message`.
Status DisassembleMessage(std::string_view message, uint8_t* second,
                          std::string_view* meta, std::string_view* body);

/// Pull-parser over one meta section. Unknown tags are skipped, so old
/// decoders tolerate fields a newer encoder added.
class MetaReader {
 public:
  explicit MetaReader(std::string_view meta) : rest_(meta) {}

  /// Advances to the next field. False at clean end; malformed() afterwards
  /// distinguishes truncation from exhaustion.
  bool Next();

  bool malformed() const { return malformed_; }
  uint32_t tag() const { return tag_; }
  MetaKind kind() const { return kind_; }
  uint64_t varint() const { return varint_; }
  std::string_view bytes() const { return bytes_; }
  const Hash256& hash() const { return hash_; }
  double f64() const { return f64_; }

 private:
  bool Malformed() {
    malformed_ = true;
    return false;
  }

  std::string_view rest_;
  bool malformed_ = false;
  uint32_t tag_ = 0;
  MetaKind kind_ = MetaKind::kVarint;
  uint64_t varint_ = 0;
  std::string_view bytes_;
  Hash256 hash_;
  double f64_ = 0;
};

/// Binary opcode space reserved for the service layer (src/service/):
/// requests whose second byte is >= kServiceOpcodeBase are NOT storage RPCs.
/// A combined endpoint routes them to the merge front end before
/// DispatchBinary ever sees them; DecodeRequest rejects them typed. Storage
/// Method values stay frozen at 1..12 below this line.
inline constexpr uint8_t kServiceOpcodeBase = 32;

/// Generic request meta tags honored across ALL binary request opcodes,
/// storage and service alike: ExtractReplayToken / ExtractDeadline scan any
/// binary request's meta for these, so every request codec must reserve
/// tag 5 for the idempotency token and tag 6 for the remaining deadline
/// budget (ms) — and use them for nothing else.
inline constexpr uint32_t kTagRequestReplayToken = 5;
inline constexpr uint32_t kTagRequestDeadline = 6;

// --- request encoding (client side) ---------------------------------------

/// Put: meta {key[, replay_token]}, body = artifact bytes verbatim (single
/// memcpy). A non-empty replay token marks the request idempotently
/// replayable: a server that has already answered this token returns the
/// recorded response instead of applying the mutation again (redial replay
/// after a lost response must apply once). Old servers skip the unknown tag.
std::string EncodePutRequest(std::string_view key, std::string_view data,
                             std::string_view replay_token = {});
/// PutMany: meta {count[, replay_token]}, body = count x [varint key_len,
/// key, varint data_len, data].
std::string EncodePutManyRequest(const std::vector<PutRequest>& batch,
                                 std::string_view replay_token = {});
/// Get / Versions: meta {key}.
std::string EncodeKeyRequest(Method method, std::string_view key);
/// GetVersion / HasVersion / DeleteVersion: meta {id[, replay_token]}.
std::string EncodeIdRequest(Method method, const Hash256& id,
                            std::string_view replay_token = {});
/// Stats / Name / ListAllVersions: empty meta.
std::string EncodePlainRequest(Method method);
/// ReadCost: meta {bytes}.
std::string EncodeReadCostRequest(uint64_t bytes);
/// MigrateBatch (shard rebalance): meta {count[, replay_token]}, body =
/// count x [varint key_len, key, varint version_count, version_count x
/// (32-byte id, varint data_len, data)]. Payload bytes ride the body
/// verbatim, so large batches stream as chunk frames like any other
/// oversized message. Replayable: MigrateBatch is idempotent, so a redial
/// replay answers from the ledger without re-applying.
std::string EncodeMigrateBatchRequest(
    const std::vector<MigrateKeyVersions>& batch,
    std::string_view replay_token = {});

/// A decoded request. Views point INTO the request message — zero copy; the
/// message must outlive the views.
struct Request {
  Method method = Method::kName;
  std::string_view key;
  Hash256 id;
  uint64_t bytes = 0;         ///< kReadCost operand.
  std::string_view body;      ///< kPut: artifact bytes, verbatim.
  std::string_view replay_token;  ///< Empty unless idempotently replayable.
  uint64_t deadline_ms = 0;   ///< Remaining budget stamped by the caller; 0 = none.
  std::vector<std::pair<std::string_view, std::string_view>> batch;
  /// kMigrateBatch: decoded entries; payload views point into the message.
  struct MigrateEntry {
    std::string_view key;
    std::vector<std::pair<Hash256, std::string_view>> versions;
  };
  std::vector<MigrateEntry> migrate;
};
StatusOr<Request> DecodeRequest(std::string_view message);

/// Cheap meta-only scan for the replay token of a binary request: empty when
/// absent or the message is not a well-formed binary request. The service's
/// dedup ledger consults this before the full dispatch.
std::string_view ExtractReplayToken(std::string_view message);

/// Cheap meta-only scan for the deadline stamp of a binary request: the
/// caller's remaining budget in ms, 0 when absent. Request encoders stamp it
/// from the ambient DeadlineScope; old peers skip the unknown tag, so a call
/// with no ambient budget encodes bit-identically to the previous wire rev.
uint64_t ExtractDeadline(std::string_view message);

// --- response encoding (server side) ---------------------------------------

std::string EncodeErrorResponse(const Status& status);
/// Get / GetVersion: body = data verbatim. Name: body = name bytes.
std::string EncodeDataResponse(std::string_view data);
std::string EncodePutResponse(const PutResult& result);
std::string EncodePutManyResponse(const std::vector<PutResult>& results);
std::string EncodeHasResponse(bool has);
std::string EncodeFreedResponse(uint64_t freed_bytes);
/// Versions: body = concatenated 32-byte ids.
std::string EncodeVersionsResponse(const std::vector<Hash256>& ids);
/// ListAllVersions: body = entries x [varint key_len, key, 32-byte id].
std::string EncodeEntriesResponse(
    const std::vector<std::pair<std::string, Hash256>>& entries);
std::string EncodeStatsResponse(const EngineStats& stats);
std::string EncodeCostResponse(double cost_s);
std::string EncodeMigrateResponse(const MigrateBatchResult& result);

// --- response decoding (client side) ---------------------------------------

/// Strips magic + status byte. Ok: *rest = the remainder (meta + body).
/// Error responses decode back into the exact remote Status.
Status DecodeResponseStatus(std::string_view message, std::string_view* rest);
/// Zero copy: the returned view points into `message`.
StatusOr<std::string_view> DecodeDataResponse(std::string_view message);
StatusOr<PutResult> DecodePutResponse(std::string_view message);
StatusOr<std::vector<PutResult>> DecodePutManyResponse(
    std::string_view message, size_t expected);
StatusOr<bool> DecodeHasResponse(std::string_view message);
StatusOr<uint64_t> DecodeFreedResponse(std::string_view message);
StatusOr<std::vector<Hash256>> DecodeVersionsResponse(
    std::string_view message);
StatusOr<std::vector<std::pair<std::string, Hash256>>> DecodeEntriesResponse(
    std::string_view message);
StatusOr<EngineStats> DecodeStatsResponse(std::string_view message);
StatusOr<double> DecodeCostResponse(std::string_view message);
StatusOr<MigrateBatchResult> DecodeMigrateResponse(std::string_view message);

/// Server-side dispatch of one binary request against an engine; the binary
/// twin of the JSON Dispatch in remote_engine.cc. Malformed requests produce
/// a binary error response, never a crash.
std::string DispatchBinary(StorageEngine* engine, std::string_view request);

// ---------------------------------------------------------------------------
// Chunk streaming (wire version 2): payloads at or above the threshold are
// cut by the content-defined wire chunker and sent as CHUNK frames sharing
// the correlation id, terminated by a CHUNK_END frame carrying the manifest.
// ---------------------------------------------------------------------------

/// Default payload size from which transports stream instead of sending one
/// monolithic frame.
inline constexpr size_t kDefaultChunkThreshold = 256u << 10;  // 256 KiB

/// The shared content-defined cutter for wire streaming: Gear CDC with
/// 16 KiB / 64 KiB / 256 KiB min/avg/max. Deterministic (fixed gear table),
/// so both sides of a connection — and different versions of the same
/// artifact — cut identical content into identical chunks, which is what
/// makes the receiving shard's chunk cache dedupe across versions.
const Chunker& WireChunker();

/// CHUNK_END payload: varint total_bytes, varint chunk_count, 32-byte
/// manifest (SHA-256 over the concatenated chunk addresses).
std::string EncodeChunkEnd(uint64_t total_bytes, uint64_t chunk_count,
                           const Hash256& manifest);
Status DecodeChunkEnd(std::string_view payload, uint64_t* total_bytes,
                      uint64_t* chunk_count, Hash256* manifest);

/// The address of one wire chunk (the unit the stream manifest hashes and
/// the receive-side cache dedupes on).
Hash256 WireChunkAddress(std::string_view chunk);

/// Receive-side content-addressable chunk cache: identical chunks arriving
/// on any connection — across values, versions, and clients — are hashed
/// once and counted as dedup hits. Capacity-capped FIFO so a long-lived
/// server retains recent chunks (cross-version dedup) without growing
/// without bound. Thread safe (the underlying ChunkStore's mutations are
/// externally serialized here, per its contract).
class WireChunkCache {
 public:
  explicit WireChunkCache(size_t max_bytes) : max_bytes_(max_bytes) {}

  /// Adds one chunk, returning its address. A repeat of a retained chunk is
  /// a dedup hit (refcounted, no second copy stored).
  Hash256 Add(std::string_view chunk);

  ChunkStoreStats stats() const;

 private:
  /// Accounting floor for the retained-reference cap: matches WireChunker's
  /// minimum cut size, so the FIFO holds at most max_bytes_/16KiB references
  /// even when dedup keeps physical bytes flat.
  static constexpr size_t kMinRetainedChunkBytes = 16u << 10;

  const size_t max_bytes_;
  mutable std::mutex mu_;
  ChunkStore store_;
  /// Retention order; every Add pushes one entry holding one reference.
  std::vector<Hash256> retained_;
  size_t evict_at_ = 0;  ///< Front of the FIFO within retained_.
};

/// Reassembles chunk streams, one per correlation id. OnChunk accumulates;
/// OnEnd verifies count/size/manifest and returns the whole value. Single
/// threaded per instance (each connection owns one). With a cache attached
/// every received chunk is also deposited there for cross-stream dedup.
class StreamAssembler {
 public:
  explicit StreamAssembler(size_t max_total_bytes,
                           WireChunkCache* cache = nullptr)
      : max_total_(max_total_bytes), cache_(cache) {}

  Status OnChunk(uint64_t id, std::string_view chunk);
  StatusOr<std::string> OnEnd(uint64_t id, std::string_view end_payload);

  size_t active_streams() const { return streams_.size(); }

 private:
  struct Stream {
    std::string data;
    Sha256 manifest;
    uint64_t chunks = 0;
  };

  const size_t max_total_;
  WireChunkCache* cache_;
  std::unordered_map<uint64_t, Stream> streams_;
};

}  // namespace mlcask::storage::wire

#endif  // MLCASK_STORAGE_WIRE_CODEC_H_
