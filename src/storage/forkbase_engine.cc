#include "storage/forkbase_engine.h"

#include <algorithm>
#include <mutex>
#include <shared_mutex>

namespace mlcask::storage {

ForkBaseEngine::ForkBaseEngine(StorageTimeModel time_model,
                               std::unique_ptr<Chunker> chunker)
    : time_model_(time_model), chunker_(std::move(chunker)) {
  if (chunker_ == nullptr) {
    chunker_ = std::make_unique<GearChunker>();
  }
}

StatusOr<PutResult> ForkBaseEngine::Put(const std::string& key,
                                        std::string_view data) {
  // Content-defined chunking and per-chunk hashing are pure functions of
  // the data — do the CPU-heavy work before taking the writer lock so
  // parallel workers only serialize on the map insertions.
  BlobPlan plan = PlanBlob(*chunker_, data);

  PutResult result;
  {
    std::unique_lock<std::shared_mutex> lock(mu_);
    BlobWriteInfo info = CommitBlob(&chunks_, plan, data);

    // The version id is derived from the blob root plus the key so two keys
    // holding identical bytes still have distinct version ids (their chunks
    // are shared regardless).
    Sha256 h;
    h.Update(key);
    h.Update(info.ref.root.bytes.data(), info.ref.root.bytes.size());
    // Distinguish repeated identical writes to the same key.
    uint64_t ordinal = keys_[key].size();
    h.Update(&ordinal, sizeof(ordinal));
    Hash256 version_id = h.Finish();

    blobs_[version_id] = info.ref;
    keys_[key].push_back(version_id);

    result.id = version_id;
    result.logical_bytes = data.size();
    result.new_physical_bytes = info.new_physical_bytes;
    result.deduplicated = info.new_physical_bytes == 0 && !data.empty();
    result.storage_time_s =
        time_model_.WriteSeconds(info.new_physical_bytes, data.size());
  }

  std::lock_guard<std::mutex> stats_lock(stats_mu_);
  stats_.puts += 1;
  stats_.logical_bytes += result.logical_bytes;
  stats_.physical_bytes += result.new_physical_bytes;
  stats_.storage_time_s += result.storage_time_s;
  return result;
}

StatusOr<std::string> ForkBaseEngine::Get(const std::string& key) {
  Hash256 latest;
  {
    std::shared_lock<std::shared_mutex> lock(mu_);
    auto it = keys_.find(key);
    if (it == keys_.end() || it->second.empty()) {
      return Status::NotFound("no object under key '" + key + "'");
    }
    latest = it->second.back();
  }
  return GetVersion(latest);
}

StatusOr<std::string> ForkBaseEngine::GetVersion(const Hash256& id) {
  std::string data;
  {
    // Shared is enough: chunk-map mutations happen only under the writer
    // lock, and the chunk store's read counters are internally guarded.
    std::shared_lock<std::shared_mutex> lock(mu_);
    auto it = blobs_.find(id);
    if (it == blobs_.end()) {
      return Status::NotFound("no object version " + id.ShortHex());
    }
    MLCASK_ASSIGN_OR_RETURN(data, ReadBlob(chunks_, it->second));
  }
  std::lock_guard<std::mutex> stats_lock(stats_mu_);
  stats_.gets += 1;
  stats_.storage_time_s += time_model_.ReadSeconds(data.size());
  return data;
}

bool ForkBaseEngine::HasVersion(const Hash256& id) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return blobs_.find(id) != blobs_.end();
}

std::vector<Hash256> ForkBaseEngine::Versions(const std::string& key) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  auto it = keys_.find(key);
  return it == keys_.end() ? std::vector<Hash256>{} : it->second;
}

std::vector<std::pair<std::string, Hash256>> ForkBaseEngine::ListAllVersions()
    const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  std::vector<std::pair<std::string, Hash256>> out;
  for (const auto& [key, versions] : keys_) {
    for (const Hash256& id : versions) out.emplace_back(key, id);
  }
  return out;
}

Status ForkBaseEngine::RestoreVersion(const std::string& key, const Hash256& id,
                                      const BlobRef& ref) {
  std::unique_lock<std::shared_mutex> lock(mu_);
  if (blobs_.count(id) != 0) {
    return Status::AlreadyExists("version " + id.ShortHex() +
                                 " already present");
  }
  blobs_[id] = ref;
  keys_[key].push_back(id);
  return Status::Ok();
}

StatusOr<uint64_t> ForkBaseEngine::DeleteVersion(const Hash256& id) {
  uint64_t freed = 0;
  {
    std::unique_lock<std::shared_mutex> lock(mu_);
    auto it = blobs_.find(id);
    if (it == blobs_.end()) {
      return Status::NotFound("no object version " + id.ShortHex());
    }
    uint64_t physical_before = chunks_.stats().physical_bytes;
    MLCASK_RETURN_IF_ERROR(ReleaseBlob(&chunks_, it->second));
    freed = physical_before - chunks_.stats().physical_bytes;
    blobs_.erase(it);
    for (auto& [key, versions] : keys_) {
      (void)key;
      versions.erase(std::remove(versions.begin(), versions.end(), id),
                     versions.end());
    }
  }
  std::lock_guard<std::mutex> stats_lock(stats_mu_);
  stats_.physical_bytes -= freed;
  return freed;
}

}  // namespace mlcask::storage
