#ifndef MLCASK_STORAGE_CHUNK_H_
#define MLCASK_STORAGE_CHUNK_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "common/sha256.h"

namespace mlcask::storage {

/// Kind tag baked into each chunk's hash so a data chunk and an index chunk
/// with identical payloads get distinct addresses (same trick as Git object
/// types / ForkBase chunk types).
enum class ChunkType : uint8_t {
  kData = 0,   ///< Raw bytes of a blob segment.
  kIndex = 1,  ///< Concatenated child entries of a blob (Merkle list).
  kMeta = 2,   ///< Metafiles, commit objects, and other structured records.
};

const char* ChunkTypeName(ChunkType t);

/// An immutable content-addressed unit of storage.
class Chunk {
 public:
  Chunk(ChunkType type, std::string data)
      : type_(type), data_(std::move(data)), hash_(ComputeHash(type_, data_)) {}

  ChunkType type() const { return type_; }
  const std::string& data() const { return data_; }
  const Hash256& hash() const { return hash_; }
  size_t size() const { return data_.size(); }

  /// The address of a chunk is SHA-256 over a one-byte type tag followed by
  /// the payload.
  static Hash256 ComputeHash(ChunkType type, std::string_view data);

 private:
  ChunkType type_;
  std::string data_;
  Hash256 hash_;
};

}  // namespace mlcask::storage

#endif  // MLCASK_STORAGE_CHUNK_H_
