#include "storage/server_cluster.h"

#include "storage/remote_engine.h"

#include <fcntl.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/stat.h>
#include <sys/un.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <thread>

namespace mlcask::storage {

StatusOr<std::unique_ptr<ShardedStorageEngine>> ConnectCluster(
    const std::vector<std::string>& endpoints,
    ShardedStorageEngine::Options options,
    const SocketTransport::Options& transport_options) {
  if (endpoints.empty()) {
    return Status::InvalidArgument(
        "ConnectCluster needs at least one endpoint");
  }
  std::vector<std::unique_ptr<StorageEngine>> proxies;
  proxies.reserve(endpoints.size());
  for (const std::string& spec : endpoints) {
    MLCASK_ASSIGN_OR_RETURN(Endpoint ep, Endpoint::Parse(spec));
    if (ep.kind == Endpoint::Kind::kLoopback) {
      return Status::InvalidArgument(
          "loopback: endpoints have no wire to dial; use MakeLoopbackCluster");
    }
    MLCASK_ASSIGN_OR_RETURN(std::unique_ptr<SocketTransport> transport,
                            SocketTransport::Connect(ep, transport_options));
    proxies.push_back(
        std::make_unique<RemoteStorageEngine>(std::move(transport)));
  }
  return std::make_unique<ShardedStorageEngine>(std::move(proxies),
                                                std::move(options));
}

namespace {

/// One probe: can we complete a connect() on the Unix socket right now?
bool CanConnect(const std::string& path) {
  int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) return false;
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
  const bool ok =
      ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) == 0;
  ::close(fd);
  return ok;
}

/// The last ~2 KiB of a child's log, inlined into launch-failure statuses so
/// the reason (bad flag, bind failure, missing lib) is IN the error a test
/// prints — not behind a tmpdir path that Stop() is about to erase.
std::string LogTail(const std::string& path) {
  int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) return "";
  constexpr off_t kTailBytes = 2048;
  off_t size = ::lseek(fd, 0, SEEK_END);
  if (size < 0) {
    ::close(fd);
    return "";
  }
  const off_t start = size > kTailBytes ? size - kTailBytes : 0;
  std::string tail(static_cast<size_t>(size - start), '\0');
  ssize_t n = ::pread(fd, tail.data(), tail.size(), start);
  ::close(fd);
  if (n <= 0) return "";
  tail.resize(static_cast<size_t>(n));
  while (!tail.empty() && tail.back() == '\n') tail.pop_back();
  if (tail.empty()) return "";
  return (start > 0 ? "; log tail:\n...": "; log tail:\n") + tail;
}

}  // namespace

LocalServerCluster::~LocalServerCluster() { Stop(); }

Status LocalServerCluster::Start(size_t shards, const Options& options) {
  if (shards == 0) {
    return Status::InvalidArgument("cluster needs at least one shard");
  }
  if (!pids_.empty() || !dir_.empty()) {
    return Status::FailedPrecondition("cluster already started");
  }
  std::string binary = options.server_binary;
  if (binary.empty()) {
    const char* env = std::getenv("MLCASK_SERVER_BIN");
    if (env != nullptr) binary = env;
  }
  if (binary.empty() || ::access(binary.c_str(), X_OK) != 0) {
    return Status::FailedPrecondition(
        "mlcask_server binary not found (set Options::server_binary or "
        "$MLCASK_SERVER_BIN); looked at '" +
        binary + "'");
  }

  char dir_template[] = "/tmp/mlcask-cluster-XXXXXX";
  if (::mkdtemp(dir_template) == nullptr) {
    return Status::Internal(std::string("mkdtemp failed: ") +
                            std::strerror(errno));
  }
  dir_ = dir_template;

  for (size_t s = 0; s < shards; ++s) {
    const std::string sock = dir_ + "/shard" + std::to_string(s) + ".sock";
    const std::string spec = "unix:" + sock;
    const std::string log = dir_ + "/shard" + std::to_string(s) + ".log";
    pid_t pid = ::fork();
    if (pid < 0) {
      Status st =
          Status::Internal(std::string("fork failed: ") + std::strerror(errno));
      Stop();
      return st;
    }
    if (pid == 0) {
      // Child: own stdout/stderr go to a per-shard log (test output stays
      // clean, the log stays available for post-mortems), then exec.
      int log_fd = ::open(log.c_str(), O_CREAT | O_WRONLY | O_TRUNC, 0644);
      if (log_fd >= 0) {
        ::dup2(log_fd, STDOUT_FILENO);
        ::dup2(log_fd, STDERR_FILENO);
        ::close(log_fd);
      }
      ::execl(binary.c_str(), binary.c_str(), "--endpoint", spec.c_str(),
              "--backend", options.backend.c_str(),
              static_cast<char*>(nullptr));
      std::_Exit(127);  // exec failed
    }
    pids_.push_back(pid);
    endpoints_.push_back(spec);
  }

  // Wait until every shard accepts. A child dying early (exec failure, bind
  // error) is surfaced as its exit, not as a timeout. The timeout is PER
  // SERVER (as Options documents): each shard's clock starts when we begin
  // waiting on it, so a slow machine bringing up many shards doesn't starve
  // the last ones of their allowance.
  for (size_t s = 0; s < shards; ++s) {
    const std::string sock = dir_ + "/shard" + std::to_string(s) + ".sock";
    const std::string log = dir_ + "/shard" + std::to_string(s) + ".log";
    const auto deadline =
        std::chrono::steady_clock::now() +
        std::chrono::milliseconds(options.startup_timeout_ms);
    // Exponential backoff between probes: a healthy server accepts within
    // a millisecond or two, so start there and only back off (doubling,
    // capped) for the slow cases — instead of taxing EVERY launch the old
    // fixed 10ms poll. Read the log tail BEFORE Stop(): it erases the dir.
    uint64_t backoff_ms = 1;
    for (;;) {
      if (CanConnect(sock)) break;
      int wstatus = 0;
      if (::waitpid(pids_[s], &wstatus, WNOHANG) == pids_[s]) {
        pids_[s] = -1;  // already reaped
        Status st = Status::Unavailable(
            "mlcask_server for shard " + std::to_string(s) +
            " exited during startup (status " + std::to_string(wstatus) + ")" +
            LogTail(log));
        Stop();
        return st;
      }
      if (std::chrono::steady_clock::now() >= deadline) {
        Status st = Status::DeadlineExceeded(
            "shard " + std::to_string(s) + " did not accept on " + sock +
            " within " + std::to_string(options.startup_timeout_ms) + "ms" +
            LogTail(log));
        Stop();
        return st;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(backoff_ms));
      backoff_ms = std::min<uint64_t>(backoff_ms * 2, 50);
    }
  }
  return Status::Ok();
}

void LocalServerCluster::Stop() {
  for (pid_t pid : pids_) {
    if (pid > 0) ::kill(pid, SIGTERM);
  }
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  for (pid_t& pid : pids_) {
    while (pid > 0) {
      int wstatus = 0;
      pid_t reaped = ::waitpid(pid, &wstatus, WNOHANG);
      if (reaped == pid || (reaped < 0 && errno == ECHILD)) {
        pid = -1;
        break;
      }
      if (std::chrono::steady_clock::now() >= deadline) {
        ::kill(pid, SIGKILL);
        ::waitpid(pid, &wstatus, 0);
        pid = -1;
        break;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
  }
  pids_.clear();
  if (!dir_.empty()) {
    for (const std::string& spec : endpoints_) {
      // "unix:" prefix is 5 bytes.
      ::unlink(spec.substr(5).c_str());
    }
    // Logs are intentionally left behind only if the rmdir fails (i.e. a
    // post-mortem is likely wanted); normal teardown removes everything.
    for (size_t s = 0; s < endpoints_.size(); ++s) {
      ::unlink((dir_ + "/shard" + std::to_string(s) + ".log").c_str());
    }
    ::rmdir(dir_.c_str());
    dir_.clear();
  }
  endpoints_.clear();
}

}  // namespace mlcask::storage
