#include "storage/server_cluster.h"

#include "storage/remote_engine.h"

#include <fcntl.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/stat.h>
#include <sys/un.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <thread>
#include <vector>

namespace mlcask::storage {

StatusOr<std::unique_ptr<ShardedStorageEngine>> ConnectCluster(
    const std::vector<std::string>& endpoints,
    ShardedStorageEngine::Options options,
    const SocketTransport::Options& transport_options) {
  if (endpoints.empty()) {
    return Status::InvalidArgument(
        "ConnectCluster needs at least one endpoint");
  }
  std::vector<std::unique_ptr<StorageEngine>> proxies;
  proxies.reserve(endpoints.size());
  for (const std::string& spec : endpoints) {
    MLCASK_ASSIGN_OR_RETURN(Endpoint ep, Endpoint::Parse(spec));
    if (ep.kind == Endpoint::Kind::kLoopback) {
      return Status::InvalidArgument(
          "loopback: endpoints have no wire to dial; use MakeLoopbackCluster");
    }
    MLCASK_ASSIGN_OR_RETURN(std::unique_ptr<SocketTransport> transport,
                            SocketTransport::Connect(ep, transport_options));
    proxies.push_back(
        std::make_unique<RemoteStorageEngine>(std::move(transport)));
  }
  return std::make_unique<ShardedStorageEngine>(std::move(proxies),
                                                std::move(options));
}

namespace {

/// One probe: can we complete a connect() on the Unix socket right now?
bool CanConnect(const std::string& path) {
  int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) return false;
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
  const bool ok =
      ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) == 0;
  ::close(fd);
  return ok;
}

/// The last ~2 KiB of a child's log, inlined into launch-failure statuses so
/// the reason (bad flag, bind failure, missing lib) is IN the error a test
/// prints — not behind a tmpdir path that Stop() is about to erase.
std::string LogTail(const std::string& path) {
  int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) return "";
  constexpr off_t kTailBytes = 2048;
  off_t size = ::lseek(fd, 0, SEEK_END);
  if (size < 0) {
    ::close(fd);
    return "";
  }
  const off_t start = size > kTailBytes ? size - kTailBytes : 0;
  std::string tail(static_cast<size_t>(size - start), '\0');
  ssize_t n = ::pread(fd, tail.data(), tail.size(), start);
  ::close(fd);
  if (n <= 0) return "";
  tail.resize(static_cast<size_t>(n));
  while (!tail.empty() && tail.back() == '\n') tail.pop_back();
  if (tail.empty()) return "";
  return (start > 0 ? "; log tail:\n...": "; log tail:\n") + tail;
}

/// Decodes one reaped child's wait status into a human verdict. Empty
/// string = clean exit (exit code 0 or our own SIGTERM).
std::string DescribeExit(int wstatus) {
  if (WIFEXITED(wstatus)) {
    const int code = WEXITSTATUS(wstatus);
    if (code == 0) return "";
    return "exited with status " + std::to_string(code);
  }
  if (WIFSIGNALED(wstatus)) {
    const int sig = WTERMSIG(wstatus);
    if (sig == SIGTERM) return "";  // our own shutdown signal
    const char* name = ::strsignal(sig);
    return "killed by signal " + std::to_string(sig) +
           (name != nullptr ? std::string(" (") + name + ")" : "");
  }
  return "ended with unrecognized wait status " + std::to_string(wstatus);
}

}  // namespace

LocalServerCluster::~LocalServerCluster() { (void)Stop(); }

std::string LocalServerCluster::SocketPath(size_t s) const {
  return dir_ + "/shard" + std::to_string(s) + ".sock";
}

std::string LocalServerCluster::LogPath(size_t s) const {
  return dir_ + "/shard" + std::to_string(s) + ".log";
}

std::string LocalServerCluster::DataDir(size_t s) const {
  return dir_ + "/shard" + std::to_string(s) + ".data";
}

Status LocalServerCluster::SpawnShard(size_t s) {
  const std::string sock = SocketPath(s);
  const std::string spec = "unix:" + sock;
  const std::string log = LogPath(s);
  // A killed shard leaves its socket file behind; the replacement must be
  // able to bind the same path.
  ::unlink(sock.c_str());

  std::vector<std::string> args = {binary_,          "--endpoint", spec,
                                   "--backend",      options_.backend};
  if (!options_.fault_spec.empty()) {
    args.push_back("--fault-spec");
    args.push_back(options_.fault_spec);
  }
  if (options_.durable) {
    args.push_back("--data-dir");
    args.push_back(DataDir(s));
  }
  if (options_.max_queued_jobs > 0) {
    args.push_back("--max-queued-jobs=" +
                   std::to_string(options_.max_queued_jobs));
  }
  if (options_.max_queued_bytes > 0) {
    args.push_back("--max-queued-bytes=" +
                   std::to_string(options_.max_queued_bytes));
  }
  if (options_.serve_merge) {
    args.push_back("--serve-merge");
    if (options_.merge_workers > 0) {
      args.push_back("--merge-workers=" +
                     std::to_string(options_.merge_workers));
    }
    if (!options_.tenant_weights.empty()) {
      args.push_back("--tenant-weights=" + options_.tenant_weights);
    }
  }
  if (options_.stats_interval_s > 0) {
    args.push_back("--stats-interval=" +
                   std::to_string(options_.stats_interval_s));
  }

  pid_t pid = ::fork();
  if (pid < 0) {
    return Status::Internal(std::string("fork failed: ") +
                            std::strerror(errno));
  }
  if (pid == 0) {
    // Child: own stdout/stderr go to a per-shard log (test output stays
    // clean, the log stays available for post-mortems), then exec. Appending
    // keeps the pre-crash log across a restart — the interesting part.
    int log_fd = ::open(log.c_str(), O_CREAT | O_WRONLY | O_APPEND, 0644);
    if (log_fd >= 0) {
      ::dup2(log_fd, STDOUT_FILENO);
      ::dup2(log_fd, STDERR_FILENO);
      ::close(log_fd);
    }
    std::vector<char*> argv;
    argv.reserve(args.size() + 1);
    for (std::string& arg : args) argv.push_back(arg.data());
    argv.push_back(nullptr);
    ::execv(binary_.c_str(), argv.data());
    std::_Exit(127);  // exec failed
  }
  shards_[s].pid = pid;
  shards_[s].killed_deliberately = false;
  return Status::Ok();
}

Status LocalServerCluster::WaitForAccept(size_t s) {
  const std::string sock = SocketPath(s);
  const std::string log = LogPath(s);
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(options_.startup_timeout_ms);
  // Exponential backoff between probes: a healthy server accepts within
  // a millisecond or two, so start there and only back off (doubling,
  // capped) for the slow cases — instead of taxing EVERY launch a
  // fixed 10ms poll. Read the log tail BEFORE any teardown erases the dir.
  uint64_t backoff_ms = 1;
  for (;;) {
    if (CanConnect(sock)) return Status::Ok();
    int wstatus = 0;
    if (::waitpid(shards_[s].pid, &wstatus, WNOHANG) == shards_[s].pid) {
      shards_[s].pid = -1;  // already reaped
      std::string verdict = DescribeExit(wstatus);
      if (verdict.empty()) verdict = "exited";
      return Status::Unavailable("mlcask_server for shard " +
                                 std::to_string(s) + " " + verdict +
                                 " during startup" + LogTail(log));
    }
    if (std::chrono::steady_clock::now() >= deadline) {
      return Status::DeadlineExceeded(
          "shard " + std::to_string(s) + " did not accept on " + sock +
          " within " + std::to_string(options_.startup_timeout_ms) + "ms" +
          LogTail(log));
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(backoff_ms));
    backoff_ms = std::min<uint64_t>(backoff_ms * 2, 50);
  }
}

Status LocalServerCluster::Start(size_t shards, const Options& options) {
  if (shards == 0) {
    return Status::InvalidArgument("cluster needs at least one shard");
  }
  if (!shards_.empty() || !dir_.empty()) {
    return Status::FailedPrecondition("cluster already started");
  }
  if (options.durable && options.backend != "forkbase") {
    return Status::InvalidArgument(
        "durable clusters require the forkbase backend");
  }
  options_ = options;
  binary_ = options.server_binary;
  if (binary_.empty()) {
    const char* env = std::getenv("MLCASK_SERVER_BIN");
    if (env != nullptr) binary_ = env;
  }
  if (binary_.empty() || ::access(binary_.c_str(), X_OK) != 0) {
    return Status::FailedPrecondition(
        "mlcask_server binary not found (set Options::server_binary or "
        "$MLCASK_SERVER_BIN); looked at '" +
        binary_ + "'");
  }

  char dir_template[] = "/tmp/mlcask-cluster-XXXXXX";
  if (::mkdtemp(dir_template) == nullptr) {
    return Status::Internal(std::string("mkdtemp failed: ") +
                            std::strerror(errno));
  }
  dir_ = dir_template;

  shards_.resize(shards);
  for (size_t s = 0; s < shards; ++s) {
    Status spawned = SpawnShard(s);
    if (!spawned.ok()) {
      (void)Stop();
      return spawned;
    }
    endpoints_.push_back("unix:" + SocketPath(s));
  }

  // Wait until every shard accepts. A child dying early (exec failure, bind
  // error) is surfaced as its exit, not as a timeout. The timeout is PER
  // SERVER (as Options documents): each shard's clock starts when we begin
  // waiting on it, so a slow machine bringing up many shards doesn't starve
  // the last ones of their allowance.
  for (size_t s = 0; s < shards; ++s) {
    Status accepting = WaitForAccept(s);
    if (!accepting.ok()) {
      (void)Stop();
      return accepting;
    }
  }
  return Status::Ok();
}

StatusOr<std::string> LocalServerCluster::AddShard() {
  if (dir_.empty()) {
    return Status::FailedPrecondition("cluster not started");
  }
  const size_t s = shards_.size();
  shards_.push_back(Shard{});
  Status spawned = SpawnShard(s);
  if (!spawned.ok()) {
    shards_.pop_back();
    return spawned;
  }
  Status accepting = WaitForAccept(s);
  if (!accepting.ok()) {
    // Tear the half-born child down; the cluster is exactly as before.
    if (shards_[s].pid > 0) {
      ::kill(shards_[s].pid, SIGKILL);
      int wstatus = 0;
      ::waitpid(shards_[s].pid, &wstatus, 0);
    }
    shards_.pop_back();
    return accepting;
  }
  endpoints_.push_back("unix:" + SocketPath(s));
  return endpoints_.back();
}

Status LocalServerCluster::DrainShard(size_t i) {
  if (i >= shards_.size()) {
    return Status::InvalidArgument("no shard " + std::to_string(i));
  }
  Shard& shard = shards_[i];
  if (shard.pid <= 0) {
    return Status::FailedPrecondition("shard " + std::to_string(i) +
                                      " is not running");
  }
  ::kill(shard.pid, SIGTERM);
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  Status verdict = Status::Ok();
  for (;;) {
    int wstatus = 0;
    pid_t reaped = ::waitpid(shard.pid, &wstatus, WNOHANG);
    if (reaped == shard.pid) {
      const std::string how = DescribeExit(wstatus);
      if (!how.empty()) {
        verdict = Status::Internal("drained shard " + std::to_string(i) +
                                   " " + how + LogTail(LogPath(i)));
      }
      break;
    }
    if (reaped < 0 && errno == ECHILD) break;
    if (std::chrono::steady_clock::now() >= deadline) {
      ::kill(shard.pid, SIGKILL);
      ::waitpid(shard.pid, &wstatus, 0);
      verdict = Status::Internal(
          "shard " + std::to_string(i) +
          " did not exit within the SIGTERM grace period (hung; SIGKILLed)" +
          LogTail(LogPath(i)));
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  shard.pid = -1;
  shard.killed_deliberately = true;  // a drain is never an anomaly
  // Nothing may dial the retired slot again; the log stays for post-mortems
  // until Stop() removes the whole root.
  ::unlink(SocketPath(i).c_str());
  return verdict;
}

Status LocalServerCluster::KillShard(size_t i) {
  if (i >= shards_.size()) {
    return Status::InvalidArgument("no shard " + std::to_string(i));
  }
  if (shards_[i].pid <= 0) {
    return Status::FailedPrecondition("shard " + std::to_string(i) +
                                      " is not running");
  }
  shards_[i].killed_deliberately = true;
  ::kill(shards_[i].pid, SIGKILL);
  int wstatus = 0;
  ::waitpid(shards_[i].pid, &wstatus, 0);
  shards_[i].pid = -1;
  return Status::Ok();
}

Status LocalServerCluster::RestartShard(size_t i) {
  if (i >= shards_.size()) {
    return Status::InvalidArgument("no shard " + std::to_string(i));
  }
  if (shards_[i].pid > 0) {
    // Reap a shard that died on its own (e.g. an injected kill_after) so
    // the restart does not leak a zombie; a still-live shard is an error.
    int wstatus = 0;
    if (::waitpid(shards_[i].pid, &wstatus, WNOHANG) == shards_[i].pid) {
      shards_[i].pid = -1;
      shards_[i].killed_deliberately = true;  // restart absolves the crash
    } else {
      return Status::FailedPrecondition(
          "shard " + std::to_string(i) +
          " is still running; KillShard it first");
    }
  }
  MLCASK_RETURN_IF_ERROR(SpawnShard(i));
  return WaitForAccept(i);
}

Status LocalServerCluster::Stop() {
  Status verdict = Status::Ok();
  for (const Shard& shard : shards_) {
    if (shard.pid > 0) ::kill(shard.pid, SIGTERM);
  }
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  for (size_t s = 0; s < shards_.size(); ++s) {
    Shard& shard = shards_[s];
    while (shard.pid > 0) {
      int wstatus = 0;
      pid_t reaped = ::waitpid(shard.pid, &wstatus, WNOHANG);
      if (reaped == shard.pid) {
        // The post-mortem: a child that exited non-zero or died on a
        // signal we did not send CRASHED, and the first crash becomes
        // Stop()'s verdict (with the log tail, read before the cleanup
        // below erases it).
        const std::string how = DescribeExit(wstatus);
        if (!how.empty() && !shard.killed_deliberately && verdict.ok()) {
          verdict = Status::Internal("shard " + std::to_string(s) + " " +
                                     how + LogTail(LogPath(s)));
        }
        shard.pid = -1;
        break;
      }
      if (reaped < 0 && errno == ECHILD) {
        shard.pid = -1;
        break;
      }
      if (std::chrono::steady_clock::now() >= deadline) {
        // A shard ignoring SIGTERM past the grace period is a hang — the
        // exact failure mode the chaos suite exists to catch.
        ::kill(shard.pid, SIGKILL);
        ::waitpid(shard.pid, &wstatus, 0);
        if (verdict.ok()) {
          verdict = Status::Internal(
              "shard " + std::to_string(s) +
              " did not exit within the SIGTERM grace period (hung; "
              "SIGKILLed)" +
              LogTail(LogPath(s)));
        }
        shard.pid = -1;
        break;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
  }
  shards_.clear();
  if (!dir_.empty()) {
    // The whole temp root goes, not an enumerated file list: sockets, logs
    // and data dirs, but also anything a crashed child left behind (core
    // files, half-written artifacts). The old per-file unlink + ::rmdir
    // pair leaked the root forever on any unexpected file — rmdir fails
    // silently on a non-empty directory.
    std::error_code ec;
    std::filesystem::remove_all(dir_, ec);
    if (ec && verdict.ok()) {
      verdict = Status::Internal("cannot remove cluster temp dir '" + dir_ +
                                 "': " + ec.message());
    }
    dir_.clear();
  }
  endpoints_.clear();
  return verdict;
}

}  // namespace mlcask::storage
