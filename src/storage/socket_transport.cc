#include "storage/socket_transport.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <sys/uio.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstring>
#include <utility>

namespace mlcask::storage {

namespace {

Status ErrnoStatus(const std::string& what, int err) {
  return Status::Unavailable(what + ": " + std::strerror(err));
}

/// Scatter-gather write of every iovec, restarting on EINTR and advancing
/// through partial writes. MSG_NOSIGNAL: a dead peer must surface as EPIPE,
/// not kill the process with SIGPIPE. Mutates `iov` (offsets advance).
Status SendParts(int fd, std::vector<iovec>* iov) {
  // Linux caps one sendmsg at IOV_MAX (1024) entries; batch in slices.
  constexpr size_t kMaxIov = 1024;
  size_t idx = 0;
  while (idx < iov->size()) {
    msghdr msg{};
    msg.msg_iov = iov->data() + idx;
    msg.msg_iovlen = std::min(iov->size() - idx, kMaxIov);
    ssize_t n = ::sendmsg(fd, &msg, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return ErrnoStatus("socket write failed", errno);
    }
    size_t left = static_cast<size_t>(n);
    while (idx < iov->size() && left >= (*iov)[idx].iov_len) {
      left -= (*iov)[idx].iov_len;
      ++idx;
    }
    if (idx < iov->size() && left > 0) {
      (*iov)[idx].iov_base = static_cast<char*>((*iov)[idx].iov_base) + left;
      (*iov)[idx].iov_len -= left;
    }
  }
  return Status::Ok();
}

iovec MakeIov(const char* data, size_t len) {
  iovec iov;
  iov.iov_base = const_cast<char*>(data);
  iov.iov_len = len;
  return iov;
}

/// Builds a connected or bound socket for `ep`. For servers, `bind_side`
/// binds+listens; for clients it connects.
StatusOr<int> OpenSocket(const Endpoint& ep, bool bind_side) {
  if (ep.kind == Endpoint::Kind::kLoopback) {
    return Status::InvalidArgument(
        "loopback: endpoints have no wire; use LoopbackTransport");
  }
  if (ep.kind == Endpoint::Kind::kUnix) {
    int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) return ErrnoStatus("socket(AF_UNIX)", errno);
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    std::strncpy(addr.sun_path, ep.path.c_str(), sizeof(addr.sun_path) - 1);
    if (bind_side) {
      ::unlink(ep.path.c_str());  // a stale file must not wedge restarts
      if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0 ||
          ::listen(fd, 64) != 0) {
        Status st = ErrnoStatus("bind/listen " + ep.ToString(), errno);
        ::close(fd);
        return st;
      }
    } else if (::connect(fd, reinterpret_cast<sockaddr*>(&addr),
                         sizeof(addr)) != 0) {
      Status st = ErrnoStatus("connect " + ep.ToString(), errno);
      ::close(fd);
      return st;
    }
    return fd;
  }
  // TCP: resolve host (empty host = 127.0.0.1 for clients, any for servers).
  addrinfo hints{};
  hints.ai_family = AF_INET;
  hints.ai_socktype = SOCK_STREAM;
  if (bind_side) hints.ai_flags = AI_PASSIVE;
  const std::string host =
      !ep.host.empty() ? ep.host : (bind_side ? std::string() : "127.0.0.1");
  const std::string port = std::to_string(ep.port);
  addrinfo* res = nullptr;
  int rc = ::getaddrinfo(host.empty() ? nullptr : host.c_str(), port.c_str(),
                         &hints, &res);
  if (rc != 0) {
    return Status::Unavailable("resolve " + ep.ToString() + ": " +
                               ::gai_strerror(rc));
  }
  Status last = Status::Unavailable("no address for " + ep.ToString());
  for (addrinfo* ai = res; ai != nullptr; ai = ai->ai_next) {
    int fd = ::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
    if (fd < 0) {
      last = ErrnoStatus("socket(AF_INET)", errno);
      continue;
    }
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    if (bind_side) {
      ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
      if (::bind(fd, ai->ai_addr, ai->ai_addrlen) == 0 &&
          ::listen(fd, 64) == 0) {
        ::freeaddrinfo(res);
        return fd;
      }
    } else if (::connect(fd, ai->ai_addr, ai->ai_addrlen) == 0) {
      ::freeaddrinfo(res);
      return fd;
    }
    last = ErrnoStatus((bind_side ? "bind/listen " : "connect ") +
                           ep.ToString(),
                       errno);
    ::close(fd);
  }
  ::freeaddrinfo(res);
  return last;
}

Status SetNonBlocking(int fd) {
  int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    return ErrnoStatus("fcntl(O_NONBLOCK)", errno);
  }
  return Status::Ok();
}

}  // namespace

// --------------------------------------------------------------- client ---

StatusOr<std::unique_ptr<SocketTransport>> SocketTransport::Connect(
    const Endpoint& endpoint, Options options) {
  MLCASK_ASSIGN_OR_RETURN(int fd, OpenSocket(endpoint, /*bind_side=*/false));
  return std::unique_ptr<SocketTransport>(
      new SocketTransport(fd, endpoint, std::move(options)));
}

StatusOr<std::unique_ptr<SocketTransport>> SocketTransport::Connect(
    std::string_view spec, Options options) {
  MLCASK_ASSIGN_OR_RETURN(Endpoint ep, Endpoint::Parse(spec));
  return Connect(ep, std::move(options));
}

SocketTransport::SocketTransport(int fd, Endpoint endpoint, Options options)
    : endpoint_(std::move(endpoint)),
      options_(std::move(options)),
      fd_(fd),
      wire_version_(options_.wire_version),
      jitter_rng_(options_.redial_jitter_seed != 0
                      ? options_.redial_jitter_seed
                      : std::random_device{}()) {
  reader_ = std::thread([this] { ReaderLoop(); });
}

SocketTransport::~SocketTransport() {
  stopping_.store(true, std::memory_order_release);
  redial_cv_.notify_all();  // wakes a backoff sleep
  {
    // Under write_mu_ so the shutdown hits whichever fd is current — the
    // reader swaps fd_ during redial and checks stopping_ under this lock.
    std::lock_guard<std::mutex> lock(write_mu_);
    ::shutdown(fd_, SHUT_RDWR);  // wakes the reader out of read()
  }
  if (reader_.joinable()) reader_.join();
  ::close(fd_);
  FailAllPending(Status::Unavailable("transport destroyed"));
}

TransportFuture SocketTransport::AsyncCall(std::string_view request) {
  uint64_t unused_id = 0;
  return AsyncCallWithId(request, &unused_id);
}

TransportFuture SocketTransport::AsyncCallWithId(std::string_view request,
                                                 uint64_t* id_out) {
  const uint64_t id = next_id_.fetch_add(1, std::memory_order_relaxed);
  *id_out = id;
  std::promise<StatusOr<std::string>> promise;
  TransportFuture future = promise.get_future();
  if (request.size() > options_.max_frame_payload) {
    // Refuse BEFORE framing: an oversized frame would be rejected by the
    // peer's decoder as stream corruption, killing every in-flight call on
    // the session. This way the one offending call gets a clear status and
    // the session lives. (Also guards the u32 length field against >4 GiB
    // truncation — max_frame_payload is a uint32_t.)
    promise.set_value(Status::InvalidArgument(
        "request of " + std::to_string(request.size()) +
        " bytes exceeds the frame payload limit (" +
        std::to_string(options_.max_frame_payload) + ")"));
    std::lock_guard<std::mutex> lock(stats_mu_);
    stats_.transport_errors += 1;
    return future;
  }
  {
    std::lock_guard<std::mutex> lock(pending_mu_);
    if (!broken_.ok()) {
      promise.set_value(broken_);
      std::lock_guard<std::mutex> stats_lock(stats_mu_);
      stats_.transport_errors += 1;
      return future;
    }
    Pending pending;
    pending.promise = std::move(promise);
    // Retained so a redial can replay the call on the fresh connection.
    pending.request.assign(request.data(), request.size());
    pending_.emplace(id, std::move(pending));
  }
  const uint64_t deadline_ms = PeekRequestDeadlineMs(request);
  if (deadline_ms > 0) {
    std::lock_guard<std::mutex> lock(stats_mu_);
    stats_.deadline_stamped_calls += 1;
    if (stats_.hop_budgets_ms.size() < TransportStats::kMaxHopBudgetSamples) {
      stats_.hop_budgets_ms.push_back(deadline_ms);
    }
  }
  SendFault fault;
  if (options_.injector != nullptr) fault = options_.injector->OnClientSend();
  if (fault.delay_ms > 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(fault.delay_ms));
  }
  Status sent = SendRequest(id, request, fault);
  if (!sent.ok()) {
    if (options_.redial_budget_ms > 0) {
      // Degrade instead of failing: the reader notices the dead connection
      // (the shutdown below guarantees it wakes), redials, and replays this
      // call along with every other pending one.
      std::lock_guard<std::mutex> lock(write_mu_);
      connected_ = false;
      if (fd_ >= 0) ::shutdown(fd_, SHUT_RDWR);
    } else {
      // The peer is gone for everyone, not just this call.
      FailAllPending(sent);
    }
  }
  return future;
}

Status SocketTransport::SendRequest(uint64_t id, std::string_view request,
                                    const SendFault& fault) {
  const uint8_t version = wire_version_.load(std::memory_order_relaxed);
  if (fault.drop_before) {
    // "Frame dropped" on a stream socket: the only honest simulation is
    // killing the connection before the bytes leave — the reader sees EOF,
    // redials, and the replay delivers the request exactly once.
    std::lock_guard<std::mutex> lock(write_mu_);
    if (connected_ && fd_ >= 0) ::shutdown(fd_, SHUT_RDWR);
    return Status::Ok();
  }
  if (version >= kWireVersionBinary && options_.chunk_threshold > 0 &&
      request.size() >= options_.chunk_threshold) {
    return SendChunked(id, version, request, fault);
  }
  // Scatter-gather: header + payload leave as one sendmsg, the payload
  // bytes never copied into a frame buffer.
  std::string header;
  AppendFrameHeader(&header, FrameType::kData, id,
                    static_cast<uint32_t>(request.size()), version);
  if (fault.garble) {
    // Corrupt the length field to an impossible size: the peer's decoder
    // reports Corruption and closes, exercising the redial+replay path
    // with a guaranteed-detectable garble.
    header[10] = header[11] = header[12] = header[13] = '\xff';
  }
  std::vector<iovec> iov;
  iov.push_back(MakeIov(header.data(), header.size()));
  if (!request.empty()) iov.push_back(MakeIov(request.data(), request.size()));
  std::lock_guard<std::mutex> lock(write_mu_);
  if (!connected_) return Status::Ok();  // queued; replay will deliver it
  Status sent = SendParts(fd_, &iov);
  if (sent.ok() && fault.drop_after && fd_ >= 0) {
    // Request delivered, response lost: the replay-ledger scenario.
    ::shutdown(fd_, SHUT_RDWR);
  }
  return sent;
}

Status SocketTransport::SendChunked(uint64_t id, uint8_t version,
                                    std::string_view payload,
                                    const SendFault& fault) {
  const auto cuts = wire::WireChunker().Split(payload);
  // Hash the chunk addresses for the manifest BEFORE taking the write lock:
  // SHA-256 over megabytes must not serialize other callers' sends.
  Sha256 manifest;
  std::vector<std::string> headers;
  headers.reserve(cuts.size() + 1);
  for (const auto& [offset, length] : cuts) {
    const Hash256 address =
        wire::WireChunkAddress(payload.substr(offset, length));
    manifest.Update(address.bytes.data(), address.bytes.size());
    std::string header;
    AppendFrameHeader(&header, FrameType::kChunk, id,
                      static_cast<uint32_t>(length), version);
    headers.push_back(std::move(header));
  }
  const std::string end_payload =
      wire::EncodeChunkEnd(payload.size(), cuts.size(), manifest.Finish());
  std::string end_header;
  AppendFrameHeader(&end_header, FrameType::kChunkEnd, id,
                    static_cast<uint32_t>(end_payload.size()), version);

  std::vector<iovec> iov;
  iov.reserve(cuts.size() * 2 + 2);
  for (size_t i = 0; i < cuts.size(); ++i) {
    iov.push_back(MakeIov(headers[i].data(), headers[i].size()));
    iov.push_back(
        MakeIov(payload.data() + cuts[i].first, cuts[i].second));
  }
  iov.push_back(MakeIov(end_header.data(), end_header.size()));
  iov.push_back(MakeIov(end_payload.data(), end_payload.size()));

  if (fault.garble && !headers.empty()) {
    // Same guaranteed-detectable corruption as the monolithic path.
    headers[0][10] = headers[0][11] = headers[0][12] = headers[0][13] = '\xff';
  }

  Status sent;
  {
    std::lock_guard<std::mutex> lock(write_mu_);
    if (!connected_) return Status::Ok();  // replay will deliver it
    sent = SendParts(fd_, &iov);
    if (sent.ok() && fault.drop_after && fd_ >= 0) {
      ::shutdown(fd_, SHUT_RDWR);
    }
  }
  if (sent.ok()) {
    std::lock_guard<std::mutex> lock(stats_mu_);
    stats_.chunk_frames_sent += cuts.size() + 1;
  }
  return sent;
}

StatusOr<std::string> SocketTransport::Call(std::string_view request) {
  // A request stamped with a remaining deadline budget must not be waited
  // on longer than that budget: the blocking wait honors the TIGHTER of the
  // session timeout and the caller's end-to-end deadline.
  uint64_t timeout_ms = options_.call_timeout_ms;
  const uint64_t stamped_ms = PeekRequestDeadlineMs(request);
  if (stamped_ms > 0) {
    timeout_ms = timeout_ms == 0 ? stamped_ms
                                 : std::min(timeout_ms, stamped_ms);
  }
  uint64_t id = 0;
  TransportFuture future = AsyncCallWithId(request, &id);
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeout_ms);
  return CollectWithDeadline(&future, id, deadline, timeout_ms);
}

std::vector<StatusOr<std::string>> SocketTransport::CallMany(
    const std::vector<std::string>& requests) {
  // Issue everything first (that's the whole point), then collect against
  // ONE shared deadline — the documented call_timeout bounds the batch the
  // same way it bounds a single Call.
  std::vector<uint64_t> ids(requests.size(), 0);
  std::vector<TransportFuture> futures;
  futures.reserve(requests.size());
  for (size_t i = 0; i < requests.size(); ++i) {
    futures.push_back(AsyncCallWithId(requests[i], &ids[i]));
  }
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(options_.call_timeout_ms);
  std::vector<StatusOr<std::string>> responses;
  responses.reserve(requests.size());
  for (size_t i = 0; i < requests.size(); ++i) {
    responses.push_back(CollectWithDeadline(&futures[i], ids[i], deadline,
                                            options_.call_timeout_ms));
  }
  return responses;
}

StatusOr<std::string> SocketTransport::CollectWithDeadline(
    TransportFuture* future, uint64_t id,
    std::chrono::steady_clock::time_point deadline, uint64_t timeout_ms) {
  if (timeout_ms == 0 ||
      future->wait_until(deadline) == std::future_status::ready) {
    return future->get();
  }
  // Deregister the pending call so a LATE response is dropped by the
  // reader instead of being counted as a completed round trip — the caller
  // sees this call fail exactly once, in exactly one stats bucket. If the
  // entry is already gone, the response (or a connection failure) resolved
  // the future between the timeout and this lock: honor that result.
  {
    std::lock_guard<std::mutex> lock(pending_mu_);
    if (pending_.erase(id) == 0) return future->get();
  }
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    stats_.transport_errors += 1;
  }
  return Status::DeadlineExceeded(
      "call to " + endpoint_.ToString() + " exceeded " +
      std::to_string(timeout_ms) + "ms");
}

void SocketTransport::FailAllPending(const Status& status) {
  std::unordered_map<uint64_t, Pending> orphaned;
  {
    std::lock_guard<std::mutex> lock(pending_mu_);
    if (broken_.ok()) broken_ = status;
    orphaned.swap(pending_);
  }
  if (!orphaned.empty()) {
    std::lock_guard<std::mutex> lock(stats_mu_);
    stats_.transport_errors += orphaned.size();
  }
  for (auto& [id, pending] : orphaned) {
    (void)id;
    pending.promise.set_value(status);
  }
}

void SocketTransport::ReaderLoop() {
  // Session manager: pump frames until the connection dies, then run the
  // recovery state machine (degraded -> redialing -> recovered) and pump
  // the replacement. Terminal only on destruction, redial-budget
  // exhaustion, or consecutive barren sessions (a flapping peer that never
  // delivers a frame must not redial forever).
  constexpr int kMaxBarrenSessions = 8;
  int barren_sessions = 0;
  for (;;) {
    bool delivered = false;
    Status session = PumpSession(&delivered);
    if (stopping_.load(std::memory_order_acquire)) {
      conn_state_.store(ConnState::kFailed, std::memory_order_relaxed);
      FailAllPending(session);
      return;
    }
    if (options_.redial_budget_ms == 0) {
      // Fail-fast mode: first connection loss fails the session.
      conn_state_.store(ConnState::kFailed, std::memory_order_relaxed);
      FailAllPending(session);
      return;
    }
    barren_sessions = delivered ? 0 : barren_sessions + 1;
    if (barren_sessions >= kMaxBarrenSessions) {
      conn_state_.store(ConnState::kFailed, std::memory_order_relaxed);
      FailAllPending(Status::Unavailable(
          "peer " + endpoint_.ToString() + " flapping: " +
          std::to_string(barren_sessions) +
          " consecutive sessions delivered no frame"));
      return;
    }
    conn_state_.store(ConnState::kDegraded, std::memory_order_relaxed);
    {
      std::lock_guard<std::mutex> lock(write_mu_);
      connected_ = false;
    }
    Status redialed = Redial();
    if (!redialed.ok()) {
      conn_state_.store(ConnState::kFailed, std::memory_order_relaxed);
      FailAllPending(redialed);
      return;
    }
    conn_state_.store(ConnState::kRecovered, std::memory_order_relaxed);
  }
}

Status SocketTransport::PumpSession(bool* delivered) {
  // Fresh decode state per connection: a garble that killed the previous
  // session must not poison this one.
  FrameDecoder decoder(options_.max_frame_payload);
  // Reassembles incoming chunk-streamed responses; reader-thread-only.
  wire::StreamAssembler assembler(options_.max_frame_payload);
  int fd = -1;
  {
    std::lock_guard<std::mutex> lock(write_mu_);
    fd = fd_;
  }
  char buf[64 * 1024];
  for (;;) {
    ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) {
      Status eof = decoder.Finish();
      return eof.ok() ? Status::Unavailable("peer " + endpoint_.ToString() +
                                            " closed the connection")
                      : eof;
    }
    decoder.Feed(std::string_view(buf, static_cast<size_t>(n)));
    {
      std::lock_guard<std::mutex> lock(stats_mu_);
      stats_.peak_decoder_buffer_bytes =
          std::max(stats_.peak_decoder_buffer_bytes,
                   decoder.peak_buffer_bytes());
    }
    for (;;) {
      Frame frame;
      auto next = decoder.Next(&frame);
      if (!next.ok()) {
        // Version skew on a response is still correlated (frozen header):
        // fail that one call with the clear status and keep the stream;
        // anything else is corruption — the stream is untrustworthy.
        if (next.status().code() == StatusCode::kUnimplemented) {
          std::promise<StatusOr<std::string>> waiter;
          bool found = false;
          {
            std::lock_guard<std::mutex> lock(pending_mu_);
            auto it = pending_.find(frame.id);
            if (it != pending_.end()) {
              waiter = std::move(it->second.promise);
              pending_.erase(it);
              found = true;
            }
          }
          if (found) {
            {
              std::lock_guard<std::mutex> lock(stats_mu_);
              stats_.transport_errors += 1;
            }
            *delivered = true;  // the peer answered; session is live
            waiter.set_value(next.status());
          }
          continue;
        }
        return next.status();
      }
      if (!*next) break;  // need more bytes
      if (frame.type == FrameType::kChunk) {
        Status accepted = assembler.OnChunk(frame.id, frame.payload);
        if (!accepted.ok()) {
          // A chunk stream that violates limits means the framing itself
          // can no longer be trusted.
          return accepted;
        }
        std::lock_guard<std::mutex> lock(stats_mu_);
        stats_.chunk_frames_received += 1;
        continue;
      }
      if (frame.type == FrameType::kChunkEnd) {
        auto assembled = assembler.OnEnd(frame.id, frame.payload);
        if (!assembled.ok()) {
          // Manifest mismatch = the stream delivered corrupt bytes.
          return assembled.status();
        }
        {
          std::lock_guard<std::mutex> lock(stats_mu_);
          stats_.chunk_frames_received += 1;
        }
        frame.type = FrameType::kData;
        frame.payload = *std::move(assembled);
        // Falls through to the pending-call resolution below.
      }
      std::promise<StatusOr<std::string>> waiter;
      size_t request_bytes = 0;
      bool found = false;
      {
        std::lock_guard<std::mutex> lock(pending_mu_);
        auto it = pending_.find(frame.id);
        if (it != pending_.end()) {
          waiter = std::move(it->second.promise);
          request_bytes = it->second.request.size();
          pending_.erase(it);
          found = true;
        }
      }
      if (!found) continue;  // response to an abandoned/unknown id
      *delivered = true;
      if (frame.type == FrameType::kError) {
        {
          std::lock_guard<std::mutex> lock(stats_mu_);
          stats_.transport_errors += 1;
        }
        waiter.set_value(DecodeErrorPayload(frame.payload));
        continue;
      }
      {
        // One unit: a reader polling stats never sees a call counted
        // without its bytes (same contract as LoopbackTransport).
        std::lock_guard<std::mutex> lock(stats_mu_);
        stats_.calls += 1;
        stats_.request_bytes += request_bytes;
        stats_.response_bytes += frame.payload.size();
      }
      waiter.set_value(std::move(frame.payload));
    }
  }
}

Status SocketTransport::Redial() {
  conn_state_.store(ConnState::kRedialing, std::memory_order_relaxed);
  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::milliseconds(options_.redial_budget_ms);
  // FULL-JITTER exponential backoff: the sleep before each attempt is drawn
  // uniformly from [0, cap], cap doubling per attempt up to 500ms. Pure
  // doubling would march every client orphaned by one server restart back in
  // lockstep — a synchronized retry wave that re-creates the overload.
  uint64_t backoff_cap =
      std::max<uint64_t>(1, options_.redial_initial_backoff_ms);
  Status last = Status::Unavailable("redial never attempted");
  int new_fd = -1;
  for (;;) {
    if (stopping_.load(std::memory_order_acquire)) {
      return Status::Unavailable("transport destroyed");
    }
    auto opened = OpenSocket(endpoint_, /*bind_side=*/false);
    if (opened.ok()) {
      new_fd = *opened;
      break;
    }
    last = opened.status();
    const uint64_t backoff =
        std::uniform_int_distribution<uint64_t>(0, backoff_cap)(jitter_rng_);
    if (std::chrono::steady_clock::now() +
            std::chrono::milliseconds(backoff) >=
        deadline) {
      return Status::Unavailable(
          "redial budget (" + std::to_string(options_.redial_budget_ms) +
          "ms) exhausted for " + endpoint_.ToString() + ": " +
          last.message());
    }
    {
      std::unique_lock<std::mutex> lock(redial_mu_);
      redial_cv_.wait_for(lock, std::chrono::milliseconds(backoff), [this] {
        return stopping_.load(std::memory_order_acquire);
      });
    }
    backoff_cap = std::min<uint64_t>(backoff_cap * 2, 500);
  }
  // Snapshot the calls to replay BEFORE going connected: anything arriving
  // after the swap sends itself; anything in this snapshot is sent below.
  // Correlation-id order preserves the per-connection ordering the 2PC
  // apply phase relies on.
  std::vector<std::pair<uint64_t, std::string>> replay;
  // Calls whose per-call retry budget is spent fail HERE with a typed
  // ResourceExhausted instead of riding yet another connection: under
  // sustained overload, retry amplification must converge, not compound.
  std::vector<std::promise<StatusOr<std::string>>> over_budget;
  {
    std::lock_guard<std::mutex> lock(pending_mu_);
    replay.reserve(pending_.size());
    for (auto it = pending_.begin(); it != pending_.end();) {
      if (options_.max_call_replays > 0 &&
          it->second.replays >= options_.max_call_replays) {
        over_budget.push_back(std::move(it->second.promise));
        it = pending_.erase(it);
        continue;
      }
      it->second.replays += 1;
      replay.emplace_back(it->first, it->second.request);
      ++it;
    }
  }
  if (!over_budget.empty()) {
    {
      std::lock_guard<std::mutex> lock(stats_mu_);
      stats_.transport_errors += over_budget.size();
    }
    const Status spent = Status::ResourceExhausted(
        "retry budget (" + std::to_string(options_.max_call_replays) +
        " replays) spent redialing " + endpoint_.ToString());
    for (auto& waiter : over_budget) waiter.set_value(spent);
  }
  std::sort(replay.begin(), replay.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  {
    std::lock_guard<std::mutex> lock(write_mu_);
    if (stopping_.load(std::memory_order_acquire)) {
      ::close(new_fd);
      return Status::Unavailable("transport destroyed");
    }
    ::close(fd_);
    fd_ = new_fd;
    connected_ = true;
  }
  redials_.fetch_add(1, std::memory_order_relaxed);
  for (const auto& [id, request] : replay) {
    // Replays carry no injected faults — the fault hit the ORIGINAL
    // transmission; recovery must be clean or it is not recovery.
    Status sent = SendRequest(id, request, SendFault{});
    if (!sent.ok()) {
      // The replacement died mid-replay: let the pump observe it and run
      // another redial cycle (bounded by the barren-session cap).
      break;
    }
  }
  return Status::Ok();
}

TransportStats SocketTransport::stats() const {
  std::lock_guard<std::mutex> lock(stats_mu_);
  return stats_;
}

std::string SocketTransport::Name() const {
  return "socket(" + endpoint_.ToString() + ")";
}

namespace {

/// Lock-free high-water-mark update for the admission peak counters.
void StoreMax(std::atomic<uint64_t>* peak, uint64_t value) {
  uint64_t current = peak->load(std::memory_order_relaxed);
  while (value > current &&
         !peak->compare_exchange_weak(current, value,
                                      std::memory_order_relaxed)) {
  }
}

}  // namespace

// --------------------------------------------------------------- server ---

StatusOr<std::unique_ptr<SocketTransportServer>> SocketTransportServer::Bind(
    const Endpoint& endpoint, Options options) {
  MLCASK_ASSIGN_OR_RETURN(int fd, OpenSocket(endpoint, /*bind_side=*/true));
  Endpoint bound = endpoint;
  if (bound.kind == Endpoint::Kind::kTcp && bound.port == 0) {
    sockaddr_in addr{};
    socklen_t len = sizeof(addr);
    if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) == 0) {
      bound.port = ntohs(addr.sin_port);
    }
  }
  if (bound.kind == Endpoint::Kind::kTcp && bound.host.empty()) {
    bound.host = "127.0.0.1";  // the spec clients should dial
  }
  return std::unique_ptr<SocketTransportServer>(
      new SocketTransportServer(fd, std::move(bound), std::move(options)));
}

StatusOr<std::unique_ptr<SocketTransportServer>> SocketTransportServer::Bind(
    std::string_view spec, Options options) {
  MLCASK_ASSIGN_OR_RETURN(Endpoint ep, Endpoint::Parse(spec));
  return Bind(ep, std::move(options));
}

SocketTransportServer::SocketTransportServer(int listen_fd, Endpoint endpoint,
                                             Options options)
    : endpoint_(std::move(endpoint)),
      options_(std::move(options)),
      listen_fd_(listen_fd),
      chunk_cache_(options_.chunk_cache_bytes) {}

SocketTransportServer::~SocketTransportServer() { Shutdown(); }

Status SocketTransportServer::Serve(TransportHandler handler) {
  if (handler == nullptr) {
    return Status::InvalidArgument("Serve needs a handler");
  }
  ServerState expected = ServerState::kInitial;
  if (!state_.compare_exchange_strong(expected, ServerState::kStarting,
                                      std::memory_order_acq_rel)) {
    return expected == ServerState::kStarting ||
                   expected == ServerState::kStarted
               ? Status::FailedPrecondition("server already serving")
               : Status::FailedPrecondition("server shut down");
  }
  handler_ = std::move(handler);
  epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
  wake_fd_ = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
  Status up = Status::Ok();
  if (epoll_fd_ < 0 || wake_fd_ < 0) {
    up = ErrnoStatus("epoll/eventfd setup failed", errno);
  }
  if (up.ok()) up = SetNonBlocking(listen_fd_);
  if (up.ok()) {
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.fd = listen_fd_;
    if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, listen_fd_, &ev) != 0) {
      up = ErrnoStatus("epoll_ctl(listen)", errno);
    }
    ev.data.fd = wake_fd_;
    if (up.ok() &&
        ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_fd_, &ev) != 0) {
      up = ErrnoStatus("epoll_ctl(wake)", errno);
    }
  }
  if (!up.ok()) {
    if (epoll_fd_ >= 0) ::close(epoll_fd_);
    if (wake_fd_ >= 0) ::close(wake_fd_);
    epoll_fd_ = wake_fd_ = -1;
    state_.store(ServerState::kStopped, std::memory_order_release);
    return up;
  }
  loop_thread_ = std::thread([this] { LoopThread(); });
  const size_t workers = std::max<size_t>(1, options_.worker_threads);
  workers_.reserve(workers);
  for (size_t i = 0; i < workers; ++i) {
    workers_.emplace_back([this] { WorkerThread(); });
  }
  state_.store(ServerState::kStarted, std::memory_order_release);
  return Status::Ok();
}

void SocketTransportServer::LoopThread() {
  epoll_event events[64];
  while (!stop_.load(std::memory_order_acquire)) {
    int n = ::epoll_wait(epoll_fd_, events, 64, -1);
    if (n < 0) {
      if (errno == EINTR) continue;
      break;
    }
    for (int i = 0; i < n; ++i) {
      const int fd = events[i].data.fd;
      if (fd == wake_fd_) {
        uint64_t drained = 0;
        while (::read(wake_fd_, &drained, sizeof(drained)) > 0) {
        }
        continue;  // queued flushes run below
      }
      if (fd == listen_fd_) {
        AcceptReady();
        continue;
      }
      auto it = connections_.find(fd);
      if (it == connections_.end()) continue;  // closed earlier this batch
      std::shared_ptr<Connection> connection = it->second;
      if ((events[i].events & (EPOLLHUP | EPOLLERR)) != 0 &&
          (events[i].events & EPOLLIN) == 0) {
        CloseConnection(connection);
        continue;
      }
      if ((events[i].events & EPOLLIN) != 0) {
        ReadReady(connection);
      }
      if ((events[i].events & EPOLLOUT) != 0 &&
          connections_.count(fd) != 0) {
        if (!FlushConnection(connection)) CloseConnection(connection);
      }
    }
    // Worker-produced responses queued since the last pass.
    std::vector<std::shared_ptr<Connection>> ready;
    {
      std::lock_guard<std::mutex> lock(notify_mu_);
      ready.swap(notify_);
    }
    for (const auto& connection : ready) {
      if (!FlushConnection(connection)) CloseConnection(connection);
    }
  }
  // Teardown: retire every connection. Marking closed under the lock makes
  // late worker output a silent drop instead of a write to a recycled fd.
  for (auto& [fd, connection] : connections_) {
    {
      std::lock_guard<std::mutex> lock(connection->mu);
      connection->closed = true;
      connection->fd = -1;
      connection->outbox.clear();
    }
    ::close(fd);
  }
  connections_.clear();
}

void SocketTransportServer::AcceptReady() {
  for (;;) {
    int fd = ::accept4(listen_fd_, nullptr, nullptr,
                       SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // EAGAIN (drained) or listen socket closed
    }
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    connections_accepted_.fetch_add(1, std::memory_order_relaxed);
    auto connection = std::make_shared<Connection>(
        options_.max_frame_payload, options_.max_wire_version, &chunk_cache_);
    connection->fd = fd;
    connection->epoll_events = EPOLLIN;
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.fd = fd;
    if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) != 0) {
      ::close(fd);
      continue;
    }
    connections_.emplace(fd, std::move(connection));
  }
}

void SocketTransportServer::ReadReady(
    const std::shared_ptr<Connection>& connection) {
  char buf[64 * 1024];
  for (;;) {
    ssize_t n = ::recv(connection->fd, buf, sizeof(buf), 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) return;
      CloseConnection(connection);
      return;
    }
    if (n == 0) {
      CloseConnection(connection);
      return;
    }
    connection->decoder.Feed(std::string_view(buf, static_cast<size_t>(n)));
    for (;;) {
      Frame frame;
      auto next = connection->decoder.Next(&frame);
      if (!next.ok()) {
        if (next.status().code() == StatusCode::kUnimplemented) {
          // Version skew, id recovered from the frozen header: tell the
          // exact caller why with an ERROR frame, then keep serving — one
          // future-version message must not take down the session. The
          // reply is stamped with the OLDEST version so any peer parses it.
          OutPart part;
          AppendFrame(&part.header, FrameType::kError, frame.id,
                      EncodeErrorPayload(next.status()), kWireVersionJson);
          {
            std::lock_guard<std::mutex> lock(connection->mu);
            connection->outbox.push_back(std::move(part));
          }
          if (!FlushConnection(connection)) {
            CloseConnection(connection);
            return;
          }
          continue;
        }
        // Garbled stream: nothing correlatable to answer. Closing fails the
        // peer's pending calls as Unavailable instead of hanging them.
        CloseConnection(connection);
        return;
      }
      if (!*next) break;  // need more bytes
      if (frame.type == FrameType::kError) continue;  // clients never send
      const size_t payload_bytes = frame.payload.size();
      if (frame.type == FrameType::kData) {
        // Admission control: a DATA frame past any queue cap is shed HERE —
        // answered immediately with a typed ResourceExhausted ERROR frame,
        // never queued, handler never run — so queue depth and memory stay
        // bounded no matter how far offered load exceeds capacity. Chunk
        // frames are exempt (dropping one mid-stream would corrupt
        // reassembly); their memory is bounded by the assembler's limits.
        bool shed =
            (options_.max_queued_jobs > 0 &&
             queued_jobs_.load(std::memory_order_relaxed) >=
                 options_.max_queued_jobs) ||
            (options_.max_queued_bytes > 0 &&
             queued_bytes_.load(std::memory_order_relaxed) + payload_bytes >
                 options_.max_queued_bytes);
        if (!shed) {
          std::lock_guard<std::mutex> lock(connection->mu);
          shed = (options_.max_conn_queued_jobs > 0 &&
                  connection->jobs.size() >= options_.max_conn_queued_jobs) ||
                 (options_.max_conn_queued_bytes > 0 &&
                  connection->queued_bytes + payload_bytes >
                      options_.max_conn_queued_bytes);
        }
        if (shed) {
          shed_jobs_.fetch_add(1, std::memory_order_relaxed);
          OutPart part;
          AppendFrame(&part.header, FrameType::kError, frame.id,
                      EncodeErrorPayload(Status::ResourceExhausted(
                          "server admission queue full")),
                      frame.version);
          {
            std::lock_guard<std::mutex> lock(connection->mu);
            connection->outbox.push_back(std::move(part));
          }
          if (!FlushConnection(connection)) {
            CloseConnection(connection);
            return;
          }
          continue;
        }
      }
      bool schedule = false;
      {
        std::lock_guard<std::mutex> lock(connection->mu);
        Job job;
        job.type = frame.type;
        job.id = frame.id;
        job.version = frame.version;
        job.payload = std::move(frame.payload);
        job.enqueued = std::chrono::steady_clock::now();
        connection->jobs.push_back(std::move(job));
        connection->queued_bytes += payload_bytes;
        if (!connection->job_active) {
          // Claim the strand: exactly one worker drains this connection's
          // jobs at a time, so requests are handled in arrival order.
          connection->job_active = true;
          schedule = true;
        }
      }
      const uint64_t jobs_now =
          queued_jobs_.fetch_add(1, std::memory_order_relaxed) + 1;
      const uint64_t bytes_now =
          queued_bytes_.fetch_add(payload_bytes, std::memory_order_relaxed) +
          payload_bytes;
      StoreMax(&peak_queued_jobs_, jobs_now);
      StoreMax(&peak_queued_bytes_, bytes_now);
      if (schedule) {
        std::lock_guard<std::mutex> lock(work_mu_);
        work_queue_.push_back(connection);
        work_cv_.notify_one();
      }
    }
    if (n < static_cast<ssize_t>(sizeof(buf))) return;  // drained for now
  }
}

bool SocketTransportServer::FlushConnection(
    const std::shared_ptr<Connection>& connection) {
  std::lock_guard<std::mutex> lock(connection->mu);
  if (connection->closed || connection->fd < 0) return true;
  while (!connection->outbox.empty()) {
    // Gather up to 64 parts per sendmsg: header and payload slices go to
    // the kernel as they are, never coalesced into a staging buffer.
    iovec iov[64];
    size_t niov = 0;
    for (const OutPart& part : connection->outbox) {
      if (niov >= 63) break;
      if (part.header_off < part.header.size()) {
        iov[niov++] = MakeIov(part.header.data() + part.header_off,
                              part.header.size() - part.header_off);
      }
      if (part.body != nullptr && part.body_len > 0) {
        iov[niov++] = MakeIov(part.body->data() + part.body_off,
                              part.body_len);
      }
    }
    msghdr msg{};
    msg.msg_iov = iov;
    msg.msg_iovlen = niov;
    ssize_t n = ::sendmsg(connection->fd, &msg, MSG_NOSIGNAL | MSG_DONTWAIT);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        // Kernel buffer full: arm EPOLLOUT and resume when writable.
        if ((connection->epoll_events & EPOLLOUT) == 0) {
          connection->epoll_events = EPOLLIN | EPOLLOUT;
          epoll_event ev{};
          ev.events = connection->epoll_events;
          ev.data.fd = connection->fd;
          ::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, connection->fd, &ev);
        }
        return true;
      }
      return false;  // peer gone: caller retires the connection
    }
    size_t left = static_cast<size_t>(n);
    while (!connection->outbox.empty()) {
      OutPart& part = connection->outbox.front();
      size_t take =
          std::min(left, part.header.size() - part.header_off);
      part.header_off += take;
      left -= take;
      if (part.header_off < part.header.size()) break;
      if (part.body != nullptr) {
        take = std::min(left, part.body_len);
        part.body_off += take;
        part.body_len -= take;
        left -= take;
        if (part.body_len > 0) break;
      }
      connection->outbox.pop_front();
      if (left == 0) break;
    }
  }
  if ((connection->epoll_events & EPOLLOUT) != 0) {
    connection->epoll_events = EPOLLIN;
    epoll_event ev{};
    ev.events = connection->epoll_events;
    ev.data.fd = connection->fd;
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, connection->fd, &ev);
  }
  return true;
}

void SocketTransportServer::CloseConnection(
    const std::shared_ptr<Connection>& connection) {
  int fd = -1;
  {
    std::lock_guard<std::mutex> lock(connection->mu);
    if (connection->closed) return;
    connection->closed = true;
    fd = connection->fd;
    connection->fd = -1;
    connection->outbox.clear();
  }
  if (fd < 0) return;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr);
  ::close(fd);
  connections_.erase(fd);
}

void SocketTransportServer::AbortConnection(
    const std::shared_ptr<Connection>& connection) {
  // Workers never close fds (the loop owns them); a half-close makes the
  // loop observe EOF and retire the connection on its own thread.
  std::lock_guard<std::mutex> lock(connection->mu);
  if (!connection->closed && connection->fd >= 0) {
    ::shutdown(connection->fd, SHUT_RDWR);
  }
}

void SocketTransportServer::WorkerThread() {
  for (;;) {
    std::shared_ptr<Connection> connection;
    {
      std::unique_lock<std::mutex> lock(work_mu_);
      work_cv_.wait(lock, [this] {
        return workers_stop_ || !work_queue_.empty();
      });
      if (work_queue_.empty()) return;  // stopping and drained
      connection = std::move(work_queue_.front());
      work_queue_.pop_front();
    }
    // Drain this connection's strand: one worker at a time, arrival order.
    for (;;) {
      Job job;
      {
        std::lock_guard<std::mutex> lock(connection->mu);
        if (connection->jobs.empty()) {
          connection->job_active = false;
          break;
        }
        // Jobs of a CLOSED connection still execute: the request was
        // delivered in full, so the peer may legitimately believe it
        // happened — dropping it here would turn a lost RESPONSE into a
        // lost WRITE. Executing it lands the mutation and records it in
        // the replay ledger, so the peer's redial replay gets the recorded
        // answer instead of a second application. Only the response is
        // discarded (EnqueueResponse is a no-op once closed).
        job = std::move(connection->jobs.front());
        connection->jobs.pop_front();
        connection->queued_bytes -= job.payload.size();
      }
      queued_jobs_.fetch_sub(1, std::memory_order_relaxed);
      queued_bytes_.fetch_sub(job.payload.size(), std::memory_order_relaxed);
      ProcessJob(connection, std::move(job));
    }
  }
}

void SocketTransportServer::ProcessJob(
    const std::shared_ptr<Connection>& connection, Job job) {
  if (job.type == FrameType::kChunk) {
    Status accepted = connection->assembler.OnChunk(job.id, job.payload);
    if (!accepted.ok()) AbortConnection(connection);
    return;
  }
  if (job.type == FrameType::kChunkEnd) {
    auto assembled = connection->assembler.OnEnd(job.id, job.payload);
    if (!assembled.ok()) {
      // Bad manifest/bookkeeping: the stream delivered corrupt bytes, and
      // there is no trustworthy way to keep decoding it.
      AbortConnection(connection);
      return;
    }
    job.payload = *std::move(assembled);
  }
  // Deadline check at dequeue: a request whose remaining budget was spent
  // while it sat in the queue is dropped UNEXECUTED with a typed
  // DeadlineExceeded — running it would burn a worker on an answer the
  // caller has already abandoned, and (for mutations) would claim a replay
  // ledger slot for a response nobody collects. The caller's own deadline
  // already fired client-side; this keeps the server's goodput honest.
  const uint64_t deadline_ms = PeekRequestDeadlineMs(job.payload);
  if (deadline_ms > 0) {
    const auto waited_ms =
        std::chrono::duration_cast<std::chrono::milliseconds>(
            std::chrono::steady_clock::now() - job.enqueued)
            .count();
    if (waited_ms >= 0 && static_cast<uint64_t>(waited_ms) >= deadline_ms) {
      expired_jobs_.fetch_add(1, std::memory_order_relaxed);
      EnqueueError(connection, job.id, job.version,
                   Status::DeadlineExceeded(
                       "request deadline expired in the admission queue"));
      return;
    }
  }
  if (options_.injector != nullptr) {
    JobFault fault = options_.injector->OnServerJob(job.payload.size());
    if (fault.kill) {
      // The chaos "kill -9 mid-2PC": nothing is flushed, no destructor
      // runs — indistinguishable from a power cut on this shard.
      ::kill(::getpid(), SIGKILL);
    }
    if (fault.delay_ms > 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(fault.delay_ms));
    }
  }
  std::string response = handler_(job.payload);
  EnqueueResponse(connection, job.id, job.version, std::move(response));
}

void SocketTransportServer::EnqueueResponse(
    const std::shared_ptr<Connection>& connection, uint64_t id,
    uint8_t version, std::string response) {
  std::vector<OutPart> parts;
  if (response.size() > options_.max_frame_payload) {
    // Same refusal as the client side: an oversized frame would read as
    // stream corruption at the peer and kill its whole session.
    OutPart part;
    AppendFrame(&part.header, FrameType::kError, id,
                EncodeErrorPayload(Status::FailedPrecondition(
                    "response of " + std::to_string(response.size()) +
                    " bytes exceeds the frame payload limit")),
                version);
    parts.push_back(std::move(part));
  } else if (version >= kWireVersionBinary && options_.chunk_threshold > 0 &&
             response.size() >= options_.chunk_threshold) {
    // Stream the response: all chunk parts reference ONE shared buffer.
    auto body = std::make_shared<const std::string>(std::move(response));
    const auto cuts = wire::WireChunker().Split(*body);
    Sha256 manifest;
    parts.reserve(cuts.size() + 1);
    for (const auto& [offset, length] : cuts) {
      const Hash256 address = wire::WireChunkAddress(
          std::string_view(body->data() + offset, length));
      manifest.Update(address.bytes.data(), address.bytes.size());
      OutPart part;
      AppendFrameHeader(&part.header, FrameType::kChunk, id,
                        static_cast<uint32_t>(length), version);
      part.body = body;
      part.body_off = offset;
      part.body_len = length;
      parts.push_back(std::move(part));
    }
    const std::string end_payload =
        wire::EncodeChunkEnd(body->size(), cuts.size(), manifest.Finish());
    OutPart end;
    AppendFrame(&end.header, FrameType::kChunkEnd, id, end_payload, version);
    parts.push_back(std::move(end));
  } else {
    OutPart part;
    AppendFrameHeader(&part.header, FrameType::kData, id,
                      static_cast<uint32_t>(response.size()), version);
    const size_t length = response.size();
    part.body = std::make_shared<const std::string>(std::move(response));
    part.body_off = 0;
    part.body_len = length;
    parts.push_back(std::move(part));
  }
  {
    std::lock_guard<std::mutex> lock(connection->mu);
    if (connection->closed) return;
    for (OutPart& part : parts) {
      connection->outbox.push_back(std::move(part));
    }
  }
  NotifyWritable(connection);
}

void SocketTransportServer::EnqueueError(
    const std::shared_ptr<Connection>& connection, uint64_t id,
    uint8_t version, const Status& status) {
  OutPart part;
  AppendFrame(&part.header, FrameType::kError, id, EncodeErrorPayload(status),
              version);
  {
    std::lock_guard<std::mutex> lock(connection->mu);
    if (connection->closed) return;
    connection->outbox.push_back(std::move(part));
  }
  NotifyWritable(connection);
}

void SocketTransportServer::NotifyWritable(
    std::shared_ptr<Connection> connection) {
  {
    std::lock_guard<std::mutex> lock(notify_mu_);
    notify_.push_back(std::move(connection));
  }
  uint64_t one = 1;
  ssize_t written = ::write(wake_fd_, &one, sizeof(one));
  (void)written;  // eventfd writes only fail when shutting down
}

void SocketTransportServer::Shutdown() {
  for (;;) {
    ServerState state = state_.load(std::memory_order_acquire);
    if (state == ServerState::kStopped) return;
    if (state == ServerState::kInitial) {
      if (state_.compare_exchange_strong(state, ServerState::kStopped,
                                         std::memory_order_acq_rel)) {
        if (listen_fd_ >= 0) {
          ::close(listen_fd_);
          listen_fd_ = -1;
        }
        if (endpoint_.kind == Endpoint::Kind::kUnix) {
          ::unlink(endpoint_.path.c_str());
        }
        return;
      }
      continue;
    }
    if (state == ServerState::kStarted) {
      if (state_.compare_exchange_strong(state, ServerState::kStopping,
                                         std::memory_order_acq_rel)) {
        break;  // this thread performs the teardown
      }
      continue;
    }
    // kStarting (Serve mid-flight) or kStopping (another thread tearing
    // down): wait for the transition to settle.
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }

  stop_.store(true, std::memory_order_release);
  uint64_t one = 1;
  ssize_t written = ::write(wake_fd_, &one, sizeof(one));
  (void)written;
  if (loop_thread_.joinable()) loop_thread_.join();
  {
    std::lock_guard<std::mutex> lock(work_mu_);
    workers_stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
  workers_.clear();
  if (wake_fd_ >= 0) ::close(wake_fd_);
  if (epoll_fd_ >= 0) ::close(epoll_fd_);
  wake_fd_ = epoll_fd_ = -1;
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  if (endpoint_.kind == Endpoint::Kind::kUnix) {
    ::unlink(endpoint_.path.c_str());
  }
  state_.store(ServerState::kStopped, std::memory_order_release);
}

}  // namespace mlcask::storage
