#include "storage/socket_transport.h"

#include <arpa/inet.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <utility>

namespace mlcask::storage {

namespace {

Status ErrnoStatus(const std::string& what, int err) {
  return Status::Unavailable(what + ": " + std::strerror(err));
}

/// Writes the whole buffer, restarting on EINTR. MSG_NOSIGNAL: a dead peer
/// must surface as EPIPE, not kill the process with SIGPIPE.
Status SendAll(int fd, std::string_view bytes) {
  size_t off = 0;
  while (off < bytes.size()) {
    ssize_t n = ::send(fd, bytes.data() + off, bytes.size() - off,
                       MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return ErrnoStatus("socket write failed", errno);
    }
    off += static_cast<size_t>(n);
  }
  return Status::Ok();
}

/// Builds a connected or bound socket for `ep`. For servers, `bind_side`
/// binds+listens; for clients it connects.
StatusOr<int> OpenSocket(const Endpoint& ep, bool bind_side) {
  if (ep.kind == Endpoint::Kind::kLoopback) {
    return Status::InvalidArgument(
        "loopback: endpoints have no wire; use LoopbackTransport");
  }
  if (ep.kind == Endpoint::Kind::kUnix) {
    int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) return ErrnoStatus("socket(AF_UNIX)", errno);
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    std::strncpy(addr.sun_path, ep.path.c_str(), sizeof(addr.sun_path) - 1);
    if (bind_side) {
      ::unlink(ep.path.c_str());  // a stale file must not wedge restarts
      if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0 ||
          ::listen(fd, 64) != 0) {
        Status st = ErrnoStatus("bind/listen " + ep.ToString(), errno);
        ::close(fd);
        return st;
      }
    } else if (::connect(fd, reinterpret_cast<sockaddr*>(&addr),
                         sizeof(addr)) != 0) {
      Status st = ErrnoStatus("connect " + ep.ToString(), errno);
      ::close(fd);
      return st;
    }
    return fd;
  }
  // TCP: resolve host (empty host = 127.0.0.1 for clients, any for servers).
  addrinfo hints{};
  hints.ai_family = AF_INET;
  hints.ai_socktype = SOCK_STREAM;
  if (bind_side) hints.ai_flags = AI_PASSIVE;
  const std::string host =
      !ep.host.empty() ? ep.host : (bind_side ? std::string() : "127.0.0.1");
  const std::string port = std::to_string(ep.port);
  addrinfo* res = nullptr;
  int rc = ::getaddrinfo(host.empty() ? nullptr : host.c_str(), port.c_str(),
                         &hints, &res);
  if (rc != 0) {
    return Status::Unavailable("resolve " + ep.ToString() + ": " +
                               ::gai_strerror(rc));
  }
  Status last = Status::Unavailable("no address for " + ep.ToString());
  for (addrinfo* ai = res; ai != nullptr; ai = ai->ai_next) {
    int fd = ::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
    if (fd < 0) {
      last = ErrnoStatus("socket(AF_INET)", errno);
      continue;
    }
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    if (bind_side) {
      ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
      if (::bind(fd, ai->ai_addr, ai->ai_addrlen) == 0 &&
          ::listen(fd, 64) == 0) {
        ::freeaddrinfo(res);
        return fd;
      }
    } else if (::connect(fd, ai->ai_addr, ai->ai_addrlen) == 0) {
      ::freeaddrinfo(res);
      return fd;
    }
    last = ErrnoStatus((bind_side ? "bind/listen " : "connect ") +
                           ep.ToString(),
                       errno);
    ::close(fd);
  }
  ::freeaddrinfo(res);
  return last;
}

}  // namespace

// --------------------------------------------------------------- client ---

StatusOr<std::unique_ptr<SocketTransport>> SocketTransport::Connect(
    const Endpoint& endpoint, Options options) {
  MLCASK_ASSIGN_OR_RETURN(int fd, OpenSocket(endpoint, /*bind_side=*/false));
  return std::unique_ptr<SocketTransport>(
      new SocketTransport(fd, endpoint, std::move(options)));
}

StatusOr<std::unique_ptr<SocketTransport>> SocketTransport::Connect(
    std::string_view spec, Options options) {
  MLCASK_ASSIGN_OR_RETURN(Endpoint ep, Endpoint::Parse(spec));
  return Connect(ep, std::move(options));
}

SocketTransport::SocketTransport(int fd, Endpoint endpoint, Options options)
    : endpoint_(std::move(endpoint)), options_(std::move(options)), fd_(fd) {
  reader_ = std::thread([this] { ReaderLoop(); });
}

SocketTransport::~SocketTransport() {
  ::shutdown(fd_, SHUT_RDWR);  // wakes the reader out of read()
  if (reader_.joinable()) reader_.join();
  ::close(fd_);
  FailAllPending(Status::Unavailable("transport destroyed"));
}

TransportFuture SocketTransport::AsyncCall(std::string_view request) {
  uint64_t unused_id = 0;
  return AsyncCallWithId(request, &unused_id);
}

TransportFuture SocketTransport::AsyncCallWithId(std::string_view request,
                                                 uint64_t* id_out) {
  const uint64_t id = next_id_.fetch_add(1, std::memory_order_relaxed);
  *id_out = id;
  std::promise<StatusOr<std::string>> promise;
  TransportFuture future = promise.get_future();
  if (request.size() > options_.max_frame_payload) {
    // Refuse BEFORE framing: an oversized frame would be rejected by the
    // peer's decoder as stream corruption, killing every in-flight call on
    // the session. This way the one offending call gets a clear status and
    // the session lives. (Also guards the u32 length field against >4 GiB
    // truncation — max_frame_payload is a uint32_t.)
    promise.set_value(Status::InvalidArgument(
        "request of " + std::to_string(request.size()) +
        " bytes exceeds the frame payload limit (" +
        std::to_string(options_.max_frame_payload) + ")"));
    std::lock_guard<std::mutex> lock(stats_mu_);
    stats_.transport_errors += 1;
    return future;
  }
  {
    std::lock_guard<std::mutex> lock(pending_mu_);
    if (!broken_.ok()) {
      promise.set_value(broken_);
      std::lock_guard<std::mutex> stats_lock(stats_mu_);
      stats_.transport_errors += 1;
      return future;
    }
    Pending pending;
    pending.promise = std::move(promise);
    pending.request_bytes = request.size();
    pending_.emplace(id, std::move(pending));
  }
  std::string frame;
  AppendFrame(&frame, FrameType::kData, id, request);
  Status sent;
  {
    std::lock_guard<std::mutex> lock(write_mu_);
    sent = SendAll(fd_, frame);
  }
  if (!sent.ok()) {
    // The peer is gone for everyone, not just this call.
    FailAllPending(sent);
  }
  return future;
}

StatusOr<std::string> SocketTransport::Call(std::string_view request) {
  uint64_t id = 0;
  TransportFuture future = AsyncCallWithId(request, &id);
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(options_.call_timeout_ms);
  return CollectWithDeadline(&future, id, deadline);
}

std::vector<StatusOr<std::string>> SocketTransport::CallMany(
    const std::vector<std::string>& requests) {
  // Issue everything first (that's the whole point), then collect against
  // ONE shared deadline — the documented call_timeout bounds the batch the
  // same way it bounds a single Call.
  std::vector<uint64_t> ids(requests.size(), 0);
  std::vector<TransportFuture> futures;
  futures.reserve(requests.size());
  for (size_t i = 0; i < requests.size(); ++i) {
    futures.push_back(AsyncCallWithId(requests[i], &ids[i]));
  }
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(options_.call_timeout_ms);
  std::vector<StatusOr<std::string>> responses;
  responses.reserve(requests.size());
  for (size_t i = 0; i < requests.size(); ++i) {
    responses.push_back(CollectWithDeadline(&futures[i], ids[i], deadline));
  }
  return responses;
}

StatusOr<std::string> SocketTransport::CollectWithDeadline(
    TransportFuture* future, uint64_t id,
    std::chrono::steady_clock::time_point deadline) {
  if (options_.call_timeout_ms == 0 ||
      future->wait_until(deadline) == std::future_status::ready) {
    return future->get();
  }
  // Deregister the pending call so a LATE response is dropped by the
  // reader instead of being counted as a completed round trip — the caller
  // sees this call fail exactly once, in exactly one stats bucket. If the
  // entry is already gone, the response (or a connection failure) resolved
  // the future between the timeout and this lock: honor that result.
  {
    std::lock_guard<std::mutex> lock(pending_mu_);
    if (pending_.erase(id) == 0) return future->get();
  }
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    stats_.transport_errors += 1;
  }
  return Status::DeadlineExceeded(
      "call to " + endpoint_.ToString() + " exceeded " +
      std::to_string(options_.call_timeout_ms) + "ms");
}

void SocketTransport::FailAllPending(const Status& status) {
  std::unordered_map<uint64_t, Pending> orphaned;
  {
    std::lock_guard<std::mutex> lock(pending_mu_);
    if (broken_.ok()) broken_ = status;
    orphaned.swap(pending_);
  }
  if (!orphaned.empty()) {
    std::lock_guard<std::mutex> lock(stats_mu_);
    stats_.transport_errors += orphaned.size();
  }
  for (auto& [id, pending] : orphaned) {
    (void)id;
    pending.promise.set_value(status);
  }
}

void SocketTransport::ReaderLoop() {
  FrameDecoder decoder(options_.max_frame_payload);
  char buf[64 * 1024];
  for (;;) {
    ssize_t n = ::read(fd_, buf, sizeof(buf));
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) {
      Status eof = decoder.Finish();
      FailAllPending(eof.ok() ? Status::Unavailable(
                                    "peer " + endpoint_.ToString() +
                                    " closed the connection")
                              : eof);
      return;
    }
    decoder.Feed(std::string_view(buf, static_cast<size_t>(n)));
    for (;;) {
      Frame frame;
      auto next = decoder.Next(&frame);
      if (!next.ok()) {
        // Version skew on a response is still correlated (frozen header):
        // fail that one call with the clear status and keep the stream;
        // anything else is corruption — the stream is untrustworthy.
        if (next.status().code() == StatusCode::kUnimplemented) {
          std::promise<StatusOr<std::string>> waiter;
          bool found = false;
          {
            std::lock_guard<std::mutex> lock(pending_mu_);
            auto it = pending_.find(frame.id);
            if (it != pending_.end()) {
              waiter = std::move(it->second.promise);
              pending_.erase(it);
              found = true;
            }
          }
          if (found) {
            {
              std::lock_guard<std::mutex> lock(stats_mu_);
              stats_.transport_errors += 1;
            }
            waiter.set_value(next.status());
          }
          continue;
        }
        FailAllPending(next.status());
        return;
      }
      if (!*next) break;  // need more bytes
      std::promise<StatusOr<std::string>> waiter;
      size_t request_bytes = 0;
      bool found = false;
      {
        std::lock_guard<std::mutex> lock(pending_mu_);
        auto it = pending_.find(frame.id);
        if (it != pending_.end()) {
          waiter = std::move(it->second.promise);
          request_bytes = it->second.request_bytes;
          pending_.erase(it);
          found = true;
        }
      }
      if (!found) continue;  // response to an abandoned/unknown id
      if (frame.type == FrameType::kError) {
        {
          std::lock_guard<std::mutex> lock(stats_mu_);
          stats_.transport_errors += 1;
        }
        waiter.set_value(DecodeErrorPayload(frame.payload));
        continue;
      }
      {
        // One unit: a reader polling stats never sees a call counted
        // without its bytes (same contract as LoopbackTransport).
        std::lock_guard<std::mutex> lock(stats_mu_);
        stats_.calls += 1;
        stats_.request_bytes += request_bytes;
        stats_.response_bytes += frame.payload.size();
      }
      waiter.set_value(std::move(frame.payload));
    }
  }
}

TransportStats SocketTransport::stats() const {
  std::lock_guard<std::mutex> lock(stats_mu_);
  return stats_;
}

std::string SocketTransport::Name() const {
  return "socket(" + endpoint_.ToString() + ")";
}

// --------------------------------------------------------------- server ---

StatusOr<std::unique_ptr<SocketTransportServer>> SocketTransportServer::Bind(
    const Endpoint& endpoint, Options options) {
  MLCASK_ASSIGN_OR_RETURN(int fd, OpenSocket(endpoint, /*bind_side=*/true));
  Endpoint bound = endpoint;
  if (bound.kind == Endpoint::Kind::kTcp && bound.port == 0) {
    sockaddr_in addr{};
    socklen_t len = sizeof(addr);
    if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) == 0) {
      bound.port = ntohs(addr.sin_port);
    }
  }
  if (bound.kind == Endpoint::Kind::kTcp && bound.host.empty()) {
    bound.host = "127.0.0.1";  // the spec clients should dial
  }
  return std::unique_ptr<SocketTransportServer>(
      new SocketTransportServer(fd, std::move(bound), std::move(options)));
}

StatusOr<std::unique_ptr<SocketTransportServer>> SocketTransportServer::Bind(
    std::string_view spec, Options options) {
  MLCASK_ASSIGN_OR_RETURN(Endpoint ep, Endpoint::Parse(spec));
  return Bind(ep, std::move(options));
}

SocketTransportServer::SocketTransportServer(int listen_fd, Endpoint endpoint,
                                             Options options)
    : endpoint_(std::move(endpoint)),
      options_(std::move(options)),
      listen_fd_(listen_fd) {}

SocketTransportServer::~SocketTransportServer() { Shutdown(); }

Status SocketTransportServer::Serve(TransportHandler handler) {
  if (handler == nullptr) {
    return Status::InvalidArgument("Serve needs a handler");
  }
  std::lock_guard<std::mutex> lock(mu_);
  if (serving_) return Status::FailedPrecondition("server already serving");
  if (shutting_down_) return Status::FailedPrecondition("server shut down");
  handler_ = std::move(handler);
  serving_ = true;
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  return Status::Ok();
}

void SocketTransportServer::ReapFinishedLocked() {
  for (auto it = connections_.begin(); it != connections_.end();) {
    if ((*it)->done.load(std::memory_order_acquire)) {
      // The thread has (at most) its final return left; joining is
      // immediate and keeps a long-lived server from accumulating one
      // dead thread + fd per client that ever disconnected.
      if ((*it)->thread.joinable()) (*it)->thread.join();
      it = connections_.erase(it);
    } else {
      ++it;
    }
  }
}

void SocketTransportServer::AcceptLoop() {
  // Local copy: Shutdown() only shutdown()s the listen socket while this
  // thread runs and close()s it strictly AFTER joining us, so the fd stays
  // valid (if half-closed) for the whole loop and its number can never be
  // recycled to another socket under our feet.
  const int listen_fd = listen_fd_;
  for (;;) {
    int fd = ::accept(listen_fd, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // listen socket closed: shutdown
    }
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    std::lock_guard<std::mutex> lock(mu_);
    if (shutting_down_) {
      ::close(fd);
      return;
    }
    ReapFinishedLocked();
    connections_accepted_ += 1;
    auto connection = std::make_unique<Connection>();
    Connection* raw = connection.get();
    raw->fd = fd;
    connections_.push_back(std::move(connection));
    raw->thread = std::thread([this, raw] { ConnectionLoop(raw); });
  }
}

void SocketTransportServer::ConnectionLoop(Connection* connection) {
  const int fd = connection->fd;
  FrameDecoder decoder(options_.max_frame_payload);
  char buf[64 * 1024];
  bool alive = true;
  while (alive) {
    ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) break;  // peer gone or shutdown
    decoder.Feed(std::string_view(buf, static_cast<size_t>(n)));
    while (alive) {
      Frame frame;
      auto next = decoder.Next(&frame);
      if (!next.ok()) {
        if (next.status().code() == StatusCode::kUnimplemented) {
          // Version skew, id recovered from the frozen header: tell the
          // exact caller why with an ERROR frame, then keep serving — one
          // future-version message must not take down the session.
          std::string reply;
          AppendFrame(&reply, FrameType::kError, frame.id,
                      EncodeErrorPayload(next.status()));
          if (!SendAll(fd, reply).ok()) alive = false;
          continue;
        }
        // Garbled stream: nothing correlatable to answer. Closing fails the
        // peer's pending calls as Unavailable instead of hanging them.
        ::shutdown(fd, SHUT_RDWR);
        alive = false;
        break;
      }
      if (!*next) break;  // need more bytes
      if (frame.type != FrameType::kData) continue;  // clients send data only
      std::string response = handler_(frame.payload);
      std::string reply;
      if (response.size() > options_.max_frame_payload) {
        // Same refusal as the client side: an oversized frame would read
        // as stream corruption at the peer and kill its whole session.
        AppendFrame(&reply, FrameType::kError, frame.id,
                    EncodeErrorPayload(Status::FailedPrecondition(
                        "response of " + std::to_string(response.size()) +
                        " bytes exceeds the frame payload limit")));
      } else {
        AppendFrame(&reply, FrameType::kData, frame.id, response);
      }
      if (!SendAll(fd, reply).ok()) alive = false;
    }
  }
  // Retire the socket under mu_ so Shutdown never touches a recycled fd.
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (connection->fd >= 0) {
      ::close(connection->fd);
      connection->fd = -1;
    }
  }
  connection->done.store(true, std::memory_order_release);
}

void SocketTransportServer::Shutdown() {
  std::vector<std::unique_ptr<Connection>> to_join;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (shutting_down_ && listen_fd_ < 0 && connections_.empty()) {
      return;  // idempotent: a second Shutdown finds nothing to do
    }
    shutting_down_ = true;
    // Half-close only: the blocked accept() returns, but the fd number
    // stays reserved until the accept thread is joined — close()ing here
    // would let the kernel recycle it to an unrelated socket that the
    // still-running AcceptLoop then accept()s on.
    if (listen_fd_ >= 0) ::shutdown(listen_fd_, SHUT_RDWR);
    for (auto& connection : connections_) {
      if (connection->fd >= 0) ::shutdown(connection->fd, SHUT_RDWR);
    }
    to_join.swap(connections_);
  }
  if (accept_thread_.joinable()) accept_thread_.join();
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (listen_fd_ >= 0) {
      ::close(listen_fd_);
      listen_fd_ = -1;
    }
  }
  for (auto& connection : to_join) {
    if (connection->thread.joinable()) connection->thread.join();
    if (connection->fd >= 0) ::close(connection->fd);
  }
  if (endpoint_.kind == Endpoint::Kind::kUnix) {
    ::unlink(endpoint_.path.c_str());
  }
}

uint64_t SocketTransportServer::connections_accepted() const {
  std::lock_guard<std::mutex> lock(mu_);
  return connections_accepted_;
}

}  // namespace mlcask::storage
