#ifndef MLCASK_STORAGE_FORKBASE_ENGINE_H_
#define MLCASK_STORAGE_FORKBASE_ENGINE_H_

#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "storage/blob.h"
#include "storage/chunk_store.h"
#include "storage/chunker.h"
#include "storage/storage_engine.h"

namespace mlcask::storage {

/// ForkBase-style immutable storage: objects are chunked with content-defined
/// chunking into a shared content-addressable store, so repeated or partially
/// repeated versions of libraries and component outputs are de-duplicated at
/// chunk granularity (paper Sec. VII-C: "MLCask applies chunk level
/// de-duplication supported by its ForkBase storage engine").
class ForkBaseEngine : public StorageEngine {
 public:
  /// Defaults mirror the paper's observation that ForkBase writes take
  /// noticeably longer than folder archival (Fig. 6's storage bars) while
  /// staying a small fraction of pipeline time: a per-commit latency plus
  /// chunking cost on top of transfer (de-duplicated bytes transfer free).
  explicit ForkBaseEngine(
      StorageTimeModel time_model = {.per_put_latency_s = 0.1,
                                     .write_mb_per_s = 150.0,
                                     .read_mb_per_s = 300.0,
                                     .chunking_s_per_mb = 0.002},
      std::unique_ptr<Chunker> chunker = nullptr);

  StatusOr<PutResult> Put(const std::string& key,
                          std::string_view data) override;
  StatusOr<std::string> Get(const std::string& key) override;
  StatusOr<std::string> GetVersion(const Hash256& id) override;
  bool HasVersion(const Hash256& id) const override;
  std::vector<Hash256> Versions(const std::string& key) const override;
  std::vector<std::pair<std::string, Hash256>> ListAllVersions() const override;
  StatusOr<uint64_t> DeleteVersion(const Hash256& id) override;

  EngineStats stats() const override {
    std::lock_guard<std::mutex> lock(stats_mu_);
    return stats_;
  }
  std::string Name() const override { return "forkbase"; }
  double ReadCost(uint64_t bytes) const override {
    return time_model_.ReadSeconds(bytes);
  }

  /// Chunk-level accounting (distinct chunks, dedup ratio).
  ChunkStoreStats chunk_stats() const {
    std::shared_lock<std::shared_mutex> lock(mu_);
    return chunks_.stats();
  }

  // --- persistence access (storage/persistence.h) -------------------------

  const ChunkStore& chunk_store() const { return chunks_; }
  const std::unordered_map<Hash256, BlobRef, Hash256Hasher>& blobs() const {
    return blobs_;
  }
  const std::unordered_map<std::string, std::vector<Hash256>>& keys() const {
    return keys_;
  }

  /// Restores the version index from a persisted manifest (chunks are
  /// restored separately through the chunk store). Fails on duplicates.
  Status RestoreVersion(const std::string& key, const Hash256& id,
                        const BlobRef& ref);

  /// Overwrites the cumulative statistics (persisted alongside the data so
  /// CSS/CST accounting survives a restart).
  void RestoreStats(const EngineStats& stats) {
    std::lock_guard<std::mutex> lock(stats_mu_);
    stats_ = stats;
  }

  /// Mutable chunk-store access for restore. Restore runs single-threaded,
  /// before any worker touches the engine.
  ChunkStore* mutable_chunk_store() { return &chunks_; }

 private:
  StorageTimeModel time_model_;
  std::unique_ptr<Chunker> chunker_;
  // `mu_` guards the version maps and chunk store (shared for readers,
  // exclusive for writers); `stats_mu_` separately guards the cumulative
  // counters so hot read paths do not serialize on the map lock to account
  // their traffic.
  mutable std::shared_mutex mu_;
  mutable std::mutex stats_mu_;
  ChunkStore chunks_;
  // Version id -> blob handle; key -> version ids in insertion order.
  std::unordered_map<Hash256, BlobRef, Hash256Hasher> blobs_;
  std::unordered_map<std::string, std::vector<Hash256>> keys_;
  EngineStats stats_;
};

}  // namespace mlcask::storage

#endif  // MLCASK_STORAGE_FORKBASE_ENGINE_H_
