#ifndef MLCASK_STORAGE_BLOB_H_
#define MLCASK_STORAGE_BLOB_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/sha256.h"
#include "common/status.h"
#include "storage/chunk_store.h"
#include "storage/chunker.h"

namespace mlcask::storage {

/// Handle to a stored blob: the address of its index chunk plus sizes.
struct BlobRef {
  Hash256 root;            ///< Address of the index chunk.
  uint64_t size = 0;       ///< Total payload bytes.
  uint32_t num_chunks = 0; ///< Number of data chunks.

  bool operator==(const BlobRef& other) const {
    return root == other.root && size == other.size &&
           num_chunks == other.num_chunks;
  }
};

/// Result of a blob write, including how many bytes were new to the store
/// (used by the storage-time model: de-duplicated bytes cost no transfer).
struct BlobWriteInfo {
  BlobRef ref;
  uint64_t new_physical_bytes = 0;  ///< Bytes not already present.
  uint64_t dedup_bytes = 0;         ///< Bytes de-duplicated against the store.
};

/// The CPU-heavy half of a blob write — chunk boundaries, per-chunk hashes,
/// and the serialized index chunk with its hash. A pure function of `data`,
/// so a storage engine can compute it OUTSIDE its write lock and only
/// serialize the cheap map insertions (CommitBlob).
struct BlobPlan {
  std::vector<std::pair<size_t, size_t>> pieces;  ///< (offset, length).
  std::vector<Hash256> piece_hashes;
  std::string index;
  Hash256 index_hash;
};
BlobPlan PlanBlob(const Chunker& chunker, std::string_view data);

/// The insertion half: stores the planned chunks and index. The caller must
/// hold whatever lock guards `store`. `data` must be the same bytes the
/// plan was computed from.
BlobWriteInfo CommitBlob(ChunkStore* store, const BlobPlan& plan,
                         std::string_view data);

/// Writes `data` through `chunker` into `store` as data chunks plus one index
/// chunk (a single-level Merkle list: 32-byte child hash + 8-byte length per
/// entry). Identical regions of different blobs share data chunks; identical
/// blobs share everything including the index. Equivalent to
/// CommitBlob(store, PlanBlob(chunker, data), data).
BlobWriteInfo WriteBlob(ChunkStore* store, const Chunker& chunker,
                        std::string_view data);

/// Reassembles a blob. Returns Corruption if the index is malformed and
/// NotFound if any chunk is missing.
StatusOr<std::string> ReadBlob(const ChunkStore& store, const BlobRef& ref);

/// Lists the data-chunk addresses of a blob in order.
StatusOr<std::vector<Hash256>> ListBlobChunks(const ChunkStore& store,
                                              const BlobRef& ref);

/// Releases one reference on every chunk of the blob (index last).
Status ReleaseBlob(ChunkStore* store, const BlobRef& ref);

}  // namespace mlcask::storage

#endif  // MLCASK_STORAGE_BLOB_H_
