#ifndef MLCASK_STORAGE_ENDPOINT_H_
#define MLCASK_STORAGE_ENDPOINT_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "common/status.h"

namespace mlcask::storage {

/// A parsed transport endpoint. Every place that names a peer — the
/// `mlcask_server` binary, `ConnectCluster`, the socket transports — shares
/// this one URI-style grammar:
///
///   loopback:             in-process handler, zero-latency wire
///   unix:/path/to.sock    Unix-domain stream socket at that path
///   tcp:host:port         TCP to `host` (name or literal) on `port`;
///                         an empty host ("tcp::7777") means 127.0.0.1 for
///                         clients and INADDR_ANY for servers
///
/// The scheme prefix is mandatory: a bare "/path" or "host:port" is rejected
/// so a typo'd spec fails loudly instead of silently picking a transport.
struct Endpoint {
  enum class Kind { kLoopback, kUnix, kTcp };

  Kind kind = Kind::kLoopback;
  std::string path;  ///< Unix socket path (kUnix only).
  std::string host;  ///< TCP host, may be empty (kTcp only).
  uint16_t port = 0; ///< TCP port; 0 asks a server for an ephemeral port.

  /// Parses a spec string; malformed specs return InvalidArgument with the
  /// offending spec quoted.
  static StatusOr<Endpoint> Parse(std::string_view spec);

  /// Canonical spec string ("unix:/tmp/s.sock", "tcp:127.0.0.1:7777").
  std::string ToString() const;
};

}  // namespace mlcask::storage

#endif  // MLCASK_STORAGE_ENDPOINT_H_
