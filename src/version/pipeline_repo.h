#ifndef MLCASK_VERSION_PIPELINE_REPO_H_
#define MLCASK_VERSION_PIPELINE_REPO_H_

#include <map>
#include <string>
#include <vector>

#include "common/sim_clock.h"
#include "common/status.h"
#include "storage/branch_table.h"
#include "storage/storage_engine.h"
#include "version/commit.h"
#include "version/version_graph.h"

namespace mlcask::version {

/// The pipeline repository (paper Fig. 1): records version updates of a
/// pipeline with Git-like branch/commit semantics. Commit metafiles are
/// persisted through the configured storage engine (charging storage time);
/// the in-memory graph serves queries.
class PipelineRepo {
 public:
  /// `engine` and `clock` must outlive the repo and may be shared with other
  /// repositories and the executor.
  PipelineRepo(std::string name, storage::StorageEngine* engine,
               SimClock* clock);

  /// Creates the root commit on master. Fails if already initialized.
  StatusOr<Hash256> Init(const PipelineSnapshot& snapshot,
                         const std::string& author,
                         const std::string& message);

  /// Appends a commit to `branch` (parent = current head).
  StatusOr<Hash256> CommitOn(const std::string& branch,
                             const PipelineSnapshot& snapshot,
                             const std::string& author,
                             const std::string& message);

  /// Creates a merge commit on `base_branch` with parents
  /// {head(base_branch), merge_head} and advances the branch.
  StatusOr<Hash256> CommitMerge(const std::string& base_branch,
                                const Hash256& merge_head,
                                const PipelineSnapshot& snapshot,
                                const std::string& author,
                                const std::string& message);

  /// Forks `new_branch` off the head of `from_branch` (paper Sec. V:
  /// "MLCask is designed to support branch operations on every pipeline
  /// version").
  Status Branch(const std::string& new_branch, const std::string& from_branch);

  StatusOr<const Commit*> Head(const std::string& branch) const;
  StatusOr<const Commit*> Get(const Hash256& id) const;

  /// Common ancestor of two branch heads.
  StatusOr<Hash256> CommonAncestor(const std::string& branch_a,
                                   const std::string& branch_b) const;

  /// True when merging `merge_branch` into `base_branch` needs no search:
  /// the base head is an ancestor of the merge head (paper's fast-forward
  /// constraint).
  StatusOr<bool> CanFastForward(const std::string& base_branch,
                                const std::string& merge_branch) const;

  const std::string& name() const { return name_; }
  const VersionGraph& graph() const { return graph_; }
  const storage::BranchTable& branches() const { return branches_; }

  /// Tags: immutable named pointers to commits (release markers for the
  /// production/development separation of Sec. VIII). Unlike branches they
  /// never move; re-tagging an existing name fails.
  Status Tag(const std::string& tag_name, const Hash256& commit_id);
  StatusOr<const Commit*> GetTag(const std::string& tag_name) const;
  std::vector<std::string> Tags() const { return tags_.List(); }

  /// Serializes the complete repository state — commit graph, branch heads,
  /// tags, per-branch sequence counters — for durable storage alongside an
  /// engine checkpoint (storage::SaveEngine persists the artifacts; this
  /// persists the version history that references them).
  Json ExportState() const;

  /// Reconstructs a repository from ExportState() output. The engine/clock
  /// are re-bound (they are process-level resources, not state).
  static StatusOr<PipelineRepo> ImportState(const Json& state,
                                            storage::StorageEngine* engine,
                                            SimClock* clock);

 private:
  StatusOr<Hash256> StoreCommit(Commit commit);

  std::string name_;
  storage::StorageEngine* engine_;
  SimClock* clock_;
  VersionGraph graph_;
  storage::BranchTable branches_;
  storage::BranchTable tags_;
  std::map<std::string, uint32_t> branch_seq_;
};

}  // namespace mlcask::version

#endif  // MLCASK_VERSION_PIPELINE_REPO_H_
