#include "version/commit.h"

namespace mlcask::version {

Json ComponentRecord::ToJson() const {
  Json j = Json::Object();
  j.Set("name", Json::Str(name));
  j.Set("version", Json::Str(version.ToString(/*simplify_master=*/false)));
  j.Set("input_schema", Json::Int(static_cast<int64_t>(input_schema)));
  j.Set("output_schema", Json::Int(static_cast<int64_t>(output_schema)));
  j.Set("output_id", Json::Str(output_id.IsZero() ? "" : output_id.ToHex()));
  return j;
}

StatusOr<ComponentRecord> ComponentRecord::FromJson(const Json& j) {
  ComponentRecord r;
  r.name = j.GetString("name");
  if (r.name.empty()) {
    return Status::InvalidArgument("component record missing name");
  }
  MLCASK_ASSIGN_OR_RETURN(r.version,
                          SemanticVersion::Parse(j.GetString("version")));
  r.input_schema = static_cast<uint64_t>(j.GetInt("input_schema"));
  r.output_schema = static_cast<uint64_t>(j.GetInt("output_schema"));
  std::string hex = j.GetString("output_id");
  if (!hex.empty() && !Hash256::FromHex(hex, &r.output_id)) {
    return Status::InvalidArgument("bad output_id in component record");
  }
  return r;
}

bool ComponentRecord::operator==(const ComponentRecord& other) const {
  return name == other.name && version == other.version &&
         input_schema == other.input_schema &&
         output_schema == other.output_schema && output_id == other.output_id;
}

const ComponentRecord* PipelineSnapshot::Find(const std::string& name) const {
  for (const auto& c : components) {
    if (c.name == name) return &c;
  }
  return nullptr;
}

ComponentRecord* PipelineSnapshot::Find(const std::string& name) {
  for (auto& c : components) {
    if (c.name == name) return &c;
  }
  return nullptr;
}

Json PipelineSnapshot::ToJson() const {
  Json j = Json::Object();
  Json arr = Json::Array();
  for (const auto& c : components) arr.Append(c.ToJson());
  j.Set("components", std::move(arr));
  if (has_score()) {
    j.Set("score", Json::Number(score));
    j.Set("metric", Json::Str(metric));
  }
  if (!metrics.empty()) {
    Json m = Json::Object();
    for (const auto& [name, value] : metrics) {
      m.Set(name, Json::Number(value));
    }
    j.Set("metrics", std::move(m));
  }
  return j;
}

StatusOr<PipelineSnapshot> PipelineSnapshot::FromJson(const Json& j) {
  PipelineSnapshot s;
  const Json* arr = j.Get("components");
  if (arr == nullptr || !arr->is_array()) {
    return Status::InvalidArgument("snapshot missing components array");
  }
  for (size_t i = 0; i < arr->size(); ++i) {
    MLCASK_ASSIGN_OR_RETURN(ComponentRecord r,
                            ComponentRecord::FromJson(arr->at(i)));
    s.components.push_back(std::move(r));
  }
  if (j.Has("score")) {
    s.score = j.GetDouble("score");
    s.metric = j.GetString("metric");
  }
  const Json* m = j.Get("metrics");
  if (m != nullptr && m->is_object()) {
    for (const auto& [name, value] : m->items()) {
      if (value.is_number()) s.metrics[name] = value.AsDouble();
    }
  }
  return s;
}

Json Commit::ToJson() const {
  Json j = Json::Object();
  Json parents_arr = Json::Array();
  for (const auto& p : parents) parents_arr.Append(Json::Str(p.ToHex()));
  j.Set("parents", std::move(parents_arr));
  j.Set("branch", Json::Str(branch));
  j.Set("seq", Json::Int(seq));
  j.Set("author", Json::Str(author));
  j.Set("message", Json::Str(message));
  j.Set("sim_time", Json::Number(sim_time));
  j.Set("snapshot", snapshot.ToJson());
  return j;
}

StatusOr<Commit> Commit::FromJson(const Json& j) {
  Commit c;
  const Json* parents_arr = j.Get("parents");
  if (parents_arr != nullptr && parents_arr->is_array()) {
    for (size_t i = 0; i < parents_arr->size(); ++i) {
      Hash256 p;
      if (!Hash256::FromHex(parents_arr->at(i).AsString(), &p)) {
        return Status::InvalidArgument("bad parent hash in commit");
      }
      c.parents.push_back(p);
    }
  }
  c.branch = j.GetString("branch");
  c.seq = static_cast<uint32_t>(j.GetInt("seq"));
  c.author = j.GetString("author");
  c.message = j.GetString("message");
  c.sim_time = j.GetDouble("sim_time");
  const Json* snap = j.Get("snapshot");
  if (snap == nullptr) {
    return Status::InvalidArgument("commit missing snapshot");
  }
  MLCASK_ASSIGN_OR_RETURN(c.snapshot, PipelineSnapshot::FromJson(*snap));
  c.id = ComputeId(c);
  return c;
}

Hash256 Commit::ComputeId(const Commit& c) {
  return Sha256::Digest(c.ToJson().Dump());
}

}  // namespace mlcask::version
