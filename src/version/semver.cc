#include "version/semver.h"

#include <ostream>

#include "common/strings.h"

namespace mlcask::version {

std::string SemanticVersion::ToString(bool simplify_master) const {
  std::string num =
      std::to_string(schema) + "." + std::to_string(increment);
  if (simplify_master && branch == "master") return num;
  return branch + "@" + num;
}

StatusOr<SemanticVersion> SemanticVersion::Parse(std::string_view text) {
  SemanticVersion v;
  std::string_view rest = text;
  size_t at = text.find('@');
  if (at != std::string_view::npos) {
    if (at == 0) {
      return Status::InvalidArgument("semver has empty branch: '" +
                                     std::string(text) + "'");
    }
    v.branch = std::string(text.substr(0, at));
    rest = text.substr(at + 1);
  }
  size_t dot = rest.find('.');
  if (dot == std::string_view::npos) {
    return Status::InvalidArgument("semver missing '.': '" +
                                   std::string(text) + "'");
  }
  uint64_t schema = 0, increment = 0;
  if (!ParseUint(rest.substr(0, dot), &schema) ||
      !ParseUint(rest.substr(dot + 1), &increment)) {
    return Status::InvalidArgument("semver has non-numeric fields: '" +
                                   std::string(text) + "'");
  }
  v.schema = static_cast<uint32_t>(schema);
  v.increment = static_cast<uint32_t>(increment);
  return v;
}

SemanticVersion SemanticVersion::BumpIncrement() const {
  SemanticVersion v = *this;
  v.increment += 1;
  return v;
}

SemanticVersion SemanticVersion::BumpSchema() const {
  SemanticVersion v = *this;
  v.schema += 1;
  v.increment = 0;
  return v;
}

SemanticVersion SemanticVersion::OnBranch(std::string new_branch) const {
  SemanticVersion v = *this;
  v.branch = std::move(new_branch);
  return v;
}

bool SemanticVersion::operator<(const SemanticVersion& other) const {
  if (schema != other.schema) return schema < other.schema;
  if (increment != other.increment) return increment < other.increment;
  return branch < other.branch;
}

std::ostream& operator<<(std::ostream& os, const SemanticVersion& v) {
  return os << v.ToString();
}

}  // namespace mlcask::version
