#ifndef MLCASK_VERSION_COMMIT_H_
#define MLCASK_VERSION_COMMIT_H_

#include <cmath>
#include <cstdint>
#include <string>
#include <vector>

#include "common/json.h"
#include "common/sha256.h"
#include "common/status.h"
#include "version/semver.h"

namespace mlcask::version {

/// One component's entry in a pipeline snapshot: which version of the
/// component the pipeline uses, which schema it consumes/produces, and the
/// materialized output (checkpoint) if this component has been executed.
struct ComponentRecord {
  std::string name;                 ///< e.g. "feature_extract"
  SemanticVersion version;          ///< e.g. master@1.0
  uint64_t input_schema = 0;        ///< Schema id consumed (0 = source).
  uint64_t output_schema = 0;       ///< Schema id produced.
  Hash256 output_id;                ///< Artifact version id; zero if none.
  bool has_output() const { return !output_id.IsZero(); }

  Json ToJson() const;
  static StatusOr<ComponentRecord> FromJson(const Json& j);

  bool operator==(const ComponentRecord& other) const;
};

/// The state of a pipeline at one commit: its components in data-flow order
/// plus the evaluated metric score (NaN when the pipeline has not been run).
struct PipelineSnapshot {
  std::vector<ComponentRecord> components;
  double score = std::nan("");
  std::string metric;  ///< e.g. "accuracy", "1/mse"
  /// All evaluated metrics (score-oriented, higher better), keyed by name.
  std::map<std::string, double> metrics;

  bool has_score() const { return !std::isnan(score); }

  const ComponentRecord* Find(const std::string& name) const;
  ComponentRecord* Find(const std::string& name);

  Json ToJson() const;
  static StatusOr<PipelineSnapshot> FromJson(const Json& j);
};

/// An immutable commit in the pipeline version DAG. Merge commits have two
/// parents (HEAD first, MERGE_HEAD second), matching the paper's merge
/// semantics ("sets its parents to both MERGE_HEAD and HEAD").
struct Commit {
  Hash256 id;
  std::vector<Hash256> parents;
  std::string branch;
  uint32_t seq = 0;  ///< Per-branch sequence; renders as branch.0.seq.
  std::string author;
  std::string message;
  double sim_time = 0;  ///< Simulated commit time.
  PipelineSnapshot snapshot;

  /// The pipeline-version label used throughout the paper's figures,
  /// e.g. "master.0.2" or "Frank-dev.0.1".
  std::string Label() const {
    return branch + ".0." + std::to_string(seq);
  }

  /// Serializes the commit (excluding `id`) and hashes it to produce the
  /// commit id; deterministic given identical content.
  Json ToJson() const;
  static StatusOr<Commit> FromJson(const Json& j);
  static Hash256 ComputeId(const Commit& c);
};

}  // namespace mlcask::version

#endif  // MLCASK_VERSION_COMMIT_H_
