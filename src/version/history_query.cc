#include "version/history_query.h"

#include <cmath>

namespace mlcask::version {

const char* ComponentDiffKindName(ComponentDiff::Kind kind) {
  switch (kind) {
    case ComponentDiff::Kind::kUnchanged:
      return "unchanged";
    case ComponentDiff::Kind::kIncrement:
      return "increment";
    case ComponentDiff::Kind::kSchemaChange:
      return "schema-change";
    case ComponentDiff::Kind::kAdded:
      return "added";
    case ComponentDiff::Kind::kRemoved:
      return "removed";
  }
  return "unknown";
}

std::vector<const Commit*> HistoryQuery::AllCommits() const {
  std::vector<Hash256> heads;
  for (const std::string& branch : repo_->branches().List()) {
    auto head = repo_->branches().Head(branch);
    if (head.ok()) heads.push_back(*head);
  }
  return repo_->graph().ReachableFrom(heads);
}

std::vector<const Commit*> HistoryQuery::CommitsUsing(
    const std::string& component, const SemanticVersion& version) const {
  std::vector<const Commit*> out;
  for (const Commit* c : AllCommits()) {
    const ComponentRecord* rec = c->snapshot.Find(component);
    if (rec != nullptr && rec->version == version) out.push_back(c);
  }
  return out;
}

std::vector<const Commit*> HistoryQuery::CommitsWithScoreAtLeast(
    double min_score) const {
  std::vector<const Commit*> out;
  for (const Commit* c : AllCommits()) {
    if (c->snapshot.has_score() && c->snapshot.score >= min_score) {
      out.push_back(c);
    }
  }
  return out;
}

std::vector<const Commit*> HistoryQuery::CommitsInTimeRange(double from_s,
                                                            double to_s) const {
  std::vector<const Commit*> out;
  for (const Commit* c : AllCommits()) {
    if (c->sim_time >= from_s && c->sim_time <= to_s) out.push_back(c);
  }
  return out;
}

const Commit* HistoryQuery::BestByScore() const {
  const Commit* best = nullptr;
  for (const Commit* c : AllCommits()) {
    if (!c->snapshot.has_score()) continue;
    if (best == nullptr || c->snapshot.score > best->snapshot.score) {
      best = c;
    }
  }
  return best;
}

std::vector<std::pair<const Commit*, SemanticVersion>>
HistoryQuery::ComponentTimeline(const std::string& component) const {
  std::vector<std::pair<const Commit*, SemanticVersion>> out;
  for (const Commit* c : AllCommits()) {
    const ComponentRecord* rec = c->snapshot.Find(component);
    if (rec == nullptr) continue;
    if (out.empty() || !(out.back().second == rec->version)) {
      out.emplace_back(c, rec->version);
    }
  }
  return out;
}

StatusOr<std::vector<ComponentDiff>> HistoryQuery::Diff(
    const Hash256& from, const Hash256& to) const {
  MLCASK_ASSIGN_OR_RETURN(const Commit* a, repo_->Get(from));
  MLCASK_ASSIGN_OR_RETURN(const Commit* b, repo_->Get(to));
  std::vector<ComponentDiff> out;
  for (const ComponentRecord& rec_a : a->snapshot.components) {
    ComponentDiff d;
    d.name = rec_a.name;
    d.from = rec_a.version;
    const ComponentRecord* rec_b = b->snapshot.Find(rec_a.name);
    if (rec_b == nullptr) {
      d.kind = ComponentDiff::Kind::kRemoved;
    } else {
      d.to = rec_b->version;
      if (rec_a.version == rec_b->version) {
        d.kind = ComponentDiff::Kind::kUnchanged;
      } else if (rec_a.version.schema != rec_b->version.schema ||
                 rec_a.output_schema != rec_b->output_schema) {
        d.kind = ComponentDiff::Kind::kSchemaChange;
      } else {
        d.kind = ComponentDiff::Kind::kIncrement;
      }
    }
    out.push_back(std::move(d));
  }
  for (const ComponentRecord& rec_b : b->snapshot.components) {
    if (a->snapshot.Find(rec_b.name) == nullptr) {
      ComponentDiff d;
      d.name = rec_b.name;
      d.to = rec_b.version;
      d.kind = ComponentDiff::Kind::kAdded;
      out.push_back(std::move(d));
    }
  }
  return out;
}

}  // namespace mlcask::version
