#ifndef MLCASK_VERSION_HISTORY_QUERY_H_
#define MLCASK_VERSION_HISTORY_QUERY_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "version/pipeline_repo.h"

namespace mlcask::version {

/// A change to one component between two commits.
struct ComponentDiff {
  enum class Kind {
    kUnchanged,
    kIncrement,      ///< Compatible update (increment digit moved).
    kSchemaChange,   ///< Output schema changed (schema digit moved).
    kAdded,
    kRemoved,
  };
  std::string name;
  SemanticVersion from;  ///< Meaningless for kAdded.
  SemanticVersion to;    ///< Meaningless for kRemoved.
  Kind kind = Kind::kUnchanged;
};

const char* ComponentDiffKindName(ComponentDiff::Kind kind);

/// Read-only retrospective queries over a pipeline repository — the paper's
/// third challenge ("the demand for retrospective research on models and
/// data from different time periods further complicates the management of
/// massive pipeline versions"). All queries consider commits reachable from
/// any branch head.
class HistoryQuery {
 public:
  explicit HistoryQuery(const PipelineRepo* repo) : repo_(repo) {}

  /// Every reachable commit, oldest first (by sim time, then label).
  std::vector<const Commit*> AllCommits() const;

  /// Commits whose pipeline used `component` at exactly `version`.
  std::vector<const Commit*> CommitsUsing(const std::string& component,
                                          const SemanticVersion& version) const;

  /// Commits whose evaluated score is >= `min_score` (unscored excluded).
  std::vector<const Commit*> CommitsWithScoreAtLeast(double min_score) const;

  /// Commits whose sim_time lies in [from_s, to_s].
  std::vector<const Commit*> CommitsInTimeRange(double from_s,
                                                double to_s) const;

  /// The reachable commit with the highest score (nullptr if none scored).
  const Commit* BestByScore() const;

  /// The version trajectory of one component over time: (commit, version)
  /// whenever the version differs from the previous observation.
  std::vector<std::pair<const Commit*, SemanticVersion>> ComponentTimeline(
      const std::string& component) const;

  /// Per-component differences between two commits' snapshots.
  StatusOr<std::vector<ComponentDiff>> Diff(const Hash256& from,
                                            const Hash256& to) const;

 private:
  const PipelineRepo* repo_;
};

}  // namespace mlcask::version

#endif  // MLCASK_VERSION_HISTORY_QUERY_H_
