#include "version/pipeline_repo.h"

#include <algorithm>

namespace mlcask::version {

PipelineRepo::PipelineRepo(std::string name, storage::StorageEngine* engine,
                           SimClock* clock)
    : name_(std::move(name)), engine_(engine), clock_(clock) {}

StatusOr<Hash256> PipelineRepo::StoreCommit(Commit commit) {
  commit.id = Commit::ComputeId(commit);
  MLCASK_RETURN_IF_ERROR(graph_.Add(commit));
  // Persist the commit metafile; charges modeled storage time to the engine.
  MLCASK_ASSIGN_OR_RETURN(
      storage::PutResult put,
      engine_->Put("pipeline/" + name_ + "/commits", commit.ToJson().Dump()));
  if (clock_ != nullptr) clock_->Advance(put.storage_time_s);
  return commit.id;
}

StatusOr<Hash256> PipelineRepo::Init(const PipelineSnapshot& snapshot,
                                     const std::string& author,
                                     const std::string& message) {
  if (branches_.Exists("master")) {
    return Status::AlreadyExists("pipeline '" + name_ +
                                 "' already initialized");
  }
  Commit c;
  c.branch = "master";
  c.seq = 0;
  c.author = author;
  c.message = message;
  c.sim_time = clock_ != nullptr ? clock_->Now() : 0;
  c.snapshot = snapshot;
  MLCASK_ASSIGN_OR_RETURN(Hash256 id, StoreCommit(std::move(c)));
  branches_.Upsert("master", id);
  branch_seq_["master"] = 1;
  return id;
}

StatusOr<Hash256> PipelineRepo::CommitOn(const std::string& branch,
                                         const PipelineSnapshot& snapshot,
                                         const std::string& author,
                                         const std::string& message) {
  MLCASK_ASSIGN_OR_RETURN(Hash256 head, branches_.Head(branch));
  Commit c;
  c.parents = {head};
  c.branch = branch;
  c.seq = branch_seq_[branch]++;
  c.author = author;
  c.message = message;
  c.sim_time = clock_ != nullptr ? clock_->Now() : 0;
  c.snapshot = snapshot;
  MLCASK_ASSIGN_OR_RETURN(Hash256 id, StoreCommit(std::move(c)));
  MLCASK_RETURN_IF_ERROR(branches_.Move(branch, id));
  return id;
}

StatusOr<Hash256> PipelineRepo::CommitMerge(const std::string& base_branch,
                                            const Hash256& merge_head,
                                            const PipelineSnapshot& snapshot,
                                            const std::string& author,
                                            const std::string& message) {
  MLCASK_ASSIGN_OR_RETURN(Hash256 head, branches_.Head(base_branch));
  if (!graph_.Contains(merge_head)) {
    return Status::NotFound("merge head not in graph");
  }
  Commit c;
  c.parents = {head, merge_head};
  c.branch = base_branch;
  c.seq = branch_seq_[base_branch]++;
  c.author = author;
  c.message = message;
  c.sim_time = clock_ != nullptr ? clock_->Now() : 0;
  c.snapshot = snapshot;
  MLCASK_ASSIGN_OR_RETURN(Hash256 id, StoreCommit(std::move(c)));
  MLCASK_RETURN_IF_ERROR(branches_.Move(base_branch, id));
  return id;
}

Status PipelineRepo::Branch(const std::string& new_branch,
                            const std::string& from_branch) {
  MLCASK_ASSIGN_OR_RETURN(Hash256 head, branches_.Head(from_branch));
  MLCASK_RETURN_IF_ERROR(branches_.Create(new_branch, head));
  // First commit on the new branch is <branch>.0.0, matching Fig. 2's dev.0.0.
  branch_seq_[new_branch] = 0;
  return Status::Ok();
}

Status PipelineRepo::Tag(const std::string& tag_name,
                         const Hash256& commit_id) {
  if (!graph_.Contains(commit_id)) {
    return Status::NotFound("cannot tag unknown commit " +
                            commit_id.ShortHex());
  }
  return tags_.Create(tag_name, commit_id);
}

StatusOr<const Commit*> PipelineRepo::GetTag(const std::string& tag_name) const {
  MLCASK_ASSIGN_OR_RETURN(Hash256 id, tags_.Head(tag_name));
  return graph_.Get(id);
}

StatusOr<const Commit*> PipelineRepo::Head(const std::string& branch) const {
  MLCASK_ASSIGN_OR_RETURN(Hash256 head, branches_.Head(branch));
  return graph_.Get(head);
}

StatusOr<const Commit*> PipelineRepo::Get(const Hash256& id) const {
  return graph_.Get(id);
}

StatusOr<Hash256> PipelineRepo::CommonAncestor(
    const std::string& branch_a, const std::string& branch_b) const {
  MLCASK_ASSIGN_OR_RETURN(Hash256 a, branches_.Head(branch_a));
  MLCASK_ASSIGN_OR_RETURN(Hash256 b, branches_.Head(branch_b));
  return graph_.CommonAncestor(a, b);
}

StatusOr<bool> PipelineRepo::CanFastForward(
    const std::string& base_branch, const std::string& merge_branch) const {
  MLCASK_ASSIGN_OR_RETURN(Hash256 base, branches_.Head(base_branch));
  MLCASK_ASSIGN_OR_RETURN(Hash256 merge, branches_.Head(merge_branch));
  return graph_.IsAncestor(base, merge);
}

Json PipelineRepo::ExportState() const {
  Json state = Json::Object();
  state.Set("name", Json::Str(name_));

  // Commits reachable from any branch head or tag (the live history).
  std::vector<Hash256> roots;
  for (const std::string& b : branches_.List()) {
    auto head = branches_.Head(b);
    if (head.ok()) roots.push_back(*head);
  }
  for (const std::string& t : tags_.List()) {
    auto head = tags_.Head(t);
    if (head.ok()) roots.push_back(*head);
  }
  Json commits = Json::Array();
  for (const Commit* c : graph_.ReachableFrom(roots)) {
    commits.Append(c->ToJson());
  }
  state.Set("commits", std::move(commits));

  Json branches = Json::Object();
  for (const std::string& b : branches_.List()) {
    branches.Set(b, Json::Str((*branches_.Head(b)).ToHex()));
  }
  state.Set("branches", std::move(branches));

  Json tags = Json::Object();
  for (const std::string& t : tags_.List()) {
    tags.Set(t, Json::Str((*tags_.Head(t)).ToHex()));
  }
  state.Set("tags", std::move(tags));

  Json seqs = Json::Object();
  for (const auto& [branch, seq] : branch_seq_) {
    seqs.Set(branch, Json::Int(seq));
  }
  state.Set("branch_seq", std::move(seqs));
  return state;
}

StatusOr<PipelineRepo> PipelineRepo::ImportState(
    const Json& state, storage::StorageEngine* engine, SimClock* clock) {
  PipelineRepo repo(state.GetString("name"), engine, clock);
  if (repo.name_.empty()) {
    return Status::InvalidArgument("repo state missing name");
  }
  const Json* commits = state.Get("commits");
  if (commits == nullptr || !commits->is_array()) {
    return Status::InvalidArgument("repo state missing commits");
  }
  // Insert commits parents-first: keep retrying the pending set; the graph
  // is acyclic, so every pass places at least one commit.
  std::vector<Commit> pending;
  for (size_t i = 0; i < commits->size(); ++i) {
    MLCASK_ASSIGN_OR_RETURN(Commit c, Commit::FromJson(commits->at(i)));
    pending.push_back(std::move(c));
  }
  while (!pending.empty()) {
    size_t placed = 0;
    for (auto it = pending.begin(); it != pending.end();) {
      bool parents_ready = std::all_of(
          it->parents.begin(), it->parents.end(),
          [&](const Hash256& p) { return repo.graph_.Contains(p); });
      if (parents_ready) {
        MLCASK_RETURN_IF_ERROR(repo.graph_.Add(*it));
        it = pending.erase(it);
        ++placed;
      } else {
        ++it;
      }
    }
    if (placed == 0) {
      return Status::Corruption(
          "repo state has commits with unresolvable parents");
    }
  }

  auto restore_table = [&](const char* key, storage::BranchTable* table)
      -> Status {
    const Json* entries = state.Get(key);
    if (entries == nullptr) return Status::Ok();
    for (const auto& [name, hex] : entries->items()) {
      Hash256 id;
      if (!hex.is_string() || !Hash256::FromHex(hex.AsString(), &id)) {
        return Status::InvalidArgument(std::string("bad ref in ") + key);
      }
      if (!repo.graph_.Contains(id)) {
        return Status::Corruption(std::string(key) + " entry '" + name +
                                  "' references unknown commit");
      }
      table->Upsert(name, id);
    }
    return Status::Ok();
  };
  MLCASK_RETURN_IF_ERROR(restore_table("branches", &repo.branches_));
  MLCASK_RETURN_IF_ERROR(restore_table("tags", &repo.tags_));

  const Json* seqs = state.Get("branch_seq");
  if (seqs != nullptr && seqs->is_object()) {
    for (const auto& [branch, seq] : seqs->items()) {
      repo.branch_seq_[branch] = static_cast<uint32_t>(seq.AsInt());
    }
  }
  return repo;
}

}  // namespace mlcask::version
