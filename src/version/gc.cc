#include "version/gc.h"

#include <unordered_set>

#include "common/strings.h"

namespace mlcask::version {

StatusOr<GcStats> CollectArtifactGarbage(const PipelineRepo& repo,
                                         storage::StorageEngine* engine) {
  GcStats stats;

  // Mark: every output referenced by a commit reachable from a branch head.
  std::vector<Hash256> heads;
  for (const std::string& branch : repo.branches().List()) {
    auto head = repo.branches().Head(branch);
    if (head.ok()) heads.push_back(*head);
  }
  std::unordered_set<Hash256, Hash256Hasher> referenced;
  for (const Commit* commit : repo.graph().ReachableFrom(heads)) {
    for (const ComponentRecord& rec : commit->snapshot.components) {
      if (rec.has_output()) referenced.insert(rec.output_id);
    }
  }

  // Sweep: artifact versions not in the referenced set.
  for (const auto& [key, id] : engine->ListAllVersions()) {
    if (!StartsWith(key, "artifact/")) continue;
    stats.artifacts_examined += 1;
    if (referenced.count(id) != 0) continue;
    MLCASK_ASSIGN_OR_RETURN(uint64_t freed, engine->DeleteVersion(id));
    stats.artifacts_deleted += 1;
    stats.bytes_freed += freed;
  }
  return stats;
}

}  // namespace mlcask::version
