#ifndef MLCASK_VERSION_SEMVER_H_
#define MLCASK_VERSION_SEMVER_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "common/status.h"

namespace mlcask::version {

/// MLCask's semantic component version (paper Sec. IV-B):
/// `branch@schema.increment`, where `schema` changes only when the
/// component's *output data schema* changes (breaking downstream
/// compatibility) and `increment` counts compatible updates. Components on
/// the master branch render without the branch prefix ("0.1" instead of
/// "master@0.1").
struct SemanticVersion {
  std::string branch = "master";
  uint32_t schema = 0;
  uint32_t increment = 0;

  /// Initial version of a freshly committed library is 0.0 on master.
  static SemanticVersion Initial(std::string branch = "master") {
    SemanticVersion v;
    v.branch = std::move(branch);
    return v;
  }

  /// "master@0.1" (or "0.1" when `simplify_master`). This is the identifier
  /// shown in the paper's figures.
  std::string ToString(bool simplify_master = true) const;

  /// Parses "branch@schema.increment" or "schema.increment" (implies master).
  static StatusOr<SemanticVersion> Parse(std::string_view text);

  /// A compatible update: bumps increment only.
  SemanticVersion BumpIncrement() const;

  /// An output-schema update: bumps schema, resets increment. Downstream
  /// components must be updated before they can consume this version.
  SemanticVersion BumpSchema() const;

  /// Re-homes the version onto another branch (used when branching a
  /// pipeline: component identities carry their origin branch).
  SemanticVersion OnBranch(std::string new_branch) const;

  bool operator==(const SemanticVersion& other) const {
    return branch == other.branch && schema == other.schema &&
           increment == other.increment;
  }
  bool operator!=(const SemanticVersion& other) const {
    return !(*this == other);
  }
  /// Orders by (schema, increment) then branch — total order for containers.
  bool operator<(const SemanticVersion& other) const;
};

std::ostream& operator<<(std::ostream& os, const SemanticVersion& v);

}  // namespace mlcask::version

#endif  // MLCASK_VERSION_SEMVER_H_
