#ifndef MLCASK_VERSION_GC_H_
#define MLCASK_VERSION_GC_H_

#include <cstdint>

#include "common/status.h"
#include "storage/storage_engine.h"
#include "version/pipeline_repo.h"

namespace mlcask::version {

/// Result of a retention pass.
struct GcStats {
  uint64_t artifacts_examined = 0;
  uint64_t artifacts_deleted = 0;
  uint64_t bytes_freed = 0;  ///< Physical bytes actually reclaimed.
};

/// Deletes materialized component outputs ("artifact/..." objects) that are
/// not referenced by any commit reachable from a branch head of `repo`.
///
/// Merge searches and abandoned trial runs can leave behind outputs that no
/// surviving pipeline version points to; on the ForkBase engine only chunks
/// exclusively owned by garbage artifacts are physically reclaimed (shared
/// chunks stay, which is exactly the safe behaviour for de-duplicated
/// storage). Library metafiles and commit objects are never collected —
/// full historical traceability is an MLCask design goal.
StatusOr<GcStats> CollectArtifactGarbage(const PipelineRepo& repo,
                                         storage::StorageEngine* engine);

}  // namespace mlcask::version

#endif  // MLCASK_VERSION_GC_H_
