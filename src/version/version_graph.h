#ifndef MLCASK_VERSION_VERSION_GRAPH_H_
#define MLCASK_VERSION_VERSION_GRAPH_H_

#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/sha256.h"
#include "common/status.h"
#include "version/commit.h"

namespace mlcask::version {

/// The commit DAG of one pipeline. Nodes are commits; edges point from child
/// to parent(s). Supports the queries the merge operation needs: common
/// ancestor of HEAD and MERGE_HEAD, and the commits developed on each branch
/// since that ancestor (which define the component search space, Sec. V).
class VersionGraph {
 public:
  /// Adds a commit whose parents must already be present (roots have none).
  /// The commit id must match Commit::ComputeId.
  Status Add(const Commit& commit);

  StatusOr<const Commit*> Get(const Hash256& id) const;
  bool Contains(const Hash256& id) const;
  size_t size() const { return commits_.size(); }

  /// True iff `ancestor` is reachable from `descendant` via parent edges
  /// (a commit is its own ancestor).
  bool IsAncestor(const Hash256& ancestor, const Hash256& descendant) const;

  /// Lowest common ancestor of two commits: a common ancestor that is not a
  /// strict ancestor of any other common ancestor (Git's merge-base). When
  /// multiple such candidates exist, the one with the greatest sim_time is
  /// returned (deterministic tiebreak on id). NotFound when the commits share
  /// no history.
  StatusOr<Hash256> CommonAncestor(const Hash256& a, const Hash256& b) const;

  /// All commits reachable from `from` (inclusive) that are NOT reachable
  /// from `stop` (exclusive of stop and its ancestors) — i.e. the commits
  /// developed on a branch since the common ancestor. Ordered oldest-first
  /// by (sim_time, seq).
  std::vector<const Commit*> CommitsSince(const Hash256& from,
                                          const Hash256& stop) const;

  /// First-parent history walk from `from`, newest first, up to `limit`.
  std::vector<const Commit*> Log(const Hash256& from,
                                 size_t limit = SIZE_MAX) const;

  /// All commits reachable from any of `roots` (inclusive) via parent edges,
  /// ordered oldest-first by (sim_time, seq, id). Unknown roots are ignored.
  std::vector<const Commit*> ReachableFrom(
      const std::vector<Hash256>& roots) const;

 private:
  std::unordered_set<Hash256, Hash256Hasher> Ancestors(const Hash256& id) const;

  std::unordered_map<Hash256, Commit, Hash256Hasher> commits_;
};

}  // namespace mlcask::version

#endif  // MLCASK_VERSION_VERSION_GRAPH_H_
