#include "version/version_graph.h"

#include <algorithm>
#include <deque>

namespace mlcask::version {

Status VersionGraph::Add(const Commit& commit) {
  if (commit.id != Commit::ComputeId(commit)) {
    return Status::InvalidArgument("commit id does not match content");
  }
  if (commits_.count(commit.id) != 0) {
    return Status::AlreadyExists("commit " + commit.id.ShortHex() +
                                 " already in graph");
  }
  for (const Hash256& p : commit.parents) {
    if (commits_.count(p) == 0) {
      return Status::FailedPrecondition("parent " + p.ShortHex() +
                                        " not in graph");
    }
  }
  commits_.emplace(commit.id, commit);
  return Status::Ok();
}

StatusOr<const Commit*> VersionGraph::Get(const Hash256& id) const {
  auto it = commits_.find(id);
  if (it == commits_.end()) {
    return Status::NotFound("commit " + id.ShortHex() + " not in graph");
  }
  return &it->second;
}

bool VersionGraph::Contains(const Hash256& id) const {
  return commits_.count(id) != 0;
}

std::unordered_set<Hash256, Hash256Hasher> VersionGraph::Ancestors(
    const Hash256& id) const {
  std::unordered_set<Hash256, Hash256Hasher> seen;
  std::deque<Hash256> queue;
  if (commits_.count(id) != 0) {
    queue.push_back(id);
    seen.insert(id);
  }
  while (!queue.empty()) {
    Hash256 cur = queue.front();
    queue.pop_front();
    const Commit& c = commits_.at(cur);
    for (const Hash256& p : c.parents) {
      if (seen.insert(p).second) queue.push_back(p);
    }
  }
  return seen;
}

bool VersionGraph::IsAncestor(const Hash256& ancestor,
                              const Hash256& descendant) const {
  if (commits_.count(ancestor) == 0 || commits_.count(descendant) == 0) {
    return false;
  }
  auto anc = Ancestors(descendant);
  return anc.count(ancestor) != 0;
}

StatusOr<Hash256> VersionGraph::CommonAncestor(const Hash256& a,
                                               const Hash256& b) const {
  if (commits_.count(a) == 0 || commits_.count(b) == 0) {
    return Status::NotFound("commit not in graph");
  }
  auto anc_a = Ancestors(a);
  auto anc_b = Ancestors(b);
  std::vector<Hash256> common;
  for (const Hash256& h : anc_a) {
    if (anc_b.count(h) != 0) common.push_back(h);
  }
  if (common.empty()) {
    return Status::NotFound("commits share no history");
  }
  // Keep only candidates that are not strict ancestors of another candidate.
  std::vector<Hash256> best;
  for (const Hash256& cand : common) {
    bool dominated = false;
    for (const Hash256& other : common) {
      if (other != cand && IsAncestor(cand, other)) {
        dominated = true;
        break;
      }
    }
    if (!dominated) best.push_back(cand);
  }
  // Deterministic pick: latest sim_time, then lexicographically smallest id.
  std::sort(best.begin(), best.end(), [this](const Hash256& x, const Hash256& y) {
    const Commit& cx = commits_.at(x);
    const Commit& cy = commits_.at(y);
    if (cx.sim_time != cy.sim_time) return cx.sim_time > cy.sim_time;
    return x < y;
  });
  return best.front();
}

std::vector<const Commit*> VersionGraph::CommitsSince(
    const Hash256& from, const Hash256& stop) const {
  std::vector<const Commit*> out;
  if (commits_.count(from) == 0) return out;
  auto stop_set = Ancestors(stop);
  std::unordered_set<Hash256, Hash256Hasher> seen;
  std::deque<Hash256> queue{from};
  seen.insert(from);
  while (!queue.empty()) {
    Hash256 cur = queue.front();
    queue.pop_front();
    if (stop_set.count(cur) != 0) continue;
    const Commit& c = commits_.at(cur);
    out.push_back(&c);
    for (const Hash256& p : c.parents) {
      if (seen.insert(p).second) queue.push_back(p);
    }
  }
  std::sort(out.begin(), out.end(), [](const Commit* x, const Commit* y) {
    if (x->sim_time != y->sim_time) return x->sim_time < y->sim_time;
    if (x->seq != y->seq) return x->seq < y->seq;
    return x->id < y->id;
  });
  return out;
}

std::vector<const Commit*> VersionGraph::ReachableFrom(
    const std::vector<Hash256>& roots) const {
  std::unordered_set<Hash256, Hash256Hasher> seen;
  std::deque<Hash256> queue;
  for (const Hash256& root : roots) {
    if (commits_.count(root) != 0 && seen.insert(root).second) {
      queue.push_back(root);
    }
  }
  std::vector<const Commit*> out;
  while (!queue.empty()) {
    Hash256 cur = queue.front();
    queue.pop_front();
    const Commit& c = commits_.at(cur);
    out.push_back(&c);
    for (const Hash256& p : c.parents) {
      if (seen.insert(p).second) queue.push_back(p);
    }
  }
  std::sort(out.begin(), out.end(), [](const Commit* x, const Commit* y) {
    if (x->sim_time != y->sim_time) return x->sim_time < y->sim_time;
    if (x->seq != y->seq) return x->seq < y->seq;
    return x->id < y->id;
  });
  return out;
}

std::vector<const Commit*> VersionGraph::Log(const Hash256& from,
                                             size_t limit) const {
  std::vector<const Commit*> out;
  Hash256 cur = from;
  while (out.size() < limit) {
    auto it = commits_.find(cur);
    if (it == commits_.end()) break;
    out.push_back(&it->second);
    if (it->second.parents.empty()) break;
    cur = it->second.parents.front();
  }
  return out;
}

}  // namespace mlcask::version
