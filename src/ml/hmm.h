#ifndef MLCASK_ML_HMM_H_
#define MLCASK_ML_HMM_H_

#include <cstdint>
#include <vector>

#include "common/status.h"

namespace mlcask::ml {

/// Configuration for the Gaussian hidden Markov model.
struct HmmConfig {
  size_t num_states = 3;
  int em_iterations = 10;
  uint64_t seed = 1;
  double min_variance = 1e-3;
};

/// A univariate Gaussian HMM fit with Baum-Welch EM, used by the DPM
/// pipeline's third step (paper Sec. VII-A: "a Hidden Markov Modeling model
/// is designed to process the extracted medical features so that they become
/// unbiased"). `Smooth` replaces each observation with its posterior expected
/// state mean — a debiasing/denoising pass over longitudinal lab values.
class GaussianHmm {
 public:
  /// Fits on a sequence of observations.
  Status Fit(const std::vector<double>& sequence, const HmmConfig& config);

  /// Posterior-smoothed reconstruction of a sequence (forward-backward).
  StatusOr<std::vector<double>> Smooth(const std::vector<double>& sequence) const;

  /// Per-observation posterior state probabilities (T x K row-major).
  StatusOr<std::vector<double>> Posteriors(
      const std::vector<double>& sequence) const;

  /// Log-likelihood of a sequence under the fitted model.
  StatusOr<double> LogLikelihood(const std::vector<double>& sequence) const;

  bool fitted() const { return !means_.empty(); }
  const std::vector<double>& means() const { return means_; }
  const std::vector<double>& variances() const { return variances_; }
  const std::vector<double>& initial() const { return initial_; }
  /// Row-major K x K transition matrix.
  const std::vector<double>& transitions() const { return transitions_; }

 private:
  /// Scaled forward-backward; returns per-step scaling factors, alpha, beta.
  Status ForwardBackward(const std::vector<double>& seq,
                         std::vector<double>* alpha,
                         std::vector<double>* beta,
                         std::vector<double>* scale) const;
  double Emission(size_t state, double x) const;

  size_t k_ = 0;
  double min_variance_ = 1e-3;
  std::vector<double> initial_;
  std::vector<double> transitions_;
  std::vector<double> means_;
  std::vector<double> variances_;
};

}  // namespace mlcask::ml

#endif  // MLCASK_ML_HMM_H_
