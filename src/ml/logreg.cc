#include "ml/logreg.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/rng.h"

namespace mlcask::ml {

namespace {

double Sigmoid(double z) {
  if (z >= 0) {
    double e = std::exp(-z);
    return 1.0 / (1.0 + e);
  }
  double e = std::exp(z);
  return e / (1.0 + e);
}

}  // namespace

Status LogisticRegression::Fit(const Matrix& x, const std::vector<double>& y,
                               const SgdConfig& config) {
  if (x.rows() != y.size()) {
    return Status::InvalidArgument("rows/labels mismatch in LogReg::Fit");
  }
  if (x.rows() == 0) {
    return Status::InvalidArgument("empty training set");
  }
  const size_t n = x.rows();
  const size_t d = x.cols();
  weights_.assign(d, 0.0);
  bias_ = 0.0;

  Pcg32 rng(config.seed);
  std::vector<size_t> order(n);
  std::iota(order.begin(), order.end(), 0);

  for (int epoch = 0; epoch < config.epochs; ++epoch) {
    rng.Shuffle(&order);
    double loss_sum = 0;
    size_t batch_count = 0;
    std::vector<double> grad(d, 0.0);
    double grad_bias = 0;
    for (size_t start = 0; start < n; start += config.batch_size) {
      size_t end = std::min(n, start + config.batch_size);
      std::fill(grad.begin(), grad.end(), 0.0);
      grad_bias = 0;
      for (size_t bi = start; bi < end; ++bi) {
        size_t i = order[bi];
        const double* row = x.Row(i);
        double z = bias_;
        for (size_t j = 0; j < d; ++j) z += weights_[j] * row[j];
        double p = Sigmoid(z);
        double err = p - y[i];
        for (size_t j = 0; j < d; ++j) grad[j] += err * row[j];
        grad_bias += err;
        double pc = std::clamp(p, 1e-12, 1.0 - 1e-12);
        loss_sum += y[i] > 0.5 ? -std::log(pc) : -std::log(1.0 - pc);
      }
      double scale = config.learning_rate / static_cast<double>(end - start);
      for (size_t j = 0; j < d; ++j) {
        weights_[j] -= scale * grad[j] + config.learning_rate * config.l2 * weights_[j];
      }
      bias_ -= scale * grad_bias;
      ++batch_count;
    }
    (void)batch_count;
    final_loss_ = loss_sum / static_cast<double>(n);
  }
  return Status::Ok();
}

StatusOr<std::vector<double>> LogisticRegression::PredictProba(
    const Matrix& x) const {
  if (!fitted()) {
    return Status::FailedPrecondition("LogisticRegression not fitted");
  }
  if (x.cols() != weights_.size()) {
    return Status::InvalidArgument("feature width mismatch in PredictProba");
  }
  std::vector<double> out;
  out.reserve(x.rows());
  for (size_t i = 0; i < x.rows(); ++i) {
    const double* row = x.Row(i);
    double z = bias_;
    for (size_t j = 0; j < weights_.size(); ++j) z += weights_[j] * row[j];
    out.push_back(Sigmoid(z));
  }
  return out;
}

}  // namespace mlcask::ml
