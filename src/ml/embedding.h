#ifndef MLCASK_ML_EMBEDDING_H_
#define MLCASK_ML_EMBEDDING_H_

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace mlcask::ml {

/// Tokenizes on whitespace after lower-casing and stripping punctuation.
std::vector<std::string> Tokenize(std::string_view text);

/// Configuration for the co-occurrence embedding trainer.
struct EmbeddingConfig {
  size_t dims = 16;
  size_t window = 2;
  size_t max_vocab = 2000;
  int power_iterations = 12;
  uint64_t seed = 1;
};

/// Word embeddings from a PPMI-weighted co-occurrence matrix factorized by
/// orthogonal power iteration — the costly corpus pre-processing step of the
/// paper's SA pipeline ("process the external corpora and pre-trained word
/// embeddings"). Training cost scales with vocab² per iteration, which gives
/// the SA pipeline its expensive pre-processing profile (Fig. 6c).
class WordEmbedding {
 public:
  /// Builds vocab + co-occurrence from documents and factorizes.
  Status Fit(const std::vector<std::string>& documents,
             const EmbeddingConfig& config);

  /// The embedding of a word; zero vector for out-of-vocabulary words.
  std::vector<double> Lookup(const std::string& word) const;

  /// Mean of the word vectors of a document's tokens (zero if none hit).
  std::vector<double> Embed(std::string_view document) const;

  bool fitted() const { return dims_ > 0; }
  size_t vocab_size() const { return vocab_.size(); }
  size_t dims() const { return dims_; }

 private:
  size_t dims_ = 0;
  std::map<std::string, size_t> vocab_;
  std::vector<double> vectors_;  // vocab x dims row-major
};

}  // namespace mlcask::ml

#endif  // MLCASK_ML_EMBEDDING_H_
