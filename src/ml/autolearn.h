#ifndef MLCASK_ML_AUTOLEARN_H_
#define MLCASK_ML_AUTOLEARN_H_

#include <cstddef>
#include <string>
#include <vector>

#include "common/status.h"
#include "ml/matrix.h"

namespace mlcask::ml {

/// Configuration for Autolearn-style feature construction.
struct AutolearnConfig {
  bool generate_ratios = true;
  bool generate_products = true;
  /// Keep this many constructed features (ranked by |corr with label|).
  size_t keep_top_k = 32;
  /// Pairs are only expanded for the top `base_pool` original features
  /// (ranked by |corr|), bounding the O(d²) blow-up.
  size_t base_pool = 12;
};

/// Result of feature generation/selection.
struct AutolearnResult {
  Matrix features;                  ///< n x keep (selected generated + base).
  std::vector<std::string> names;   ///< Feature names ("f3/f7", "f1*f2", ...).
};

/// Automated feature generation and selection in the spirit of AutoLearn
/// (Kaul et al., ICDM 2017), which the paper's Autolearn pipeline uses for
/// its costly pre-processing: pairwise ratio/product features are generated
/// from the base features and filtered by absolute Pearson correlation with
/// the label.
StatusOr<AutolearnResult> GenerateAndSelectFeatures(
    const Matrix& x, const std::vector<double>& y,
    const AutolearnConfig& config);

/// Pearson correlation between two equal-length vectors (0 if degenerate).
double PearsonCorrelation(const std::vector<double>& a,
                          const std::vector<double>& b);

}  // namespace mlcask::ml

#endif  // MLCASK_ML_AUTOLEARN_H_
