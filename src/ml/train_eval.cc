#include "ml/train_eval.h"

#include <numeric>

#include "common/rng.h"

namespace mlcask::ml {

StatusOr<TrainTestSplit> SplitData(const Matrix& x,
                                   const std::vector<double>& y,
                                   double test_fraction, uint64_t seed) {
  if (x.rows() != y.size()) {
    return Status::InvalidArgument("rows/labels mismatch in SplitData");
  }
  if (x.rows() < 2) {
    return Status::InvalidArgument("need at least two rows to split");
  }
  if (test_fraction <= 0.0 || test_fraction >= 1.0) {
    return Status::InvalidArgument("test_fraction must be in (0, 1)");
  }
  const size_t n = x.rows();
  size_t n_test = static_cast<size_t>(static_cast<double>(n) * test_fraction);
  if (n_test == 0) n_test = 1;
  if (n_test >= n) n_test = n - 1;
  const size_t n_train = n - n_test;

  std::vector<size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  Pcg32 rng(seed);
  rng.Shuffle(&order);

  TrainTestSplit out;
  out.x_train = Matrix(n_train, x.cols());
  out.x_test = Matrix(n_test, x.cols());
  out.y_train.reserve(n_train);
  out.y_test.reserve(n_test);
  for (size_t i = 0; i < n; ++i) {
    size_t src = order[i];
    if (i < n_train) {
      for (size_t j = 0; j < x.cols(); ++j) {
        out.x_train.At(i, j) = x.At(src, j);
      }
      out.y_train.push_back(y[src]);
    } else {
      size_t r = i - n_train;
      for (size_t j = 0; j < x.cols(); ++j) {
        out.x_test.At(r, j) = x.At(src, j);
      }
      out.y_test.push_back(y[src]);
    }
  }
  return out;
}

}  // namespace mlcask::ml
