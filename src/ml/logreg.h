#ifndef MLCASK_ML_LOGREG_H_
#define MLCASK_ML_LOGREG_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "ml/matrix.h"

namespace mlcask::ml {

/// Training configuration shared by the gradient-based models.
struct SgdConfig {
  double learning_rate = 0.1;
  int epochs = 20;
  double l2 = 1e-4;
  uint64_t seed = 1;
  size_t batch_size = 32;
};

/// Binary logistic regression trained with mini-batch SGD.
class LogisticRegression {
 public:
  /// Fits on features X (rows = examples) and 0/1 labels y.
  Status Fit(const Matrix& x, const std::vector<double>& y,
             const SgdConfig& config);

  /// P(y=1 | x) per row. Fails if the model is unfit or width mismatches.
  StatusOr<std::vector<double>> PredictProba(const Matrix& x) const;

  bool fitted() const { return !weights_.empty(); }
  const std::vector<double>& weights() const { return weights_; }
  double bias() const { return bias_; }
  /// Mean training log-loss of the final epoch.
  double final_loss() const { return final_loss_; }

 private:
  std::vector<double> weights_;
  double bias_ = 0;
  double final_loss_ = 0;
};

}  // namespace mlcask::ml

#endif  // MLCASK_ML_LOGREG_H_
