#ifndef MLCASK_ML_METRICS_H_
#define MLCASK_ML_METRICS_H_

#include <vector>

#include "common/status.h"

namespace mlcask::ml {

/// Fraction of predictions whose thresholded class matches the 0/1 label.
StatusOr<double> Accuracy(const std::vector<double>& scores,
                          const std::vector<double>& labels,
                          double threshold = 0.5);

/// Mean squared error.
StatusOr<double> MeanSquaredError(const std::vector<double>& predictions,
                                  const std::vector<double>& targets);

/// Binary cross-entropy with clipped probabilities.
StatusOr<double> LogLoss(const std::vector<double>& probabilities,
                         const std::vector<double>& labels);

/// Area under the ROC curve via the rank statistic (ties get midranks).
/// Returns 0.5 when one class is absent.
StatusOr<double> AreaUnderRoc(const std::vector<double>& scores,
                              const std::vector<double>& labels);

}  // namespace mlcask::ml

#endif  // MLCASK_ML_METRICS_H_
