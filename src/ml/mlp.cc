#include "ml/mlp.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/rng.h"

namespace mlcask::ml {

namespace {

double Sigmoid(double z) {
  if (z >= 0) {
    double e = std::exp(-z);
    return 1.0 / (1.0 + e);
  }
  double e = std::exp(z);
  return e / (1.0 + e);
}

}  // namespace

Status Mlp::Fit(const Matrix& x, const std::vector<double>& y,
                const MlpConfig& config) {
  if (x.rows() != y.size()) {
    return Status::InvalidArgument("rows/labels mismatch in Mlp::Fit");
  }
  if (x.rows() == 0 || x.cols() == 0) {
    return Status::InvalidArgument("empty training set");
  }
  if (config.hidden_units == 0) {
    return Status::InvalidArgument("hidden_units must be positive");
  }
  const size_t n = x.rows();
  input_dim_ = x.cols();
  hidden_ = config.hidden_units;

  Pcg32 rng(config.sgd.seed);
  auto init = [&](size_t count, double scale) {
    std::vector<double> v(count);
    for (double& w : v) w = rng.NextGaussian() * scale;
    return v;
  };
  double scale1 = 1.0 / std::sqrt(static_cast<double>(input_dim_));
  double scale2 = 1.0 / std::sqrt(static_cast<double>(hidden_));
  w1_ = init(hidden_ * input_dim_, scale1);
  b1_.assign(hidden_, 0.0);
  w2_ = init(hidden_, scale2);
  b2_ = 0.0;
  loss_history_.clear();

  std::vector<size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::vector<double> h(hidden_), grad_w2(hidden_), grad_b1(hidden_);
  std::vector<double> grad_w1(hidden_ * input_dim_);

  const double lr = config.sgd.learning_rate;
  const double l2 = config.sgd.l2;
  for (int epoch = 0; epoch < config.sgd.epochs; ++epoch) {
    rng.Shuffle(&order);
    double loss_sum = 0;
    for (size_t start = 0; start < n; start += config.sgd.batch_size) {
      size_t end = std::min(n, start + config.sgd.batch_size);
      std::fill(grad_w1.begin(), grad_w1.end(), 0.0);
      std::fill(grad_w2.begin(), grad_w2.end(), 0.0);
      std::fill(grad_b1.begin(), grad_b1.end(), 0.0);
      double grad_b2 = 0;
      for (size_t bi = start; bi < end; ++bi) {
        size_t i = order[bi];
        const double* row = x.Row(i);
        // Forward.
        for (size_t u = 0; u < hidden_; ++u) {
          double z = b1_[u];
          const double* wrow = w1_.data() + u * input_dim_;
          for (size_t j = 0; j < input_dim_; ++j) z += wrow[j] * row[j];
          h[u] = std::tanh(z);
        }
        double z2 = b2_;
        for (size_t u = 0; u < hidden_; ++u) z2 += w2_[u] * h[u];
        double p = Sigmoid(z2);
        double pc = std::clamp(p, 1e-12, 1.0 - 1e-12);
        loss_sum += y[i] > 0.5 ? -std::log(pc) : -std::log(1.0 - pc);
        // Backward.
        double delta2 = p - y[i];
        grad_b2 += delta2;
        for (size_t u = 0; u < hidden_; ++u) {
          grad_w2[u] += delta2 * h[u];
          double delta1 = delta2 * w2_[u] * (1.0 - h[u] * h[u]);
          grad_b1[u] += delta1;
          double* grow = grad_w1.data() + u * input_dim_;
          for (size_t j = 0; j < input_dim_; ++j) grow[j] += delta1 * row[j];
        }
      }
      double scale = lr / static_cast<double>(end - start);
      for (size_t k = 0; k < w1_.size(); ++k) {
        w1_[k] -= scale * grad_w1[k] + lr * l2 * w1_[k];
      }
      for (size_t u = 0; u < hidden_; ++u) {
        b1_[u] -= scale * grad_b1[u];
        w2_[u] -= scale * grad_w2[u] + lr * l2 * w2_[u];
      }
      b2_ -= scale * grad_b2;
    }
    final_loss_ = loss_sum / static_cast<double>(n);
    loss_history_.push_back(final_loss_);
  }
  return Status::Ok();
}

StatusOr<std::vector<double>> Mlp::PredictProba(const Matrix& x) const {
  if (!fitted()) {
    return Status::FailedPrecondition("Mlp not fitted");
  }
  if (x.cols() != input_dim_) {
    return Status::InvalidArgument("feature width mismatch in Mlp");
  }
  std::vector<double> out;
  out.reserve(x.rows());
  std::vector<double> h(hidden_);
  for (size_t i = 0; i < x.rows(); ++i) {
    const double* row = x.Row(i);
    for (size_t u = 0; u < hidden_; ++u) {
      double z = b1_[u];
      const double* wrow = w1_.data() + u * input_dim_;
      for (size_t j = 0; j < input_dim_; ++j) z += wrow[j] * row[j];
      h[u] = std::tanh(z);
    }
    double z2 = b2_;
    for (size_t u = 0; u < hidden_; ++u) z2 += w2_[u] * h[u];
    out.push_back(Sigmoid(z2));
  }
  return out;
}

}  // namespace mlcask::ml
