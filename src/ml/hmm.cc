#include "ml/hmm.h"

#include <algorithm>
#include <cmath>

#include "common/rng.h"

namespace mlcask::ml {

namespace {
constexpr double kTiny = 1e-300;
}

double GaussianHmm::Emission(size_t state, double x) const {
  double var = variances_[state];
  double d = x - means_[state];
  return std::exp(-0.5 * d * d / var) / std::sqrt(2.0 * M_PI * var);
}

Status GaussianHmm::Fit(const std::vector<double>& sequence,
                        const HmmConfig& config) {
  if (config.num_states == 0) {
    return Status::InvalidArgument("num_states must be positive");
  }
  if (sequence.size() < config.num_states * 2) {
    return Status::InvalidArgument("sequence too short for HMM fit");
  }
  k_ = config.num_states;
  min_variance_ = config.min_variance;
  const size_t t_len = sequence.size();

  // Initialize means by spreading over the sorted observations, variances to
  // the global variance, transitions sticky-uniform.
  std::vector<double> sorted = sequence;
  std::sort(sorted.begin(), sorted.end());
  means_.resize(k_);
  for (size_t s = 0; s < k_; ++s) {
    means_[s] = sorted[(t_len - 1) * (s + 1) / (k_ + 1)];
  }
  double mean_all = 0;
  for (double v : sequence) mean_all += v;
  mean_all /= static_cast<double>(t_len);
  double var_all = 0;
  for (double v : sequence) var_all += (v - mean_all) * (v - mean_all);
  var_all = std::max(var_all / static_cast<double>(t_len), min_variance_);
  variances_.assign(k_, var_all);
  initial_.assign(k_, 1.0 / static_cast<double>(k_));
  transitions_.assign(k_ * k_, 0.0);
  for (size_t i = 0; i < k_; ++i) {
    for (size_t j = 0; j < k_; ++j) {
      transitions_[i * k_ + j] =
          i == j ? 0.8 : 0.2 / static_cast<double>(k_ - 1 == 0 ? 1 : k_ - 1);
    }
  }
  // Small deterministic jitter so equal initial means can separate.
  Pcg32 rng(config.seed);
  for (double& m : means_) m += 1e-6 * rng.NextGaussian();

  std::vector<double> alpha, beta, scale;
  std::vector<double> gamma(t_len * k_);
  std::vector<double> xi_sum(k_ * k_);

  for (int iter = 0; iter < config.em_iterations; ++iter) {
    MLCASK_RETURN_IF_ERROR(ForwardBackward(sequence, &alpha, &beta, &scale));

    // E-step: gamma[t][s] ∝ alpha * beta (already scaled per-step).
    for (size_t t = 0; t < t_len; ++t) {
      double norm = 0;
      for (size_t s = 0; s < k_; ++s) {
        gamma[t * k_ + s] = alpha[t * k_ + s] * beta[t * k_ + s];
        norm += gamma[t * k_ + s];
      }
      if (norm < kTiny) norm = kTiny;
      for (size_t s = 0; s < k_; ++s) gamma[t * k_ + s] /= norm;
    }
    std::fill(xi_sum.begin(), xi_sum.end(), 0.0);
    for (size_t t = 0; t + 1 < t_len; ++t) {
      double norm = 0;
      for (size_t i = 0; i < k_; ++i) {
        for (size_t j = 0; j < k_; ++j) {
          double v = alpha[t * k_ + i] * transitions_[i * k_ + j] *
                     Emission(j, sequence[t + 1]) * beta[(t + 1) * k_ + j];
          norm += v;
        }
      }
      if (norm < kTiny) norm = kTiny;
      for (size_t i = 0; i < k_; ++i) {
        for (size_t j = 0; j < k_; ++j) {
          double v = alpha[t * k_ + i] * transitions_[i * k_ + j] *
                     Emission(j, sequence[t + 1]) * beta[(t + 1) * k_ + j];
          xi_sum[i * k_ + j] += v / norm;
        }
      }
    }

    // M-step.
    for (size_t s = 0; s < k_; ++s) initial_[s] = gamma[s];
    for (size_t i = 0; i < k_; ++i) {
      double row_sum = 0;
      for (size_t j = 0; j < k_; ++j) row_sum += xi_sum[i * k_ + j];
      if (row_sum < kTiny) row_sum = kTiny;
      for (size_t j = 0; j < k_; ++j) {
        transitions_[i * k_ + j] = xi_sum[i * k_ + j] / row_sum;
      }
    }
    for (size_t s = 0; s < k_; ++s) {
      double g_sum = 0, weighted = 0;
      for (size_t t = 0; t < t_len; ++t) {
        g_sum += gamma[t * k_ + s];
        weighted += gamma[t * k_ + s] * sequence[t];
      }
      if (g_sum < kTiny) g_sum = kTiny;
      means_[s] = weighted / g_sum;
      double var = 0;
      for (size_t t = 0; t < t_len; ++t) {
        double d = sequence[t] - means_[s];
        var += gamma[t * k_ + s] * d * d;
      }
      variances_[s] = std::max(var / g_sum, min_variance_);
    }
  }
  return Status::Ok();
}

Status GaussianHmm::ForwardBackward(const std::vector<double>& seq,
                                    std::vector<double>* alpha,
                                    std::vector<double>* beta,
                                    std::vector<double>* scale) const {
  const size_t t_len = seq.size();
  alpha->assign(t_len * k_, 0.0);
  beta->assign(t_len * k_, 0.0);
  scale->assign(t_len, 0.0);

  // Forward with per-step normalization.
  double norm = 0;
  for (size_t s = 0; s < k_; ++s) {
    (*alpha)[s] = initial_[s] * Emission(s, seq[0]);
    norm += (*alpha)[s];
  }
  if (norm < kTiny) norm = kTiny;
  (*scale)[0] = norm;
  for (size_t s = 0; s < k_; ++s) (*alpha)[s] /= norm;

  for (size_t t = 1; t < t_len; ++t) {
    norm = 0;
    for (size_t j = 0; j < k_; ++j) {
      double sum = 0;
      for (size_t i = 0; i < k_; ++i) {
        sum += (*alpha)[(t - 1) * k_ + i] * transitions_[i * k_ + j];
      }
      (*alpha)[t * k_ + j] = sum * Emission(j, seq[t]);
      norm += (*alpha)[t * k_ + j];
    }
    if (norm < kTiny) norm = kTiny;
    (*scale)[t] = norm;
    for (size_t j = 0; j < k_; ++j) (*alpha)[t * k_ + j] /= norm;
  }

  // Backward with the same scaling factors.
  for (size_t s = 0; s < k_; ++s) (*beta)[(t_len - 1) * k_ + s] = 1.0;
  for (size_t t = t_len - 1; t-- > 0;) {
    for (size_t i = 0; i < k_; ++i) {
      double sum = 0;
      for (size_t j = 0; j < k_; ++j) {
        sum += transitions_[i * k_ + j] * Emission(j, seq[t + 1]) *
               (*beta)[(t + 1) * k_ + j];
      }
      (*beta)[t * k_ + i] = sum / (*scale)[t + 1];
    }
  }
  return Status::Ok();
}

StatusOr<std::vector<double>> GaussianHmm::Posteriors(
    const std::vector<double>& sequence) const {
  if (!fitted()) return Status::FailedPrecondition("HMM not fitted");
  if (sequence.empty()) return Status::InvalidArgument("empty sequence");
  std::vector<double> alpha, beta, scale;
  MLCASK_RETURN_IF_ERROR(ForwardBackward(sequence, &alpha, &beta, &scale));
  std::vector<double> post(sequence.size() * k_);
  for (size_t t = 0; t < sequence.size(); ++t) {
    double norm = 0;
    for (size_t s = 0; s < k_; ++s) {
      post[t * k_ + s] = alpha[t * k_ + s] * beta[t * k_ + s];
      norm += post[t * k_ + s];
    }
    if (norm < kTiny) norm = kTiny;
    for (size_t s = 0; s < k_; ++s) post[t * k_ + s] /= norm;
  }
  return post;
}

StatusOr<std::vector<double>> GaussianHmm::Smooth(
    const std::vector<double>& sequence) const {
  MLCASK_ASSIGN_OR_RETURN(std::vector<double> post, Posteriors(sequence));
  std::vector<double> out(sequence.size(), 0.0);
  for (size_t t = 0; t < sequence.size(); ++t) {
    for (size_t s = 0; s < k_; ++s) {
      out[t] += post[t * k_ + s] * means_[s];
    }
  }
  return out;
}

StatusOr<double> GaussianHmm::LogLikelihood(
    const std::vector<double>& sequence) const {
  if (!fitted()) return Status::FailedPrecondition("HMM not fitted");
  if (sequence.empty()) return Status::InvalidArgument("empty sequence");
  std::vector<double> alpha, beta, scale;
  MLCASK_RETURN_IF_ERROR(ForwardBackward(sequence, &alpha, &beta, &scale));
  double ll = 0;
  for (double s : scale) ll += std::log(s);
  return ll;
}

}  // namespace mlcask::ml
