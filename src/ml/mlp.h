#ifndef MLCASK_ML_MLP_H_
#define MLCASK_ML_MLP_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "ml/logreg.h"
#include "ml/matrix.h"

namespace mlcask::ml {

/// Configuration of the small feed-forward network.
struct MlpConfig {
  size_t hidden_units = 16;
  SgdConfig sgd;
};

/// A one-hidden-layer perceptron (tanh hidden, sigmoid output) trained with
/// mini-batch SGD. Stands in for the paper's CNN / "DL model" components:
/// the experiments need a genuinely trained model whose quality responds to
/// upstream feature changes and hyperparameters, not a specific architecture.
class Mlp {
 public:
  Status Fit(const Matrix& x, const std::vector<double>& y,
             const MlpConfig& config);

  StatusOr<std::vector<double>> PredictProba(const Matrix& x) const;

  bool fitted() const { return !w1_.empty(); }
  double final_loss() const { return final_loss_; }

  /// Mean training log-loss recorded at the end of each epoch — consumed by
  /// the distributed-training simulation (Fig. 11a's loss-vs-time curves).
  const std::vector<double>& loss_history() const { return loss_history_; }

 private:
  size_t input_dim_ = 0;
  size_t hidden_ = 0;
  std::vector<double> w1_;  // hidden x input
  std::vector<double> b1_;  // hidden
  std::vector<double> w2_;  // hidden
  double b2_ = 0;
  double final_loss_ = 0;
  std::vector<double> loss_history_;
};

}  // namespace mlcask::ml

#endif  // MLCASK_ML_MLP_H_
