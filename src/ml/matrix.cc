#include "ml/matrix.h"

#include <cmath>

namespace mlcask::ml {

Matrix Matrix::Multiply(const Matrix& other) const {
  MLCASK_CHECK_MSG(cols_ == other.rows_, "matmul dimension mismatch");
  Matrix out(rows_, other.cols_);
  for (size_t i = 0; i < rows_; ++i) {
    for (size_t k = 0; k < cols_; ++k) {
      double a = At(i, k);
      if (a == 0.0) continue;
      const double* brow = other.Row(k);
      double* orow = out.Row(i);
      for (size_t j = 0; j < other.cols_; ++j) {
        orow[j] += a * brow[j];
      }
    }
  }
  return out;
}

Matrix Matrix::Transposed() const {
  Matrix out(cols_, rows_);
  for (size_t i = 0; i < rows_; ++i) {
    for (size_t j = 0; j < cols_; ++j) {
      out.At(j, i) = At(i, j);
    }
  }
  return out;
}

std::vector<double> Matrix::ColumnMeans() const {
  std::vector<double> means(cols_, 0.0);
  if (rows_ == 0) return means;
  for (size_t i = 0; i < rows_; ++i) {
    const double* row = Row(i);
    for (size_t j = 0; j < cols_; ++j) means[j] += row[j];
  }
  for (double& m : means) m /= static_cast<double>(rows_);
  return means;
}

std::vector<double> Matrix::ColumnStds(const std::vector<double>& means) const {
  std::vector<double> stds(cols_, 0.0);
  if (rows_ == 0) return stds;
  for (size_t i = 0; i < rows_; ++i) {
    const double* row = Row(i);
    for (size_t j = 0; j < cols_; ++j) {
      double d = row[j] - means[j];
      stds[j] += d * d;
    }
  }
  for (double& s : stds) s = std::sqrt(s / static_cast<double>(rows_));
  return stds;
}

void Matrix::StandardizeColumns() {
  std::vector<double> means = ColumnMeans();
  std::vector<double> stds = ColumnStds(means);
  for (size_t i = 0; i < rows_; ++i) {
    double* row = Row(i);
    for (size_t j = 0; j < cols_; ++j) {
      row[j] -= means[j];
      if (stds[j] > 1e-12) row[j] /= stds[j];
    }
  }
}

}  // namespace mlcask::ml
