#ifndef MLCASK_ML_ADABOOST_H_
#define MLCASK_ML_ADABOOST_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "ml/matrix.h"

namespace mlcask::ml {

/// A single-feature threshold classifier: predicts `polarity` when
/// x[feature] >= threshold, else -polarity (labels in {-1, +1}).
struct DecisionStump {
  size_t feature = 0;
  double threshold = 0;
  int polarity = 1;
  double weight = 0;  ///< Alpha in the boosted ensemble.

  int Predict(const double* row) const {
    return (row[feature] >= threshold) ? polarity : -polarity;
  }
};

/// Configuration for AdaBoost training.
struct AdaBoostConfig {
  int rounds = 30;
  /// Candidate thresholds sampled per feature (quantiles of the feature).
  size_t thresholds_per_feature = 16;
};

/// Discrete AdaBoost over decision stumps — the classifier of the paper's
/// Autolearn pipeline ("an AdaBoost classifier is built for the image
/// classification task"). Binary labels are given as 0/1.
class AdaBoost {
 public:
  Status Fit(const Matrix& x, const std::vector<double>& y,
             const AdaBoostConfig& config);

  /// Ensemble margin mapped through a logistic to [0,1] (acts like a score).
  StatusOr<std::vector<double>> PredictProba(const Matrix& x) const;

  bool fitted() const { return !stumps_.empty(); }
  const std::vector<DecisionStump>& stumps() const { return stumps_; }
  /// Weighted training error of the final round's stump.
  double final_round_error() const { return final_round_error_; }

 private:
  std::vector<DecisionStump> stumps_;
  double final_round_error_ = 0.5;
};

}  // namespace mlcask::ml

#endif  // MLCASK_ML_ADABOOST_H_
