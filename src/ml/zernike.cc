#include "ml/zernike.h"

#include <cmath>

namespace mlcask::ml {

namespace {

double Factorial(int n) {
  double f = 1;
  for (int i = 2; i <= n; ++i) f *= i;
  return f;
}

}  // namespace

ZernikeExtractor::ZernikeExtractor(int max_order) : max_order_(max_order) {
  for (int n = 0; n <= max_order_; ++n) {
    for (int m = 0; m <= n; ++m) {
      if ((n - m) % 2 == 0) {
        moments_.emplace_back(n, m);
      }
    }
  }
}

double ZernikeExtractor::Radial(int n, int m, double rho) {
  double sum = 0;
  for (int s = 0; s <= (n - m) / 2; ++s) {
    double num = (s % 2 == 0 ? 1.0 : -1.0) * Factorial(n - s);
    double den = Factorial(s) * Factorial((n + m) / 2 - s) *
                 Factorial((n - m) / 2 - s);
    sum += num / den * std::pow(rho, n - 2 * s);
  }
  return sum;
}

StatusOr<std::vector<double>> ZernikeExtractor::Extract(
    const std::vector<double>& pixels, size_t side) const {
  if (side == 0 || pixels.size() != side * side) {
    return Status::InvalidArgument("pixel buffer is not side*side");
  }
  const double center = (static_cast<double>(side) - 1.0) / 2.0;
  const double radius = static_cast<double>(side) / 2.0;

  std::vector<double> out;
  out.reserve(moments_.size());
  for (const auto& [n, m] : moments_) {
    double re = 0, im = 0;
    for (size_t yy = 0; yy < side; ++yy) {
      for (size_t xx = 0; xx < side; ++xx) {
        double px = pixels[yy * side + xx];
        if (px == 0.0) continue;
        double dx = (static_cast<double>(xx) - center) / radius;
        double dy = (static_cast<double>(yy) - center) / radius;
        double rho = std::sqrt(dx * dx + dy * dy);
        if (rho > 1.0) continue;  // unit disk support
        double theta = std::atan2(dy, dx);
        double r = Radial(n, m, rho);
        re += px * r * std::cos(m * theta);
        im -= px * r * std::sin(m * theta);
      }
    }
    double norm = (n + 1.0) / M_PI;
    re *= norm;
    im *= norm;
    out.push_back(std::sqrt(re * re + im * im));
  }
  return out;
}

}  // namespace mlcask::ml
