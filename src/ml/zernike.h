#ifndef MLCASK_ML_ZERNIKE_H_
#define MLCASK_ML_ZERNIKE_H_

#include <cstddef>
#include <vector>

#include "common/status.h"

namespace mlcask::ml {

/// Zernike moment magnitudes |Z_nm| for a square grayscale image — the
/// rotation-invariant shape features the paper's Autolearn pipeline extracts
/// from digit images ("image classification of digits using Zernike moments
/// as features").
class ZernikeExtractor {
 public:
  /// `max_order`: highest radial order n; features are all (n, m) with
  /// n <= max_order, |m| <= n, n - |m| even (m >= 0 suffices for magnitudes).
  explicit ZernikeExtractor(int max_order = 8);

  /// Number of features produced per image.
  size_t NumFeatures() const { return moments_.size(); }

  /// The (n, m) index of each feature.
  const std::vector<std::pair<int, int>>& moment_indices() const {
    return moments_;
  }

  /// Computes features for a `side` x `side` image given in row-major order
  /// with values in [0, 1].
  StatusOr<std::vector<double>> Extract(const std::vector<double>& pixels,
                                        size_t side) const;

  /// Radial polynomial R_nm(rho) — exposed for testing.
  static double Radial(int n, int m, double rho);

 private:
  int max_order_;
  std::vector<std::pair<int, int>> moments_;
};

}  // namespace mlcask::ml

#endif  // MLCASK_ML_ZERNIKE_H_
