#ifndef MLCASK_ML_TRAIN_EVAL_H_
#define MLCASK_ML_TRAIN_EVAL_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "ml/matrix.h"

namespace mlcask::ml {

/// A deterministic train/test partition.
struct TrainTestSplit {
  Matrix x_train;
  Matrix x_test;
  std::vector<double> y_train;
  std::vector<double> y_test;
};

/// Shuffles rows with `seed` and holds out `test_fraction` for testing.
StatusOr<TrainTestSplit> SplitData(const Matrix& x,
                                   const std::vector<double>& y,
                                   double test_fraction, uint64_t seed);

}  // namespace mlcask::ml

#endif  // MLCASK_ML_TRAIN_EVAL_H_
