#include "ml/autolearn.h"

#include <algorithm>
#include <cmath>

namespace mlcask::ml {

double PearsonCorrelation(const std::vector<double>& a,
                          const std::vector<double>& b) {
  if (a.size() != b.size() || a.empty()) return 0.0;
  const double n = static_cast<double>(a.size());
  double ma = 0, mb = 0;
  for (size_t i = 0; i < a.size(); ++i) {
    ma += a[i];
    mb += b[i];
  }
  ma /= n;
  mb /= n;
  double cov = 0, va = 0, vb = 0;
  for (size_t i = 0; i < a.size(); ++i) {
    double da = a[i] - ma;
    double db = b[i] - mb;
    cov += da * db;
    va += da * da;
    vb += db * db;
  }
  if (va < 1e-12 || vb < 1e-12) return 0.0;
  return cov / std::sqrt(va * vb);
}

namespace {

struct Candidate {
  std::vector<double> values;
  std::string name;
  double score = 0;
};

std::vector<double> ColumnOf(const Matrix& x, size_t j) {
  std::vector<double> col(x.rows());
  for (size_t i = 0; i < x.rows(); ++i) col[i] = x.At(i, j);
  return col;
}

}  // namespace

StatusOr<AutolearnResult> GenerateAndSelectFeatures(
    const Matrix& x, const std::vector<double>& y,
    const AutolearnConfig& config) {
  if (x.rows() != y.size()) {
    return Status::InvalidArgument("rows/labels mismatch in Autolearn");
  }
  if (x.rows() == 0 || x.cols() == 0) {
    return Status::InvalidArgument("empty feature matrix");
  }
  const size_t d = x.cols();

  // Rank base features by |corr| to bound pair expansion.
  std::vector<std::pair<double, size_t>> base_rank;
  std::vector<std::vector<double>> base_cols(d);
  for (size_t j = 0; j < d; ++j) {
    base_cols[j] = ColumnOf(x, j);
    base_rank.emplace_back(std::fabs(PearsonCorrelation(base_cols[j], y)), j);
  }
  std::sort(base_rank.begin(), base_rank.end(), [](const auto& a, const auto& b) {
    if (a.first != b.first) return a.first > b.first;
    return a.second < b.second;
  });
  size_t pool = std::min(config.base_pool, d);

  std::vector<Candidate> candidates;
  // Base features always compete for selection.
  for (size_t j = 0; j < d; ++j) {
    Candidate c;
    c.values = base_cols[j];
    c.name = "f" + std::to_string(j);
    c.score = std::fabs(PearsonCorrelation(c.values, y));
    candidates.push_back(std::move(c));
  }
  for (size_t a = 0; a < pool; ++a) {
    for (size_t b = a + 1; b < pool; ++b) {
      size_t ja = base_rank[a].second;
      size_t jb = base_rank[b].second;
      if (config.generate_products) {
        Candidate c;
        c.values.resize(x.rows());
        for (size_t i = 0; i < x.rows(); ++i) {
          c.values[i] = base_cols[ja][i] * base_cols[jb][i];
        }
        c.name = "f" + std::to_string(ja) + "*f" + std::to_string(jb);
        c.score = std::fabs(PearsonCorrelation(c.values, y));
        candidates.push_back(std::move(c));
      }
      if (config.generate_ratios) {
        Candidate c;
        c.values.resize(x.rows());
        for (size_t i = 0; i < x.rows(); ++i) {
          double denom = base_cols[jb][i];
          c.values[i] = base_cols[ja][i] /
                        (std::fabs(denom) < 1e-9
                             ? (denom < 0 ? -1e-9 : 1e-9)
                             : denom);
        }
        c.name = "f" + std::to_string(ja) + "/f" + std::to_string(jb);
        c.score = std::fabs(PearsonCorrelation(c.values, y));
        candidates.push_back(std::move(c));
      }
    }
  }

  std::sort(candidates.begin(), candidates.end(),
            [](const Candidate& a, const Candidate& b) {
              if (a.score != b.score) return a.score > b.score;
              return a.name < b.name;
            });
  size_t keep = std::min(config.keep_top_k, candidates.size());

  AutolearnResult result;
  result.features = Matrix(x.rows(), keep);
  result.names.reserve(keep);
  for (size_t k = 0; k < keep; ++k) {
    result.names.push_back(candidates[k].name);
    for (size_t i = 0; i < x.rows(); ++i) {
      result.features.At(i, k) = candidates[k].values[i];
    }
  }
  return result;
}

}  // namespace mlcask::ml
