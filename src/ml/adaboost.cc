#include "ml/adaboost.h"

#include <algorithm>
#include <cmath>

namespace mlcask::ml {

Status AdaBoost::Fit(const Matrix& x, const std::vector<double>& y,
                     const AdaBoostConfig& config) {
  if (x.rows() != y.size()) {
    return Status::InvalidArgument("rows/labels mismatch in AdaBoost::Fit");
  }
  if (x.rows() == 0 || x.cols() == 0) {
    return Status::InvalidArgument("empty training set");
  }
  if (config.rounds <= 0) {
    return Status::InvalidArgument("rounds must be positive");
  }
  const size_t n = x.rows();
  const size_t d = x.cols();

  // Labels to {-1, +1}.
  std::vector<int> labels(n);
  for (size_t i = 0; i < n; ++i) labels[i] = y[i] > 0.5 ? 1 : -1;

  // Candidate thresholds: per-feature quantiles.
  std::vector<std::vector<double>> candidates(d);
  {
    std::vector<double> col(n);
    for (size_t j = 0; j < d; ++j) {
      for (size_t i = 0; i < n; ++i) col[i] = x.At(i, j);
      std::sort(col.begin(), col.end());
      size_t steps = std::min(config.thresholds_per_feature, n);
      for (size_t q = 0; q < steps; ++q) {
        candidates[j].push_back(col[(n - 1) * (q + 1) / (steps + 1)]);
      }
      candidates[j].erase(
          std::unique(candidates[j].begin(), candidates[j].end()),
          candidates[j].end());
    }
  }

  std::vector<double> w(n, 1.0 / static_cast<double>(n));
  stumps_.clear();

  for (int round = 0; round < config.rounds; ++round) {
    DecisionStump best;
    double best_err = 1.0;
    for (size_t j = 0; j < d; ++j) {
      for (double thr : candidates[j]) {
        double err_pos = 0;  // error of polarity=+1 stump
        for (size_t i = 0; i < n; ++i) {
          int pred = x.At(i, j) >= thr ? 1 : -1;
          if (pred != labels[i]) err_pos += w[i];
        }
        // polarity=-1 stump has complementary error.
        if (err_pos < best_err) {
          best_err = err_pos;
          best = {j, thr, 1, 0};
        }
        if (1.0 - err_pos < best_err) {
          best_err = 1.0 - err_pos;
          best = {j, thr, -1, 0};
        }
      }
    }
    final_round_error_ = best_err;
    double eps = std::clamp(best_err, 1e-10, 1.0 - 1e-10);
    best.weight = 0.5 * std::log((1.0 - eps) / eps);
    stumps_.push_back(best);
    if (best_err >= 0.5) break;  // no weak learner better than chance

    // Re-weight.
    double norm = 0;
    for (size_t i = 0; i < n; ++i) {
      int pred = best.Predict(x.Row(i));
      w[i] *= std::exp(-best.weight * pred * labels[i]);
      norm += w[i];
    }
    if (norm <= 0) break;
    for (double& wi : w) wi /= norm;
    if (best_err < 1e-9) break;  // perfect separation
  }
  return Status::Ok();
}

StatusOr<std::vector<double>> AdaBoost::PredictProba(const Matrix& x) const {
  if (!fitted()) {
    return Status::FailedPrecondition("AdaBoost not fitted");
  }
  std::vector<double> out;
  out.reserve(x.rows());
  for (size_t i = 0; i < x.rows(); ++i) {
    double margin = 0;
    for (const DecisionStump& s : stumps_) {
      if (s.feature >= x.cols()) {
        return Status::InvalidArgument("feature width mismatch in AdaBoost");
      }
      margin += s.weight * s.Predict(x.Row(i));
    }
    out.push_back(1.0 / (1.0 + std::exp(-2.0 * margin)));
  }
  return out;
}

}  // namespace mlcask::ml
