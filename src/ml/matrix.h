#ifndef MLCASK_ML_MATRIX_H_
#define MLCASK_ML_MATRIX_H_

#include <cstddef>
#include <vector>

#include "common/logging.h"
#include "common/status.h"

namespace mlcask::ml {

/// A dense row-major matrix of doubles. Small and dependency-free — just
/// enough linear algebra for the library's models (logistic regression, MLP,
/// HMM, SVD-style embeddings).
class Matrix {
 public:
  Matrix() = default;
  Matrix(size_t rows, size_t cols, double fill = 0.0)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  static Matrix FromRowMajor(size_t rows, size_t cols,
                             std::vector<double> data) {
    MLCASK_CHECK_MSG(data.size() == rows * cols, "row-major size mismatch");
    Matrix m;
    m.rows_ = rows;
    m.cols_ = cols;
    m.data_ = std::move(data);
    return m;
  }

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }
  size_t size() const { return data_.size(); }
  bool empty() const { return data_.empty(); }

  double& At(size_t r, size_t c) { return data_[r * cols_ + c]; }
  double At(size_t r, size_t c) const { return data_[r * cols_ + c]; }

  const double* Row(size_t r) const { return data_.data() + r * cols_; }
  double* Row(size_t r) { return data_.data() + r * cols_; }

  const std::vector<double>& data() const { return data_; }
  std::vector<double>& data() { return data_; }

  /// this * other; dimensions must agree.
  Matrix Multiply(const Matrix& other) const;

  Matrix Transposed() const;

  /// Column-wise mean and standard deviation (population).
  std::vector<double> ColumnMeans() const;
  std::vector<double> ColumnStds(const std::vector<double>& means) const;

  /// Standardizes columns in place to zero mean / unit variance; columns
  /// with ~zero variance are left centered only.
  void StandardizeColumns();

  bool operator==(const Matrix& other) const {
    return rows_ == other.rows_ && cols_ == other.cols_ && data_ == other.data_;
  }

 private:
  size_t rows_ = 0;
  size_t cols_ = 0;
  std::vector<double> data_;
};

}  // namespace mlcask::ml

#endif  // MLCASK_ML_MATRIX_H_
