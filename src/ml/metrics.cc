#include "ml/metrics.h"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace mlcask::ml {

namespace {

Status CheckSizes(size_t a, size_t b) {
  if (a != b) {
    return Status::InvalidArgument("metric input sizes differ: " +
                                   std::to_string(a) + " vs " +
                                   std::to_string(b));
  }
  if (a == 0) {
    return Status::InvalidArgument("metric inputs are empty");
  }
  return Status::Ok();
}

}  // namespace

StatusOr<double> Accuracy(const std::vector<double>& scores,
                          const std::vector<double>& labels,
                          double threshold) {
  MLCASK_RETURN_IF_ERROR(CheckSizes(scores.size(), labels.size()));
  size_t correct = 0;
  for (size_t i = 0; i < scores.size(); ++i) {
    double pred = scores[i] >= threshold ? 1.0 : 0.0;
    if (pred == labels[i]) ++correct;
  }
  return static_cast<double>(correct) / static_cast<double>(scores.size());
}

StatusOr<double> MeanSquaredError(const std::vector<double>& predictions,
                                  const std::vector<double>& targets) {
  MLCASK_RETURN_IF_ERROR(CheckSizes(predictions.size(), targets.size()));
  double sum = 0;
  for (size_t i = 0; i < predictions.size(); ++i) {
    double d = predictions[i] - targets[i];
    sum += d * d;
  }
  return sum / static_cast<double>(predictions.size());
}

StatusOr<double> LogLoss(const std::vector<double>& probabilities,
                         const std::vector<double>& labels) {
  MLCASK_RETURN_IF_ERROR(CheckSizes(probabilities.size(), labels.size()));
  double sum = 0;
  for (size_t i = 0; i < probabilities.size(); ++i) {
    double p = std::clamp(probabilities[i], 1e-12, 1.0 - 1e-12);
    sum += labels[i] > 0.5 ? -std::log(p) : -std::log(1.0 - p);
  }
  return sum / static_cast<double>(probabilities.size());
}

StatusOr<double> AreaUnderRoc(const std::vector<double>& scores,
                              const std::vector<double>& labels) {
  MLCASK_RETURN_IF_ERROR(CheckSizes(scores.size(), labels.size()));
  const size_t n = scores.size();
  std::vector<size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(),
            [&](size_t a, size_t b) { return scores[a] < scores[b]; });

  // Midranks for ties.
  std::vector<double> ranks(n, 0.0);
  size_t i = 0;
  while (i < n) {
    size_t j = i;
    while (j + 1 < n && scores[order[j + 1]] == scores[order[i]]) ++j;
    double midrank = (static_cast<double>(i) + static_cast<double>(j)) / 2.0 + 1.0;
    for (size_t k = i; k <= j; ++k) ranks[order[k]] = midrank;
    i = j + 1;
  }

  double pos = 0, rank_sum = 0;
  for (size_t k = 0; k < n; ++k) {
    if (labels[k] > 0.5) {
      pos += 1;
      rank_sum += ranks[k];
    }
  }
  double neg = static_cast<double>(n) - pos;
  if (pos == 0 || neg == 0) return 0.5;
  return (rank_sum - pos * (pos + 1) / 2.0) / (pos * neg);
}

}  // namespace mlcask::ml
