#include "ml/embedding.h"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <unordered_map>

#include "common/rng.h"

namespace mlcask::ml {

std::vector<std::string> Tokenize(std::string_view text) {
  std::vector<std::string> tokens;
  std::string cur;
  for (char c : text) {
    unsigned char uc = static_cast<unsigned char>(c);
    if (std::isalnum(uc)) {
      cur.push_back(static_cast<char>(std::tolower(uc)));
    } else if (!cur.empty()) {
      tokens.push_back(std::move(cur));
      cur.clear();
    }
  }
  if (!cur.empty()) tokens.push_back(std::move(cur));
  return tokens;
}

Status WordEmbedding::Fit(const std::vector<std::string>& documents,
                          const EmbeddingConfig& config) {
  if (documents.empty()) {
    return Status::InvalidArgument("no documents to fit embedding");
  }
  if (config.dims == 0) {
    return Status::InvalidArgument("dims must be positive");
  }

  // Count words and keep the top max_vocab.
  std::unordered_map<std::string, uint64_t> counts;
  std::vector<std::vector<std::string>> tokenized;
  tokenized.reserve(documents.size());
  for (const std::string& doc : documents) {
    tokenized.push_back(Tokenize(doc));
    for (const std::string& t : tokenized.back()) counts[t] += 1;
  }
  std::vector<std::pair<uint64_t, std::string>> ranked;
  ranked.reserve(counts.size());
  for (auto& [w, c] : counts) ranked.emplace_back(c, w);
  std::sort(ranked.begin(), ranked.end(), [](const auto& a, const auto& b) {
    if (a.first != b.first) return a.first > b.first;
    return a.second < b.second;
  });
  if (ranked.size() > config.max_vocab) ranked.resize(config.max_vocab);
  vocab_.clear();
  for (size_t i = 0; i < ranked.size(); ++i) vocab_[ranked[i].second] = i;
  const size_t v = vocab_.size();
  if (v < 2) {
    return Status::InvalidArgument("vocabulary too small for embedding");
  }
  const size_t dims = std::min(config.dims, v);

  // Co-occurrence within the window.
  std::vector<double> cooc(v * v, 0.0);
  double total = 0;
  for (const auto& tokens : tokenized) {
    for (size_t i = 0; i < tokens.size(); ++i) {
      auto it = vocab_.find(tokens[i]);
      if (it == vocab_.end()) continue;
      size_t wi = it->second;
      size_t lo = i >= config.window ? i - config.window : 0;
      size_t hi = std::min(tokens.size(), i + config.window + 1);
      for (size_t j = lo; j < hi; ++j) {
        if (j == i) continue;
        auto jt = vocab_.find(tokens[j]);
        if (jt == vocab_.end()) continue;
        cooc[wi * v + jt->second] += 1.0;
        total += 1.0;
      }
    }
  }
  if (total == 0) {
    return Status::InvalidArgument("no co-occurrences found");
  }

  // PPMI transform.
  std::vector<double> row_sum(v, 0.0), col_sum(v, 0.0);
  for (size_t i = 0; i < v; ++i) {
    for (size_t j = 0; j < v; ++j) {
      row_sum[i] += cooc[i * v + j];
      col_sum[j] += cooc[i * v + j];
    }
  }
  for (size_t i = 0; i < v; ++i) {
    for (size_t j = 0; j < v; ++j) {
      double c = cooc[i * v + j];
      if (c <= 0) continue;
      double pmi = std::log(c * total / (row_sum[i] * col_sum[j] + 1e-12));
      cooc[i * v + j] = pmi > 0 ? pmi : 0.0;
    }
  }

  // Orthogonal power iteration on the symmetric PPMI matrix to get the top
  // `dims` eigenvectors — a truncated spectral embedding.
  Pcg32 rng(config.seed);
  std::vector<double> q(v * dims);
  for (double& x : q) x = rng.NextGaussian();

  std::vector<double> z(v * dims);
  for (int iter = 0; iter < config.power_iterations; ++iter) {
    // z = M q (M symmetric v x v, q is v x dims).
    std::fill(z.begin(), z.end(), 0.0);
    for (size_t i = 0; i < v; ++i) {
      for (size_t j = 0; j < v; ++j) {
        double m = cooc[i * v + j];
        if (m == 0.0) continue;
        const double* qrow = q.data() + j * dims;
        double* zrow = z.data() + i * dims;
        for (size_t k = 0; k < dims; ++k) zrow[k] += m * qrow[k];
      }
    }
    // Gram-Schmidt columns of z -> q.
    for (size_t k = 0; k < dims; ++k) {
      for (size_t prev = 0; prev < k; ++prev) {
        double dot = 0;
        for (size_t i = 0; i < v; ++i) {
          dot += z[i * dims + k] * z[i * dims + prev];
        }
        for (size_t i = 0; i < v; ++i) {
          z[i * dims + k] -= dot * z[i * dims + prev];
        }
      }
      double norm = 0;
      for (size_t i = 0; i < v; ++i) {
        norm += z[i * dims + k] * z[i * dims + k];
      }
      norm = std::sqrt(norm);
      if (norm < 1e-12) norm = 1.0;
      for (size_t i = 0; i < v; ++i) z[i * dims + k] /= norm;
    }
    q = z;
  }

  vectors_ = std::move(q);
  dims_ = dims;
  return Status::Ok();
}

std::vector<double> WordEmbedding::Lookup(const std::string& word) const {
  std::vector<double> out(dims_, 0.0);
  auto it = vocab_.find(word);
  if (it == vocab_.end()) return out;
  const double* row = vectors_.data() + it->second * dims_;
  out.assign(row, row + dims_);
  return out;
}

std::vector<double> WordEmbedding::Embed(std::string_view document) const {
  std::vector<double> out(dims_, 0.0);
  if (!fitted()) return out;
  size_t hits = 0;
  for (const std::string& t : Tokenize(document)) {
    auto it = vocab_.find(t);
    if (it == vocab_.end()) continue;
    const double* row = vectors_.data() + it->second * dims_;
    for (size_t k = 0; k < dims_; ++k) out[k] += row[k];
    ++hits;
  }
  if (hits > 0) {
    for (double& x : out) x /= static_cast<double>(hits);
  }
  return out;
}

}  // namespace mlcask::ml
