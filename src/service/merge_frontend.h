#ifndef MLCASK_SERVICE_MERGE_FRONTEND_H_
#define MLCASK_SERVICE_MERGE_FRONTEND_H_

#include <string>
#include <string_view>

#include "service/merge_service.h"
#include "service/service_codec.h"

namespace mlcask::service {

/// Wire adapter between a transport endpoint and a MergeService: decodes
/// service requests (opcodes >= storage::wire::kServiceOpcodeBase), calls
/// the service, encodes the typed result. Stateless and thread-safe — the
/// epoll server's workers call Handle concurrently; all session state lives
/// in the MergeService.
///
/// A combined endpoint routes with Handles() first and falls through to the
/// storage dispatch otherwise, so one connection multiplexes storage RPCs
/// and merge sessions:
///
///   server.Serve([&](std::string_view request) {
///     if (MergeFrontend::Handles(request)) return frontend.Handle(request);
///     return storage_service.Handle(request);
///   });
class MergeFrontend {
 public:
  /// `service` is non-owning and must outlive the frontend.
  explicit MergeFrontend(MergeService* service) : service_(service) {}

  /// True when `request` is a binary merge-service request.
  static bool Handles(std::string_view request) {
    return IsServiceRequest(request);
  }

  /// Serves one request; errors come back as the storage codec's typed
  /// error envelope (never throws, never hangs).
  std::string Handle(std::string_view request);

 private:
  MergeService* service_;
};

}  // namespace mlcask::service

#endif  // MLCASK_SERVICE_MERGE_FRONTEND_H_
