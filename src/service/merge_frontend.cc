#include "service/merge_frontend.h"

#include "storage/wire_codec.h"

namespace mlcask::service {

namespace wire = mlcask::storage::wire;

std::string MergeFrontend::Handle(std::string_view request) {
  auto op = PeekServiceOp(request);
  if (!op.ok()) return wire::EncodeErrorResponse(op.status());
  switch (*op) {
    case ServiceOp::kSubmitMerge: {
      auto decoded = DecodeSubmitRequest(request);
      if (!decoded.ok()) return wire::EncodeErrorResponse(decoded.status());
      auto result = service_->Submit(decoded->spec, decoded->replay_token,
                                     decoded->deadline_ms);
      if (!result.ok()) return wire::EncodeErrorResponse(result.status());
      return EncodeSubmitResponse(result->session_id, result->coalesced);
    }
    case ServiceOp::kPollMerge: {
      auto decoded = DecodeSessionRequest(request);
      if (!decoded.ok()) return wire::EncodeErrorResponse(decoded.status());
      auto result = service_->Poll(decoded->tenant, decoded->session_id);
      if (!result.ok()) return wire::EncodeErrorResponse(result.status());
      return EncodePollResponse(*result);
    }
    case ServiceOp::kFetchWinner: {
      auto decoded = DecodeSessionRequest(request);
      if (!decoded.ok()) return wire::EncodeErrorResponse(decoded.status());
      auto result = service_->Fetch(decoded->tenant, decoded->session_id);
      if (!result.ok()) return wire::EncodeErrorResponse(result.status());
      return EncodeWinnerResponse(*result);
    }
    case ServiceOp::kCancelMerge: {
      auto decoded = DecodeSessionRequest(request);
      if (!decoded.ok()) return wire::EncodeErrorResponse(decoded.status());
      auto result = service_->Cancel(decoded->tenant, decoded->session_id);
      if (!result.ok()) return wire::EncodeErrorResponse(result.status());
      return EncodeCancelResponse(*result);
    }
  }
  return wire::EncodeErrorResponse(
      Status::Unimplemented("unhandled merge-service opcode"));
}

}  // namespace mlcask::service
