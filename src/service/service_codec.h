#ifndef MLCASK_SERVICE_SERVICE_CODEC_H_
#define MLCASK_SERVICE_SERVICE_CODEC_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/sha256.h"
#include "common/status.h"
#include "storage/wire_codec.h"

namespace mlcask::service {

// ---------------------------------------------------------------------------
// Merge-service RPC codec (wire version 2, opcodes >= kServiceOpcodeBase).
//
// Service requests ride the exact same frame + binary message shape as the
// storage codec — magic 0xBC, opcode byte, tagged meta section, body — so
// one connection multiplexes storage and merge traffic and the transport's
// chunking/replay/deadline machinery applies unchanged. The opcode space is
// disjoint from storage::wire::Method (1..12): a combined endpoint routes
// any binary request whose opcode is >= storage::wire::kServiceOpcodeBase
// to the merge front end.
//
// Request meta tags (frozen on the wire). Tags 5 and 6 are the generic
// replay-token / deadline tags every binary request reserves (see
// storage/wire_codec.h); the service tags dodge them.
// ---------------------------------------------------------------------------

/// Merge-service opcodes. Values are frozen on the wire and MUST stay
/// >= storage::wire::kServiceOpcodeBase so storage dispatch never sees them.
enum class ServiceOp : uint8_t {
  kSubmitMerge = 32,
  kPollMerge = 33,
  kFetchWinner = 34,
  kCancelMerge = 35,
};

/// True when `message` is a binary service request (vs a storage RPC or
/// JSON). The cheap routing test a combined endpoint applies first.
bool IsServiceRequest(std::string_view message);

/// Session lifecycle, as reported by PollMerge. Values are frozen on the
/// wire. Queued/Running are live; Done/Failed/Cancelled are terminal.
enum class SessionState : uint8_t {
  kQueued = 1,
  kRunning = 2,
  kDone = 3,
  kFailed = 4,
  kCancelled = 5,
};

bool IsTerminal(SessionState state);
const char* SessionStateName(SessionState state);

/// Everything a merge submission pins down. Two submissions with equal
/// CacheKey() (same tenant) are compatible: they would run byte-identical
/// Algorithm 2 searches, so the scheduler coalesces them into one batch.
struct MergeJobSpec {
  std::string tenant;                ///< Fairness + isolation identity.
  std::string workload = "readmission";
  double scale = 0.06;
  int extra_extractor_versions = 0;  ///< Fig. 11 widening (0 = fig9).
  int extra_model_versions = 0;
  uint32_t storage_shards = 1;       ///< Deployment storage topology.
  uint32_t merge_shards = 1;         ///< MergeOptions::shards.
  uint32_t num_workers = 1;          ///< Per-drain parallelism.
  std::string optimize_metric;       ///< Empty = pipeline primary score.
  uint64_t seed = 1;

  /// Scenario identity WITHOUT the tenant: the coalescing key within one
  /// tenant's queue (tenant is prepended separately so two tenants never
  /// share a batch).
  std::string CacheKey() const;
};

/// The result surface of a server-side merge: exactly the fields the
/// equivalence tests fingerprint client-side (winner identity, executions,
/// persisted artifact hashes), plus a single SHA-256 over all of them so a
/// client can compare winners without shipping the full report.
struct MergeWinner {
  uint64_t component_executions = 0;
  int32_t best_index = -1;
  double best_score = 0;
  uint64_t candidates_considered = 0;
  double makespan_s = 0;
  Hash256 merge_commit;
  std::vector<std::string> winner_chain;     ///< ComponentVersionSpec keys.
  std::vector<Hash256> artifact_hashes;      ///< Merge-commit outputs, in order.

  /// SHA-256 over every field above, order-sensitive. Equal fingerprints
  /// mean bit-identical winners.
  Hash256 Fingerprint() const;
};

// --- requests (client encodes, front end decodes) --------------------------

/// SubmitMerge: meta {tenant, spec fields[, replay_token, deadline]},
/// empty body. A non-empty replay token makes the submit idempotent per
/// (tenant, token): a redial replay returns the already-created session.
std::string EncodeSubmitRequest(const MergeJobSpec& spec,
                                std::string_view replay_token = {});

/// PollMerge / FetchWinner / CancelMerge: meta {tenant, session_id[,
/// deadline]}. The tenant is the caller's claimed identity: the service
/// answers NotFound for a session another tenant owns, so session ids never
/// leak results across tenants.
std::string EncodeSessionRequest(ServiceOp op, std::string_view tenant,
                                 std::string_view session_id);

struct SubmitRequest {
  MergeJobSpec spec;
  std::string_view replay_token;
  uint64_t deadline_ms = 0;  ///< Remaining budget stamped by the caller.
};

struct SessionRequest {
  ServiceOp op = ServiceOp::kPollMerge;
  std::string_view tenant;
  std::string_view session_id;
  uint64_t deadline_ms = 0;
};

/// Decodes any service request's opcode (kInvalidArgument when not a
/// service message).
StatusOr<ServiceOp> PeekServiceOp(std::string_view message);

StatusOr<SubmitRequest> DecodeSubmitRequest(std::string_view message);
StatusOr<SessionRequest> DecodeSessionRequest(std::string_view message);

// --- responses (front end encodes, client decodes) -------------------------
//
// Errors use the storage codec's error envelope (status code in the second
// byte, message in meta) so one decoder handles both layers' failures.

/// SubmitMerge ok-response: the session handle. `coalesced` is true when
/// the submission joined an already-queued compatible batch.
std::string EncodeSubmitResponse(std::string_view session_id, bool coalesced);

struct SubmitResult {
  std::string session_id;
  bool coalesced = false;
};
StatusOr<SubmitResult> DecodeSubmitResponse(std::string_view message);

/// PollMerge ok-response: current state + progress. A kFailed session
/// carries its terminal status (code + message) so the poller learns WHY
/// without a FetchWinner round trip.
struct PollResult {
  SessionState state = SessionState::kQueued;
  uint64_t queued_ahead = 0;   ///< Batches ahead in the tenant queue.
  StatusCode error_code = StatusCode::kOk;  ///< kFailed sessions only.
  std::string error_message;
};
std::string EncodePollResponse(const PollResult& result);
StatusOr<PollResult> DecodePollResponse(std::string_view message);

/// FetchWinner ok-response: the winner. Scalar fields + fingerprint ride
/// the meta section; the chain keys and artifact hashes ride the body.
std::string EncodeWinnerResponse(const MergeWinner& winner);
StatusOr<MergeWinner> DecodeWinnerResponse(std::string_view message);

/// CancelMerge ok-response: the session's resulting state.
std::string EncodeCancelResponse(SessionState state);
StatusOr<SessionState> DecodeCancelResponse(std::string_view message);

}  // namespace mlcask::service

#endif  // MLCASK_SERVICE_SERVICE_CODEC_H_
