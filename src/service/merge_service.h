#ifndef MLCASK_SERVICE_MERGE_SERVICE_H_
#define MLCASK_SERVICE_MERGE_SERVICE_H_

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "merge/merge_op.h"
#include "service/service_codec.h"
#include "version/pipeline_repo.h"

namespace mlcask::service {

// ---------------------------------------------------------------------------
// MergeService: Algorithm 2 as a server-side resource.
//
// Submissions become SESSIONS in a bounded, TTL'd table; compatible
// submissions (same tenant, same MergeJobSpec::CacheKey) coalesce into one
// BATCH, and a MergeScheduler drains batches through a fixed worker pool
// under deficit-round-robin fairness across tenants. The service owns an
// explicit lifecycle in the bscheduler pipeline_base shape —
// initial → starting → started → stopping → stopped — where `stopping`
// drains every accepted session to a terminal state and rejects new submits
// typed. Deadline stamps from the wire (PR 9) ride into the session: a
// session that cannot meet its budget resolves typed kDeadlineExceeded at
// poll or dispatch time, so a poller can never wedge on a shed request.
// ---------------------------------------------------------------------------

/// Service lifecycle states. One-way: a stopped service never restarts.
enum class ServiceState : uint8_t {
  kInitial = 0,
  kStarting = 1,
  kStarted = 2,
  kStopping = 3,
  kStopped = 4,
};

const char* ServiceStateName(ServiceState state);

/// One unit of scheduler work: a spec plus every session coalesced onto it.
/// Owned by the scheduler while queued, by the executing worker while
/// running.
struct MergeBatch {
  MergeJobSpec spec;
  std::vector<std::string> session_ids;
  bool running = false;
};

/// Per-tenant deficit-round-robin over batch queues. NOT thread-safe: the
/// owning MergeService serializes access under its mutex. Weighted fairness
/// holds at batch granularity — a batch is the unit of ExecutionCore work,
/// however many coalesced sessions ride on it.
class MergeScheduler {
 public:
  MergeScheduler(uint64_t default_weight,
                 std::map<std::string, uint64_t> tenant_weights);

  /// Appends a batch to its tenant's queue (creating the queue row on first
  /// use).
  void Enqueue(std::unique_ptr<MergeBatch> batch);

  /// Pops the next batch by deficit round robin: scan tenants in ring
  /// order, serve a tenant whose deficit covers one batch, replenish every
  /// backlogged tenant's deficit by its weight when a full scan finds no
  /// spender. Returns nullptr when every queue is empty.
  std::unique_ptr<MergeBatch> PickNext();

  /// The still-queued batch this spec may coalesce into, or nullptr.
  /// Looks up by (tenant, spec.CacheKey()): never matches across tenants.
  MergeBatch* FindCoalescible(const MergeJobSpec& spec) const;

  /// How many batches sit ahead of `batch` in its tenant's queue.
  uint64_t QueuedAhead(const MergeBatch* batch) const;

  size_t queued_batches() const { return queued_batches_; }
  size_t queued_for(const std::string& tenant) const;

 private:
  struct TenantRow {
    std::deque<std::unique_ptr<MergeBatch>> queue;
    uint64_t weight = 1;
    uint64_t deficit = 0;
  };

  uint64_t WeightOf(const std::string& tenant) const;

  uint64_t default_weight_;
  std::map<std::string, uint64_t> tenant_weights_;
  std::map<std::string, TenantRow> tenants_;
  std::vector<std::string> ring_;  ///< Tenant visit order, first-seen.
  size_t cursor_ = 0;
  size_t queued_batches_ = 0;
};

struct MergeServiceOptions {
  /// Worker threads draining batches (each runs one merge at a time).
  size_t worker_threads = 2;
  /// Session-table cap. When full and nothing terminal is evictable, new
  /// submits shed typed kResourceExhausted.
  size_t max_sessions = 4096;
  /// Admission cap on queued batches across all tenants (PR 9 shape:
  /// bounded queue, typed shedding — never unbounded growth under storms).
  size_t max_queued_batches = 256;
  /// Per-tenant queued-batch cap, so one tenant's storm cannot consume the
  /// whole admission budget.
  size_t max_queued_per_tenant = 64;
  /// How long a terminal session's result stays fetchable.
  uint64_t session_ttl_ms = 60'000;
  /// DRR weight for tenants absent from `tenant_weights`.
  uint64_t default_weight = 1;
  std::map<std::string, uint64_t> tenant_weights;
  /// Submit replay-ledger capacity (tenant-scoped idempotency tokens).
  size_t replay_ledger_cap = 4096;
  /// Test hook: replaces the real deployment+merge execution. The real
  /// path builds a deployment for the spec and runs MergeOperation::Merge.
  std::function<StatusOr<MergeWinner>(const MergeJobSpec&)> execute_override;
};

/// Monotonic service counters plus per-tenant service shares (the fairness
/// observables the saturation bench gates).
struct MergeServiceStats {
  uint64_t submitted = 0;       ///< Sessions accepted (incl. coalesced).
  uint64_t coalesced = 0;       ///< Accepted by joining a queued batch.
  uint64_t replay_hits = 0;     ///< Submits answered from the ledger.
  uint64_t completed = 0;       ///< Sessions resolved kDone.
  uint64_t failed = 0;          ///< Sessions resolved kFailed (any cause).
  uint64_t cancelled = 0;
  uint64_t shed = 0;            ///< Submits rejected kResourceExhausted.
  uint64_t expired = 0;         ///< Sessions resolved kDeadlineExceeded.
  uint64_t batches_executed = 0;
  size_t sessions_open = 0;     ///< Non-terminal sessions right now.
  size_t sessions_tracked = 0;  ///< Table size right now.
  size_t queued_batches = 0;
  /// Batches executed per tenant — the DRR service share.
  std::map<std::string, uint64_t> tenant_batches;
  /// Sessions resolved kDone per tenant.
  std::map<std::string, uint64_t> tenant_completed;
};

class MergeService {
 public:
  explicit MergeService(MergeServiceOptions options = {});
  ~MergeService();  ///< Stops (draining) if still running.

  MergeService(const MergeService&) = delete;
  MergeService& operator=(const MergeService&) = delete;

  /// kInitial → kStarting → kStarted: spawns the worker pool. Any other
  /// starting state answers kFailedPrecondition (double-start included).
  Status Start();

  /// kStarted → kStopping → kStopped: rejects new submits typed, drains
  /// every queued batch (accepted sessions all reach a terminal state),
  /// joins the workers. Idempotent: Stop on kStopped/kInitial returns Ok;
  /// a concurrent Stop blocks until the peer's drain finishes.
  Status Stop();

  ServiceState state() const;

  /// Creates (or replays, per tenant-scoped token) a session. The returned
  /// SubmitResult::coalesced marks a join onto an already-queued compatible
  /// batch. `deadline_ms` is the caller's remaining budget (0 = none).
  StatusOr<SubmitResult> Submit(const MergeJobSpec& spec,
                                std::string_view replay_token = {},
                                uint64_t deadline_ms = 0);

  /// Session state + progress. `tenant` is the caller's identity: a live
  /// session owned by another tenant answers kNotFound, exactly like a
  /// session that never existed.
  StatusOr<PollResult> Poll(std::string_view tenant,
                            std::string_view session_id);

  /// The winner of a kDone session; a kFailed session returns its terminal
  /// status, non-terminal answers kFailedPrecondition.
  StatusOr<MergeWinner> Fetch(std::string_view tenant,
                              std::string_view session_id);

  /// Queued → kCancelled (resolved immediately); running → cancel is
  /// recorded and applied when the batch finishes (returns kRunning);
  /// terminal → idempotent (returns the terminal state).
  StatusOr<SessionState> Cancel(std::string_view tenant,
                                std::string_view session_id);

  MergeServiceStats stats() const;

 private:
  using Clock = std::chrono::steady_clock;

  struct Session {
    std::string id;
    std::string tenant;
    SessionState state = SessionState::kQueued;
    MergeBatch* batch = nullptr;  ///< Null once the session leaves a batch.
    Clock::time_point deadline{};  ///< epoch() = no deadline.
    bool cancel_requested = false;
    Status error = Status::Ok();  ///< kFailed terminal status.
    std::shared_ptr<const MergeWinner> winner;  ///< kDone result.
    Clock::time_point terminal_at{};
  };

  void WorkerLoop();
  StatusOr<MergeWinner> Execute(const MergeJobSpec& spec);

  /// Resolves one session terminally and detaches it from its batch.
  void ResolveLocked(Session* session, SessionState state, Status error,
                     std::shared_ptr<const MergeWinner> winner);
  /// Typed-expires queued batch members whose budget ran out; called at
  /// dispatch and at poll, so expiry is observed without any timer thread.
  void ExpireIfPastDeadlineLocked(Session* session);
  /// TTL + capacity eviction of terminal sessions (amortized, no timers).
  void EvictLocked();
  Session* FindOwnedLocked(std::string_view tenant,
                           std::string_view session_id);
  std::string NextSessionIdLocked();

  const MergeServiceOptions options_;

  mutable std::mutex mu_;
  std::condition_variable work_cv_;     ///< Workers: batch ready / stopping.
  std::condition_variable stopped_cv_;  ///< Stop() racers await kStopped.
  ServiceState state_ = ServiceState::kInitial;
  MergeScheduler scheduler_;
  std::unordered_map<std::string, std::unique_ptr<Session>> sessions_;
  /// Insertion-ordered session ids, for TTL/capacity eviction scans.
  std::deque<std::string> session_order_;
  /// Tenant-scoped submit idempotency: key = tenant + '\0' + token.
  std::unordered_map<std::string, std::string> replay_ledger_;
  std::deque<std::string> replay_order_;
  std::vector<std::thread> workers_;
  size_t running_batches_ = 0;
  uint64_t session_seq_ = 0;
  uint64_t id_salt_ = 0;
  /// EWMA of batch execution wall ms — the dispatch-time budget check:
  /// members whose remaining budget is under the estimate expire typed
  /// instead of starting a merge that would overrun their deadline.
  double exec_ewma_ms_ = 0;
  MergeServiceStats stats_;
};

/// Builds the service-result surface from a finished merge report: winner
/// chain keys from the best outcome, artifact hashes from the merged head
/// commit. The bench's client-local reference goes through this exact
/// function, so server-vs-client comparison is field-for-field.
StatusOr<MergeWinner> WinnerFromReport(const merge::MergeReport& report,
                                       version::PipelineRepo* repo,
                                       const std::string& head_branch);

}  // namespace mlcask::service

#endif  // MLCASK_SERVICE_MERGE_SERVICE_H_
