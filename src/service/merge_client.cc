#include "service/merge_client.h"

#include <chrono>
#include <cstdio>
#include <random>
#include <thread>

namespace mlcask::service {

MergeServiceClient::MergeServiceClient(storage::Transport* transport,
                                       std::string tenant)
    : transport_(transport), tenant_(std::move(tenant)) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "mc%08x-",
                static_cast<unsigned>(std::random_device{}()));
  token_prefix_ = buf;
}

std::string MergeServiceClient::NextReplayToken() {
  return token_prefix_ + std::to_string(++token_seq_);
}

StatusOr<SubmitResult> MergeServiceClient::Submit(MergeJobSpec spec) {
  spec.tenant = tenant_;
  auto response =
      transport_->Call(EncodeSubmitRequest(spec, NextReplayToken()));
  MLCASK_RETURN_IF_ERROR(response.status());
  return DecodeSubmitResponse(*response);
}

StatusOr<PollResult> MergeServiceClient::Poll(const std::string& session_id) {
  auto response = transport_->Call(
      EncodeSessionRequest(ServiceOp::kPollMerge, tenant_, session_id));
  MLCASK_RETURN_IF_ERROR(response.status());
  return DecodePollResponse(*response);
}

StatusOr<MergeWinner> MergeServiceClient::Fetch(
    const std::string& session_id) {
  auto response = transport_->Call(
      EncodeSessionRequest(ServiceOp::kFetchWinner, tenant_, session_id));
  MLCASK_RETURN_IF_ERROR(response.status());
  return DecodeWinnerResponse(*response);
}

StatusOr<SessionState> MergeServiceClient::Cancel(
    const std::string& session_id) {
  auto response = transport_->Call(
      EncodeSessionRequest(ServiceOp::kCancelMerge, tenant_, session_id));
  MLCASK_RETURN_IF_ERROR(response.status());
  return DecodeCancelResponse(*response);
}

StatusOr<MergeWinner> MergeServiceClient::AwaitWinner(
    const std::string& session_id, uint64_t poll_interval_ms,
    uint64_t timeout_ms) {
  using Clock = std::chrono::steady_clock;
  const auto give_up =
      timeout_ms > 0 ? Clock::now() + std::chrono::milliseconds(timeout_ms)
                     : Clock::time_point::max();
  for (;;) {
    auto poll = Poll(session_id);
    MLCASK_RETURN_IF_ERROR(poll.status());
    if (IsTerminal(poll->state)) {
      if (poll->state == SessionState::kFailed) {
        // Surface the session's own terminal status, not a generic fetch
        // error: shed/expired sessions resolve typed end to end.
        return Status(poll->error_code, poll->error_message);
      }
      return Fetch(session_id);
    }
    if (Clock::now() >= give_up) {
      return Status::DeadlineExceeded("merge session still " +
                                      std::string(SessionStateName(
                                          poll->state)) +
                                      " after await timeout");
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(poll_interval_ms));
  }
}

}  // namespace mlcask::service
