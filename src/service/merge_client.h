#ifndef MLCASK_SERVICE_MERGE_CLIENT_H_
#define MLCASK_SERVICE_MERGE_CLIENT_H_

#include <cstdint>
#include <string>

#include "common/status.h"
#include "service/service_codec.h"
#include "storage/transport.h"

namespace mlcask::service {

/// Client stub for the merge service: encodes requests, rides any Transport
/// (socket or loopback), decodes typed results. One client speaks for ONE
/// tenant — the tenant id stamps every request, and the service answers
/// NotFound for sessions other tenants own.
///
/// Submits carry a client-unique replay token, so a transport-level redial
/// replay (lost response, killed connection) lands on the session the first
/// delivery created instead of minting a duplicate.
class MergeServiceClient {
 public:
  /// `transport` is non-owning and must outlive the client.
  MergeServiceClient(storage::Transport* transport, std::string tenant);

  const std::string& tenant() const { return tenant_; }

  /// Submits `spec` under this client's tenant (spec.tenant is overridden).
  StatusOr<SubmitResult> Submit(MergeJobSpec spec);

  StatusOr<PollResult> Poll(const std::string& session_id);
  StatusOr<MergeWinner> Fetch(const std::string& session_id);
  StatusOr<SessionState> Cancel(const std::string& session_id);

  /// Polls until the session is terminal, then fetches. kDone returns the
  /// winner; kFailed returns the session's typed terminal status;
  /// kCancelled returns kFailedPrecondition. `timeout_ms` bounds the wait
  /// (0 = forever); expiry returns kDeadlineExceeded without wedging.
  StatusOr<MergeWinner> AwaitWinner(const std::string& session_id,
                                    uint64_t poll_interval_ms = 2,
                                    uint64_t timeout_ms = 0);

 private:
  std::string NextReplayToken();

  storage::Transport* transport_;
  std::string tenant_;
  std::string token_prefix_;
  uint64_t token_seq_ = 0;
};

}  // namespace mlcask::service

#endif  // MLCASK_SERVICE_MERGE_CLIENT_H_
