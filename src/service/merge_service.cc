#include "service/merge_service.h"

#include <algorithm>
#include <cstdio>
#include <random>

#include "merge/merge_op.h"
#include "sim/scenario.h"

namespace mlcask::service {

const char* ServiceStateName(ServiceState state) {
  switch (state) {
    case ServiceState::kInitial: return "initial";
    case ServiceState::kStarting: return "starting";
    case ServiceState::kStarted: return "started";
    case ServiceState::kStopping: return "stopping";
    case ServiceState::kStopped: return "stopped";
  }
  return "unknown";
}

// --- MergeScheduler --------------------------------------------------------

MergeScheduler::MergeScheduler(uint64_t default_weight,
                               std::map<std::string, uint64_t> tenant_weights)
    : default_weight_(std::max<uint64_t>(1, default_weight)),
      tenant_weights_(std::move(tenant_weights)) {}

uint64_t MergeScheduler::WeightOf(const std::string& tenant) const {
  auto it = tenant_weights_.find(tenant);
  // Weight 0 would starve a tenant forever; clamp to 1 so every backlogged
  // tenant makes progress each replenish cycle.
  return it == tenant_weights_.end() ? default_weight_
                                     : std::max<uint64_t>(1, it->second);
}

void MergeScheduler::Enqueue(std::unique_ptr<MergeBatch> batch) {
  const std::string& tenant = batch->spec.tenant;
  auto [it, inserted] = tenants_.try_emplace(tenant);
  if (inserted) {
    it->second.weight = WeightOf(tenant);
    ring_.push_back(tenant);
  }
  it->second.queue.push_back(std::move(batch));
  ++queued_batches_;
}

std::unique_ptr<MergeBatch> MergeScheduler::PickNext() {
  if (queued_batches_ == 0 || ring_.empty()) return nullptr;
  // Two passes: serve a tenant whose deficit covers one batch; when a full
  // scan finds no spender, replenish every backlogged tenant by its weight
  // and scan again. Unit batch cost makes service counts proportional to
  // weights whenever tenants stay backlogged.
  for (int pass = 0; pass < 2; ++pass) {
    for (size_t i = 0; i < ring_.size(); ++i) {
      const size_t idx = (cursor_ + i) % ring_.size();
      TenantRow& row = tenants_[ring_[idx]];
      if (row.queue.empty() || row.deficit < 1) continue;
      row.deficit -= 1;
      auto batch = std::move(row.queue.front());
      row.queue.pop_front();
      --queued_batches_;
      // An idle tenant must not hoard credit and later burst past its
      // share: deficit resets when its backlog clears.
      if (row.queue.empty()) row.deficit = 0;
      // Stay on this tenant while its deficit lasts (DRR serves bursts of
      // `weight` batches per cycle).
      cursor_ = idx;
      return batch;
    }
    for (auto& [name, row] : tenants_) {
      if (!row.queue.empty()) row.deficit += row.weight;
    }
    cursor_ = (cursor_ + 1) % ring_.size();
  }
  return nullptr;
}

MergeBatch* MergeScheduler::FindCoalescible(const MergeJobSpec& spec) const {
  auto it = tenants_.find(spec.tenant);
  if (it == tenants_.end()) return nullptr;
  const std::string key = spec.CacheKey();
  for (const auto& batch : it->second.queue) {
    if (batch->spec.CacheKey() == key) return batch.get();
  }
  return nullptr;
}

uint64_t MergeScheduler::QueuedAhead(const MergeBatch* batch) const {
  auto it = tenants_.find(batch->spec.tenant);
  if (it == tenants_.end()) return 0;
  uint64_t ahead = 0;
  for (const auto& queued : it->second.queue) {
    if (queued.get() == batch) return ahead;
    ++ahead;
  }
  return 0;
}

size_t MergeScheduler::queued_for(const std::string& tenant) const {
  auto it = tenants_.find(tenant);
  return it == tenants_.end() ? 0 : it->second.queue.size();
}

// --- MergeService ----------------------------------------------------------

MergeService::MergeService(MergeServiceOptions options)
    : options_(std::move(options)),
      scheduler_(options_.default_weight, options_.tenant_weights) {
  id_salt_ = std::random_device{}();
}

MergeService::~MergeService() { (void)Stop(); }

Status MergeService::Start() {
  std::unique_lock<std::mutex> lock(mu_);
  if (state_ != ServiceState::kInitial) {
    return Status::FailedPrecondition(
        std::string("merge service cannot start from state ") +
        ServiceStateName(state_));
  }
  state_ = ServiceState::kStarting;
  lock.unlock();
  std::vector<std::thread> workers;
  const size_t count = std::max<size_t>(1, options_.worker_threads);
  workers.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    workers.emplace_back([this] { WorkerLoop(); });
  }
  lock.lock();
  workers_ = std::move(workers);
  state_ = ServiceState::kStarted;
  stopped_cv_.notify_all();
  return Status::Ok();
}

Status MergeService::Stop() {
  std::unique_lock<std::mutex> lock(mu_);
  // A racing Start() is mid-spawn; wait for it to settle before stopping.
  stopped_cv_.wait(lock, [this] { return state_ != ServiceState::kStarting; });
  if (state_ == ServiceState::kInitial) {
    state_ = ServiceState::kStopped;
    stopped_cv_.notify_all();
    return Status::Ok();
  }
  if (state_ == ServiceState::kStopped) return Status::Ok();
  if (state_ == ServiceState::kStopping) {
    stopped_cv_.wait(lock,
                     [this] { return state_ == ServiceState::kStopped; });
    return Status::Ok();
  }
  state_ = ServiceState::kStopping;
  work_cv_.notify_all();
  std::vector<std::thread> workers = std::move(workers_);
  lock.unlock();
  for (std::thread& worker : workers) worker.join();
  lock.lock();
  state_ = ServiceState::kStopped;
  stopped_cv_.notify_all();
  return Status::Ok();
}

ServiceState MergeService::state() const {
  std::lock_guard<std::mutex> lock(mu_);
  return state_;
}

std::string MergeService::NextSessionIdLocked() {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "s%08x-%llu",
                static_cast<unsigned>(id_salt_),
                static_cast<unsigned long long>(++session_seq_));
  return buf;
}

StatusOr<SubmitResult> MergeService::Submit(const MergeJobSpec& spec,
                                            std::string_view replay_token,
                                            uint64_t deadline_ms) {
  if (spec.tenant.empty()) {
    return Status::InvalidArgument("submit_merge requires a tenant id");
  }
  std::lock_guard<std::mutex> lock(mu_);
  if (state_ == ServiceState::kInitial || state_ == ServiceState::kStarting) {
    return Status::FailedPrecondition("merge service is not started");
  }
  if (state_ != ServiceState::kStarted) {
    return Status::Unavailable(
        "merge service is stopping: new submissions rejected");
  }
  EvictLocked();

  // Tenant-scoped submit idempotency: the same (tenant, token) pair always
  // lands on one session, and two tenants NEVER share a ledger row even for
  // byte-identical tokens.
  std::string ledger_key;
  if (!replay_token.empty()) {
    ledger_key.reserve(spec.tenant.size() + 1 + replay_token.size());
    ledger_key.append(spec.tenant);
    ledger_key.push_back('\0');
    ledger_key.append(replay_token);
    auto it = replay_ledger_.find(ledger_key);
    if (it != replay_ledger_.end() && sessions_.count(it->second) > 0) {
      ++stats_.replay_hits;
      return SubmitResult{it->second, false};
    }
  }

  MergeBatch* batch = scheduler_.FindCoalescible(spec);
  const bool coalesced = batch != nullptr;
  if (!coalesced &&
      (scheduler_.queued_batches() >= options_.max_queued_batches ||
       scheduler_.queued_for(spec.tenant) >= options_.max_queued_per_tenant)) {
    ++stats_.shed;
    return Status::ResourceExhausted("merge admission queue is full");
  }
  if (sessions_.size() >= options_.max_sessions) {
    ++stats_.shed;
    return Status::ResourceExhausted("merge session table is full");
  }

  auto session = std::make_unique<Session>();
  session->id = NextSessionIdLocked();
  session->tenant = spec.tenant;
  if (deadline_ms > 0) {
    session->deadline = Clock::now() + std::chrono::milliseconds(deadline_ms);
  }
  if (!coalesced) {
    auto owned = std::make_unique<MergeBatch>();
    owned->spec = spec;
    batch = owned.get();
    scheduler_.Enqueue(std::move(owned));
  }
  batch->session_ids.push_back(session->id);
  session->batch = batch;

  const std::string session_id = session->id;
  session_order_.push_back(session_id);
  sessions_.emplace(session_id, std::move(session));
  if (!ledger_key.empty()) {
    replay_ledger_[ledger_key] = session_id;
    replay_order_.push_back(ledger_key);
    while (replay_order_.size() > options_.replay_ledger_cap) {
      replay_ledger_.erase(replay_order_.front());
      replay_order_.pop_front();
    }
  }
  ++stats_.submitted;
  if (coalesced) ++stats_.coalesced;
  ++stats_.sessions_open;
  work_cv_.notify_one();
  return SubmitResult{session_id, coalesced};
}

MergeService::Session* MergeService::FindOwnedLocked(
    std::string_view tenant, std::string_view session_id) {
  auto it = sessions_.find(std::string(session_id));
  if (it == sessions_.end()) return nullptr;
  // A foreign session answers exactly like a missing one: tenants cannot
  // probe whether another tenant's session id exists.
  if (it->second->tenant != tenant) return nullptr;
  return it->second.get();
}

StatusOr<PollResult> MergeService::Poll(std::string_view tenant,
                                        std::string_view session_id) {
  std::lock_guard<std::mutex> lock(mu_);
  EvictLocked();
  Session* session = FindOwnedLocked(tenant, session_id);
  if (session == nullptr) {
    return Status::NotFound("unknown merge session");
  }
  ExpireIfPastDeadlineLocked(session);
  PollResult result;
  result.state = session->state;
  if (session->state == SessionState::kQueued && session->batch != nullptr) {
    result.queued_ahead = scheduler_.QueuedAhead(session->batch);
  }
  if (session->state == SessionState::kFailed) {
    result.error_code = session->error.code();
    result.error_message = session->error.message();
  }
  return result;
}

StatusOr<MergeWinner> MergeService::Fetch(std::string_view tenant,
                                          std::string_view session_id) {
  std::lock_guard<std::mutex> lock(mu_);
  EvictLocked();
  Session* session = FindOwnedLocked(tenant, session_id);
  if (session == nullptr) {
    return Status::NotFound("unknown merge session");
  }
  ExpireIfPastDeadlineLocked(session);
  switch (session->state) {
    case SessionState::kDone:
      return *session->winner;
    case SessionState::kFailed:
      return session->error;
    case SessionState::kCancelled:
      return Status::FailedPrecondition("merge session was cancelled");
    case SessionState::kQueued:
    case SessionState::kRunning:
      return Status::FailedPrecondition(
          std::string("merge session is still ") +
          SessionStateName(session->state));
  }
  return Status::Internal("merge session in unknown state");
}

StatusOr<SessionState> MergeService::Cancel(std::string_view tenant,
                                            std::string_view session_id) {
  std::lock_guard<std::mutex> lock(mu_);
  Session* session = FindOwnedLocked(tenant, session_id);
  if (session == nullptr) {
    return Status::NotFound("unknown merge session");
  }
  if (IsTerminal(session->state)) return session->state;  // idempotent
  if (session->state == SessionState::kRunning) {
    // Too late to stop the batch; the cancellation applies when it lands.
    session->cancel_requested = true;
    return SessionState::kRunning;
  }
  ResolveLocked(session, SessionState::kCancelled, Status::Ok(), nullptr);
  return SessionState::kCancelled;
}

MergeServiceStats MergeService::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  MergeServiceStats snapshot = stats_;
  snapshot.sessions_tracked = sessions_.size();
  snapshot.queued_batches = scheduler_.queued_batches();
  return snapshot;
}

void MergeService::ResolveLocked(Session* session, SessionState state,
                                 Status error,
                                 std::shared_ptr<const MergeWinner> winner) {
  if (IsTerminal(session->state)) return;
  if (session->batch != nullptr) {
    auto& ids = session->batch->session_ids;
    ids.erase(std::remove(ids.begin(), ids.end(), session->id), ids.end());
    session->batch = nullptr;
  }
  session->state = state;
  session->error = std::move(error);
  session->winner = std::move(winner);
  session->terminal_at = Clock::now();
  if (stats_.sessions_open > 0) --stats_.sessions_open;
  switch (state) {
    case SessionState::kDone:
      ++stats_.completed;
      ++stats_.tenant_completed[session->tenant];
      break;
    case SessionState::kFailed:
      if (session->error.IsDeadlineExceeded()) {
        ++stats_.expired;
      } else {
        ++stats_.failed;
      }
      break;
    case SessionState::kCancelled:
      ++stats_.cancelled;
      break;
    default:
      break;
  }
}

void MergeService::ExpireIfPastDeadlineLocked(Session* session) {
  if (session->state != SessionState::kQueued) return;
  if (session->deadline == Clock::time_point{}) return;
  if (Clock::now() < session->deadline) return;
  ResolveLocked(session, SessionState::kFailed,
                Status::DeadlineExceeded(
                    "merge session deadline expired while queued"),
                nullptr);
}

void MergeService::EvictLocked() {
  const auto now = Clock::now();
  const auto ttl = std::chrono::milliseconds(options_.session_ttl_ms);
  size_t scanned = 0;
  for (auto it = session_order_.begin();
       it != session_order_.end() && scanned < 128;) {
    auto sit = sessions_.find(*it);
    if (sit == sessions_.end()) {
      it = session_order_.erase(it);
      continue;
    }
    ++scanned;
    Session* session = sit->second.get();
    const bool at_capacity = sessions_.size() >= options_.max_sessions;
    if (IsTerminal(session->state) &&
        (at_capacity || now - session->terminal_at >= ttl)) {
      sessions_.erase(sit);
      it = session_order_.erase(it);
    } else {
      ++it;
    }
  }
}

void MergeService::WorkerLoop() {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    std::unique_ptr<MergeBatch> batch;
    for (;;) {
      batch = scheduler_.PickNext();
      if (batch != nullptr) break;
      // `stopping` drains: workers only exit once every queued batch has
      // been served (new submits are already rejected typed).
      if (state_ == ServiceState::kStopping) return;
      work_cv_.wait(lock);
    }

    // Dispatch-time budget check: members already past their deadline — or
    // whose remaining budget is under the estimated execution time —
    // resolve typed now instead of overrunning mid-merge.
    const auto now = Clock::now();
    const std::vector<std::string> members = batch->session_ids;
    for (const std::string& id : members) {
      auto it = sessions_.find(id);
      if (it == sessions_.end()) continue;
      Session* session = it->second.get();
      if (session->state != SessionState::kQueued) continue;
      if (session->deadline == Clock::time_point{}) continue;
      const double remaining_ms =
          std::chrono::duration<double, std::milli>(session->deadline - now)
              .count();
      if (remaining_ms <= 0) {
        ResolveLocked(session, SessionState::kFailed,
                      Status::DeadlineExceeded(
                          "merge session deadline expired while queued"),
                      nullptr);
      } else if (exec_ewma_ms_ > 0 && remaining_ms < exec_ewma_ms_) {
        ResolveLocked(session, SessionState::kFailed,
                      Status::DeadlineExceeded(
                          "remaining budget below estimated merge time"),
                      nullptr);
      }
    }
    if (batch->session_ids.empty()) continue;  // everyone left: skip the run

    batch->running = true;
    for (const std::string& id : batch->session_ids) {
      auto it = sessions_.find(id);
      if (it != sessions_.end()) {
        it->second->state = SessionState::kRunning;
      }
    }
    ++running_batches_;
    const MergeJobSpec spec = batch->spec;
    lock.unlock();

    const auto t0 = Clock::now();
    StatusOr<MergeWinner> result = Execute(spec);
    const double wall_ms =
        std::chrono::duration<double, std::milli>(Clock::now() - t0).count();

    lock.lock();
    exec_ewma_ms_ = exec_ewma_ms_ == 0
                        ? wall_ms
                        : 0.7 * exec_ewma_ms_ + 0.3 * wall_ms;
    ++stats_.batches_executed;
    ++stats_.tenant_batches[spec.tenant];
    std::shared_ptr<const MergeWinner> winner;
    if (result.ok()) {
      winner = std::make_shared<const MergeWinner>(*std::move(result));
    }
    const std::vector<std::string> resolved = batch->session_ids;
    for (const std::string& id : resolved) {
      auto it = sessions_.find(id);
      if (it == sessions_.end()) continue;
      Session* session = it->second.get();
      if (session->cancel_requested) {
        ResolveLocked(session, SessionState::kCancelled, Status::Ok(),
                      nullptr);
      } else if (!result.ok()) {
        ResolveLocked(session, SessionState::kFailed, result.status(),
                      nullptr);
      } else {
        ResolveLocked(session, SessionState::kDone, Status::Ok(), winner);
      }
    }
    --running_batches_;
    // A stopping peer may be waiting for the queue to drain.
    work_cv_.notify_all();
  }
}

StatusOr<MergeWinner> MergeService::Execute(const MergeJobSpec& spec) {
  if (options_.execute_override) return options_.execute_override(spec);
  sim::DeploymentConfig config;
  config.num_workers = std::max<uint32_t>(1, spec.num_workers);
  config.storage_shards = spec.storage_shards;
  auto deployment = sim::MakeDeployment(spec.workload, spec.scale, config);
  MLCASK_RETURN_IF_ERROR(deployment.status());
  auto d = *std::move(deployment);
  auto scenario = sim::BuildDistributedMergeScenario(
      d.get(), spec.extra_extractor_versions, spec.extra_model_versions);
  MLCASK_RETURN_IF_ERROR(scenario.status());
  merge::MergeOperation op(d->repo.get(), d->libraries.get(),
                           d->registry.get(), d->engine.get(),
                           d->clock.get());
  merge::MergeOptions options;
  options.shards = spec.merge_shards;
  options.num_workers = std::max<uint32_t>(1, spec.num_workers);
  options.optimize_metric = spec.optimize_metric;
  options.seed = spec.seed;
  // Single-node drains ride the deployment's shared ExecutionCore; sharded
  // drains build per-shard cores (see MergeOptions::core).
  if (spec.merge_shards <= 1) options.core = d->core.get();
  auto report = op.Merge(scenario->head_branch, scenario->merge_branch,
                         options);
  MLCASK_RETURN_IF_ERROR(report.status());
  return WinnerFromReport(*report, d->repo.get(), scenario->head_branch);
}

StatusOr<MergeWinner> WinnerFromReport(const merge::MergeReport& report,
                                       version::PipelineRepo* repo,
                                       const std::string& head_branch) {
  MergeWinner winner;
  winner.component_executions = report.component_executions;
  winner.best_index = report.best_index;
  winner.best_score = report.best_score;
  winner.candidates_considered = report.candidates_considered;
  winner.makespan_s = report.makespan_s;
  winner.merge_commit = report.merge_commit;
  if (report.best_index >= 0 &&
      static_cast<size_t>(report.best_index) < report.outcomes.size()) {
    const merge::CandidateChain& chain =
        report.outcomes[static_cast<size_t>(report.best_index)].chain;
    for (const pipeline::ComponentVersionSpec* spec : chain) {
      winner.winner_chain.push_back(spec->Key());
    }
  } else if (!report.fast_forward) {
    return Status::Internal("merge report carries no winning candidate");
  }
  auto head = repo->Head(head_branch);
  MLCASK_RETURN_IF_ERROR(head.status());
  for (const version::ComponentRecord& rec : (*head)->snapshot.components) {
    winner.artifact_hashes.push_back(rec.output_id);
  }
  return winner;
}

}  // namespace mlcask::service
