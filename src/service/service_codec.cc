#include "service/service_codec.h"

#include <cstring>

#include "storage/deadline.h"

namespace mlcask::service {

namespace wire = mlcask::storage::wire;
using storage::DeadlineScope;

namespace {

// Submit-request meta tags. 5/6 are the generic replay-token/deadline tags
// (storage/wire_codec.h) and are deliberately left out of the spec layout.
constexpr uint32_t kTagTenant = 1;          // bytes
constexpr uint32_t kTagWorkload = 2;        // bytes
constexpr uint32_t kTagScale = 3;           // f64
constexpr uint32_t kTagMetric = 4;          // bytes
constexpr uint32_t kTagExtraExtractors = 7; // varint
constexpr uint32_t kTagExtraModels = 8;     // varint
constexpr uint32_t kTagStorageShards = 9;   // varint
constexpr uint32_t kTagMergeShards = 10;    // varint
constexpr uint32_t kTagNumWorkers = 11;     // varint
constexpr uint32_t kTagSeed = 12;           // varint
constexpr uint32_t kTagSessionId = 13;      // bytes (session requests)

// Response tags (per-message tag spaces, like the storage codec).
constexpr uint32_t kTagRespSession = 1;     // submit: session id (bytes)
constexpr uint32_t kTagRespCoalesced = 2;   // submit: joined a batch (varint)

constexpr uint32_t kTagRespState = 1;       // poll/cancel: state (varint)
constexpr uint32_t kTagRespQueuedAhead = 2; // poll: batches ahead (varint)
constexpr uint32_t kTagRespErrCode = 3;     // poll: failed status (varint)
constexpr uint32_t kTagRespErrMessage = 4;  // poll: failed message (bytes)

constexpr uint32_t kTagRespExecutions = 1;  // winner: executions (varint)
constexpr uint32_t kTagRespBestIndex = 2;   // winner: best index + 1 (varint)
constexpr uint32_t kTagRespBestScore = 3;   // winner: best score (f64)
constexpr uint32_t kTagRespCandidates = 4;  // winner: considered (varint)
constexpr uint32_t kTagRespMakespan = 5;    // winner: makespan_s (f64)
constexpr uint32_t kTagRespCommit = 6;      // winner: merge commit (hash)
constexpr uint32_t kTagRespFingerprint = 7; // winner: fingerprint (hash)

void StampAmbientDeadline(std::string* meta) {
  const uint64_t remaining = DeadlineScope::CurrentRemainingMs();
  if (remaining > 0) {
    wire::PutMetaVarint(meta, wire::kTagRequestDeadline, remaining);
  }
}

}  // namespace

bool IsServiceRequest(std::string_view message) {
  return wire::IsBinaryMessage(message) && message.size() >= 2 &&
         static_cast<uint8_t>(message[1]) >= wire::kServiceOpcodeBase;
}

bool IsTerminal(SessionState state) {
  return state == SessionState::kDone || state == SessionState::kFailed ||
         state == SessionState::kCancelled;
}

const char* SessionStateName(SessionState state) {
  switch (state) {
    case SessionState::kQueued: return "queued";
    case SessionState::kRunning: return "running";
    case SessionState::kDone: return "done";
    case SessionState::kFailed: return "failed";
    case SessionState::kCancelled: return "cancelled";
  }
  return "unknown";
}

std::string MergeJobSpec::CacheKey() const {
  // '\x1f' separators keep adjacent fields from gluing into collisions.
  std::string key;
  key.append(workload);
  key.push_back('\x1f');
  uint64_t scale_bits = 0;
  std::memcpy(&scale_bits, &scale, sizeof(scale_bits));
  key.append(std::to_string(scale_bits));
  key.push_back('\x1f');
  key.append(std::to_string(extra_extractor_versions));
  key.push_back('\x1f');
  key.append(std::to_string(extra_model_versions));
  key.push_back('\x1f');
  key.append(std::to_string(storage_shards));
  key.push_back('\x1f');
  key.append(std::to_string(merge_shards));
  key.push_back('\x1f');
  key.append(std::to_string(num_workers));
  key.push_back('\x1f');
  key.append(optimize_metric);
  key.push_back('\x1f');
  key.append(std::to_string(seed));
  return key;
}

Hash256 MergeWinner::Fingerprint() const {
  Sha256 hasher;
  auto mix_u64 = [&hasher](uint64_t v) {
    char bytes[8];
    for (int i = 0; i < 8; ++i) bytes[i] = static_cast<char>(v >> (8 * i));
    hasher.Update(std::string_view(bytes, sizeof(bytes)));
  };
  mix_u64(component_executions);
  mix_u64(static_cast<uint64_t>(static_cast<int64_t>(best_index)));
  uint64_t score_bits = 0;
  std::memcpy(&score_bits, &best_score, sizeof(score_bits));
  mix_u64(score_bits);
  mix_u64(candidates_considered);
  hasher.Update(std::string_view(
      reinterpret_cast<const char*>(merge_commit.bytes.data()),
      merge_commit.bytes.size()));
  mix_u64(winner_chain.size());
  for (const std::string& key : winner_chain) {
    mix_u64(key.size());
    hasher.Update(key);
  }
  mix_u64(artifact_hashes.size());
  for (const Hash256& hash : artifact_hashes) {
    hasher.Update(std::string_view(
        reinterpret_cast<const char*>(hash.bytes.data()), hash.bytes.size()));
  }
  return hasher.Finish();
}

// --- requests --------------------------------------------------------------

std::string EncodeSubmitRequest(const MergeJobSpec& spec,
                                std::string_view replay_token) {
  std::string meta;
  wire::PutMetaBytes(&meta, kTagTenant, spec.tenant);
  wire::PutMetaBytes(&meta, kTagWorkload, spec.workload);
  wire::PutMetaF64(&meta, kTagScale, spec.scale);
  if (!spec.optimize_metric.empty()) {
    wire::PutMetaBytes(&meta, kTagMetric, spec.optimize_metric);
  }
  if (!replay_token.empty()) {
    wire::PutMetaBytes(&meta, wire::kTagRequestReplayToken, replay_token);
  }
  StampAmbientDeadline(&meta);
  wire::PutMetaVarint(&meta, kTagExtraExtractors,
                      static_cast<uint64_t>(spec.extra_extractor_versions));
  wire::PutMetaVarint(&meta, kTagExtraModels,
                      static_cast<uint64_t>(spec.extra_model_versions));
  wire::PutMetaVarint(&meta, kTagStorageShards, spec.storage_shards);
  wire::PutMetaVarint(&meta, kTagMergeShards, spec.merge_shards);
  wire::PutMetaVarint(&meta, kTagNumWorkers, spec.num_workers);
  wire::PutMetaVarint(&meta, kTagSeed, spec.seed);
  return wire::AssembleMessage(
      static_cast<uint8_t>(ServiceOp::kSubmitMerge), meta, {});
}

std::string EncodeSessionRequest(ServiceOp op, std::string_view tenant,
                                 std::string_view session_id) {
  std::string meta;
  wire::PutMetaBytes(&meta, kTagTenant, tenant);
  wire::PutMetaBytes(&meta, kTagSessionId, session_id);
  StampAmbientDeadline(&meta);
  return wire::AssembleMessage(static_cast<uint8_t>(op), meta, {});
}

StatusOr<ServiceOp> PeekServiceOp(std::string_view message) {
  if (!IsServiceRequest(message)) {
    return Status::InvalidArgument("not a merge-service request");
  }
  const uint8_t opcode = static_cast<uint8_t>(message[1]);
  if (opcode < static_cast<uint8_t>(ServiceOp::kSubmitMerge) ||
      opcode > static_cast<uint8_t>(ServiceOp::kCancelMerge)) {
    return Status::Unimplemented("unknown merge-service opcode " +
                                 std::to_string(opcode));
  }
  return static_cast<ServiceOp>(opcode);
}

StatusOr<SubmitRequest> DecodeSubmitRequest(std::string_view message) {
  auto op = PeekServiceOp(message);
  MLCASK_RETURN_IF_ERROR(op.status());
  if (*op != ServiceOp::kSubmitMerge) {
    return Status::InvalidArgument("not a submit_merge request");
  }
  uint8_t opcode = 0;
  std::string_view meta;
  std::string_view body;
  MLCASK_RETURN_IF_ERROR(
      wire::DisassembleMessage(message, &opcode, &meta, &body));
  SubmitRequest request;
  wire::MetaReader reader(meta);
  while (reader.Next()) {
    switch (reader.tag()) {
      case kTagTenant:
        request.spec.tenant = std::string(reader.bytes());
        break;
      case kTagWorkload:
        request.spec.workload = std::string(reader.bytes());
        break;
      case kTagScale:
        request.spec.scale = reader.f64();
        break;
      case kTagMetric:
        request.spec.optimize_metric = std::string(reader.bytes());
        break;
      case wire::kTagRequestReplayToken:
        request.replay_token = reader.bytes();
        break;
      case wire::kTagRequestDeadline:
        request.deadline_ms = reader.varint();
        break;
      case kTagExtraExtractors:
        request.spec.extra_extractor_versions =
            static_cast<int>(reader.varint());
        break;
      case kTagExtraModels:
        request.spec.extra_model_versions = static_cast<int>(reader.varint());
        break;
      case kTagStorageShards:
        request.spec.storage_shards = static_cast<uint32_t>(reader.varint());
        break;
      case kTagMergeShards:
        request.spec.merge_shards = static_cast<uint32_t>(reader.varint());
        break;
      case kTagNumWorkers:
        request.spec.num_workers = static_cast<uint32_t>(reader.varint());
        break;
      case kTagSeed:
        request.spec.seed = reader.varint();
        break;
      default:
        break;
    }
  }
  if (reader.malformed()) {
    return Status::InvalidArgument("malformed submit_merge meta");
  }
  if (request.spec.tenant.empty()) {
    return Status::InvalidArgument("submit_merge requires a tenant id");
  }
  return request;
}

StatusOr<SessionRequest> DecodeSessionRequest(std::string_view message) {
  auto op = PeekServiceOp(message);
  MLCASK_RETURN_IF_ERROR(op.status());
  if (*op == ServiceOp::kSubmitMerge) {
    return Status::InvalidArgument("submit_merge is not a session request");
  }
  uint8_t opcode = 0;
  std::string_view meta;
  std::string_view body;
  MLCASK_RETURN_IF_ERROR(
      wire::DisassembleMessage(message, &opcode, &meta, &body));
  SessionRequest request;
  request.op = *op;
  wire::MetaReader reader(meta);
  while (reader.Next()) {
    switch (reader.tag()) {
      case kTagTenant:
        request.tenant = reader.bytes();
        break;
      case kTagSessionId:
        request.session_id = reader.bytes();
        break;
      case wire::kTagRequestDeadline:
        request.deadline_ms = reader.varint();
        break;
      default:
        break;
    }
  }
  if (reader.malformed()) {
    return Status::InvalidArgument("malformed session request meta");
  }
  if (request.session_id.empty()) {
    return Status::InvalidArgument("session request requires a session id");
  }
  return request;
}

// --- responses -------------------------------------------------------------

namespace {

/// Disassembles an ok-response; a non-ok second byte decodes into the typed
/// status the server sent (the storage codec's error envelope).
Status OpenOkResponse(std::string_view message, std::string_view* meta,
                      std::string_view* body) {
  uint8_t code = 0;
  MLCASK_RETURN_IF_ERROR(
      wire::DisassembleMessage(message, &code, meta, body));
  if (code != 0) {
    std::string_view rest;
    return wire::DecodeResponseStatus(message, &rest);
  }
  return Status::Ok();
}

}  // namespace

std::string EncodeSubmitResponse(std::string_view session_id, bool coalesced) {
  std::string meta;
  wire::PutMetaBytes(&meta, kTagRespSession, session_id);
  wire::PutMetaVarint(&meta, kTagRespCoalesced, coalesced ? 1 : 0);
  return wire::AssembleMessage(0, meta, {});
}

StatusOr<SubmitResult> DecodeSubmitResponse(std::string_view message) {
  std::string_view meta;
  std::string_view body;
  MLCASK_RETURN_IF_ERROR(OpenOkResponse(message, &meta, &body));
  SubmitResult result;
  wire::MetaReader reader(meta);
  while (reader.Next()) {
    switch (reader.tag()) {
      case kTagRespSession:
        result.session_id = std::string(reader.bytes());
        break;
      case kTagRespCoalesced:
        result.coalesced = reader.varint() != 0;
        break;
      default:
        break;
    }
  }
  if (reader.malformed() || result.session_id.empty()) {
    return Status::Corruption("malformed submit_merge response");
  }
  return result;
}

std::string EncodePollResponse(const PollResult& result) {
  std::string meta;
  wire::PutMetaVarint(&meta, kTagRespState,
                      static_cast<uint64_t>(result.state));
  wire::PutMetaVarint(&meta, kTagRespQueuedAhead, result.queued_ahead);
  if (result.state == SessionState::kFailed) {
    wire::PutMetaVarint(&meta, kTagRespErrCode,
                        static_cast<uint64_t>(result.error_code));
    wire::PutMetaBytes(&meta, kTagRespErrMessage, result.error_message);
  }
  return wire::AssembleMessage(0, meta, {});
}

StatusOr<PollResult> DecodePollResponse(std::string_view message) {
  std::string_view meta;
  std::string_view body;
  MLCASK_RETURN_IF_ERROR(OpenOkResponse(message, &meta, &body));
  PollResult result;
  bool saw_state = false;
  wire::MetaReader reader(meta);
  while (reader.Next()) {
    switch (reader.tag()) {
      case kTagRespState:
        result.state = static_cast<SessionState>(reader.varint());
        saw_state = true;
        break;
      case kTagRespQueuedAhead:
        result.queued_ahead = reader.varint();
        break;
      case kTagRespErrCode:
        result.error_code = static_cast<StatusCode>(reader.varint());
        break;
      case kTagRespErrMessage:
        result.error_message = std::string(reader.bytes());
        break;
      default:
        break;
    }
  }
  if (reader.malformed() || !saw_state) {
    return Status::Corruption("malformed poll_merge response");
  }
  return result;
}

std::string EncodeWinnerResponse(const MergeWinner& winner) {
  std::string meta;
  wire::PutMetaVarint(&meta, kTagRespExecutions, winner.component_executions);
  // best_index is shifted by one so -1 (no winner) rides a varint cleanly.
  wire::PutMetaVarint(&meta, kTagRespBestIndex,
                      static_cast<uint64_t>(winner.best_index + 1));
  wire::PutMetaF64(&meta, kTagRespBestScore, winner.best_score);
  wire::PutMetaVarint(&meta, kTagRespCandidates, winner.candidates_considered);
  wire::PutMetaF64(&meta, kTagRespMakespan, winner.makespan_s);
  wire::PutMetaHash(&meta, kTagRespCommit, winner.merge_commit);
  wire::PutMetaHash(&meta, kTagRespFingerprint, winner.Fingerprint());
  std::string body;
  wire::PutVarint(&body, winner.winner_chain.size());
  for (const std::string& key : winner.winner_chain) {
    wire::PutVarint(&body, key.size());
    body.append(key);
  }
  wire::PutVarint(&body, winner.artifact_hashes.size());
  for (const Hash256& hash : winner.artifact_hashes) {
    body.append(reinterpret_cast<const char*>(hash.bytes.data()),
                hash.bytes.size());
  }
  return wire::AssembleMessage(0, meta, body);
}

StatusOr<MergeWinner> DecodeWinnerResponse(std::string_view message) {
  std::string_view meta;
  std::string_view body;
  MLCASK_RETURN_IF_ERROR(OpenOkResponse(message, &meta, &body));
  MergeWinner winner;
  Hash256 sent_fingerprint;
  bool saw_fingerprint = false;
  wire::MetaReader reader(meta);
  while (reader.Next()) {
    switch (reader.tag()) {
      case kTagRespExecutions:
        winner.component_executions = reader.varint();
        break;
      case kTagRespBestIndex:
        winner.best_index = static_cast<int32_t>(reader.varint()) - 1;
        break;
      case kTagRespBestScore:
        winner.best_score = reader.f64();
        break;
      case kTagRespCandidates:
        winner.candidates_considered = reader.varint();
        break;
      case kTagRespMakespan:
        winner.makespan_s = reader.f64();
        break;
      case kTagRespCommit:
        winner.merge_commit = reader.hash();
        break;
      case kTagRespFingerprint:
        sent_fingerprint = reader.hash();
        saw_fingerprint = true;
        break;
      default:
        break;
    }
  }
  if (reader.malformed()) {
    return Status::Corruption("malformed fetch_winner response");
  }
  std::string_view rest = body;
  uint64_t chain_count = 0;
  if (!wire::GetVarint(&rest, &chain_count) ||
      chain_count > rest.size()) {
    return Status::Corruption("malformed winner chain");
  }
  winner.winner_chain.reserve(chain_count);
  for (uint64_t i = 0; i < chain_count; ++i) {
    uint64_t len = 0;
    if (!wire::GetVarint(&rest, &len) || rest.size() < len) {
      return Status::Corruption("malformed winner chain entry");
    }
    winner.winner_chain.emplace_back(rest.substr(0, len));
    rest.remove_prefix(len);
  }
  uint64_t hash_count = 0;
  if (!wire::GetVarint(&rest, &hash_count) ||
      hash_count > rest.size() / 32) {
    return Status::Corruption("malformed winner artifact hashes");
  }
  winner.artifact_hashes.reserve(hash_count);
  for (uint64_t i = 0; i < hash_count; ++i) {
    Hash256 hash;
    std::memcpy(hash.bytes.data(), rest.data(), hash.bytes.size());
    rest.remove_prefix(hash.bytes.size());
    winner.artifact_hashes.push_back(hash);
  }
  if (!rest.empty()) {
    return Status::Corruption("winner response has trailing bytes");
  }
  // The fingerprint doubles as an end-to-end integrity check: recompute it
  // over the decoded fields and insist it matches what the server hashed.
  if (saw_fingerprint && !(winner.Fingerprint() == sent_fingerprint)) {
    return Status::Corruption("winner fingerprint mismatch after decode");
  }
  return winner;
}

std::string EncodeCancelResponse(SessionState state) {
  std::string meta;
  wire::PutMetaVarint(&meta, kTagRespState, static_cast<uint64_t>(state));
  return wire::AssembleMessage(0, meta, {});
}

StatusOr<SessionState> DecodeCancelResponse(std::string_view message) {
  std::string_view meta;
  std::string_view body;
  MLCASK_RETURN_IF_ERROR(OpenOkResponse(message, &meta, &body));
  wire::MetaReader reader(meta);
  while (reader.Next()) {
    if (reader.tag() == kTagRespState) {
      return static_cast<SessionState>(reader.varint());
    }
  }
  return Status::Corruption("malformed cancel_merge response");
}

}  // namespace mlcask::service
