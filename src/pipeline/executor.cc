#include "pipeline/executor.h"

#include <algorithm>

#include "common/sha256.h"

namespace mlcask::pipeline {

Hash256 Executor::ChainKey(
    const std::vector<const ComponentVersionSpec*>& chain) {
  Sha256 h;
  for (const ComponentVersionSpec* spec : chain) {
    h.Update(spec->name);
    h.Update("\x1f");
    h.Update(spec->version.ToString(/*simplify_master=*/false));
    h.Update("\x1f");
    h.Update(spec->impl);
    h.Update("\x1f");
    h.Update(spec->params.Dump());
    h.Update("\x1e");
  }
  return h.Finish();
}

Status Executor::SeedCache(const std::vector<ComponentVersionSpec>& chain,
                           data::Table output, double score,
                           const std::string& metric, const Hash256& output_id,
                           std::map<std::string, double> metrics) {
  if (chain.empty()) {
    return Status::InvalidArgument("cannot seed cache for empty chain");
  }
  std::vector<const ComponentVersionSpec*> ptrs;
  ptrs.reserve(chain.size());
  for (const ComponentVersionSpec& s : chain) ptrs.push_back(&s);
  CacheEntry entry;
  entry.table = std::move(output);
  entry.score = score;
  entry.metric = metric;
  entry.metrics = std::move(metrics);
  entry.output_id = output_id;
  cache_[ChainKey(ptrs)] = std::move(entry);
  return Status::Ok();
}

const data::Table* Executor::FindCached(
    const std::vector<const ComponentVersionSpec*>& chain) const {
  auto it = cache_.find(ChainKey(chain));
  return it == cache_.end() ? nullptr : &it->second.table;
}

StatusOr<PipelineRunResult> Executor::Run(const Pipeline& pipeline,
                                          const ExecutorOptions& options) {
  MLCASK_RETURN_IF_ERROR(pipeline.Validate());
  MLCASK_ASSIGN_OR_RETURN(std::vector<const ComponentVersionSpec*> order,
                          pipeline.TopologicalOrder());
  if (!pipeline.IsChain()) {
    return Status::Unimplemented(
        "executor currently runs chain pipelines (the paper's evaluated "
        "pipelines and search-tree formulation are chains)");
  }

  PipelineRunResult result;

  // MLCask checks declared compatibility before spending any compute
  // (Fig. 5's final iteration: "it does not run the pipeline").
  if (options.precheck_compatibility) {
    Status compat = pipeline.CheckCompatibility();
    if (compat.IsIncompatible()) {
      result.compatibility_failure = true;
      result.failed_component = compat.message();
      return result;
    }
    MLCASK_RETURN_IF_ERROR(compat);
  }

  // Pre-compute every prefix key, then locate the LONGEST cached prefix.
  // This mirrors Algorithm 2: a checkpointed tree node covers its entire
  // path to the root, so components before it never run even if their own
  // intermediate outputs were not individually materialized.
  std::vector<Hash256> prefix_keys(order.size());
  {
    std::vector<const ComponentVersionSpec*> prefix;
    prefix.reserve(order.size());
    for (size_t i = 0; i < order.size(); ++i) {
      prefix.push_back(order[i]);
      prefix_keys[i] = ChainKey(prefix);
    }
  }
  size_t resume_from = 0;  // first component index that must execute
  if (options.reuse_cached_outputs) {
    for (size_t i = order.size(); i-- > 0;) {
      if (cache_.find(prefix_keys[i]) != cache_.end()) {
        resume_from = i + 1;
        break;
      }
    }
  }

  const data::Table* current = nullptr;

  for (size_t i = 0; i < order.size(); ++i) {
    const ComponentVersionSpec* spec = order[i];

    ComponentRunInfo info;
    info.name = spec->name;
    info.version = spec->version;
    info.kind = spec->kind;

    Hash256 key = prefix_keys[i];
    if (i < resume_from) {
      info.reused = true;
      auto cached = cache_.find(key);
      if (cached != cache_.end()) {
        info.output_id = cached->second.output_id;
        current = &cached->second.table;
        if (!std::isnan(cached->second.score)) {
          result.score = cached->second.score;
          result.metric = cached->second.metric;
          result.metrics = cached->second.metrics;
        }
      }
      result.components.push_back(std::move(info));
      continue;
    }

    // Runtime incompatibility: without the precheck, upstream components
    // have already burned their time before this one fails (the baselines'
    // behaviour in Fig. 5).
    if (i > 0 && !order[i - 1]->CompatibleWith(*spec)) {
      result.compatibility_failure = true;
      result.failed_component = spec->name;
      result.components.push_back(std::move(info));
      return result;
    }

    MLCASK_ASSIGN_OR_RETURN(const LibraryFn* fn, registry_->Get(spec->impl));

    ExecInput in;
    in.input = current;
    in.params = &spec->params;
    // Seed varies by run seed and position so dataset components and model
    // inits are deterministic per pipeline but distinct across components.
    uint64_t seed = options.seed;
    for (uint8_t b : key.bytes) seed = seed * 131 + b;
    in.seed = seed;

    MLCASK_ASSIGN_OR_RETURN(ExecOutput out, (*fn)(in));
    executions_ += 1;
    info.executed = true;

    size_t rows = current != nullptr ? current->num_rows() : out.table.num_rows();
    info.exec_s =
        spec->cost_per_krow_s * static_cast<double>(rows) / 1000.0;
    if (spec->kind == ComponentKind::kModel) {
      result.time.train_s += info.exec_s;
    } else {
      result.time.preprocess_s += info.exec_s;
    }
    if (clock_ != nullptr) clock_->Advance(info.exec_s);

    if (out.has_score()) {
      result.score = out.score;
      result.metric = out.metric;
      result.metrics = out.metrics;
    }

    if (options.store_outputs) {
      std::string bytes = out.table.Serialize();
      MLCASK_ASSIGN_OR_RETURN(
          storage::PutResult put,
          engine_->Put("artifact/" + pipeline.name() + "/" + spec->Key(),
                       bytes));
      info.storage_s = put.storage_time_s;
      info.bytes_written = put.logical_bytes;
      info.output_id = put.id;
      result.time.storage_s += put.storage_time_s;
      if (clock_ != nullptr) clock_->Advance(put.storage_time_s);
    }

    CacheEntry entry;
    entry.table = std::move(out.table);
    entry.score = out.score;
    entry.metric = out.metric;
    entry.metrics = std::move(out.metrics);
    entry.output_id = info.output_id;
    auto [it, inserted] = cache_.insert_or_assign(key, std::move(entry));
    (void)inserted;
    current = &it->second.table;

    result.components.push_back(std::move(info));
  }

  // Assemble the commit-ready snapshot.
  for (size_t i = 0; i < order.size(); ++i) {
    version::ComponentRecord rec = order[i]->ToRecord();
    rec.output_id = result.components[i].output_id;
    result.snapshot.components.push_back(std::move(rec));
  }
  result.snapshot.score = result.score;
  result.snapshot.metric = result.metric;
  result.snapshot.metrics = result.metrics;
  return result;
}

StatusOr<PipelineRunResult> Executor::RunDag(const Pipeline& pipeline,
                                             const ExecutorOptions& options) {
  MLCASK_RETURN_IF_ERROR(pipeline.Validate());
  MLCASK_ASSIGN_OR_RETURN(std::vector<const ComponentVersionSpec*> order,
                          pipeline.TopologicalOrder());

  PipelineRunResult result;

  if (options.precheck_compatibility) {
    Status compat = pipeline.CheckCompatibility();
    if (compat.IsIncompatible()) {
      result.compatibility_failure = true;
      result.failed_component = compat.message();
      return result;
    }
    MLCASK_RETURN_IF_ERROR(compat);
  }

  // Recursive node keys: H("dag", spec identity, sorted parent keys). Kept
  // distinct from chain keys so a chain pipeline run through RunDag never
  // aliases Run()'s cache entries (their reuse guarantees differ).
  std::unordered_map<std::string, Hash256> node_keys;
  std::unordered_map<std::string, const ComponentVersionSpec*> spec_by_name;
  for (const ComponentVersionSpec* spec : order) {
    spec_by_name[spec->name] = spec;
  }
  auto parents_of = [&](const ComponentVersionSpec* spec) {
    std::vector<std::string> preds = pipeline.Predecessors(spec->name);
    std::sort(preds.begin(), preds.end());
    return preds;
  };
  for (const ComponentVersionSpec* spec : order) {
    Sha256 h;
    h.Update("dag\x1e");
    h.Update(spec->name);
    h.Update("\x1f");
    h.Update(spec->version.ToString(false));
    h.Update("\x1f");
    h.Update(spec->impl);
    h.Update("\x1f");
    h.Update(spec->params.Dump());
    h.Update("\x1e");
    for (const std::string& pred : parents_of(spec)) {
      const Hash256& pk = node_keys.at(pred);
      h.Update(pk.bytes.data(), pk.bytes.size());
    }
    node_keys[spec->name] = h.Finish();
  }

  for (const ComponentVersionSpec* spec : order) {
    ComponentRunInfo info;
    info.name = spec->name;
    info.version = spec->version;
    info.kind = spec->kind;

    Hash256 key = node_keys.at(spec->name);
    auto cached = cache_.find(key);
    if (options.reuse_cached_outputs && cached != cache_.end()) {
      info.reused = true;
      info.output_id = cached->second.output_id;
      if (!std::isnan(cached->second.score)) {
        result.score = cached->second.score;
        result.metric = cached->second.metric;
        result.metrics = cached->second.metrics;
      }
      result.components.push_back(std::move(info));
      continue;
    }

    // Gather predecessor outputs; every predecessor must be in the cache
    // (it was either just executed or reused above).
    std::vector<const data::Table*> inputs;
    size_t input_rows = 0;
    for (const std::string& pred : parents_of(spec)) {
      const ComponentVersionSpec* pred_spec = spec_by_name.at(pred);
      if (!options.precheck_compatibility &&
          !pred_spec->CompatibleWith(*spec)) {
        result.compatibility_failure = true;
        result.failed_component = spec->name;
        result.components.push_back(std::move(info));
        return result;
      }
      auto it = cache_.find(node_keys.at(pred));
      if (it == cache_.end()) {
        return Status::Internal("predecessor '" + pred +
                                "' missing from cache during DAG run");
      }
      inputs.push_back(&it->second.table);
      input_rows = std::max(input_rows, it->second.table.num_rows());
    }

    MLCASK_ASSIGN_OR_RETURN(const LibraryFn* fn, registry_->Get(spec->impl));
    ExecInput in;
    in.inputs = inputs;
    in.input = inputs.empty() ? nullptr : inputs.front();
    in.params = &spec->params;
    uint64_t seed = options.seed;
    for (uint8_t b : key.bytes) seed = seed * 131 + b;
    in.seed = seed;

    MLCASK_ASSIGN_OR_RETURN(ExecOutput out, (*fn)(in));
    executions_ += 1;
    info.executed = true;

    size_t rows = inputs.empty() ? out.table.num_rows() : input_rows;
    info.exec_s = spec->cost_per_krow_s * static_cast<double>(rows) / 1000.0;
    if (spec->kind == ComponentKind::kModel) {
      result.time.train_s += info.exec_s;
    } else {
      result.time.preprocess_s += info.exec_s;
    }
    if (clock_ != nullptr) clock_->Advance(info.exec_s);

    if (out.has_score()) {
      result.score = out.score;
      result.metric = out.metric;
      result.metrics = out.metrics;
    }

    if (options.store_outputs) {
      std::string bytes = out.table.Serialize();
      MLCASK_ASSIGN_OR_RETURN(
          storage::PutResult put,
          engine_->Put("artifact/" + pipeline.name() + "/" + spec->Key(),
                       bytes));
      info.storage_s = put.storage_time_s;
      info.bytes_written = put.logical_bytes;
      info.output_id = put.id;
      result.time.storage_s += put.storage_time_s;
      if (clock_ != nullptr) clock_->Advance(put.storage_time_s);
    }

    CacheEntry entry;
    entry.table = std::move(out.table);
    entry.score = out.score;
    entry.metric = out.metric;
    entry.metrics = std::move(out.metrics);
    entry.output_id = info.output_id;
    cache_.insert_or_assign(key, std::move(entry));
    result.components.push_back(std::move(info));
  }

  for (size_t i = 0; i < order.size(); ++i) {
    version::ComponentRecord rec = order[i]->ToRecord();
    rec.output_id = result.components[i].output_id;
    result.snapshot.components.push_back(std::move(rec));
  }
  result.snapshot.score = result.score;
  result.snapshot.metric = result.metric;
  result.snapshot.metrics = result.metrics;
  return result;
}

}  // namespace mlcask::pipeline
