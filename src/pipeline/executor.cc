#include "pipeline/executor.h"

#include <algorithm>
#include <mutex>
#include <unordered_map>

#include "common/sha256.h"
#include "pipeline/execution_core.h"

namespace mlcask::pipeline {

namespace {

/// Deterministic per-component seed: run seed mixed with the node key, so
/// dataset components and model inits are deterministic per pipeline but
/// distinct across components — and identical no matter which worker runs
/// the component or in which order.
uint64_t MixSeed(uint64_t seed, const Hash256& key) {
  for (uint8_t b : key.bytes) seed = seed * 131 + b;
  return seed;
}

/// Chunk boundaries an output table streams across — the granularity of
/// streamed prefix handoff. Row-deterministic (never wall-clock- or
/// worker-dependent) so charged times are reproducible; capped so the
/// overlap model stays coarse-grained rather than pretending per-row
/// pipelining.
uint32_t StreamChunksFor(const data::Table& table) {
  constexpr uint32_t kMaxStreamChunks = 8;
  const size_t rows = table.num_rows();
  if (rows < 2) return 1;
  return static_cast<uint32_t>(
      std::min<size_t>(kMaxStreamChunks, rows));
}

}  // namespace

Hash256 Executor::NodeKey(const ComponentVersionSpec& spec,
                          const std::vector<Hash256>& parent_keys) {
  Sha256 h;
  h.Update(spec.name);
  h.Update("\x1f");
  h.Update(spec.version.ToString(/*simplify_master=*/false));
  h.Update("\x1f");
  h.Update(spec.impl);
  h.Update("\x1f");
  h.Update(spec.params.Dump());
  h.Update("\x1e");
  for (const Hash256& pk : parent_keys) {
    h.Update(pk.bytes.data(), pk.bytes.size());
  }
  return h.Finish();
}

Hash256 Executor::ChainKey(
    const std::vector<const ComponentVersionSpec*>& chain) {
  Hash256 key;
  std::vector<Hash256> parents;
  for (const ComponentVersionSpec* spec : chain) {
    key = NodeKey(*spec, parents);
    parents.assign(1, key);
  }
  return key;
}

Status Executor::SeedCache(const std::vector<ComponentVersionSpec>& chain,
                           data::Table output, double score,
                           const std::string& metric, const Hash256& output_id,
                           std::map<std::string, double> metrics) {
  if (chain.empty()) {
    return Status::InvalidArgument("cannot seed cache for empty chain");
  }
  std::vector<const ComponentVersionSpec*> ptrs;
  ptrs.reserve(chain.size());
  for (const ComponentVersionSpec& s : chain) ptrs.push_back(&s);
  ArtifactEntry entry;
  entry.table = std::move(output);
  entry.score = score;
  entry.metric = metric;
  entry.metrics = std::move(metrics);
  entry.output_id = output_id;
  entry.ready_at_s = 0;  // checkpoints are free: materialized before the run
  cache_.Insert(ChainKey(ptrs), std::move(entry));
  return Status::Ok();
}

ArtifactCache::EntryPtr Executor::FindCachedEntry(
    const std::vector<const ComponentVersionSpec*>& chain) const {
  return cache_.Find(ChainKey(chain));
}

const data::Table* Executor::FindCached(
    const std::vector<const ComponentVersionSpec*>& chain) const {
  ArtifactCache::EntryPtr entry = FindCachedEntry(chain);
  return entry == nullptr ? nullptr : &entry->table;
}

StatusOr<PipelineRunResult> Executor::Run(const Pipeline& pipeline,
                                          const ExecutorOptions& options) {
  MLCASK_RETURN_IF_ERROR(pipeline.Validate());
  MLCASK_ASSIGN_OR_RETURN(std::vector<const ComponentVersionSpec*> order,
                          pipeline.TopologicalOrder());
  if (!pipeline.IsChain()) {
    return Status::Unimplemented(
        "executor currently runs chain pipelines (the paper's evaluated "
        "pipelines and search-tree formulation are chains)");
  }

  SimClock* clock = options.clock != nullptr ? options.clock : clock_;
  PipelineRunResult result;

  // MLCask checks declared compatibility before spending any compute
  // (Fig. 5's final iteration: "it does not run the pipeline").
  if (options.precheck_compatibility) {
    Status compat = pipeline.CheckCompatibility();
    if (compat.IsIncompatible()) {
      result.compatibility_failure = true;
      result.failed_component = compat.message();
      return result;
    }
    MLCASK_RETURN_IF_ERROR(compat);
  }

  // Pre-compute every prefix key, then locate the LONGEST cached prefix.
  // This mirrors Algorithm 2: a checkpointed tree node covers its entire
  // path to the root, so components before it never run even if their own
  // intermediate outputs were not individually materialized.
  std::vector<Hash256> prefix_keys(order.size());
  {
    std::vector<Hash256> parents;
    for (size_t i = 0; i < order.size(); ++i) {
      prefix_keys[i] = NodeKey(*order[i], parents);
      parents.assign(1, prefix_keys[i]);
    }
  }
  size_t resume_from = 0;  // first component index that must execute
  // The scan PINS the entry it resumes from: holding the EntryPtr keeps a
  // byte-capped cache from evicting it between this scan and the reuse
  // below — otherwise the run would proceed with a null input instead of
  // recomputing.
  ArtifactCache::EntryPtr resume_entry;
  if (options.reuse_cached_outputs) {
    for (size_t i = order.size(); i-- > 0;) {
      resume_entry = cache_.Find(prefix_keys[i]);
      if (resume_entry != nullptr) {
        resume_from = i + 1;
        break;
      }
    }
  }

  // Keeps the current input table alive even if the cache is cleared by
  // another thread mid-run.
  ArtifactCache::EntryPtr current;

  // Streamed prefix handoff state: when the last reused entry is streamable
  // the clock was only advanced to its FIRST chunk boundary, and this span
  // holds the deferred remainder — either the next executed component
  // consumes the stream (tail floor applied after its compute) or the span
  // is flushed to the full finish time (superseded without consumption, or
  // the run ends on the reuse). See ExecutorOptions::streamed_handoff.
  StreamSpan pending_stream;
  bool stream_pending = false;
  auto flush_pending_stream = [&] {
    if (stream_pending && clock != nullptr) {
      clock->AdvanceTo(pending_stream.ready_at_s);
    }
    stream_pending = false;
  };

  for (size_t i = 0; i < order.size(); ++i) {
    const ComponentVersionSpec* spec = order[i];

    ComponentRunInfo info;
    info.name = spec->name;
    info.version = spec->version;
    info.kind = spec->kind;

    const Hash256& key = prefix_keys[i];

    auto reuse = [&](const ArtifactCache::EntryPtr& entry) {
      info.reused = true;
      info.output_id = entry->output_id;
      current = entry;
      if (entry->has_score()) {
        result.score = entry->score;
        result.metric = entry->metric;
        result.metrics = entry->metrics;
      }
      // A previous streamed reuse that no executed component consumed
      // degenerates to the legacy full wait before this entry takes over.
      flush_pending_stream();
      // Waiting for an artifact another worker finishes later in virtual
      // time costs exactly that wait; on a serial timeline this is a no-op.
      // A streamable entry charges only up to its first chunk boundary now
      // and defers the rest to the consuming component (or the flush).
      const StreamSpan span = entry->stream_span();
      if (options.streamed_handoff && clock != nullptr &&
          span.streamable()) {
        clock->AdvanceTo(span.FirstChunkReadyS());
        pending_stream = span;
        stream_pending = true;
      } else if (clock != nullptr) {
        clock->AdvanceTo(entry->ready_at_s);
      }
    };

    if (i < resume_from) {
      // The resume component itself reuses the pinned entry from the scan;
      // earlier prefixes are covered by it and only surface their
      // output_id/score if still resident.
      ArtifactCache::EntryPtr cached =
          i + 1 == resume_from ? resume_entry : cache_.Find(key);
      if (cached != nullptr) {
        reuse(cached);
      } else {
        info.reused = true;
      }
      result.components.push_back(std::move(info));
      continue;
    }

    // Past the resume point every key is claimed through the in-flight
    // guard: if a concurrent candidate is already computing this prefix we
    // wait for its result instead of recomputing it.
    ArtifactCache::Acquired acquired =
        options.reuse_cached_outputs
            ? cache_.Acquire(key)
            : ArtifactCache::Acquired{nullptr, nullptr};
    if (acquired.entry != nullptr) {
      reuse(acquired.entry);
      result.components.push_back(std::move(info));
      continue;
    }

    // Runtime incompatibility: without the precheck, upstream components
    // have already burned their time before this one fails (the baselines'
    // behaviour in Fig. 5). The abandoned lease wakes any waiter.
    if (i > 0 && !order[i - 1]->CompatibleWith(*spec)) {
      // The failing component never consumed the stream; charge the legacy
      // full wait so failure timing stays conservative.
      flush_pending_stream();
      result.compatibility_failure = true;
      result.failed_component = spec->name;
      result.components.push_back(std::move(info));
      return result;
    }

    MLCASK_ASSIGN_OR_RETURN(const LibraryFn* fn, registry_->Get(spec->impl));

    ExecInput in;
    in.input = current == nullptr ? nullptr : &current->table;
    in.params = &spec->params;
    in.seed = MixSeed(options.seed, key);

    MLCASK_ASSIGN_OR_RETURN(ExecOutput out, (*fn)(in));
    executions_.fetch_add(1, std::memory_order_relaxed);
    info.executed = true;

    size_t rows = current != nullptr ? current->table.num_rows()
                                     : out.table.num_rows();
    info.exec_s = spec->cost_per_krow_s * static_cast<double>(rows) / 1000.0;
    if (spec->kind == ComponentKind::kModel) {
      result.time.train_s += info.exec_s;
    } else {
      result.time.preprocess_s += info.exec_s;
    }
    const double exec_start_s = clock != nullptr ? clock->Now() : 0;
    if (clock != nullptr) clock->Advance(info.exec_s);
    if (stream_pending) {
      // This component consumed its input as a stream: it started at the
      // first chunk boundary (already charged) but cannot finish before
      // processing the last chunk the producer publishes at ready_at_s.
      if (clock != nullptr) {
        clock->AdvanceTo(pending_stream.ConsumerTailFloorS(info.exec_s));
      }
      stream_pending = false;
    }

    if (out.has_score()) {
      result.score = out.score;
      result.metric = out.metric;
      result.metrics = out.metrics;
    }

    if (options.store_outputs) {
      std::string bytes = out.table.Serialize();
      MLCASK_ASSIGN_OR_RETURN(
          storage::PutResult put,
          engine_->Put("artifact/" + pipeline.name() + "/" + spec->Key(),
                       bytes));
      info.storage_s = put.storage_time_s;
      info.bytes_written = put.logical_bytes;
      info.output_id = put.id;
      result.time.storage_s += put.storage_time_s;
      if (clock != nullptr) clock->Advance(put.storage_time_s);
    }

    ArtifactEntry entry;
    entry.stream_chunks = StreamChunksFor(out.table);
    entry.table = std::move(out.table);
    entry.score = out.score;
    entry.metric = out.metric;
    entry.metrics = std::move(out.metrics);
    entry.output_id = info.output_id;
    // The stream watermark: consumers overlap with [started_at_s,
    // ready_at_s] (compute + storage) in stream_chunks uniform boundaries.
    entry.started_at_s = exec_start_s;
    entry.ready_at_s = clock != nullptr ? clock->Now() : 0;
    if (acquired.lease != nullptr) {
      current = cache_.Fulfill(acquired.lease.get(), std::move(entry));
    } else {
      // reuse disabled: later runs will not look the entry up, but the
      // merge materialization (FindCached on the winner) still expects the
      // freshest outputs in the cache.
      current = cache_.Insert(key, std::move(entry));
    }

    result.components.push_back(std::move(info));
  }

  // A run ending on a reused entry pays the producer's full finish time:
  // the pipeline's score/output is only known once the producer completes.
  flush_pending_stream();

  // Assemble the commit-ready snapshot.
  for (size_t i = 0; i < order.size(); ++i) {
    version::ComponentRecord rec = order[i]->ToRecord();
    rec.output_id = result.components[i].output_id;
    result.snapshot.components.push_back(std::move(rec));
  }
  result.snapshot.score = result.score;
  result.snapshot.metric = result.metric;
  result.snapshot.metrics = result.metrics;
  return result;
}

StatusOr<PipelineRunResult> Executor::RunDag(const Pipeline& pipeline,
                                             const ExecutorOptions& options) {
  MLCASK_RETURN_IF_ERROR(pipeline.Validate());
  MLCASK_ASSIGN_OR_RETURN(std::vector<const ComponentVersionSpec*> order,
                          pipeline.TopologicalOrder());

  SimClock* clock = options.clock != nullptr ? options.clock : clock_;
  PipelineRunResult result;

  if (options.precheck_compatibility) {
    Status compat = pipeline.CheckCompatibility();
    if (compat.IsIncompatible()) {
      result.compatibility_failure = true;
      result.failed_component = compat.message();
      return result;
    }
    MLCASK_RETURN_IF_ERROR(compat);
  }

  // Recursive node keys H(spec, sorted parent keys) — the same scheme
  // ChainKey folds over a chain, so a chain run through RunDag (or through
  // Run) shares one cache namespace.
  const size_t n = order.size();
  std::unordered_map<std::string, size_t> index_of;
  for (size_t i = 0; i < n; ++i) index_of[order[i]->name] = i;

  std::vector<std::vector<size_t>> deps(n);
  std::vector<Hash256> node_keys(n);
  std::vector<size_t> successor_count(n, 0);
  for (size_t i = 0; i < n; ++i) {
    std::vector<std::string> preds = pipeline.Predecessors(order[i]->name);
    std::sort(preds.begin(), preds.end());
    std::vector<Hash256> parent_keys;
    parent_keys.reserve(preds.size());
    deps[i].reserve(preds.size());
    for (const std::string& pred : preds) {
      size_t pi = index_of.at(pred);
      deps[i].push_back(pi);
      successor_count[pi] += 1;
      parent_keys.push_back(node_keys[pi]);
    }
    node_keys[i] = NodeKey(*order[i], parent_keys);
  }

  // Checkpoint pruning, the DAG analogue of Run()'s longest-cached-prefix
  // scan: an uncached node only executes if it is a sink or some executing
  // successor needs its table. Ancestors fully covered by downstream
  // checkpoints are skipped (marked reused without an entry), exactly as a
  // chain prefix under a seeded checkpoint is.
  // Cached entries are PINNED for the whole run (EntryPtr held): the
  // execute/skip plan below is built from this snapshot, so a byte-capped
  // cache must not be able to evict a planned-on entry mid-run — that
  // would turn a skip into a missing predecessor.
  std::vector<ArtifactCache::EntryPtr> cached(n);
  if (options.reuse_cached_outputs) {
    for (size_t i = 0; i < n; ++i) {
      cached[i] = cache_.Find(node_keys[i]);
    }
  }
  std::vector<char> must_execute(n, 0);
  std::vector<char> table_needed(n, 0);
  for (size_t i = n; i-- > 0;) {  // order is topological; walk sinks first
    bool is_sink = successor_count[i] == 0;
    must_execute[i] = !cached[i] && (is_sink || table_needed[i]) ? 1 : 0;
    if (must_execute[i]) {
      for (size_t pi : deps[i]) table_needed[pi] = 1;
    }
  }
  // Streamed prefix handoff eligibility (see ExecutorOptions): a reused
  // node may charge only its first chunk boundary when some EXECUTING
  // successor actually consumes its table as a stream (that successor's
  // tail floor then accounts the producer's finish). A reused sink — or a
  // reused node all of whose successors are themselves cache hits — pays
  // the full finish time: nothing downstream overlaps with it.
  std::vector<char> stream_consumed(n, 0);
  if (options.streamed_handoff) {
    for (size_t i = 0; i < n; ++i) {
      if (!must_execute[i]) continue;
      for (size_t pi : deps[i]) stream_consumed[pi] = 1;
    }
  }

  // Per-task outcome slots; each task writes only its own index, so no lock
  // is needed beyond the scheduler's happens-before edges.
  struct TaskOutcome {
    ComponentRunInfo info;
    ArtifactCache::EntryPtr entry;
    bool processed = false;
    bool has_score = false;
    double score = 0;
    std::string metric;
    std::map<std::string, double> metrics;
    double finish_s = 0;  ///< Virtual time when this task's worker finished.
    /// Set when this node's reuse was charged as a stream (first chunk
    /// only): executing successors apply the tail floor from `stream`.
    bool streamed = false;
    StreamSpan stream;
  };
  std::vector<TaskOutcome> outcomes(n);

  // First runtime-compatibility failure (precheck off); guarded by fail_mu.
  std::mutex fail_mu;
  std::string failed_component;

  // Executes node i under `lease` (null when reuse is disabled and nothing
  // is published). Predecessor outputs come from their outcome slots — the
  // scheduler guarantees they finished, and its mutex provides the
  // happens-before edge that makes reading them safe.
  auto execute_node = [&](size_t i, ArtifactCache::Lease* lease,
                          SimClock* task_clock) -> Status {
    const ComponentVersionSpec* spec = order[i];
    TaskOutcome& slot = outcomes[i];

    std::vector<const data::Table*> inputs;
    size_t input_rows = 0;
    inputs.reserve(deps[i].size());
    for (size_t pi : deps[i]) {
      const ComponentVersionSpec* pred_spec = order[pi];
      if (!options.precheck_compatibility &&
          !pred_spec->CompatibleWith(*spec)) {
        // The failing component never consumed its streamed inputs: charge
        // every streamed predecessor's FULL finish (mirroring Run()'s
        // flush) so failure timing stays as conservative as legacy.
        for (size_t flush_pi : deps[i]) {
          if (outcomes[flush_pi].streamed) {
            task_clock->AdvanceTo(outcomes[flush_pi].stream.ready_at_s);
          }
        }
        std::lock_guard<std::mutex> lock(fail_mu);
        if (failed_component.empty()) failed_component = spec->name;
        return Status::Incompatible("runtime schema mismatch at " +
                                    spec->name);
      }
      if (outcomes[pi].entry == nullptr) {
        return Status::Internal("predecessor '" + pred_spec->name +
                                "' missing from cache during DAG run");
      }
      inputs.push_back(&outcomes[pi].entry->table);
      input_rows = std::max(input_rows, outcomes[pi].entry->table.num_rows());
    }

    MLCASK_ASSIGN_OR_RETURN(const LibraryFn* fn, registry_->Get(spec->impl));
    ExecInput in;
    in.inputs = inputs;
    in.input = inputs.empty() ? nullptr : inputs.front();
    in.params = &spec->params;
    in.seed = MixSeed(options.seed, node_keys[i]);

    MLCASK_ASSIGN_OR_RETURN(ExecOutput out, (*fn)(in));
    executions_.fetch_add(1, std::memory_order_relaxed);
    slot.info.executed = true;

    size_t rows = inputs.empty() ? out.table.num_rows() : input_rows;
    slot.info.exec_s =
        spec->cost_per_krow_s * static_cast<double>(rows) / 1000.0;
    const double exec_start_s = task_clock->Now();
    task_clock->Advance(slot.info.exec_s);
    // Streamed predecessors: this node started at their first chunk
    // boundary (the scheduler's ready_time edge) but cannot finish before
    // processing each producer's LAST chunk.
    for (size_t pi : deps[i]) {
      if (outcomes[pi].streamed) {
        task_clock->AdvanceTo(
            outcomes[pi].stream.ConsumerTailFloorS(slot.info.exec_s));
      }
    }

    if (out.has_score()) {
      slot.has_score = true;
      slot.score = out.score;
      slot.metric = out.metric;
      slot.metrics = out.metrics;
    }

    if (options.store_outputs) {
      std::string bytes = out.table.Serialize();
      MLCASK_ASSIGN_OR_RETURN(
          storage::PutResult put,
          engine_->Put("artifact/" + pipeline.name() + "/" + spec->Key(),
                       bytes));
      slot.info.storage_s = put.storage_time_s;
      slot.info.bytes_written = put.logical_bytes;
      slot.info.output_id = put.id;
      task_clock->Advance(put.storage_time_s);
    }

    ArtifactEntry entry;
    entry.stream_chunks = StreamChunksFor(out.table);
    entry.table = std::move(out.table);
    entry.score = out.score;
    entry.metric = out.metric;
    entry.metrics = std::move(out.metrics);
    entry.output_id = slot.info.output_id;
    entry.started_at_s = exec_start_s;
    entry.ready_at_s = task_clock->Now();
    if (lease != nullptr) {
      slot.entry = cache_.Fulfill(lease, std::move(entry));
    } else {
      // See Run(): reuse-off runs still publish for merge materialization.
      slot.entry = cache_.Insert(node_keys[i], std::move(entry));
    }
    return Status::Ok();
  };

  auto run_task = [&](size_t i, SimClock* task_clock) -> Status {
    const ComponentVersionSpec* spec = order[i];
    TaskOutcome& slot = outcomes[i];
    slot.info.name = spec->name;
    slot.info.version = spec->version;
    slot.info.kind = spec->kind;
    slot.processed = true;
    // Record the worker's virtual finish on every exit path, so a failed
    // run still charges the caller's clock for the time it burned.
    struct FinishRecorder {
      TaskOutcome& slot;
      SimClock* clock;
      ~FinishRecorder() { slot.finish_s = clock->Now(); }
    } finish_recorder{slot, task_clock};

    auto reuse_entry = [&](const ArtifactCache::EntryPtr& entry) {
      slot.info.reused = true;
      slot.info.output_id = entry->output_id;
      slot.entry = entry;
      if (entry->has_score()) {
        slot.has_score = true;
        slot.score = entry->score;
        slot.metric = entry->metric;
        slot.metrics = entry->metrics;
      }
      // Streamed handoff: when an executing successor consumes this table,
      // finish (= the successor's ready edge) at the first chunk boundary
      // and let the successor's tail floor account the producer's finish;
      // otherwise pay the full finish time as before.
      const StreamSpan span = entry->stream_span();
      if (stream_consumed[i] && span.streamable()) {
        task_clock->AdvanceTo(span.FirstChunkReadyS());
        slot.stream = span;
        slot.streamed = true;
      } else {
        task_clock->AdvanceTo(entry->ready_at_s);
      }
    };

    if (!must_execute[i]) {
      // Cached (the entry pinned at plan time, immune to eviction), or an
      // ancestor fully covered by downstream checkpoints (skipped without
      // an entry, like a chain prefix under a seeded checkpoint).
      if (cached[i] != nullptr) {
        reuse_entry(cached[i]);
      } else {
        slot.info.reused = true;
      }
      return Status::Ok();
    }
    if (!options.reuse_cached_outputs) {
      return execute_node(i, nullptr, task_clock);
    }
    ArtifactCache::Acquired acquired = cache_.Acquire(node_keys[i]);
    if (acquired.entry != nullptr) {
      // A planned-executing node that turned into a runtime cache hit
      // (another run published it) consumes no streams: charge streamed
      // predecessors their full finish first — this node's reuse time
      // comes from ANOTHER run's timeline and cannot vouch for them.
      for (size_t pi : deps[i]) {
        if (outcomes[pi].streamed) {
          task_clock->AdvanceTo(outcomes[pi].stream.ready_at_s);
        }
      }
      reuse_entry(acquired.entry);
      return Status::Ok();
    }
    return execute_node(i, acquired.lease.get(), task_clock);
  };

  // Schedule on the shared pool (options.core) or the executor's lazy
  // fallback — never a per-call pool. The requested num_workers is the
  // VIRTUAL machine width; the pool's real thread count is whatever the
  // pool owner chose.
  const size_t width = std::max<size_t>(1, options.num_workers);
  ExecutionCore* core = fallback_core_.Get(options.core, width);
  double base = clock != nullptr ? clock->Now() : 0;
  StatusOr<double> makespan = core->RunGraph(
      n, deps,
      [&](size_t i, SimClock* task_clock) { return run_task(i, task_clock); },
      base, /*finish_times=*/nullptr, /*virtual_workers=*/width);

  if (!makespan.ok()) {
    if (makespan.status().IsIncompatible()) {
      result.compatibility_failure = true;
      {
        std::lock_guard<std::mutex> lock(fail_mu);
        result.failed_component = failed_component;
      }
      // The baselines' behaviour in Fig. 5: upstream components burned
      // their time before the failure — charge it (partial makespan).
      double failed_makespan = base;
      for (TaskOutcome& slot : outcomes) {
        if (slot.processed) {
          failed_makespan = std::max(failed_makespan, slot.finish_s);
          // A streamed reuse whose consumer was cancelled by the failure
          // recorded only its first-chunk time; the failed run still pays
          // the producer's full finish, like legacy charging would.
          if (slot.streamed) {
            failed_makespan =
                std::max(failed_makespan, slot.stream.ready_at_s);
          }
          result.components.push_back(std::move(slot.info));
          result.time.storage_s += result.components.back().storage_s;
          double exec_s = result.components.back().exec_s;
          if (result.components.back().kind == ComponentKind::kModel) {
            result.time.train_s += exec_s;
          } else {
            result.time.preprocess_s += exec_s;
          }
        }
      }
      if (clock != nullptr) clock->AdvanceTo(failed_makespan);
      return result;
    }
    return makespan.status();
  }
  if (clock != nullptr) clock->AdvanceTo(*makespan);

  for (size_t i = 0; i < n; ++i) {
    TaskOutcome& slot = outcomes[i];
    if (slot.has_score) {
      result.score = slot.score;
      result.metric = slot.metric;
      result.metrics = slot.metrics;
    }
    if (slot.info.kind == ComponentKind::kModel) {
      result.time.train_s += slot.info.exec_s;
    } else {
      result.time.preprocess_s += slot.info.exec_s;
    }
    result.time.storage_s += slot.info.storage_s;
    result.components.push_back(std::move(slot.info));
  }

  for (size_t i = 0; i < n; ++i) {
    version::ComponentRecord rec = order[i]->ToRecord();
    rec.output_id = result.components[i].output_id;
    result.snapshot.components.push_back(std::move(rec));
  }
  result.snapshot.score = result.score;
  result.snapshot.metric = result.metric;
  result.snapshot.metrics = result.metrics;
  return result;
}

}  // namespace mlcask::pipeline
